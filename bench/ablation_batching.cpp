// Ablation: the server's adaptive batching design (paper §IV-A).
//  (a) batch limit sweep: 1 / 4 / 8 / 15 / 32 under heavy load
//  (b) rejection policy: reject-overflow (paper) vs queue-everything
// Shows why the paper caps batches at 15 and sheds the queue remainder.

#include <iostream>

#include "ff/core/framefeedback.h"
#include "ff/rt/thread_pool.h"
#include "ff/sweep/sweep.h"

namespace {

using namespace ff;

core::Scenario loaded_scenario() {
  core::Scenario s = core::Scenario::ideal(60 * kSecond);
  s.seed = 42;
  s.server.batch_limit = 15;
  s.server.reject_overflow = true;
  s.background_load = server::LoadSchedule::constant(Rate{170.0});
  s.background.payload = models::frame_bytes({});
  return s;
}

sweep::SweepResult run_axis(const std::string& name, sweep::Axis axis) {
  sweep::SweepConfig cfg;
  cfg.name = name;
  cfg.base = loaded_scenario();
  cfg.seed_mode = sweep::SeedMode::kScenario;
  cfg.axes.push_back(std::move(axis));
  cfg.controllers = {
      {"frame-feedback",
       core::make_controller_factory<control::FrameFeedbackController>()}};
  return sweep::run(cfg);
}

}  // namespace

int main() {
  std::cout << "=== Adaptive-batching ablations (170 req/s background + 1 "
               "device) ===\n\n";

  {
    const std::vector<int> limits = {1, 4, 8, 15, 32};
    sweep::Axis axis{"batch_limit", {}};
    for (const int limit : limits) {
      axis.values.push_back({std::to_string(limit), [limit](core::Scenario& s) {
                               s.server.batch_limit = limit;
                             }});
    }
    const sweep::SweepResult runs =
        run_axis("ablation_batching_limit", std::move(axis));
    TextTable table({"batch limit", "server fps", "mean batch", "rejected",
                     "device P (fps)", "device Tl"});
    for (std::size_t i = 0; i < limits.size(); ++i) {
      const auto& r = runs.points[i].result;
      const double server_fps =
          static_cast<double>(r.server.requests_completed) /
          sim_to_seconds(r.duration);
      table.add_row({std::to_string(limits[i]), fmt(server_fps, 0),
                     fmt(r.server.mean_batch_size(), 1),
                     std::to_string(r.server.requests_rejected),
                     fmt(r.devices[0].mean_throughput(), 2),
                     std::to_string(r.devices[0].totals.timeouts_load)});
    }
    std::cout << "(a) Batch limit sweep (rejection on):\n" << table.render()
              << "\n";
  }

  {
    sweep::Axis axis{"policy",
                     {{"reject overflow (paper)",
                       [](core::Scenario& s) {
                         s.server.reject_overflow = true;
                       }},
                      {"queue everything",
                       [](core::Scenario& s) {
                         s.server.reject_overflow = false;
                       }}}};
    const sweep::SweepResult runs =
        run_axis("ablation_batching_policy", std::move(axis));
    TextTable table({"policy", "device P (fps)", "device timeouts (Tn/Tl)",
                     "server latency p-mean (ms)", "server rejected"});
    for (const auto& point : runs.points) {
      const auto& r = point.result;
      const auto& d = r.devices[0];
      table.add_row({point.desc.coordinates[0], fmt(d.mean_throughput(), 2),
                     std::to_string(d.totals.timeouts_network) + "/" +
                         std::to_string(d.totals.timeouts_load),
                     fmt(r.server.service_latency_us.mean() / 1000.0, 1),
                     std::to_string(r.server.requests_rejected)});
    }
    std::cout << "(b) Overflow policy at the paper's limit of 15:\n"
              << table.render();
    std::cout << "\nReading: without rejection the queue grows and every\n"
                 "request eventually misses its deadline anyway (higher Tn,\n"
                 "higher server latency); rejecting early gives clients a\n"
                 "fast, attributable Tl signal the controller can act on --\n"
                 "the paper's design.\n";
  }
  rt::shutdown_default_pool();
  return 0;
}
