// Ablation: the server's adaptive batching design (paper §IV-A).
//  (a) batch limit sweep: 1 / 4 / 8 / 15 / 32 under heavy load
//  (b) rejection policy: reject-overflow (paper) vs queue-everything
// Shows why the paper caps batches at 15 and sheds the queue remainder.

#include <iostream>

#include "ff/core/framefeedback.h"
#include "ff/rt/thread_pool.h"

namespace {

using namespace ff;

core::Scenario loaded_scenario(int batch_limit, bool reject_overflow) {
  core::Scenario s = core::Scenario::ideal(60 * kSecond);
  s.seed = 42;
  s.server.batch_limit = batch_limit;
  s.server.reject_overflow = reject_overflow;
  s.background_load = server::LoadSchedule::constant(Rate{170.0});
  s.background.payload = models::frame_bytes({});
  return s;
}

}  // namespace

int main() {
  std::cout << "=== Adaptive-batching ablations (170 req/s background + 1 "
               "device) ===\n\n";

  {
    const std::vector<int> limits = {1, 4, 8, 15, 32};
    const auto results = rt::parallel_map(limits.size(), [&](std::size_t i) {
      return core::run_experiment(
          loaded_scenario(limits[i], true),
          core::make_controller_factory<control::FrameFeedbackController>());
    });
    TextTable table({"batch limit", "server fps", "mean batch", "rejected",
                     "device P (fps)", "device Tl"});
    for (std::size_t i = 0; i < limits.size(); ++i) {
      const auto& r = results[i];
      const double server_fps =
          static_cast<double>(r.server.requests_completed) /
          sim_to_seconds(r.duration);
      table.add_row({std::to_string(limits[i]), fmt(server_fps, 0),
                     fmt(r.server.mean_batch_size(), 1),
                     std::to_string(r.server.requests_rejected),
                     fmt(r.devices[0].mean_throughput(), 2),
                     std::to_string(r.devices[0].totals.timeouts_load)});
    }
    std::cout << "(a) Batch limit sweep (rejection on):\n" << table.render()
              << "\n";
  }

  {
    const auto rejecting = core::run_experiment(
        loaded_scenario(15, true),
        core::make_controller_factory<control::FrameFeedbackController>());
    const auto queueing = core::run_experiment(
        loaded_scenario(15, false),
        core::make_controller_factory<control::FrameFeedbackController>());
    TextTable table({"policy", "device P (fps)", "device timeouts (Tn/Tl)",
                     "server latency p-mean (ms)", "server rejected"});
    for (const auto* r : {&rejecting, &queueing}) {
      const auto& d = r->devices[0];
      table.add_row(
          {r == &rejecting ? "reject overflow (paper)" : "queue everything",
           fmt(d.mean_throughput(), 2),
           std::to_string(d.totals.timeouts_network) + "/" +
               std::to_string(d.totals.timeouts_load),
           fmt(r->server.service_latency_us.mean() / 1000.0, 1),
           std::to_string(r->server.requests_rejected)});
    }
    std::cout << "(b) Overflow policy at the paper's limit of 15:\n"
              << table.render();
    std::cout << "\nReading: without rejection the queue grows and every\n"
                 "request eventually misses its deadline anyway (higher Tn,\n"
                 "higher server latency); rejecting early gives clients a\n"
                 "fast, attributable Tl signal the controller can act on --\n"
                 "the paper's design.\n";
  }
  return 0;
}
