// Ablation: what each piece of the FrameFeedback design buys.
//  (a) controller structure: P-only vs PD (paper Eq. 3) vs full PID vs AIMD
//  (b) the asymmetric update clamp: on vs off
//  (c) measurement frequency: 0.5 s / 1 s / 2 s / 4 s
// All runs use the Fig. 3 network schedule on a single device; metric is
// mean P with the oscillation of Po as the stability proxy.

#include <iostream>

#include "ff/core/framefeedback.h"
#include "ff/rt/thread_pool.h"
#include "ff/sweep/sweep.h"

namespace {

using namespace ff;

core::Scenario scenario_for_run() {
  core::Scenario s = core::Scenario::paper_network();
  s.seed = 42;
  s.devices.resize(1);
  s.devices[0].frame_limit = 0;
  return s;
}

void run_block(const std::string& title,
               std::vector<sweep::ControllerVariant> variants) {
  sweep::SweepConfig cfg;
  cfg.name = "ablation_controller";
  cfg.base = scenario_for_run();
  cfg.seed_mode = sweep::SeedMode::kScenario;
  cfg.controllers = std::move(variants);
  const sweep::SweepResult runs = sweep::run(cfg);

  TextTable table({"variant", "mean P (fps)", "goodput %", "timeouts",
                   "Po total variation"});
  for (const auto& point : runs.points) {
    const auto& d = point.result.devices[0];
    table.add_row({point.desc.controller, fmt(d.mean_throughput(), 2),
                   fmt(d.goodput_fraction() * 100, 1),
                   std::to_string(d.totals.timeouts()),
                   fmt(d.series.find("Po_target")->total_variation(), 0)});
  }
  std::cout << title << "\n" << table.render() << "\n";
}

}  // namespace

int main() {
  std::cout << "=== Controller ablations (Table V network schedule, one "
               "device) ===\n\n";

  {
    control::FrameFeedbackConfig p_only;
    p_only.kd = 0.0;
    control::FrameFeedbackConfig pd;  // paper defaults
    control::FrameFeedbackConfig pid = pd;
    pid.ki = 0.05;
    run_block(
        "(a) Controller structure:",
        {{"P-only (Kd=0)",
          core::make_controller_factory<control::FrameFeedbackController>(
              p_only)},
         {"PD (paper Eq. 3)",
          core::make_controller_factory<control::FrameFeedbackController>(pd)},
         {"full PID (Ki=0.05)",
          core::make_controller_factory<control::FrameFeedbackController>(pid)},
         {"AIMD",
          core::make_controller_factory<control::AimdController>()}});
  }

  {
    control::FrameFeedbackConfig clamped;  // defaults: clamped
    control::FrameFeedbackConfig unclamped = clamped;
    unclamped.clamp_updates = false;
    control::FrameFeedbackConfig symmetric = clamped;
    symmetric.update_min_fraction = -0.1;  // as slow down as up
    run_block(
        "(b) Update clamping (paper Table IV: min -0.5*Fs, max +0.1*Fs):",
        {{"asymmetric clamp (paper)",
          core::make_controller_factory<control::FrameFeedbackController>(
              clamped)},
         {"no clamp",
          core::make_controller_factory<control::FrameFeedbackController>(
              unclamped)},
         {"symmetric mild clamp (+-0.1*Fs)",
          core::make_controller_factory<control::FrameFeedbackController>(
              symmetric)}});
  }

  {
    std::vector<sweep::ControllerVariant> variants;
    for (const double period_s : {0.5, 1.0, 2.0, 4.0}) {
      control::FrameFeedbackConfig c;
      c.measure_period = seconds_to_sim(period_s);
      variants.push_back(
          {"measure every " + fmt(period_s, 1) + " s",
           core::make_controller_factory<control::FrameFeedbackController>(c)});
    }
    run_block("(c) Measurement frequency (paper Table IV: 1 s):",
              std::move(variants));
  }

  std::cout << "Reading: the PD structure with the paper's asymmetric clamp\n"
               "should give the best throughput/stability combination; the\n"
               "unclamped variant swings harder (higher total variation) and\n"
               "slow measurement reacts late to condition changes.\n";
  ff::rt::shutdown_default_pool();
  return 0;
}
