// Ablation: sensitivity to the end-to-end deadline L (the paper fixes
// L = 250 ms, citing video-analytics practice). Sweeps L from 100 ms to
// 500 ms under intermediate network conditions and reports how throughput
// and the timeout mix shift.

#include <iostream>

#include "ff/core/framefeedback.h"
#include "ff/rt/thread_pool.h"
#include "ff/sweep/sweep.h"

int main() {
  using namespace ff;

  std::cout << "=== Deadline sweep (4 Mbps / 2% loss, FrameFeedback) ===\n\n";

  const std::vector<double> deadlines_ms = {100, 150, 200, 250, 350, 500};

  sweep::SweepConfig cfg;
  cfg.name = "ablation_deadline";
  cfg.base = core::Scenario::ideal(90 * kSecond);
  cfg.base.seed = 42;
  cfg.base.network = net::NetemSchedule::constant(
      {Bandwidth::mbps(4.0), 0.02, 2 * kMillisecond});
  cfg.base.uplink_template.initial = cfg.base.network.at(0);
  cfg.base.downlink_template.initial = cfg.base.network.at(0);
  cfg.seed_mode = sweep::SeedMode::kScenario;  // the paper's seed, as-is

  sweep::Axis deadline{"deadline_ms", {}};
  for (const double ms : deadlines_ms) {
    deadline.values.push_back({fmt(ms, 0), [ms](core::Scenario& s) {
                                 s.devices[0].deadline =
                                     seconds_to_sim(ms / 1000.0);
                               }});
  }
  cfg.axes.push_back(std::move(deadline));
  cfg.controllers.push_back(
      {"frame-feedback",
       core::make_controller_factory<control::FrameFeedbackController>()});

  const sweep::SweepResult runs = sweep::run(cfg);

  TextTable table({"deadline (ms)", "mean P (fps)", "steady Po (fps)",
                   "timeout rate (/s)", "goodput %"});
  for (std::size_t i = 0; i < runs.points.size(); ++i) {
    const core::ExperimentResult& result = runs.points[i].result;
    const auto& d = result.devices[0];
    const double steady_po =
        d.series.find("Po_target")->mean_between(30 * kSecond,
                                                 result.duration);
    const double t_rate =
        d.series.find("T")->mean_between(30 * kSecond, result.duration);
    table.add_row({fmt(deadlines_ms[i], 0), fmt(d.mean_throughput(), 2),
                   fmt(steady_po, 1), fmt(t_rate, 2),
                   fmt(d.goodput_fraction() * 100, 1)});
  }
  std::cout << table.render();

  std::cout
      << "\nReading: tighter deadlines leave no retransmission budget, so\n"
               "the controller holds Po lower; beyond ~250 ms the gain\n"
               "flattens -- supporting the paper's choice of L = 250 ms.\n";
  rt::shutdown_default_pool();
  return 0;
}
