// Ablation: sensitivity to the end-to-end deadline L (the paper fixes
// L = 250 ms, citing video-analytics practice). Sweeps L from 100 ms to
// 500 ms under intermediate network conditions and reports how throughput
// and the timeout mix shift.

#include <iostream>

#include "ff/core/framefeedback.h"
#include "ff/rt/thread_pool.h"

int main() {
  using namespace ff;

  std::cout << "=== Deadline sweep (4 Mbps / 2% loss, FrameFeedback) ===\n\n";

  const std::vector<double> deadlines_ms = {100, 150, 200, 250, 350, 500};

  const auto results = rt::parallel_map(deadlines_ms.size(),
                                        [&](std::size_t i) {
    core::Scenario s = core::Scenario::ideal(90 * kSecond);
    s.seed = 42;
    s.network = net::NetemSchedule::constant(
        {Bandwidth::mbps(4.0), 0.02, 2 * kMillisecond});
    s.uplink_template.initial = s.network.at(0);
    s.downlink_template.initial = s.network.at(0);
    s.devices[0].deadline = seconds_to_sim(deadlines_ms[i] / 1000.0);
    return core::run_experiment(
        s, core::make_controller_factory<control::FrameFeedbackController>());
  });

  TextTable table({"deadline (ms)", "mean P (fps)", "steady Po (fps)",
                   "timeout rate (/s)", "goodput %"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& d = results[i].devices[0];
    const double steady_po = d.series.find("Po_target")->mean_between(
        30 * kSecond, results[i].duration);
    const double t_rate =
        d.series.find("T")->mean_between(30 * kSecond, results[i].duration);
    table.add_row({fmt(deadlines_ms[i], 0), fmt(d.mean_throughput(), 2),
                   fmt(steady_po, 1), fmt(t_rate, 2),
                   fmt(d.goodput_fraction() * 100, 1)});
  }
  std::cout << table.render();

  std::cout
      << "\nReading: tighter deadlines leave no retransmission budget, so\n"
               "the controller holds Po lower; beyond ~250 ms the gain\n"
               "flattens -- supporting the paper's choice of L = 250 ms.\n";
  return 0;
}
