// Ablation: loss-process shape. NetEm's random loss (what the paper
// injects) is Bernoulli; real Wi-Fi loss is bursty. At the same average
// loss rate, compares Bernoulli against Gilbert-Elliott burst loss and
// shows how each controller's QoS shifts -- bursts concentrate timeouts,
// which suits FrameFeedback's crash-fast clamp.

#include <iostream>

#include "ff/core/framefeedback.h"

namespace {

using namespace ff;

struct Cell {
  std::string controller;
  core::ControllerFactory factory;
};

}  // namespace

int main() {
  std::cout << "=== Loss-process ablation: Bernoulli vs Gilbert-Elliott "
               "bursts (same 7% average) ===\n\n";

  const double mean_loss = 0.07;
  const std::vector<Cell> cells = {
      {"frame-feedback",
       core::make_controller_factory<control::FrameFeedbackController>()},
      {"always-offload",
       core::make_controller_factory<control::AlwaysOffloadController>()},
      {"all-or-nothing",
       core::make_controller_factory<control::IntervalOffloadController>()},
  };

  TextTable table({"controller", "loss process", "mean P (fps)", "goodput %",
                   "timeouts", "max Tn (/s)"});

  for (const auto& cell : cells) {
    for (const bool bursty : {false, true}) {
      core::Scenario s = core::Scenario::ideal(90 * kSecond);
      s.seed = 42;
      const net::LinkConditions base{Bandwidth::mbps(10.0),
                                     bursty ? 0.0 : mean_loss,
                                     2 * kMillisecond};
      s.network = net::NetemSchedule::constant(base);
      s.uplink_template.initial = base;
      s.downlink_template.initial = base;

      core::Experiment e(s, cell.factory);
      if (bursty) {
        // Fades of ~500 packets at 60% loss, dwell tuned so the long-run
        // loss matches: stationary bad fraction = 0.07/0.6 ~= 0.1167 and
        // p_gb = p_bg * frac/(1 - frac).
        const double p_bg = 0.002;
        const double frac_bad = mean_loss / 0.6;
        const double p_gb = p_bg * frac_bad / (1.0 - frac_bad);
        for (net::Link* link : e.transport(0).path().links()) {
          link->set_loss_model(
              net::make_gilbert_elliott_loss(p_gb, p_bg, 0.0, 0.6));
        }
      }
      const auto r = e.run();
      const auto& d = r.devices[0];
      table.add_row({cell.controller,
                     bursty ? "Gilbert-Elliott bursts" : "Bernoulli 7%",
                     fmt(d.mean_throughput(), 2),
                     fmt(d.goodput_fraction() * 100, 1),
                     std::to_string(d.totals.timeouts()),
                     fmt(d.series.find("Tn")->stats().max(), 1)});
    }
  }
  std::cout << table.render();

  std::cout << "\nReading: at equal average loss, bursts concentrate the\n"
               "damage -- long clean stretches then deep fades. Controllers\n"
               "that react fast and recover cautiously (FrameFeedback's\n"
               "asymmetric clamp) ride out fades better than the heartbeat\n"
               "baseline, which keeps re-probing into the fade.\n";
  return 0;
}
