// Extension bench (paper §II-D): jointly adapting JPEG quality and
// offload rate. Compares stock FrameFeedback at fixed qualities against
// the QualityAdaptController on the Table V network walk, scoring both
// raw throughput and accuracy-weighted throughput (successful inferences
// per second x top-1 accuracy of the frames they ran on).

#include <iostream>

#include "ff/core/framefeedback.h"
#include "ff/rt/thread_pool.h"
#include "ff/sweep/sweep.h"

namespace {

using namespace ff;

double accuracy_weighted_p(const core::DeviceResult& d, SimTime end) {
  // Pointwise P * accuracy, averaged over the run.
  const TimeSeries* p = d.series.find("P");
  const TimeSeries* acc = d.series.find("accuracy");
  if (!p || !acc || p->size() != acc->size()) return 0.0;
  StreamingStats s;
  for (std::size_t i = 0; i < p->size(); ++i) {
    if (p->at(i).time >= end) break;
    s.add(p->at(i).value * acc->at(i).value);
  }
  return s.mean();
}

/// One sweep over `controllers` against `base`; points come back in
/// controller order (single axis-free cross product, replicate 1).
std::vector<core::ExperimentResult> run_variants(
    const core::Scenario& base,
    std::vector<sweep::ControllerVariant> controllers) {
  sweep::SweepConfig cfg;
  cfg.name = "ablation_quality";
  cfg.base = base;
  cfg.seed_mode = sweep::SeedMode::kScenario;  // keep the paper's seed 42
  cfg.controllers = std::move(controllers);
  sweep::SweepResult runs = sweep::run(cfg);
  std::vector<core::ExperimentResult> results;
  results.reserve(runs.points.size());
  for (auto& point : runs.points) results.push_back(std::move(point.result));
  return results;
}

}  // namespace

int main() {
  std::cout << "=== Quality adaptation (SII-D extension) on the Table V "
               "walk ===\n\n";

  core::Scenario scenario = core::Scenario::paper_network();
  scenario.seed = 42;
  scenario.devices.resize(1);
  scenario.devices[0].frame_limit = 0;

  const std::vector<std::string> names = {
      "frame-feedback @ q85 (default)",
      "quality-adapt (ladder 85/70/55/40)",
      "frame-feedback @ q55 fixed",
  };

  // The q55 variant needs the scenario's frame spec changed, so it runs
  // as its own single-variant sweep on the mutated scenario copy.
  core::Scenario q55_scenario = scenario;
  q55_scenario.devices[0].frame.jpeg_quality = 55;

  std::vector<core::ExperimentResult> results = run_variants(
      scenario,
      {{names[0],
        core::make_controller_factory<control::FrameFeedbackController>()},
       {names[1],
        core::make_controller_factory<control::QualityAdaptController>()}});
  {
    std::vector<core::ExperimentResult> q55 = run_variants(
        q55_scenario,
        {{names[2],
          core::make_controller_factory<control::FrameFeedbackController>()}});
    results.push_back(std::move(q55.front()));
  }

  TextTable table({"variant", "mean P (fps)", "acc-weighted P", "goodput %",
                   "timeouts", "mean accuracy %"});
  for (std::size_t i = 0; i < names.size(); ++i) {
    const auto& d = results[i].devices[0];
    table.add_row(
        {names[i], fmt(d.mean_throughput(), 2),
         fmt(accuracy_weighted_p(d, results[i].duration), 2),
         fmt(d.goodput_fraction() * 100, 1),
         std::to_string(d.totals.timeouts()),
         fmt(d.series.find("accuracy")->stats().mean() * 100, 1)});
  }
  std::cout << table.render();

  std::cout << "\nQuality trace of the adaptive run:\n  q:  "
            << sparkline(*results[1].devices[0].series.find("quality"))
            << "\n  Po: "
            << sparkline(*results[1].devices[0].series.find("Po_target"))
            << "\n";

  std::cout << "\nReading: the adaptive controller drops quality only while\n"
               "the network is the binding constraint (4- and 1-unit\n"
               "phases), buying offload throughput there, and restores full\n"
               "quality when bandwidth returns. It clearly beats the default\n"
               "fixed q85 on every metric; against an oracle-picked static\n"
               "q55 it trades a sliver of accuracy-weighted throughput for\n"
               "full-quality results whenever the network allows them --\n"
               "without knowing the schedule in advance.\n";
  rt::shutdown_default_pool();
  return 0;
}
