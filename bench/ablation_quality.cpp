// Extension bench (paper §II-D): jointly adapting JPEG quality and
// offload rate. Compares stock FrameFeedback at fixed qualities against
// the QualityAdaptController on the Table V network walk, scoring both
// raw throughput and accuracy-weighted throughput (successful inferences
// per second x top-1 accuracy of the frames they ran on).

#include <iostream>

#include "ff/core/framefeedback.h"
#include "ff/rt/thread_pool.h"

namespace {

using namespace ff;

struct Variant {
  std::string name;
  core::ControllerFactory factory;
};

double accuracy_weighted_p(const core::DeviceResult& d, SimTime end) {
  // Pointwise P * accuracy, averaged over the run.
  const TimeSeries* p = d.series.find("P");
  const TimeSeries* acc = d.series.find("accuracy");
  if (!p || !acc || p->size() != acc->size()) return 0.0;
  StreamingStats s;
  for (std::size_t i = 0; i < p->size(); ++i) {
    if (p->at(i).time >= end) break;
    s.add(p->at(i).value * acc->at(i).value);
  }
  return s.mean();
}

}  // namespace

int main() {
  std::cout << "=== Quality adaptation (SII-D extension) on the Table V "
               "walk ===\n\n";

  core::Scenario scenario = core::Scenario::paper_network();
  scenario.seed = 42;
  scenario.devices.resize(1);
  scenario.devices[0].frame_limit = 0;

  std::vector<Variant> variants;
  variants.push_back(
      {"frame-feedback @ q85 (default)",
       core::make_controller_factory<control::FrameFeedbackController>()});
  variants.push_back(
      {"quality-adapt (ladder 85/70/55/40)",
       core::make_controller_factory<control::QualityAdaptController>()});
  // Fixed low quality: the static alternative to adapting.
  variants.push_back({"frame-feedback @ q55 fixed", [](std::size_t) {
                        return std::make_unique<
                            control::FrameFeedbackController>();
                      }});

  // The q55 variant needs the scenario's frame spec changed, so run it on
  // its own scenario copy.
  core::Scenario q55_scenario = scenario;
  q55_scenario.devices[0].frame.jpeg_quality = 55;

  const auto results = rt::parallel_map(variants.size(), [&](std::size_t i) {
    const core::Scenario& s = (i == 2) ? q55_scenario : scenario;
    return core::run_experiment(s, variants[i].factory);
  });

  TextTable table({"variant", "mean P (fps)", "acc-weighted P", "goodput %",
                   "timeouts", "mean accuracy %"});
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const auto& d = results[i].devices[0];
    table.add_row(
        {variants[i].name, fmt(d.mean_throughput(), 2),
         fmt(accuracy_weighted_p(d, results[i].duration), 2),
         fmt(d.goodput_fraction() * 100, 1),
         std::to_string(d.totals.timeouts()),
         fmt(d.series.find("accuracy")->stats().mean() * 100, 1)});
  }
  std::cout << table.render();

  std::cout << "\nQuality trace of the adaptive run:\n  q:  "
            << sparkline(*results[1].devices[0].series.find("quality"))
            << "\n  Po: "
            << sparkline(*results[1].devices[0].series.find("Po_target"))
            << "\n";

  std::cout << "\nReading: the adaptive controller drops quality only while\n"
               "the network is the binding constraint (4- and 1-unit\n"
               "phases), buying offload throughput there, and restores full\n"
               "quality when bandwidth returns. It clearly beats the default\n"
               "fixed q85 on every metric; against an oracle-picked static\n"
               "q55 it trades a sliver of accuracy-weighted throughput for\n"
               "full-quality results whenever the network allows them --\n"
               "without knowing the schedule in advance.\n";
  return 0;
}
