// Mechanized §III-B: search the (Kp, Kd) grid on the Fig. 2 scenario with
// an objective stability score and check where it lands relative to the
// paper's hand-tuned (0.2, 0.26).

#include <iostream>

#include "ff/core/framefeedback.h"
#include "ff/rt/thread_pool.h"
#include "ff/sweep/autotune.h"

int main() {
  using namespace ff;

  std::cout << "=== Automatic gain search on the Fig. 2 scenario ===\n\n";

  sweep::AutoTuneConfig cfg;
  cfg.scenario.seed = 42;
  const auto result = sweep::auto_tune(cfg);

  TextTable table({"Kp", "Kd", "rise (s)", "overshoot", "osc clean",
                   "osc disturbed", "score", "mean P"});
  for (const auto& g : result.all) {
    table.add_row({fmt(g.kp, 2), fmt(g.kd, 2), fmt(g.clean.rise_time_s, 1),
                   fmt(g.clean.overshoot, 2),
                   fmt(g.clean.steady_oscillation, 2),
                   fmt(g.disturbed.steady_oscillation, 2), fmt(g.score, 2),
                   fmt(g.mean_throughput, 1)});
  }
  std::cout << table.render();

  std::cout << "\nBest by composite score: Kp=" << result.best.kp
            << " Kd=" << result.best.kd << " (score "
            << fmt(result.best.score, 2) << ")\n"
            << "Paper Table IV ships:    Kp=0.2 Kd=0.26\n\n"
            << "Reading: sluggish gains (Kp=0.05) never reach the setpoint\n"
               "and are eliminated outright. Among the rest the composite\n"
               "score mildly favours hotter proportional gain than the\n"
               "paper's -- because the Table IV update clamp (+0.1*Fs /\n"
               "-0.5*Fs) already bounds oscillation, making the loop\n"
               "tolerant of aggressive Kp. The paper's (0.2, 0.26) sits on\n"
               "the low-oscillation end of the same frontier: its\n"
               "post-disturbance oscillation is ~half that of the Kp=0.8\n"
               "cells, at the cost of a ~6 s slower ramp. Re-weight the\n"
               "score (disturbance_weight) and the optimum slides along\n"
               "exactly this trade.\n";
  rt::shutdown_default_pool();
  return 0;
}
