// The experiment the paper mentions but omits for space (§IV-C "Combined
// Network and Server Measurements"): the Table V network schedule AND the
// Table VI load schedule applied simultaneously. Checks the paper's claim
// that the two latency sources act "largely additively", and shows the
// controller separating the timeout sources (Tn vs Tl) over time.

#include <iostream>

#include "ff/core/framefeedback.h"
#include "ff/rt/thread_pool.h"
#include "ff/sweep/sweep.h"

int main() {
  using namespace ff;

  std::cout << "=== Combined network + server-load stress (paper SIV-C) "
               "===\n\n";

  // The three stressor mixes differ structurally (whole preset scenarios),
  // so the axis swaps the scenario wholesale instead of mutating a field.
  sweep::SweepConfig cfg;
  cfg.name = "combined_stress";
  cfg.base = core::Scenario::paper_network();
  cfg.seed_mode = sweep::SeedMode::kScenario;
  cfg.axes.push_back(
      {"stressors",
       {{"network-only",
         [](core::Scenario& s) {
           s = core::Scenario::paper_network();
           s.seed = 42;
         }},
        {"load-only",
         [](core::Scenario& s) {
           s = core::Scenario::paper_server_load();
           s.seed = 42;
         }},
        {"combined", [](core::Scenario& s) {
           s = core::Scenario::paper_combined();
           s.seed = 42;
         }}}});
  cfg.controllers = {
      {"frame-feedback",
       core::make_controller_factory<control::FrameFeedbackController>()}};
  const sweep::SweepResult runs = sweep::run(cfg);

  std::vector<const core::ExperimentResult*> ptrs;
  for (const auto& point : runs.points) ptrs.push_back(&point.result);
  core::plot_runs_labeled(std::cout,
                          "FrameFeedback throughput P (device pi4b_r14)", ptrs,
                          {"network-only", "load-only", "combined"}, "P", 0,
                          32.0);
  std::cout << "\n";

  // Additivity check: throughput *lost* vs a clean baseline of 30 fps.
  TextTable table({"window (s)", "net loss (fps)", "load loss (fps)",
                   "sum", "combined loss (fps)"});
  struct Window {
    SimTime from, to;
  };
  const std::vector<Window> windows = {
      {10 * kSecond, 30 * kSecond},   // clean net, ramping load
      {33 * kSecond, 45 * kSecond},   // 4-unit net, 120-135 load
      {50 * kSecond, 60 * kSecond},   // 1-unit net, 150 load (both peaks)
      {63 * kSecond, 90 * kSecond},   // recovered net, declining load
      {105 * kSecond, 133 * kSecond}, // lossy 4-unit net, no load
  };
  for (const auto& w : windows) {
    auto mean_p = [&](const core::ExperimentResult& r) {
      return r.devices[0].series.find("P")->mean_between(w.from, w.to);
    };
    const double loss_net = 30.0 - mean_p(runs.points[0].result);
    const double loss_load = 30.0 - mean_p(runs.points[1].result);
    const double loss_combined = 30.0 - mean_p(runs.points[2].result);
    table.add_row({fmt(sim_to_seconds(w.from), 0) + "-" +
                       fmt(sim_to_seconds(w.to), 0),
                   fmt(loss_net, 1), fmt(loss_load, 1),
                   fmt(loss_net + loss_load, 1), fmt(loss_combined, 1)});
  }
  std::cout << "Throughput deficit vs Fs=30 (additivity check):\n"
            << table.render();

  const core::ExperimentResult& combined = runs.points[2].result;
  std::cout << "\nTimeout attribution in the combined run (device pi4b_r14):\n"
            << "  Tn (network): "
            << sparkline(*combined.devices[0].series.find("Tn")) << "\n"
            << "  Tl (load):    "
            << sparkline(*combined.devices[0].series.find("Tl")) << "\n"
            << "\ntotals: Tn=" << combined.devices[0].totals.timeouts_network
            << " Tl=" << combined.devices[0].totals.timeouts_load << "\n";

  std::cout << "\nReading: where only one stressor is active the combined\n"
               "deficit tracks that stressor; where both peak (45-60s) the\n"
               "deficit approaches -- but stays below -- the naive sum,\n"
               "because the controller only needs to dodge the binding\n"
               "constraint. This matches the paper's 'largely additive'\n"
               "characterization.\n";
  rt::shutdown_default_pool();
  return 0;
}
