// Head-to-head with an ATOMS-style reservation system (paper §V-B). The
// reservation manager is given its idealized best case -- an instantaneous,
// loss-free control plane and a perfect capacity figure -- and still loses
// where the paper says it must:
//  (a) under background load that bypasses reservations, it over-grants
//      and clients eat rejections;
//  (b) under network degradation it is simply blind and keeps offloading
//      into a dead link.

#include <iostream>
#include <memory>

#include "ff/core/framefeedback.h"
#include "ff/fleet/placement.h"

namespace {

using namespace ff;

void run_block(const std::string& title, const core::Scenario& scenario,
               const std::function<std::vector<core::PhaseStat>(
                   const core::ExperimentResult&)>& phases) {
  // The shared manager + per-device controller wiring lives in ff::fleet
  // (fleet::reservation_controller_factory) so experiments and this bench
  // exercise one definition of the ATOMS-style baseline.
  auto mgr = std::make_shared<server::ReservationManager>(
      fleet::default_reservation_config());

  const auto res = core::run_experiment(
      scenario, fleet::reservation_controller_factory(mgr));
  const auto ff = core::run_experiment(
      scenario,
      core::make_controller_factory<control::FrameFeedbackController>());

  std::cout << title << "\n";
  core::print_phase_comparison(std::cout, {"reservation (ATOMS-style)",
                                           "frame-feedback"},
                               {phases(res), phases(ff)});
  TextTable totals({"controller", "mean P (fps)", "goodput %",
                    "timeouts (Tn/Tl)"});
  for (const auto* r : {&res, &ff}) {
    const auto& d = r->devices[0];
    totals.add_row({d.controller, fmt(d.mean_throughput(), 2),
                    fmt(d.goodput_fraction() * 100, 1),
                    std::to_string(d.totals.timeouts_network) + "/" +
                        std::to_string(d.totals.timeouts_load)});
  }
  std::cout << totals.render() << "\n";
}

}  // namespace

int main() {
  std::cout << "=== Reservation (ATOMS-style, idealized) vs FrameFeedback "
               "===\n\n";

  {
    core::Scenario s = core::Scenario::paper_server_load();
    s.seed = 42;
    run_block(
        "(a) Table VI background load (bypasses the reservation system):", s,
        [&s](const core::ExperimentResult& r) {
          return core::phase_means(*r.devices[0].series.find("P"),
                                   s.background_load, r.duration);
        });
  }

  {
    core::Scenario s = core::Scenario::paper_network();
    s.seed = 42;
    run_block("(b) Table V network walk (reservations are network-blind):", s,
              [&s](const core::ExperimentResult& r) {
                return core::phase_means(*r.devices[0].series.find("P"),
                                         s.network, r.duration);
              });
  }

  std::cout << "Reading: with no interfering tenants and a clean network the\n"
               "reservation grant equals Fs and both controllers tie. Once\n"
               "unreserved load or bad links appear, the manager's model of\n"
               "the world is wrong and only the feedback controller reacts --\n"
               "the paper's §V-B argument, quantified.\n";
  return 0;
}
