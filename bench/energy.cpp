// Energy accounting (paper §II-A: offloading lowers device power). For
// each controller on a clean network: mean electrical draw, total joules
// over the run, and joules per successful inference -- the figure of merit
// for battery-powered deployments.

#include <iostream>

#include "ff/core/framefeedback.h"
#include "ff/rt/thread_pool.h"

int main() {
  using namespace ff;

  std::cout << "=== Device energy by offloading policy (clean 10 Mbps "
               "network, 60 s) ===\n\n";

  core::Scenario scenario = core::Scenario::ideal(60 * kSecond);
  scenario.seed = 42;
  const net::LinkConditions clean{Bandwidth::mbps(10.0), 0.0, 2 * kMillisecond};
  scenario.network = net::NetemSchedule::constant(clean);
  scenario.uplink_template.initial = clean;
  scenario.downlink_template.initial = clean;

  const std::vector<std::pair<std::string, core::ControllerFactory>> entries = {
      {"local-only",
       core::make_controller_factory<control::LocalOnlyController>()},
      {"frame-feedback",
       core::make_controller_factory<control::FrameFeedbackController>()},
      {"always-offload",
       core::make_controller_factory<control::AlwaysOffloadController>()},
  };

  const auto results = rt::parallel_map(entries.size(), [&](std::size_t i) {
    return core::run_experiment(scenario, entries[i].second);
  });

  TextTable table({"controller", "mean draw (W)", "energy (J)",
                   "inferences", "J / inference", "P (fps)"});
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& d = results[i].devices[0];
    table.add_row({entries[i].first,
                   fmt(d.series.find("power_w")->stats().mean(), 2),
                   fmt(d.energy_joules, 0),
                   std::to_string(d.totals.successes()),
                   fmt(d.joules_per_inference(), 2),
                   fmt(d.mean_throughput(), 2)});
  }
  std::cout << table.render();

  const double j_local = results[0].devices[0].joules_per_inference();
  const double j_offload = results[2].devices[0].joules_per_inference();
  std::cout << "\nOffloading delivers each inference for "
            << fmt(j_offload / j_local * 100, 0)
            << "% of the local energy cost (" << fmt(j_offload, 2) << " vs "
            << fmt(j_local, 2) << " J): the board draws slightly less AND "
            << "completes ~2.3x more frames.\nThis quantifies the paper's "
            << "SII-A observation that effective offloading lowers power "
            << "usage.\n";
  return 0;
}
