// Energy accounting (paper §II-A: offloading lowers device power). For
// each controller on a clean network: mean electrical draw, total joules
// over the run, and joules per successful inference -- the figure of merit
// for battery-powered deployments.

#include <iostream>

#include "ff/core/framefeedback.h"
#include "ff/rt/thread_pool.h"
#include "ff/sweep/sweep.h"

int main() {
  using namespace ff;

  std::cout << "=== Device energy by offloading policy (clean 10 Mbps "
               "network, 60 s) ===\n\n";

  core::Scenario scenario = core::Scenario::ideal(60 * kSecond);
  scenario.seed = 42;
  const net::LinkConditions clean{Bandwidth::mbps(10.0), 0.0, 2 * kMillisecond};
  scenario.network = net::NetemSchedule::constant(clean);
  scenario.uplink_template.initial = clean;
  scenario.downlink_template.initial = clean;

  sweep::SweepConfig cfg;
  cfg.name = "energy";
  cfg.base = scenario;
  cfg.seed_mode = sweep::SeedMode::kScenario;
  cfg.controllers = {
      {"local-only",
       core::make_controller_factory<control::LocalOnlyController>()},
      {"frame-feedback",
       core::make_controller_factory<control::FrameFeedbackController>()},
      {"always-offload",
       core::make_controller_factory<control::AlwaysOffloadController>()},
  };
  const sweep::SweepResult runs = sweep::run(cfg);

  TextTable table({"controller", "mean draw (W)", "energy (J)",
                   "inferences", "J / inference", "P (fps)"});
  for (const auto& point : runs.points) {
    const auto& d = point.result.devices[0];
    table.add_row({point.desc.controller,
                   fmt(d.series.find("power_w")->stats().mean(), 2),
                   fmt(d.energy_joules, 0),
                   std::to_string(d.totals.successes()),
                   fmt(d.joules_per_inference(), 2),
                   fmt(d.mean_throughput(), 2)});
  }
  std::cout << table.render();

  const double j_local =
      runs.points[0].result.devices[0].joules_per_inference();
  const double j_offload =
      runs.points[2].result.devices[0].joules_per_inference();
  std::cout << "\nOffloading delivers each inference for "
            << fmt(j_offload / j_local * 100, 0)
            << "% of the local energy cost (" << fmt(j_offload, 2) << " vs "
            << fmt(j_local, 2) << " J): the board draws slightly less AND "
            << "completes ~2.3x more frames.\nThis quantifies the paper's "
            << "SII-A observation that effective offloading lowers power "
            << "usage.\n";
  rt::shutdown_default_pool();
  return 0;
}
