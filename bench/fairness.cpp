// Multi-tenant fairness: the paper requires that when the server
// saturates, "the system should respond by reducing offloading and
// distributing the available capacity fairly among clients" (§II-A.3).
// Sweeps a device-count axis (N identical devices against one server) and
// reports Jain's fairness index over per-device offload throughput.

#include <cmath>
#include <iostream>

#include "ff/core/framefeedback.h"
#include "ff/rt/thread_pool.h"
#include "ff/sweep/sweep.h"

namespace {

double jain_index(const std::vector<double>& xs) {
  double sum = 0, sq = 0;
  for (const double x : xs) {
    sum += x;
    sq += x * x;
  }
  if (sq <= 0) return 1.0;
  return sum * sum / (static_cast<double>(xs.size()) * sq);
}

}  // namespace

int main() {
  using namespace ff;

  std::cout << "=== Multi-tenant fairness (identical devices, shared GPU) "
               "===\n\n";

  const std::vector<int> device_counts = {2, 4, 6, 8, 12};

  sweep::SweepConfig cfg;
  cfg.name = "fairness";
  cfg.base = core::Scenario::ideal(60 * kSecond);
  cfg.base.seed = 42;
  cfg.seed_mode = sweep::SeedMode::kScenario;
  cfg.controllers = {
      {"frame-feedback",
       core::make_controller_factory<control::FrameFeedbackController>()}};
  sweep::Axis devices_axis;
  devices_axis.name = "devices";
  for (const int n : device_counts) {
    devices_axis.values.push_back(
        {std::to_string(n), [n](core::Scenario& s) {
           const device::DeviceConfig proto = s.devices[0];
           s.devices.clear();
           for (int d = 0; d < n; ++d) {
             device::DeviceConfig dc = proto;
             dc.name = "dev" + std::to_string(d);
             s.add_device(dc);
           }
         }});
  }
  cfg.axes.push_back(std::move(devices_axis));
  const sweep::SweepResult runs = sweep::run(cfg);

  TextTable table({"devices", "offered (fps)", "server capacity", "total P",
                   "min/max device offload", "Jain index"});
  const double capacity = models::gpu_throughput(
      models::get_model(models::ModelId::kMobileNetV3Small), 15);
  for (std::size_t i = 0; i < runs.points.size(); ++i) {
    const auto& r = runs.points[i].result;
    std::vector<double> offload_rates;
    for (const auto& d : r.devices) {
      offload_rates.push_back(
          d.series.find("Po_success")->mean_between(20 * kSecond, r.duration));
    }
    const auto [mn, mx] =
        std::minmax_element(offload_rates.begin(), offload_rates.end());
    table.add_row({std::to_string(device_counts[i]),
                   fmt(device_counts[i] * 30.0, 0), fmt(capacity, 0),
                   fmt(r.total_mean_throughput(), 1),
                   fmt(*mn, 1) + " / " + fmt(*mx, 1),
                   fmt(jain_index(offload_rates), 3)});
  }
  std::cout << table.render();

  std::cout << "\nReading: below saturation every device offloads ~30 fps\n"
               "(index ~1.0). Past saturation the rejection signal pushes\n"
               "every controller down together; a healthy result keeps the\n"
               "index high while total P approaches server capacity plus the\n"
               "devices' local rates.\n";
  rt::shutdown_default_pool();
  return 0;
}
