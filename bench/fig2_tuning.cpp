// Reproduces paper Fig. 2 (+ Table IV): offloading rate Po over time for
// controllers with different (Kp, Kd) gains, with 7% packet loss injected
// at t = 27 s. Also prints the Table IV settings and per-gain stability
// metrics from the tuning analyzer.
//
// Output: one plot per gain pair plus a comparison table; CSV dump in
// fig2_tuning.csv.

#include <iostream>

#include "ff/core/framefeedback.h"
#include "ff/rt/thread_pool.h"
#include "ff/sweep/sweep.h"

int main() {
  using namespace ff;

  std::cout << "=== Fig 2: controller tuning under loss injection ===\n\n";
  std::cout << "Table IV settings (paper defaults):\n";
  const control::FrameFeedbackConfig defaults;
  TextTable table_iv({"Variable", "Value"});
  table_iv.add_row({"Kp", fmt(defaults.kp, 2)});
  table_iv.add_row({"Ki", fmt(defaults.ki, 0)});
  table_iv.add_row({"Kd", fmt(defaults.kd, 2)});
  table_iv.add_row({"Update minimum", "-0.5 * Fs"});
  table_iv.add_row({"Update maximum", "0.1 * Fs"});
  table_iv.add_row({"Measure frequency", "1"});
  std::cout << table_iv.render() << "\n";

  // The paper's figure compares the shipped gains against more/less
  // aggressive alternatives.
  const std::vector<std::pair<double, double>> gains = {
      {0.2, 0.26},  // paper Table IV
      {0.2, 0.0},   // no derivative damping
      {0.8, 0.26},  // hot proportional gain
      {0.8, 0.0},   // hot and undamped
      {0.05, 0.26}, // sluggish
  };

  sweep::SweepConfig cfg;
  cfg.name = "fig2_tuning";
  cfg.base = core::Scenario::paper_tuning();
  cfg.base.seed = 42;
  cfg.seed_mode = sweep::SeedMode::kScenario;
  for (const auto& [kp, kd] : gains) {
    control::FrameFeedbackConfig c;
    c.kp = kp;
    c.kd = kd;
    cfg.controllers.push_back(
        {"Kp=" + fmt(kp, 2) + ",Kd=" + fmt(kd, 2),
         core::make_controller_factory<control::FrameFeedbackController>(c)});
  }
  const sweep::SweepResult runs = sweep::run(cfg);

  std::vector<TimeSeries> traces;
  traces.reserve(runs.points.size());
  for (const auto& point : runs.points) {
    TimeSeries t(point.desc.label);
    for (const auto& p
        : point.result.devices[0].series.find("Po_target")->points()) {
      t.record(p.time, p.value);
    }
    traces.push_back(std::move(t));
  }
  std::vector<const TimeSeries*> ptrs;
  for (const auto& t : traces) ptrs.push_back(&t);

  PlotOptions opts;
  opts.title = "Po (fps) over time; 7% loss injected at t=27s";
  opts.width = 110;
  opts.height = 18;
  opts.y_min = 0;
  opts.y_max = 32;
  std::cout << plot_series(ptrs, opts) << "\n";

  TextTable cmp({"Kp", "Kd", "rise (s)", "overshoot", "osc pre-loss",
                 "osc post-loss", "mean Po post-loss"});
  for (std::size_t i = 0; i < runs.points.size(); ++i) {
    const auto& result = runs.points[i].result;
    const auto& po = *result.devices[0].series.find("Po_target");
    const auto pre = control::analyze_response(po, 0, 27 * kSecond, 30.0);
    const auto post =
        control::analyze_response(po, 27 * kSecond, result.duration, 30.0);
    cmp.add_row({fmt(gains[i].first, 2), fmt(gains[i].second, 2),
                 fmt(pre.rise_time_s, 1), fmt(pre.overshoot, 2),
                 fmt(pre.steady_oscillation, 2),
                 fmt(post.steady_oscillation, 2), fmt(post.steady_mean, 1)});
  }
  std::cout << cmp.render();

  std::cout
      << "\nExpected shape (paper §III-B): the shipped (0.2, 0.26) rises\n"
               "cleanly to Fs=30, dips on loss injection and re-stabilizes;\n"
               "raising Kp without Kd oscillates; dropping Kd slows damping.\n";

  // CSV: long form, one series per gain pair.
  sweep::write_series_csv(runs, "Po_target", 0, "fig2_tuning.csv");
  std::cout << "\nwrote fig2_tuning.csv\n";
  rt::shutdown_default_pool();
  return 0;
}
