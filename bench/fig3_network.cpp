// Reproduces paper Fig. 3 (+ Table V): total inference throughput P for
// each controller while the network walks the Table V schedule. Three Pis
// stream 4000 frames at 30 fps; device 0 (pi4b_r14) is plotted, as in the
// paper's measurement protocol.
//
// Output: the Table V schedule, the figure as ASCII, per-phase mean P per
// controller, and the headline FrameFeedback vs all-or-nothing ratios.
// CSV dump in fig3_network.csv.

#include <iostream>

#include "ff/core/framefeedback.h"
#include "ff/rt/thread_pool.h"
#include "ff/sweep/sweep.h"

int main() {
  using namespace ff;

  std::cout
      << "=== Fig 3: throughput under the Table V network schedule ===\n\n";

  core::Scenario scenario = core::Scenario::paper_network();
  scenario.seed = 42;

  std::cout << "Table V network variables (bandwidth unit = 1 Mbps, see "
               "DESIGN.md):\n";
  TextTable tv({"Time (s)", "Bandwidth", "Loss (%)"});
  const auto& phases = scenario.network.phases();
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const SimTime to =
        i + 1 < phases.size() ? phases[i + 1].start : scenario.duration;
    tv.add_row({fmt(sim_to_seconds(phases[i].start), 0) + "-" +
                    fmt(sim_to_seconds(to), 0),
                fmt(phases[i].conditions.bandwidth.bits_per_second / 1e6, 0) +
                    " Mbps",
                fmt(phases[i].conditions.loss_probability * 100, 0)});
  }
  std::cout << tv.render() << "\n";

  sweep::SweepConfig cfg;
  cfg.name = "fig3_network";
  cfg.base = scenario;
  cfg.seed_mode = sweep::SeedMode::kScenario;
  cfg.controllers = {
      {"frame-feedback",
       core::make_controller_factory<control::FrameFeedbackController>()},
      {"local-only",
       core::make_controller_factory<control::LocalOnlyController>()},
      {"always-offload",
       core::make_controller_factory<control::AlwaysOffloadController>()},
      {"all-or-nothing",
       core::make_controller_factory<control::IntervalOffloadController>()},
  };
  const sweep::SweepResult runs = sweep::run(cfg);

  std::vector<const core::ExperimentResult*> ptrs;
  for (const auto& point : runs.points) ptrs.push_back(&point.result);
  core::plot_runs(std::cout,
                  "Total inference throughput P (fps), device pi4b_r14", ptrs,
                  "P", 0, 32.0);

  // FrameFeedback internals, as the paper's figure shows Po alongside P.
  std::cout << "\nFrameFeedback offload target Po (device pi4b_r14):\n  "
            << sparkline(
                   *runs.points[0].result.devices[0].series.find("Po_target"))
            << "\n";

  std::cout << "\nMean P (fps) per network phase (3 s settle):\n";
  std::vector<std::string> names;
  std::vector<std::vector<core::PhaseStat>> stats;
  for (const auto& point : runs.points) {
    names.push_back(point.desc.controller);
    stats.push_back(
        core::phase_means(*point.result.devices[0].series.find("P"),
                          scenario.network, point.result.duration));
  }
  core::print_phase_comparison(std::cout, names, stats);

  // Headline claims (paper §IV-D): around t=40s and beyond t=90s
  // FrameFeedback beats all-or-nothing by 50% to 3x.
  const auto& ff = runs.points[0].result.devices[0];
  const auto& aon = runs.points[3].result.devices[0];
  const double r40 =
      core::throughput_ratio(ff, aon, 33 * kSecond, 45 * kSecond);
  const double r90 = core::throughput_ratio(ff, aon, 90 * kSecond,
                                            runs.points[0].result.duration);
  std::cout << "\nHeadline ratios (FrameFeedback / all-or-nothing):\n"
            << "  around t=40s (4-unit phase): " << fmt(r40, 2) << "x\n"
            << "  beyond t=90s (loss phases):  " << fmt(r90, 2) << "x\n"
            << "  paper claims: between 1.5x and 3x in these windows\n";

  std::cout << "\nPer-run summaries:\n";
  for (const auto& point : runs.points) {
    std::cout << "\n-- " << point.desc.controller << " --\n";
    core::print_summary(std::cout, point.result);
  }

  sweep::write_series_csv(runs, "P", 0, "fig3_network.csv");
  std::cout << "\nwrote fig3_network.csv\n";
  rt::shutdown_default_pool();
  return 0;
}
