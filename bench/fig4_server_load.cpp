// Reproduces paper Fig. 4 (+ Table VI): total inference throughput P for
// each controller while background request volume walks the Table VI
// schedule on a clean network. Also reports the §II-A CPU-utilization
// claim (50.2% local vs 22.3% offloaded).
//
// CSV dump in fig4_server_load.csv.

#include <iostream>

#include "ff/core/framefeedback.h"
#include "ff/rt/thread_pool.h"

int main() {
  using namespace ff;

  std::cout << "=== Fig 4: throughput under the Table VI server-load "
               "schedule ===\n\n";

  core::Scenario scenario = core::Scenario::paper_server_load();
  scenario.seed = 42;

  std::cout << "Table VI server load configuration:\n";
  TextTable tvi({"Time (s)", "Request rate (/s)"});
  const auto& phases = scenario.background_load.phases();
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const SimTime to =
        i + 1 < phases.size() ? phases[i + 1].start : scenario.duration;
    tvi.add_row({fmt(sim_to_seconds(phases[i].start), 0) + "-" +
                     fmt(sim_to_seconds(to), 0),
                 fmt(phases[i].rate.per_second, 0)});
  }
  std::cout << tvi.render();

  const auto& spec = models::get_model(scenario.devices[0].model);
  std::cout << "\nServer capacity at full batches (batch limit "
            << scenario.server.batch_limit << "): "
            << fmt(models::gpu_throughput(spec, scenario.server.batch_limit), 0)
            << " fps; 3 devices add up to 90 req/s on top of the schedule.\n\n";

  const std::vector<std::pair<std::string, core::ControllerFactory>> entries = {
      {"frame-feedback",
       core::make_controller_factory<control::FrameFeedbackController>()},
      {"local-only",
       core::make_controller_factory<control::LocalOnlyController>()},
      {"always-offload",
       core::make_controller_factory<control::AlwaysOffloadController>()},
      {"all-or-nothing",
       core::make_controller_factory<control::IntervalOffloadController>()},
  };

  const auto results = rt::parallel_map(entries.size(), [&](std::size_t i) {
    return core::run_experiment(scenario, entries[i].second);
  });

  std::vector<const core::ExperimentResult*> ptrs;
  for (const auto& r : results) ptrs.push_back(&r);
  core::plot_runs(std::cout,
                  "Total inference throughput P (fps), device pi4b_r14", ptrs,
                  "P", 0, 32.0);

  std::cout << "\nFrameFeedback offload target Po (device pi4b_r14):\n  "
            << sparkline(*results[0].devices[0].series.find("Po_target"))
            << "\nload timeouts Tl (/s):\n  "
            << sparkline(*results[0].devices[0].series.find("Tl")) << "\n";

  std::cout << "\nMean P (fps) per load phase (3 s settle):\n";
  std::vector<std::string> names;
  std::vector<std::vector<core::PhaseStat>> stats;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    names.push_back(entries[i].first);
    stats.push_back(core::phase_means(*results[i].devices[0].series.find("P"),
                                      scenario.background_load,
                                      results[i].duration));
  }
  core::print_phase_comparison(std::cout, names, stats);

  // §II-A CPU utilization claim.
  const double cpu_local = results[1]
                               .devices[0]
                               .series.find("cpu")
                               ->mean_between(10 * kSecond, 100 * kSecond);
  // Fully-offloading reference: the always-offload run during the no-load
  // tail, where every frame ships and none run locally.
  const double cpu_offload =
      results[2].devices[0].series.find("cpu")->mean_between(
          110 * kSecond, 130 * kSecond);
  std::cout << "\nCPU utilization check (paper SII-A: 50.2% local -> 22.3% "
               "offloading):\n"
            << "  local-only device:      " << fmt(cpu_local * 100, 1) << "%\n"
            << "  fully-offloading device: " << fmt(cpu_offload * 100, 1)
            << "%\n";

  std::cout << "\nPer-run summaries:\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    std::cout << "\n-- " << entries[i].first << " --\n";
    core::print_summary(std::cout, results[i]);
  }

  SeriesBundle bundle;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    TimeSeries& s = bundle.series(entries[i].first);
    for (const auto& p : results[i].devices[0].series.find("P")->points()) {
      s.record(p.time, p.value);
    }
  }
  write_bundle_csv(bundle, "fig4_server_load.csv");
  std::cout << "\nwrote fig4_server_load.csv\n";
  return 0;
}
