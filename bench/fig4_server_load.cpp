// Reproduces paper Fig. 4 (+ Table VI): total inference throughput P for
// each controller while background request volume walks the Table VI
// schedule on a clean network. Also reports the §II-A CPU-utilization
// claim (50.2% local vs 22.3% offloaded).
//
// CSV dump in fig4_server_load.csv.

#include <iostream>

#include "ff/core/framefeedback.h"
#include "ff/rt/thread_pool.h"
#include "ff/sweep/sweep.h"

int main() {
  using namespace ff;

  std::cout << "=== Fig 4: throughput under the Table VI server-load "
               "schedule ===\n\n";

  core::Scenario scenario = core::Scenario::paper_server_load();
  scenario.seed = 42;

  std::cout << "Table VI server load configuration:\n";
  TextTable tvi({"Time (s)", "Request rate (/s)"});
  const auto& phases = scenario.background_load.phases();
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const SimTime to =
        i + 1 < phases.size() ? phases[i + 1].start : scenario.duration;
    tvi.add_row({fmt(sim_to_seconds(phases[i].start), 0) + "-" +
                     fmt(sim_to_seconds(to), 0),
                 fmt(phases[i].rate.per_second, 0)});
  }
  std::cout << tvi.render();

  const auto& spec = models::get_model(scenario.devices[0].model);
  std::cout << "\nServer capacity at full batches (batch limit "
            << scenario.server.batch_limit << "): "
            << fmt(models::gpu_throughput(spec, scenario.server.batch_limit), 0)
            << " fps; 3 devices add up to 90 req/s on top of the schedule.\n\n";

  sweep::SweepConfig cfg;
  cfg.name = "fig4_server_load";
  cfg.base = scenario;
  cfg.seed_mode = sweep::SeedMode::kScenario;
  cfg.controllers = {
      {"frame-feedback",
       core::make_controller_factory<control::FrameFeedbackController>()},
      {"local-only",
       core::make_controller_factory<control::LocalOnlyController>()},
      {"always-offload",
       core::make_controller_factory<control::AlwaysOffloadController>()},
      {"all-or-nothing",
       core::make_controller_factory<control::IntervalOffloadController>()},
  };
  const sweep::SweepResult runs = sweep::run(cfg);

  std::vector<const core::ExperimentResult*> ptrs;
  for (const auto& point : runs.points) ptrs.push_back(&point.result);
  core::plot_runs(std::cout,
                  "Total inference throughput P (fps), device pi4b_r14", ptrs,
                  "P", 0, 32.0);

  const auto& ff_device = runs.points[0].result.devices[0];
  std::cout << "\nFrameFeedback offload target Po (device pi4b_r14):\n  "
            << sparkline(*ff_device.series.find("Po_target"))
            << "\nload timeouts Tl (/s):\n  "
            << sparkline(*ff_device.series.find("Tl")) << "\n";

  std::cout << "\nMean P (fps) per load phase (3 s settle):\n";
  std::vector<std::string> names;
  std::vector<std::vector<core::PhaseStat>> stats;
  for (const auto& point : runs.points) {
    names.push_back(point.desc.controller);
    stats.push_back(
        core::phase_means(*point.result.devices[0].series.find("P"),
                          scenario.background_load, point.result.duration));
  }
  core::print_phase_comparison(std::cout, names, stats);

  // §II-A CPU utilization claim.
  const double cpu_local = runs.points[1]
                               .result.devices[0]
                               .series.find("cpu")
                               ->mean_between(10 * kSecond, 100 * kSecond);
  // Fully-offloading reference: the always-offload run during the no-load
  // tail, where every frame ships and none run locally.
  const double cpu_offload =
      runs.points[2].result.devices[0].series.find("cpu")->mean_between(
          110 * kSecond, 130 * kSecond);
  std::cout << "\nCPU utilization check (paper SII-A: 50.2% local -> 22.3% "
               "offloading):\n"
            << "  local-only device:      " << fmt(cpu_local * 100, 1) << "%\n"
            << "  fully-offloading device: " << fmt(cpu_offload * 100, 1)
            << "%\n";

  std::cout << "\nPer-run summaries:\n";
  for (const auto& point : runs.points) {
    std::cout << "\n-- " << point.desc.controller << " --\n";
    core::print_summary(std::cout, point.result);
  }

  sweep::write_series_csv(runs, "P", 0, "fig4_server_load.csv");
  std::cout << "\nwrote fig4_server_load.csv\n";
  rt::shutdown_default_pool();
  return 0;
}
