// Fleet smoke: 64 devices offloading to a 4-server fleet with token-bucket
// admission and least-loaded placement, swept over the partitioned kernel
// (K=1 vs K=4) and two placement policies, run twice -- serially and on
// worker threads -- asserting bit-identical fingerprints. CI runs this in
// Release; it is the fleet layer's end-to-end determinism canary.
//
// Output: BENCH_fleet.json, FLEET_smoke.csv.

#include <cstdlib>
#include <iostream>

#include "ff/core/framefeedback.h"
#include "ff/fleet/placement.h"
#include "ff/rt/thread_pool.h"
#include "ff/sweep/sweep.h"

namespace {

using namespace ff;

core::Scenario fleet_base() {
  core::Scenario s = core::Scenario::ideal(10 * kSecond);
  s.name = "fleet-smoke";
  s.seed = 7;
  const device::DeviceConfig proto = s.devices.at(0);
  s.devices.clear();
  for (int i = 0; i < 64; ++i) {
    device::DeviceConfig d = proto;
    d.name = "dev-" + std::to_string(i);
    s.add_device(std::move(d));
  }
  s.shared_uplink_medium = true;
  s.uplink_medium_groups = 8;
  s.network = net::NetemSchedule::constant(
      {Bandwidth::mbps(40.0), 0.0, 2 * kMillisecond});
  s.uplink_template.initial = s.network.at(0);
  s.downlink_template.initial = s.network.at(0);

  s.fleet = core::FleetTopology::uniform(s.server, 4);
  server::AdmissionConfig admission;
  admission.policy = server::AdmissionPolicy::kTokenBucket;
  admission.rate_fps = 60.0;
  admission.burst = 15.0;
  for (auto& spec : s.fleet.servers) spec.config.admission = admission;
  return s;
}

}  // namespace

int main() {
  std::cout << "=== Fleet smoke: 64 devices x 4 servers, serial vs "
               "parallel ===\n\n";

  sweep::SweepConfig cfg;
  cfg.name = "fleet";
  cfg.base = fleet_base();
  // Every point keeps the scenario seed: the K=1 and K=4 points of one
  // placement differ only in partition count and must fingerprint-match.
  cfg.seed_mode = sweep::SeedMode::kScenario;
  cfg.controllers = {
      {"frame-feedback",
       core::make_controller_factory<control::FrameFeedbackController>()},
  };
  cfg.axes.push_back(sweep::partition_axis({1, 4}));
  cfg.axes.push_back(sweep::placement_axis(
      {{"least-loaded", fleet::least_loaded_placement()},
       {"static", fleet::static_placement()}}));
  cfg.probes = {
      {"total_P",
       [](const core::ExperimentResult& r) {
         return r.total_mean_throughput();
       }},
      {"admission_rejected",
       [](const core::ExperimentResult& r) {
         std::uint64_t n = 0;
         for (const auto& s : r.servers) {
           n += s.stats.requests_admission_rejected;
         }
         return static_cast<double>(n);
       }},
      {"rehomed",
       [](const core::ExperimentResult& r) {
         std::uint64_t n = 0;
         for (const auto& d : r.devices) {
           if (d.final_server != d.initial_server) ++n;
         }
         return static_cast<double>(n);
       }},
  };

  cfg.threads = 1;
  const sweep::SweepResult serial = sweep::run(cfg);

  cfg.threads = 2;
  const sweep::SweepResult parallel = sweep::run(cfg);

  bool ok = serial.points.size() == parallel.points.size();
  for (std::size_t i = 0; ok && i < serial.points.size(); ++i) {
    ok = sweep::result_fingerprint(serial.points[i].result) ==
         sweep::result_fingerprint(parallel.points[i].result);
  }
  // Partition-count invariance: points are laid out axis-major
  // (partitions outermost), so point i (K=1) pairs with point i + 2
  // (K=4) of the same placement.
  const std::size_t per_k = serial.points.size() / 2;
  for (std::size_t i = 0; ok && i < per_k; ++i) {
    ok = sweep::result_fingerprint(serial.points[i].result) ==
         sweep::result_fingerprint(serial.points[i + per_k].result);
  }
  for (const sweep::SweepPoint& p : serial.points) {
    std::cout << "  " << p.desc.label << ": servers="
              << p.result.servers.size()
              << " fingerprint=" << std::hex
              << sweep::result_fingerprint(p.result) << std::dec << "\n";
  }
  std::cout << "\nserial vs 2-thread: "
            << (ok ? "bit-identical" : "MISMATCH") << " ("
            << serial.points.size() << " points)\n";

  sweep::write_points_csv(parallel, "FLEET_smoke.csv");
  sweep::write_bench_json(parallel, "BENCH_fleet.json");
  std::cout << "wrote FLEET_smoke.csv, BENCH_fleet.json\n";

  rt::shutdown_default_pool();
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
