// Physics CI: runs the disturbance-scenario suite, evaluates the run
// invariants (frame conservation, bounded Po flapping, post-disturbance
// convergence, deadline p99, per-event wall cost) and writes a
// machine-readable INVARIANTS.json. On failure a flight-recorder capture
// (scenario + seed + JSONL trace) lands in the captures directory; replay
// it with `ffctl --replay=<capture>`.
//
//   invariants                         run the full suite
//   invariants scenarios=loss_burst    run a subset (comma list)
//   invariants capture=all             capture green runs too
//   invariants out=PATH captures=DIR   output locations
//   invariants list                    print the suite and exit

#include <iostream>
#include <string>
#include <vector>

#include "ff/invariants/harness.h"
#include "ff/util/ascii_plot.h"
#include "ff/util/config.h"

namespace {

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::string item;
  for (const char c : csv) {
    if (c == ',') {
      if (!item.empty()) out.push_back(item);
      item.clear();
    } else {
      item.push_back(c);
    }
  }
  if (!item.empty()) out.push_back(item);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ff;

  std::vector<std::string> leftover;
  const Config cfg = Config::from_args(argc, argv, &leftover);
  for (const auto& arg : leftover) {
    if (arg == "list") {
      for (const auto& d : invariants::default_suite()) {
        std::cout << d.name << ": " << d.description << "\n";
      }
      return 0;
    }
  }

  std::vector<invariants::DisturbanceScenario> suite;
  if (const auto filter = cfg.get("scenarios")) {
    for (const auto& name : split_csv(*filter)) {
      suite.push_back(invariants::find_scenario(name));
    }
  } else {
    suite = invariants::default_suite();
  }

  invariants::HarnessOptions options;
  options.measure_event_cost = cfg.get_bool("event_cost", true);
  options.capture_dir = cfg.get_string("captures", "physics-captures");
  options.capture_all = cfg.get_string("capture", "fail") == "all";

  std::cout << "=== Physics CI: " << suite.size()
            << " disturbance scenarios ===\n\n";

  const auto reports = invariants::run_suite(suite, options);

  TextTable table({"scenario", "controller", "verdict", "failed", "events"});
  bool all_passed = true;
  for (const auto& r : reports) {
    all_passed = all_passed && r.passed();
    table.add_row({r.scenario, r.controller, r.passed() ? "PASS" : "FAIL",
                   r.passed() ? "-" : r.failed_names(),
                   std::to_string(r.events_executed)});
  }
  std::cout << table.render() << "\n";

  for (const auto& r : reports) {
    if (r.passed() && r.capture_path.empty()) continue;
    for (const auto& c : r.checks) {
      if (c.passed) continue;
      std::cout << r.scenario << " / " << c.name << ": observed "
                << c.observed << " vs bound " << c.bound << " -- " << c.detail
                << "\n";
    }
    if (!r.capture_path.empty()) {
      std::cout << r.scenario << ": capture " << r.capture_path
                << (r.replay_verified ? " (replay verified)"
                                      : " (REPLAY DIVERGED)")
                << "\n";
    }
  }

  const std::string out = cfg.get_string("out", "INVARIANTS.json");
  invariants::write_invariants_json(reports, out);
  std::cout << "\nwrote " << out << "\n";

  if (!all_passed) {
    std::cout << "\ninvariants FAILED\n";
    return 1;
  }
  std::cout << "all invariants hold\n";
  return 0;
}
