// Shared main for the micro-benches: the standard google-benchmark CLI
// plus a `--json[=path]` flag that writes {name, items/sec, time} for every
// benchmark to BENCH_<suite>.json (suite injected per target via
// FF_BENCH_SUITE). This is the perf-regression trajectory: CI runs the
// micro benches in Release and archives the JSON so kernel/net throughput
// regressions show up as numbers, not vibes.

#include <benchmark/benchmark.h>

#include <cctype>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#ifndef FF_BENCH_SUITE
#define FF_BENCH_SUITE "bench"
#endif

namespace {

struct Row {
  std::string name;
  double items_per_second{0.0};
  double real_time_ns{0.0};
  std::int64_t iterations{0};
};

// Console output as usual, plus a machine-readable copy of every run.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      Row row;
      row.name = run.benchmark_name();
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) row.items_per_second = it->second;
      row.real_time_ns = run.GetAdjustedRealTime();
      row.iterations = run.iterations;
      rows.push_back(std::move(row));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  std::vector<Row> rows;
};

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

// Older libbenchmark rejects duration suffixes ("0.05s") on
// --benchmark_min_time while newer versions prefer them; strip a trailing
// "s" after a digit so one CI invocation works against both. (The "<N>x"
// iteration form has no trailing "s" and passes through untouched.)
std::string normalize_min_time(const std::string& arg) {
  const std::string prefix = "--benchmark_min_time=";
  if (arg.rfind(prefix, 0) != 0) return arg;
  std::string value = arg.substr(prefix.size());
  if (value.size() >= 2 && value.back() == 's' &&
      std::isdigit(static_cast<unsigned char>(value[value.size() - 2]))) {
    value.pop_back();
  }
  return prefix + value;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string json_path;
  std::vector<std::string> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json", 6) == 0 &&
        (argv[i][6] == '\0' || argv[i][6] == '=')) {
      json = true;
      if (argv[i][6] == '=') json_path = argv[i] + 7;
      continue;
    }
    args.push_back(normalize_min_time(argv[i]));
  }
  std::vector<char*> argv_filtered;
  argv_filtered.reserve(args.size());
  for (auto& a : args) argv_filtered.push_back(a.data());
  int argc_filtered = static_cast<int>(argv_filtered.size());

  benchmark::Initialize(&argc_filtered, argv_filtered.data());
  if (benchmark::ReportUnrecognizedArguments(argc_filtered,
                                             argv_filtered.data())) {
    return 1;
  }

  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  if (json) {
    if (json_path.empty()) json_path = "BENCH_" FF_BENCH_SUITE ".json";
    std::ofstream out(json_path);
    out << "{\n  \"suite\": \"" FF_BENCH_SUITE "\",\n  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < reporter.rows.size(); ++i) {
      const Row& r = reporter.rows[i];
      out << "    {\"name\": \"" << json_escape(r.name)
          << "\", \"items_per_second\": " << r.items_per_second
          << ", \"real_time_ns\": " << r.real_time_ns
          << ", \"iterations\": " << r.iterations << "}"
          << (i + 1 < reporter.rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
  }
  return 0;
}
