// Offload latency distributions: where each policy's successful offloads
// land relative to the 250 ms deadline under intermediate conditions
// (6 Mbps, 3% loss). The margin distribution explains the timeout rates
// the figures report: policies that run the link hot push the whole
// distribution toward the deadline cliff.

#include <iostream>

#include "ff/core/framefeedback.h"
#include "ff/rt/thread_pool.h"
#include "ff/sweep/sweep.h"

int main() {
  using namespace ff;

  std::cout << "=== Offload latency vs the 250 ms deadline (6 Mbps, 3% "
               "loss) ===\n\n";

  core::Scenario scenario = core::Scenario::ideal(120 * kSecond);
  scenario.seed = 42;
  const net::LinkConditions mid{Bandwidth::mbps(6.0), 0.03, 2 * kMillisecond};
  scenario.network = net::NetemSchedule::constant(mid);
  scenario.uplink_template.initial = mid;
  scenario.downlink_template.initial = mid;

  sweep::SweepConfig cfg;
  cfg.name = "latency_distribution";
  cfg.base = scenario;
  cfg.seed_mode = sweep::SeedMode::kScenario;
  cfg.controllers = {
      {"frame-feedback",
       core::make_controller_factory<control::FrameFeedbackController>()},
      {"always-offload",
       core::make_controller_factory<control::AlwaysOffloadController>()},
      {"fixed @ 12 fps",
       core::make_controller_factory<control::FixedRateController>(12.0)},
  };
  const sweep::SweepResult runs = sweep::run(cfg);

  TextTable table({"controller", "offload ok", "p50 (ms)", "p95 (ms)",
                   "p99 (ms)", "max (ms)", "timeouts"});
  for (const auto& point : runs.points) {
    const auto& o = point.result.devices[0].offload;
    table.add_row({point.desc.controller, std::to_string(o.successes),
                   fmt(o.latency_p50.value() / 1000.0, 0),
                   fmt(o.latency_p95.value() / 1000.0, 0),
                   fmt(o.latency_p99.value() / 1000.0, 0),
                   fmt(o.latency_us.max() / 1000.0, 0),
                   std::to_string(o.timeouts_network + o.timeouts_load)});
  }
  std::cout << table.render();

  std::cout << "\nSuccess-latency histogram, frame-feedback (ms):\n";
  // Rebuild a histogram from a dedicated run with the same seed (the
  // stats objects retain quantiles, not raw samples).
  {
    core::Experiment e(
        scenario,
        core::make_controller_factory<control::FrameFeedbackController>());
    Histogram h(0.0, 250.0, 10);
    // Sample through a tracer-free channel: poll telemetry-level latency
    // is windowed, so instead watch the client stats deltas each second.
    sim::PeriodicTimer sampler(e.simulator(), [&](std::uint64_t) {
      // mean over the last window, one sample per second
      const double ms =
          e.device(0).telemetry().mean_offload_latency_us(e.simulator().now()) /
          1000.0;
      if (ms > 0) h.add(ms);
    });
    sampler.start(kSecond, kSecond);
    (void)e.run();
    std::cout << h.render(60);
  }

  std::cout << "\nReading: the feedback controller keeps p95 comfortably\n"
               "inside the deadline by not saturating the link; always-\n"
               "offload queues itself toward the cliff, converting the tail\n"
               "into timeouts.\n";
  rt::shutdown_default_pool();
  return 0;
}
