// Micro-benchmarks for the controllers: the per-tick cost of each policy.
// On a Raspberry Pi the controller shares the CPU with inference, so its
// cost must be negligible (it is -- nanoseconds per decision).

#include <benchmark/benchmark.h>

#include "ff/control/aimd.h"
#include "ff/control/baselines.h"
#include "ff/control/frame_feedback.h"
#include "ff/control/pid.h"

namespace {

using namespace ff;
using namespace ff::control;

ControllerInput make_input(int i) {
  ControllerInput in;
  in.source_fps = 30.0;
  in.offload_rate = static_cast<double>(i % 30);
  in.timeout_rate = (i % 7 == 0) ? 5.0 : 0.0;
  return in;
}

void BM_FrameFeedbackUpdate(benchmark::State& state) {
  FrameFeedbackController ctl;
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctl.update(make_input(i++)));
  }
}
BENCHMARK(BM_FrameFeedbackUpdate);

void BM_PidStep(benchmark::State& state) {
  PidConfig c;
  c.ki = 0.1;
  c.derivative_filter_alpha = 0.5;
  PidController pid(c);
  double e = 0.1;
  for (auto _ : state) {
    e = -e;
    benchmark::DoNotOptimize(pid.step(e));
  }
}
BENCHMARK(BM_PidStep);

void BM_AimdUpdate(benchmark::State& state) {
  AimdController ctl;
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctl.update(make_input(i++)));
  }
}
BENCHMARK(BM_AimdUpdate);

void BM_IntervalUpdate(benchmark::State& state) {
  IntervalOffloadController ctl;
  ControllerInput in = make_input(0);
  in.probe_success = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctl.update(in));
  }
}
BENCHMARK(BM_IntervalUpdate);

}  // namespace
