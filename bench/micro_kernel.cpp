// Micro-benchmarks for the discrete-event kernel: the substrate every
// experiment runs on. Throughput here bounds how fast the figure
// reproductions can run.

#include <benchmark/benchmark.h>

#include "ff/sim/event_queue.h"
#include "ff/sim/simulator.h"
#include "ff/sim/timer.h"
#include "ff/util/rng.h"

namespace {

using namespace ff;

void BM_EventQueueScheduleDrain(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    sim::EventQueue q;
    for (std::size_t i = 0; i < n; ++i) {
      (void)q.schedule(rng.uniform_int(0, 1'000'000), [] {});
    }
    while (!q.empty()) {
      benchmark::DoNotOptimize(q.pop());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueScheduleDrain)->Range(1 << 8, 1 << 16);

void BM_SimulatorEventChain(benchmark::State& state) {
  // A single self-rescheduling event: pure kernel overhead per event.
  for (auto _ : state) {
    sim::Simulator sim;
    std::uint64_t count = 0;
    std::function<void()> chain = [&] {
      if (++count < 100'000) (void)sim.schedule_in(10, chain);
    };
    (void)sim.schedule_in(10, chain);
    (void)sim.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          100'000);
}
BENCHMARK(BM_SimulatorEventChain);

void BM_SimulatorCancelHeavy(benchmark::State& state) {
  // Schedule/cancel churn, the transport RTO pattern.
  for (auto _ : state) {
    sim::Simulator sim;
    std::vector<sim::EventId> ids;
    ids.reserve(10'000);
    for (int i = 0; i < 10'000; ++i) {
      ids.push_back(sim.schedule_in(1000 + i, [] {}));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) {
      (void)sim.cancel(ids[i]);
    }
    (void)sim.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          10'000);
}
BENCHMARK(BM_SimulatorCancelHeavy);

void BM_PeriodicTimerTicks(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    std::uint64_t ticks = 0;
    sim::PeriodicTimer timer(sim, [&](std::uint64_t) { ++ticks; });
    timer.start(kMillisecond);
    (void)sim.run_until(100 * kSecond);
    benchmark::DoNotOptimize(ticks);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          100'000);
}
BENCHMARK(BM_PeriodicTimerTicks);

void BM_RngUniform(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.uniform());
  }
}
BENCHMARK(BM_RngUniform);

void BM_RngNormal(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.normal(0.0, 1.0));
  }
}
BENCHMARK(BM_RngNormal);

}  // namespace
