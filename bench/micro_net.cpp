// Micro-benchmarks for the network emulator: per-packet link cost and
// end-to-end reliable-channel message cost under clean and lossy links.

#include <benchmark/benchmark.h>

#include "ff/net/transport.h"

namespace {

using namespace ff;

net::LinkConfig fast_link() {
  net::LinkConfig c;
  c.initial.bandwidth = Bandwidth::mbps(1000.0);
  c.initial.propagation_delay = 10;
  c.queue_limit = 1 << 16;
  return c;
}

void BM_LinkPacketDelivery(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    net::Link link(sim, fast_link());
    std::uint64_t delivered = 0;
    link.set_receiver([&](const net::Packet&) { ++delivered; });
    for (int i = 0; i < 10'000; ++i) {
      net::Packet p;
      p.message_id = i;
      p.size = Bytes{1442};
      (void)link.send(p);
    }
    (void)sim.run();
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          10'000);
}
BENCHMARK(BM_LinkPacketDelivery);

void BM_ReliableChannelMessage(benchmark::State& state) {
  const auto payload = Bytes{state.range(0)};
  for (auto _ : state) {
    sim::Simulator sim;
    net::DuplexPath path(sim, fast_link(), fast_link());
    std::uint64_t delivered = 0;
    path.uplink().set_on_message([&](std::uint64_t, Bytes) { ++delivered; });
    for (int i = 0; i < 1000; ++i) {
      path.uplink().send(i, payload);
    }
    (void)sim.run_until(60 * kSecond);
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1000);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1000 *
                          payload.count);
}
BENCHMARK(BM_ReliableChannelMessage)->Arg(1400)->Arg(30000)->Arg(200000);

void BM_ReliableChannelLossy(benchmark::State& state) {
  // 7% loss: cost includes retransmission machinery.
  for (auto _ : state) {
    sim::Simulator sim;
    net::LinkConfig lossy = fast_link();
    lossy.initial.loss_probability = 0.07;
    net::DuplexPath path(sim, lossy, lossy);
    std::uint64_t delivered = 0;
    path.uplink().set_on_message([&](std::uint64_t, Bytes) { ++delivered; });
    for (int i = 0; i < 1000; ++i) {
      path.uplink().send(i, Bytes{30000});
    }
    (void)sim.run_until(120 * kSecond);
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_ReliableChannelLossy);

}  // namespace
