// Micro-benchmarks for the observability layer. The contract the rest of
// the codebase relies on: an emit site with no sink attached costs one
// predictable branch (BM_EmitSiteDisabled should match BM_BranchBaseline),
// and a full experiment with tracing disabled runs at the same speed as one
// built before ff_obs existed.

#include <benchmark/benchmark.h>

#include "ff/control/frame_feedback.h"
#include "ff/core/experiment.h"
#include "ff/obs/metrics.h"
#include "ff/obs/trace.h"

namespace {

using namespace ff;

// The instrumented-component pattern: a raw sink pointer checked per event.
struct EmitSite {
  obs::TraceSink* sink{nullptr};

  void record(SimTime t, std::uint64_t id) {
    if (sink == nullptr) return;
    sink->emit(obs::TraceEvent(t, obs::ev::kFrameCaptured, "bench")
                   .with_id(id));
  }
};

void BM_BranchBaseline(benchmark::State& state) {
  // The cost an emit site is allowed to add when disabled: testing a
  // pointer that is always null.
  obs::TraceSink* sink = nullptr;
  std::uint64_t sum = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sink);
    if (sink != nullptr) ++sum;
  }
  benchmark::DoNotOptimize(sum);
}
BENCHMARK(BM_BranchBaseline);

void BM_EmitSiteDisabled(benchmark::State& state) {
  EmitSite site;
  std::uint64_t id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(site.sink);
    site.record(static_cast<SimTime>(id), id);
    ++id;
  }
}
BENCHMARK(BM_EmitSiteDisabled);

void BM_EmitSiteNullSink(benchmark::State& state) {
  // Enabled path with the cheapest possible sink: event construction plus
  // one virtual call.
  obs::NullTraceSink null_sink;
  EmitSite site{&null_sink};
  std::uint64_t id = 0;
  for (auto _ : state) {
    site.record(static_cast<SimTime>(id), id);
    ++id;
  }
  benchmark::DoNotOptimize(null_sink.events_seen());
}
BENCHMARK(BM_EmitSiteNullSink);

void BM_MetricsCounterAdd(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Counter& c = registry.counter("bench.frames", {{"device", "pi-1"}});
  for (auto _ : state) {
    c.add();
  }
  benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_MetricsCounterAdd);

void BM_MetricsDistributionObserve(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Distribution& d = registry.distribution("bench.latency");
  double v = 0.0;
  for (auto _ : state) {
    d.observe(v);
    v += 1.0;
  }
  benchmark::DoNotOptimize(d.mean());
}
BENCHMARK(BM_MetricsDistributionObserve);

core::Scenario bench_scenario() { return core::Scenario::ideal(10 * kSecond); }

core::ControllerFactory bench_factory() {
  return core::make_controller_factory<control::FrameFeedbackController>();
}

void BM_ExperimentTracingDisabled(benchmark::State& state) {
  for (auto _ : state) {
    core::Experiment experiment(bench_scenario(), bench_factory());
    benchmark::DoNotOptimize(experiment.run());
  }
}
BENCHMARK(BM_ExperimentTracingDisabled)->Unit(benchmark::kMillisecond);

void BM_ExperimentTracingNullSink(benchmark::State& state) {
  // Upper bound on instrumentation density cost: every event constructed
  // and virtually dispatched, then discarded.
  for (auto _ : state) {
    core::Experiment experiment(bench_scenario(), bench_factory());
    obs::NullTraceSink sink;
    experiment.set_trace_sink(&sink);
    benchmark::DoNotOptimize(experiment.run());
  }
}
BENCHMARK(BM_ExperimentTracingNullSink)->Unit(benchmark::kMillisecond);

}  // namespace
