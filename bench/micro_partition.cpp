// Micro-benchmarks for the partitioned DES kernel (ROADMAP item 2): the
// same multi-device experiment executed at K = 1, 2, 4, 8 partitions,
// with events/s as the headline. The scaling claim this backs: >= 2x
// events/s at K=4 over K=1. A synthetic kernel-only benchmark isolates
// window/barrier overhead from experiment entity costs.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>

#include "ff/control/frame_feedback.h"
#include "ff/core/experiment.h"
#include "ff/sim/partition.h"

namespace {

using namespace ff;

/// A wide workload: many devices in as many shared-medium groups as
/// partitions, so every partition carries comparable event volume. Short
/// horizon -- the bench repeats it per iteration.
core::Scenario wide_scenario(std::size_t devices, std::size_t partitions) {
  core::Scenario s = core::Scenario::ideal(4 * kSecond);
  s.name = "micro-partition";
  s.seed = 42;
  const device::DeviceConfig proto = s.devices.at(0);
  s.devices.clear();
  for (std::size_t i = 0; i < devices; ++i) {
    device::DeviceConfig d = proto;
    d.name = "dev-" + std::to_string(i);
    s.add_device(std::move(d));
  }
  s.shared_uplink_medium = true;
  s.uplink_medium_groups = devices / 2;
  s.background_load = server::LoadSchedule::constant(Rate{60});
  s.partitions = partitions;
  s.partition_threads = 0;  // one worker per partition
  return s;
}

void BM_PartitionedExperiment(benchmark::State& state) {
  const auto partitions = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kDevices = 64;
  std::uint64_t events = 0;
  for (auto _ : state) {
    const core::ExperimentResult r = core::run_experiment(
        wide_scenario(kDevices, partitions),
        core::make_controller_factory<control::FrameFeedbackController>());
    events += r.events_executed;
    benchmark::DoNotOptimize(r.events_executed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["partitions"] = static_cast<double>(partitions);
}
BENCHMARK(BM_PartitionedExperiment)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

/// Kernel-only scaling: K partitions each burn a self-rescheduling event
/// chain, exchanging a token once per lookahead window. Measures the
/// window/barrier machinery without entity costs.
void BM_PartitionedKernelChains(benchmark::State& state) {
  const auto partitions = static_cast<std::size_t>(state.range(0));
  constexpr std::uint64_t kEventsPerPartition = 200'000;
  constexpr SimDuration kLookahead = 2 * kMillisecond;
  constexpr SimDuration kEventSpacing = 10;  // microseconds
  std::uint64_t events = 0;
  for (auto _ : state) {
    sim::PartitionedSimulator ps(1, {partitions, 0});
    for (std::size_t p = 0; p < partitions; ++p) {
      ps.add_edge(p, (p + 1) % partitions, kLookahead);
    }
    for (std::size_t p = 0; p < partitions; ++p) {
      sim::Simulator& sim = ps.partition(p);
      struct Chain {
        sim::Simulator* sim;
        std::uint64_t remaining;
        void fire() {
          if (remaining == 0) return;
          --remaining;
          Chain next = *this;
          sim->schedule_in(kEventSpacing,
                           [next]() mutable { next.fire(); });
        }
      };
      Chain chain{&sim, kEventsPerPartition};
      sim.schedule_at(0, [chain]() mutable { chain.fire(); });
    }
    events += ps.run_until(static_cast<SimTime>(kEventsPerPartition) *
                           kEventSpacing * 2);
    benchmark::DoNotOptimize(ps.events_executed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["partitions"] = static_cast<double>(partitions);
}
BENCHMARK(BM_PartitionedKernelChains)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
