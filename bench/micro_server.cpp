// Micro-benchmarks for the edge server: request submission + adaptive
// batching cost, and a full experiment step as the end-to-end unit.

#include <benchmark/benchmark.h>

#include "ff/core/framefeedback.h"

namespace {

using namespace ff;

void BM_ServerSubmitComplete(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    server::EdgeServer srv(sim, {});
    std::uint64_t done = 0;
    for (int i = 0; i < n; ++i) {
      server::InferenceRequest r;
      r.request_id = i;
      srv.submit(std::move(r),
                 [&](const server::RequestOutcome&) { ++done; });
    }
    (void)sim.run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_ServerSubmitComplete)->Range(64, 8192);

void BM_LoadedServerSecond(benchmark::State& state) {
  // One simulated second of a server at 150 req/s.
  for (auto _ : state) {
    sim::Simulator sim;
    server::EdgeServer srv(sim, {});
    server::LoadGenerator gen(sim, srv,
                              server::LoadSchedule::constant(Rate{150.0}), {});
    gen.start();
    (void)sim.run_until(kSecond);
    benchmark::DoNotOptimize(srv.stats().requests_completed);
  }
}
BENCHMARK(BM_LoadedServerSecond);

void BM_FullExperimentSecond(benchmark::State& state) {
  // Cost of one simulated second of the complete stack (1 device,
  // network, server, controller): the unit of every figure bench.
  for (auto _ : state) {
    core::Scenario s = core::Scenario::ideal(kSecond);
    s.seed = 42;
    const auto r = core::run_experiment(
        s, core::make_controller_factory<control::FrameFeedbackController>());
    benchmark::DoNotOptimize(r.events_executed);
  }
}
BENCHMARK(BM_FullExperimentSecond);

void BM_PaperNetworkScenario(benchmark::State& state) {
  // The full Fig. 3 reproduction as one benchmark unit (3 devices, 135 s).
  for (auto _ : state) {
    core::Scenario s = core::Scenario::paper_network();
    s.seed = 42;
    const auto r = core::run_experiment(
        s, core::make_controller_factory<control::FrameFeedbackController>());
    benchmark::DoNotOptimize(r.events_executed);
  }
}
BENCHMARK(BM_PaperNetworkScenario)->Unit(benchmark::kMillisecond);

}  // namespace
