// Heterogeneous multi-tenancy (paper §IV-C.2: "batch size limits are set
// per model, so we hit both model types"): three devices run three
// different models against one GPU. Verifies per-model batching keeps the
// light model's latency low even while a heavy model shares the GPU, and
// that each device's controller finds its own sustainable rate.

#include <iostream>

#include "ff/core/framefeedback.h"

int main() {
  using namespace ff;

  std::cout << "=== Mixed-model multi-tenancy (one GPU, three models) "
               "===\n\n";

  core::Scenario s = core::Scenario::mixed_models(90 * kSecond);
  s.seed = 42;

  std::cout << "Device -> model assignment:\n";
  for (const auto& d : s.devices) {
    const auto& spec = models::get_model(d.model);
    std::cout << "  " << d.name << " -> " << spec.name
              << "  (GPU batch cost " << spec.batch_base_ms << " + "
              << spec.batch_per_frame_ms << " ms/frame, full-batch capacity "
              << fmt(models::gpu_throughput(spec, 15), 0) << " fps)\n";
  }

  const auto r = core::run_experiment(
      s, core::make_controller_factory<control::FrameFeedbackController>());

  std::cout << "\n";
  core::print_summary(std::cout, r);

  std::cout << "\nPer-device offload success rate (fps):\n";
  TextTable table({"device", "model", "steady Po", "offload ok/s", "P (fps)",
                   "Tl timeouts"});
  for (std::size_t i = 0; i < r.devices.size(); ++i) {
    const auto& d = r.devices[i];
    table.add_row(
        {d.name, std::string(models::model_name(s.devices[i].model)),
         fmt(d.series.find("Po_target")->mean_between(30 * kSecond,
                                                      r.duration), 1),
         fmt(d.series.find("Po_success")->mean_between(30 * kSecond,
                                                       r.duration), 1),
         fmt(d.mean_throughput(), 2),
         std::to_string(d.totals.timeouts_load)});
  }
  std::cout << table.render();

  std::cout << "\nReading: the GPU round-robins per-model batches, so the\n"
               "cheap MobileNetV3Small stream is not starved by the heavy\n"
               "EfficientNet batches; each controller independently settles\n"
               "at what its model's share of the GPU can sustain.\n";
  return 0;
}
