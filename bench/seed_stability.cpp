// Statistical robustness of the headline result: runs the Fig. 3
// FrameFeedback-vs-all-or-nothing comparison across independent seeds
// (one sweep with 8 replicates per controller) and reports 95% confidence
// intervals on per-phase throughput and on the headline ratios, so the
// single-seed figures can be trusted.

#include <iostream>

#include "ff/core/framefeedback.h"
#include "ff/rt/thread_pool.h"
#include "ff/sweep/sweep.h"

int main() {
  using namespace ff;

  constexpr std::size_t kSeeds = 8;
  std::cout << "=== Seed stability: Fig. 3 headline across " << kSeeds
            << " seeds ===\n\n";

  core::Scenario base = core::Scenario::paper_network();
  base.seed = 100;  // replicate r runs with seed 100 + r

  sweep::SweepConfig cfg;
  cfg.name = "seed_stability";
  cfg.base = base;
  cfg.seed_mode = sweep::SeedMode::kScenario;
  cfg.replicates = kSeeds;
  cfg.controllers = {
      {"frame-feedback",
       core::make_controller_factory<control::FrameFeedbackController>()},
      {"all-or-nothing",
       core::make_controller_factory<control::IntervalOffloadController>()},
  };
  // One probe per Table V phase: mean P of device 0 within the phase.
  const auto& phases = base.network.phases();
  for (std::size_t p = 0; p < phases.size(); ++p) {
    cfg.probes.push_back(
        {"P[" + phases[p].label + "]",
         [&base, p](const core::ExperimentResult& r) {
           return core::phase_means(*r.devices[0].series.find("P"),
                                    base.network, r.duration)
               .at(p)
               .mean;
         }});
  }

  const sweep::SweepResult runs = sweep::run(cfg);
  const auto cells = sweep::aggregate(runs);  // cell 0 = FF, cell 1 = AoN

  TextTable table({"phase", "frame-feedback P (95% CI)",
                   "all-or-nothing P (95% CI)"});
  for (std::size_t p = 0; p < phases.size(); ++p) {
    const MeanCi& ff_ci = cells[0].metrics[p].ci;
    const MeanCi& aon_ci = cells[1].metrics[p].ci;
    table.add_row({phases[p].label,
                   fmt(ff_ci.mean, 2) + " +- " + fmt(ff_ci.half_width, 2),
                   fmt(aon_ci.mean, 2) + " +- " + fmt(aon_ci.half_width, 2)});
  }
  std::cout << table.render();

  // Headline ratios pair the FF and AoN runs of the same seed, so they
  // come from the paired points rather than the per-cell aggregates.
  std::vector<double> r40, r90;
  for (std::size_t r = 0; r < kSeeds; ++r) {
    const auto& ff = runs.at({}, 0, r).result;
    const auto& aon = runs.at({}, 1, r).result;
    r40.push_back(core::throughput_ratio(ff.devices[0], aon.devices[0],
                                         33 * kSecond, 45 * kSecond));
    r90.push_back(core::throughput_ratio(ff.devices[0], aon.devices[0],
                                         90 * kSecond, ff.duration));
  }
  const MeanCi ci40 = mean_ci(r40);
  const MeanCi ci90 = mean_ci(r90);
  std::cout << "\nHeadline ratio (FF / all-or-nothing), 95% CI over seeds:\n"
            << "  around t=40s: " << fmt(ci40.mean, 2) << " +- "
            << fmt(ci40.half_width, 2) << "  [" << fmt(ci40.lo(), 2) << ", "
            << fmt(ci40.hi(), 2) << "]\n"
            << "  beyond t=90s: " << fmt(ci90.mean, 2) << " +- "
            << fmt(ci90.half_width, 2) << "  [" << fmt(ci90.lo(), 2) << ", "
            << fmt(ci90.hi(), 2) << "]\n"
            << "\nThe paper's \"50% to 3x\" claim holds if both intervals\n"
               "stay above 1.0 with means in [1.5, 3].\n";
  rt::shutdown_default_pool();
  return 0;
}
