// Statistical robustness of the headline result: runs the Fig. 3
// FrameFeedback-vs-all-or-nothing comparison across independent seeds and
// reports 95% confidence intervals on per-phase throughput and on the
// headline ratios, so the single-seed figures can be trusted.

#include <iostream>

#include "ff/core/framefeedback.h"
#include "ff/rt/thread_pool.h"

int main() {
  using namespace ff;

  constexpr int kSeeds = 8;
  std::cout << "=== Seed stability: Fig. 3 headline across " << kSeeds
            << " seeds ===\n\n";

  struct SeedOutcome {
    std::vector<double> ff_phase_means;
    std::vector<double> aon_phase_means;
    double ratio_40;
    double ratio_90;
  };

  core::Scenario base = core::Scenario::paper_network();

  const auto outcomes = rt::parallel_map(kSeeds, [&](std::size_t i) {
    core::Scenario s = base;
    s.seed = 100 + i;
    const auto ff = core::run_experiment(
        s, core::make_controller_factory<control::FrameFeedbackController>());
    const auto aon = core::run_experiment(
        s, core::make_controller_factory<control::IntervalOffloadController>());
    SeedOutcome o;
    for (const auto& ph : core::phase_means(*ff.devices[0].series.find("P"),
                                            s.network, ff.duration)) {
      o.ff_phase_means.push_back(ph.mean);
    }
    for (const auto& ph : core::phase_means(*aon.devices[0].series.find("P"),
                                            s.network, aon.duration)) {
      o.aon_phase_means.push_back(ph.mean);
    }
    o.ratio_40 = core::throughput_ratio(ff.devices[0], aon.devices[0],
                                        33 * kSecond, 45 * kSecond);
    o.ratio_90 = core::throughput_ratio(ff.devices[0], aon.devices[0],
                                        90 * kSecond, ff.duration);
    return o;
  });

  const auto& phases = base.network.phases();
  TextTable table({"phase", "frame-feedback P (95% CI)",
                   "all-or-nothing P (95% CI)"});
  for (std::size_t p = 0; p < phases.size(); ++p) {
    std::vector<double> ff_samples, aon_samples;
    for (const auto& o : outcomes) {
      ff_samples.push_back(o.ff_phase_means.at(p));
      aon_samples.push_back(o.aon_phase_means.at(p));
    }
    const MeanCi ff_ci = mean_ci(ff_samples);
    const MeanCi aon_ci = mean_ci(aon_samples);
    table.add_row({phases[p].label,
                   fmt(ff_ci.mean, 2) + " +- " + fmt(ff_ci.half_width, 2),
                   fmt(aon_ci.mean, 2) + " +- " + fmt(aon_ci.half_width, 2)});
  }
  std::cout << table.render();

  std::vector<double> r40, r90;
  for (const auto& o : outcomes) {
    r40.push_back(o.ratio_40);
    r90.push_back(o.ratio_90);
  }
  const MeanCi ci40 = mean_ci(r40);
  const MeanCi ci90 = mean_ci(r90);
  std::cout << "\nHeadline ratio (FF / all-or-nothing), 95% CI over seeds:\n"
            << "  around t=40s: " << fmt(ci40.mean, 2) << " +- "
            << fmt(ci40.half_width, 2) << "  [" << fmt(ci40.lo(), 2) << ", "
            << fmt(ci40.hi(), 2) << "]\n"
            << "  beyond t=90s: " << fmt(ci90.mean, 2) << " +- "
            << fmt(ci90.half_width, 2) << "  [" << fmt(ci90.lo(), 2) << ", "
            << fmt(ci90.hi(), 2) << "]\n"
            << "\nThe paper's \"50% to 3x\" claim holds if both intervals\n"
               "stay above 1.0 with means in [1.5, 3].\n";
  return 0;
}
