// Shared-medium ablation: the paper shapes each Pi's interface with NetEm
// independently; on real Wi-Fi the devices contend for one channel. Runs
// the three-device fleet with (a) independent 10 Mbps links (paper's
// emulation) and (b) one shared 10 Mbps medium, and shows FrameFeedback
// discovering each device's share of the contended channel.

#include <iostream>

#include "ff/core/framefeedback.h"

int main() {
  using namespace ff;

  std::cout << "=== Independent links vs one shared wireless medium ===\n\n";

  auto base = [] {
    core::Scenario s = core::Scenario::paper_network();
    s.seed = 42;
    // Constant clean 10 Mbps; the variable under test is sharing, not the
    // Table V walk.
    const net::LinkConditions clean{Bandwidth::mbps(10.0), 0.0,
                                    2 * kMillisecond};
    s.network = net::NetemSchedule::constant(clean);
    s.uplink_template.initial = clean;
    s.downlink_template.initial = clean;
    for (auto& d : s.devices) d.frame_limit = 0;
    s.duration = 60 * kSecond;
    return s;
  };

  core::Scenario independent = base();
  core::Scenario shared = base();
  shared.shared_uplink_medium = true;

  const auto r_ind = core::run_experiment(
      independent,
      core::make_controller_factory<control::FrameFeedbackController>());
  const auto r_shared = core::run_experiment(
      shared,
      core::make_controller_factory<control::FrameFeedbackController>());

  const Bytes frame = models::frame_bytes({});
  const double per_device_demand_mbps =
      static_cast<double>(frame.count) * 8.0 * 30.0 / 1e6;
  std::cout << "Per-device demand at 30 fps: "
            << fmt(per_device_demand_mbps, 1)
            << " Mbps; three devices need "
            << fmt(3 * per_device_demand_mbps, 1)
            << " Mbps but the shared channel carries 10.\n\n";

  TextTable table({"topology", "device", "steady Po", "steady P",
                   "timeouts"});
  for (const auto* r : {&r_ind, &r_shared}) {
    for (const auto& d : r->devices) {
      table.add_row(
          {r == &r_ind ? "independent links" : "shared medium", d.name,
           fmt(d.series.find("Po_target")->mean_between(20 * kSecond,
                                                        r->duration), 1),
           fmt(d.series.find("P")->mean_between(20 * kSecond, r->duration), 1),
           std::to_string(d.totals.timeouts())});
    }
  }
  std::cout << table.render();

  double shared_po_total = 0;
  for (const auto& d : r_shared.devices) {
    shared_po_total += d.series.find("Po_success")->mean_between(
        20 * kSecond, r_shared.duration);
  }
  std::cout << "\nAggregate successful offload rate on the shared medium: "
            << fmt(shared_po_total, 1) << " fps ("
            << fmt(shared_po_total * frame.count * 8.0 / 1e6, 1)
            << " Mbps of ~10 available).\n";

  std::cout << "\nReading: with independent links every device offloads all\n"
               "30 fps. On the shared channel the controllers cannot all\n"
               "win; each backs off until the aggregate roughly fills the\n"
               "medium -- distributed congestion control emerging from\n"
               "per-device feedback alone.\n";
  return 0;
}
