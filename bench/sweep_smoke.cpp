// Sweep engine smoke: a tiny grid (2 fps values x 2 controllers x 2
// replicates) run twice -- serially and on 2 worker threads -- asserting
// the outputs are bit-identical, then exporting every writer format.
// CI runs this in Release and uploads the artifacts; it doubles as a
// end-to-end determinism canary on the exact binaries being shipped.
//
// Output: SWEEP_smoke.csv (per point), SWEEP_smoke_summary.csv (per
// cell), BENCH_sweep.json, sweep_smoke_trace.jsonl.

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "ff/core/framefeedback.h"
#include "ff/obs/metrics.h"
#include "ff/obs/trace.h"
#include "ff/rt/thread_pool.h"
#include "ff/sweep/sweep.h"

int main() {
  using namespace ff;

  std::cout << "=== Sweep smoke: serial vs parallel determinism ===\n\n";

  sweep::SweepConfig cfg;
  cfg.name = "sweep_smoke";
  cfg.base = core::Scenario::ideal(10 * kSecond);
  cfg.base.seed = 7;
  cfg.replicates = 2;
  cfg.controllers = {
      {"frame-feedback",
       core::make_controller_factory<control::FrameFeedbackController>()},
      {"local-only",
       core::make_controller_factory<control::LocalOnlyController>()},
  };
  sweep::Axis fps_axis;
  fps_axis.name = "fps";
  for (const double f : {15.0, 30.0}) {
    fps_axis.values.push_back({fmt(f, 0), [f](core::Scenario& s) {
                                 s.devices[0].source_fps = f;
                               }});
  }
  cfg.axes.push_back(std::move(fps_axis));
  cfg.probes = {
      {"mean_P",
       [](const core::ExperimentResult& r) {
         return r.devices[0].mean_throughput();
       }},
      {"goodput",
       [](const core::ExperimentResult& r) {
         return r.devices[0].goodput_fraction();
       }},
  };

  cfg.threads = 1;
  const sweep::SweepResult serial = sweep::run(cfg);

  obs::MetricsRegistry metrics;
  obs::JsonlTraceSink trace("sweep_smoke_trace.jsonl");
  cfg.threads = 2;
  cfg.metrics = &metrics;
  cfg.trace = &trace;
  cfg.on_point = [](const sweep::PointDesc& desc, std::size_t done,
                    std::size_t total) {
    std::cout << "  [" << done << "/" << total << "] " << desc.label << "\n";
  };
  const sweep::SweepResult parallel = sweep::run(cfg);

  bool ok = serial.points.size() == parallel.points.size();
  for (std::size_t i = 0; ok && i < serial.points.size(); ++i) {
    ok = sweep::result_fingerprint(serial.points[i].result) ==
         sweep::result_fingerprint(parallel.points[i].result);
  }
  std::ostringstream serial_csv, parallel_csv;
  sweep::write_points_csv(serial, serial_csv);
  sweep::write_points_csv(parallel, parallel_csv);
  ok = ok && serial_csv.str() == parallel_csv.str();

  std::cout << "\nserial vs 2-thread: "
            << (ok ? "bit-identical" : "MISMATCH") << " ("
            << serial.points.size() << " points)\n";

  sweep::write_points_csv(parallel, "SWEEP_smoke.csv");
  sweep::write_summary_csv(parallel, sweep::aggregate(parallel),
                           "SWEEP_smoke_summary.csv");
  sweep::write_bench_json(parallel, "BENCH_sweep.json");
  std::cout << "wrote SWEEP_smoke.csv, SWEEP_smoke_summary.csv, "
               "BENCH_sweep.json, sweep_smoke_trace.jsonl\n";

  rt::shutdown_default_pool();
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
