// Reproduces paper Table II: local inference rate Pl for every Raspberry
// Pi x model pair -- measured by actually running each device's local
// engine flat-out in the simulator, not by echoing the profile constants.

#include <iostream>

#include "ff/core/framefeedback.h"

int main() {
  using namespace ff;

  std::cout << "=== Table II: measured local inference rates Pl (fps) ===\n\n";

  const std::vector<models::ModelId> model_order = {
      models::ModelId::kMobileNetV3Small,
      models::ModelId::kEfficientNetB0,
      models::ModelId::kMobileNetV3Large,
      models::ModelId::kEfficientNetB4,
  };

  TextTable table({"", "3B Rev 1.2", "4B Rev 1.2", "4B Rev 1.4"});
  table.add_row({"CPUs", "4", "4", "4"});
  {
    std::vector<std::string> row{"Speed"};
    for (const auto& d : models::all_devices()) {
      row.push_back(std::to_string(d.clock_mhz) + " MHz");
    }
    table.add_row(row);
  }
  {
    std::vector<std::string> row{"Memory"};
    for (const auto& d : models::all_devices()) {
      row.push_back(std::to_string(d.memory_mib) + " Mi");
    }
    table.add_row(row);
  }

  constexpr SimDuration kMeasureWindow = 120 * kSecond;
  for (const auto model : model_order) {
    std::vector<std::string> row{std::string(models::model_name(model)) +
                                 " Pl"};
    for (const auto& profile : models::all_devices()) {
      // Saturate the local engine: submit a frame the moment a slot opens.
      sim::Simulator sim(7);
      std::uint64_t done = 0;
      models::LocalLatencyModel latency(profile, model,
                                        sim.make_rng(profile.name), 0.08);
      device::LocalEngine engine(sim, latency, {2},
                                 [&](std::uint64_t, SimTime) { ++done; });
      std::uint64_t id = 0;
      sim::PeriodicTimer feeder(sim, [&](std::uint64_t) {
        while (engine.submit(id, sim.now())) ++id;
      });
      feeder.start(10 * kMillisecond);
      sim.run_until(kMeasureWindow);
      const double rate =
          static_cast<double>(done) / sim_to_seconds(kMeasureWindow);
      row.push_back(fmt(rate, 1));
    }
    table.add_row(row);
  }
  std::cout << table.render();

  std::cout << "\nPaper Table II reference values:\n"
            << "  MobileNetV3Small: 5.5 / 13 / 13.4\n"
            << "  EfficientNetB0:   1.8 / 2.5 / 4.2\n"
            << "(MobileNetV3Large and EfficientNetB4 rows are this library's\n"
            << " derived estimates; the paper only lists the two above.)\n";
  return 0;
}
