// Reproduces paper Table III: top-1 accuracy per model, plus the §II-D
// discussion quantified -- how capture resolution and JPEG quality trade
// accuracy against bytes-per-frame (the knob that matters when offloading
// over a constrained link).

#include <iostream>

#include "ff/core/framefeedback.h"

int main() {
  using namespace ff;

  std::cout << "=== Table III: top-1 model accuracy ===\n\n";
  TextTable t3({"Model", "Top-1 Accuracy", "Native input"});
  // Paper order: EfficientNetB0, EfficientNetB4, MobileNetV3Small,
  // MobileNetV3Large.
  for (const auto& m : models::all_models()) {
    t3.add_row({std::string(m.name), fmt(m.top1_accuracy * 100, 1) + "%",
                std::to_string(m.native_resolution) + "x" +
                    std::to_string(m.native_resolution)});
  }
  std::cout << t3.render();

  std::cout << "\n--- SII-D quantified: accuracy vs offload bytes ---\n\n";
  const models::ModelSpec& m =
      models::get_model(models::ModelId::kEfficientNetB4);
  std::cout << "Model: " << m.name << " (variable input size)\n";
  TextTable sweep({"Capture", "JPEG q", "Bytes/frame", "Eff. accuracy",
                   "Mbps at 30 fps"});
  for (const int side : {224, 380, 512}) {
    for (const int q : {50, 75, 90}) {
      const models::FrameSpec spec{side, side, q};
      const Bytes bytes = models::frame_bytes(spec);
      const double acc = models::effective_accuracy(m, spec);
      const double mbps = static_cast<double>(bytes.count) * 8.0 * 30.0 / 1e6;
      sweep.add_row({std::to_string(side) + "x" + std::to_string(side),
                     std::to_string(q), std::to_string(bytes.count),
                     fmt(acc * 100, 1) + "%", fmt(mbps, 1)});
    }
  }
  std::cout << sweep.render();

  std::cout << "\nReading: below-native capture costs accuracy steeply; heavy\n"
               "compression (q<=50) costs a little accuracy but halves the\n"
               "bytes -- the paper's point that both knobs trade accuracy\n"
               "against transfer size (SII-D).\n";
  return 0;
}
