# Self-contained public headers: every header under src/*/include must
# compile as its own translation unit, included first, with nothing but
# the module include paths on the command line. ff-lint's header-hygiene
# rule checks the statically checkable half of that contract (#pragma
# once, canonical "ff/..." include paths); this target is the compiler's
# half -- a header relying on a transitive include that goes away fails
# here, not in whichever user TU happened to expose it.

file(GLOB_RECURSE ff_public_headers CONFIGURE_DEPENDS
  "${PROJECT_SOURCE_DIR}/src/*/include/ff/*.h")

set(ff_header_smoke_dir "${CMAKE_BINARY_DIR}/header_smoke")
set(ff_header_smoke_sources "")
foreach(header IN LISTS ff_public_headers)
  # src/<mod>/include/ff/<mod>/<name>.h -> the "ff/<mod>/<name>.h" form
  # user code includes it by.
  string(REGEX REPLACE ".*/include/(ff/.*)$" "\\1" header_key "${header}")
  string(REGEX REPLACE "[/.]" "_" tu_name "${header_key}")
  set(tu "${ff_header_smoke_dir}/${tu_name}.cpp")
  file(CONFIGURE OUTPUT "${tu}" CONTENT "#include \"${header_key}\"\n")
  list(APPEND ff_header_smoke_sources "${tu}")
endforeach()

add_library(ff_header_smoke OBJECT ${ff_header_smoke_sources})
# Linked only for the include paths; generated TUs define no symbols.
target_link_libraries(ff_header_smoke PRIVATE
  ff::util ff::obs ff::sim ff::models ff::net ff::server ff::device
  ff::control ff::rt ff::core ff::fleet ff::sweep ff::invariants
  ff_warnings)
