// ffctl: run any scenario/controller combination from the command line.
//
//   ffctl scenario=paper_network controller=frame-feedback
//   ffctl scenario=ideal controller=aimd duration_s=60 net.loss=0.05
//   ffctl controllers=frame-feedback,all-or-nothing scenario=paper_network
//   ffctl config=run.cfg plot=Po_target csv=out.csv
//
// See ff/core/scenario_config.h for the full key list. `controllers=` (a
// comma list) runs a comparison; `plot=<series>` adds an ASCII plot;
// `csv=<path>` dumps device 0's series.

#include <iostream>
#include <memory>
#include <sstream>

#include "ff/core/framefeedback.h"
#include "ff/core/obs_export.h"
#include "ff/invariants/capture.h"
#include "ff/obs/trace.h"
#include "ff/util/config.h"

namespace {

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

void print_help() {
  std::cout
      << "ffctl -- FrameFeedback experiment runner\n\n"
      << "usage: ffctl [key=value ...]\n\n"
      << "  scenario=NAME      " << ff::core::known_scenario_names() << "\n"
      << "  controller=NAME    " << ff::core::known_controller_names() << "\n"
      << "  controllers=A,B    run a comparison instead of a single run\n"
      << "  config=FILE        load keys from a file first\n"
      << "  plot=SERIES        ASCII-plot a series (P, Po_target, T, ...)\n"
      << "  csv=PATH           dump device 0 series as long-form CSV\n"
      << "  trace=PATH         dump per-frame lifecycle CSV (all devices)\n"
      << "  --trace-out=PATH   structured JSONL trace: frame lifecycle,\n"
      << "                     controller ticks, net/server events\n"
      << "  --metrics-out=PATH run-level metrics as one JSON document\n"
      << "  --replay=CAPTURE   re-execute a flight-recorder capture (from\n"
      << "                     the invariants bench) and verify the result\n"
      << "                     fingerprint reproduces bit-identically\n"
      << "  seed=N duration_s=N devices=N shared_medium=BOOL\n"
      << "  device.fps device.model device.profile device.deadline_ms\n"
      << "  net.bandwidth_mbps net.loss net.delay_ms load.rate\n"
      << "  controller.kp controller.kd controller.ki\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> leftover;
  ff::Config cfg = ff::Config::from_args(argc, argv, &leftover);
  for (const auto& arg : leftover) {
    if (arg == "-h" || arg == "--help" || arg == "help") {
      print_help();
      return 0;
    }
  }
  if (const auto file = cfg.get("config")) {
    // File provides defaults; command line wins.
    ff::Config merged = ff::Config::from_file(*file);
    for (const auto& [k, v] : cfg.entries()) merged.set(k, v);
    cfg = merged;
  }

  try {
    if (const auto capture = cfg.get("replay")) {
      const auto replay = ff::invariants::replay_capture(*capture);
      std::cout << "replay " << *capture << ": scenario "
                << replay.capture.scenario << ", controller "
                << replay.capture.controller << ", seed "
                << replay.capture.seed << "\n"
                << "  events " << replay.replayed_events << " (captured "
                << replay.capture.events_executed << ")\n";
      if (replay.match()) {
        std::cout << "  fingerprint reproduced bit-identically\n";
        return 0;
      }
      std::cout << "  FINGERPRINT MISMATCH: expected " << std::hex
                << replay.capture.fingerprint << ", got "
                << replay.replayed_fingerprint << std::dec << "\n";
      return 1;
    }

    const ff::core::Scenario scenario = ff::core::scenario_from_config(cfg);

    std::vector<std::string> controllers;
    if (const auto list = cfg.get("controllers")) {
      controllers = split_csv(*list);
    } else {
      controllers = {cfg.get_string("controller", "frame-feedback")};
    }

    const auto trace_path = cfg.get("trace");
    const auto trace_out = cfg.get("trace-out");
    const auto metrics_out = cfg.get("metrics-out");

    std::vector<ff::core::ExperimentResult> results;
    for (const auto& name : controllers) {
      ff::Config run_cfg = cfg;
      run_cfg.set("controller", name);
      ff::core::Experiment experiment(
          scenario, ff::core::controller_factory_from_config(run_cfg));

      // Later runs of a comparison write with a `.controller` suffix so
      // the first run keeps the plain path.
      const bool first_run = results.empty();
      const auto run_path = [&](const std::string& base) {
        return first_run ? base : base + "." + name;
      };

      // Both trace consumers observe the same run through one fanout.
      ff::obs::FanoutTraceSink fanout;
      ff::device::FrameTracer tracer;
      if (trace_path) fanout.add(&tracer);
      std::unique_ptr<ff::obs::JsonlTraceSink> jsonl;
      if (trace_out) {
        jsonl = std::make_unique<ff::obs::JsonlTraceSink>(run_path(*trace_out));
        fanout.add(jsonl.get());
      }
      if (!fanout.empty()) experiment.set_trace_sink(&fanout);

      results.push_back(experiment.run());

      if (trace_path) {
        const std::string path = run_path(*trace_path);
        tracer.write_csv(path);
        std::cout << "wrote frame trace " << path << " ("
                  << tracer.total_recorded() << " events)\n";
      }
      if (jsonl) {
        jsonl->flush();
        std::cout << "wrote trace " << run_path(*trace_out) << " ("
                  << jsonl->events_written() << " events)\n";
      }
      if (metrics_out) {
        const std::string path = run_path(*metrics_out);
        ff::core::write_metrics_json_file(results.back(), path);
        std::cout << "wrote metrics " << path << "\n";
      }
    }

    for (const auto& r : results) {
      ff::core::print_summary(std::cout, r);
      std::cout << "\n";
    }

    if (const auto series = cfg.get("plot")) {
      std::vector<const ff::core::ExperimentResult*> ptrs;
      for (const auto& r : results) ptrs.push_back(&r);
      ff::core::plot_runs(std::cout, *series + " (device 0)", ptrs, *series);
    }

    if (results.size() > 1) {
      std::cout << "\nMean P (fps) over the whole run:\n";
      ff::TextTable t({"controller", "mean P", "goodput %"});
      for (const auto& r : results) {
        t.add_row({r.devices[0].controller,
                   ff::fmt(r.devices[0].mean_throughput(), 2),
                   ff::fmt(r.devices[0].goodput_fraction() * 100, 1)});
      }
      std::cout << t.render();
    }

    if (const auto csv = cfg.get("csv")) {
      ff::write_bundle_csv(results[0].devices[0].series, *csv);
      std::cout << "\nwrote " << *csv << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "ffctl: " << e.what() << "\n\n";
    print_help();
    return 1;
  }
  return 0;
}
