// Multi-tenancy walk-through (the paper's §IV-E scenario): background
// request volume walks Table VI while three Pis try to offload. Shows how
// FrameFeedback backs off under server saturation and how capacity is
// shared across heterogeneous devices.
//
// Usage: multi_tenant [seed=N] [peak_load=N] [devices=N]

#include <iostream>

#include "ff/core/framefeedback.h"
#include "ff/util/config.h"

int main(int argc, char** argv) {
  const ff::Config cfg = ff::Config::from_args(argc, argv);

  ff::core::Scenario scenario = ff::core::Scenario::paper_server_load();
  scenario.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));

  const auto extra_devices = cfg.get_int("devices", 3);
  while (static_cast<std::int64_t>(scenario.devices.size()) > extra_devices &&
         scenario.devices.size() > 1) {
    scenario.devices.pop_back();
  }

  if (cfg.has("peak_load")) {
    // Rescale Table VI so its peak equals the requested rate.
    const double peak = cfg.get_double("peak_load", 150.0);
    ff::server::LoadSchedule scaled;
    for (const auto& phase : scenario.background_load.phases()) {
      scaled.add(phase.start, ff::Rate{phase.rate.per_second * peak / 150.0});
    }
    scenario.background_load = scaled;
  }

  std::cout << "Background load schedule (paper Table VI):\n";
  for (const auto& phase : scenario.background_load.phases()) {
    std::cout << "  t=" << ff::sim_to_seconds(phase.start) << "s  "
              << phase.rate.per_second << " req/s\n";
  }

  const auto spec =
      ff::models::get_model(scenario.devices[0].model);
  std::cout << "\nServer capacity at full batches: "
            << ff::fmt(ff::models::gpu_throughput(spec,
                                                  scenario.server.batch_limit),
                                                      0)
            << " fps (" << spec.name << ", batch limit "
            << scenario.server.batch_limit << ")\n\nRunning...\n\n";

  const auto result = ff::core::run_experiment(
      scenario,
      ff::core::make_controller_factory<
          ff::control::FrameFeedbackController>());

  ff::core::print_summary(std::cout, result);

  for (std::size_t i = 0; i < result.devices.size(); ++i) {
    const auto& d = result.devices[i];
    std::cout << "\n" << d.name << "  P:  "
              << ff::sparkline(*d.series.find("P")) << "\n"
              << std::string(d.name.size(), ' ') << "  Po: "
              << ff::sparkline(*d.series.find("Po_target")) << "\n";
  }

  std::cout << "\nMean P per load phase (device 0):\n";
  const auto phases = ff::core::phase_means(
      *result.devices[0].series.find("P"), scenario.background_load,
      result.duration);
  for (const auto& p : phases) {
    std::cout << "  " << p.label << "  ->  " << ff::fmt(p.mean, 2) << " fps\n";
  }
  return 0;
}
