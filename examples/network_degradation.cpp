// Network degradation walk-through (the paper's §IV-D scenario): three
// Pis share a GPU edge server while the network steps through Table V.
// Compares FrameFeedback against the three baselines and narrates each
// phase.
//
// Usage: network_degradation [seed=N] [bandwidth_unit_mbps=N] [csv=path]

#include <iostream>
#include <memory>

#include "ff/core/framefeedback.h"
#include "ff/util/config.h"

namespace {

ff::core::ExperimentResult run_with(
    const ff::core::Scenario& scenario,
    ff::core::ControllerFactory factory) {
  return ff::core::run_experiment(scenario, std::move(factory));
}

}  // namespace

int main(int argc, char** argv) {
  const ff::Config cfg = ff::Config::from_args(argc, argv);
  const double unit = cfg.get_double("bandwidth_unit_mbps", 1.0);

  ff::core::Scenario scenario =
      ff::core::Scenario::paper_network(ff::Bandwidth::mbps(unit));
  scenario.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));

  std::cout << "Network schedule (paper Table V, x" << unit << " Mbps):\n";
  for (const auto& phase : scenario.network.phases()) {
    std::cout << "  t=" << ff::sim_to_seconds(phase.start)
              << "s  " << phase.label << "\n";
  }
  std::cout << "\nRunning 4 controllers over "
            << ff::sim_to_seconds(scenario.duration) << "s...\n\n";

  const auto ff_run = run_with(
      scenario,
      ff::core::make_controller_factory<
          ff::control::FrameFeedbackController>());
  const auto local_run = run_with(
      scenario,
      ff::core::make_controller_factory<ff::control::LocalOnlyController>());
  const auto always_run = run_with(
      scenario,
      ff::core::make_controller_factory<
          ff::control::AlwaysOffloadController>());
  const auto interval_run = run_with(
      scenario,
      ff::core::make_controller_factory<
          ff::control::IntervalOffloadController>());

  ff::core::plot_runs(std::cout,
                      "Fig 3: total inference throughput P (device 0)",
                      {&ff_run, &local_run, &always_run, &interval_run}, "P");

  std::vector<std::vector<ff::core::PhaseStat>> phase_stats;
  std::vector<std::string> names;
  for (const auto* run : {&ff_run, &local_run, &always_run, &interval_run}) {
    names.push_back(run->devices[0].controller);
    phase_stats.push_back(ff::core::phase_means(
        *run->devices[0].series.find("P"), scenario.network, run->duration));
  }
  std::cout << "\nMean P (fps) per network phase, device 0:\n";
  ff::core::print_phase_comparison(std::cout, names, phase_stats);

  std::cout << "\nFrameFeedback run in detail:\n";
  ff::core::print_summary(std::cout, ff_run);

  if (const auto csv = cfg.get("csv")) {
    ff::write_bundle_csv(ff_run.devices[0].series, *csv);
    std::cout << "\nwrote " << *csv << "\n";
  }
  return 0;
}
