// Quickstart: one Raspberry Pi streaming 30 fps video, one GPU edge
// server, a clean network -- watch FrameFeedback ramp offloading up to the
// source frame rate.
//
// Usage: quickstart [seed=N] [duration_s=N] [fps=N]

#include <iostream>

#include "ff/core/framefeedback.h"
#include "ff/util/config.h"

int main(int argc, char** argv) {
  const ff::Config cfg = ff::Config::from_args(argc, argv);

  ff::core::Scenario scenario =
      ff::core::Scenario::ideal(ff::seconds_to_sim(cfg.get_double("duration_s",
                                                                  30.0)));
  scenario.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));
  scenario.devices[0].source_fps = cfg.get_double("fps", 30.0);

  std::cout << "FrameFeedback quickstart\n"
            << "  device: " << scenario.devices[0].name << " running "
            << ff::models::model_name(scenario.devices[0].model) << " at "
            << scenario.devices[0].source_fps << " fps\n"
            << "  local-only rate Pl = "
            << ff::models::get_device(scenario.devices[0].profile)
                   .local_rate(scenario.devices[0].model)
            << " fps, deadline = "
            << ff::sim_to_seconds(scenario.devices[0].deadline) * 1000
                << " ms\n\n";

  ff::core::ExperimentResult result = ff::core::run_experiment(
      scenario,
      ff::core::make_controller_factory<
          ff::control::FrameFeedbackController>());

  ff::core::print_summary(std::cout, result);

  const auto& series = result.devices[0].series;
  std::cout << "\nThroughput P (fps) over time:\n"
            << "  " << ff::sparkline(*series.find("P")) << "\n"
            << "Offload target Po (fps) over time:\n"
            << "  " << ff::sparkline(*series.find("Po_target")) << "\n\n";

  ff::core::plot_runs(std::cout, "P and Po_target (fps)", {&result}, "P");

  std::cout << "\nThe controller drove Po to ~" << ff::fmt(
                   series.find("Po_target")->stats_between(
                       result.duration / 2, result.duration).mean(), 1)
            << " fps (Fs = " << scenario.devices[0].source_fps
            << "), lifting throughput well above the local-only rate.\n";
  return 0;
}
