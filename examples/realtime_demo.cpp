// Real-time replay demo: runs the quickstart scenario paced against the
// wall clock (scaled), printing live controller state once per simulated
// second -- what you would see on a deployed device's console.
//
// Usage: realtime_demo [duration_s=10] [speed=4] [loss_at_s=5]

#include <iomanip>
#include <iostream>

#include "ff/core/framefeedback.h"
#include "ff/rt/realtime.h"
#include "ff/util/config.h"

int main(int argc, char** argv) {
  const ff::Config cfg = ff::Config::from_args(argc, argv);
  const double duration_s = cfg.get_double("duration_s", 10.0);
  const double speed = cfg.get_double("speed", 4.0);
  const double loss_at_s = cfg.get_double("loss_at_s", 5.0);

  ff::core::Scenario scenario =
      ff::core::Scenario::ideal(ff::seconds_to_sim(duration_s));
  scenario.network = ff::net::NetemSchedule::loss_injection(
      ff::seconds_to_sim(loss_at_s), 0.07, ff::Bandwidth::mbps(10.0));
  scenario.uplink_template.initial = scenario.network.at(0);
  scenario.downlink_template.initial = scenario.network.at(0);

  std::cout << "Real-time replay at " << speed << "x: " << duration_s
            << "s of simulated streaming, 7% loss injected at t="
            << loss_at_s << "s\n\n"
            << "  t(s)   Po(target)  P(fps)   T(/s)   cpu%\n";

  ff::core::Experiment experiment(
      scenario,
      ff::core::make_controller_factory<
          ff::control::FrameFeedbackController>());

  ff::rt::RealtimeOptions options;
  options.time_scale = speed;
  options.horizon = scenario.duration;
  options.progress_period = ff::kSecond;
  options.on_progress = [&](ff::SimTime now) {
    auto& dev = experiment.device(0);
    auto& t = dev.telemetry();
    std::cout << "  " << std::setw(4) << ff::fmt(ff::sim_to_seconds(now), 1)
              << "   " << std::setw(9) << ff::fmt(dev.offload_rate(), 1)
              << "   " << std::setw(6) << ff::fmt(t.throughput(now), 1)
              << "   " << std::setw(5) << ff::fmt(t.timeout_rate(now), 1)
              << "   " << std::setw(4)
              << ff::fmt(dev.cpu_utilization() * 100, 0) << "\n";
  };

  // Start the scenario actors by scheduling through Experiment::run()'s
  // internals is not possible here; instead drive a fresh run with the
  // realtime executor: start devices and timers manually.
  experiment.device(0).start();
  // The control loop: replicate Experiment's 1 Hz tick.
  ff::sim::PeriodicTimer control(experiment.simulator(), [&](std::uint64_t) {
    auto input = experiment.device(0).controller_input();
    const double po = experiment.controller(0).update(input);
    experiment.device(0).set_offload_rate(po);
  });
  control.start(experiment.controller(0).measure_period(),
                experiment.controller(0).measure_period());

  const std::uint64_t events =
      ff::rt::run_realtime(experiment.simulator(), options);

  std::cout << "\nReplay done: " << events << " events executed.\n";
  return 0;
}
