// Controller tuning playground (the paper's §III-B procedure): sweep Kp
// and Kd over the Fig. 2 scenario (clean network, 7% loss injected at
// t=27s) and score each gain pair for rise time, overshoot and
// oscillation.
//
// Usage: tuning_playground [seed=N] [kp=0.1,0.2,0.4] [kd=0,0.26,0.5]

#include <iostream>
#include <sstream>

#include "ff/core/framefeedback.h"
#include "ff/rt/thread_pool.h"
#include "ff/sweep/sweep.h"
#include "ff/util/config.h"

namespace {

std::vector<double> parse_list(const std::string& csv,
                               std::vector<double> fallback) {
  if (csv.empty()) return fallback;
  std::vector<double> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    try {
      out.push_back(std::stod(item));
    } catch (const std::exception&) {
      return fallback;
    }
  }
  return out.empty() ? fallback : out;
}

}  // namespace

int main(int argc, char** argv) {
  const ff::Config cfg = ff::Config::from_args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));

  const auto kps = parse_list(cfg.get_string("kp", ""), {0.1, 0.2, 0.4, 0.8});
  const auto kds = parse_list(cfg.get_string("kd", ""), {0.0, 0.26, 0.5});
  const auto grid = ff::control::gain_grid(kps, kds);

  std::cout << "Sweeping " << grid.size() << " (Kp, Kd) pairs on the Fig. 2 "
            << "scenario (loss injected at t=27s), in parallel...\n\n";

  ff::core::Scenario scenario = ff::core::Scenario::paper_tuning();
  scenario.seed = seed;

  ff::sweep::SweepConfig sweep_cfg;
  sweep_cfg.name = "tuning_playground";
  sweep_cfg.base = scenario;
  sweep_cfg.seed_mode = ff::sweep::SeedMode::kScenario;
  for (const auto& [kp, kd] : grid) {
    ff::control::FrameFeedbackConfig c;
    c.kp = kp;
    c.kd = kd;
    sweep_cfg.controllers.push_back(
        {"Kp=" + ff::fmt(kp, 2) + ",Kd=" + ff::fmt(kd, 2),
         ff::core::make_controller_factory<
             ff::control::FrameFeedbackController>(c)});
  }
  const ff::sweep::SweepResult runs = ff::sweep::run(sweep_cfg);

  struct Entry {
    double kp, kd;
    ff::control::ResponseMetrics clean;
    ff::control::ResponseMetrics lossy;
    double score;
  };

  std::vector<Entry> entries;
  entries.reserve(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto& result = runs.points[i].result;
    const auto& po = *result.devices[0].series.find("Po_target");
    Entry e;
    e.kp = grid[i].first;
    e.kd = grid[i].second;
    e.clean = ff::control::analyze_response(po, 0, 27 * ff::kSecond, 30.0);
    e.lossy = ff::control::analyze_response(po, 27 * ff::kSecond,
                                            result.duration, 30.0);
    e.score = ff::control::tuning_score(e.clean) +
              2.0 * e.lossy.steady_oscillation;
    entries.push_back(e);
  }

  ff::TextTable table({"Kp", "Kd", "rise (s)", "overshoot", "osc (clean)",
                       "osc (lossy)", "steady Po (lossy)", "score"});
  for (const auto& e : entries) {
    table.add_row({ff::fmt(e.kp, 2), ff::fmt(e.kd, 2),
                   ff::fmt(e.clean.rise_time_s, 1), ff::fmt(e.clean.overshoot,
                                                            2),
                   ff::fmt(e.clean.steady_oscillation, 2),
                   ff::fmt(e.lossy.steady_oscillation, 2),
                   ff::fmt(e.lossy.steady_mean, 1), ff::fmt(e.score, 2)});
  }
  std::cout << table.render();

  const Entry* best = &entries.front();
  for (const auto& e : entries) {
    if (e.score < best->score) best = &e;
  }
  std::cout << "\nBest pair by composite score: Kp=" << best->kp
            << " Kd=" << best->kd
            << "  (the paper ships Kp=0.2, Kd=0.26)\n";
  ff::rt::shutdown_default_pool();
  return 0;
}
