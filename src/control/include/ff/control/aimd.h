#pragma once

// AIMD (additive-increase/multiplicative-decrease) offload controller: a
// TCP-inspired comparison point beyond the paper's baselines, used by the
// ablation benches to show what the PD structure buys over the classic
// congestion-control reflex.

#include "ff/control/controller.h"

namespace ff::control {

struct AimdConfig {
  double increase_fraction{0.05};   ///< additive step, as a fraction of Fs
  double decrease_factor{0.5};      ///< multiplicative back-off on timeouts
  /// T below this fraction of Fs counts as a clean (timeout-free) period.
  double timeout_tolerance_fraction{0.05};
  double floor_fraction{0.03};      ///< keep probing at this fraction of Fs
  SimDuration measure_period{kSecond};
};

class AimdController final : public Controller {
 public:
  explicit AimdController(AimdConfig config = {});

  [[nodiscard]] std::string_view name() const override { return "aimd"; }
  [[nodiscard]] SimDuration measure_period() const override {
    return config_.measure_period;
  }
  [[nodiscard]] double update(const ControllerInput& input) override;
  void reset() override;

  [[nodiscard]] const AimdConfig& config() const { return config_; }

 private:
  AimdConfig config_;
  double offload_rate_{0.0};
};

}  // namespace ff::control
