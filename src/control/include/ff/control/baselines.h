#pragma once

// The paper's baseline controllers (§IV-B): local-only, always-offload,
// and DeepDecision-style all-or-nothing intervals driven by a heartbeat
// probe.

#include <algorithm>

#include "ff/control/controller.h"

namespace ff::control {

/// Never offloads (baseline 1).
class LocalOnlyController final : public Controller {
 public:
  [[nodiscard]] std::string_view name() const override { return "local-only"; }
  [[nodiscard]] double update(const ControllerInput&) override { return 0.0; }
};

/// Offloads every frame regardless of feedback (baseline 2).
class AlwaysOffloadController final : public Controller {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "always-offload";
  }
  [[nodiscard]] double update(const ControllerInput& input) override {
    return input.source_fps;
  }
};

/// DeepDecision-style all-or-nothing intervals (baseline 3): each
/// measurement step, send a heartbeat; if it returned before the deadline,
/// offload everything in the next interval, else go fully local.
class IntervalOffloadController final : public Controller {
 public:
  explicit IntervalOffloadController(SimDuration measure_period = kSecond)
      : measure_period_(measure_period) {}

  [[nodiscard]] std::string_view name() const override {
    return "all-or-nothing";
  }
  [[nodiscard]] SimDuration measure_period() const override {
    return measure_period_;
  }
  [[nodiscard]] bool wants_probe() const override { return true; }

  [[nodiscard]] double update(const ControllerInput& input) override {
    // Until a probe resolves, stay local (DeepDecision trusts only a
    // successful profile request).
    if (input.probe_success.has_value() && *input.probe_success) {
      return input.source_fps;
    }
    return 0.0;
  }

 private:
  SimDuration measure_period_;
};

/// Fixed offload rate (tuning/ablation helper, not in the paper).
class FixedRateController final : public Controller {
 public:
  explicit FixedRateController(double rate) : rate_(rate) {}

  [[nodiscard]] std::string_view name() const override { return "fixed-rate"; }
  [[nodiscard]] double update(const ControllerInput& input) override {
    return std::min(rate_, input.source_fps);
  }

 private:
  double rate_;
};

}  // namespace ff::control
