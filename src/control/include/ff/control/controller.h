#pragma once

// Offload-rate controller interface. Once per measurement period (1 s in
// the paper) the runtime feeds a controller the device's telemetry and it
// returns the offload-rate target Po for the next period.

#include <optional>
#include <string_view>

#include "ff/util/units.h"

namespace ff::control {

/// Telemetry snapshot handed to controllers each measurement tick. All
/// rates are per-second averages over the device's measurement window.
struct ControllerInput {
  SimTime now{0};
  double source_fps{30.0};      ///< Fs
  double offload_rate{0.0};     ///< current Po target (what we asked for)
  /// T: offloads that missed the deadline or failed, per second.
  double timeout_rate{0.0};
  double network_timeout_rate{0.0};  ///< Tn component of T
  double load_timeout_rate{0.0};     ///< Tl component of T
  /// Admission-control rejections per second (subset of Tl): typed server
  /// refusals that fleet placement uses to re-home the device.
  double admission_reject_rate{0.0};
  /// Offload results that arrived within the deadline, per second.
  double offload_success_rate{0.0};
  double local_rate{0.0};       ///< Pl achieved
  int frame_quality{85};        ///< JPEG quality currently used for offloads
  /// Result of the most recent heartbeat probe, when the controller asked
  /// for probing (DeepDecision-style baselines).
  std::optional<bool> probe_success{};
};

class Controller {
 public:
  virtual ~Controller() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// How often the runtime should call update(). Paper Table IV: 1 s.
  [[nodiscard]] virtual SimDuration measure_period() const { return kSecond; }

  /// Whether the runtime should issue a heartbeat probe each period and
  /// report its outcome in ControllerInput::probe_success.
  [[nodiscard]] virtual bool wants_probe() const { return false; }

  /// Computes the offload-rate target for the next period, in frames/s,
  /// already clamped to [0, Fs].
  [[nodiscard]] virtual double update(const ControllerInput& input) = 0;

  /// Optional second actuator (paper §II-D): the JPEG quality the device
  /// should encode offloaded frames at, decided during the last update().
  /// Controllers that only set the rate return nullopt (the default).
  [[nodiscard]] virtual std::optional<int> frame_quality() const {
    return std::nullopt;
  }

  /// Clears internal state (error history, integrators).
  virtual void reset() {}
};

}  // namespace ff::control
