#pragma once

// The FrameFeedback controller (paper §III): a PD controller on a
// piecewise process variable,
//
//   PV = Po            when T == 0        SP = Fs
//   PV = T + 0.9*Fs    when T  > 0
//
// giving the piecewise-linear error of Eq. 5:
//
//   e = Fs - Po        when T == 0   (push offloading toward Fs)
//   e = 0.1*Fs - T     when T  > 0   (back off when timeouts top 10% of Fs)
//
// with asymmetric update clamping (Table IV): aggressive downward
// (-0.5*Fs) and cautious upward (+0.1*Fs). Under total offload failure the
// equilibrium is Po = 0.1*Fs, a standing probe of offload availability.

#include "ff/control/controller.h"
#include "ff/control/pid.h"

namespace ff::control {

struct FrameFeedbackConfig {
  double kp{0.2};                    ///< Table IV
  double kd{0.26};                   ///< Table IV
  double ki{0.0};                    ///< Eq. 3 drops the integral term
  double timeout_setpoint_fraction{0.1};  ///< the "10% of Fs" knee
  double update_min_fraction{-0.5};  ///< min u, as a fraction of Fs
  double update_max_fraction{0.1};   ///< max u, as a fraction of Fs
  SimDuration measure_period{kSecond};  ///< Table IV: 1 s
  double initial_offload_rate{0.0};
  /// Treat |T| below this (frames/s) as "T == 0" in the piecewise PV.
  double timeout_epsilon{1e-9};
  /// When false, u is not clamped (Fig. 2 ablation knob).
  bool clamp_updates{true};
};

class FrameFeedbackController final : public Controller {
 public:
  explicit FrameFeedbackController(FrameFeedbackConfig config = {});

  [[nodiscard]] std::string_view name() const override {
    return "frame-feedback";
  }
  [[nodiscard]] SimDuration measure_period() const override {
    return config_.measure_period;
  }
  [[nodiscard]] double update(const ControllerInput& input) override;
  void reset() override;

  [[nodiscard]] const FrameFeedbackConfig& config() const { return config_; }

  /// Most recent error value e(t) (for tracing/tests).
  [[nodiscard]] double last_error() const { return last_error_; }

  /// Most recent clamped control action u(t).
  [[nodiscard]] double last_update() const { return last_update_; }

 private:
  FrameFeedbackConfig config_;
  PidController pid_;
  double offload_rate_;
  double last_error_{0.0};
  double last_update_{0.0};
};

}  // namespace ff::control
