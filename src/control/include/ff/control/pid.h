#pragma once

// Textbook discrete PID with output clamping, integral anti-windup and
// optional derivative low-pass filtering (paper §III Eq. 2). The
// FrameFeedback controller runs this with Ki = 0 (Eq. 3); the full-PID
// ablation turns Ki back on.

#include "ff/util/units.h"

namespace ff::control {

struct PidConfig {
  double kp{0.2};
  double ki{0.0};
  double kd{0.26};
  /// Output (control action u) clamp; min <= max required.
  double output_min{-1e300};
  double output_max{1e300};
  /// Integral term clamp (anti-windup); only relevant when ki != 0.
  double integral_min{-1e300};
  double integral_max{1e300};
  /// EWMA smoothing of the derivative term: 1.0 = unfiltered.
  double derivative_filter_alpha{1.0};
};

class PidController {
 public:
  explicit PidController(PidConfig config);

  /// One control step. `dt` is the time since the previous step in the
  /// controller's own tick units (the paper uses 1 tick = 1 s). Returns
  /// the clamped control action u.
  [[nodiscard]] double step(double error, double dt = 1.0);

  void reset();

  [[nodiscard]] const PidConfig& config() const { return config_; }
  [[nodiscard]] double integral() const { return integral_; }
  [[nodiscard]] double last_error() const { return last_error_; }

 private:
  PidConfig config_;
  double integral_{0.0};
  double last_error_{0.0};
  double filtered_derivative_{0.0};
  bool has_last_error_{false};
};

}  // namespace ff::control
