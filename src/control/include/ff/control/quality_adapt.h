#pragma once

// Quality-adapting FrameFeedback: implements the trade the paper discusses
// in §II-D but leaves unexploited -- "using lighter compression can
// improve accuracy [but] increases the number of bytes per frame".
//
// Strategy: run the stock FrameFeedback PD loop for the offload rate, and
// add a second, slower actuator on JPEG quality driven by the *network*
// component of the timeout rate:
//   - when Tn pressure forces the rate below Fs, step quality down the
//     ladder first (each step roughly halves bytes/frame), giving the PD
//     loop a cheaper frame to push through the same link;
//   - when the loop has held Po ~ Fs with no network timeouts for a few
//     periods, step quality back up (accuracy recovers).
// Load timeouts (Tl) never trigger quality changes: smaller frames do not
// help a saturated GPU.

#include <vector>

#include "ff/control/frame_feedback.h"

namespace ff::control {

struct QualityAdaptConfig {
  FrameFeedbackConfig rate{};            ///< inner PD loop settings
  /// Quality ladder, best first. Default steps roughly halve bytes/frame.
  std::vector<int> quality_ladder{85, 70, 55, 40};
  /// Step down when Tn exceeds this fraction of Fs.
  double degrade_tn_fraction{0.1};
  /// Step up after this many consecutive clean periods at Po >= this
  /// fraction of Fs.
  int upgrade_after_clean_periods{5};
  double upgrade_po_fraction{0.9};
  /// Cooldown periods between any two quality changes (let the rate loop
  /// see the new operating point before moving again).
  int cooldown_periods{3};
};

class QualityAdaptController final : public Controller {
 public:
  explicit QualityAdaptController(QualityAdaptConfig config = {});

  [[nodiscard]] std::string_view name() const override {
    return "quality-adapt";
  }
  [[nodiscard]] SimDuration measure_period() const override {
    return config_.rate.measure_period;
  }
  [[nodiscard]] double update(const ControllerInput& input) override;
  [[nodiscard]] std::optional<int> frame_quality() const override {
    return config_.quality_ladder.at(ladder_index_);
  }
  void reset() override;

  [[nodiscard]] const QualityAdaptConfig& config() const { return config_; }
  [[nodiscard]] std::size_t ladder_index() const { return ladder_index_; }

 private:
  QualityAdaptConfig config_;
  FrameFeedbackController rate_controller_;
  std::size_t ladder_index_{0};
  int clean_streak_{0};
  int cooldown_{0};
};

}  // namespace ff::control
