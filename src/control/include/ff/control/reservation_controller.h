#pragma once

// Client side of the ATOMS-style comparator: each period, declare full
// demand (Fs) to the reservation manager and offload exactly the granted
// rate. No feedback from timeouts -- reservations are trusted, which is
// precisely what the paper argues against for variable networks.

#include "ff/control/controller.h"
#include "ff/server/reservation.h"

namespace ff::control {

class ReservationController final : public Controller {
 public:
  /// `manager` must outlive the controller; `client_id` must be unique
  /// across controllers sharing a manager.
  ReservationController(server::ReservationManager& manager,
                        std::uint64_t client_id,
                        SimDuration measure_period = kSecond);
  ~ReservationController() override;

  ReservationController(const ReservationController&) = delete;
  ReservationController& operator=(const ReservationController&) = delete;

  [[nodiscard]] std::string_view name() const override { return "reservation"; }
  [[nodiscard]] SimDuration measure_period() const override { return period_; }
  [[nodiscard]] double update(const ControllerInput& input) override;

  [[nodiscard]] std::uint64_t client_id() const { return client_id_; }

 private:
  server::ReservationManager& manager_;
  std::uint64_t client_id_;
  SimDuration period_;
};

}  // namespace ff::control
