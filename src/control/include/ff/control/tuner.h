#pragma once

// Tuning analysis (paper §III-B): quantifies what the paper's Fig. 2 shows
// qualitatively -- how (Kp, Kd) trade sensitivity against oscillation --
// by scoring a recorded Po trace for rise time, overshoot, steady-state
// oscillation and post-disturbance recovery.

#include <vector>

#include "ff/util/time_series.h"
#include "ff/util/units.h"

namespace ff::control {

/// Metrics of a controller's Po response within one analysis window.
struct ResponseMetrics {
  /// Time (s) from window start until the trace first reaches 90% of the
  /// window's target value; negative when it never does.
  double rise_time_s{-1.0};
  /// max(trace) - target, in trace units (0 when never above target).
  double overshoot{0.0};
  /// Mean |step| between consecutive samples after the rise (oscillation
  /// amplitude proxy).
  double steady_oscillation{0.0};
  /// Mean value over the steady-state region (after rise).
  double steady_mean{0.0};
};

/// Scores `po` between [from, to) against `target` (typically Fs for a
/// clean-network window, or the sustainable rate after a disturbance).
[[nodiscard]] ResponseMetrics analyze_response(const TimeSeries& po,
                                               SimTime from, SimTime to,
                                               double target);

/// Composite tuning score (lower is better): weighted rise time +
/// overshoot + oscillation, with non-settling runs heavily penalized.
/// Mirrors the paper's tuning procedure of raising Kp until oscillation,
/// then raising Kd to damp it.
[[nodiscard]] double tuning_score(const ResponseMetrics& metrics);

/// A (Kp, Kd) grid helper for sweep benches: the cross product of the
/// given gain lists.
[[nodiscard]] std::vector<std::pair<double, double>> gain_grid(
    const std::vector<double>& kps, const std::vector<double>& kds);

}  // namespace ff::control
