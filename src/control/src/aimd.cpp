#include "ff/control/aimd.h"

#include <algorithm>

namespace ff::control {

AimdController::AimdController(AimdConfig config) : config_(config) {}

double AimdController::update(const ControllerInput& input) {
  const double fs = input.source_fps;
  if (input.timeout_rate <= config_.timeout_tolerance_fraction * fs) {
    offload_rate_ += config_.increase_fraction * fs;
  } else {
    offload_rate_ *= config_.decrease_factor;
  }
  offload_rate_ = std::clamp(offload_rate_, config_.floor_fraction * fs, fs);
  return offload_rate_;
}

void AimdController::reset() { offload_rate_ = 0.0; }

}  // namespace ff::control
