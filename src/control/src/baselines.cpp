// Baseline controllers are header-only; this TU anchors their vtables so
// the types have a single home in the library.
#include "ff/control/baselines.h"

namespace ff::control {

// Intentionally empty.

}  // namespace ff::control
