#include "ff/control/frame_feedback.h"

#include <algorithm>

namespace ff::control {
namespace {

[[nodiscard]] PidConfig to_pid_config(const FrameFeedbackConfig& c) {
  PidConfig p;
  p.kp = c.kp;
  p.ki = c.ki;
  p.kd = c.kd;
  // Output clamping is applied in update() because the bounds scale with
  // Fs, which arrives with the input; keep the PID itself unclamped.
  return p;
}

}  // namespace

FrameFeedbackController::FrameFeedbackController(FrameFeedbackConfig config)
    : config_(config),
      pid_(to_pid_config(config)),
      offload_rate_(std::max(config.initial_offload_rate, 0.0)) {}

double FrameFeedbackController::update(const ControllerInput& input) {
  const double fs = input.source_fps;
  const double t = input.timeout_rate;

  // Piecewise error (Eq. 5). Note it is computed from the *commanded* Po,
  // matching the paper: the controller regulates its own target.
  const double error = (t <= config_.timeout_epsilon)
                           ? fs - offload_rate_
                           : config_.timeout_setpoint_fraction * fs - t;
  last_error_ = error;

  // dt in measurement periods: the discrete controller treats one tick as
  // one unit, as in the paper's tuning.
  double u = pid_.step(error, 1.0);
  if (config_.clamp_updates) {
    u = std::clamp(u, config_.update_min_fraction * fs,
                   config_.update_max_fraction * fs);
  }
  last_update_ = u;

  offload_rate_ = std::clamp(offload_rate_ + u, 0.0, fs);
  return offload_rate_;
}

void FrameFeedbackController::reset() {
  pid_.reset();
  offload_rate_ = std::max(config_.initial_offload_rate, 0.0);
  last_error_ = 0.0;
  last_update_ = 0.0;
}

}  // namespace ff::control
