#include "ff/control/pid.h"

#include <algorithm>
#include <stdexcept>

namespace ff::control {

PidController::PidController(PidConfig config) : config_(config) {
  if (config_.output_min > config_.output_max) {
    throw std::invalid_argument("PidController: output_min > output_max");
  }
  if (config_.integral_min > config_.integral_max) {
    throw std::invalid_argument("PidController: integral_min > integral_max");
  }
  config_.derivative_filter_alpha =
      std::clamp(config_.derivative_filter_alpha, 0.0, 1.0);
}

double PidController::step(double error, double dt) {
  if (dt <= 0.0) dt = 1.0;

  integral_ = std::clamp(integral_ + error * dt, config_.integral_min,
                         config_.integral_max);

  double derivative = 0.0;
  if (has_last_error_) derivative = (error - last_error_) / dt;
  filtered_derivative_ =
      config_.derivative_filter_alpha * derivative +
      (1.0 - config_.derivative_filter_alpha) * filtered_derivative_;
  last_error_ = error;
  has_last_error_ = true;

  const double u = config_.kp * error + config_.ki * integral_ +
                   config_.kd * filtered_derivative_;
  return std::clamp(u, config_.output_min, config_.output_max);
}

void PidController::reset() {
  integral_ = 0.0;
  last_error_ = 0.0;
  filtered_derivative_ = 0.0;
  has_last_error_ = false;
}

}  // namespace ff::control
