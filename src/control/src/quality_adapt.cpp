#include "ff/control/quality_adapt.h"

#include <stdexcept>

namespace ff::control {

QualityAdaptController::QualityAdaptController(QualityAdaptConfig config)
    : config_(std::move(config)), rate_controller_(config_.rate) {
  if (config_.quality_ladder.empty()) {
    throw std::invalid_argument("QualityAdaptController: empty quality ladder");
  }
}

double QualityAdaptController::update(const ControllerInput& input) {
  const double fs = input.source_fps;

  if (cooldown_ > 0) --cooldown_;

  const bool network_pressure =
      input.network_timeout_rate > config_.degrade_tn_fraction * fs;
  const bool clean = input.network_timeout_rate <= 1e-9;

  if (network_pressure) {
    clean_streak_ = 0;
    if (cooldown_ == 0 && ladder_index_ + 1 < config_.quality_ladder.size()) {
      ++ladder_index_;
      cooldown_ = config_.cooldown_periods;
    }
  } else if (clean && input.offload_rate >= config_.upgrade_po_fraction * fs) {
    ++clean_streak_;
    if (cooldown_ == 0 && ladder_index_ > 0 &&
        clean_streak_ >= config_.upgrade_after_clean_periods) {
      --ladder_index_;
      clean_streak_ = 0;
      cooldown_ = config_.cooldown_periods;
    }
  } else {
    clean_streak_ = 0;
  }

  return rate_controller_.update(input);
}

void QualityAdaptController::reset() {
  rate_controller_.reset();
  ladder_index_ = 0;
  clean_streak_ = 0;
  cooldown_ = 0;
}

}  // namespace ff::control
