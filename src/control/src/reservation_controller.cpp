#include "ff/control/reservation_controller.h"

#include <algorithm>

namespace ff::control {

ReservationController::ReservationController(
    server::ReservationManager& manager, std::uint64_t client_id,
    SimDuration measure_period)
    : manager_(manager), client_id_(client_id), period_(measure_period) {}

ReservationController::~ReservationController() {
  manager_.release(client_id_);
}

double ReservationController::update(const ControllerInput& input) {
  const double grant = manager_.request(client_id_, input.source_fps);
  return std::clamp(grant, 0.0, input.source_fps);
}

}  // namespace ff::control
