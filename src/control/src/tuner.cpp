#include "ff/control/tuner.h"

#include <algorithm>
#include <cmath>

namespace ff::control {

ResponseMetrics analyze_response(const TimeSeries& po, SimTime from, SimTime to,
                                 double target) {
  ResponseMetrics m;
  const double threshold = 0.9 * target;

  SimTime rise_at = -1;
  double peak = -1e300;
  for (const auto& p : po.points()) {
    if (p.time < from || p.time >= to) continue;
    peak = std::max(peak, p.value);
    if (rise_at < 0 && p.value >= threshold) rise_at = p.time;
  }
  if (rise_at >= 0) m.rise_time_s = sim_to_seconds(rise_at - from);
  if (peak > target) m.overshoot = peak - target;

  // Steady region: from the rise point (or the window midpoint when the
  // trace never rose) to the window end.
  const SimTime steady_from = rise_at >= 0 ? rise_at : (from + to) / 2;
  double prev = 0.0;
  bool have_prev = false;
  std::size_t steps = 0;
  double step_sum = 0.0;
  StreamingStats steady;
  for (const auto& p : po.points()) {
    if (p.time < steady_from || p.time >= to) continue;
    steady.add(p.value);
    if (have_prev) {
      step_sum += std::abs(p.value - prev);
      ++steps;
    }
    prev = p.value;
    have_prev = true;
  }
  if (steps > 0) m.steady_oscillation = step_sum / static_cast<double>(steps);
  m.steady_mean = steady.mean();
  return m;
}

double tuning_score(const ResponseMetrics& metrics) {
  // Never rising dominates everything else.
  const double rise = metrics.rise_time_s < 0 ? 1e3 : metrics.rise_time_s;
  return rise + 4.0 * metrics.overshoot + 8.0 * metrics.steady_oscillation;
}

std::vector<std::pair<double, double>> gain_grid(const std::vector<double>& kps,
                                                 const std::vector<double>&
                                                     kds) {
  std::vector<std::pair<double, double>> grid;
  grid.reserve(kps.size() * kds.size());
  for (const double kp : kps) {
    for (const double kd : kds) grid.emplace_back(kp, kd);
  }
  return grid;
}

}  // namespace ff::control
