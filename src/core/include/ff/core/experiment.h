#pragma once

// Experiment runner: instantiates a scenario on the DES kernel, attaches a
// controller to every device, runs it, and returns per-device time series
// plus summary statistics -- the raw material of every figure and table.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ff/control/controller.h"
#include "ff/core/fleet_topology.h"
#include "ff/core/fleet_transport.h"
#include "ff/core/networked_transport.h"
#include "ff/core/scenario.h"
#include "ff/device/edge_device.h"
#include "ff/net/shared_medium.h"
#include "ff/net/transport.h"
#include "ff/obs/trace.h"
#include "ff/server/edge_server.h"
#include "ff/server/load_generator.h"
#include "ff/sim/partition.h"
#include "ff/sim/simulator.h"
#include "ff/sim/timer.h"
#include "ff/util/time_series.h"

namespace ff::core {

/// Produces a fresh controller per device; called once per device at
/// experiment construction.
using ControllerFactory =
    std::function<std::unique_ptr<control::Controller>(
        std::size_t device_index)>;

/// Convenience: same controller type with the same settings everywhere.
template <class C, class... Args>
[[nodiscard]] ControllerFactory make_controller_factory(Args... args) {
  return [=](std::size_t) { return std::make_unique<C>(args...); };
}

struct DeviceResult {
  std::string name;
  std::string controller;
  device::TelemetryTotals totals{};
  device::OffloadClientStats offload{};
  net::ChannelStats uplink{};  ///< summed over the device's server paths
  SeriesBundle series;  ///< "P", "Pl", "Po_*", "T", "Tn", "Tl", "cpu",
                        ///< "quality", "accuracy", "power_w"
  double energy_joules{0.0};  ///< integrated electrical draw over the run
  /// Server the placement layer assigned at build / was using at the end
  /// (both 0 outside fleet scenarios; differing values mean the device
  /// was re-homed after admission rejections).
  std::size_t initial_server{0};
  std::size_t final_server{0};

  /// Fraction of captured frames that produced a result within deadline.
  [[nodiscard]] double goodput_fraction() const;

  /// Mean successful inference rate over the run (from the P series).
  [[nodiscard]] double mean_throughput() const;

  /// Joules per successful inference (energy efficiency of the policy).
  [[nodiscard]] double joules_per_inference() const;
};

/// Per-server summary. `stats.requests_received` counts device offloads
/// and background load together, so the server-side conservation identity
///   received == completed + rejected + admission_rejected
///             + queue_depth_at_end + in_flight_batch_at_end
/// holds exactly per server and summed across the fleet.
struct ServerResult {
  std::string name;
  server::ServerStats stats{};
  double gpu_utilization{0.0};
  server::AdmissionStats admission{};
  std::uint64_t queue_depth_at_end{0};
  std::uint64_t in_flight_batch_at_end{0};

  [[nodiscard]] bool conserved() const {
    return stats.requests_received ==
           stats.requests_completed + stats.requests_rejected +
               stats.requests_admission_rejected + queue_depth_at_end +
               in_flight_batch_at_end;
  }
};

/// Per-tenant SLO accounting: member devices' totals rolled into one.
struct TenantResult {
  std::string name;
  device::TelemetryTotals totals{};
  double mean_throughput_fps{0.0};  ///< summed member mean P
  /// SLO thresholds echoed from the TenantSloSpec for slo_met().
  // ff-lint: allow(fingerprint-exempt) config echo, not measured output
  double min_goodput{0.0};
  // ff-lint: allow(fingerprint-exempt) config echo, not measured output
  double min_throughput_fps{0.0};

  [[nodiscard]] double goodput_fraction() const {
    if (totals.frames_captured == 0) return 0.0;
    return static_cast<double>(totals.successes()) /
           static_cast<double>(totals.frames_captured);
  }
  [[nodiscard]] bool slo_met() const {
    return goodput_fraction() >= min_goodput &&
           mean_throughput_fps >= min_throughput_fps;
  }
};

struct ExperimentResult {
  std::string scenario;
  std::uint64_t seed{0};
  SimTime duration{0};
  std::uint64_t events_executed{0};
  std::vector<DeviceResult> devices;
  /// One entry per edge server (always at least one; single-server runs
  /// land in servers[0], mirrored into the legacy fields below).
  std::vector<ServerResult> servers;
  std::vector<TenantResult> tenants;
  /// Legacy single-server view: servers[0], kept so existing callers and
  /// figures read unchanged.
  server::ServerStats server{};
  // ff-lint: allow(fingerprint-exempt) legacy mirror of servers[0],
  // which is already mixed in via ServerResult.
  double server_gpu_utilization{0.0};

  /// Aggregate mean throughput across devices.
  [[nodiscard]] double total_mean_throughput() const;

  [[nodiscard]] const DeviceResult& device(std::size_t i) const {
    return devices.at(i);
  }
};

class Experiment {
 public:
  Experiment(Scenario scenario, ControllerFactory controllers);
  ~Experiment();

  Experiment(const Experiment&) = delete;
  Experiment& operator=(const Experiment&) = delete;

  /// Runs to the scenario horizon and collects results. Callable once.
  [[nodiscard]] ExperimentResult run();

  /// Attaches one trace sink to every instrumented component -- devices
  /// (frame lifecycle), server (batching/rejection), links and transport
  /// channels (drops/retransmits) -- and enables per-tick controller
  /// records (ctl.tick with e/u/Po). Call before run(); nullptr detaches.
  /// The sink is not owned and must outlive the experiment.
  void set_trace_sink(obs::TraceSink* sink);

  /// Access to live objects between construction and run(), for tests and
  /// custom instrumentation. In a partitioned run (Scenario::partitions
  /// >= 1) this is partition 0 -- the server's partition.
  [[nodiscard]] sim::Simulator& simulator() {
    return psim_ ? psim_->partition(0) : *sim_;
  }

  /// The partitioned driver, or nullptr on the legacy single-simulator
  /// path.
  [[nodiscard]] sim::PartitionedSimulator* partitioned_simulator() {
    return psim_.get();
  }
  [[nodiscard]] server::EdgeServer& server() { return *servers_.at(0); }
  [[nodiscard]] server::EdgeServer& server(std::size_t s) {
    return *servers_.at(s);
  }
  [[nodiscard]] std::size_t server_count() const { return servers_.size(); }
  [[nodiscard]] device::EdgeDevice& device(std::size_t i) {
    return *rigs_.at(i)->device;
  }
  [[nodiscard]] control::Controller& controller(std::size_t i) {
    return *rigs_.at(i)->controller;
  }
  /// The device's currently active server path.
  [[nodiscard]] NetworkedOffloadTransport& transport(std::size_t i) {
    FleetOffloadTransport& t = *rigs_.at(i)->transport;
    return t.path(t.active());
  }
  [[nodiscard]] FleetOffloadTransport& fleet_transport(std::size_t i) {
    return *rigs_.at(i)->transport;
  }
  /// Server the device is currently homed on (follows re-placement).
  [[nodiscard]] std::size_t assigned_server(std::size_t i) const {
    return rigs_.at(i)->transport->active();
  }
  [[nodiscard]] std::size_t device_count() const { return rigs_.size(); }

 private:
  struct DeviceRig {
    std::size_t index{0};
    /// The simulator this rig's entities execute on: the shared one in a
    /// plain run, the device's partition in a partitioned run.
    sim::Simulator* sim{nullptr};
    /// One NetworkedOffloadTransport path per server behind the fleet
    /// selector; the M = 1 case is pass-through.
    std::unique_ptr<FleetOffloadTransport> transport;
    std::unique_ptr<device::EdgeDevice> device;
    std::unique_ptr<control::Controller> controller;
    std::unique_ptr<sim::PeriodicTimer> control_timer;
    /// Per-rig sampler (partitioned runs only): sampling must happen on
    /// the rig's own partition, and one timer per rig keeps the event
    /// count independent of the partition count.
    std::unique_ptr<sim::PeriodicTimer> sample_timer;
    SeriesBundle series;
    models::EnergyMeter energy;
    std::size_t initial_server{0};
    /// Admission rejections already reacted to (re-placement edge detect).
    std::uint64_t admission_rejections_seen{0};
  };

  void resolve_topology();
  [[nodiscard]] NetworkedTransportConfig path_config(
      std::size_t device_index, const device::DeviceConfig& dconf,
      std::size_t server_index) const;
  void build();
  void build_partitioned();
  void control_tick(DeviceRig& rig);
  void maybe_rehome(DeviceRig& rig);
  void sample_tick();
  void sample_rig(DeviceRig& rig);

  Scenario scenario_;
  ControllerFactory factory_;
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<sim::PartitionedSimulator> psim_;
  /// Effective topology: Scenario::fleet, or one spec synthesized from
  /// the legacy single-server fields.
  std::vector<ServerSpec> specs_;
  std::vector<std::unique_ptr<server::EdgeServer>> servers_;
  std::vector<std::unique_ptr<server::LoadGenerator>> loads_;
  std::unique_ptr<PlacementPolicy> placement_;
  /// Build-time device -> server assignment, one entry per device.
  std::vector<std::size_t> assignments_;
  /// Shared uplink media ("APs"); device i contends on medium i % size().
  std::vector<std::unique_ptr<net::SharedMedium>> uplink_media_;
  std::vector<std::unique_ptr<DeviceRig>> rigs_;
  std::unique_ptr<sim::PeriodicTimer> sample_timer_;
  /// Wraps the user's sink when partitioned workers emit concurrently.
  std::unique_ptr<obs::SynchronizedTraceSink> synced_sink_;
  obs::TraceSink* trace_sink_{nullptr};
  bool ran_{false};
};

/// One-call convenience wrapper.
[[nodiscard]] ExperimentResult run_experiment(Scenario scenario,
                                              ControllerFactory controllers);

}  // namespace ff::core
