#pragma once

// Fleet topology: the description that removes the single-server
// assumption from the experiment runner. A scenario may describe M edge
// servers (each with its own profile and private background load),
// per-device placement hints, per-tenant SLO specs, and a placement
// policy deciding device -> server assignment. An empty topology is the
// M = 1 degenerate case: Experiment synthesizes one ServerSpec from the
// legacy Scenario::server fields and the wiring is bit-identical to the
// historical single-server path (verified by fingerprint in
// tests/fleet/fleet_test.cpp).
//
// Only the abstract PlacementPolicy contract lives here (core), mirroring
// ControllerFactory: concrete policies -- static, least-loaded,
// reservation-based -- live above in src/fleet (ff::fleet), keeping the
// layering DAG acyclic.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ff/device/edge_device.h"
#include "ff/server/edge_server.h"
#include "ff/server/load_generator.h"

namespace ff::core {

/// One edge server in the fleet, with its own background load.
struct ServerSpec {
  server::ServerConfig config{};
  server::LoadSchedule background_load{};
  server::LoadGeneratorConfig background{};
};

/// A named group of devices sharing service-level objectives. Member
/// devices' TelemetryTotals are rolled into one TenantResult per run.
struct TenantSloSpec {
  std::string name{"tenant"};
  std::vector<std::size_t> devices;  ///< indices into Scenario::devices
  /// SLO: minimum fraction of captured frames answered within deadline.
  double min_goodput{0.0};
  /// SLO: minimum aggregate successful inference rate (frames/s).
  double min_throughput_fps{0.0};
};

struct FleetTopology;

/// Build-time context handed to PlacementPolicy::place.
struct PlacementView {
  std::size_t server_count{0};
  /// Devices already assigned to each server (device order; grows as
  /// place() is called device by device).
  const std::vector<std::size_t>* assigned_counts{nullptr};
  const FleetTopology* topology{nullptr};
};

/// Decides device -> server assignment at build time and re-assignment
/// when a server turns a device away at admission.
class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Called once per unhinted device at experiment construction, in
  /// device order, single-threaded. Returns the server index in
  /// [0, view.server_count).
  [[nodiscard]] virtual std::size_t place(std::size_t device_index,
                                          const device::DeviceConfig& device,
                                          const PlacementView& view) = 0;

  /// Called from a device's control tick when its server rejected offloads
  /// at admission since the previous tick; returns the server the device
  /// should use next, in [0, server_count) (current_server = stay put).
  /// Partitioned runs invoke this concurrently from worker threads, so
  /// implementations must be const, thread-safe, and deterministic: decide
  /// only from the arguments and state precomputed in place() -- never
  /// from live global load.
  [[nodiscard]] virtual std::size_t on_rejection(
      std::size_t device_index, std::size_t current_server,
      std::size_t server_count, std::uint64_t rejections_total) const {
    (void)device_index;
    (void)server_count;
    (void)rejections_total;
    return current_server;
  }
};

/// Produces a fresh policy per experiment; must be pure (sweep workers
/// build experiments concurrently).
using PlacementFactory = std::function<std::unique_ptr<PlacementPolicy>()>;

/// M server profiles plus placement/tenancy metadata. enabled() == false
/// (no servers) means the scenario is a legacy single-server description.
struct FleetTopology {
  std::vector<ServerSpec> servers;
  /// Per-device hint: index into `servers`, or -1 to let the placement
  /// policy decide. Devices past the end of the vector behave as -1.
  std::vector<int> placement_hints;
  std::vector<TenantSloSpec> tenants;
  /// Decides unhinted devices; when null, static round-robin
  /// (device i -> server i % M).
  PlacementFactory placement;

  [[nodiscard]] bool enabled() const { return !servers.empty(); }
  [[nodiscard]] std::size_t server_count() const { return servers.size(); }

  /// `count` copies of `base`. For count == 1 the name is left untouched
  /// so the degenerate topology reproduces the legacy single-server run
  /// bit-identically; for count > 1 each copy is suffixed "-<s>".
  [[nodiscard]] static FleetTopology uniform(server::ServerConfig base,
                                             std::size_t count);
};

}  // namespace ff::core
