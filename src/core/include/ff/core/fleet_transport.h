#pragma once

// Multi-server OffloadTransport: one NetworkedOffloadTransport path per
// edge server, with an active-path selector the placement layer flips when
// a device is re-homed. Frames remember which path carried them so late
// cancels and responses route to the right server even across a re-home.
// With a single path the wrapper is pass-through: it adds no events and no
// RNG draws, so the M = 1 fleet build stays bit-identical to the legacy
// single-server wiring.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ff/core/networked_transport.h"
#include "ff/device/offload_transport.h"
#include "ff/net/transport.h"

namespace ff::core {

class FleetOffloadTransport final : public device::OffloadTransport {
 public:
  FleetOffloadTransport() = default;

  /// Appends the path to server index paths_count(); call once per server
  /// before any traffic.
  void add_path(std::unique_ptr<NetworkedOffloadTransport> path);

  /// Switches subsequent offloads to server `server_index`. In-flight
  /// frames stay pinned to the path that carried them. Called from the
  /// device's own partition (control tick), never cross-thread.
  void set_active(std::size_t server_index);

  [[nodiscard]] std::size_t active() const { return active_; }
  [[nodiscard]] std::size_t path_count() const { return paths_.size(); }
  [[nodiscard]] NetworkedOffloadTransport& path(std::size_t server_index) {
    return *paths_.at(server_index);
  }

  /// Uplink channel stats summed across all paths (one logical uplink per
  /// device, however many servers it talked to).
  [[nodiscard]] net::ChannelStats uplink_stats() const;

  void offload(std::uint64_t id, Bytes payload) override;
  void cancel(std::uint64_t id) override;
  void set_on_response(ResponseFn fn) override;
  void set_on_failure(FailureFn fn) override;

 private:
  std::vector<std::unique_ptr<NetworkedOffloadTransport>> paths_;
  std::size_t active_{0};
  /// Path each in-flight frame was sent on; only consulted (and only
  /// populated) when there is more than one path.
  std::unordered_map<std::uint64_t, std::size_t> frame_path_;
  ResponseFn on_response_;
  FailureFn on_failure_;
};

}  // namespace ff::core
