#pragma once

// Umbrella header: the full FrameFeedback public API.
//
//   #include <ff/core/framefeedback.h>
//
//   auto scenario = ff::core::Scenario::paper_network();
//   auto result = ff::core::run_experiment(
//       scenario,
//       ff::core::make_controller_factory<
//           ff::control::FrameFeedbackController>());

#include "ff/control/aimd.h"
#include "ff/control/baselines.h"
#include "ff/control/controller.h"
#include "ff/control/frame_feedback.h"
#include "ff/control/pid.h"
#include "ff/control/quality_adapt.h"
#include "ff/control/reservation_controller.h"
#include "ff/control/tuner.h"
#include "ff/core/experiment.h"
#include "ff/core/fleet_topology.h"
#include "ff/core/fleet_transport.h"
#include "ff/core/metrics.h"
#include "ff/core/networked_transport.h"
#include "ff/core/report.h"
#include "ff/core/scenario.h"
#include "ff/core/scenario_config.h"
#include "ff/device/edge_device.h"
#include "ff/models/device_profile.h"
#include "ff/models/frame.h"
#include "ff/models/latency_model.h"
#include "ff/models/model_spec.h"
#include "ff/models/power.h"
#include "ff/net/netem.h"
#include "ff/net/shared_medium.h"
#include "ff/net/transport.h"
#include "ff/server/edge_server.h"
#include "ff/server/load_generator.h"
#include "ff/server/reservation.h"
#include "ff/sim/simulator.h"
#include "ff/util/ascii_plot.h"
#include "ff/util/csv.h"
#include "ff/util/time_series.h"
