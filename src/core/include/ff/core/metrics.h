#pragma once

// Post-run analysis: per-phase summaries aligned with the scenario's
// network/load schedules, and QoS roll-ups used by the benches' summary
// rows (e.g. the paper's "FrameFeedback beats all-or-nothing by 50%-3x
// under intermediate conditions" claim).

#include <string>
#include <vector>

#include "ff/core/experiment.h"
#include "ff/net/netem.h"
#include "ff/server/load_generator.h"
#include "ff/util/time_series.h"

namespace ff::core {

struct PhaseStat {
  std::string label;
  SimTime from{0};
  SimTime to{0};
  double mean{0.0};
  double stddev{0.0};
};

/// Mean of `series` within each phase of a network schedule. `end` bounds
/// the final phase. `settle` trims this many microseconds from the start
/// of each phase (controller reaction time).
[[nodiscard]] std::vector<PhaseStat> phase_means(
    const TimeSeries& series, const net::NetemSchedule& schedule, SimTime end,
    SimDuration settle = 3 * kSecond);

/// Mean of `series` within each phase of a load schedule.
[[nodiscard]] std::vector<PhaseStat> phase_means(
    const TimeSeries& series, const server::LoadSchedule& schedule,
    SimTime end, SimDuration settle = 3 * kSecond);

/// QoS roll-up for one device run.
struct QosSummary {
  double mean_throughput{0.0};      ///< mean of the P series
  double goodput_fraction{0.0};     ///< successes / captured frames
  double timeout_fraction{0.0};     ///< timeouts / offload attempts
  double mean_offload_latency_ms{0.0};
  double mean_cpu_utilization{0.0};
};

[[nodiscard]] QosSummary summarize(const DeviceResult& device);

/// Ratio of mean throughputs of two runs within [from, to); used for the
/// paper's head-to-head claims. Returns 0 when the denominator is ~0.
[[nodiscard]] double throughput_ratio(const DeviceResult& numerator,
                                      const DeviceResult& denominator,
                                      SimTime from, SimTime to);

}  // namespace ff::core
