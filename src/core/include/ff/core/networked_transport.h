#pragma once

// Production OffloadTransport: frames travel device -> server over the
// emulated network, are classified by the multi-tenant edge server, and
// results (or rejection notices) travel back. One instance per device.

#include <cstdint>
#include <string>

#include "ff/device/offload_transport.h"
#include "ff/models/frame.h"
#include "ff/net/transport.h"
#include "ff/server/edge_server.h"
#include "ff/sim/simulator.h"

namespace ff::core {

struct NetworkedTransportConfig {
  std::string name{"path"};
  std::uint64_t client_id{0};
  models::ModelId model{models::ModelId::kMobileNetV3Small};
  net::LinkConfig uplink{};
  net::LinkConfig downlink{};
  net::TransportConfig transport{};
};

class NetworkedOffloadTransport final : public device::OffloadTransport {
 public:
  /// `sim` and `server` must outlive the transport.
  NetworkedOffloadTransport(sim::Simulator& sim, server::EdgeServer& server,
                            NetworkedTransportConfig config);

  /// Partitioned form: the device side (uplink serialization, response
  /// handling) runs on `device_sim`, the server side (downlink
  /// serialization, request submission) on `server_sim` -- which must be
  /// the server's own simulator. Cross-partition routing is wired by
  /// binding the path's links to boundary edges (Link::bind_boundary).
  NetworkedOffloadTransport(sim::Simulator& device_sim,
                            sim::Simulator& server_sim,
                            server::EdgeServer& server,
                            NetworkedTransportConfig config);

  void offload(std::uint64_t id, Bytes payload) override;
  void cancel(std::uint64_t id) override;
  void set_on_response(ResponseFn fn) override { on_response_ = std::move(fn); }
  void set_on_failure(FailureFn fn) override { on_failure_ = std::move(fn); }

  /// The device<->server network path, for Netem schedule attachment.
  [[nodiscard]] net::DuplexPath& path() { return path_; }

  [[nodiscard]] const net::ChannelStats& uplink_stats() {
    return path_.uplink().stats();
  }

 private:
  [[nodiscard]] net::ReliableChannel& uplink() { return path_.uplink(); }

  server::EdgeServer& server_;
  NetworkedTransportConfig config_;
  net::DuplexPath path_;
  ResponseFn on_response_;
  FailureFn on_failure_;
  std::uint64_t next_response_seq_{0};
};

}  // namespace ff::core
