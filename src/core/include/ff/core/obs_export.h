#pragma once

// Run-level metrics export: folds an ExperimentResult into a MetricsRegistry
// (labelled per device) so a finished run can be dumped as one JSON document
// for dashboards and regression tooling. Pull-based by design -- the
// simulation's hot path never touches the registry.

#include <ostream>
#include <string>

#include "ff/core/experiment.h"
#include "ff/obs/metrics.h"

namespace ff::core {

/// Populates `registry` with counters/gauges/distributions derived from the
/// run: per-device frame totals, offload latency quantiles, uplink transport
/// stats (labelled {device=<name>, controller=<name>}), and server-side
/// aggregates. Safe to call on an empty registry or to layer several runs
/// into one registry (counters accumulate).
void export_metrics(const ExperimentResult& result,
                    obs::MetricsRegistry& registry);

/// Convenience: export_metrics into a fresh registry and write its JSON
/// document to `os`.
void write_metrics_json(const ExperimentResult& result, std::ostream& os);

/// Same, to a file path. Throws std::runtime_error if the file cannot be
/// opened.
void write_metrics_json_file(const ExperimentResult& result,
                             const std::string& path);

}  // namespace ff::core
