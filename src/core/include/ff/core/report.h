#pragma once

// Human-readable reporting for the bench binaries: experiment summaries,
// phase tables and figure-shaped ASCII plots.

#include <ostream>
#include <string>
#include <vector>

#include "ff/core/experiment.h"
#include "ff/core/metrics.h"

namespace ff::core {

/// Prints the per-device QoS summary and server stats of one run.
void print_summary(std::ostream& os, const ExperimentResult& result);

/// Prints a phase-by-phase comparison table: one row per phase, one column
/// per named run, using each run's device 0 "P" series.
void print_phase_comparison(std::ostream& os,
                            const std::vector<std::string>& run_names,
                            const std::vector<std::vector<PhaseStat>>&
                                phase_stats);

/// Plots one named series from device `device_index` of several runs on a
/// shared axis (the figure reproductions).
void plot_runs(std::ostream& os, const std::string& title,
               const std::vector<const ExperimentResult*>& runs,
               const std::string& series_name, std::size_t device_index = 0,
               double y_max = -1.0);

/// Same, but with explicit legend labels (for comparing runs that share a
/// controller, e.g. across scenarios).
void plot_runs_labeled(std::ostream& os, const std::string& title,
                       const std::vector<const ExperimentResult*>& runs,
                       const std::vector<std::string>& labels,
                       const std::string& series_name,
                       std::size_t device_index = 0, double y_max = -1.0);

}  // namespace ff::core
