#pragma once

// A scenario is everything an experiment needs except the controller:
// devices, network schedule, server configuration and background load.
// Factory functions encode the paper's experimental setups.

#include <cstdint>
#include <string>
#include <vector>

#include "ff/core/fleet_topology.h"
#include "ff/device/edge_device.h"
#include "ff/net/netem.h"
#include "ff/net/transport.h"
#include "ff/server/edge_server.h"
#include "ff/server/load_generator.h"

namespace ff::core {

struct Scenario {
  std::string name{"scenario"};
  std::uint64_t seed{42};
  SimDuration duration{135 * kSecond};

  /// One entry per concurrently streaming device.
  std::vector<device::DeviceConfig> devices;

  /// Network conditions applied to every device's path.
  net::NetemSchedule network{net::NetemSchedule::constant({})};
  net::LinkConfig uplink_template{};
  net::LinkConfig downlink_template{};
  net::TransportConfig transport{};
  /// When true, all device uplinks contend on one shared wireless medium
  /// (a single AP) instead of independently shaped interfaces.
  bool shared_uplink_medium{false};
  /// Number of independent shared media ("APs") when shared_uplink_medium
  /// is set: device i contends on medium i % groups. 1 reproduces the
  /// single-AP ablation; more groups give a partitioned run independent
  /// contention domains to parallelize.
  std::size_t uplink_medium_groups{1};

  /// Parallel partitioned execution (sim::PartitionedSimulator). 0 runs
  /// the legacy single-simulator path. K >= 1 shards the entity graph
  /// into K partitions (server plus per-device-group shards) advanced in
  /// conservative time windows; results are bit-identical for every
  /// K >= 1 and every thread count, but differ from the K = 0 path in
  /// event bookkeeping (per-rig samplers, per-link netem), so compare
  /// fingerprints within one mode only.
  std::size_t partitions{0};
  /// Worker threads for partitioned windows: 0 = one per partition
  /// (hardware-capped), 1 = serial. No effect on results.
  unsigned partition_threads{0};

  server::ServerConfig server{};
  server::LoadSchedule background_load{};
  server::LoadGeneratorConfig background{};

  /// Multi-server fleet description. When disabled (no servers) the
  /// experiment synthesizes a one-server topology from the `server` /
  /// `background*` fields above -- the M = 1 degenerate case, bit-identical
  /// to the historical single-server wiring. When enabled, the fields
  /// above are ignored in favor of the per-server ServerSpecs.
  FleetTopology fleet{};

  /// Cadence of the recorded time series (figures sample at 1 Hz).
  SimDuration sample_period{kSecond};

  /// --- Paper setups -------------------------------------------------

  /// §IV-D / Fig. 3: three Pis streaming 4000 frames at 30 fps while the
  /// network walks Table V. `bandwidth_unit` scales the table's 10/4/1
  /// figures (defaults to Mbps; see DESIGN.md).
  [[nodiscard]] static Scenario paper_network(
      Bandwidth bandwidth_unit = Bandwidth::mbps(1.0));

  /// §IV-E / Fig. 4: same devices on a clean network while background
  /// request volume walks Table VI.
  [[nodiscard]] static Scenario paper_server_load();

  /// §III-B / Fig. 2: a single device under a clean network with 7% packet
  /// loss injected at t = 27 s, for controller-gain sweeps.
  [[nodiscard]] static Scenario paper_tuning();

  /// §IV-C "Combined Network and Server Measurements": both the Table V
  /// network schedule and the Table VI load schedule at once -- the
  /// experiment the paper mentions but omits for space.
  [[nodiscard]] static Scenario paper_combined(
      Bandwidth bandwidth_unit = Bandwidth::mbps(1.0));

  /// Heterogeneous multi-tenancy: the three Pis run different models
  /// (MobileNetV3Small / Large, EfficientNetB0), exercising the per-model
  /// batch queues ("we hit both model types", §IV-C.2).
  [[nodiscard]] static Scenario mixed_models(
      SimDuration duration = 60 * kSecond);

  /// A quiet single-device scenario for quickstarts and tests.
  [[nodiscard]] static Scenario ideal(SimDuration duration = 30 * kSecond);

  /// --- Helpers -------------------------------------------------------

  /// Appends a device with per-index naming; returns its index.
  std::size_t add_device(device::DeviceConfig config);

  /// Applies one frame spec to all devices.
  void set_frame_spec(const models::FrameSpec& spec);
};

/// The three Raspberry Pis from paper Table II, streaming MobileNetV3Small
/// at 30 fps with a 4000-frame limit.
[[nodiscard]] std::vector<device::DeviceConfig> paper_device_trio();

}  // namespace ff::core
