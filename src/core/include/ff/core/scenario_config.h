#pragma once

// Builds scenarios and controller factories from key=value configuration
// (command line or file), so experiments can be driven without writing
// C++ -- the `ffctl` example is a thin wrapper over this.
//
// Keys (all optional; unknown keys are ignored):
//   scenario           ideal | paper_network | paper_server_load |
//                      paper_tuning | paper_combined | mixed_models
//   seed               uint
//   duration_s         double
//   shared_medium      bool
//   bandwidth_unit_mbps  double      (paper_network / paper_combined)
//   devices            int          (replicate the first device)
//   device.profile     pi3b | pi4b_r12 | pi4b_r14
//   device.model       mobilenet_v3_small | ... (see parse_model)
//   device.fps         double
//   device.deadline_ms double
//   device.frame_limit uint
//   device.width / device.height / device.quality   int
//   net.bandwidth_mbps double       (overrides with constant conditions)
//   net.loss           double
//   net.delay_ms       double
//   load.rate          double       (constant background req/s)
//
//   controller         frame-feedback | local-only | always-offload |
//                      all-or-nothing | aimd | quality-adapt | fixed |
//                      reservation
//   controller.kp / controller.kd / controller.ki   double
//   controller.rate    double       (fixed)
//   controller.capacity_fps         double (reservation)

#include <string>

#include "ff/core/experiment.h"
#include "ff/core/scenario.h"
#include "ff/util/config.h"

namespace ff::core {

/// Builds a scenario from configuration. Throws std::invalid_argument on
/// an unknown `scenario`, `device.profile` or `device.model` value.
[[nodiscard]] Scenario scenario_from_config(const Config& config);

/// Builds a controller factory from configuration. The returned factory
/// owns any shared state it needs (e.g. the reservation manager). Throws
/// std::invalid_argument on an unknown `controller` value.
[[nodiscard]] ControllerFactory controller_factory_from_config(
    const Config& config);

/// Names accepted for `controller`, for help text.
[[nodiscard]] std::string known_controller_names();

/// Names accepted for `scenario`, for help text.
[[nodiscard]] std::string known_scenario_names();

}  // namespace ff::core
