#include "ff/core/autotune.h"

#include <stdexcept>

#include "ff/control/frame_feedback.h"
#include "ff/core/experiment.h"
#include "ff/rt/thread_pool.h"

namespace ff::core {

AutoTuneResult auto_tune(const AutoTuneConfig& config) {
  if (config.kp_grid.empty() || config.kd_grid.empty()) {
    throw std::invalid_argument("auto_tune: empty gain grid");
  }
  if (config.scenario.devices.size() != 1) {
    throw std::invalid_argument("auto_tune: scenario must have one device");
  }

  const auto grid = control::gain_grid(config.kp_grid, config.kd_grid);
  const double fs = config.scenario.devices[0].source_fps;

  auto evaluate = [&](std::size_t i) {
    control::FrameFeedbackConfig c;
    c.kp = grid[i].first;
    c.kd = grid[i].second;
    const auto result = run_experiment(
        config.scenario,
        make_controller_factory<control::FrameFeedbackController>(c));
    const TimeSeries& po = *result.devices[0].series.find("Po_target");

    GainScore g;
    g.kp = c.kp;
    g.kd = c.kd;
    g.clean = control::analyze_response(po, 0, config.disturbance_at, fs);
    g.disturbed = control::analyze_response(po, config.disturbance_at,
                                            result.duration, fs);
    g.mean_throughput = result.devices[0].mean_throughput();
    g.score = control::tuning_score(g.clean) +
              config.disturbance_weight * g.disturbed.steady_oscillation;
    return g;
  };

  AutoTuneResult out;
  out.all = rt::parallel_map(grid.size(), evaluate, config.threads);
  out.best = out.all.front();
  for (const auto& g : out.all) {
    if (g.score < out.best.score) out.best = g;
  }
  return out;
}

}  // namespace ff::core
