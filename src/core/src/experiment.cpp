#include "ff/core/experiment.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "ff/control/frame_feedback.h"

namespace ff::core {

double DeviceResult::goodput_fraction() const {
  if (totals.frames_captured == 0) return 0.0;
  return static_cast<double>(totals.successes()) /
         static_cast<double>(totals.frames_captured);
}

double DeviceResult::mean_throughput() const {
  const TimeSeries* p = series.find("P");
  if (!p || p->empty()) return 0.0;
  return p->stats().mean();
}

double DeviceResult::joules_per_inference() const {
  if (totals.successes() == 0) return 0.0;
  return energy_joules / static_cast<double>(totals.successes());
}

double ExperimentResult::total_mean_throughput() const {
  double sum = 0.0;
  for (const auto& d : devices) sum += d.mean_throughput();
  return sum;
}

Experiment::Experiment(Scenario scenario, ControllerFactory controllers)
    : scenario_(std::move(scenario)), factory_(std::move(controllers)) {
  if (scenario_.devices.empty()) {
    throw std::invalid_argument("Experiment: scenario has no devices");
  }
  build();
}

Experiment::~Experiment() = default;

void Experiment::resolve_topology() {
  if (scenario_.fleet.enabled()) {
    specs_ = scenario_.fleet.servers;
    if (scenario_.fleet.placement) {
      placement_ = scenario_.fleet.placement();
      if (!placement_) {
        throw std::invalid_argument(
            "Experiment: placement factory returned null");
      }
    }
  } else {
    // Legacy single-server scenario: the M = 1 degenerate topology.
    ServerSpec spec;
    spec.config = scenario_.server;
    spec.background_load = scenario_.background_load;
    spec.background = scenario_.background;
    specs_.push_back(std::move(spec));
  }

  const std::size_t server_count = specs_.size();
  std::vector<std::size_t> counts(server_count, 0);
  PlacementView view;
  view.server_count = server_count;
  view.assigned_counts = &counts;
  view.topology = &scenario_.fleet;

  assignments_.reserve(scenario_.devices.size());
  const auto& hints = scenario_.fleet.placement_hints;
  for (std::size_t i = 0; i < scenario_.devices.size(); ++i) {
    std::size_t target;
    if (i < hints.size() && hints[i] >= 0) {
      target = static_cast<std::size_t>(hints[i]);
    } else if (placement_) {
      target = placement_->place(i, scenario_.devices[i], view);
    } else {
      target = i % server_count;
    }
    if (target >= server_count) {
      throw std::invalid_argument(
          "Experiment: device placed on nonexistent server");
    }
    ++counts[target];
    assignments_.push_back(target);
  }
}

NetworkedTransportConfig Experiment::path_config(
    std::size_t device_index, const device::DeviceConfig& dconf,
    std::size_t server_index) const {
  // With one server the names are exactly the legacy single-server names:
  // RNG streams fork off component labels, so identical naming is what
  // makes the M = 1 topology bit-identical to the historical path.
  const std::string base =
      specs_.size() == 1
          ? dconf.name
          : dconf.name + "~s" + std::to_string(server_index);
  NetworkedTransportConfig tconf;
  tconf.name = base;
  tconf.client_id = device_index + 1;
  tconf.model = dconf.model;
  tconf.uplink = scenario_.uplink_template;
  tconf.uplink.name = base + "/up";
  tconf.downlink = scenario_.downlink_template;
  tconf.downlink.name = base + "/down";
  tconf.transport = scenario_.transport;
  return tconf;
}

void Experiment::build() {
  resolve_topology();
  if (scenario_.partitions > 0) {
    build_partitioned();
    return;
  }
  sim_ = std::make_unique<sim::Simulator>(scenario_.seed);
  for (const ServerSpec& spec : specs_) {
    servers_.push_back(
        std::make_unique<server::EdgeServer>(*sim_, spec.config));
    if (!spec.background_load.empty()) {
      loads_.push_back(std::make_unique<server::LoadGenerator>(
          *sim_, *servers_.back(), spec.background_load, spec.background));
    }
  }

  if (scenario_.shared_uplink_medium) {
    const std::size_t groups =
        std::max<std::size_t>(scenario_.uplink_medium_groups, 1);
    for (std::size_t g = 0; g < groups; ++g) {
      uplink_media_.push_back(std::make_unique<net::SharedMedium>(
          groups == 1 ? "uplink-ap" : "uplink-ap-" + std::to_string(g)));
    }
  }

  std::vector<net::Link*> shaped_links;
  for (std::size_t i = 0; i < scenario_.devices.size(); ++i) {
    const auto& dconf = scenario_.devices[i];
    auto rig = std::make_unique<DeviceRig>();
    rig->index = i;
    rig->sim = sim_.get();

    rig->transport = std::make_unique<FleetOffloadTransport>();
    for (std::size_t s = 0; s < servers_.size(); ++s) {
      auto path = std::make_unique<NetworkedOffloadTransport>(
          *sim_, *servers_[s], path_config(i, dconf, s));
      for (net::Link* link : path->path().links()) {
        shaped_links.push_back(link);
      }
      if (!uplink_media_.empty()) {
        // The AP is on the device side: every server path of this device
        // contends on the device group's medium.
        path->path().forward_link().attach_medium(
            uplink_media_[i % uplink_media_.size()].get());
      }
      rig->transport->add_path(std::move(path));
    }
    rig->transport->set_active(assignments_[i]);
    rig->initial_server = assignments_[i];

    rig->device =
        std::make_unique<device::EdgeDevice>(*sim_, *rig->transport, dconf);
    rig->controller = factory_(i);
    if (!rig->controller) {
      throw std::invalid_argument(
          "Experiment: controller factory returned null");
    }

    DeviceRig* raw = rig.get();
    rig->control_timer = std::make_unique<sim::PeriodicTimer>(
        *sim_, [this, raw](std::uint64_t) { control_tick(*raw); });
    rigs_.push_back(std::move(rig));
  }

  scenario_.network.apply(*sim_, std::move(shaped_links));

  sample_timer_ = std::make_unique<sim::PeriodicTimer>(
      *sim_, [this](std::uint64_t) { sample_tick(); });
}

void Experiment::build_partitioned() {
  sim::PartitionedSimulator::Options opts;
  opts.partitions = scenario_.partitions;
  opts.threads = scenario_.partition_threads;
  psim_ = std::make_unique<sim::PartitionedSimulator>(scenario_.seed, opts);
  const std::size_t parts = psim_->partition_count();

  // Lookahead floor: no delivery crosses a link faster than the minimum
  // propagation delay the run can ever configure -- the netem schedule's
  // floor folded with the link templates' initial conditions.
  SimDuration floor = scenario_.network.min_propagation_delay();
  floor = std::min(floor, scenario_.uplink_template.initial.propagation_delay);
  floor =
      std::min(floor, scenario_.downlink_template.initial.propagation_delay);
  if (floor <= 0) {
    throw std::invalid_argument(
        "Experiment: partitioned execution requires a strictly positive "
        "propagation delay on every link and netem phase (the conservative "
        "lookahead); this scenario's minimum is zero");
  }

  // Server s lives on partition s % K (s = 0 on partition 0, preserving
  // the legacy single-server mapping): its EdgeServer, background load,
  // and every reverse link it transmits on.
  std::vector<sim::Simulator*> server_sims;
  for (std::size_t s = 0; s < specs_.size(); ++s) {
    const ServerSpec& spec = specs_[s];
    sim::Simulator& server_sim = psim_->partition(s % parts);
    server_sims.push_back(&server_sim);
    servers_.push_back(
        std::make_unique<server::EdgeServer>(server_sim, spec.config));
    if (!spec.background_load.empty()) {
      loads_.push_back(std::make_unique<server::LoadGenerator>(
          server_sim, *servers_.back(), spec.background_load,
          spec.background));
    }
  }

  // A shared medium is one contention domain: all its links must live on
  // one simulator, so devices of one medium group are co-partitioned.
  const std::size_t groups =
      scenario_.shared_uplink_medium
          ? std::max<std::size_t>(scenario_.uplink_medium_groups, 1)
          : 0;
  if (scenario_.shared_uplink_medium) {
    for (std::size_t g = 0; g < groups; ++g) {
      uplink_media_.push_back(std::make_unique<net::SharedMedium>(
          groups == 1 ? "uplink-ap" : "uplink-ap-" + std::to_string(g)));
    }
  }

  for (std::size_t i = 0; i < scenario_.devices.size(); ++i) {
    const auto& dconf = scenario_.devices[i];
    auto rig = std::make_unique<DeviceRig>();
    rig->index = i;
    const std::size_t group = scenario_.shared_uplink_medium ? i % groups : i;
    const std::size_t part = group % parts;
    sim::Simulator& dev_sim = psim_->partition(part);
    rig->sim = &dev_sim;

    rig->transport = std::make_unique<FleetOffloadTransport>();
    for (std::size_t s = 0; s < servers_.size(); ++s) {
      const std::size_t server_part = s % parts;
      auto path = std::make_unique<NetworkedOffloadTransport>(
          dev_sim, *server_sims[s], *servers_[s], path_config(i, dconf, s));

      // Each link crosses from its sender's partition to the receiver's;
      // self-edges (device co-partitioned with the server) still route
      // through the mailbox so the delivery order contract is identical
      // at every K.
      net::Link& fwd = path->path().forward_link();
      net::Link& rev = path->path().reverse_link();
      fwd.bind_boundary(&psim_->add_edge(part, server_part, floor));
      rev.bind_boundary(&psim_->add_edge(server_part, part, floor));

      // Netem is applied per link on the link's home simulator: phase
      // changes are sender-side state, and one event per (phase, link)
      // keeps the event count independent of the partition count.
      scenario_.network.apply(fwd.simulator(), {&fwd});
      scenario_.network.apply(rev.simulator(), {&rev});

      if (!uplink_media_.empty()) {
        fwd.attach_medium(uplink_media_[group].get());
      }
      rig->transport->add_path(std::move(path));
    }
    rig->transport->set_active(assignments_[i]);
    rig->initial_server = assignments_[i];

    rig->device =
        std::make_unique<device::EdgeDevice>(dev_sim, *rig->transport, dconf);
    rig->controller = factory_(i);
    if (!rig->controller) {
      throw std::invalid_argument(
          "Experiment: controller factory returned null");
    }

    DeviceRig* raw = rig.get();
    rig->control_timer = std::make_unique<sim::PeriodicTimer>(
        dev_sim, [this, raw](std::uint64_t) { control_tick(*raw); });
    rig->sample_timer = std::make_unique<sim::PeriodicTimer>(
        dev_sim, [this, raw](std::uint64_t) { sample_rig(*raw); });
    rigs_.push_back(std::move(rig));
  }
}

void Experiment::set_trace_sink(obs::TraceSink* sink) {
  // Partitioned windows emit from worker threads concurrently; TraceSink
  // implementations are single-threaded by contract, so interpose the
  // serializing wrapper.
  if (psim_ != nullptr && sink != nullptr) {
    synced_sink_ = std::make_unique<obs::SynchronizedTraceSink>(*sink);
    sink = synced_sink_.get();
  } else {
    synced_sink_.reset();
  }
  trace_sink_ = sink;
  for (auto& server : servers_) server->attach_trace_sink(sink);
  for (auto& rig : rigs_) {
    rig->device->attach_trace_sink(sink);
    for (std::size_t s = 0; s < rig->transport->path_count(); ++s) {
      rig->transport->path(s).path().attach_trace_sink(sink);
    }
  }
}

void Experiment::control_tick(DeviceRig& rig) {
  device::EdgeDevice& dev = *rig.device;
  control::Controller& ctl = *rig.controller;

  control::ControllerInput input = dev.controller_input();
  if (ctl.wants_probe()) {
    input.probe_success = dev.take_probe_result();
  }
  const double po = ctl.update(input);
  dev.set_offload_rate(po);
  if (const auto quality = ctl.frame_quality()) {
    dev.set_frame_quality(*quality);
  }
  if (ctl.wants_probe()) dev.send_probe();
  maybe_rehome(rig);

  if (trace_sink_ != nullptr) {
    obs::TraceEvent event(rig.sim->now(), obs::ev::kControlTick,
                          dev.config().name);
    event.with("po", po)
        .with("T", input.timeout_rate)
        .with("pl", input.local_rate)
        .with("ps", input.offload_success_rate);
    if (const auto* ffc =
            dynamic_cast<const control::FrameFeedbackController*>(&ctl)) {
      event.with("e", ffc->last_error()).with("u", ffc->last_update());
    }
    trace_sink_->emit(event);
  }
}

/// Rejection -> re-placement: when the server turned this device away at
/// admission since the last tick, ask the placement policy where to go
/// next. Runs on the device's own partition; on_rejection is const and
/// thread-safe by contract, and set_active only mutates this rig.
void Experiment::maybe_rehome(DeviceRig& rig) {
  if (!placement_ || rig.transport->path_count() <= 1) return;
  const std::uint64_t rejections =
      rig.device->offload_client().stats().admission_rejections;
  if (rejections <= rig.admission_rejections_seen) return;
  rig.admission_rejections_seen = rejections;
  const std::size_t current = rig.transport->active();
  const std::size_t next = placement_->on_rejection(
      rig.index, current, rig.transport->path_count(), rejections);
  if (next != current && next < rig.transport->path_count()) {
    rig.transport->set_active(next);
  }
}

void Experiment::sample_tick() {
  for (auto& rig : rigs_) sample_rig(*rig);
}

void Experiment::sample_rig(DeviceRig& rig) {
  const SimTime now = rig.sim->now();
  device::EdgeDevice& dev = *rig.device;
  device::Telemetry& t = dev.telemetry();
  rig.series.series("P").record(now, t.throughput(now));
  rig.series.series("Pl").record(now, t.local_rate(now));
  rig.series.series("Po_target").record(now, dev.offload_rate());
  rig.series.series("Po_achieved").record(now, t.offload_attempt_rate(now));
  rig.series.series("Po_success").record(now, t.offload_success_rate(now));
  rig.series.series("T").record(now, t.timeout_rate(now));
  rig.series.series("Tn").record(now, t.network_timeout_rate(now));
  rig.series.series("Tl").record(now, t.load_timeout_rate(now));
  rig.series.series("cpu").record(now, dev.cpu_utilization());
  rig.series.series("quality").record(now, dev.frame_spec().jpeg_quality);
  rig.series.series("accuracy").record(now, dev.effective_accuracy());
  const double power = dev.power_draw_w();
  rig.series.series("power_w").record(now, power);
  rig.energy.accumulate(power, scenario_.sample_period);
}

ExperimentResult Experiment::run() {
  if (ran_) throw std::logic_error("Experiment::run called twice");
  ran_ = true;

  SimDuration first_control = 0;
  for (auto& rig : rigs_) {
    rig->device->start();
    rig->control_timer->start(rig->controller->measure_period(),
                              rig->controller->measure_period());
    first_control = std::max(first_control,
                             rig->controller->measure_period());
  }
  for (auto& load : loads_) load->start();
  // Offset sampling half a period after control ticks so each sample sees
  // the period's settled state; the first sample lands half a sample
  // period after the last rig's first control tick, so no series ever
  // records the pre-control transient.
  const SimTime first_sample = first_control + scenario_.sample_period / 2;
  if (psim_) {
    for (auto& rig : rigs_) {
      rig->sample_timer->start(scenario_.sample_period, first_sample);
    }
    psim_->run_until(scenario_.duration);
  } else {
    sample_timer_->start(scenario_.sample_period, first_sample);
    sim_->run_until(scenario_.duration);
  }

  ExperimentResult result;
  result.scenario = scenario_.name;
  result.seed = scenario_.seed;
  result.duration = psim_ ? psim_->now() : sim_->now();
  result.events_executed =
      psim_ ? psim_->events_executed() : sim_->events_executed();

  for (std::size_t s = 0; s < servers_.size(); ++s) {
    ServerResult sr;
    sr.name = specs_[s].config.name;
    sr.stats = servers_[s]->stats();
    sr.gpu_utilization = servers_[s]->gpu_utilization();
    sr.admission = servers_[s]->admission().stats();
    sr.queue_depth_at_end = servers_[s]->queue_depth();
    sr.in_flight_batch_at_end = servers_[s]->in_flight_batch();
    result.servers.push_back(std::move(sr));
  }
  result.server = result.servers.front().stats;
  result.server_gpu_utilization = result.servers.front().gpu_utilization;

  for (auto& rig : rigs_) {
    DeviceResult d;
    d.name = rig->device->config().name;
    d.controller = std::string(rig->controller->name());
    // Terminal accounting: frames the horizon cut off mid-pipeline would
    // otherwise vanish from the totals and break frame conservation.
    rig->device->telemetry().record_in_flight_at_end(
        rig->device->in_flight_frames());
    d.totals = rig->device->telemetry().totals();
    d.offload = rig->device->offload_client().stats();
    d.uplink = rig->transport->uplink_stats();
    d.energy_joules = rig->energy.joules();
    d.series = std::move(rig->series);
    d.initial_server = rig->initial_server;
    d.final_server = rig->transport->active();
    result.devices.push_back(std::move(d));
  }

  for (const TenantSloSpec& spec : scenario_.fleet.tenants) {
    TenantResult tr;
    tr.name = spec.name;
    tr.min_goodput = spec.min_goodput;
    tr.min_throughput_fps = spec.min_throughput_fps;
    for (const std::size_t member : spec.devices) {
      const DeviceResult& d = result.devices.at(member);
      tr.totals += d.totals;
      tr.mean_throughput_fps += d.mean_throughput();
    }
    result.tenants.push_back(std::move(tr));
  }
  return result;
}

ExperimentResult run_experiment(Scenario scenario,
                                ControllerFactory controllers) {
  Experiment e(std::move(scenario), std::move(controllers));
  return e.run();
}

}  // namespace ff::core
