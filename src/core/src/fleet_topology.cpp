#include "ff/core/fleet_topology.h"

#include <utility>

namespace ff::core {

FleetTopology FleetTopology::uniform(server::ServerConfig base,
                                     std::size_t count) {
  FleetTopology topo;
  topo.servers.reserve(count);
  for (std::size_t s = 0; s < count; ++s) {
    ServerSpec spec;
    spec.config = base;
    if (count > 1) {
      spec.config.name = base.name + "-" + std::to_string(s);
    }
    topo.servers.push_back(std::move(spec));
  }
  return topo;
}

}  // namespace ff::core
