#include "ff/core/fleet_transport.h"

#include <stdexcept>
#include <utility>

namespace ff::core {

void FleetOffloadTransport::add_path(
    std::unique_ptr<NetworkedOffloadTransport> path) {
  NetworkedOffloadTransport* raw = path.get();
  paths_.push_back(std::move(path));
  // Responses and failures funnel into the shared handlers regardless of
  // which server produced them; the routing map is cleaned up first so a
  // frame resolved on an old path does not leak an entry.
  raw->set_on_response([this](std::uint64_t id, device::OffloadReply reply) {
    if (paths_.size() > 1) frame_path_.erase(id);
    if (on_response_) on_response_(id, reply);
  });
  raw->set_on_failure([this](std::uint64_t id) {
    if (paths_.size() > 1) frame_path_.erase(id);
    if (on_failure_) on_failure_(id);
  });
}

void FleetOffloadTransport::set_active(std::size_t server_index) {
  if (server_index >= paths_.size()) {
    throw std::out_of_range("FleetOffloadTransport: no such server path");
  }
  active_ = server_index;
}

net::ChannelStats FleetOffloadTransport::uplink_stats() const {
  net::ChannelStats sum{};
  for (const auto& path : paths_) sum += path->uplink_stats();
  return sum;
}

void FleetOffloadTransport::offload(std::uint64_t id, Bytes payload) {
  if (paths_.size() > 1) frame_path_[id] = active_;
  paths_[active_]->offload(id, payload);
}

void FleetOffloadTransport::cancel(std::uint64_t id) {
  if (paths_.size() > 1) {
    const auto it = frame_path_.find(id);
    if (it != frame_path_.end()) {
      const std::size_t path = it->second;
      frame_path_.erase(it);
      paths_[path]->cancel(id);
      return;
    }
  }
  paths_[active_]->cancel(id);
}

void FleetOffloadTransport::set_on_response(ResponseFn fn) {
  on_response_ = std::move(fn);
}

void FleetOffloadTransport::set_on_failure(FailureFn fn) {
  on_failure_ = std::move(fn);
}

}  // namespace ff::core
