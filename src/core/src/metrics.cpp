#include "ff/core/metrics.h"

#include <algorithm>
#include <cmath>

namespace ff::core {
namespace {

[[nodiscard]] PhaseStat make_phase_stat(const TimeSeries& series,
                                        std::string label, SimTime from,
                                        SimTime to, SimDuration settle) {
  PhaseStat stat;
  stat.label = std::move(label);
  stat.from = from;
  stat.to = to;
  const SimTime measured_from = std::min<SimTime>(from + settle, to);
  const auto stats = series.stats_between(measured_from, to);
  stat.mean = stats.mean();
  stat.stddev = stats.stddev();
  return stat;
}

}  // namespace

std::vector<PhaseStat> phase_means(const TimeSeries& series,
                                   const net::NetemSchedule& schedule,
                                   SimTime end, SimDuration settle) {
  std::vector<PhaseStat> out;
  const auto& phases = schedule.phases();
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const SimTime from = phases[i].start;
    const SimTime to = i + 1 < phases.size() ? phases[i + 1].start : end;
    if (to <= from) continue;
    out.push_back(make_phase_stat(series, phases[i].label, from, to, settle));
  }
  return out;
}

std::vector<PhaseStat> phase_means(const TimeSeries& series,
                                   const server::LoadSchedule& schedule,
                                   SimTime end, SimDuration settle) {
  std::vector<PhaseStat> out;
  const auto& phases = schedule.phases();
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const SimTime from = phases[i].start;
    const SimTime to = i + 1 < phases.size() ? phases[i + 1].start : end;
    if (to <= from) continue;
    const std::string label =
        std::to_string(static_cast<int>(phases[i].rate.per_second)) +
        " req/s";
    out.push_back(make_phase_stat(series, label, from, to, settle));
  }
  return out;
}

QosSummary summarize(const DeviceResult& device) {
  QosSummary q;
  q.mean_throughput = device.mean_throughput();
  q.goodput_fraction = device.goodput_fraction();
  const auto& t = device.totals;
  if (t.offload_attempts > 0) {
    q.timeout_fraction = static_cast<double>(t.timeouts()) /
                         static_cast<double>(t.offload_attempts);
  }
  if (const TimeSeries* cpu = device.series.find("cpu"); cpu && !cpu->empty()) {
    q.mean_cpu_utilization = cpu->stats().mean();
  }
  if (!device.offload.latency_us.empty()) {
    q.mean_offload_latency_ms = device.offload.latency_us.mean() / 1000.0;
  }
  return q;
}

double throughput_ratio(const DeviceResult& numerator,
                        const DeviceResult& denominator, SimTime from,
                        SimTime to) {
  const TimeSeries* pn = numerator.series.find("P");
  const TimeSeries* pd = denominator.series.find("P");
  if (!pn || !pd) return 0.0;
  const double denom = pd->mean_between(from, to);
  if (std::abs(denom) < 1e-9) return 0.0;
  return pn->mean_between(from, to) / denom;
}

}  // namespace ff::core
