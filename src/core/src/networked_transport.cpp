#include "ff/core/networked_transport.h"

#include <utility>

namespace ff::core {
namespace {

/// Bit 62 of a downlink message id marks a rejection notice.
constexpr std::uint64_t kRejectBit = 1ULL << 62;

}  // namespace

NetworkedOffloadTransport::NetworkedOffloadTransport(
    sim::Simulator& sim, server::EdgeServer& server,
    NetworkedTransportConfig config)
    : NetworkedOffloadTransport(sim, sim, server, std::move(config)) {}

NetworkedOffloadTransport::NetworkedOffloadTransport(
    sim::Simulator& device_sim, sim::Simulator& server_sim,
    server::EdgeServer& server, NetworkedTransportConfig config)
    : server_(server),
      config_(std::move(config)),
      path_(device_sim, server_sim, config_.uplink, config_.downlink,
            config_.transport, config_.name) {
  // Server side: a fully reassembled frame becomes an inference request;
  // its outcome is shipped back as a (small) downlink message.
  path_.uplink().set_on_message([this](std::uint64_t id, Bytes payload) {
    server::InferenceRequest req;
    req.request_id = id;
    req.client_id = config_.client_id;
    req.model = config_.model;
    req.payload = payload;
    server_.submit(std::move(req),
                   [this](const server::RequestOutcome& outcome) {
      const bool rejected =
          outcome.status == server::RequestStatus::kRejected;
      const std::uint64_t response_id =
          outcome.request.request_id | (rejected ? kRejectBit : 0);
      path_.downlink().send(response_id, Bytes{models::kResultBytes});
    });
  });

  // Device side: decode the rejection bit and hand the response up.
  path_.downlink().set_on_message([this](std::uint64_t id, Bytes) {
    if (on_response_) on_response_(id & ~kRejectBit, (id & kRejectBit) != 0);
  });

  // A failed uplink send means the frame never (fully) reached the server.
  path_.uplink().set_on_send_result([this](std::uint64_t id, bool success) {
    if (!success && on_failure_) on_failure_(id);
  });
}

void NetworkedOffloadTransport::offload(std::uint64_t id, Bytes payload) {
  uplink().send(id, payload);
}

void NetworkedOffloadTransport::cancel(std::uint64_t id) {
  uplink().cancel(id);
}

}  // namespace ff::core
