#include "ff/core/networked_transport.h"

#include <utility>

namespace ff::core {
namespace {

/// Bit 62 of a downlink message id marks a load rejection (batch-formation
/// shedding); bit 61 marks an admission-control rejection. Together they
/// encode the typed OffloadReply without widening the wire format.
constexpr std::uint64_t kRejectBit = 1ULL << 62;
constexpr std::uint64_t kAdmissionBit = 1ULL << 61;
constexpr std::uint64_t kStatusMask = kRejectBit | kAdmissionBit;

std::uint64_t encode_status(server::RequestStatus status) {
  switch (status) {
    case server::RequestStatus::kCompleted:
      return 0;
    case server::RequestStatus::kRejected:
      return kRejectBit;
    case server::RequestStatus::kRejectedAdmission:
      return kAdmissionBit;
  }
  return 0;
}

device::OffloadReply decode_status(std::uint64_t id) {
  if ((id & kAdmissionBit) != 0) {
    return device::OffloadReply::kRejectedAdmission;
  }
  if ((id & kRejectBit) != 0) return device::OffloadReply::kRejectedLoad;
  return device::OffloadReply::kCompleted;
}

}  // namespace

NetworkedOffloadTransport::NetworkedOffloadTransport(
    sim::Simulator& sim, server::EdgeServer& server,
    NetworkedTransportConfig config)
    : NetworkedOffloadTransport(sim, sim, server, std::move(config)) {}

NetworkedOffloadTransport::NetworkedOffloadTransport(
    sim::Simulator& device_sim, sim::Simulator& server_sim,
    server::EdgeServer& server, NetworkedTransportConfig config)
    : server_(server),
      config_(std::move(config)),
      path_(device_sim, server_sim, config_.uplink, config_.downlink,
            config_.transport, config_.name) {
  // Server side: a fully reassembled frame becomes an inference request;
  // its outcome is shipped back as a (small) downlink message.
  path_.uplink().set_on_message([this](std::uint64_t id, Bytes payload) {
    server::InferenceRequest req;
    req.request_id = id;
    req.client_id = config_.client_id;
    req.model = config_.model;
    req.payload = payload;
    server_.submit(std::move(req),
                   [this](const server::RequestOutcome& outcome) {
      const std::uint64_t response_id =
          outcome.request.request_id | encode_status(outcome.status);
      path_.downlink().send(response_id, Bytes{models::kResultBytes});
    });
  });

  // Device side: decode the status bits and hand the response up.
  path_.downlink().set_on_message([this](std::uint64_t id, Bytes) {
    if (on_response_) on_response_(id & ~kStatusMask, decode_status(id));
  });

  // A failed uplink send means the frame never (fully) reached the server.
  path_.uplink().set_on_send_result([this](std::uint64_t id, bool success) {
    if (!success && on_failure_) on_failure_(id);
  });
}

void NetworkedOffloadTransport::offload(std::uint64_t id, Bytes payload) {
  uplink().send(id, payload);
}

void NetworkedOffloadTransport::cancel(std::uint64_t id) {
  uplink().cancel(id);
}

}  // namespace ff::core
