#include "ff/core/obs_export.h"

#include <fstream>
#include <stdexcept>

namespace ff::core {

namespace {

// The result structs carry finished summaries (StreamingStats/P2Quantile),
// not raw samples, so latency figures export as gauges rather than being
// replayed through a Distribution.
void export_device(const DeviceResult& d, obs::MetricsRegistry& reg) {
  const obs::Labels labels{{"device", d.name}, {"controller", d.controller}};

  reg.counter("device.frames_captured", labels).add(
      static_cast<double>(d.totals.frames_captured));
  reg.counter("device.local_completions", labels).add(
      static_cast<double>(d.totals.local_completions));
  reg.counter("device.local_drops", labels).add(
      static_cast<double>(d.totals.local_drops));
  reg.counter("device.offload_attempts", labels).add(
      static_cast<double>(d.totals.offload_attempts));
  reg.counter("device.offload_successes", labels).add(
      static_cast<double>(d.totals.offload_successes));
  reg.counter("device.timeouts_network", labels).add(
      static_cast<double>(d.totals.timeouts_network));
  reg.counter("device.timeouts_load", labels).add(
      static_cast<double>(d.totals.timeouts_load));
  reg.counter("device.in_flight_at_end", labels).add(
      static_cast<double>(d.totals.in_flight_at_end));
  reg.counter("device.offload_late_responses", labels).add(
      static_cast<double>(d.offload.late_responses));

  reg.gauge("device.goodput_fraction", labels).set(d.goodput_fraction());
  reg.gauge("device.mean_throughput_fps", labels).set(d.mean_throughput());
  reg.gauge("device.energy_joules", labels).set(d.energy_joules);
  reg.gauge("device.joules_per_inference", labels)
      .set(d.joules_per_inference());

  if (d.offload.latency_us.count() > 0) {
    reg.gauge("device.offload_latency_us_mean", labels)
        .set(d.offload.latency_us.mean());
    reg.gauge("device.offload_latency_us_p50", labels)
        .set(d.offload.latency_p50.value());
    reg.gauge("device.offload_latency_us_p95", labels)
        .set(d.offload.latency_p95.value());
    reg.gauge("device.offload_latency_us_p99", labels)
        .set(d.offload.latency_p99.value());
  }

  reg.counter("net.messages_sent", labels).add(
      static_cast<double>(d.uplink.messages_sent));
  reg.counter("net.sends_succeeded", labels).add(
      static_cast<double>(d.uplink.sends_succeeded));
  reg.counter("net.sends_failed", labels).add(
      static_cast<double>(d.uplink.sends_failed));
  reg.counter("net.sends_cancelled", labels).add(
      static_cast<double>(d.uplink.sends_cancelled));
  reg.counter("net.fragments_sent", labels).add(
      static_cast<double>(d.uplink.fragments_sent));
  reg.counter("net.retransmissions", labels).add(
      static_cast<double>(d.uplink.retransmissions));
}

}  // namespace

void export_metrics(const ExperimentResult& result,
                    obs::MetricsRegistry& registry) {
  const obs::Labels run{{"scenario", result.scenario}};

  registry.gauge("run.duration_s", run)
      .set(static_cast<double>(result.duration) /
           static_cast<double>(kSecond));
  registry.counter("run.events_executed", run)
      .add(static_cast<double>(result.events_executed));
  registry.gauge("run.total_mean_throughput_fps", run)
      .set(result.total_mean_throughput());

  registry.counter("server.requests_received", run)
      .add(static_cast<double>(result.server.requests_received));
  registry.counter("server.requests_completed", run)
      .add(static_cast<double>(result.server.requests_completed));
  registry.counter("server.requests_rejected", run)
      .add(static_cast<double>(result.server.requests_rejected));
  registry.counter("server.requests_admission_rejected", run)
      .add(static_cast<double>(result.server.requests_admission_rejected));
  registry.counter("server.batches_executed", run)
      .add(static_cast<double>(result.server.batches_executed));
  registry.gauge("server.mean_batch_size", run)
      .set(result.server.mean_batch_size());
  registry.gauge("server.gpu_utilization", run)
      .set(result.server_gpu_utilization);
  if (result.server.service_latency_us.count() > 0) {
    registry.gauge("server.service_latency_us_mean", run)
        .set(result.server.service_latency_us.mean());
  }

  // Fleet runs: per-server and per-tenant breakdowns (the single-server
  // aggregate above stays as servers[0] for existing dashboards).
  if (result.servers.size() > 1) {
    for (const auto& s : result.servers) {
      const obs::Labels labels{{"scenario", result.scenario},
                               {"server", s.name}};
      registry.counter("fleet.requests_received", labels)
          .add(static_cast<double>(s.stats.requests_received));
      registry.counter("fleet.requests_completed", labels)
          .add(static_cast<double>(s.stats.requests_completed));
      registry.counter("fleet.requests_rejected", labels)
          .add(static_cast<double>(s.stats.requests_rejected));
      registry.counter("fleet.requests_admission_rejected", labels)
          .add(static_cast<double>(s.stats.requests_admission_rejected));
      registry.gauge("fleet.gpu_utilization", labels)
          .set(s.gpu_utilization);
    }
  }
  for (const auto& t : result.tenants) {
    const obs::Labels labels{{"scenario", result.scenario},
                             {"tenant", t.name}};
    registry.counter("tenant.frames_captured", labels)
        .add(static_cast<double>(t.totals.frames_captured));
    registry.gauge("tenant.goodput_fraction", labels)
        .set(t.goodput_fraction());
    registry.gauge("tenant.mean_throughput_fps", labels)
        .set(t.mean_throughput_fps);
    registry.gauge("tenant.slo_met", labels).set(t.slo_met() ? 1.0 : 0.0);
  }

  for (const auto& d : result.devices) export_device(d, registry);
}

void write_metrics_json(const ExperimentResult& result, std::ostream& os) {
  obs::MetricsRegistry registry;
  export_metrics(result, registry);
  registry.write_json(os);
}

void write_metrics_json_file(const ExperimentResult& result,
                             const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_metrics_json_file: cannot open " + path);
  }
  write_metrics_json(result, out);
}

}  // namespace ff::core
