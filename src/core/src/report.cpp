#include "ff/core/report.h"

#include "ff/util/ascii_plot.h"

namespace ff::core {

void print_summary(std::ostream& os, const ExperimentResult& result) {
  os << "scenario: " << result.scenario << "  seed: " << result.seed
     << "  sim-time: " << fmt(sim_to_seconds(result.duration), 1) << "s"
     << "  events: " << result.events_executed << "\n";

  TextTable table({"device", "controller", "frames", "P mean (fps)",
                   "goodput %", "offloads", "timeouts (Tn/Tl)",
                   "latency p50/p95 (ms)", "cpu %"});
  for (const auto& d : result.devices) {
    const QosSummary q = summarize(d);
    const std::string latency =
        d.offload.latency_us.empty()
            ? "-"
            : fmt(d.offload.latency_p50.value() / 1000.0, 0) + "/" +
                  fmt(d.offload.latency_p95.value() / 1000.0, 0);
    table.add_row({d.name, d.controller,
                   std::to_string(d.totals.frames_captured),
                   fmt(q.mean_throughput, 2), fmt(q.goodput_fraction * 100, 1),
                   std::to_string(d.totals.offload_attempts),
                   std::to_string(d.totals.timeouts_network) + "/" +
                       std::to_string(d.totals.timeouts_load),
                   latency, fmt(q.mean_cpu_utilization * 100, 1)});
  }
  os << table.render();
  if (result.servers.size() <= 1) {
    os << "server: batches=" << result.server.batches_executed
       << " mean-batch=" << fmt(result.server.mean_batch_size(), 2)
       << " completed=" << result.server.requests_completed
       << " rejected=" << result.server.requests_rejected
       << " gpu-util=" << fmt(result.server_gpu_utilization * 100, 1)
       << "%\n";
  } else {
    for (const auto& s : result.servers) {
      os << "server " << s.name << ": batches=" << s.stats.batches_executed
         << " mean-batch=" << fmt(s.stats.mean_batch_size(), 2)
         << " completed=" << s.stats.requests_completed
         << " rejected=" << s.stats.requests_rejected
         << " admission-rejected=" << s.stats.requests_admission_rejected
         << " gpu-util=" << fmt(s.gpu_utilization * 100, 1) << "%\n";
    }
  }
  for (const auto& t : result.tenants) {
    os << "tenant " << t.name << ": frames=" << t.totals.frames_captured
       << " goodput=" << fmt(t.goodput_fraction() * 100, 1)
       << "% P=" << fmt(t.mean_throughput_fps, 2)
       << " slo=" << (t.slo_met() ? "met" : "MISSED") << "\n";
  }
}

void print_phase_comparison(std::ostream& os,
                            const std::vector<std::string>& run_names,
                            const std::vector<std::vector<PhaseStat>>&
                                phase_stats) {
  if (phase_stats.empty()) return;
  std::vector<std::string> headers{"phase", "window (s)"};
  headers.insert(headers.end(), run_names.begin(), run_names.end());
  TextTable table(headers);
  const std::size_t phases = phase_stats.front().size();
  for (std::size_t p = 0; p < phases; ++p) {
    const auto& first = phase_stats.front().at(p);
    std::vector<std::string> row{
        first.label, fmt(sim_to_seconds(first.from), 0) + "-" +
                         fmt(sim_to_seconds(first.to), 0)};
    for (const auto& run : phase_stats) {
      row.push_back(fmt(run.at(p).mean, 2));
    }
    table.add_row(std::move(row));
  }
  os << table.render();
}

void plot_runs_labeled(std::ostream& os, const std::string& title,
                       const std::vector<const ExperimentResult*>& runs,
                       const std::vector<std::string>& labels,
                       const std::string& series_name,
                       std::size_t device_index, double y_max) {
  std::vector<const TimeSeries*> series;
  std::vector<TimeSeries> renamed;
  renamed.reserve(runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const TimeSeries* s =
        runs[i]->devices.at(device_index).series.find(series_name);
    if (!s) continue;
    TimeSeries copy(i < labels.size() ? labels[i] : series_name);
    for (const auto& p : s->points()) copy.record(p.time, p.value);
    renamed.push_back(std::move(copy));
  }
  series.reserve(renamed.size());
  for (const auto& s : renamed) series.push_back(&s);

  PlotOptions opts;
  opts.title = title;
  opts.width = 110;
  opts.height = 18;
  opts.y_min = 0.0;
  opts.y_max = y_max;
  os << plot_series(series, opts);
}

void plot_runs(std::ostream& os, const std::string& title,
               const std::vector<const ExperimentResult*>& runs,
               const std::string& series_name, std::size_t device_index,
               double y_max) {
  // Label with controller names so the legend reads like the paper's
  // figure legends.
  std::vector<std::string> labels;
  labels.reserve(runs.size());
  for (const auto* run : runs) {
    labels.push_back(run->devices.at(device_index).controller);
  }
  plot_runs_labeled(os, title, runs, labels, series_name, device_index, y_max);
}

}  // namespace ff::core
