#include "ff/core/scenario.h"

namespace ff::core {
namespace {

[[nodiscard]] device::DeviceConfig make_pi(std::string name,
                                           models::DeviceId profile) {
  device::DeviceConfig d;
  d.name = std::move(name);
  d.profile = profile;
  d.model = models::ModelId::kMobileNetV3Small;
  d.source_fps = 30.0;
  d.frame_limit = 4000;
  return d;
}

}  // namespace

std::vector<device::DeviceConfig> paper_device_trio() {
  return {
      make_pi("pi4b_r14", models::DeviceId::kPi4BR14),
      make_pi("pi4b_r12", models::DeviceId::kPi4BR12),
      make_pi("pi3b", models::DeviceId::kPi3B),
  };
}

std::size_t Scenario::add_device(device::DeviceConfig config) {
  devices.push_back(std::move(config));
  return devices.size() - 1;
}

void Scenario::set_frame_spec(const models::FrameSpec& spec) {
  for (auto& d : devices) d.frame = spec;
}

Scenario Scenario::paper_network(Bandwidth bandwidth_unit) {
  Scenario s;
  s.name = "paper-network";
  s.duration = 135 * kSecond;  // 4000 frames at 30 fps + settle
  s.devices = paper_device_trio();
  s.network = net::NetemSchedule::paper_table_v(bandwidth_unit);
  s.uplink_template.initial = s.network.at(0);
  s.downlink_template.initial = s.network.at(0);
  return s;
}

Scenario Scenario::paper_server_load() {
  Scenario s;
  s.name = "paper-server-load";
  s.duration = 135 * kSecond;
  s.devices = paper_device_trio();
  const net::LinkConditions clean{Bandwidth::mbps(10.0), 0.0, 2 * kMillisecond};
  s.network = net::NetemSchedule::constant(clean);
  s.uplink_template.initial = clean;
  s.downlink_template.initial = clean;
  s.background_load = server::LoadSchedule::paper_table_vi();
  s.background.model = models::ModelId::kMobileNetV3Small;
  s.background.payload = models::frame_bytes({});
  return s;
}

Scenario Scenario::paper_tuning() {
  Scenario s;
  s.name = "paper-tuning";
  s.duration = 60 * kSecond;
  device::DeviceConfig d = make_pi("pi4b_r14", models::DeviceId::kPi4BR14);
  d.frame_limit = 0;  // stream for the whole window
  s.devices = {d};
  s.network = net::NetemSchedule::loss_injection(27 * kSecond, 0.07,
                                                 Bandwidth::mbps(10.0));
  s.uplink_template.initial = s.network.at(0);
  s.downlink_template.initial = s.network.at(0);
  return s;
}

Scenario Scenario::paper_combined(Bandwidth bandwidth_unit) {
  Scenario s = paper_network(bandwidth_unit);
  s.name = "paper-combined";
  s.background_load = server::LoadSchedule::paper_table_vi();
  s.background.model = models::ModelId::kMobileNetV3Small;
  s.background.payload = models::frame_bytes({});
  return s;
}

Scenario Scenario::mixed_models(SimDuration duration) {
  Scenario s;
  s.name = "mixed-models";
  s.duration = duration;
  s.devices = paper_device_trio();
  s.devices[0].model = models::ModelId::kMobileNetV3Small;
  s.devices[1].model = models::ModelId::kMobileNetV3Large;
  s.devices[2].model = models::ModelId::kEfficientNetB0;
  for (auto& d : s.devices) d.frame_limit = 0;
  const net::LinkConditions clean{Bandwidth::mbps(10.0), 0.0, 2 * kMillisecond};
  s.network = net::NetemSchedule::constant(clean);
  s.uplink_template.initial = clean;
  s.downlink_template.initial = clean;
  return s;
}

Scenario Scenario::ideal(SimDuration duration) {
  Scenario s;
  s.name = "ideal";
  s.duration = duration;
  device::DeviceConfig d = make_pi("device", models::DeviceId::kPi4BR12);
  d.frame_limit = 0;
  s.devices = {d};
  const net::LinkConditions clean{Bandwidth::mbps(50.0), 0.0, kMillisecond};
  s.network = net::NetemSchedule::constant(clean);
  s.uplink_template.initial = clean;
  s.downlink_template.initial = clean;
  return s;
}

}  // namespace ff::core
