#include "ff/core/scenario_config.h"

#include <memory>
#include <stdexcept>

#include "ff/control/aimd.h"
#include "ff/control/baselines.h"
#include "ff/control/frame_feedback.h"
#include "ff/control/quality_adapt.h"
#include "ff/control/reservation_controller.h"
#include "ff/models/model_spec.h"
#include "ff/server/reservation.h"

namespace ff::core {
namespace {

[[nodiscard]] Scenario base_scenario(const std::string& name,
                                     const Config& config) {
  const auto unit =
      Bandwidth::mbps(config.get_double("bandwidth_unit_mbps", 1.0));
  if (name == "ideal") return Scenario::ideal();
  if (name == "paper_network") return Scenario::paper_network(unit);
  if (name == "paper_server_load") return Scenario::paper_server_load();
  if (name == "paper_tuning") return Scenario::paper_tuning();
  if (name == "paper_combined") return Scenario::paper_combined(unit);
  if (name == "mixed_models") return Scenario::mixed_models();
  throw std::invalid_argument("unknown scenario '" + name + "'; known: " +
                              known_scenario_names());
}

}  // namespace

std::string known_scenario_names() {
  return "ideal, paper_network, paper_server_load, paper_tuning, "
         "paper_combined, mixed_models";
}

std::string known_controller_names() {
  return "frame-feedback, local-only, always-offload, all-or-nothing, aimd, "
         "quality-adapt, fixed, reservation";
}

Scenario scenario_from_config(const Config& config) {
  Scenario s =
      base_scenario(config.get_string("scenario", "ideal"), config);

  s.seed = static_cast<std::uint64_t>(
      config.get_int("seed", static_cast<std::int64_t>(s.seed)));
  if (config.has("duration_s")) {
    s.duration = seconds_to_sim(config.get_double("duration_s", 0));
  }
  s.shared_uplink_medium = config.get_bool("shared_medium",
                                           s.shared_uplink_medium);
  s.uplink_medium_groups = static_cast<std::size_t>(std::max<std::int64_t>(
      config.get_int("medium_groups",
                     static_cast<std::int64_t>(s.uplink_medium_groups)),
      1));
  s.partitions = static_cast<std::size_t>(std::max<std::int64_t>(
      config.get_int("partitions", static_cast<std::int64_t>(s.partitions)),
      0));
  s.partition_threads = static_cast<unsigned>(std::max<std::int64_t>(
      config.get_int("partition_threads",
                     static_cast<std::int64_t>(s.partition_threads)),
      0));

  // Device overrides apply to every device; `devices` replicates the
  // first device to the requested count.
  if (config.has("devices")) {
    const auto n = static_cast<std::size_t>(
        std::max<std::int64_t>(config.get_int("devices", 1), 1));
    const device::DeviceConfig proto = s.devices.at(0);
    s.devices.clear();
    for (std::size_t i = 0; i < n; ++i) {
      device::DeviceConfig d = proto;
      d.name = proto.name + "-" + std::to_string(i);
      s.devices.push_back(std::move(d));
    }
  }
  for (auto& d : s.devices) {
    if (const auto p = config.get("device.profile")) {
      d.profile = models::parse_device(*p);
    }
    if (const auto m = config.get("device.model")) {
      d.model = models::parse_model(*m);
    }
    d.source_fps = config.get_double("device.fps", d.source_fps);
    if (config.has("device.deadline_ms")) {
      d.deadline = seconds_to_sim(config.get_double("device.deadline_ms",
                                                    250) / 1000.0);
    }
    d.frame_limit = static_cast<std::uint64_t>(
        config.get_int("device.frame_limit",
                       static_cast<std::int64_t>(d.frame_limit)));
    d.frame.width = static_cast<int>(config.get_int("device.width",
                                                    d.frame.width));
    d.frame.height = static_cast<int>(config.get_int("device.height",
                                                     d.frame.height));
    d.frame.jpeg_quality =
        static_cast<int>(config.get_int("device.quality",
                                        d.frame.jpeg_quality));
  }

  // Constant network override.
  if (config.has("net.bandwidth_mbps") || config.has("net.loss") ||
      config.has("net.delay_ms")) {
    net::LinkConditions c;
    c.bandwidth = Bandwidth::mbps(config.get_double("net.bandwidth_mbps",
                                                    10.0));
    c.loss_probability = config.get_double("net.loss", 0.0);
    c.propagation_delay = seconds_to_sim(config.get_double("net.delay_ms",
                                                           2.0) / 1000.0);
    s.network = net::NetemSchedule::constant(c);
    s.uplink_template.initial = c;
    s.downlink_template.initial = c;
  }

  if (config.has("load.rate")) {
    s.background_load =
        server::LoadSchedule::constant(Rate{config.get_double("load.rate",
                                                              0.0)});
    s.background.payload = models::frame_bytes({});
  }

  // Fleet topology: `fleet.servers` replicates the scenario's server
  // profile (and its background load) M ways. Unhinted devices place
  // round-robin; richer policies (ff::fleet) attach programmatically via
  // Scenario::fleet.placement.
  if (config.has("fleet.servers")) {
    const auto m = static_cast<std::size_t>(
        std::max<std::int64_t>(config.get_int("fleet.servers", 1), 1));
    s.fleet = FleetTopology::uniform(s.server, m);
    for (auto& spec : s.fleet.servers) {
      spec.background_load = s.background_load;
      spec.background = s.background;
    }
  }
  if (const auto policy = config.get("fleet.admission.policy")) {
    server::AdmissionConfig ac;
    if (*policy == "none") {
      ac.policy = server::AdmissionPolicy::kNone;
    } else if (*policy == "token-bucket") {
      ac.policy = server::AdmissionPolicy::kTokenBucket;
    } else if (*policy == "queue-depth") {
      ac.policy = server::AdmissionPolicy::kQueueDepth;
    } else {
      throw std::invalid_argument(
          "unknown fleet.admission.policy '" + *policy +
          "'; known: none, token-bucket, queue-depth");
    }
    ac.rate_fps = config.get_double("fleet.admission.rate", ac.rate_fps);
    ac.burst = config.get_double("fleet.admission.burst", ac.burst);
    ac.max_queue_depth = static_cast<std::size_t>(std::max<std::int64_t>(
        config.get_int("fleet.admission.queue_limit",
                       static_cast<std::int64_t>(ac.max_queue_depth)),
        1));
    s.server.admission = ac;
    for (auto& spec : s.fleet.servers) spec.config.admission = ac;
  }

  return s;
}

ControllerFactory controller_factory_from_config(const Config& config) {
  const std::string name = config.get_string("controller", "frame-feedback");

  if (name == "frame-feedback" || name == "quality-adapt") {
    control::FrameFeedbackConfig ff;
    ff.kp = config.get_double("controller.kp", ff.kp);
    ff.kd = config.get_double("controller.kd", ff.kd);
    ff.ki = config.get_double("controller.ki", ff.ki);
    if (name == "frame-feedback") {
      return make_controller_factory<control::FrameFeedbackController>(ff);
    }
    control::QualityAdaptConfig qa;
    qa.rate = ff;
    return make_controller_factory<control::QualityAdaptController>(qa);
  }
  if (name == "local-only") {
    return make_controller_factory<control::LocalOnlyController>();
  }
  if (name == "always-offload") {
    return make_controller_factory<control::AlwaysOffloadController>();
  }
  if (name == "all-or-nothing") {
    return make_controller_factory<control::IntervalOffloadController>();
  }
  if (name == "aimd") {
    return make_controller_factory<control::AimdController>();
  }
  if (name == "fixed") {
    const double rate = config.get_double("controller.rate", 15.0);
    return make_controller_factory<control::FixedRateController>(rate);
  }
  if (name == "reservation") {
    server::ReservationConfig rc;
    rc.capacity_fps = config.get_double(
        "controller.capacity_fps",
        models::gpu_throughput(
            models::get_model(models::ModelId::kMobileNetV3Small), 15));
    // The manager is shared by all of one experiment's controllers and
    // owned by the factory closure.
    auto manager = std::make_shared<server::ReservationManager>(rc);
    return [manager](std::size_t device_index) {
      return std::make_unique<control::ReservationController>(
          *manager, device_index + 1);
    };
  }
  throw std::invalid_argument("unknown controller '" + name + "'; known: " +
                              known_controller_names());
}

}  // namespace ff::core
