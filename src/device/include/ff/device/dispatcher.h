#pragma once

// Frame router: realizes a fractional offload rate Po out of the integer
// stream of frames using error diffusion (a Bresenham accumulator), so the
// achieved split converges to Po/Fs with the lowest possible variance.

#include <algorithm>

namespace ff::device {

enum class Route { kLocal, kOffload };

class Dispatcher {
 public:
  Dispatcher(double source_fps, double offload_rate = 0.0)
      : source_fps_(source_fps) {
    set_offload_rate(offload_rate);
  }

  /// Sets the offload-rate target Po (frames/s, clamped to [0, Fs]).
  void set_offload_rate(double rate) {
    offload_rate_ = std::clamp(rate, 0.0, source_fps_);
  }

  void set_source_fps(double fps) {
    source_fps_ = fps;
    set_offload_rate(offload_rate_);
  }

  [[nodiscard]] double offload_rate() const { return offload_rate_; }
  [[nodiscard]] double source_fps() const { return source_fps_; }

  /// Routes the next frame. Error diffusion: carry the fractional offload
  /// quota between frames so e.g. Po = Fs/3 yields exactly every 3rd frame.
  [[nodiscard]] Route route_next() {
    if (source_fps_ <= 0.0) return Route::kLocal;
    accumulator_ += offload_rate_ / source_fps_;
    if (accumulator_ >= 1.0 - 1e-12) {
      accumulator_ -= 1.0;
      return Route::kOffload;
    }
    return Route::kLocal;
  }

  void reset() { accumulator_ = 0.0; }

 private:
  double source_fps_;
  double offload_rate_{0.0};
  double accumulator_{0.0};
};

}  // namespace ff::device
