#pragma once

// The composed edge device: camera -> dispatcher -> {local engine, offload
// client}, plus telemetry. A controller runtime (core::Experiment) reads
// controller_input() each period and writes set_offload_rate().

#include <cstdint>
#include <optional>
#include <string>

#include "ff/control/controller.h"
#include "ff/device/dispatcher.h"
#include "ff/device/frame_trace.h"
#include "ff/device/frame_source.h"
#include "ff/device/local_engine.h"
#include "ff/device/offload_client.h"
#include "ff/device/offload_transport.h"
#include "ff/device/telemetry.h"
#include "ff/models/device_profile.h"
#include "ff/models/frame.h"
#include "ff/models/power.h"
#include "ff/sim/simulator.h"

namespace ff::device {

struct DeviceConfig {
  std::string name{"device"};
  models::DeviceId profile{models::DeviceId::kPi4BR12};
  models::ModelId model{models::ModelId::kMobileNetV3Small};
  models::FrameSpec frame{};
  double source_fps{30.0};
  std::uint64_t frame_limit{0};            ///< 0 = unlimited; paper uses 4000
  SimDuration deadline{250 * kMillisecond};
  std::size_t local_queue_capacity{2};
  SimDuration telemetry_window{2 * kSecond};
  double local_jitter_sigma{0.08};
  double capture_jitter_fraction{0.0};
  /// Nominal Wi-Fi PHY rate used to estimate radio airtime for the power
  /// model (the radio transmits at PHY rate even when the shaped goodput
  /// is lower).
  Bandwidth radio_phy_rate{Bandwidth::mbps(20.0)};
};

class EdgeDevice {
 public:
  /// `sim` and `transport` must outlive the device.
  EdgeDevice(sim::Simulator& sim, OffloadTransport& transport,
             DeviceConfig config);

  EdgeDevice(const EdgeDevice&) = delete;
  EdgeDevice& operator=(const EdgeDevice&) = delete;

  /// Begins capturing frames.
  void start();
  void stop();

  /// Sets the offload-rate target Po (frames/s), as decided by a controller.
  void set_offload_rate(double rate);
  [[nodiscard]] double offload_rate() const {
    return dispatcher_.offload_rate();
  }

  /// Changes the JPEG quality used for subsequently offloaded frames
  /// (quality-adapting controllers); recomputes the per-frame payload.
  void set_frame_quality(int quality);
  [[nodiscard]] const models::FrameSpec& frame_spec() const {
    return config_.frame;
  }

  /// Effective top-1 accuracy of results at the current frame spec.
  [[nodiscard]] double effective_accuracy() const;

  /// Assembles the controller's telemetry snapshot for the current time.
  [[nodiscard]] control::ControllerInput controller_input();

  /// Issues a heartbeat probe; the outcome becomes available to
  /// take_probe_result() once resolved.
  void send_probe();

  /// Consumes the most recent resolved probe outcome, if any.
  [[nodiscard]] std::optional<bool> take_probe_result();

  /// Device CPU utilization model (paper §II-A: ~50% local, ~22% offload).
  [[nodiscard]] double cpu_utilization();

  /// Instantaneous electrical draw in watts, from the power model fed by
  /// current CPU utilization and estimated radio airtime.
  [[nodiscard]] double power_draw_w();

  [[nodiscard]] Telemetry& telemetry() { return telemetry_; }
  [[nodiscard]] const DeviceConfig& config() const { return config_; }
  [[nodiscard]] const OffloadClient& offload_client() const { return offload_; }
  [[nodiscard]] const LocalEngine& local_engine() const { return local_; }
  [[nodiscard]] std::uint64_t frames_captured() const {
    return source_.frames_emitted();
  }
  [[nodiscard]] bool finished() const {
    return config_.frame_limit > 0 &&
           source_.frames_emitted() >= config_.frame_limit;
  }

  /// Frames captured but not yet resolved: sitting in the JPEG-encode
  /// stage, awaiting an offload outcome, or queued/executing locally.
  /// Drained into TelemetryTotals::in_flight_at_end at the end of a run so
  /// the frame-conservation identity holds exactly at any horizon.
  [[nodiscard]] std::uint64_t in_flight_frames() const {
    return encoding_frames_ + offload_.pending_frames() +
           local_.queue_depth();
  }

  /// Per-frame payload size implied by the frame spec.
  [[nodiscard]] Bytes frame_payload() const { return frame_payload_; }

  /// Attaches a trace sink observing the device's per-frame lifecycle
  /// events (nullptr detaches). Not owned; must outlive tracing.
  void attach_trace_sink(obs::TraceSink* sink);

  /// Back-compat alias: a FrameTracer is a TraceSink.
  void attach_tracer(FrameTracer* tracer) { attach_trace_sink(tracer); }

 private:
  void on_frame(std::uint64_t index, SimTime t);

  void trace(SimTime t, std::string_view type, std::uint64_t frame_id) {
    if (sink_ == nullptr) return;
    sink_->emit(obs::TraceEvent(t, type, config_.name).with_id(frame_id));
  }

  sim::Simulator& sim_;
  DeviceConfig config_;
  Bytes frame_payload_;
  Telemetry telemetry_;
  Dispatcher dispatcher_;
  LocalEngine local_;
  OffloadClient offload_;
  FrameSource source_;
  /// Frames routed offload whose JPEG encode has not finished yet.
  std::uint64_t encoding_frames_{0};
  std::uint64_t next_probe_id_;
  std::optional<bool> probe_result_;
  obs::TraceSink* sink_{nullptr};
};

}  // namespace ff::device
