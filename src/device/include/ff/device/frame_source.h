#pragma once

// Video capture stand-in: emits frame ids at the source frame rate Fs.
// The paper sources ImageNet frames at 30 fps; content never crosses this
// interface, only timing and (downstream) encoded size.

#include <cstdint>
#include <functional>

#include "ff/sim/simulator.h"
#include "ff/util/rng.h"

namespace ff::device {

struct FrameSourceConfig {
  Rate fps{Rate{30.0}};
  /// Stop after this many frames (0 = unlimited). The paper's experiments
  /// stream 4000 frames.
  std::uint64_t frame_limit{0};
  /// Capture jitter as a fraction of the frame period (0 = metronomic).
  double jitter_fraction{0.0};
};

class FrameSource {
 public:
  /// `on_frame(frame_index, capture_time)` fires once per frame.
  using FrameFn = std::function<void(std::uint64_t, SimTime)>;

  FrameSource(sim::Simulator& sim, FrameSourceConfig config, FrameFn on_frame,
              Rng rng);

  FrameSource(const FrameSource&) = delete;
  FrameSource& operator=(const FrameSource&) = delete;

  /// Starts emitting (first frame after one period); idempotent.
  void start();
  void stop();

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] std::uint64_t frames_emitted() const { return emitted_; }
  [[nodiscard]] const FrameSourceConfig& config() const { return config_; }

 private:
  void arm();
  void emit();

  sim::Simulator& sim_;
  FrameSourceConfig config_;
  FrameFn on_frame_;
  Rng rng_;
  bool running_{false};
  std::uint64_t emitted_{0};
  sim::EventId pending_{};
};

}  // namespace ff::device
