#pragma once

// Per-frame lifecycle tracing: every frame's path through the device
// (captured -> routed -> completed/dropped/timed out) in a bounded ring,
// exportable as CSV. Debugging aid for controller/transport interactions;
// zero cost when no tracer is attached.

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "ff/util/units.h"

namespace ff::device {

enum class FrameEvent : std::uint8_t {
  kCaptured,
  kRoutedLocal,
  kRoutedOffload,
  kLocalCompleted,
  kLocalDropped,
  kOffloadSent,
  kOffloadSuccess,
  kTimeoutNetwork,
  kTimeoutLoad,
};

[[nodiscard]] std::string_view frame_event_name(FrameEvent event);

struct FrameTraceRecord {
  SimTime time{0};
  std::uint64_t frame_id{0};
  FrameEvent event{FrameEvent::kCaptured};
};

class FrameTracer {
 public:
  /// Retains the most recent `capacity` records.
  explicit FrameTracer(std::size_t capacity = 1 << 16);

  void record(SimTime time, std::uint64_t frame_id, FrameEvent event);

  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] std::uint64_t total_recorded() const { return total_; }
  [[nodiscard]] const std::deque<FrameTraceRecord>& records() const {
    return records_;
  }

  /// All retained records of one frame, in order.
  [[nodiscard]] std::vector<FrameTraceRecord> lifecycle(
      std::uint64_t frame_id) const;

  /// Retained records matching one event kind.
  [[nodiscard]] std::size_t count(FrameEvent event) const;

  /// Writes retained records as CSV: time_s,frame,event.
  void write_csv(const std::string& path) const;

  void clear();

 private:
  std::size_t capacity_;
  std::deque<FrameTraceRecord> records_;
  std::uint64_t total_{0};
};

}  // namespace ff::device
