#pragma once

// Per-frame lifecycle tracing: every frame's path through the device
// (captured -> routed -> completed/dropped/timed out) in a bounded ring,
// exportable as CSV. Debugging aid for controller/transport interactions;
// zero cost when no tracer is attached.
//
// FrameTracer is an obs::TraceSink: attach it anywhere a sink goes and it
// retains the frame-lifecycle events (frame.*), ignoring the rest.

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ff/obs/trace.h"
#include "ff/util/units.h"

namespace ff::device {

enum class FrameEvent : std::uint8_t {
  kCaptured,
  kRoutedLocal,
  kRoutedOffload,
  kLocalCompleted,
  kLocalDropped,
  kOffloadSent,
  kOffloadSuccess,
  kTimeoutNetwork,
  kTimeoutLoad,
};

[[nodiscard]] std::string_view frame_event_name(FrameEvent event);

/// Wire event type (obs::ev::kFrame*) for a lifecycle step.
[[nodiscard]] std::string_view frame_event_type(FrameEvent event);

/// Inverse mapping; nullopt for non-frame event types.
[[nodiscard]] std::optional<FrameEvent> frame_event_from_type(
    std::string_view type);

struct FrameTraceRecord {
  SimTime time{0};
  std::uint64_t frame_id{0};
  FrameEvent event{FrameEvent::kCaptured};
};

class FrameTracer final : public obs::TraceSink {
 public:
  /// Retains the most recent `capacity` records.
  explicit FrameTracer(std::size_t capacity = 1 << 16);

  void record(SimTime time, std::uint64_t frame_id, FrameEvent event);

  /// TraceSink: retains frame.* lifecycle events, drops everything else.
  void emit(const obs::TraceEvent& event) override;

  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] std::uint64_t total_recorded() const { return total_; }
  [[nodiscard]] const std::deque<FrameTraceRecord>& records() const {
    return records_;
  }

  /// All retained records of one frame, in order.
  [[nodiscard]] std::vector<FrameTraceRecord> lifecycle(
      std::uint64_t frame_id) const;

  /// Retained records matching one event kind.
  [[nodiscard]] std::size_t count(FrameEvent event) const;

  /// Writes retained records as CSV: time_s,frame,event.
  void write_csv(const std::string& path) const;

  void clear();

 private:
  std::size_t capacity_;
  std::deque<FrameTraceRecord> records_;
  std::uint64_t total_{0};
};

}  // namespace ff::device
