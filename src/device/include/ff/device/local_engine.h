#pragma once

// On-device inference service: a single-worker queue whose service time
// comes from the device/model latency model. Its sustainable rate is the
// paper's Pl (Table II). The queue is tiny -- a real-time pipeline skips
// stale frames rather than queueing them.

#include <cstdint>
#include <deque>
#include <functional>

#include "ff/models/latency_model.h"
#include "ff/sim/simulator.h"

namespace ff::device {

struct LocalEngineConfig {
  /// Frames admitted at once (including the one executing).
  std::size_t queue_capacity{2};
};

class LocalEngine {
 public:
  /// `on_complete(frame_id, capture_time)` fires when inference finishes.
  using CompleteFn = std::function<void(std::uint64_t, SimTime)>;

  LocalEngine(sim::Simulator& sim, models::LocalLatencyModel latency,
              LocalEngineConfig config, CompleteFn on_complete);

  LocalEngine(const LocalEngine&) = delete;
  LocalEngine& operator=(const LocalEngine&) = delete;

  /// Admits a frame; false = queue full (frame skipped).
  [[nodiscard]] bool submit(std::uint64_t frame_id, SimTime capture_time);

  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  [[nodiscard]] std::uint64_t rejected() const { return rejected_; }
  [[nodiscard]] std::size_t queue_depth() const {
    return queue_.size() + (busy_ ? 1 : 0);
  }
  [[nodiscard]] bool busy() const { return busy_; }

  /// Cumulative busy time (inference executing), for CPU-utilization
  /// accounting.
  [[nodiscard]] SimDuration busy_time() const { return busy_time_; }

  /// Busy fraction since t=0.
  [[nodiscard]] double busy_fraction() const;

  /// Steady-state service rate (Pl), frames/second.
  [[nodiscard]] double service_rate() const { return latency_.rate(); }

 private:
  struct Job {
    std::uint64_t frame_id;
    SimTime capture_time;
  };

  void start_next();

  sim::Simulator& sim_;
  models::LocalLatencyModel latency_;
  LocalEngineConfig config_;
  CompleteFn on_complete_;
  std::deque<Job> queue_;
  bool busy_{false};
  std::uint64_t completed_{0};
  std::uint64_t rejected_{0};
  SimDuration busy_time_{0};
};

}  // namespace ff::device
