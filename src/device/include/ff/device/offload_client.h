#pragma once

// Pipelined offloading with per-frame deadline supervision. Every offloaded
// frame resolves exactly one way:
//   - response (not rejected) before the deadline  -> offload success
//   - response flagged rejected before the deadline-> load timeout  (Tl)
//   - transport failure, or deadline expiry        -> network timeout (Tn)
// Late responses after the deadline are ignored (already counted as Tn).

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "ff/device/offload_transport.h"
#include "ff/obs/trace.h"
#include "ff/device/telemetry.h"
#include "ff/sim/simulator.h"
#include "ff/util/stats.h"

namespace ff::device {

struct OffloadClientConfig {
  /// Maximum tolerable end-to-end offload latency L (paper: 250 ms),
  /// measured from frame capture.
  SimDuration deadline{250 * kMillisecond};
  /// Source name stamped on trace events (usually the device name).
  std::string name{"offload"};
};

struct OffloadClientStats {
  std::uint64_t attempts{0};
  std::uint64_t successes{0};
  std::uint64_t timeouts_network{0};
  std::uint64_t timeouts_load{0};
  /// Subset of timeouts_load caused by admission control (typed
  /// OffloadReply::kRejectedAdmission responses).
  std::uint64_t admission_rejections{0};
  std::uint64_t late_responses{0};  ///< arrived after being counted as Tn
  std::uint64_t probes_sent{0};
  std::uint64_t probes_ok{0};
  std::uint64_t probes_failed{0};
  /// End-to-end latency (us, capture -> response) of successful offloads.
  StreamingStats latency_us{};
  P2Quantile latency_p50{0.5};
  P2Quantile latency_p95{0.95};
  P2Quantile latency_p99{0.99};
};

class OffloadClient {
 public:
  using ProbeFn = std::function<void(bool success)>;

  /// `transport` and `telemetry` must outlive the client. The client
  /// installs itself as the transport's response/failure handler.
  OffloadClient(sim::Simulator& sim, OffloadTransport& transport,
                Telemetry& telemetry, OffloadClientConfig config);

  OffloadClient(const OffloadClient&) = delete;
  OffloadClient& operator=(const OffloadClient&) = delete;

  /// Ships a frame captured at `capture_time`; the deadline clock started
  /// at capture.
  void offload_frame(std::uint64_t frame_id, SimTime capture_time,
                     Bytes payload);

  /// Sends a heartbeat probe (same path as a frame, same deadline);
  /// `on_done(success)` fires exactly once. Probe outcomes do not touch
  /// the P/T telemetry.
  void send_probe(std::uint64_t probe_id, Bytes payload, ProbeFn on_done);

  [[nodiscard]] const OffloadClientStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t in_flight() const {
    return pending_.size() + probes_.size();
  }
  /// Offloaded frames awaiting resolution (excludes probes, which never
  /// enter the frame-conservation identity).
  [[nodiscard]] std::size_t pending_frames() const { return pending_.size(); }
  [[nodiscard]] const OffloadClientConfig& config() const { return config_; }

  /// Attaches a trace sink for offload lifecycle events (nullptr
  /// detaches). Not owned.
  void attach_trace_sink(obs::TraceSink* sink) { sink_ = sink; }

 private:
  struct PendingFrame {
    SimTime capture_time;
    sim::EventId deadline_event;
  };

  struct PendingProbe {
    ProbeFn on_done;
    sim::EventId deadline_event;
  };

  void handle_response(std::uint64_t id, OffloadReply reply);
  void handle_failure(std::uint64_t id);
  void handle_deadline(std::uint64_t id);

  void trace(SimTime t, std::string_view type, std::uint64_t frame_id);

  sim::Simulator& sim_;
  OffloadTransport& transport_;
  Telemetry& telemetry_;
  OffloadClientConfig config_;
  std::unordered_map<std::uint64_t, PendingFrame> pending_;
  std::unordered_map<std::uint64_t, PendingProbe> probes_;
  OffloadClientStats stats_;
  obs::TraceSink* sink_{nullptr};
};

}  // namespace ff::device
