#pragma once

// Boundary between the edge device and the outside world. The production
// implementation (core::NetworkedOffloadTransport) routes frames through
// the network emulator to the edge server; tests substitute fakes.

#include <cstdint>
#include <functional>

#include "ff/util/units.h"

namespace ff::device {

/// What the server said about one offloaded frame. Both rejection kinds
/// count as load timeouts (Tl) in the conservation identity; the
/// distinction feeds fleet placement (a device repeatedly turned away at
/// admission is a candidate for re-homing to another server).
enum class OffloadReply : std::uint8_t {
  kCompleted,          ///< inference ran; result delivered
  kRejectedLoad,       ///< shed at batch formation (queue overflow)
  kRejectedAdmission,  ///< turned away by the admission controller
};

[[nodiscard]] constexpr bool is_rejection(OffloadReply reply) {
  return reply != OffloadReply::kCompleted;
}

class OffloadTransport {
 public:
  /// Response for frame `id` with the server's typed verdict.
  using ResponseFn = std::function<void(std::uint64_t id, OffloadReply reply)>;
  /// The transport gave up delivering frame `id` (retry budget exhausted).
  using FailureFn = std::function<void(std::uint64_t id)>;

  virtual ~OffloadTransport() = default;

  /// Ships one encoded frame toward the server. Exactly one of the
  /// response/failure callbacks eventually fires unless cancel() is called
  /// first.
  virtual void offload(std::uint64_t id, Bytes payload) = 0;

  /// Stops work on a frame (its deadline passed). Responses for cancelled
  /// ids may still arrive and must be tolerated by the receiver.
  virtual void cancel(std::uint64_t id) = 0;

  virtual void set_on_response(ResponseFn fn) = 0;
  virtual void set_on_failure(FailureFn fn) = 0;
};

}  // namespace ff::device
