#pragma once

// Device-side measurement: everything the controller sees (Table I's P,
// Pl, Po, T, Tn, Tl) computed as rates over a trailing window -- the paper
// feeds the controller "the average of T from the last few seconds".

#include <cstdint>

#include "ff/util/sliding_window.h"
#include "ff/util/units.h"

namespace ff::device {

struct TelemetryTotals {
  std::uint64_t frames_captured{0};
  std::uint64_t local_completions{0};
  std::uint64_t local_drops{0};
  std::uint64_t offload_attempts{0};
  std::uint64_t offload_successes{0};
  std::uint64_t timeouts_network{0};  ///< Tn events
  std::uint64_t timeouts_load{0};     ///< Tl events
  /// Subset of timeouts_load rejected by server admission control (typed
  /// responses, ff/server/admission.h). Informational: already counted in
  /// timeouts_load, so the conservation identity is unchanged.
  std::uint64_t admission_rejections{0};
  /// Frames still pending (encoding, offload in flight, local queue) when
  /// the run's horizon cut the simulation off; without this term the frame
  /// conservation identity has a hole exactly as wide as the pipeline.
  std::uint64_t in_flight_at_end{0};

  [[nodiscard]] std::uint64_t timeouts() const {
    return timeouts_network + timeouts_load;
  }
  [[nodiscard]] std::uint64_t successes() const {
    return local_completions + offload_successes;
  }
  /// Every resolved or still-pending frame: the right-hand side of the
  /// conservation identity.
  [[nodiscard]] std::uint64_t accounted() const {
    return local_completions + local_drops + offload_successes +
           timeouts_network + timeouts_load + in_flight_at_end;
  }
  /// Frame conservation: every captured frame is accounted for, exactly.
  [[nodiscard]] bool conserved() const {
    return frames_captured == accounted();
  }

  /// Rolls another device's totals into this one (per-tenant SLO
  /// accounting sums member devices; conservation still holds on the sum).
  TelemetryTotals& operator+=(const TelemetryTotals& other) {
    frames_captured += other.frames_captured;
    local_completions += other.local_completions;
    local_drops += other.local_drops;
    offload_attempts += other.offload_attempts;
    offload_successes += other.offload_successes;
    timeouts_network += other.timeouts_network;
    timeouts_load += other.timeouts_load;
    admission_rejections += other.admission_rejections;
    in_flight_at_end += other.in_flight_at_end;
    return *this;
  }
};

class Telemetry {
 public:
  explicit Telemetry(SimDuration window = 2 * kSecond);

  void record_frame_captured(SimTime t);
  void record_local_completion(SimTime t);
  void record_local_drop(SimTime t);
  void record_offload_attempt(SimTime t);
  void record_offload_success(SimTime t, SimDuration latency);
  void record_timeout_network(SimTime t);
  void record_timeout_load(SimTime t);
  /// An admission-control rejection: counts as a load timeout (Tl) plus
  /// the informational admission counters.
  void record_admission_rejection(SimTime t);
  /// Records the frames still in the pipeline when the run ended (set once
  /// by the experiment runner after the horizon; overwrites, not adds).
  void record_in_flight_at_end(std::uint64_t frames) {
    totals_.in_flight_at_end = frames;
  }

  /// Pl: local completions per second over the window.
  [[nodiscard]] double local_rate(SimTime now);
  /// Successful offloads per second over the window.
  [[nodiscard]] double offload_success_rate(SimTime now);
  /// Offload attempts per second over the window (achieved Po).
  [[nodiscard]] double offload_attempt_rate(SimTime now);
  /// T: timeouts per second over the window (Tn + Tl).
  [[nodiscard]] double timeout_rate(SimTime now);
  [[nodiscard]] double network_timeout_rate(SimTime now);
  [[nodiscard]] double load_timeout_rate(SimTime now);
  /// Admission rejections per second over the window (subset of the load
  /// timeout rate); feeds placement re-homing decisions.
  [[nodiscard]] double admission_reject_rate(SimTime now);
  /// P: total successful inference rate (local + offload successes).
  [[nodiscard]] double throughput(SimTime now);
  /// Capture rate over the window (should track Fs).
  [[nodiscard]] double capture_rate(SimTime now);

  /// Mean end-to-end latency (us) of successful offloads in the window.
  [[nodiscard]] double mean_offload_latency_us(SimTime now);

  [[nodiscard]] const TelemetryTotals& totals() const { return totals_; }
  [[nodiscard]] SimDuration window() const { return window_; }

 private:
  SimDuration window_;
  TelemetryTotals totals_;
  SlidingWindowCounter captured_;
  SlidingWindowCounter local_done_;
  SlidingWindowCounter offload_attempted_;
  SlidingWindowCounter offload_done_;
  SlidingWindowCounter timeouts_net_;
  SlidingWindowCounter timeouts_load_;
  SlidingWindowCounter admission_rej_;
  SlidingWindowMean offload_latency_;
};

}  // namespace ff::device
