#include "ff/device/edge_device.h"

#include <algorithm>
#include <utility>

namespace ff::device {
namespace {

/// Probe ids live far above any frame index so the transport can share one
/// id space.
constexpr std::uint64_t kProbeIdBase = 1ULL << 48;

}  // namespace

EdgeDevice::EdgeDevice(sim::Simulator& sim, OffloadTransport& transport,
                       DeviceConfig config)
    : sim_(sim),
      config_(std::move(config)),
      frame_payload_(models::frame_bytes(config_.frame)),
      telemetry_(config_.telemetry_window),
      dispatcher_(config_.source_fps, 0.0),
      local_(sim,
             models::LocalLatencyModel(models::get_device(config_.profile),
                                       config_.model,
                                       sim.make_rng(config_.name + "/local"),
                                       config_.local_jitter_sigma),
             LocalEngineConfig{config_.local_queue_capacity},
             [this](std::uint64_t frame_id, SimTime) {
               telemetry_.record_local_completion(sim_.now());
               trace(sim_.now(), obs::ev::kFrameLocalCompleted, frame_id);
             }),
      offload_(sim, transport, telemetry_,
               OffloadClientConfig{config_.deadline, config_.name}),
      source_(sim,
              FrameSourceConfig{Rate{config_.source_fps}, config_.frame_limit,
                                config_.capture_jitter_fraction},
              [this](std::uint64_t index, SimTime t) { on_frame(index, t); },
              sim.make_rng(config_.name + "/camera")),
      next_probe_id_(kProbeIdBase) {}

void EdgeDevice::start() { source_.start(); }

void EdgeDevice::stop() { source_.stop(); }

void EdgeDevice::set_offload_rate(double rate) {
  dispatcher_.set_offload_rate(rate);
}

void EdgeDevice::set_frame_quality(int quality) {
  config_.frame.jpeg_quality = std::clamp(quality, 1, 100);
  frame_payload_ = models::frame_bytes(config_.frame);
}

double EdgeDevice::effective_accuracy() const {
  return models::effective_accuracy(models::get_model(config_.model),
                                    config_.frame);
}

void EdgeDevice::attach_trace_sink(obs::TraceSink* sink) {
  sink_ = sink;
  offload_.attach_trace_sink(sink);
}

void EdgeDevice::on_frame(std::uint64_t index, SimTime t) {
  telemetry_.record_frame_captured(t);
  trace(t, obs::ev::kFrameCaptured, index);
  const Route route = dispatcher_.route_next();
  if (route == Route::kOffload) {
    trace(t, obs::ev::kFrameRoutedOffload, index);
    // JPEG encoding happens on-device before transmission; the deadline
    // clock is already running.
    const SimDuration encode = models::encode_time(config_.frame);
    ++encoding_frames_;
    sim_.schedule_in(encode, [this, index, t] {
      --encoding_frames_;
      offload_.offload_frame(index, t, frame_payload_);
    });
  } else {
    trace(t, obs::ev::kFrameRoutedLocal, index);
    if (!local_.submit(index, t)) {
      telemetry_.record_local_drop(t);
      trace(t, obs::ev::kFrameLocalDropped, index);
    }
  }
}

control::ControllerInput EdgeDevice::controller_input() {
  const SimTime now = sim_.now();
  control::ControllerInput in;
  in.now = now;
  in.source_fps = config_.source_fps;
  in.offload_rate = dispatcher_.offload_rate();
  in.timeout_rate = telemetry_.timeout_rate(now);
  in.network_timeout_rate = telemetry_.network_timeout_rate(now);
  in.load_timeout_rate = telemetry_.load_timeout_rate(now);
  in.admission_reject_rate = telemetry_.admission_reject_rate(now);
  in.offload_success_rate = telemetry_.offload_success_rate(now);
  in.local_rate = telemetry_.local_rate(now);
  in.frame_quality = config_.frame.jpeg_quality;
  in.probe_success = probe_result_;
  return in;
}

void EdgeDevice::send_probe() {
  const std::uint64_t id = next_probe_id_++;
  offload_.send_probe(id, frame_payload_, [this](bool ok) {
    probe_result_ = ok;
  });
}

std::optional<bool> EdgeDevice::take_probe_result() {
  const std::optional<bool> r = probe_result_;
  probe_result_.reset();
  return r;
}

double EdgeDevice::power_draw_w() {
  const SimTime now = sim_.now();
  const models::PowerProfile profile =
      models::default_power_profile(config_.profile);
  // Airtime estimate: frames/s * on-air time per frame at the PHY rate.
  const double tx_per_frame_s = sim_to_seconds(
      config_.radio_phy_rate.serialization_time(frame_payload_));
  const double tx_fraction =
      telemetry_.offload_attempt_rate(now) * tx_per_frame_s;
  const double rx_per_result_s = sim_to_seconds(
      config_.radio_phy_rate.serialization_time(Bytes{models::kResultBytes}));
  const double rx_fraction =
      telemetry_.offload_success_rate(now) * rx_per_result_s;
  return models::power_draw_w(profile, cpu_utilization(), tx_fraction,
                              rx_fraction);
}

double EdgeDevice::cpu_utilization() {
  const SimTime now = sim_.now();
  const double local_busy =
      telemetry_.local_rate(now) / std::max(local_.service_rate(), 1e-9);
  const double offload_fraction =
      telemetry_.offload_attempt_rate(now) / std::max(config_.source_fps, 1e-9);
  return models::device_cpu_utilization(local_busy, offload_fraction);
}

}  // namespace ff::device
