#include "ff/device/frame_source.h"

#include <algorithm>
#include <utility>

namespace ff::device {

FrameSource::FrameSource(sim::Simulator& sim, FrameSourceConfig config,
                         FrameFn on_frame, Rng rng)
    : sim_(sim), config_(config), on_frame_(std::move(on_frame)), rng_(rng) {}

void FrameSource::start() {
  if (running_) return;
  running_ = true;
  arm();
}

void FrameSource::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(pending_);
  pending_ = {};
}

void FrameSource::arm() {
  SimDuration gap = config_.fps.period();
  if (config_.jitter_fraction > 0.0) {
    const double j = config_.jitter_fraction * static_cast<double>(gap);
    const double jitter = rng_.uniform(-j, j);
    gap = std::max<SimDuration>(gap + static_cast<SimDuration>(jitter), 1);
  }
  pending_ = sim_.schedule_in(gap, [this] { emit(); });
}

void FrameSource::emit() {
  if (!running_) return;
  const std::uint64_t index = emitted_++;
  if (config_.frame_limit > 0 && emitted_ >= config_.frame_limit) {
    running_ = false;
  } else {
    arm();
  }
  on_frame_(index, sim_.now());
}

}  // namespace ff::device
