#include "ff/device/frame_trace.h"

#include "ff/util/csv.h"

namespace ff::device {

std::string_view frame_event_name(FrameEvent event) {
  switch (event) {
    case FrameEvent::kCaptured: return "captured";
    case FrameEvent::kRoutedLocal: return "routed_local";
    case FrameEvent::kRoutedOffload: return "routed_offload";
    case FrameEvent::kLocalCompleted: return "local_completed";
    case FrameEvent::kLocalDropped: return "local_dropped";
    case FrameEvent::kOffloadSent: return "offload_sent";
    case FrameEvent::kOffloadSuccess: return "offload_success";
    case FrameEvent::kTimeoutNetwork: return "timeout_network";
    case FrameEvent::kTimeoutLoad: return "timeout_load";
  }
  return "?";
}

std::string_view frame_event_type(FrameEvent event) {
  switch (event) {
    case FrameEvent::kCaptured: return obs::ev::kFrameCaptured;
    case FrameEvent::kRoutedLocal: return obs::ev::kFrameRoutedLocal;
    case FrameEvent::kRoutedOffload: return obs::ev::kFrameRoutedOffload;
    case FrameEvent::kLocalCompleted: return obs::ev::kFrameLocalCompleted;
    case FrameEvent::kLocalDropped: return obs::ev::kFrameLocalDropped;
    case FrameEvent::kOffloadSent: return obs::ev::kFrameOffloadSent;
    case FrameEvent::kOffloadSuccess: return obs::ev::kFrameOffloadSuccess;
    case FrameEvent::kTimeoutNetwork: return obs::ev::kFrameTimeoutNetwork;
    case FrameEvent::kTimeoutLoad: return obs::ev::kFrameTimeoutLoad;
  }
  return "?";
}

std::optional<FrameEvent> frame_event_from_type(std::string_view type) {
  if (type == obs::ev::kFrameCaptured) return FrameEvent::kCaptured;
  if (type == obs::ev::kFrameRoutedLocal) return FrameEvent::kRoutedLocal;
  if (type == obs::ev::kFrameRoutedOffload) return FrameEvent::kRoutedOffload;
  if (type == obs::ev::kFrameLocalCompleted) return FrameEvent::kLocalCompleted;
  if (type == obs::ev::kFrameLocalDropped) return FrameEvent::kLocalDropped;
  if (type == obs::ev::kFrameOffloadSent) return FrameEvent::kOffloadSent;
  if (type == obs::ev::kFrameOffloadSuccess) return FrameEvent::kOffloadSuccess;
  if (type == obs::ev::kFrameTimeoutNetwork) return FrameEvent::kTimeoutNetwork;
  if (type == obs::ev::kFrameTimeoutLoad) return FrameEvent::kTimeoutLoad;
  return std::nullopt;
}

FrameTracer::FrameTracer(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void FrameTracer::record(SimTime time, std::uint64_t frame_id,
                         FrameEvent event) {
  ++total_;
  records_.push_back({time, frame_id, event});
  while (records_.size() > capacity_) records_.pop_front();
}

void FrameTracer::emit(const obs::TraceEvent& event) {
  const auto fe = frame_event_from_type(event.type);
  if (!fe) return;
  record(event.time, event.id, *fe);
}

std::vector<FrameTraceRecord> FrameTracer::lifecycle(
    std::uint64_t frame_id) const {
  std::vector<FrameTraceRecord> out;
  for (const auto& r : records_) {
    if (r.frame_id == frame_id) out.push_back(r);
  }
  return out;
}

std::size_t FrameTracer::count(FrameEvent event) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.event == event) ++n;
  }
  return n;
}

void FrameTracer::write_csv(const std::string& path) const {
  CsvWriter w(path);
  w.header({"time_s", "frame", "event"});
  for (const auto& r : records_) {
    w.field(sim_to_seconds(r.time))
        .field(r.frame_id)
        .field(frame_event_name(r.event));
    w.end_row();
  }
}

void FrameTracer::clear() {
  records_.clear();
  total_ = 0;
}

}  // namespace ff::device
