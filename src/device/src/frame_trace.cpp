#include "ff/device/frame_trace.h"

#include "ff/util/csv.h"

namespace ff::device {

std::string_view frame_event_name(FrameEvent event) {
  switch (event) {
    case FrameEvent::kCaptured: return "captured";
    case FrameEvent::kRoutedLocal: return "routed_local";
    case FrameEvent::kRoutedOffload: return "routed_offload";
    case FrameEvent::kLocalCompleted: return "local_completed";
    case FrameEvent::kLocalDropped: return "local_dropped";
    case FrameEvent::kOffloadSent: return "offload_sent";
    case FrameEvent::kOffloadSuccess: return "offload_success";
    case FrameEvent::kTimeoutNetwork: return "timeout_network";
    case FrameEvent::kTimeoutLoad: return "timeout_load";
  }
  return "?";
}

FrameTracer::FrameTracer(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void FrameTracer::record(SimTime time, std::uint64_t frame_id,
                         FrameEvent event) {
  ++total_;
  records_.push_back({time, frame_id, event});
  while (records_.size() > capacity_) records_.pop_front();
}

std::vector<FrameTraceRecord> FrameTracer::lifecycle(
    std::uint64_t frame_id) const {
  std::vector<FrameTraceRecord> out;
  for (const auto& r : records_) {
    if (r.frame_id == frame_id) out.push_back(r);
  }
  return out;
}

std::size_t FrameTracer::count(FrameEvent event) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.event == event) ++n;
  }
  return n;
}

void FrameTracer::write_csv(const std::string& path) const {
  CsvWriter w(path);
  w.header({"time_s", "frame", "event"});
  for (const auto& r : records_) {
    w.field(sim_to_seconds(r.time))
        .field(r.frame_id)
        .field(frame_event_name(r.event));
    w.end_row();
  }
}

void FrameTracer::clear() {
  records_.clear();
  total_ = 0;
}

}  // namespace ff::device
