#include "ff/device/local_engine.h"

#include <utility>

namespace ff::device {

LocalEngine::LocalEngine(sim::Simulator& sim, models::LocalLatencyModel latency,
                         LocalEngineConfig config, CompleteFn on_complete)
    : sim_(sim),
      latency_(latency),
      config_(config),
      on_complete_(std::move(on_complete)) {}

bool LocalEngine::submit(std::uint64_t frame_id, SimTime capture_time) {
  if (queue_depth() >= config_.queue_capacity) {
    ++rejected_;
    return false;
  }
  queue_.push_back(Job{frame_id, capture_time});
  if (!busy_) start_next();
  return true;
}

void LocalEngine::start_next() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  const Job job = queue_.front();
  queue_.pop_front();
  const SimDuration service = latency_.sample();
  busy_time_ += service;
  sim_.schedule_in(service, [this, job] {
    ++completed_;
    on_complete_(job.frame_id, job.capture_time);
    start_next();
  });
}

double LocalEngine::busy_fraction() const {
  const SimTime elapsed = sim_.now();
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(busy_time_) / static_cast<double>(elapsed);
}

}  // namespace ff::device
