#include "ff/device/offload_client.h"

#include <utility>

#include "ff/util/logging.h"

namespace ff::device {

OffloadClient::OffloadClient(sim::Simulator& sim, OffloadTransport& transport,
                             Telemetry& telemetry, OffloadClientConfig config)
    : sim_(sim),
      transport_(transport),
      telemetry_(telemetry),
      config_(std::move(config)) {
  transport_.set_on_response(
      [this](std::uint64_t id, OffloadReply reply) { handle_response(id,
                                                                     reply); });
  transport_.set_on_failure([this](std::uint64_t id) { handle_failure(id); });
}

void OffloadClient::offload_frame(std::uint64_t frame_id, SimTime capture_time,
                                  Bytes payload) {
  ++stats_.attempts;
  telemetry_.record_offload_attempt(sim_.now());

  // Deadline is anchored at capture, not at send: encode time already
  // consumed part of the budget.
  trace(sim_.now(), obs::ev::kFrameOffloadSent, frame_id);
  const SimTime deadline_at = capture_time + config_.deadline;
  const sim::EventId ev = sim_.schedule_at(
      deadline_at, [this, frame_id] { handle_deadline(frame_id); });
  pending_.emplace(frame_id, PendingFrame{capture_time, ev});
  transport_.offload(frame_id, payload);
}

void OffloadClient::send_probe(std::uint64_t probe_id, Bytes payload,
                               ProbeFn on_done) {
  ++stats_.probes_sent;
  const sim::EventId ev = sim_.schedule_in(config_.deadline, [this, probe_id] {
    const auto it = probes_.find(probe_id);
    if (it == probes_.end()) return;
    ProbeFn fn = std::move(it->second.on_done);
    probes_.erase(it);
    transport_.cancel(probe_id);
    ++stats_.probes_failed;
    fn(false);
  });
  probes_.emplace(probe_id, PendingProbe{std::move(on_done), ev});
  transport_.offload(probe_id, payload);
}

void OffloadClient::handle_response(std::uint64_t id, OffloadReply reply) {
  const SimTime now = sim_.now();

  if (const auto pit = probes_.find(id); pit != probes_.end()) {
    sim_.cancel(pit->second.deadline_event);
    ProbeFn fn = std::move(pit->second.on_done);
    probes_.erase(pit);
    const bool ok = !is_rejection(reply);
    ok ? ++stats_.probes_ok : ++stats_.probes_failed;
    fn(ok);
    return;
  }

  const auto it = pending_.find(id);
  if (it == pending_.end()) {
    ++stats_.late_responses;
    return;
  }
  sim_.cancel(it->second.deadline_event);
  const SimTime capture_time = it->second.capture_time;
  pending_.erase(it);

  if (is_rejection(reply)) {
    ++stats_.timeouts_load;
    if (reply == OffloadReply::kRejectedAdmission) {
      ++stats_.admission_rejections;
      telemetry_.record_admission_rejection(now);
    } else {
      telemetry_.record_timeout_load(now);
    }
    trace(now, obs::ev::kFrameTimeoutLoad, id);
    FF_TRACE("offload") << "frame " << id << " rejected by server";
  } else {
    ++stats_.successes;
    const auto latency = static_cast<double>(now - capture_time);
    stats_.latency_us.add(latency);
    stats_.latency_p50.add(latency);
    stats_.latency_p95.add(latency);
    stats_.latency_p99.add(latency);
    telemetry_.record_offload_success(now, now - capture_time);
    trace(now, obs::ev::kFrameOffloadSuccess, id);
  }
}

void OffloadClient::handle_failure(std::uint64_t id) {
  if (const auto pit = probes_.find(id); pit != probes_.end()) {
    sim_.cancel(pit->second.deadline_event);
    ProbeFn fn = std::move(pit->second.on_done);
    probes_.erase(pit);
    ++stats_.probes_failed;
    fn(false);
    return;
  }
  const auto it = pending_.find(id);
  if (it == pending_.end()) return;
  sim_.cancel(it->second.deadline_event);
  pending_.erase(it);
  ++stats_.timeouts_network;
  telemetry_.record_timeout_network(sim_.now());
  trace(sim_.now(), obs::ev::kFrameTimeoutNetwork, id);
}

void OffloadClient::handle_deadline(std::uint64_t id) {
  const auto it = pending_.find(id);
  if (it == pending_.end()) return;
  pending_.erase(it);
  transport_.cancel(id);
  ++stats_.timeouts_network;
  telemetry_.record_timeout_network(sim_.now());
  trace(sim_.now(), obs::ev::kFrameTimeoutNetwork, id);
  FF_TRACE("offload") << "frame " << id << " missed deadline";
}

void OffloadClient::trace(SimTime t, std::string_view type,
                          std::uint64_t frame_id) {
  if (sink_ == nullptr) return;
  sink_->emit(obs::TraceEvent(t, type, config_.name).with_id(frame_id));
}

}  // namespace ff::device
