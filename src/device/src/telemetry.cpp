#include "ff/device/telemetry.h"

namespace ff::device {

Telemetry::Telemetry(SimDuration window)
    : window_(window),
      captured_(window),
      local_done_(window),
      offload_attempted_(window),
      offload_done_(window),
      timeouts_net_(window),
      timeouts_load_(window),
      admission_rej_(window),
      offload_latency_(window) {}

void Telemetry::record_frame_captured(SimTime t) {
  ++totals_.frames_captured;
  captured_.add(t);
}

void Telemetry::record_local_completion(SimTime t) {
  ++totals_.local_completions;
  local_done_.add(t);
}

void Telemetry::record_local_drop(SimTime) { ++totals_.local_drops; }

void Telemetry::record_offload_attempt(SimTime t) {
  ++totals_.offload_attempts;
  offload_attempted_.add(t);
}

void Telemetry::record_offload_success(SimTime t, SimDuration latency) {
  ++totals_.offload_successes;
  offload_done_.add(t);
  offload_latency_.add(t, static_cast<double>(latency));
}

void Telemetry::record_timeout_network(SimTime t) {
  ++totals_.timeouts_network;
  timeouts_net_.add(t);
}

void Telemetry::record_timeout_load(SimTime t) {
  ++totals_.timeouts_load;
  timeouts_load_.add(t);
}

void Telemetry::record_admission_rejection(SimTime t) {
  record_timeout_load(t);
  ++totals_.admission_rejections;
  admission_rej_.add(t);
}

double Telemetry::local_rate(SimTime now) { return local_done_.rate(now); }

double Telemetry::offload_success_rate(SimTime now) {
  return offload_done_.rate(now);
}

double Telemetry::offload_attempt_rate(SimTime now) {
  return offload_attempted_.rate(now);
}

double Telemetry::timeout_rate(SimTime now) {
  return timeouts_net_.rate(now) + timeouts_load_.rate(now);
}

double Telemetry::network_timeout_rate(SimTime now) {
  return timeouts_net_.rate(now);
}

double Telemetry::load_timeout_rate(SimTime now) {
  return timeouts_load_.rate(now);
}

double Telemetry::admission_reject_rate(SimTime now) {
  return admission_rej_.rate(now);
}

double Telemetry::throughput(SimTime now) {
  return local_rate(now) + offload_success_rate(now);
}

double Telemetry::capture_rate(SimTime now) { return captured_.rate(now); }

double Telemetry::mean_offload_latency_us(SimTime now) {
  return offload_latency_.mean(now);
}

}  // namespace ff::device
