#pragma once

// Concrete placement policies for fleet topologies (ISSUE 9). The
// abstract PlacementPolicy contract lives in core (ff/core/
// fleet_topology.h) so the experiment runner never depends on this
// module; policies here are installed via Scenario::fleet.placement.
//
// All three policies decide from build-time state only, so re-placement
// on rejection (invoked concurrently from partition worker threads) is
// const, thread-safe and deterministic by construction: the failover
// target is a pure function of (current server, fleet size).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "ff/core/experiment.h"
#include "ff/core/fleet_topology.h"
#include "ff/server/reservation.h"

namespace ff::fleet {

/// Fixed device -> server map; devices past the end of the map (or with
/// no map at all) place round-robin. Never re-homes on rejection.
class StaticPlacement final : public core::PlacementPolicy {
 public:
  StaticPlacement() = default;
  explicit StaticPlacement(std::vector<std::size_t> assignments)
      : assignments_(std::move(assignments)) {}

  [[nodiscard]] std::string_view name() const override { return "static"; }

  [[nodiscard]] std::size_t place(std::size_t device_index,
                                  const device::DeviceConfig& device,
                                  const core::PlacementView& view) override;

 private:
  std::vector<std::size_t> assignments_;
};

/// Assigns each device to the server with the fewest devices so far
/// (ties break toward the lowest index). On rejection the device fails
/// over around a ring: current + 1 mod M.
class LeastLoadedPlacement final : public core::PlacementPolicy {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "least-loaded";
  }

  [[nodiscard]] std::size_t place(std::size_t device_index,
                                  const device::DeviceConfig& device,
                                  const core::PlacementView& view) override;

  [[nodiscard]] std::size_t on_rejection(
      std::size_t device_index, std::size_t current_server,
      std::size_t server_count, std::uint64_t rejections_total) const override;
};

/// The manager's idealized capacity belief used by the reservation
/// comparison bench: MobileNetV3-Small GPU throughput at batch 15 with a
/// 0.9 safety factor.
[[nodiscard]] server::ReservationConfig default_reservation_config();

/// One ReservationController per device against a shared manager, with
/// client id = device_index + 1 (id 0 is reserved). Extracted from
/// bench/comparison_reservation.cpp so experiments and benches share one
/// definition of the ATOMS-style baseline.
[[nodiscard]] core::ControllerFactory reservation_controller_factory(
    std::shared_ptr<server::ReservationManager> manager);

/// Reservation-based placement: each server gets its own
/// ReservationManager; a device is placed on the server with the most
/// remaining granted capacity and reserves its source rate there. On
/// rejection the device fails over around the ring like LeastLoaded.
class ReservationPlacement final : public core::PlacementPolicy {
 public:
  explicit ReservationPlacement(
      server::ReservationConfig config = default_reservation_config())
      : config_(config) {}

  [[nodiscard]] std::string_view name() const override {
    return "reservation";
  }

  [[nodiscard]] std::size_t place(std::size_t device_index,
                                  const device::DeviceConfig& device,
                                  const core::PlacementView& view) override;

  [[nodiscard]] std::size_t on_rejection(
      std::size_t device_index, std::size_t current_server,
      std::size_t server_count, std::uint64_t rejections_total) const override;

  /// The per-server managers (created lazily by place()); exposed so a
  /// harness can pair the placement with reservation controllers.
  [[nodiscard]] const std::vector<std::shared_ptr<server::ReservationManager>>&
  managers() const {
    return managers_;
  }

 private:
  server::ReservationConfig config_;
  std::vector<std::shared_ptr<server::ReservationManager>> managers_;
};

/// PlacementFactory adapters for Scenario::fleet.placement (factories
/// must be pure: each call returns a fresh policy).
[[nodiscard]] core::PlacementFactory static_placement(
    std::vector<std::size_t> assignments = {});
[[nodiscard]] core::PlacementFactory least_loaded_placement();
[[nodiscard]] core::PlacementFactory reservation_placement(
    server::ReservationConfig config = default_reservation_config());

}  // namespace ff::fleet
