#include "ff/fleet/placement.h"

#include <stdexcept>

#include "ff/control/reservation_controller.h"
#include "ff/models/model_spec.h"

namespace ff::fleet {

std::size_t StaticPlacement::place(std::size_t device_index,
                                   const device::DeviceConfig& device,
                                   const core::PlacementView& view) {
  (void)device;
  if (view.server_count == 0) {
    throw std::invalid_argument("StaticPlacement: empty fleet");
  }
  if (device_index < assignments_.size()) return assignments_[device_index];
  return device_index % view.server_count;
}

std::size_t LeastLoadedPlacement::place(std::size_t device_index,
                                        const device::DeviceConfig& device,
                                        const core::PlacementView& view) {
  (void)device_index;
  (void)device;
  if (view.server_count == 0 || view.assigned_counts == nullptr) {
    throw std::invalid_argument("LeastLoadedPlacement: empty fleet");
  }
  std::size_t best = 0;
  for (std::size_t s = 1; s < view.assigned_counts->size(); ++s) {
    if ((*view.assigned_counts)[s] < (*view.assigned_counts)[best]) best = s;
  }
  return best;
}

std::size_t LeastLoadedPlacement::on_rejection(
    std::size_t device_index, std::size_t current_server,
    std::size_t server_count, std::uint64_t rejections_total) const {
  (void)device_index;
  (void)rejections_total;
  if (server_count <= 1) return current_server;
  return (current_server + 1) % server_count;
}

server::ReservationConfig default_reservation_config() {
  return {models::gpu_throughput(
              models::get_model(models::ModelId::kMobileNetV3Small), 15),
          0.9};
}

core::ControllerFactory reservation_controller_factory(
    std::shared_ptr<server::ReservationManager> manager) {
  if (!manager) {
    throw std::invalid_argument(
        "reservation_controller_factory: null manager");
  }
  return [manager](std::size_t device_index) {
    return std::make_unique<control::ReservationController>(
        *manager, device_index + 1);
  };
}

std::size_t ReservationPlacement::place(std::size_t device_index,
                                        const device::DeviceConfig& device,
                                        const core::PlacementView& view) {
  if (view.server_count == 0) {
    throw std::invalid_argument("ReservationPlacement: empty fleet");
  }
  while (managers_.size() < view.server_count) {
    managers_.push_back(
        std::make_shared<server::ReservationManager>(config_));
  }
  // Most remaining believed capacity wins; ties break low. The reserve is
  // the device's source rate -- the most it could ever demand.
  std::size_t best = 0;
  double best_room = -1.0;
  for (std::size_t s = 0; s < view.server_count; ++s) {
    const double room = config_.capacity_fps * config_.safety_factor -
                        managers_[s]->total_granted();
    if (room > best_room) {
      best_room = room;
      best = s;
    }
  }
  managers_[best]->request(device_index + 1, device.source_fps);
  return best;
}

std::size_t ReservationPlacement::on_rejection(
    std::size_t device_index, std::size_t current_server,
    std::size_t server_count, std::uint64_t rejections_total) const {
  (void)device_index;
  (void)rejections_total;
  if (server_count <= 1) return current_server;
  return (current_server + 1) % server_count;
}

core::PlacementFactory static_placement(std::vector<std::size_t> assignments) {
  return [assignments]() {
    return std::make_unique<StaticPlacement>(assignments);
  };
}

core::PlacementFactory least_loaded_placement() {
  return []() { return std::make_unique<LeastLoadedPlacement>(); };
}

core::PlacementFactory reservation_placement(
    server::ReservationConfig config) {
  return [config]() {
    return std::make_unique<ReservationPlacement>(config);
  };
}

}  // namespace ff::fleet
