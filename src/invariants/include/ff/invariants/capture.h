#pragma once

// Flight-recorder captures: when an invariant fails, the harness writes a
// small key=value file naming the suite scenario, controller, seed and the
// run's result fingerprint (plus a JSONL trace of the failing run). The
// simulation is deterministic, so the capture is a complete reproduction
// recipe: `ffctl --replay=<capture>` re-executes the run and asserts the
// fingerprint matches bit-for-bit.

#include <cstdint>
#include <string>

namespace ff::invariants {

struct Capture {
  std::string scenario;    ///< name in the default suite
  std::string controller;  ///< controller_factory_from_config name
  std::uint64_t seed{0};
  std::uint64_t fingerprint{0};  ///< expected result_fingerprint
  std::uint64_t events_executed{0};
  std::uint64_t frames_captured{0};  ///< device totals, for a quick sanity read
  std::string failed;      ///< comma list of failed invariants ("" = manual)
  std::string trace_path;  ///< sibling JSONL trace ("" when not written)
};

/// Writes the capture as a Config-compatible key=value file.
void write_capture(const Capture& capture, const std::string& path);

/// Parses a capture file. Throws std::runtime_error on I/O failure and
/// std::invalid_argument when required keys are missing.
[[nodiscard]] Capture load_capture(const std::string& path);

struct ReplayResult {
  Capture capture;
  std::uint64_t replayed_fingerprint{0};
  std::uint64_t replayed_events{0};
  [[nodiscard]] bool match() const {
    return replayed_fingerprint == capture.fingerprint;
  }
};

/// Re-executes the captured run (same suite scenario, controller and seed)
/// and compares fingerprints. Throws on unreadable captures and unknown
/// scenario/controller names.
[[nodiscard]] ReplayResult replay_capture(const std::string& path);

}  // namespace ff::invariants
