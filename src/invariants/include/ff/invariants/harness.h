#pragma once

// The harness: runs disturbance scenarios, evaluates invariants, and on
// failure writes flight-recorder captures whose replay is verified against
// the original fingerprint before the capture is trusted.

#include <string>
#include <vector>

#include "ff/invariants/capture.h"
#include "ff/invariants/invariants.h"
#include "ff/invariants/scenario_suite.h"

namespace ff::invariants {

struct HarnessOptions {
  InvariantThresholds thresholds{};
  /// Measure wall-clock cost per simulator event (chunked, p99) and check
  /// it against thresholds.event_cost_p99_us. Off by default in unit
  /// tests; on in the physics-CI bench.
  bool measure_event_cost{false};
  /// Directory for captures and traces; "" disables capture entirely
  /// (created on demand when needed).
  std::string capture_dir;
  /// Write a capture even when every invariant passes -- used by the
  /// replay ctest gate, which needs a capture from a green run.
  bool capture_all{false};
};

/// Runs one scenario end to end: experiment, invariant evaluation and --
/// when an invariant failed or capture_all is set -- a verification re-run
/// with tracing attached, whose fingerprint must reproduce the original
/// (ScenarioReport::replay_verified records that it did).
[[nodiscard]] ScenarioReport run_scenario(const DisturbanceScenario& scenario,
                                          const HarnessOptions& options = {});

/// Runs every scenario in order.
[[nodiscard]] std::vector<ScenarioReport> run_suite(
    const std::vector<DisturbanceScenario>& suite,
    const HarnessOptions& options = {});

}  // namespace ff::invariants
