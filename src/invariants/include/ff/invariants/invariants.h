#pragma once

// Invariant evaluation over a finished run: declarative checks of the
// "physics" every healthy closed loop must obey, computed purely from the
// telemetry an ExperimentResult already carries. Each check reports the
// observed value against its bound so failures are diagnosable from the
// JSON summary alone.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "ff/core/experiment.h"
#include "ff/invariants/scenario_suite.h"

namespace ff::invariants {

/// Bounds for the non-exact invariants. Frame conservation takes no
/// threshold: it holds exactly or it is a bug.
struct InvariantThresholds {
  /// Po_target steps smaller than this (fps) are measurement noise, not
  /// actuation reversals.
  double po_deadband_fps{1.0};
  /// Maximum direction reversals of Po_target per minute of run time.
  double po_flaps_per_minute{12.0};
  /// Settling time granted after the disturbance closes before the
  /// timeout rate T must have converged.
  SimDuration convergence_settle{10 * kSecond};
  /// Converged means: tail mean of T within this many timeouts/s of the
  /// pre-disturbance baseline (or of zero when there is no baseline).
  double recovered_timeout_slack{1.0};
  /// The post-disturbance trend must not rise: second half mean of T may
  /// exceed the first half by at most this (timeouts/s).
  double trend_slack{0.5};
  /// p99 wall-clock cost per simulator event (us), when measured.
  double event_cost_p99_us{250.0};
};

/// One evaluated invariant: what was measured, what was allowed.
struct InvariantCheck {
  std::string name;
  bool passed{false};
  double observed{0.0};
  double bound{0.0};
  std::string detail;
};

/// Everything the harness learned from one scenario run.
struct ScenarioReport {
  std::string scenario;
  std::string controller;
  std::string description;
  std::uint64_t seed{0};
  std::uint64_t fingerprint{0};  ///< sweep::result_fingerprint of the run
  std::uint64_t events_executed{0};
  std::vector<InvariantCheck> checks;
  /// Flight-recorder capture written for this run ("" when none).
  std::string capture_path;
  /// True when the capture's verification re-run reproduced `fingerprint`
  /// bit-identically (only meaningful when a capture was written).
  bool replay_verified{false};

  [[nodiscard]] bool passed() const;
  /// Comma-separated names of failed checks ("" when all passed).
  [[nodiscard]] std::string failed_names() const;
};

/// Evaluates every invariant against a finished run of `scenario`. Pass
/// `event_cost_p99_us < 0` when per-event wall cost was not measured (the
/// check is then omitted).
[[nodiscard]] std::vector<InvariantCheck> evaluate_invariants(
    const DisturbanceScenario& scenario, const core::ExperimentResult& result,
    const InvariantThresholds& thresholds, double event_cost_p99_us = -1.0);

/// Machine-readable summary (INVARIANTS.json): suite verdict plus every
/// scenario's checks, fingerprints as hex strings.
void write_invariants_json(const std::vector<ScenarioReport>& reports,
                           std::ostream& os);
void write_invariants_json(const std::vector<ScenarioReport>& reports,
                           const std::string& path);

}  // namespace ff::invariants
