#pragma once

// The disturbance-scenario suite behind the invariants harness ("physics
// CI"): each entry pairs a controller with a scenario that injects one
// disturbance -- a loss burst, a bandwidth collapse, a server overload --
// inside an otherwise clean run, so closed-loop physics (frame
// conservation, bounded actuation flapping, post-disturbance convergence)
// can be checked against the telemetry the run produces.

#include <string>
#include <vector>

#include "ff/core/scenario.h"

namespace ff::invariants {

/// One named disturbance experiment: a scenario whose network or load
/// schedule departs from nominal inside [disturbance_start,
/// disturbance_end), plus the controller under test.
struct DisturbanceScenario {
  std::string name;
  std::string description;
  /// Controller name as accepted by core::controller_factory_from_config.
  std::string controller{"frame-feedback"};
  core::Scenario scenario;
  /// Window in which conditions are off-nominal. A start of 0 means the
  /// disturbance is present from the first frame (no clean baseline).
  SimTime disturbance_start{0};
  SimTime disturbance_end{0};
  /// When > 0, the harness re-runs the scenario with this partition count
  /// and adds a partition_fingerprint_equality check: the re-run's result
  /// fingerprint must equal the base run's bit-for-bit. The base scenario
  /// must itself set partitions >= 1 (fingerprints are only comparable
  /// within the partitioned mode).
  std::size_t compare_partitions{0};
};

/// The default suite: loss_burst, bandwidth_collapse, retry_storm,
/// server_overload, server_stall, device_churn and partition_determinism.
/// Every scenario is deterministic (fixed seed) so harness runs are
/// reproducible and replayable bit-for-bit.
[[nodiscard]] std::vector<DisturbanceScenario> default_suite();

/// Scenario with `name` from the default suite. Throws
/// std::invalid_argument listing known names when absent.
[[nodiscard]] DisturbanceScenario find_scenario(const std::string& name);

/// Comma-separated names of the default suite, for help text.
[[nodiscard]] std::string known_suite_names();

}  // namespace ff::invariants
