#include "ff/invariants/capture.h"

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

#include "ff/core/scenario_config.h"
#include "ff/invariants/scenario_suite.h"
#include "ff/sweep/sweep.h"
#include "ff/util/config.h"

namespace ff::invariants {
namespace {

std::string hex64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Config::get_int is signed, so the fingerprint travels as a hex string.
std::uint64_t parse_hex64(const std::string& s) {
  return std::stoull(s, nullptr, 16);
}

std::string require(const Config& cfg, const std::string& key,
                    const std::string& path) {
  const auto v = cfg.get(key);
  if (!v) {
    throw std::invalid_argument("capture " + path + " is missing key '" +
                                key + "'");
  }
  return *v;
}

}  // namespace

void write_capture(const Capture& capture, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot write capture " + path);
  os << "# ff-invariants flight-recorder capture\n"
     << "# replay with: ffctl --replay=" << path << "\n"
     << "scenario = " << capture.scenario << "\n"
     << "controller = " << capture.controller << "\n"
     << "seed = " << capture.seed << "\n"
     << "fingerprint = " << hex64(capture.fingerprint) << "\n"
     << "events_executed = " << capture.events_executed << "\n"
     << "frames_captured = " << capture.frames_captured << "\n";
  if (!capture.failed.empty()) os << "failed = " << capture.failed << "\n";
  if (!capture.trace_path.empty()) {
    os << "trace = " << capture.trace_path << "\n";
  }
  if (!os) throw std::runtime_error("short write on capture " + path);
}

Capture load_capture(const std::string& path) {
  const Config cfg = Config::from_file(path);
  Capture c;
  c.scenario = require(cfg, "scenario", path);
  c.controller = require(cfg, "controller", path);
  c.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 0));
  c.fingerprint = parse_hex64(require(cfg, "fingerprint", path));
  c.events_executed =
      static_cast<std::uint64_t>(cfg.get_int("events_executed", 0));
  c.frames_captured =
      static_cast<std::uint64_t>(cfg.get_int("frames_captured", 0));
  c.failed = cfg.get_string("failed", "");
  c.trace_path = cfg.get_string("trace", "");
  return c;
}

ReplayResult replay_capture(const std::string& path) {
  ReplayResult out;
  out.capture = load_capture(path);

  DisturbanceScenario d = find_scenario(out.capture.scenario);
  d.scenario.seed = out.capture.seed;
  Config controller_cfg;
  controller_cfg.set("controller", out.capture.controller);
  const core::ExperimentResult result = core::run_experiment(
      d.scenario, core::controller_factory_from_config(controller_cfg));

  out.replayed_fingerprint = sweep::result_fingerprint(result);
  out.replayed_events = result.events_executed;
  return out;
}

}  // namespace ff::invariants
