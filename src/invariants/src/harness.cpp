#include "ff/invariants/harness.h"

#include <chrono>
#include <filesystem>
#include <utility>

#include "ff/core/scenario_config.h"
#include "ff/obs/trace.h"
#include "ff/sweep/sweep.h"
#include "ff/util/config.h"

namespace ff::invariants {
namespace {

/// Wall-clock cost per simulator event, sampled in 1024-event chunks so
/// two clock reads amortize over the chunk instead of bracketing every
/// event. The probe is observation-only: it never feeds back into the
/// simulation, so determinism is untouched.
class EventCostProbe {
 public:
  static void observe(void* ctx, SimTime /*time*/, std::uint64_t /*seq*/) {
    static_cast<EventCostProbe*>(ctx)->tick();
  }

  /// p99 of the per-event cost in microseconds; < 0 until one full chunk
  /// has been timed.
  [[nodiscard]] double p99_us() const {
    return p99_.count() > 0 ? p99_.value() : -1.0;
  }

 private:
  // ff-lint: allow(wall-clock) observation-only probe, never fed back
  using Clock = std::chrono::steady_clock;

  void tick() {
    if (in_chunk_ == 0) chunk_start_ = Clock::now();
    if (++in_chunk_ < kChunk) return;
    const auto elapsed = Clock::now() - chunk_start_;
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count());
    p99_.add(ns / (1000.0 * kChunk));
    in_chunk_ = 0;
  }

  static constexpr std::uint32_t kChunk = 1024;
  Clock::time_point chunk_start_{};
  std::uint32_t in_chunk_{0};
  P2Quantile p99_{0.99};
};

core::ControllerFactory factory_for(const std::string& controller) {
  Config cfg;
  cfg.set("controller", controller);
  return core::controller_factory_from_config(cfg);
}

}  // namespace

ScenarioReport run_scenario(const DisturbanceScenario& scenario,
                            const HarnessOptions& options) {
  ScenarioReport report;
  report.scenario = scenario.name;
  report.controller = scenario.controller;
  report.description = scenario.description;
  report.seed = scenario.scenario.seed;

  core::Experiment experiment(scenario.scenario,
                              factory_for(scenario.controller));
  EventCostProbe probe;
  if (options.measure_event_cost) {
    experiment.simulator().set_event_observer(&EventCostProbe::observe,
                                              &probe);
  }
  const core::ExperimentResult result = experiment.run();
  report.fingerprint = sweep::result_fingerprint(result);
  report.events_executed = result.events_executed;
  report.checks = evaluate_invariants(
      scenario, result, options.thresholds,
      options.measure_event_cost ? probe.p99_us() : -1.0);

  // Partitioned-kernel determinism: re-run with the comparison partition
  // count; the result fingerprint must match bit-for-bit.
  if (scenario.compare_partitions > 0) {
    core::Scenario repartitioned = scenario.scenario;
    repartitioned.partitions = scenario.compare_partitions;
    const core::ExperimentResult other = core::run_experiment(
        repartitioned, factory_for(scenario.controller));
    const std::uint64_t other_fp = sweep::result_fingerprint(other);
    InvariantCheck check;
    check.name = "partition_fingerprint_equality";
    check.passed = other_fp == report.fingerprint;
    check.observed = static_cast<double>(other_fp);
    check.bound = static_cast<double>(report.fingerprint);
    check.detail = "K=" + std::to_string(scenario.scenario.partitions) +
                   " vs K=" + std::to_string(scenario.compare_partitions) +
                   (check.passed ? " fingerprints match"
                                 : " fingerprints DIVERGE");
    report.checks.push_back(std::move(check));
  }

  const bool want_capture =
      !options.capture_dir.empty() && (!report.passed() || options.capture_all);
  if (!want_capture) return report;

  std::filesystem::create_directories(options.capture_dir);
  const std::string stem = options.capture_dir + "/" + scenario.name;

  // Verification re-run with tracing attached: the simulation is
  // deterministic, so the traced run must reproduce the original
  // fingerprint exactly -- otherwise the capture would not actually
  // reproduce what failed, and the report says so.
  obs::JsonlTraceSink trace(stem + ".trace.jsonl");
  core::Experiment rerun(scenario.scenario, factory_for(scenario.controller));
  rerun.set_trace_sink(&trace);
  const core::ExperimentResult repeated = rerun.run();
  trace.flush();
  report.replay_verified =
      sweep::result_fingerprint(repeated) == report.fingerprint;

  Capture capture;
  capture.scenario = scenario.name;
  capture.controller = scenario.controller;
  capture.seed = scenario.scenario.seed;
  capture.fingerprint = report.fingerprint;
  capture.events_executed = report.events_executed;
  capture.frames_captured =
      result.devices.empty() ? 0 : result.devices[0].totals.frames_captured;
  capture.failed = report.failed_names();
  capture.trace_path = stem + ".trace.jsonl";
  report.capture_path = stem + ".capture";
  write_capture(capture, report.capture_path);
  return report;
}

std::vector<ScenarioReport> run_suite(
    const std::vector<DisturbanceScenario>& suite,
    const HarnessOptions& options) {
  std::vector<ScenarioReport> reports;
  reports.reserve(suite.size());
  for (const DisturbanceScenario& scenario : suite) {
    reports.push_back(run_scenario(scenario, options));
  }
  return reports;
}

}  // namespace ff::invariants
