#include "ff/invariants/invariants.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <stdexcept>

namespace ff::invariants {
namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string hex_fingerprint(std::uint64_t fp) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(fp));
  return buf;
}

void write_escaped(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

/// Direction reversals of a series under a deadband: moves smaller than
/// `deadband` from the last significant level are ignored, so controller
/// dither does not count as actuation flapping.
std::size_t count_reversals(const TimeSeries& series, double deadband) {
  std::size_t reversals = 0;
  int last_direction = 0;
  bool have_ref = false;
  double ref = 0.0;
  for (const TimePoint& p : series) {
    if (!have_ref) {
      ref = p.value;
      have_ref = true;
      continue;
    }
    const double delta = p.value - ref;
    if (std::abs(delta) < deadband) continue;
    const int direction = delta > 0 ? 1 : -1;
    if (last_direction != 0 && direction != last_direction) ++reversals;
    last_direction = direction;
    ref = p.value;
  }
  return reversals;
}

InvariantCheck check_conservation(const core::ExperimentResult& result) {
  InvariantCheck c;
  c.name = "frame_conservation";
  c.bound = 0.0;
  c.passed = true;
  std::string detail;
  double worst = 0.0;
  for (const core::DeviceResult& d : result.devices) {
    const auto& t = d.totals;
    const double gap = static_cast<double>(t.frames_captured) -
                       static_cast<double>(t.accounted());
    worst = std::max(worst, std::abs(gap));
    if (!t.conserved()) {
      c.passed = false;
      if (!detail.empty()) detail += "; ";
      detail += d.name + ": captured " + std::to_string(t.frames_captured) +
                " != accounted " + std::to_string(t.accounted());
    }
  }
  c.observed = worst;
  c.detail = c.passed ? "captured == local + drops + offload + timeouts + "
                        "in-flight, every device"
                      : detail;
  return c;
}

/// Server-side half of conservation: every request that entered a server
/// (device offloads and background load alike) left as a completion, a
/// rejection, or is still visibly queued/in the in-flight batch at the
/// horizon -- per server, hence exactly summed across the whole fleet.
InvariantCheck check_fleet_conservation(const core::ExperimentResult& result) {
  InvariantCheck c;
  c.name = "fleet_conservation";
  c.bound = 0.0;
  c.passed = true;
  std::string detail;
  double worst = 0.0;
  for (const core::ServerResult& s : result.servers) {
    const auto accounted =
        s.stats.requests_completed + s.stats.requests_rejected +
        s.stats.requests_admission_rejected + s.queue_depth_at_end +
        s.in_flight_batch_at_end;
    const double gap = static_cast<double>(s.stats.requests_received) -
                       static_cast<double>(accounted);
    worst = std::max(worst, std::abs(gap));
    if (!s.conserved()) {
      c.passed = false;
      if (!detail.empty()) detail += "; ";
      detail += s.name + ": received " +
                std::to_string(s.stats.requests_received) +
                " != accounted " + std::to_string(accounted);
    }
  }
  c.observed = worst;
  c.detail = c.passed ? "received == completed + rejected + "
                        "admission-rejected + backlog, every server"
                      : detail;
  return c;
}

InvariantCheck check_po_flapping(const core::ExperimentResult& result,
                                 const InvariantThresholds& th) {
  InvariantCheck c;
  c.name = "po_flapping";
  c.bound = th.po_flaps_per_minute;
  const double minutes =
      static_cast<double>(result.duration) / (60.0 * kSecond);
  double worst = 0.0;
  for (const core::DeviceResult& d : result.devices) {
    const TimeSeries* po = d.series.find("Po_target");
    if (po == nullptr || minutes <= 0.0) continue;
    const auto reversals = count_reversals(*po, th.po_deadband_fps);
    worst = std::max(worst, static_cast<double>(reversals) / minutes);
  }
  c.observed = worst;
  c.passed = worst <= c.bound;
  c.detail = "Po_target direction reversals per minute, deadband " +
             fmt_double(th.po_deadband_fps) + " fps";
  return c;
}

InvariantCheck check_convergence(const DisturbanceScenario& scenario,
                                 const core::ExperimentResult& result,
                                 const InvariantThresholds& th) {
  InvariantCheck c;
  c.name = "t_convergence";
  c.passed = true;
  const SimTime end = scenario.disturbance_end;
  const SimTime settle_end = end + th.convergence_settle;
  const SimTime horizon = result.duration;
  double worst_tail = 0.0;
  double bound = th.recovered_timeout_slack;
  std::string detail;
  for (const core::DeviceResult& d : result.devices) {
    const TimeSeries* t = d.series.find("T");
    if (t == nullptr) continue;
    const double baseline =
        scenario.disturbance_start > 0
            ? t->mean_between(0, scenario.disturbance_start)
            : 0.0;
    const double device_bound = baseline + th.recovered_timeout_slack;
    const double tail = t->mean_between(settle_end, horizon);
    // Trend over the whole recovery: the second half must not be worse
    // than the first (the loop converges instead of oscillating).
    const SimTime mid = end + (horizon - end) / 2;
    const double h1 = t->mean_between(end, mid);
    const double h2 = t->mean_between(mid, horizon);
    worst_tail = std::max(worst_tail, tail);
    bound = std::max(bound, device_bound);
    if (tail > device_bound || h2 > h1 + th.trend_slack) {
      c.passed = false;
      if (!detail.empty()) detail += "; ";
      detail += d.name + ": tail T " + fmt_double(tail) + "/s vs bound " +
                fmt_double(device_bound) + ", halves " + fmt_double(h1) +
                " -> " + fmt_double(h2);
    }
  }
  c.observed = worst_tail;
  c.bound = bound;
  if (c.passed) {
    detail = "timeout rate back under baseline + " +
             fmt_double(th.recovered_timeout_slack) + "/s within " +
             fmt_double(static_cast<double>(th.convergence_settle) / kSecond) +
             " s of the disturbance closing, non-increasing trend";
  }
  c.detail = detail;
  return c;
}

InvariantCheck check_deadline_p99(const DisturbanceScenario& scenario,
                                  const core::ExperimentResult& result) {
  InvariantCheck c;
  c.name = "deadline_p99";
  c.passed = true;
  double worst = 0.0;
  double tightest = 0.0;
  std::string detail;
  for (std::size_t i = 0; i < result.devices.size(); ++i) {
    const core::DeviceResult& d = result.devices[i];
    const double deadline_us = static_cast<double>(
        scenario.scenario.devices.at(i).deadline);
    const double p99 = d.offload.latency_p99.value();
    worst = std::max(worst, p99);
    tightest = tightest == 0.0 ? deadline_us : std::min(tightest, deadline_us);
    if (p99 > deadline_us) {
      c.passed = false;
      if (!detail.empty()) detail += "; ";
      detail += d.name + ": p99 " + fmt_double(p99) + " us > deadline " +
                fmt_double(deadline_us) + " us";
    }
  }
  c.observed = worst;
  c.bound = tightest;
  if (c.passed) {
    detail = "successful-offload latency p99 (us) within every device's "
             "deadline";
  }
  c.detail = detail;
  return c;
}

InvariantCheck check_event_cost(double p99_us,
                                const InvariantThresholds& th) {
  InvariantCheck c;
  c.name = "event_cost_p99";
  c.observed = p99_us;
  c.bound = th.event_cost_p99_us;
  c.passed = p99_us <= th.event_cost_p99_us;
  c.detail = "wall-clock p99 cost per simulator event (us), chunk-averaged";
  return c;
}

}  // namespace

bool ScenarioReport::passed() const {
  return std::all_of(checks.begin(), checks.end(),
                     [](const InvariantCheck& c) { return c.passed; });
}

std::string ScenarioReport::failed_names() const {
  std::string out;
  for (const InvariantCheck& c : checks) {
    if (c.passed) continue;
    if (!out.empty()) out += ",";
    out += c.name;
  }
  return out;
}

[[nodiscard]] std::vector<InvariantCheck> evaluate_invariants(
    const DisturbanceScenario& scenario, const core::ExperimentResult& result,
    const InvariantThresholds& thresholds, double event_cost_p99_us) {
  std::vector<InvariantCheck> checks;
  checks.push_back(check_conservation(result));
  checks.push_back(check_fleet_conservation(result));
  checks.push_back(check_po_flapping(result, thresholds));
  checks.push_back(check_convergence(scenario, result, thresholds));
  checks.push_back(check_deadline_p99(scenario, result));
  if (event_cost_p99_us >= 0.0) {
    checks.push_back(check_event_cost(event_cost_p99_us, thresholds));
  }
  return checks;
}

void write_invariants_json(const std::vector<ScenarioReport>& reports,
                           std::ostream& os) {
  const bool all_passed =
      std::all_of(reports.begin(), reports.end(),
                  [](const ScenarioReport& r) { return r.passed(); });
  os << "{\n  \"suite\": \"invariants\",\n  \"passed\": "
     << (all_passed ? "true" : "false") << ",\n  \"scenarios\": [\n";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const ScenarioReport& r = reports[i];
    os << "    {\n      \"name\": \"";
    write_escaped(os, r.scenario);
    os << "\",\n      \"controller\": \"";
    write_escaped(os, r.controller);
    os << "\",\n      \"seed\": " << r.seed << ",\n      \"fingerprint\": \""
       << hex_fingerprint(r.fingerprint) << "\",\n      \"events\": "
       << r.events_executed << ",\n      \"passed\": "
       << (r.passed() ? "true" : "false");
    if (!r.capture_path.empty()) {
      os << ",\n      \"capture\": \"";
      write_escaped(os, r.capture_path);
      os << "\",\n      \"replay_verified\": "
         << (r.replay_verified ? "true" : "false");
    }
    os << ",\n      \"invariants\": [\n";
    for (std::size_t j = 0; j < r.checks.size(); ++j) {
      const InvariantCheck& c = r.checks[j];
      os << "        {\"name\": \"";
      write_escaped(os, c.name);
      os << "\", \"passed\": " << (c.passed ? "true" : "false")
         << ", \"observed\": " << fmt_double(c.observed)
         << ", \"bound\": " << fmt_double(c.bound) << ", \"detail\": \"";
      write_escaped(os, c.detail);
      os << "\"}" << (j + 1 < r.checks.size() ? "," : "") << "\n";
    }
    os << "      ]\n    }" << (i + 1 < reports.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

void write_invariants_json(const std::vector<ScenarioReport>& reports,
                           const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot write " + path);
  write_invariants_json(reports, os);
}

}  // namespace ff::invariants
