#include "ff/invariants/scenario_suite.h"

#include <stdexcept>
#include <utility>

#include "ff/fleet/placement.h"

namespace ff::invariants {
namespace {

constexpr SimDuration kRun = 90 * kSecond;
constexpr SimTime kOn = 30 * kSecond;   // disturbance opens
constexpr SimTime kOff = 55 * kSecond;  // disturbance closes

/// Ideal-based single-device scenario with a fixed seed; every suite entry
/// starts here so the only thing that varies is the disturbance itself.
core::Scenario base(const std::string& name, SimDuration duration = kRun) {
  core::Scenario s = core::Scenario::ideal(duration);
  s.name = name;
  s.seed = 42;
  return s;
}

/// Installs a schedule and keeps the link templates' initial conditions in
/// sync with its first phase (the same contract Scenario factories follow).
void set_network(core::Scenario& s, net::NetemSchedule schedule) {
  s.uplink_template.initial = schedule.at(0);
  s.downlink_template.initial = schedule.at(0);
  s.network = std::move(schedule);
}

DisturbanceScenario loss_burst() {
  DisturbanceScenario d;
  d.name = "loss_burst";
  d.description = "15% packet loss injected mid-run on a 10 Mbps link";
  d.scenario = base(d.name);
  const net::LinkConditions clean{Bandwidth::mbps(10.0), 0.0,
                                  2 * kMillisecond};
  net::LinkConditions lossy = clean;
  lossy.loss_probability = 0.15;
  net::NetemSchedule sched;
  sched.add(0, clean, "clean")
      .add(kOn, lossy, "loss-burst")
      .add(kOff, clean, "recovered");
  set_network(d.scenario, sched);
  d.disturbance_start = kOn;
  d.disturbance_end = kOff;
  return d;
}

DisturbanceScenario bandwidth_collapse() {
  DisturbanceScenario d;
  d.name = "bandwidth_collapse";
  d.description = "uplink bandwidth collapses 10 -> 1.2 Mbps, then recovers";
  d.scenario = base(d.name);
  const net::LinkConditions clean{Bandwidth::mbps(10.0), 0.0,
                                  2 * kMillisecond};
  net::LinkConditions starved = clean;
  starved.bandwidth = Bandwidth::mbps(1.2);
  net::NetemSchedule sched;
  sched.add(0, clean, "clean")
      .add(kOn, starved, "collapsed")
      .add(kOff, clean, "recovered");
  set_network(d.scenario, sched);
  d.disturbance_start = kOn;
  d.disturbance_end = kOff;
  return d;
}

DisturbanceScenario retry_storm() {
  DisturbanceScenario d;
  d.name = "retry_storm";
  d.description =
      "35% loss on a thin link: every frame needs several of the "
      "transport's 8 retries, saturating the uplink with retransmissions";
  d.scenario = base(d.name);
  const net::LinkConditions clean{Bandwidth::mbps(8.0), 0.0,
                                  5 * kMillisecond};
  net::LinkConditions storm = clean;
  storm.loss_probability = 0.35;
  net::NetemSchedule sched;
  sched.add(0, clean, "clean")
      .add(kOn, storm, "retry-storm")
      .add(kOff, clean, "recovered");
  set_network(d.scenario, sched);
  d.disturbance_start = kOn;
  d.disturbance_end = kOff;
  return d;
}

DisturbanceScenario server_overload() {
  DisturbanceScenario d;
  d.name = "server_overload";
  d.description =
      "background load steps to Table VI's peak (150 req/s) and back";
  d.scenario = base(d.name);
  d.scenario.background_load = server::LoadSchedule()
                                   .add(0, Rate{0})
                                   .add(kOn, Rate{150})
                                   .add(kOff, Rate{0});
  d.disturbance_start = kOn;
  d.disturbance_end = kOff;
  return d;
}

DisturbanceScenario server_stall() {
  DisturbanceScenario d;
  d.name = "server_stall";
  d.description =
      "a short 220 req/s burst stalls the server queue outright";
  d.scenario = base(d.name);
  d.scenario.background_load = server::LoadSchedule()
                                   .add(0, Rate{0})
                                   .add(kOn, Rate{220})
                                   .add(45 * kSecond, Rate{0});
  d.disturbance_start = kOn;
  d.disturbance_end = 45 * kSecond;
  return d;
}

DisturbanceScenario device_churn() {
  DisturbanceScenario d;
  d.name = "device_churn";
  d.description =
      "three devices contend on one shared uplink; two exhaust their "
      "frame budgets mid-run and leave";
  d.scenario = base(d.name);
  d.scenario.shared_uplink_medium = true;
  device::DeviceConfig peer = d.scenario.devices[0];
  // ~55 s of frames at 30 fps, then the peer departs.
  peer.frame_limit = 1650;
  d.scenario.add_device(peer);
  d.scenario.add_device(peer);
  // Contention is present from the first frame: no clean baseline.
  d.disturbance_start = 0;
  d.disturbance_end = kOff;
  return d;
}

DisturbanceScenario fleet_rebalance() {
  DisturbanceScenario d;
  d.name = "fleet_rebalance";
  d.description =
      "two-server fleet with queue-depth admission: server 0 stalls under "
      "a 220 req/s burst mid-run and the placement policy re-homes its "
      "devices to server 1";
  d.scenario = base(d.name);
  device::DeviceConfig peer = d.scenario.devices[0];
  for (int i = 1; i < 4; ++i) {
    device::DeviceConfig extra = peer;
    extra.name = peer.name + "-" + std::to_string(i);
    d.scenario.add_device(std::move(extra));
  }

  core::FleetTopology fleet =
      core::FleetTopology::uniform(d.scenario.server, 2);
  server::AdmissionConfig admission;
  admission.policy = server::AdmissionPolicy::kQueueDepth;
  admission.max_queue_depth = 48;
  for (auto& spec : fleet.servers) {
    spec.config.admission = admission;
    spec.background = d.scenario.background;
  }
  // The stall hits server 0 only; server 1 stays clean, so re-homed
  // devices recover and the loop converges there.
  fleet.servers[0].background_load = server::LoadSchedule()
                                         .add(0, Rate{0})
                                         .add(kOn, Rate{220})
                                         .add(45 * kSecond, Rate{0});
  fleet.placement = fleet::least_loaded_placement();
  d.scenario.fleet = std::move(fleet);
  d.disturbance_start = kOn;
  d.disturbance_end = 45 * kSecond;
  return d;
}

DisturbanceScenario partition_determinism() {
  DisturbanceScenario d;
  d.name = "partition_determinism";
  d.description =
      "four devices in two shared-medium groups under a loss burst, run "
      "on the partitioned kernel; K=1 and K=4 must fingerprint-match";
  d.scenario = base(d.name, 60 * kSecond);
  device::DeviceConfig peer = d.scenario.devices[0];
  for (int i = 0; i < 3; ++i) d.scenario.add_device(peer);
  d.scenario.shared_uplink_medium = true;
  d.scenario.uplink_medium_groups = 2;
  d.scenario.partitions = 1;
  d.scenario.background_load = server::LoadSchedule::constant(Rate{40});
  const net::LinkConditions clean{Bandwidth::mbps(10.0), 0.0,
                                  2 * kMillisecond};
  net::LinkConditions lossy = clean;
  lossy.loss_probability = 0.10;
  net::NetemSchedule sched;
  sched.add(0, clean, "clean")
      .add(kOn, lossy, "loss-burst")
      .add(kOff, clean, "recovered");
  set_network(d.scenario, sched);
  d.disturbance_start = kOn;
  d.disturbance_end = kOff;
  d.compare_partitions = 4;
  return d;
}

}  // namespace

std::vector<DisturbanceScenario> default_suite() {
  return {loss_burst(),      bandwidth_collapse(), retry_storm(),
          server_overload(), server_stall(),       device_churn(),
          fleet_rebalance(), partition_determinism()};
}

DisturbanceScenario find_scenario(const std::string& name) {
  for (DisturbanceScenario& d : default_suite()) {
    if (d.name == name) return std::move(d);
  }
  throw std::invalid_argument("unknown invariants scenario '" + name +
                              "' (known: " + known_suite_names() + ")");
}

std::string known_suite_names() {
  std::string out;
  for (const DisturbanceScenario& d : default_suite()) {
    if (!out.empty()) out += ", ";
    out += d.name;
  }
  return out;
}

}  // namespace ff::invariants
