#pragma once

// Edge-device hardware profiles: the paper's three Raspberry Pis (Table II)
// expressed as local-inference rate tables plus a CPU-utilization model
// matching the §II-A measurement (50.2% local -> 22.3% offloaded).

#include <span>
#include <string_view>

#include "ff/models/model_spec.h"

namespace ff::models {

enum class DeviceId {
  kPi3B,      ///< Raspberry Pi 3B rev 1.2
  kPi4BR12,   ///< Raspberry Pi 4B rev 1.2
  kPi4BR14,   ///< Raspberry Pi 4B rev 1.4
};

struct DeviceProfile {
  DeviceId id;
  std::string_view name;
  int cpus;
  int clock_mhz;
  int memory_mib;
  /// Measured local rates from paper Table II (frames/second).
  double local_rate_mobilenet_v3_small;
  double local_rate_efficientnet_b0;

  /// Local inference rate Pl for any model. Rates for the two models in
  /// Table II are returned verbatim; others are derived via the models'
  /// relative local cost.
  [[nodiscard]] double local_rate(ModelId model) const;

  /// Mean local per-frame latency, seconds.
  [[nodiscard]] double local_latency_s(ModelId model) const {
    return 1.0 / local_rate(model);
  }
};

[[nodiscard]] const DeviceProfile& get_device(DeviceId id);
[[nodiscard]] std::span<const DeviceProfile> all_devices();
[[nodiscard]] DeviceId parse_device(std::string_view name);

/// Device CPU utilization model (fraction of total CPU). `local_busy` is
/// the local engine's busy fraction in [0,1]; `offload_fraction` is
/// Po / Fs in [0,1]. Calibrated to the paper's 50.2% / 22.3% endpoints.
[[nodiscard]] double device_cpu_utilization(double local_busy,
                                            double offload_fraction);

}  // namespace ff::models
