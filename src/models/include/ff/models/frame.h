#pragma once

// Frame payload model: what actually crosses the network when a frame is
// offloaded. The paper compresses frames with JPEG before sending (§II-D);
// here resolution and quality map to a byte count and an accuracy factor.

#include "ff/models/model_spec.h"
#include "ff/util/units.h"

namespace ff::models {

/// Capture/encode parameters for offloaded frames. The default captures at
/// 256x256/q85 -- slightly above the models' 224 native input, as the
/// paper suggests (§II-D) -- and compresses to ~29 KB, which places the
/// Table V bandwidth steps at "comfortable / intermediate / starved" for a
/// 30 fps stream exactly as in the paper's figures.
struct FrameSpec {
  int width{256};
  int height{256};
  int jpeg_quality{85};  ///< 1..100

  friend constexpr bool operator==(const FrameSpec&,
                                   const FrameSpec&) = default;
};

/// Size of the inference result payload returned by the server (class ids
/// plus scores).
inline constexpr std::int64_t kResultBytes = 320;

/// Compressed size of a frame. Uses an empirical JPEG bytes-per-pixel
/// curve: ~0.36 B/px at q75 (a 224x224 frame is ~18 KB, in line with the
/// paper's setting).
[[nodiscard]] Bytes frame_bytes(const FrameSpec& spec);

/// JPEG bytes-per-pixel at a quality setting (clamped to 1..100).
[[nodiscard]] double jpeg_bytes_per_pixel(int quality);

/// Effective top-1 accuracy when feeding the model a frame captured with
/// `spec` (§II-D: lower resolution / heavier compression costs accuracy,
/// larger input than native can help slightly for models with variable
/// input like EfficientNetB4).
[[nodiscard]] double effective_accuracy(const ModelSpec& model,
                                        const FrameSpec& spec);

/// Time to JPEG-encode a frame on the device (scales with pixel count);
/// part of the offload path's on-device cost.
[[nodiscard]] SimDuration encode_time(const FrameSpec& spec);

}  // namespace ff::models
