#pragma once

// Inference execution cost models. The paper runs TensorFlow; we replace
// the arithmetic with calibrated stochastic latency draws that reproduce
// the rates the paper measured (Table II locally, server saturation per
// Table VI).

#include "ff/models/device_profile.h"
#include "ff/models/model_spec.h"
#include "ff/util/rng.h"
#include "ff/util/units.h"

namespace ff::models {

/// Per-frame local (on-device) inference latency: lognormal around the
/// profile's mean with small OS/scheduler jitter.
class LocalLatencyModel {
 public:
  LocalLatencyModel(const DeviceProfile& device, ModelId model, Rng rng,
                    double jitter_sigma = 0.08);

  /// Draws the service time for one frame.
  [[nodiscard]] SimDuration sample();

  /// Deterministic mean service time.
  [[nodiscard]] SimDuration mean() const { return mean_; }

  /// Implied steady-state rate, frames/second.
  [[nodiscard]] double rate() const;

 private:
  SimDuration mean_;
  double sigma_;
  Rng rng_;
};

/// Batched GPU inference latency on the edge server:
/// latency(batch) = base + per_frame * batch, with multiplicative jitter.
class GpuBatchLatencyModel {
 public:
  GpuBatchLatencyModel(ModelId model, Rng rng, double jitter_sigma = 0.05);

  /// Draws the execution time of a batch of `batch_size` frames.
  [[nodiscard]] SimDuration sample(int batch_size);

  /// Deterministic mean batch time.
  [[nodiscard]] SimDuration mean(int batch_size) const;

  /// Steady-state throughput at this batch size, frames/second.
  [[nodiscard]] double throughput(int batch_size) const;

  [[nodiscard]] const ModelSpec& spec() const { return spec_; }

 private:
  const ModelSpec& spec_;
  double sigma_;
  Rng rng_;
};

}  // namespace ff::models
