#pragma once

// The classification model zoo from the paper (§II-C/D, Table III): the
// Keras models are replaced by cost models -- accuracy metadata plus the
// latency coefficients that drive the local and GPU execution simulators.

#include <span>
#include <string>
#include <string_view>

namespace ff::models {

enum class ModelId {
  kMobileNetV3Small,
  kMobileNetV3Large,
  kEfficientNetB0,
  kEfficientNetB4,
};

struct ModelSpec {
  ModelId id;
  std::string_view name;
  double top1_accuracy;        ///< Table III, ImageNet top-1 fraction
  int native_resolution;       ///< pre-trained input side, pixels
  /// GPU (edge server) batched-inference cost: latency(batch) =
  /// batch_base_ms + batch_per_frame_ms * batch. Coefficients are
  /// calibrated so the simulated server saturates near the request volumes
  /// of paper Table VI (see DESIGN.md).
  double batch_base_ms;
  double batch_per_frame_ms;
  /// Relative local CPU cost vs MobileNetV3Small (used to derive local
  /// rates for models absent from paper Table II).
  double relative_local_cost;
};

/// Spec for a model id; never fails.
[[nodiscard]] const ModelSpec& get_model(ModelId id);

/// All models, in Table III order.
[[nodiscard]] std::span<const ModelSpec> all_models();

/// Parses "mobilenet_v3_small", "efficientnet_b0", ... Throws
/// std::invalid_argument on unknown names.
[[nodiscard]] ModelId parse_model(std::string_view name);

[[nodiscard]] std::string_view model_name(ModelId id);

/// Steady-state GPU throughput at a given batch size, frames/second.
[[nodiscard]] double gpu_throughput(const ModelSpec& spec, int batch_size);

}  // namespace ff::models
