#pragma once

// Device power model (paper §II-A: "effective offloading leads to lower
// power usage on edge devices" -- the paper measures CPU share; this
// model turns utilization and radio activity into watts and joules so the
// energy benefit can be quantified per inference).

#include "ff/models/device_profile.h"
#include "ff/util/units.h"

namespace ff::models {

/// Electrical parameters of a Pi-class board with a Wi-Fi radio.
struct PowerProfile {
  double idle_w{2.3};        ///< board at idle, radio associated
  double cpu_full_w{4.2};    ///< additional draw at 100% CPU (all cores)
  double radio_tx_w{0.9};    ///< additional draw while transmitting
  double radio_rx_w{0.3};    ///< additional draw while receiving
};

/// Default profile for each device (larger boards draw more).
[[nodiscard]] PowerProfile default_power_profile(DeviceId id);

/// Instantaneous power draw in watts.
/// `cpu_utilization` in [0,1]; `tx_fraction` / `rx_fraction` = share of
/// time the radio spends transmitting/receiving.
[[nodiscard]] double power_draw_w(const PowerProfile& profile,
                                  double cpu_utilization, double tx_fraction,
                                  double rx_fraction);

/// Streaming energy integrator: feed (power, duration) pairs as the run
/// progresses and read joules at the end.
class EnergyMeter {
 public:
  /// Accumulates `power_w` held for `duration`.
  void accumulate(double power_w, SimDuration duration);

  [[nodiscard]] double joules() const { return joules_; }
  [[nodiscard]] SimDuration measured_time() const { return time_; }

  /// Mean power over everything accumulated so far (W).
  [[nodiscard]] double mean_power_w() const;

  /// Joules per unit of work, e.g. per successful inference.
  [[nodiscard]] double joules_per(std::uint64_t work_items) const;

  void reset();

 private:
  double joules_{0.0};
  SimDuration time_{0};
};

}  // namespace ff::models
