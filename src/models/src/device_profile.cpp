#include "ff/models/device_profile.h"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <string>

namespace ff::models {
namespace {

constexpr std::array<DeviceProfile, 3> kDevices{{
    // Paper Table II.
    {DeviceId::kPi3B, "pi3b", 4, 1200, 909, 5.5, 1.8},
    {DeviceId::kPi4BR12, "pi4b_r12", 4, 1500, 3789, 13.0, 2.5},
    {DeviceId::kPi4BR14, "pi4b_r14", 4, 1800, 7782, 13.4, 4.2},
}};

}  // namespace

double DeviceProfile::local_rate(ModelId model) const {
  switch (model) {
    case ModelId::kMobileNetV3Small:
      return local_rate_mobilenet_v3_small;
    case ModelId::kEfficientNetB0:
      return local_rate_efficientnet_b0;
    default: {
      // Scale from MobileNetV3Small via relative cost.
      const double base = local_rate_mobilenet_v3_small;
      const double cost = get_model(model).relative_local_cost;
      return base / cost;
    }
  }
}

const DeviceProfile& get_device(DeviceId id) {
  for (const auto& d : kDevices) {
    if (d.id == id) return d;
  }
  throw std::logic_error("get_device: unknown id");
}

std::span<const DeviceProfile> all_devices() { return kDevices; }

DeviceId parse_device(std::string_view name) {
  for (const auto& d : kDevices) {
    if (d.name == name) return d.id;
  }
  throw std::invalid_argument("parse_device: unknown device '" +
                              std::string(name) + "'");
}

double device_cpu_utilization(double local_busy, double offload_fraction) {
  local_busy = std::clamp(local_busy, 0.0, 1.0);
  offload_fraction = std::clamp(offload_fraction, 0.0, 1.0);
  // Fixed capture/decode floor + local inference cost + offload
  // encode/transmit cost; endpoints: (1, 0) -> 0.502, (0, 1) -> 0.223.
  constexpr double kFloor = 0.08;
  constexpr double kLocalFull = 0.422;
  constexpr double kOffloadFull = 0.143;
  return kFloor + kLocalFull * local_busy + kOffloadFull * offload_fraction;
}

}  // namespace ff::models
