#include "ff/models/frame.h"

#include <algorithm>
#include <cmath>

namespace ff::models {

double jpeg_bytes_per_pixel(int quality) {
  const double q = std::clamp(quality, 1, 100) / 100.0;
  // Smooth fit to libjpeg output sizes for photographic content:
  // q=50 -> ~0.19 B/px, q=75 -> ~0.36, q=90 -> ~0.50, q=100 -> ~0.60.
  return 0.05 + 0.55 * q * q;
}

Bytes frame_bytes(const FrameSpec& spec) {
  const double pixels = static_cast<double>(spec.width) * spec.height;
  const double bytes = pixels * jpeg_bytes_per_pixel(spec.jpeg_quality);
  return Bytes{static_cast<std::int64_t>(std::max(bytes, 64.0))};
}

double effective_accuracy(const ModelSpec& model, const FrameSpec& spec) {
  // Resolution factor: 1.0 at the model's native input, dropping as the
  // capture resolution falls below it; a mild bonus (<= +1.5 points
  // relative) above native where the model supports variable input.
  const double side = std::min(spec.width, spec.height);
  const double ratio = side / static_cast<double>(model.native_resolution);
  double resolution_factor = 1.0;
  if (ratio >= 1.0) {
    resolution_factor = std::min(1.0 + 0.015 * std::log2(ratio), 1.03);
  } else {
    // Accuracy decays roughly linearly with log-resolution under 1x.
    resolution_factor = std::max(1.0 + 0.18 * std::log2(ratio), 0.3);
  }

  // Compression factor: negligible above q~60, increasingly harmful below.
  const double q = std::clamp(spec.jpeg_quality, 1, 100) / 100.0;
  double compression_factor = 1.0;
  if (q < 0.6) compression_factor = std::max(1.0 - 0.45 * (0.6 - q) / 0.6, 0.4);

  return std::clamp(model.top1_accuracy * resolution_factor *
                        compression_factor,
                    0.0, 1.0);
}

SimDuration encode_time(const FrameSpec& spec) {
  // ~3 ms to encode 224x224 on a Pi-class CPU, scaling with pixel count.
  const double pixels = static_cast<double>(spec.width) * spec.height;
  const double ms = 3.0 * pixels / (224.0 * 224.0);
  return seconds_to_sim(ms / 1000.0);
}

}  // namespace ff::models
