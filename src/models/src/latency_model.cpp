#include "ff/models/latency_model.h"

#include <algorithm>
#include <cmath>

namespace ff::models {

LocalLatencyModel::LocalLatencyModel(const DeviceProfile& device, ModelId model,
                                     Rng rng, double jitter_sigma)
    : mean_(seconds_to_sim(device.local_latency_s(model))),
      sigma_(std::max(jitter_sigma, 0.0)),
      rng_(rng) {}

SimDuration LocalLatencyModel::sample() {
  if (sigma_ <= 0.0) return mean_;
  // Median chosen so the *mean* of the lognormal equals mean_.
  const double median =
      static_cast<double>(mean_) / std::exp(sigma_ * sigma_ / 2.0);
  const double v = rng_.lognormal(median, sigma_);
  return std::max<SimDuration>(static_cast<SimDuration>(v), 1);
}

double LocalLatencyModel::rate() const {
  return static_cast<double>(kSecond) / static_cast<double>(mean_);
}

GpuBatchLatencyModel::GpuBatchLatencyModel(ModelId model, Rng rng,
                                           double jitter_sigma)
    : spec_(get_model(model)), sigma_(std::max(jitter_sigma, 0.0)), rng_(rng) {}

SimDuration GpuBatchLatencyModel::mean(int batch_size) const {
  const double ms =
      spec_.batch_base_ms + spec_.batch_per_frame_ms * std::max(batch_size, 0);
  return seconds_to_sim(ms / 1000.0);
}

SimDuration GpuBatchLatencyModel::sample(int batch_size) {
  const SimDuration m = mean(batch_size);
  if (sigma_ <= 0.0) return m;
  const double median =
      static_cast<double>(m) / std::exp(sigma_ * sigma_ / 2.0);
  const double v = rng_.lognormal(median, sigma_);
  return std::max<SimDuration>(static_cast<SimDuration>(v), 1);
}

double GpuBatchLatencyModel::throughput(int batch_size) const {
  if (batch_size <= 0) return 0.0;
  return static_cast<double>(batch_size) * static_cast<double>(kSecond) /
         static_cast<double>(mean(batch_size));
}

}  // namespace ff::models
