#include "ff/models/model_spec.h"

#include <array>
#include <stdexcept>

namespace ff::models {
namespace {

constexpr std::array<ModelSpec, 4> kModels{{
    // Accuracies from paper Table III; resolutions from §II-D.
    {ModelId::kEfficientNetB0, "efficientnet_b0", 0.771, 224, 30.0, 7.0, 5.2},
    {ModelId::kEfficientNetB4, "efficientnet_b4", 0.829, 380, 50.0, 20.0, 30.0},
    {ModelId::kMobileNetV3Small, "mobilenet_v3_small", 0.674, 224, 25.0, 4.5,
     1.0},
    {ModelId::kMobileNetV3Large, "mobilenet_v3_large", 0.752, 224, 28.0, 6.0,
     2.6},
}};

}  // namespace

const ModelSpec& get_model(ModelId id) {
  for (const auto& m : kModels) {
    if (m.id == id) return m;
  }
  throw std::logic_error("get_model: unknown id");
}

std::span<const ModelSpec> all_models() { return kModels; }

ModelId parse_model(std::string_view name) {
  for (const auto& m : kModels) {
    if (m.name == name) return m.id;
  }
  throw std::invalid_argument("parse_model: unknown model '" +
                              std::string(name) + "'");
}

std::string_view model_name(ModelId id) { return get_model(id).name; }

double gpu_throughput(const ModelSpec& spec, int batch_size) {
  if (batch_size <= 0) return 0.0;
  const double batch_ms =
      spec.batch_base_ms + spec.batch_per_frame_ms * batch_size;
  return 1000.0 * static_cast<double>(batch_size) / batch_ms;
}

}  // namespace ff::models
