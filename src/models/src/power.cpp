#include "ff/models/power.h"

#include <algorithm>

namespace ff::models {

PowerProfile default_power_profile(DeviceId id) {
  switch (id) {
    case DeviceId::kPi3B:
      return {1.9, 3.3, 0.8, 0.3};
    case DeviceId::kPi4BR12:
      return {2.7, 4.5, 0.9, 0.3};
    case DeviceId::kPi4BR14:
      return {2.7, 4.7, 0.9, 0.3};
  }
  return {};
}

double power_draw_w(const PowerProfile& profile, double cpu_utilization,
                    double tx_fraction, double rx_fraction) {
  cpu_utilization = std::clamp(cpu_utilization, 0.0, 1.0);
  tx_fraction = std::clamp(tx_fraction, 0.0, 1.0);
  rx_fraction = std::clamp(rx_fraction, 0.0, 1.0);
  return profile.idle_w + profile.cpu_full_w * cpu_utilization +
         profile.radio_tx_w * tx_fraction + profile.radio_rx_w * rx_fraction;
}

void EnergyMeter::accumulate(double power_w, SimDuration duration) {
  if (duration <= 0) return;
  joules_ += power_w * sim_to_seconds(duration);
  time_ += duration;
}

double EnergyMeter::mean_power_w() const {
  if (time_ <= 0) return 0.0;
  return joules_ / sim_to_seconds(time_);
}

double EnergyMeter::joules_per(std::uint64_t work_items) const {
  if (work_items == 0) return 0.0;
  return joules_ / static_cast<double>(work_items);
}

void EnergyMeter::reset() {
  joules_ = 0.0;
  time_ = 0;
}

}  // namespace ff::models
