#pragma once

// Propagation/jitter delay processes, applied per packet on top of
// serialization time.

#include <memory>

#include "ff/util/rng.h"
#include "ff/util/units.h"

namespace ff::net {

class DelayModel {
 public:
  virtual ~DelayModel() = default;

  /// Per-packet one-way delay (>= 0).
  [[nodiscard]] virtual SimDuration sample(Rng& rng) = 0;

  /// Mean delay (for reporting).
  [[nodiscard]] virtual SimDuration mean() const = 0;
};

/// Fixed delay.
class ConstantDelay final : public DelayModel {
 public:
  explicit ConstantDelay(SimDuration delay);

  [[nodiscard]] SimDuration sample(Rng&) override { return delay_; }
  [[nodiscard]] SimDuration mean() const override { return delay_; }

 private:
  SimDuration delay_;
};

/// Normal jitter around a base delay, truncated at zero (NetEm's
/// delay+jitter knob).
class NormalDelay final : public DelayModel {
 public:
  NormalDelay(SimDuration mean, SimDuration jitter_stddev);

  [[nodiscard]] SimDuration sample(Rng& rng) override;
  [[nodiscard]] SimDuration mean() const override { return mean_; }

 private:
  SimDuration mean_, stddev_;
};

/// Heavy-tailed delay: lognormal around a median; models the occasional
/// multi-RTT Wi-Fi stall.
class LogNormalDelay final : public DelayModel {
 public:
  LogNormalDelay(SimDuration median, double sigma);

  [[nodiscard]] SimDuration sample(Rng& rng) override;
  [[nodiscard]] SimDuration mean() const override;

 private:
  SimDuration median_;
  double sigma_;
};

[[nodiscard]] std::unique_ptr<DelayModel> make_constant_delay(
    SimDuration delay);
[[nodiscard]] std::unique_ptr<DelayModel> make_normal_delay(SimDuration mean,
                                                            SimDuration jitter);
[[nodiscard]] std::unique_ptr<DelayModel> make_lognormal_delay(
    SimDuration median,
                                                               double sigma);

}  // namespace ff::net
