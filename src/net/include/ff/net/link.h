#pragma once

// Unidirectional emulated link: FIFO serialization at a configurable rate,
// bounded queue with tail drop, stochastic loss and propagation delay.
// This is the NetEm stand-in -- bandwidth/loss changes mid-run reproduce
// the paper's `tc netem rate/loss` reconfiguration (Table V).

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "ff/net/delay_model.h"
#include "ff/net/loss_model.h"
#include "ff/net/packet.h"
#include "ff/obs/trace.h"
#include "ff/sim/simulator.h"
#include "ff/util/stats.h"

namespace ff::sim {
class BoundaryEdge;
}  // namespace ff::sim

namespace ff::net {

class SharedMedium;

/// Dynamic link conditions (the NetEm knobs).
struct LinkConditions {
  Bandwidth bandwidth{Bandwidth::mbps(10.0)};
  double loss_probability{0.0};          ///< applied via BernoulliLoss
  SimDuration propagation_delay{2 * kMillisecond};
};

struct LinkConfig {
  std::string name{"link"};
  LinkConditions initial{};
  std::size_t queue_limit{256};          ///< packets; tail drop beyond
  SimDuration delay_jitter{0};           ///< stddev of normal jitter
};

struct LinkStats {
  std::uint64_t packets_offered{0};
  std::uint64_t packets_delivered{0};
  std::uint64_t packets_lost{0};         ///< random loss
  std::uint64_t packets_dropped_queue{0};///< tail drop
  std::uint64_t packets_purged{0};       ///< sender revoked stale packets
  std::int64_t bytes_delivered{0};
  StreamingStats queueing_delay_us{};    ///< enqueue -> start of service
  StreamingStats total_delay_us{};       ///< enqueue -> delivery
};

/// Ordering contract (what makes multi-link runs deterministic):
///
///  - Serialization is strictly FIFO per link; within one link, packets
///    enter service in send() order and no packet overtakes another.
///  - Packets that complete service at the same simulated time are
///    delivered in the kernel's (time, sequence) order, i.e. the order
///    their delivery events were scheduled -- which is serialization
///    completion order. No tie is ever broken by wall-clock, pointer
///    value, or container iteration order.
///  - When the link crosses a partition boundary (bind_boundary), the
///    delivery is routed through the edge's mailbox instead of being
///    scheduled directly; the partitioned driver re-establishes the same
///    (deliver time, post time, edge, FIFO) order canonically, so the
///    receiver observes an identical delivery sequence at every
///    partition count.
class Link {
 public:
  using DeliveryFn = std::function<void(const Packet&)>;

  /// `sim` must outlive the link.
  Link(sim::Simulator& sim, LinkConfig config);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Receiver callback invoked at delivery time.
  void set_receiver(DeliveryFn receiver) { receiver_ = std::move(receiver); }

  /// Offers a packet; false means tail-dropped (queue full).
  bool send(Packet packet);

  /// Applies new conditions to packets serialized from now on.
  void set_conditions(const LinkConditions& conditions);

  /// Replaces the random-loss process (e.g. Gilbert-Elliott); overrides the
  /// `loss_probability` of the current conditions.
  void set_loss_model(std::unique_ptr<LossModel> model);

  /// Removes still-queued packets of one message (the sender revoking
  /// frames whose deadline passed -- standard qdisc behaviour for a
  /// real-time video sender's own interface queue). The packet currently
  /// being serialized is not affected. Returns the number removed.
  std::size_t purge(std::uint64_t flow_id, std::uint64_t message_id);

  /// Attaches this link to a shared medium: serialization then requires
  /// an airtime grant, contending with the medium's other links. Must be
  /// called before any traffic. `medium` must outlive the link.
  void attach_medium(SharedMedium* medium);

  /// Called by the medium when airtime is granted; not for users.
  void medium_grant();

  /// Attaches a trace sink for drop/loss/purge events (nullptr detaches).
  /// Not owned.
  void attach_trace_sink(obs::TraceSink* sink) { sink_ = sink; }

  /// Routes deliveries through a cross-partition mailbox instead of the
  /// home simulator (nullptr restores direct scheduling). The edge's
  /// min_delay must not exceed this link's minimum propagation delay over
  /// the run -- that is the lookahead contract; BoundaryEdge::post asserts
  /// it per delivery. Sender-side state (queue, stats fields written
  /// before delivery, RNG) stays on the home simulator; only the delivery
  /// action executes in the destination partition. `edge` must outlive
  /// the link's traffic.
  void bind_boundary(sim::BoundaryEdge* edge) { boundary_ = edge; }

  /// Simulator this link serializes on (the sender side's partition).
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

  [[nodiscard]] const LinkConditions& conditions() const { return conditions_; }
  [[nodiscard]] const LinkStats& stats() const { return stats_; }
  [[nodiscard]] const std::string& name() const { return config_.name; }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  [[nodiscard]] bool busy() const { return busy_; }

 private:
  /// Key of the queued-data index: purge() targets one message of one flow.
  struct FlowMessageKey {
    std::uint64_t flow_id;
    std::uint64_t message_id;

    friend bool operator==(const FlowMessageKey&,
                           const FlowMessageKey&) = default;
  };
  struct FlowMessageKeyHash {
    std::size_t operator()(const FlowMessageKey& k) const {
      std::uint64_t h = k.flow_id * 0x9E3779B97F4A7C15ull;
      h ^= k.message_id + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
      return static_cast<std::size_t>(h);
    }
  };

  void start_service();
  void serve_front();
  void finish_service(Packet packet);
  /// Delivery body, run at `deliver_at` on the receiver side (directly on
  /// the home simulator, or in the destination partition when a boundary
  /// is bound). Touches only receiver-side stats fields.
  void deliver(const Packet& packet, SimTime deliver_at);

  sim::Simulator& sim_;
  LinkConfig config_;
  LinkConditions conditions_;
  std::unique_ptr<LossModel> loss_;
  std::unique_ptr<DelayModel> jitter_;
  Rng rng_;
  DeliveryFn receiver_;
  std::deque<Packet> queue_;
  /// Queued kData packets per (flow, message): lets purge() reject misses
  /// in O(1) and stop scanning at the last match, instead of walking the
  /// whole interface queue per cancelled frame (quadratic during the
  /// Fig. 3 recovery phase's mass deadline expiry).
  std::unordered_map<FlowMessageKey, std::uint32_t, FlowMessageKeyHash>
      queued_data_;
  bool busy_{false};
  SharedMedium* medium_{nullptr};
  sim::BoundaryEdge* boundary_{nullptr};
  LinkStats stats_;
  obs::TraceSink* sink_{nullptr};
};

}  // namespace ff::net
