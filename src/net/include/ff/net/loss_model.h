#pragma once

// Packet loss processes. Bernoulli matches NetEm's default random loss
// (what the paper injects); Gilbert-Elliott adds bursty wireless loss for
// the ablation benches.

#include <memory>

#include "ff/util/rng.h"

namespace ff::net {

class LossModel {
 public:
  virtual ~LossModel() = default;

  /// Returns true when the next packet should be dropped.
  [[nodiscard]] virtual bool drop(Rng& rng) = 0;

  /// Long-run expected loss fraction (for reporting).
  [[nodiscard]] virtual double expected_loss() const = 0;
};

/// Independent per-packet loss with fixed probability.
class BernoulliLoss final : public LossModel {
 public:
  explicit BernoulliLoss(double probability);

  [[nodiscard]] bool drop(Rng& rng) override;
  [[nodiscard]] double expected_loss() const override { return probability_; }

  void set_probability(double p);

 private:
  double probability_;
};

/// Two-state Markov (Gilbert-Elliott) loss: a good state with low loss and
/// a bad state with high loss, capturing wireless fade bursts.
class GilbertElliottLoss final : public LossModel {
 public:
  /// `p_good_to_bad` / `p_bad_to_good`: per-packet transition probabilities.
  GilbertElliottLoss(double p_good_to_bad, double p_bad_to_good,
                     double loss_good, double loss_bad);

  [[nodiscard]] bool drop(Rng& rng) override;
  [[nodiscard]] double expected_loss() const override;

  [[nodiscard]] bool in_bad_state() const { return bad_; }

 private:
  double p_gb_, p_bg_, loss_good_, loss_bad_;
  bool bad_{false};
};

[[nodiscard]] std::unique_ptr<LossModel> make_bernoulli_loss(
    double probability);
[[nodiscard]] std::unique_ptr<LossModel> make_gilbert_elliott_loss(
    double p_good_to_bad, double p_bad_to_good, double loss_good,
        double loss_bad);

}  // namespace ff::net
