#pragma once

// Scheduled link-condition changes: the in-simulator equivalent of the
// paper's NetEm scripting (Table V), applied to any number of links.

#include <string>
#include <vector>

#include "ff/net/link.h"
#include "ff/sim/simulator.h"

namespace ff::net {

/// One phase of a network schedule, active from `start` until the next
/// phase begins (the last phase runs forever).
struct NetemPhase {
  SimTime start{0};
  LinkConditions conditions{};
  std::string label;
};

class NetemSchedule {
 public:
  NetemSchedule() = default;
  explicit NetemSchedule(std::vector<NetemPhase> phases);

  /// Adds a phase; phases must be appended in increasing start order.
  NetemSchedule& add(SimTime start, LinkConditions conditions,
                     std::string label = "");

  [[nodiscard]] const std::vector<NetemPhase>& phases() const {
    return phases_;
  }
  [[nodiscard]] bool empty() const { return phases_.empty(); }

  /// Conditions in force at time `t` (first phase's conditions before it
  /// starts; default LinkConditions when the schedule is empty).
  [[nodiscard]] LinkConditions at(SimTime t) const;

  /// Index of the phase in force at `t` (0 when before the first phase).
  [[nodiscard]] std::size_t phase_index_at(SimTime t) const;

  /// Schedules `set_conditions` calls on every link at each phase start.
  /// Links must outlive the simulation run.
  void apply(sim::Simulator& sim, std::vector<Link*> links) const;

  /// Minimum propagation delay over all phases (SimDuration max when the
  /// schedule is empty -- callers fold in the links' initial conditions).
  /// This is the schedule's contribution to a partitioned run's lookahead:
  /// no delivery crosses a partition boundary faster than this.
  [[nodiscard]] SimDuration min_propagation_delay() const;

  /// The paper's Table V schedule. Bandwidth values are the table's
  /// 10/4/1 figures scaled by `bandwidth_unit` (defaults to Mbps -- see
  /// DESIGN.md "Unit note").
  [[nodiscard]] static NetemSchedule paper_table_v(
      Bandwidth bandwidth_unit = Bandwidth::mbps(1.0));

  /// Constant conditions from t=0.
  [[nodiscard]] static NetemSchedule constant(LinkConditions conditions);

  /// Fig. 2's scenario: ideal network, then `loss` starting at `at`.
  [[nodiscard]] static NetemSchedule loss_injection(SimTime at, double loss,
                                                    Bandwidth bandwidth);

 private:
  std::vector<NetemPhase> phases_;
};

}  // namespace ff::net
