#pragma once

// Wire unit of the network emulator. A "packet" here is one MTU-sized
// fragment of an application message (an offloaded frame or its result)
// or an acknowledgment.

#include <cstdint>

#include "ff/util/units.h"

namespace ff::net {

enum class PacketKind : std::uint8_t { kData, kAck };

/// Per-packet protocol overhead (IP + UDP + our framing), counted against
/// link bandwidth.
inline constexpr std::int64_t kHeaderBytes = 42;

/// Default MTU payload per fragment.
inline constexpr std::int64_t kDefaultMtuPayload = 1400;

struct Packet {
  std::uint64_t flow_id{0};       ///< demux key: which channel this belongs to
  std::uint64_t message_id{0};
  std::uint32_t fragment_index{0};
  std::uint32_t fragment_count{1};
  PacketKind kind{PacketKind::kData};
  Bytes size{Bytes{kHeaderBytes}};  ///< total on-wire size incl. header
  SimTime enqueued_at{0};           ///< set by the link for latency stats
};

}  // namespace ff::net
