#pragma once

// Shared wireless medium: links attached to the same medium contend for
// airtime -- only one may serialize at a time, granted FIFO. Models an
// access point shared by all devices (the paper shapes each Pi's
// interface independently; this ablation asks what changes when they
// share the channel instead).
//
// Ordering contract: grants are issued strictly in request order (FIFO
// deque), and requests are made from simulator events, so grant order is
// fully determined by the kernel's (time, sequence) event order -- never
// by pointer values or hash iteration. Partitioning note: the medium is
// plain mutable state shared by its links, so all links of one medium
// must live on the same simulator (the partitioned experiment builder
// co-locates each medium group in one partition).

#include <deque>
#include <string>

#include "ff/util/units.h"

namespace ff::net {

class Link;

class SharedMedium {
 public:
  explicit SharedMedium(std::string name = "medium") : name_(std::move(name)) {}

  SharedMedium(const SharedMedium&) = delete;
  SharedMedium& operator=(const SharedMedium&) = delete;

  /// A link with traffic asks for the channel; granted immediately when
  /// free, else queued FIFO. The link's `medium_grant()` is invoked on
  /// grant. A link must not request while active or already waiting.
  void request(Link* link);

  /// The active link finished one packet; the next waiter is granted.
  void release(Link* link);

  [[nodiscard]] bool busy() const { return active_ != nullptr; }
  [[nodiscard]] std::size_t waiting() const { return waiting_.size(); }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint64_t grants() const { return grants_; }

 private:
  void grant(Link* link);

  std::string name_;
  Link* active_{nullptr};
  std::deque<Link*> waiting_;
  std::uint64_t grants_{0};
};

}  // namespace ff::net
