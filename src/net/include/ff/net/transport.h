#pragma once

// Reliable message transport over lossy links.
//
// An offloaded frame is a message: it is fragmented into MTU packets, each
// retransmitted on an RTO until acknowledged. This is where NetEm-style
// loss turns into end-to-end latency inflation -- the mechanism behind the
// paper's network-induced timeouts (Tn).

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ff/net/link.h"
#include "ff/net/packet.h"
#include "ff/obs/trace.h"
#include "ff/sim/simulator.h"

namespace ff::net {

struct TransportConfig {
  std::int64_t mtu_payload{kDefaultMtuPayload};
  SimDuration rto{100 * kMillisecond};       ///< base retransmit timeout
  /// The RTO doubles per attempt (capped at rto << rto_backoff_cap):
  /// without backoff, retransmissions of still-live messages can exceed
  /// link capacity and keep it collapsed after conditions recover.
  int rto_backoff_cap{5};
  int max_retries{8};  ///< per fragment, before the message fails
  SimDuration reassembly_timeout{3 * kSecond};
  std::size_t completed_history{4096};       ///< dedupe window at the receiver
};

struct ChannelStats {
  std::uint64_t messages_sent{0};
  std::uint64_t sends_succeeded{0};   ///< fully acked at the sender
  std::uint64_t sends_failed{0};      ///< fragment retry budget exhausted
  std::uint64_t sends_cancelled{0};
  std::uint64_t messages_delivered{0};///< reassembled at the receiver
  std::uint64_t fragments_sent{0};    ///< includes retransmissions
  std::uint64_t retransmissions{0};
  std::uint64_t acks_received{0};
  std::uint64_t duplicate_fragments{0};
  std::uint64_t partials_expired{0};

  /// Accumulates another channel's counters (fleet transports report one
  /// logical uplink summed over their per-server paths).
  ChannelStats& operator+=(const ChannelStats& other) {
    messages_sent += other.messages_sent;
    sends_succeeded += other.sends_succeeded;
    sends_failed += other.sends_failed;
    sends_cancelled += other.sends_cancelled;
    messages_delivered += other.messages_delivered;
    fragments_sent += other.fragments_sent;
    retransmissions += other.retransmissions;
    acks_received += other.acks_received;
    duplicate_fragments += other.duplicate_fragments;
    partials_expired += other.partials_expired;
    return *this;
  }
};

/// One direction of reliable messaging: data packets ride `data_link`,
/// acks ride `ack_link`. The owner must route incoming packets to
/// `handle_data` / `handle_ack` (see DuplexPath).
///
/// Partitioning: the channel's two sides may live on different simulators
/// (taken from the links). Sender-side operations -- send, cancel, the
/// RTO timers, handle_ack -- execute on `data_link.simulator()`;
/// receiver-side operations -- handle_data, ack emission, reassembly GC
/// -- on `ack_link.simulator()`. The two sides touch disjoint state
/// (outbox vs inbox; disjoint ChannelStats fields), so a partitioned run
/// never races on a channel.
class ReliableChannel {
 public:
  /// Receiver-side delivery: (message_id, payload_bytes).
  using MessageFn = std::function<void(std::uint64_t, Bytes)>;
  /// Sender-side resolution: (message_id, success).
  using SendResultFn = std::function<void(std::uint64_t, bool)>;

  /// The sender side runs on `data_link.simulator()`, the receiver side
  /// on `ack_link.simulator()` (identical in unpartitioned runs).
  ReliableChannel(Link& data_link, Link& ack_link, std::uint64_t flow_id,
                  TransportConfig config, std::string name = "chan");

  ReliableChannel(const ReliableChannel&) = delete;
  ReliableChannel& operator=(const ReliableChannel&) = delete;

  void set_on_message(MessageFn fn) { on_message_ = std::move(fn); }
  void set_on_send_result(SendResultFn fn) { on_send_result_ = std::move(fn); }

  /// Sends a message of `payload` bytes. `message_id` must be unique per
  /// channel. Resolution arrives via the send-result callback.
  void send(std::uint64_t message_id, Bytes payload);

  /// Abandons retransmission for an in-flight message (e.g. its deadline
  /// passed). No send-result callback fires. No-op if unknown.
  void cancel(std::uint64_t message_id);

  /// True while the sender is still working on the message.
  [[nodiscard]] bool in_flight(std::uint64_t message_id) const;

  [[nodiscard]] std::uint64_t flow_id() const { return flow_id_; }
  [[nodiscard]] const ChannelStats& stats() const { return stats_; }
  [[nodiscard]] const TransportConfig& config() const { return config_; }

  /// Attaches a trace sink for retransmit/failure events (nullptr
  /// detaches). Not owned.
  void attach_trace_sink(obs::TraceSink* sink) { sink_ = sink; }

  /// Packet ingress, called by the demux that owns the links.
  void handle_data(const Packet& packet);
  void handle_ack(const Packet& packet);

 private:
  struct OutMessage {
    std::uint32_t fragment_count{0};
    Bytes payload{};
    std::vector<bool> acked;
    std::vector<int> retries;
    std::uint32_t acked_count{0};
  };

  struct InMessage {
    std::uint32_t fragment_count{0};
    std::vector<bool> received;
    std::uint32_t received_count{0};
    Bytes payload{};
    SimTime first_fragment_at{0};
  };

  void transmit_fragment(std::uint64_t message_id, std::uint32_t fragment,
                         int attempt);
  void arm_rto(std::uint64_t message_id, std::uint32_t fragment, int attempt);
  void send_ack(std::uint64_t message_id, std::uint32_t fragment,
                std::uint32_t fragment_count);
  void remember_completed(std::uint64_t message_id);
  void gc_partials();
  [[nodiscard]] Bytes fragment_wire_size(const OutMessage& m,
                                         std::uint32_t fragment) const;

  sim::Simulator& send_sim_;  ///< data_link's simulator: sender-side ops
  sim::Simulator& recv_sim_;  ///< ack_link's simulator: receiver-side ops
  Link& data_link_;
  Link& ack_link_;
  std::uint64_t flow_id_;
  TransportConfig config_;
  std::string name_;

  MessageFn on_message_;
  SendResultFn on_send_result_;

  std::unordered_map<std::uint64_t, OutMessage> outbox_;
  std::unordered_map<std::uint64_t, InMessage> inbox_;
  std::unordered_set<std::uint64_t> completed_;
  std::deque<std::uint64_t> completed_order_;
  ChannelStats stats_;
  obs::TraceSink* sink_{nullptr};
};

/// A <-> B duplex path: two links and two reliable channels (uplink A->B,
/// downlink B->A) with packet demuxing wired up.
class DuplexPath {
 public:
  DuplexPath(sim::Simulator& sim, LinkConfig forward, LinkConfig reverse,
             TransportConfig transport = {}, std::string name = "path");

  /// Partitioned form: the forward link (A's transmissions -- uplink data
  /// and downlink acks) serializes on `forward_sim`, the reverse link
  /// (B's transmissions) on `reverse_sim`. Bind each link to a boundary
  /// edge (Link::bind_boundary) to route deliveries across.
  DuplexPath(sim::Simulator& forward_sim, sim::Simulator& reverse_sim,
             LinkConfig forward, LinkConfig reverse,
             TransportConfig transport = {}, std::string name = "path");

  DuplexPath(const DuplexPath&) = delete;
  DuplexPath& operator=(const DuplexPath&) = delete;

  [[nodiscard]] Link& forward_link() { return forward_; }
  [[nodiscard]] Link& reverse_link() { return reverse_; }
  [[nodiscard]] ReliableChannel& uplink() { return uplink_; }
  [[nodiscard]] ReliableChannel& downlink() { return downlink_; }

  /// Applies conditions to both directions (NetEm shapes the interface,
  /// which affects both).
  void set_conditions(const LinkConditions& conditions);

  /// Both links, for NetemSchedule::apply.
  [[nodiscard]] std::vector<Link*> links() { return {&forward_, &reverse_}; }

  /// Attaches one trace sink to both links and both channels.
  void attach_trace_sink(obs::TraceSink* sink);

 private:
  Link forward_;
  Link reverse_;
  ReliableChannel uplink_;
  ReliableChannel downlink_;
};

}  // namespace ff::net
