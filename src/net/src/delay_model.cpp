#include "ff/net/delay_model.h"

#include <algorithm>
#include <cmath>

namespace ff::net {

ConstantDelay::ConstantDelay(SimDuration delay)
    : delay_(std::max<SimDuration>(delay, 0)) {}

NormalDelay::NormalDelay(SimDuration mean, SimDuration jitter_stddev)
    : mean_(std::max<SimDuration>(mean, 0)),
      stddev_(std::max<SimDuration>(jitter_stddev, 0)) {}

SimDuration NormalDelay::sample(Rng& rng) {
  const double v = rng.normal(static_cast<double>(mean_),
                              static_cast<double>(stddev_));
  return std::max<SimDuration>(static_cast<SimDuration>(v), 0);
}

LogNormalDelay::LogNormalDelay(SimDuration median, double sigma)
    : median_(std::max<SimDuration>(median, 1)), sigma_(std::max(sigma, 0.0)) {}

SimDuration LogNormalDelay::sample(Rng& rng) {
  const double v = rng.lognormal(static_cast<double>(median_), sigma_);
  return std::max<SimDuration>(static_cast<SimDuration>(v), 0);
}

SimDuration LogNormalDelay::mean() const {
  // E[lognormal(mu, sigma)] = exp(mu + sigma^2/2) with median = exp(mu).
  const double m =
      static_cast<double>(median_) * std::exp(sigma_ * sigma_ / 2.0);
  return static_cast<SimDuration>(m);
}

std::unique_ptr<DelayModel> make_constant_delay(SimDuration delay) {
  return std::make_unique<ConstantDelay>(delay);
}

std::unique_ptr<DelayModel> make_normal_delay(SimDuration mean,
                                              SimDuration jitter) {
  return std::make_unique<NormalDelay>(mean, jitter);
}

std::unique_ptr<DelayModel> make_lognormal_delay(SimDuration median,
                                                 double sigma) {
  return std::make_unique<LogNormalDelay>(median, sigma);
}

}  // namespace ff::net
