#include "ff/net/link.h"

#include <algorithm>
#include <utility>

#include "ff/net/shared_medium.h"
#include "ff/sim/partition.h"
#include "ff/util/logging.h"

namespace ff::net {

Link::Link(sim::Simulator& sim, LinkConfig config)
    : sim_(sim),
      config_(std::move(config)),
      conditions_(config_.initial),
      loss_(make_bernoulli_loss(conditions_.loss_probability)),
      jitter_(config_.delay_jitter > 0
                  ? make_normal_delay(0, config_.delay_jitter)
                  : nullptr),
      rng_(sim.make_rng("link/" + config_.name)) {}

bool Link::send(Packet packet) {
  ++stats_.packets_offered;
  if (queue_.size() >= config_.queue_limit) {
    ++stats_.packets_dropped_queue;
    FF_TRACE(config_.name) << "tail drop msg=" << packet.message_id
                           << " frag=" << packet.fragment_index;
    if (sink_) {
      sink_->emit(obs::TraceEvent(sim_.now(), obs::ev::kNetTailDrop,
                                  config_.name)
                      .with_id(packet.message_id)
                      .with("frag", packet.fragment_index));
    }
    return false;
  }
  packet.enqueued_at = sim_.now();
  if (packet.kind == PacketKind::kData) {
    ++queued_data_[FlowMessageKey{packet.flow_id, packet.message_id}];
  }
  queue_.push_back(packet);
  if (!busy_) start_service();
  return true;
}

void Link::set_conditions(const LinkConditions& conditions) {
  conditions_ = conditions;
  if (auto* bern = dynamic_cast<BernoulliLoss*>(loss_.get())) {
    bern->set_probability(conditions.loss_probability);
  }
}

void Link::set_loss_model(std::unique_ptr<LossModel> model) {
  loss_ = std::move(model);
}

std::size_t Link::purge(std::uint64_t flow_id, std::uint64_t message_id) {
  const auto indexed = queued_data_.find(FlowMessageKey{flow_id, message_id});
  if (indexed == queued_data_.end()) return 0;
  const std::size_t removed = indexed->second;
  const auto matches = [&](const Packet& p) {
    return p.flow_id == flow_id && p.message_id == message_id &&
           p.kind == PacketKind::kData;
  };
  // The index says exactly `removed` matches are queued; scan only up to
  // the last one (in deadline-expiry order that is near the queue front),
  // then compact that prefix in one pass.
  std::size_t remaining = removed;
  auto scan_end = queue_.begin();
  while (remaining > 0) {
    if (matches(*scan_end)) --remaining;
    ++scan_end;
  }
  queue_.erase(std::remove_if(queue_.begin(), scan_end, matches), scan_end);
  queued_data_.erase(indexed);
  stats_.packets_purged += removed;
  if (sink_) {
    sink_->emit(
        obs::TraceEvent(sim_.now(), obs::ev::kNetPurge, config_.name)
            .with_id(message_id)
            .with("packets", static_cast<double>(removed)));
  }
  return removed;
}

void Link::attach_medium(SharedMedium* medium) { medium_ = medium; }

void Link::medium_grant() { serve_front(); }

void Link::start_service() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  if (medium_) {
    // Contend for airtime; serve_front() runs on grant.
    medium_->request(this);
  } else {
    serve_front();
  }
}

void Link::serve_front() {
  // A purge may have emptied the queue while we waited for the grant.
  if (queue_.empty()) {
    if (medium_) medium_->release(this);
    busy_ = false;
    return;
  }
  Packet packet = queue_.front();
  queue_.pop_front();
  if (packet.kind == PacketKind::kData) {
    const auto it =
        queued_data_.find(FlowMessageKey{packet.flow_id, packet.message_id});
    if (it != queued_data_.end() && --it->second == 0) queued_data_.erase(it);
  }
  stats_.queueing_delay_us.add(
      static_cast<double>(sim_.now() - packet.enqueued_at));

  const SimDuration ser = conditions_.bandwidth.serialization_time(packet.size);
  sim_.schedule_in(ser, [this, packet] {
    if (medium_) medium_->release(this);
    finish_service(packet);
    start_service();
  });
}

void Link::finish_service(Packet packet) {
  if (loss_->drop(rng_)) {
    ++stats_.packets_lost;
    FF_TRACE(config_.name) << "loss msg=" << packet.message_id
                           << " frag=" << packet.fragment_index;
    if (sink_) {
      sink_->emit(obs::TraceEvent(sim_.now(), obs::ev::kNetLoss, config_.name)
                      .with_id(packet.message_id)
                      .with("frag", packet.fragment_index));
    }
    return;
  }
  SimDuration delay = conditions_.propagation_delay;
  if (jitter_) delay += jitter_->sample(rng_);
  const SimTime deliver_at = sim_.now() + std::max<SimDuration>(delay, 0);
  if (boundary_ != nullptr) {
    boundary_->post(sim_.now(), deliver_at,
                    sim::InlineTask([this, packet, deliver_at] {
                      deliver(packet, deliver_at);
                    }));
    return;
  }
  sim_.schedule_at(deliver_at, [this, packet, deliver_at] {
    deliver(packet, deliver_at);
  });
}

void Link::deliver(const Packet& packet, SimTime deliver_at) {
  ++stats_.packets_delivered;
  stats_.bytes_delivered += packet.size.count;
  stats_.total_delay_us.add(
      static_cast<double>(deliver_at - packet.enqueued_at));
  if (receiver_) receiver_(packet);
}

}  // namespace ff::net
