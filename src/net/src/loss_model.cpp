#include "ff/net/loss_model.h"

#include <algorithm>
#include <stdexcept>

namespace ff::net {

BernoulliLoss::BernoulliLoss(double probability)
    : probability_(std::clamp(probability, 0.0, 1.0)) {}

bool BernoulliLoss::drop(Rng& rng) { return rng.bernoulli(probability_); }

void BernoulliLoss::set_probability(double p) {
  probability_ = std::clamp(p, 0.0, 1.0);
}

GilbertElliottLoss::GilbertElliottLoss(double p_good_to_bad,
                                       double p_bad_to_good,
                                       double loss_good, double loss_bad)
    : p_gb_(std::clamp(p_good_to_bad, 0.0, 1.0)),
      p_bg_(std::clamp(p_bad_to_good, 0.0, 1.0)),
      loss_good_(std::clamp(loss_good, 0.0, 1.0)),
      loss_bad_(std::clamp(loss_bad, 0.0, 1.0)) {}

bool GilbertElliottLoss::drop(Rng& rng) {
  if (bad_) {
    if (rng.bernoulli(p_bg_)) bad_ = false;
  } else {
    if (rng.bernoulli(p_gb_)) bad_ = true;
  }
  return rng.bernoulli(bad_ ? loss_bad_ : loss_good_);
}

double GilbertElliottLoss::expected_loss() const {
  const double denom = p_gb_ + p_bg_;
  if (denom <= 0.0) return loss_good_;
  const double frac_bad = p_gb_ / denom;
  return loss_bad_ * frac_bad + loss_good_ * (1.0 - frac_bad);
}

std::unique_ptr<LossModel> make_bernoulli_loss(double probability) {
  return std::make_unique<BernoulliLoss>(probability);
}

std::unique_ptr<LossModel> make_gilbert_elliott_loss(double p_good_to_bad,
                                                     double p_bad_to_good,
                                                     double loss_good,
                                                     double loss_bad) {
  return std::make_unique<GilbertElliottLoss>(p_good_to_bad, p_bad_to_good,
                                              loss_good, loss_bad);
}

}  // namespace ff::net
