#include "ff/net/netem.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

namespace ff::net {

NetemSchedule::NetemSchedule(std::vector<NetemPhase> phases)
    : phases_(std::move(phases)) {
  for (std::size_t i = 1; i < phases_.size(); ++i) {
    if (phases_[i].start < phases_[i - 1].start) {
      throw std::invalid_argument("NetemSchedule: phases out of order");
    }
  }
}

NetemSchedule& NetemSchedule::add(SimTime start, LinkConditions conditions,
                                  std::string label) {
  if (!phases_.empty() && start < phases_.back().start) {
    throw std::invalid_argument("NetemSchedule: phases out of order");
  }
  phases_.push_back(NetemPhase{start, conditions, std::move(label)});
  return *this;
}

LinkConditions NetemSchedule::at(SimTime t) const {
  if (phases_.empty()) return LinkConditions{};
  return phases_[phase_index_at(t)].conditions;
}

std::size_t NetemSchedule::phase_index_at(SimTime t) const {
  std::size_t idx = 0;
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    if (phases_[i].start <= t) idx = i;
  }
  return idx;
}

void NetemSchedule::apply(sim::Simulator& sim, std::vector<Link*> links) const {
  for (const auto& phase : phases_) {
    sim.schedule_at(phase.start, [links, conditions = phase.conditions] {
      for (Link* link : links) link->set_conditions(conditions);
    });
  }
}

SimDuration NetemSchedule::min_propagation_delay() const {
  SimDuration floor = std::numeric_limits<SimDuration>::max();
  for (const auto& phase : phases_) {
    floor = std::min(floor, phase.conditions.propagation_delay);
  }
  return floor;
}

NetemSchedule NetemSchedule::paper_table_v(Bandwidth bandwidth_unit) {
  const auto bw = [&](double units) {
    return Bandwidth{bandwidth_unit.bits_per_second * units};
  };
  NetemSchedule s;
  s.add(0, {bw(10), 0.00, 2 * kMillisecond}, "10u 0%");
  s.add(30 * kSecond, {bw(4), 0.00, 2 * kMillisecond}, "4u 0%");
  s.add(45 * kSecond, {bw(1), 0.00, 2 * kMillisecond}, "1u 0%");
  s.add(60 * kSecond, {bw(10), 0.00, 2 * kMillisecond}, "10u 0%");
  s.add(90 * kSecond, {bw(10), 0.07, 2 * kMillisecond}, "10u 7%");
  s.add(105 * kSecond, {bw(4), 0.07, 2 * kMillisecond}, "4u 7%");
  return s;
}

NetemSchedule NetemSchedule::constant(LinkConditions conditions) {
  NetemSchedule s;
  s.add(0, conditions, "constant");
  return s;
}

NetemSchedule NetemSchedule::loss_injection(SimTime at, double loss,
                                            Bandwidth bandwidth) {
  NetemSchedule s;
  s.add(0, {bandwidth, 0.0, 2 * kMillisecond}, "clean");
  s.add(at, {bandwidth, loss, 2 * kMillisecond}, "lossy");
  return s;
}

}  // namespace ff::net
