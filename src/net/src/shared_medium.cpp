#include "ff/net/shared_medium.h"

#include <cassert>

#include "ff/net/link.h"

namespace ff::net {

void SharedMedium::request(Link* link) {
  if (active_ == nullptr) {
    grant(link);
  } else {
    assert(active_ != link);
    waiting_.push_back(link);
  }
}

void SharedMedium::release(Link* link) {
  assert(active_ == link);
  (void)link;
  active_ = nullptr;
  if (!waiting_.empty()) {
    Link* next = waiting_.front();
    waiting_.pop_front();
    grant(next);
  }
}

void SharedMedium::grant(Link* link) {
  active_ = link;
  ++grants_;
  link->medium_grant();
}

}  // namespace ff::net
