#include "ff/net/transport.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "ff/util/logging.h"

namespace ff::net {

ReliableChannel::ReliableChannel(Link& data_link, Link& ack_link,
                                 std::uint64_t flow_id, TransportConfig config,
                                 std::string name)
    : send_sim_(data_link.simulator()),
      recv_sim_(ack_link.simulator()),
      data_link_(data_link),
      ack_link_(ack_link),
      flow_id_(flow_id),
      config_(config),
      name_(std::move(name)) {}

void ReliableChannel::send(std::uint64_t message_id, Bytes payload) {
  assert(outbox_.find(message_id) == outbox_.end());
  ++stats_.messages_sent;

  OutMessage m;
  m.payload = payload;
  const std::int64_t mtu = std::max<std::int64_t>(config_.mtu_payload, 1);
  m.fragment_count = static_cast<std::uint32_t>(
      std::max<std::int64_t>((payload.count + mtu - 1) / mtu, 1));
  m.acked.assign(m.fragment_count, false);
  m.retries.assign(m.fragment_count, 0);
  const std::uint32_t count = m.fragment_count;
  outbox_.emplace(message_id, std::move(m));

  for (std::uint32_t f = 0; f < count; ++f) {
    transmit_fragment(message_id, f, 0);
  }
}

Bytes ReliableChannel::fragment_wire_size(const OutMessage& m,
                                          std::uint32_t fragment) const {
  const std::int64_t mtu = std::max<std::int64_t>(config_.mtu_payload, 1);
  std::int64_t chunk = mtu;
  if (fragment + 1 == m.fragment_count) {
    chunk = m.payload.count - mtu * (m.fragment_count - 1);
    chunk = std::clamp<std::int64_t>(chunk, 1, mtu);
  }
  return Bytes{chunk + kHeaderBytes};
}

void ReliableChannel::transmit_fragment(std::uint64_t message_id,
                                        std::uint32_t fragment, int attempt) {
  const auto it = outbox_.find(message_id);
  if (it == outbox_.end() || it->second.acked[fragment]) return;

  Packet p;
  p.flow_id = flow_id_;
  p.message_id = message_id;
  p.fragment_index = fragment;
  p.fragment_count = it->second.fragment_count;
  p.kind = PacketKind::kData;
  p.size = fragment_wire_size(it->second, fragment);

  ++stats_.fragments_sent;
  if (attempt > 0) {
    ++stats_.retransmissions;
    if (sink_) {
      sink_->emit(
          obs::TraceEvent(send_sim_.now(), obs::ev::kNetRetransmit, name_)
              .with_id(message_id)
              .with("frag", fragment)
              .with("attempt", attempt));
    }
  }
  // A tail drop behaves exactly like random loss: the RTO repairs it.
  (void)data_link_.send(p);
  arm_rto(message_id, fragment, attempt);
}

void ReliableChannel::arm_rto(std::uint64_t message_id, std::uint32_t fragment,
                              int attempt) {
  const int shift = std::min(attempt, config_.rto_backoff_cap);
  const SimDuration rto = config_.rto << shift;
  send_sim_.schedule_in(rto, [this, message_id, fragment, attempt] {
    const auto it = outbox_.find(message_id);
    if (it == outbox_.end() || it->second.acked[fragment]) return;
    if (it->second.retries[fragment] >= config_.max_retries) {
      ++stats_.sends_failed;
      FF_DEBUG(name_) << "message " << message_id << " failed (fragment "
                      << fragment << " exhausted retries)";
      if (sink_) {
        sink_->emit(
            obs::TraceEvent(send_sim_.now(), obs::ev::kNetSendFailed, name_)
                .with_id(message_id)
                .with("frag", fragment));
      }
      outbox_.erase(it);
      (void)data_link_.purge(flow_id_, message_id);
      if (on_send_result_) on_send_result_(message_id, false);
      return;
    }
    ++it->second.retries[fragment];
    transmit_fragment(message_id, fragment, attempt + 1);
  });
}

void ReliableChannel::cancel(std::uint64_t message_id) {
  if (outbox_.erase(message_id) > 0) {
    ++stats_.sends_cancelled;
    // Revoke the message's unsent fragments from our own interface queue:
    // a stale frame must not starve live ones.
    (void)data_link_.purge(flow_id_, message_id);
  }
}

bool ReliableChannel::in_flight(std::uint64_t message_id) const {
  return outbox_.find(message_id) != outbox_.end();
}

void ReliableChannel::handle_ack(const Packet& packet) {
  ++stats_.acks_received;
  const auto it = outbox_.find(packet.message_id);
  if (it == outbox_.end()) return;
  OutMessage& m = it->second;
  if (packet.fragment_index >= m.fragment_count) return;
  if (m.acked[packet.fragment_index]) return;
  m.acked[packet.fragment_index] = true;
  ++m.acked_count;
  if (m.acked_count == m.fragment_count) {
    ++stats_.sends_succeeded;
    outbox_.erase(it);
    // Drop superseded retransmissions still sitting in the queue.
    (void)data_link_.purge(flow_id_, packet.message_id);
    if (on_send_result_) on_send_result_(packet.message_id, true);
  }
}

void ReliableChannel::handle_data(const Packet& packet) {
  // Always ack, even duplicates/late fragments: the sender may have missed
  // an earlier ack.
  send_ack(packet.message_id, packet.fragment_index, packet.fragment_count);

  if (completed_.count(packet.message_id)) {
    ++stats_.duplicate_fragments;
    return;
  }

  auto [it, inserted] = inbox_.try_emplace(packet.message_id);
  InMessage& m = it->second;
  if (inserted) {
    m.fragment_count = packet.fragment_count;
    m.received.assign(m.fragment_count, false);
    m.first_fragment_at = recv_sim_.now();
    gc_partials();
  }
  if (packet.fragment_index >= m.fragment_count ||
      m.received[packet.fragment_index]) {
    ++stats_.duplicate_fragments;
    return;
  }
  m.received[packet.fragment_index] = true;
  ++m.received_count;
  m.payload =
      m.payload +
      Bytes{std::max<std::int64_t>(packet.size.count - kHeaderBytes, 0)};

  if (m.received_count == m.fragment_count) {
    const Bytes payload = m.payload;
    const std::uint64_t id = packet.message_id;
    inbox_.erase(it);
    remember_completed(id);
    ++stats_.messages_delivered;
    if (on_message_) on_message_(id, payload);
  }
}

void ReliableChannel::send_ack(std::uint64_t message_id, std::uint32_t fragment,
                               std::uint32_t fragment_count) {
  Packet ack;
  ack.flow_id = flow_id_;
  ack.message_id = message_id;
  ack.fragment_index = fragment;
  ack.fragment_count = fragment_count;
  ack.kind = PacketKind::kAck;
  ack.size = Bytes{kHeaderBytes + 8};
  (void)ack_link_.send(ack);
}

void ReliableChannel::remember_completed(std::uint64_t message_id) {
  completed_.insert(message_id);
  completed_order_.push_back(message_id);
  while (completed_order_.size() > config_.completed_history) {
    completed_.erase(completed_order_.front());
    completed_order_.pop_front();
  }
}

void ReliableChannel::gc_partials() {
  const SimTime cutoff = recv_sim_.now() - config_.reassembly_timeout;
  for (auto it = inbox_.begin(); it != inbox_.end();) {
    if (it->second.first_fragment_at < cutoff) {
      ++stats_.partials_expired;
      it = inbox_.erase(it);
    } else {
      ++it;
    }
  }
}

DuplexPath::DuplexPath(sim::Simulator& sim, LinkConfig forward,
                       LinkConfig reverse, TransportConfig transport,
                       std::string name)
    : DuplexPath(sim, sim, std::move(forward), std::move(reverse), transport,
                 std::move(name)) {}

DuplexPath::DuplexPath(sim::Simulator& forward_sim, sim::Simulator& reverse_sim,
                       LinkConfig forward, LinkConfig reverse,
                       TransportConfig transport, std::string name)
    : forward_(forward_sim, std::move(forward)),
      reverse_(reverse_sim, std::move(reverse)),
      uplink_(forward_, reverse_, 0, transport, name + "/up"),
      downlink_(reverse_, forward_, 1, transport, name + "/down") {
  // Forward link carries uplink data and downlink acks.
  forward_.set_receiver([this](const Packet& p) {
    if (p.kind == PacketKind::kData) {
      uplink_.handle_data(p);
    } else {
      downlink_.handle_ack(p);
    }
  });
  // Reverse link carries downlink data and uplink acks.
  reverse_.set_receiver([this](const Packet& p) {
    if (p.kind == PacketKind::kData) {
      downlink_.handle_data(p);
    } else {
      uplink_.handle_ack(p);
    }
  });
}

void DuplexPath::set_conditions(const LinkConditions& conditions) {
  forward_.set_conditions(conditions);
  reverse_.set_conditions(conditions);
}

void DuplexPath::attach_trace_sink(obs::TraceSink* sink) {
  forward_.attach_trace_sink(sink);
  reverse_.attach_trace_sink(sink);
  uplink_.attach_trace_sink(sink);
  downlink_.attach_trace_sink(sink);
}

}  // namespace ff::net
