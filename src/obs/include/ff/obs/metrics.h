#pragma once

// Named metrics with label support: counters, gauges and streaming
// distributions registered once and updated by cheap inline calls.
// Lookup (name + labels -> metric) happens at registration; hot paths
// hold the returned reference, so recording is an increment. Snapshots
// and JSON export serve benches, `ffctl --metrics-out=`, and regression
// tooling.

#include <cstdint>
#include <deque>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ff/util/stats.h"

namespace ff::obs {

/// Metric labels as ordered key/value pairs, e.g. {{"device","pi-1"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricKind { kCounter, kGauge, kDistribution };

[[nodiscard]] std::string_view metric_kind_name(MetricKind kind);

/// Monotonically increasing count.
class Counter {
 public:
  void add(double delta = 1.0) { value_ += delta; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_{0.0};
};

/// Last-written value.
class Gauge {
 public:
  void set(double value) { value_ = value; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_{0.0};
};

/// Streaming summary of observed values: count/mean/min/max plus P²
/// quantile estimates at p50/p95/p99.
class Distribution {
 public:
  Distribution() : p50_(0.5), p95_(0.95), p99_(0.99) {}

  void observe(double value) {
    stats_.add(value);
    p50_.add(value);
    p95_.add(value);
    p99_.add(value);
  }

  [[nodiscard]] std::size_t count() const { return stats_.count(); }
  [[nodiscard]] double mean() const { return stats_.mean(); }
  [[nodiscard]] double min() const { return stats_.min(); }
  [[nodiscard]] double max() const { return stats_.max(); }
  [[nodiscard]] double p50() const { return p50_.value(); }
  [[nodiscard]] double p95() const { return p95_.value(); }
  [[nodiscard]] double p99() const { return p99_.value(); }

 private:
  StreamingStats stats_;
  P2Quantile p50_;
  P2Quantile p95_;
  P2Quantile p99_;
};

/// Point-in-time value of one metric (all kinds flattened).
struct MetricSnapshot {
  std::string name;
  Labels labels;
  MetricKind kind{MetricKind::kCounter};
  double value{0.0};  ///< counter/gauge value; distribution mean
  // Distribution-only summary fields.
  std::uint64_t count{0};
  double min{0.0};
  double max{0.0};
  double p50{0.0};
  double p95{0.0};
  double p99{0.0};
};

/// Registry of metrics keyed by (name, labels). Registration returns a
/// stable reference (storage is a deque; references never move), so call
/// sites resolve once and update for free afterwards. Re-registering the
/// same (name, labels, kind) returns the existing metric; reusing a key
/// with a different kind throws std::invalid_argument.
///
/// Thread-safety: externally synchronized -- the registry owns no mutex
/// by design (the hot path is a bare counter increment). Each experiment
/// runs on one thread and owns its registry; the sweep engine updates
/// its shared registry from the calling thread only, never from pool
/// workers (see SweepConfig::metrics). Code that ever needs concurrent
/// registration must wrap the registry the way SynchronizedTraceSink
/// wraps a TraceSink, with the wrapper's mutex annotated via
/// ff/util/thread_annotations.h.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] Counter& counter(std::string_view name, Labels labels = {});
  [[nodiscard]] Gauge& gauge(std::string_view name, Labels labels = {});
  [[nodiscard]] Distribution& distribution(std::string_view name,
                                           Labels labels = {});

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Flattened view of every registered metric, in registration order.
  [[nodiscard]] std::vector<MetricSnapshot> snapshot() const;

  /// One JSON document: {"metrics":[{...},...]}.
  void write_json(std::ostream& os) const;

  /// Writes the JSON document to `path`; throws std::runtime_error on
  /// failure.
  void write_json_file(const std::string& path) const;

 private:
  struct Entry {
    std::string name;
    Labels labels;
    MetricKind kind;
    Counter counter;
    Gauge gauge;
    Distribution distribution;
  };

  Entry& find_or_create(std::string_view name, Labels labels, MetricKind kind);

  std::deque<Entry> entries_;  ///< deque: references stay valid across growth
  std::unordered_map<std::string, std::size_t> index_;
};

}  // namespace ff::obs
