#pragma once

// Structured tracing: components emit typed span events (per-frame
// lifecycle, per-tick controller decisions, transport retransmissions,
// server batching) into a TraceSink. Sinks are attached by pointer and
// every emit site is guarded by a null check, so the disabled path costs
// one predictable branch -- hot simulation loops pay nothing for the
// machinery when no sink is attached.

#include <array>
#include <cstdint>
#include <fstream>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "ff/util/sync.h"
#include "ff/util/thread_annotations.h"
#include "ff/util/units.h"

namespace ff::obs {

/// Stable wire names for event types. Consumers (tests, regression
/// tooling, external plotting) key on these strings; treat them as API.
namespace ev {
// Device-side per-frame lifecycle.
inline constexpr std::string_view kFrameCaptured = "frame.captured";
inline constexpr std::string_view kFrameRoutedLocal = "frame.routed_local";
inline constexpr std::string_view kFrameRoutedOffload = "frame.routed_offload";
inline constexpr std::string_view kFrameLocalCompleted =
    "frame.local_completed";
inline constexpr std::string_view kFrameLocalDropped = "frame.local_dropped";
inline constexpr std::string_view kFrameOffloadSent = "frame.offload_sent";
inline constexpr std::string_view kFrameOffloadSuccess =
    "frame.offload_success";
inline constexpr std::string_view kFrameTimeoutNetwork =
    "frame.timeout_network";
inline constexpr std::string_view kFrameTimeoutLoad = "frame.timeout_load";
// Transport / link events.
inline constexpr std::string_view kNetRetransmit = "net.retransmit";
inline constexpr std::string_view kNetSendFailed = "net.send_failed";
inline constexpr std::string_view kNetTailDrop = "net.tail_drop";
inline constexpr std::string_view kNetLoss = "net.loss";
inline constexpr std::string_view kNetPurge = "net.purge";
// Server batching lifecycle.
inline constexpr std::string_view kServerBatchStart = "server.batch_start";
inline constexpr std::string_view kServerBatchDone = "server.batch_done";
inline constexpr std::string_view kServerComplete = "server.complete";
inline constexpr std::string_view kServerReject = "server.reject";
inline constexpr std::string_view kServerAdmissionReject =
    "server.admission_reject";
// Controller decisions.
inline constexpr std::string_view kControlTick = "ctl.tick";
// Sweep engine lifecycle (ff::sweep).
inline constexpr std::string_view kSweepStart = "sweep.start";
inline constexpr std::string_view kSweepPoint = "sweep.point";
inline constexpr std::string_view kSweepDone = "sweep.done";
}  // namespace ev

/// One span event. Built inline at the emit site; `type` must be a
/// string with static storage (use the ev:: constants) and `source` must
/// outlive the emit call (component names do).
struct TraceEvent {
  static constexpr std::size_t kMaxFields = 8;

  struct Field {
    std::string_view key;
    double value{0.0};
  };

  SimTime time{0};
  std::string_view type{};
  std::string_view source{};
  std::uint64_t id{0};
  bool has_id{false};
  std::string_view detail_key{};   ///< optional single string attribute
  std::string_view detail_value{};
  std::array<Field, kMaxFields> fields{};
  std::size_t field_count{0};

  TraceEvent(SimTime t, std::string_view event_type, std::string_view src)
      : time(t), type(event_type), source(src) {}

  TraceEvent& with_id(std::uint64_t event_id) {
    id = event_id;
    has_id = true;
    return *this;
  }

  TraceEvent& with(std::string_view key, double value) {
    if (field_count < kMaxFields) fields[field_count++] = {key, value};
    return *this;
  }

  TraceEvent& with_detail(std::string_view key, std::string_view value) {
    detail_key = key;
    detail_value = value;
    return *this;
  }

  /// Value of a numeric field, or `fallback` if absent (test helper).
  [[nodiscard]] double field(std::string_view key, double fallback = 0.0) const;
};

/// Receiver of trace events. Implementations must tolerate events of any
/// type: new instrumentation points may appear without sink changes.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void emit(const TraceEvent& event) = 0;
};

/// Discards everything; for overhead measurement of the emit path itself.
class NullTraceSink final : public TraceSink {
 public:
  void emit(const TraceEvent&) override { ++events_; }
  [[nodiscard]] std::uint64_t events_seen() const { return events_; }

 private:
  std::uint64_t events_{0};
};

/// Writes one JSON object per event (JSONL). Schema:
///   {"t":<seconds>,"type":"...","src":"...","id":N,"<k>":<v>,...}
/// `id` appears only when the event has one; the optional string detail
/// appears as "<detail_key>":"<detail_value>".
class JsonlTraceSink final : public TraceSink {
 public:
  /// Writes to an externally owned stream.
  explicit JsonlTraceSink(std::ostream& os);

  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit JsonlTraceSink(const std::string& path);

  JsonlTraceSink(const JsonlTraceSink&) = delete;
  JsonlTraceSink& operator=(const JsonlTraceSink&) = delete;

  void emit(const TraceEvent& event) override;
  void flush();

  [[nodiscard]] std::uint64_t events_written() const { return events_; }

 private:
  std::ofstream file_;
  std::ostream* os_;
  std::uint64_t events_{0};
};

/// Broadcasts to several sinks (none owned); lets a CSV FrameTracer and a
/// JSONL export observe the same run.
class FanoutTraceSink final : public TraceSink {
 public:
  void add(TraceSink* sink) {
    if (sink != nullptr) sinks_.push_back(sink);
  }
  [[nodiscard]] bool empty() const { return sinks_.empty(); }
  void emit(const TraceEvent& event) override {
    for (TraceSink* s : sinks_) s->emit(event);
  }

 private:
  std::vector<TraceSink*> sinks_;
};

/// Serializes emits into a wrapped sink (not owned). TraceSink
/// implementations are single-threaded by contract; wrap one in this when
/// several experiments running on pool workers must share it (the sweep
/// engine does this for SweepConfig::trace_experiments). Event order
/// across threads is whatever the mutex arbitration yields; each event is
/// delivered intact.
class SynchronizedTraceSink final : public TraceSink {
 public:
  explicit SynchronizedTraceSink(TraceSink& inner) : inner_(&inner) {}

  void emit(const TraceEvent& event) override {
    const MutexLock lock(mutex_);
    inner_->emit(event);
  }

 private:
  Mutex mutex_;
  /// The pointer itself is immutable; the wrapped sink it designates is
  /// single-threaded by contract and must only be reached under mutex_.
  TraceSink* const inner_ FF_PT_GUARDED_BY(mutex_);
};

/// In-memory sink retaining every event; for tests.
class CollectingTraceSink final : public TraceSink {
 public:
  struct Stored {
    SimTime time;
    std::string type;
    std::string source;
    std::uint64_t id;
    bool has_id;
    std::vector<std::pair<std::string, double>> fields;
  };

  void emit(const TraceEvent& event) override;

  [[nodiscard]] const std::vector<Stored>& events() const { return events_; }
  [[nodiscard]] std::size_t count(std::string_view type) const;
  void clear() { events_.clear(); }

 private:
  std::vector<Stored> events_;
};

}  // namespace ff::obs
