#include "ff/obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace ff::obs {
namespace {

void write_escaped(std::ostream& os, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

void write_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      std::abs(v) < 1e15) {
    os << static_cast<std::int64_t>(v);
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  os << buf;
}

/// Lookup key: name plus labels in given order. Label order is part of
/// the identity, which callers get right for free because call sites are
/// static.
[[nodiscard]] std::string make_key(std::string_view name,
                                   const Labels& labels) {
  std::string key(name);
  for (const auto& [k, v] : labels) {
    key += '|';
    key += k;
    key += '=';
    key += v;
  }
  return key;
}

}  // namespace

std::string_view metric_kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kDistribution: return "distribution";
  }
  return "?";
}

MetricsRegistry::Entry& MetricsRegistry::find_or_create(std::string_view name,
                                                        Labels labels,
                                                        MetricKind kind) {
  const std::string key = make_key(name, labels);
  if (const auto it = index_.find(key); it != index_.end()) {
    Entry& e = entries_[it->second];
    if (e.kind != kind) {
      throw std::invalid_argument("MetricsRegistry: metric '" + key +
                                  "' already registered as " +
                                  std::string(metric_kind_name(e.kind)));
    }
    return e;
  }
  index_.emplace(key, entries_.size());
  Entry& e = entries_.emplace_back();
  e.name = std::string(name);
  e.labels = std::move(labels);
  e.kind = kind;
  return e;
}

Counter& MetricsRegistry::counter(std::string_view name, Labels labels) {
  return find_or_create(name, std::move(labels), MetricKind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, Labels labels) {
  return find_or_create(name, std::move(labels), MetricKind::kGauge).gauge;
}

Distribution& MetricsRegistry::distribution(std::string_view name,
                                            Labels labels) {
  return find_or_create(name, std::move(labels), MetricKind::kDistribution)
      .distribution;
}

std::vector<MetricSnapshot> MetricsRegistry::snapshot() const {
  std::vector<MetricSnapshot> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) {
    MetricSnapshot s;
    s.name = e.name;
    s.labels = e.labels;
    s.kind = e.kind;
    switch (e.kind) {
      case MetricKind::kCounter:
        s.value = e.counter.value();
        break;
      case MetricKind::kGauge:
        s.value = e.gauge.value();
        break;
      case MetricKind::kDistribution:
        s.value = e.distribution.mean();
        s.count = e.distribution.count();
        s.min = e.distribution.min();
        s.max = e.distribution.max();
        s.p50 = e.distribution.p50();
        s.p95 = e.distribution.p95();
        s.p99 = e.distribution.p99();
        break;
    }
    out.push_back(std::move(s));
  }
  return out;
}

void MetricsRegistry::write_json(std::ostream& os) const {
  os << "{\"metrics\":[";
  bool first = true;
  for (const MetricSnapshot& s : snapshot()) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"";
    write_escaped(os, s.name);
    os << "\",\"kind\":\"" << metric_kind_name(s.kind) << '"';
    if (!s.labels.empty()) {
      os << ",\"labels\":{";
      bool lfirst = true;
      for (const auto& [k, v] : s.labels) {
        if (!lfirst) os << ',';
        lfirst = false;
        os << '"';
        write_escaped(os, k);
        os << "\":\"";
        write_escaped(os, v);
        os << '"';
      }
      os << '}';
    }
    if (s.kind == MetricKind::kDistribution) {
      os << ",\"count\":" << s.count << ",\"mean\":";
      write_number(os, s.value);
      os << ",\"min\":";
      write_number(os, s.min);
      os << ",\"max\":";
      write_number(os, s.max);
      os << ",\"p50\":";
      write_number(os, s.p50);
      os << ",\"p95\":";
      write_number(os, s.p95);
      os << ",\"p99\":";
      write_number(os, s.p99);
    } else {
      os << ",\"value\":";
      write_number(os, s.value);
    }
    os << '}';
  }
  os << "]}\n";
}

void MetricsRegistry::write_json_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("MetricsRegistry: cannot open " + path);
  }
  write_json(out);
}

}  // namespace ff::obs
