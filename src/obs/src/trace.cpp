#include "ff/obs/trace.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace ff::obs {
namespace {

/// Events carry identifiers and numbers, not user text, so escaping only
/// has to keep the JSON well-formed if a name ever contains a quote.
void write_escaped(std::ostream& os, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

void write_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";  // JSON has no inf/nan
    return;
  }
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      std::abs(v) < 1e15) {
    os << static_cast<std::int64_t>(v);
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  os << buf;
}

}  // namespace

double TraceEvent::field(std::string_view key, double fallback) const {
  for (std::size_t i = 0; i < field_count; ++i) {
    if (fields[i].key == key) return fields[i].value;
  }
  return fallback;
}

JsonlTraceSink::JsonlTraceSink(std::ostream& os) : os_(&os) {}

JsonlTraceSink::JsonlTraceSink(const std::string& path)
    : file_(path), os_(&file_) {
  if (!file_) {
    throw std::runtime_error("JsonlTraceSink: cannot open " + path);
  }
}

void JsonlTraceSink::emit(const TraceEvent& event) {
  std::ostream& os = *os_;
  char tbuf[32];
  std::snprintf(tbuf, sizeof(tbuf), "%.6f", sim_to_seconds(event.time));
  os << "{\"t\":" << tbuf << ",\"type\":\"";
  write_escaped(os, event.type);
  os << "\",\"src\":\"";
  write_escaped(os, event.source);
  os << '"';
  if (event.has_id) os << ",\"id\":" << event.id;
  if (!event.detail_key.empty()) {
    os << ",\"";
    write_escaped(os, event.detail_key);
    os << "\":\"";
    write_escaped(os, event.detail_value);
    os << '"';
  }
  for (std::size_t i = 0; i < event.field_count; ++i) {
    os << ",\"";
    write_escaped(os, event.fields[i].key);
    os << "\":";
    write_number(os, event.fields[i].value);
  }
  os << "}\n";
  ++events_;
}

void JsonlTraceSink::flush() { os_->flush(); }

void CollectingTraceSink::emit(const TraceEvent& event) {
  Stored s;
  s.time = event.time;
  s.type = std::string(event.type);
  s.source = std::string(event.source);
  s.id = event.id;
  s.has_id = event.has_id;
  for (std::size_t i = 0; i < event.field_count; ++i) {
    s.fields.emplace_back(std::string(event.fields[i].key),
                          event.fields[i].value);
  }
  events_.push_back(std::move(s));
}

std::size_t CollectingTraceSink::count(std::string_view type) const {
  std::size_t n = 0;
  for (const auto& e : events_) {
    if (e.type == type) ++n;
  }
  return n;
}

}  // namespace ff::obs
