#pragma once

// Wall-clock replay: executes a simulator's event stream paced against
// real time (optionally scaled), so the same scenario objects that drive
// the DES benches also drive a live demo.

#include <atomic>
#include <functional>

#include "ff/sim/simulator.h"

namespace ff::rt {

struct RealtimeOptions {
  /// Sim seconds per wall second; 2.0 runs the demo at double speed.
  double time_scale{1.0};
  /// Stop after this much simulated time.
  SimTime horizon{30 * kSecond};
  /// Called whenever the executor has caught up (idle between events).
  std::function<void(SimTime)> on_progress;
  /// How often (sim time) on_progress fires.
  SimDuration progress_period{kSecond};
};

/// Runs `sim` until the horizon, sleeping so events fire at their scaled
/// wall-clock times. `stop` can be flipped from another thread to abort.
/// Returns the number of events executed.
std::uint64_t run_realtime(sim::Simulator& sim, const RealtimeOptions& options,
                           const std::atomic<bool>* stop = nullptr);

}  // namespace ff::rt
