#pragma once

// Fixed-size worker pool. The bench harness uses it to run independent
// experiments (controller variants, gain grids, parameter sweeps) across
// cores -- each experiment owns its own Simulator, so runs share nothing.
//
// Tasks travel as sim::InlineTask, which accepts move-only callables, so
// submit() wraps the work in a packaged_task directly instead of the
// shared_ptr<packaged_task> detour a copyable std::function would force.

#include <future>
#include <thread>
#include <type_traits>
#include <vector>

#include "ff/sim/inline_task.h"
#include "ff/util/mpmc_queue.h"

namespace ff::rt {

class ThreadPool {
 public:
  /// `threads` = 0 uses hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the future resolves with its result (or exception).
  template <class F>
  [[nodiscard]] auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    std::packaged_task<R()> task(std::forward<F>(f));
    std::future<R> future = task.get_future();
    queue_.push(sim::InlineTask(std::move(task)));
    return future;
  }

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();

  // Thread-safety: queue_ is internally synchronized (the pool's only
  // cross-thread channel); workers_ is written by the constructor before
  // any worker can observe `this` and joined by the destructor, so it
  // needs no guard -- there is no mutex-level capability in this class.
  MpmcQueue<sim::InlineTask> queue_;
  std::vector<std::thread> workers_;
};

/// Process-wide shared pool (hardware_concurrency workers), created on
/// first use and recreated on the next use after a shutdown. Lets call
/// sites that fan out repeatedly -- benches sweeping a grid in a loop --
/// reuse one set of threads instead of paying pool construction per sweep.
[[nodiscard]] ThreadPool& default_pool();

/// Joins and destroys the shared pool (no-op when it was never created).
/// For entry points and embedders that must not leak worker threads past
/// main()/dlclose; the pool comes back on the next default_pool() call.
/// Outstanding futures must be collected first -- pending tasks still run
/// during the join, but nothing may submit concurrently with shutdown.
void shutdown_default_pool();

/// Applies `fn` to every index [0, n) on an existing pool and collects
/// results in order. `fn(i)` must be independent across i, and must not
/// itself block on the same pool.
template <class Fn>
[[nodiscard]] auto parallel_map(ThreadPool& pool, std::size_t n, Fn fn)
    -> std::vector<std::invoke_result_t<Fn, std::size_t>> {
  using R = std::invoke_result_t<Fn, std::size_t>;
  std::vector<std::future<R>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(pool.submit([i, &fn] { return fn(i); }));
  }
  std::vector<R> results;
  results.reserve(n);
  for (auto& f : futures) results.push_back(f.get());
  return results;
}

/// Applies `fn` to every index [0, n) in parallel and collects results in
/// order. `threads` = 0 runs on the shared default_pool(); a nonzero count
/// spins up a dedicated pool of that size for this call.
template <class Fn>
[[nodiscard]] auto parallel_map(std::size_t n, Fn fn, std::size_t threads = 0)
    -> std::vector<std::invoke_result_t<Fn, std::size_t>> {
  if (threads == 0) return parallel_map(default_pool(), n, std::move(fn));
  ThreadPool pool(threads);
  return parallel_map(pool, n, std::move(fn));
}

}  // namespace ff::rt
