#pragma once

// Fixed-size worker pool. The bench harness uses it to run independent
// experiments (controller variants, gain grids, parameter sweeps) across
// cores -- each experiment owns its own Simulator, so runs share nothing.

#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "ff/util/mpmc_queue.h"

namespace ff::rt {

class ThreadPool {
 public:
  /// `threads` = 0 uses hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the future resolves with its result (or exception).
  template <class F>
  [[nodiscard]] auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    queue_.push([task] { (*task)(); });
    return future;
  }

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();

  MpmcQueue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
};

/// Applies `fn` to every index [0, n) in parallel and collects results in
/// order. `fn(i)` must be independent across i.
template <class Fn>
[[nodiscard]] auto parallel_map(std::size_t n, Fn fn, std::size_t threads = 0)
    -> std::vector<std::invoke_result_t<Fn, std::size_t>> {
  using R = std::invoke_result_t<Fn, std::size_t>;
  ThreadPool pool(threads);
  std::vector<std::future<R>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(pool.submit([i, &fn] { return fn(i); }));
  }
  std::vector<R> results;
  results.reserve(n);
  for (auto& f : futures) results.push_back(f.get());
  return results;
}

}  // namespace ff::rt
