#include "ff/rt/realtime.h"

#include <chrono>
#include <thread>

namespace ff::rt {

std::uint64_t run_realtime(sim::Simulator& sim, const RealtimeOptions& options,
                           const std::atomic<bool>* stop) {
  // ff-lint: allow(wall-clock) realtime pacing must read wall time; sim
  // results stay deterministic because pacing never reorders events
  using Clock = std::chrono::steady_clock;
  const auto wall_start = Clock::now();
  const SimTime sim_start = sim.now();
  const double scale = options.time_scale > 0 ? options.time_scale : 1.0;

  std::uint64_t executed = 0;
  SimTime next_progress = sim_start + options.progress_period;

  while (!sim.idle()) {
    if (stop && stop->load(std::memory_order_relaxed)) break;

    // Peek the next event time by stepping only when due.
    const SimTime horizon = sim_start + options.horizon;

    // Find when the next event would run; Simulator has no peek, so step
    // in bounded chunks: run one event, then pace.
    // Pace: compute the wall time at which the *current* sim time should
    // occur and sleep until then before executing further events.
    if (!sim.step()) break;
    ++executed;

    if (sim.now() >= horizon) break;

    const double sim_elapsed_s = sim_to_seconds(sim.now() - sim_start);
    const auto wall_target =
        wall_start + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(sim_elapsed_s / scale));
    const auto now_wall = Clock::now();
    if (wall_target > now_wall) std::this_thread::sleep_until(wall_target);

    if (options.on_progress && sim.now() >= next_progress) {
      options.on_progress(sim.now());
      next_progress += options.progress_period;
    }
  }
  return executed;
}

}  // namespace ff::rt
