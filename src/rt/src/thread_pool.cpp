#include "ff/rt/thread_pool.h"

#include <algorithm>

namespace ff::rt {

ThreadPool::ThreadPool(std::size_t threads)
    : queue_(1 << 16) {
  if (threads == 0) {
    threads = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  queue_.close();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  while (auto task = queue_.pop()) {
    (*task)();
  }
}

ThreadPool& default_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace ff::rt
