#include "ff/rt/thread_pool.h"

#include <algorithm>
#include <memory>
#include <mutex>

namespace ff::rt {

namespace {

// Guards creation and teardown of the shared pool. The pool itself lives
// in a unique_ptr (not a plain function-local static) so embedders that
// dlclose the library can tear it down deterministically via
// shutdown_default_pool() instead of leaking worker threads.
std::mutex& default_pool_mutex() {
  static std::mutex m;
  return m;
}

std::unique_ptr<ThreadPool>& default_pool_slot() {
  static std::unique_ptr<ThreadPool> slot;
  return slot;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads)
    : queue_(1 << 16) {
  if (threads == 0) {
    threads = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  queue_.close();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  while (auto task = queue_.pop()) {
    (*task)();
  }
}

ThreadPool& default_pool() {
  const std::lock_guard<std::mutex> lock(default_pool_mutex());
  auto& slot = default_pool_slot();
  if (!slot) slot = std::make_unique<ThreadPool>();
  return *slot;
}

void shutdown_default_pool() {
  const std::lock_guard<std::mutex> lock(default_pool_mutex());
  default_pool_slot().reset();
}

}  // namespace ff::rt
