#include "ff/rt/thread_pool.h"

#include <algorithm>
#include <memory>

#include "ff/util/sync.h"
#include "ff/util/thread_annotations.h"

namespace ff::rt {

namespace {

// Guards creation and teardown of the shared pool. The pool itself lives
// in a unique_ptr (not a plain function-local static) so embedders that
// dlclose the library can tear it down deterministically via
// shutdown_default_pool() instead of leaking worker threads. Both objects
// are constant-initialized (constexpr default constructors), so there is
// no static-initialization-order hazard in making them namespace-scope
// variables -- which is what lets the slot carry FF_GUARDED_BY.
Mutex g_default_pool_mutex;
std::unique_ptr<ThreadPool> g_default_pool_slot
    FF_GUARDED_BY(g_default_pool_mutex);

}  // namespace

ThreadPool::ThreadPool(std::size_t threads)
    : queue_(1 << 16) {
  if (threads == 0) {
    threads = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  queue_.close();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  while (auto task = queue_.pop()) {
    (*task)();
  }
}

ThreadPool& default_pool() {
  const MutexLock lock(g_default_pool_mutex);
  if (!g_default_pool_slot) {
    g_default_pool_slot = std::make_unique<ThreadPool>();
  }
  return *g_default_pool_slot;
}

void shutdown_default_pool() {
  const MutexLock lock(g_default_pool_mutex);
  g_default_pool_slot.reset();
}

}  // namespace ff::rt
