#pragma once

// Server-side admission control (ISSUE 9 / SmartDet, Chakrabarti et al.):
// a policy consulted on every ingress request BEFORE it is queued. Where
// the adaptive batcher sheds load at batch formation (the Tl source the
// paper models), admission control turns requests away at the door -- a
// token bucket bounding the sustained ingress rate, or a queue-depth gate
// bounding the backlog. Rejections are surfaced to the device as a typed
// response (RequestStatus::kRejectedAdmission) so fleet placement policies
// can re-home a device that keeps being turned away.

#include <cstddef>
#include <cstdint>

#include "ff/util/units.h"

namespace ff::server {

enum class AdmissionPolicy : std::uint8_t {
  kNone,         ///< admit everything (the legacy single-server behavior)
  kTokenBucket,  ///< sustained-rate bound with burst headroom
  kQueueDepth,   ///< reject while the server backlog exceeds a bound
};

struct AdmissionConfig {
  AdmissionPolicy policy{AdmissionPolicy::kNone};
  /// Token refill rate (requests/second) for kTokenBucket.
  double rate_fps{120.0};
  /// Bucket capacity in tokens (burst headroom) for kTokenBucket. The
  /// bucket starts full.
  double burst{30.0};
  /// Backlog bound for kQueueDepth: a request arriving while the total
  /// queue depth is >= this is rejected.
  std::size_t max_queue_depth{64};
};

struct AdmissionStats {
  std::uint64_t admitted{0};
  std::uint64_t rejected{0};
};

/// Deterministic admission gate. The token bucket refills lazily on each
/// admit() call (no scheduled events, so attaching one to a server never
/// perturbs the event stream), with double-precision fractional carry:
/// tokens(t) = min(burst, tokens(t0) + (t - t0) * rate).
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config);

  /// Decides one request arriving at `now` with the server's current
  /// total backlog `queue_depth`. Counts the decision in stats().
  [[nodiscard]] bool admit(SimTime now, std::size_t queue_depth);

  /// Token balance the bucket would hold at `now` (refill applied, no
  /// token consumed). Exposed for tests of the refill edges.
  [[nodiscard]] double tokens_at(SimTime now) const;

  [[nodiscard]] const AdmissionStats& stats() const { return stats_; }
  [[nodiscard]] const AdmissionConfig& config() const { return config_; }
  [[nodiscard]] bool enabled() const {
    return config_.policy != AdmissionPolicy::kNone;
  }

 private:
  AdmissionConfig config_;
  double tokens_;
  SimTime last_refill_{0};
  AdmissionStats stats_;
};

}  // namespace ff::server
