#pragma once

// GPU-equipped multi-tenant edge server with adaptive batching (paper
// §IV-A "Adaptive Batching Strategy"): while a batch executes, arrivals
// queue; the next batch takes everything queued up to the per-model limit
// (default 15) and REJECTS the remainder of that queue. Rejections are the
// load-induced timeout source Tl.

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "ff/models/latency_model.h"
#include "ff/obs/trace.h"
#include "ff/server/admission.h"
#include "ff/server/request.h"
#include "ff/sim/simulator.h"
#include "ff/util/histogram.h"
#include "ff/util/stats.h"

namespace ff::server {

struct ServerConfig {
  std::string name{"edge-server"};
  int batch_limit{15};            ///< per model, per batch (paper: 15)
  double gpu_jitter_sigma{0.05};  ///< multiplicative batch-latency jitter
  /// When false, the queue remainder past the batch limit stays queued
  /// instead of being rejected (ablation knob; the paper rejects).
  bool reject_overflow{true};
  /// Hard cap on any per-model queue; beyond it requests are rejected on
  /// arrival even with reject_overflow=false (memory guard).
  std::size_t queue_hard_limit{1024};
  /// Admission gate consulted before queueing (default: admit all, the
  /// legacy behavior). Rejections surface as kRejectedAdmission.
  AdmissionConfig admission{};
};

struct ServerStats {
  std::uint64_t requests_received{0};
  std::uint64_t requests_completed{0};
  std::uint64_t requests_rejected{0};
  std::uint64_t requests_admission_rejected{0};
  std::uint64_t batches_executed{0};
  StreamingStats batch_size{};
  StreamingStats service_latency_us{};  ///< completed requests only
  SimDuration gpu_busy_time{0};         ///< finished batches only

  [[nodiscard]] double mean_batch_size() const { return batch_size.mean(); }
};

class EdgeServer {
 public:
  /// `sim` must outlive the server.
  EdgeServer(sim::Simulator& sim, ServerConfig config);

  EdgeServer(const EdgeServer&) = delete;
  EdgeServer& operator=(const EdgeServer&) = delete;

  /// Submits a request; `on_complete` fires exactly once (completion or
  /// rejection). The arrival timestamp is stamped here.
  void submit(InferenceRequest request, CompletionFn on_complete);

  [[nodiscard]] const ServerStats& stats() const { return stats_; }
  [[nodiscard]] const ServerConfig& config() const { return config_; }

  /// Requests currently queued across all models.
  [[nodiscard]] std::size_t queue_depth() const;

  /// Requests queued for one model.
  [[nodiscard]] std::size_t queue_depth(models::ModelId model) const;

  [[nodiscard]] bool gpu_busy() const { return gpu_busy_; }

  /// Requests in the batch currently executing on the GPU (0 when idle).
  /// Together with queue_depth() this closes the server-side conservation
  /// identity at any instant:
  ///   received == completed + rejected + admission_rejected
  ///             + queue_depth + in_flight_batch
  [[nodiscard]] std::size_t in_flight_batch() const {
    return in_flight_batch_;
  }

  [[nodiscard]] const AdmissionController& admission() const {
    return admission_;
  }

  /// GPU utilization over the sim so far (busy time / elapsed time). An
  /// in-flight batch is credited only for the time it has actually run,
  /// so mid-batch queries never over-report.
  [[nodiscard]] double gpu_utilization() const;

  /// Attaches a trace sink for batch/reject/complete events (nullptr
  /// detaches). Not owned.
  void attach_trace_sink(obs::TraceSink* sink) { sink_ = sink; }

 private:
  struct PendingRequest {
    InferenceRequest request;
    CompletionFn on_complete;
  };

  struct ModelQueue {
    models::ModelId model;
    std::deque<PendingRequest> pending;
    models::GpuBatchLatencyModel latency;
  };

  ModelQueue& queue_for(models::ModelId model);
  void maybe_start_batch();
  void start_batch(ModelQueue& queue);
  void finish_batch(std::vector<PendingRequest> batch, SimTime started_at);
  void reject(PendingRequest&& pending);
  void reject_admission(PendingRequest&& pending);

  sim::Simulator& sim_;
  ServerConfig config_;
  /// Deque, not vector: queue_for hands out references that must survive
  /// another model's first submit growing the container mid-callback.
  std::deque<ModelQueue> queues_;
  std::size_t next_queue_rr_{0};  ///< round-robin cursor across models
  bool gpu_busy_{false};
  SimTime batch_started_at_{0};    ///< valid while gpu_busy_
  SimDuration batch_exec_{0};      ///< scheduled runtime of in-flight batch
  std::size_t in_flight_batch_{0};  ///< requests in the executing batch
  AdmissionController admission_;
  ServerStats stats_;
  obs::TraceSink* sink_{nullptr};
};

}  // namespace ff::server
