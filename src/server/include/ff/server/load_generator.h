#pragma once

// Background request injection: the paper's "other devices" that ramp
// multi-tenant load up and down (Table VI). Arrivals are Poisson at the
// scheduled rate and go straight into the server (their own network is not
// the variable under test).

#include <cstdint>
#include <string>
#include <vector>

#include "ff/server/edge_server.h"
#include "ff/sim/simulator.h"

namespace ff::server {

/// One phase of a load schedule, active from `start` until the next phase.
struct LoadPhase {
  SimTime start{0};
  Rate rate{};  ///< aggregate background request rate
};

class LoadSchedule {
 public:
  LoadSchedule() = default;

  LoadSchedule& add(SimTime start, Rate rate);

  [[nodiscard]] const std::vector<LoadPhase>& phases() const { return phases_; }
  [[nodiscard]] bool empty() const { return phases_.empty(); }

  /// Rate in force at `t` (zero before the first phase).
  [[nodiscard]] Rate at(SimTime t) const;

  /// The paper's Table VI schedule.
  [[nodiscard]] static LoadSchedule paper_table_vi();

  /// Constant background rate from t=0.
  [[nodiscard]] static LoadSchedule constant(Rate rate);

 private:
  std::vector<LoadPhase> phases_;
};

struct LoadGeneratorConfig {
  std::string name{"load-gen"};
  models::ModelId model{models::ModelId::kMobileNetV3Small};
  Bytes payload{Bytes{18000}};
  std::uint64_t client_id{1'000'000};  ///< distinct from real devices
  bool poisson{true};                  ///< exponential vs fixed inter-arrival
};

/// Drives an EdgeServer with requests following a LoadSchedule.
class LoadGenerator {
 public:
  LoadGenerator(sim::Simulator& sim, EdgeServer& server, LoadSchedule schedule,
                LoadGeneratorConfig config);

  LoadGenerator(const LoadGenerator&) = delete;
  LoadGenerator& operator=(const LoadGenerator&) = delete;

  /// Begins injecting; idempotent.
  void start();

  [[nodiscard]] std::uint64_t requests_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t requests_completed() const { return completed_; }
  [[nodiscard]] std::uint64_t requests_rejected() const { return rejected_; }

  /// Scheduled rate right now.
  [[nodiscard]] Rate current_rate() const { return schedule_.at(sim_.now()); }

 private:
  void arm_next();
  void fire();

  sim::Simulator& sim_;
  EdgeServer& server_;
  LoadSchedule schedule_;
  LoadGeneratorConfig config_;
  Rng rng_;
  bool started_{false};
  std::uint64_t sent_{0};
  std::uint64_t completed_{0};
  std::uint64_t rejected_{0};
  std::uint64_t next_request_id_{1};
};

}  // namespace ff::server
