#pragma once

// The unit of work the edge server processes: one frame to classify.

#include <cstdint>
#include <functional>

#include "ff/models/model_spec.h"
#include "ff/util/units.h"

namespace ff::server {

enum class RequestStatus : std::uint8_t {
  kCompleted,  ///< inference ran; result available
  kRejected,   ///< dropped at batch formation (queue overflow past limit)
  /// Turned away at the door by the admission controller before
  /// queueing (token-bucket or queue-depth policy, ff/server/admission.h).
  kRejectedAdmission,
};

struct InferenceRequest {
  std::uint64_t request_id{0};
  std::uint64_t client_id{0};
  models::ModelId model{models::ModelId::kMobileNetV3Small};
  Bytes payload{};
  SimTime arrived_at{0};  ///< stamped by the server on ingress
};

struct RequestOutcome {
  InferenceRequest request{};
  RequestStatus status{RequestStatus::kCompleted};
  SimTime finished_at{0};
  int batch_size{0};      ///< batch this request ran in (0 when rejected)

  /// Server-side latency: ingress to completion/rejection.
  [[nodiscard]] SimDuration service_latency() const {
    return finished_at - request.arrived_at;
  }
};

/// Invoked exactly once per submitted request.
using CompletionFn = std::function<void(const RequestOutcome&)>;

}  // namespace ff::server
