#pragma once

// ATOMS-style resource reservation (paper §V-B): clients declare demand
// and a central manager water-fills the server's estimated capacity among
// them. Implemented as the idealized best case -- the control plane is
// instantaneous and loss-free (the real ATOMS needs clock sync and RTT
// estimation on top). Even so, it is blind to network conditions and to
// tenants that bypass the reservation system, which is the paper's
// criticism; the comparison bench makes both failure modes measurable.

#include <cstdint>
#include <map>

#include "ff/util/units.h"

namespace ff::server {

struct ReservationConfig {
  /// The manager's belief about server capacity, frames/second.
  double capacity_fps{150.0};
  /// Grant at most this fraction of believed capacity (headroom for
  /// batching latency).
  double safety_factor{0.9};
};

class ReservationManager {
 public:
  explicit ReservationManager(ReservationConfig config);

  /// Declares (or updates) a client's demand and returns its current
  /// grant. Grants of other clients may change as a side effect
  /// (water-filling is global).
  double request(std::uint64_t client_id, double demand_fps);

  /// Removes a client; its share is redistributed.
  void release(std::uint64_t client_id);

  /// Current grant for a client (0 when unknown).
  [[nodiscard]] double granted(std::uint64_t client_id) const;

  [[nodiscard]] double total_granted() const;
  [[nodiscard]] std::size_t client_count() const { return demands_.size(); }
  [[nodiscard]] const ReservationConfig& config() const { return config_; }

 private:
  void recompute();

  ReservationConfig config_;
  std::map<std::uint64_t, double> demands_;
  std::map<std::uint64_t, double> grants_;
};

}  // namespace ff::server
