#include "ff/server/admission.h"

#include <algorithm>

namespace ff::server {

AdmissionController::AdmissionController(AdmissionConfig config)
    : config_(config), tokens_(config.burst) {}

double AdmissionController::tokens_at(SimTime now) const {
  if (now <= last_refill_) return tokens_;
  const double elapsed =
      static_cast<double>(now - last_refill_) / static_cast<double>(kSecond);
  return std::min(config_.burst, tokens_ + elapsed * config_.rate_fps);
}

bool AdmissionController::admit(SimTime now, std::size_t queue_depth) {
  bool ok = true;
  switch (config_.policy) {
    case AdmissionPolicy::kNone:
      break;
    case AdmissionPolicy::kTokenBucket:
      tokens_ = tokens_at(now);
      last_refill_ = std::max(last_refill_, now);
      if (tokens_ >= 1.0) {
        tokens_ -= 1.0;
      } else {
        ok = false;
      }
      break;
    case AdmissionPolicy::kQueueDepth:
      ok = queue_depth < config_.max_queue_depth;
      break;
  }
  if (ok) {
    ++stats_.admitted;
  } else {
    ++stats_.rejected;
  }
  return ok;
}

}  // namespace ff::server
