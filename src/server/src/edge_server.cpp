#include "ff/server/edge_server.h"

#include <algorithm>
#include <string>
#include <utility>

#include "ff/util/logging.h"

namespace ff::server {

EdgeServer::EdgeServer(sim::Simulator& sim, ServerConfig config)
    : sim_(sim), config_(std::move(config)), admission_(config_.admission) {}

EdgeServer::ModelQueue& EdgeServer::queue_for(models::ModelId model) {
  for (auto& q : queues_) {
    if (q.model == model) return q;
  }
  queues_.push_back(ModelQueue{
      model,
      {},
      models::GpuBatchLatencyModel(
          model,
          sim_.make_rng(config_.name + "/gpu/" +
                        std::string(models::model_name(model))),
          config_.gpu_jitter_sigma)});
  return queues_.back();
}

void EdgeServer::submit(InferenceRequest request, CompletionFn on_complete) {
  ++stats_.requests_received;
  request.arrived_at = sim_.now();
  if (admission_.enabled() && !admission_.admit(sim_.now(), queue_depth())) {
    reject_admission(
        PendingRequest{std::move(request), std::move(on_complete)});
    return;
  }
  ModelQueue& q = queue_for(request.model);
  if (q.pending.size() >= config_.queue_hard_limit) {
    reject(PendingRequest{std::move(request), std::move(on_complete)});
    return;
  }
  q.pending.push_back(PendingRequest{std::move(request),
                                     std::move(on_complete)});
  maybe_start_batch();
}

std::size_t EdgeServer::queue_depth() const {
  std::size_t n = 0;
  for (const auto& q : queues_) n += q.pending.size();
  return n;
}

std::size_t EdgeServer::queue_depth(models::ModelId model) const {
  for (const auto& q : queues_) {
    if (q.model == model) return q.pending.size();
  }
  return 0;
}

double EdgeServer::gpu_utilization() const {
  const SimTime elapsed = sim_.now();
  if (elapsed <= 0) return 0.0;
  // Finished batches plus the elapsed share of the in-flight batch: the
  // whole batch must not be credited at start, or mid-batch queries
  // over-report (historically above 1.0 early in a run).
  SimDuration busy = stats_.gpu_busy_time;
  if (gpu_busy_) {
    busy += std::min<SimDuration>(elapsed - batch_started_at_, batch_exec_);
  }
  return static_cast<double>(busy) / static_cast<double>(elapsed);
}

void EdgeServer::maybe_start_batch() {
  if (gpu_busy_ || queues_.empty()) return;
  // Round-robin across model queues so one model cannot starve another.
  for (std::size_t i = 0; i < queues_.size(); ++i) {
    ModelQueue& q = queues_[(next_queue_rr_ + i) % queues_.size()];
    if (!q.pending.empty()) {
      next_queue_rr_ = (next_queue_rr_ + i + 1) % queues_.size();
      start_batch(q);
      return;
    }
  }
}

void EdgeServer::start_batch(ModelQueue& queue) {
  gpu_busy_ = true;

  // Adaptive batching: take everything that queued during the previous
  // batch, capped at the limit...
  std::vector<PendingRequest> batch;
  const auto limit = static_cast<std::size_t>(config_.batch_limit);
  while (!queue.pending.empty() && batch.size() < limit) {
    batch.push_back(std::move(queue.pending.front()));
    queue.pending.pop_front();
  }
  // ...and reject the remainder of the queue (paper §IV-A).
  if (config_.reject_overflow) {
    while (!queue.pending.empty()) {
      reject(std::move(queue.pending.front()));
      queue.pending.pop_front();
    }
  }

  const int batch_size = static_cast<int>(batch.size());
  in_flight_batch_ = batch.size();
  stats_.batch_size.add(batch_size);
  ++stats_.batches_executed;

  const SimDuration exec = queue.latency.sample(batch_size);
  const SimTime started_at = sim_.now();
  batch_started_at_ = started_at;
  batch_exec_ = exec;
  FF_TRACE(config_.name) << "batch model=" << models::model_name(queue.model)
                         << " size=" << batch_size << " exec_us=" << exec;
  if (sink_) {
    sink_->emit(obs::TraceEvent(started_at, obs::ev::kServerBatchStart,
                                config_.name)
                    .with_id(stats_.batches_executed)
                    .with_detail("model", models::model_name(queue.model))
                    .with("size", batch_size)
                    .with("exec_us", static_cast<double>(exec))
                    .with("queued", static_cast<double>(queue.pending.size())));
  }
  sim_.schedule_in(exec, [this, batch = std::move(batch),
                          started_at]() mutable {
    finish_batch(std::move(batch), started_at);
  });
}

void EdgeServer::finish_batch(std::vector<PendingRequest> batch,
                              SimTime started_at) {
  const int batch_size = static_cast<int>(batch.size());
  stats_.gpu_busy_time += sim_.now() - started_at;
  if (sink_) {
    sink_->emit(obs::TraceEvent(sim_.now(), obs::ev::kServerBatchDone,
                                config_.name)
                    .with_id(stats_.batches_executed)
                    .with("size", batch_size));
  }
  for (auto& pending : batch) {
    ++stats_.requests_completed;
    RequestOutcome outcome;
    outcome.request = std::move(pending.request);
    outcome.status = RequestStatus::kCompleted;
    outcome.finished_at = sim_.now();
    outcome.batch_size = batch_size;
    stats_.service_latency_us.add(
        static_cast<double>(outcome.service_latency()));
    if (sink_) {
      sink_->emit(obs::TraceEvent(sim_.now(), obs::ev::kServerComplete,
                                  config_.name)
                      .with_id(outcome.request.request_id)
                      .with("client",
                            static_cast<double>(outcome.request.client_id))
                      .with("service_us",
                            static_cast<double>(outcome.service_latency())));
    }
    if (pending.on_complete) pending.on_complete(outcome);
  }
  gpu_busy_ = false;
  in_flight_batch_ = 0;
  maybe_start_batch();
}

void EdgeServer::reject(PendingRequest&& pending) {
  ++stats_.requests_rejected;
  RequestOutcome outcome;
  outcome.request = std::move(pending.request);
  outcome.status = RequestStatus::kRejected;
  outcome.finished_at = sim_.now();
  outcome.batch_size = 0;
  if (sink_) {
    sink_->emit(obs::TraceEvent(sim_.now(), obs::ev::kServerReject,
                                config_.name)
                    .with_id(outcome.request.request_id)
                    .with("client",
                          static_cast<double>(outcome.request.client_id)));
  }
  if (pending.on_complete) pending.on_complete(outcome);
}

void EdgeServer::reject_admission(PendingRequest&& pending) {
  ++stats_.requests_admission_rejected;
  RequestOutcome outcome;
  outcome.request = std::move(pending.request);
  outcome.status = RequestStatus::kRejectedAdmission;
  outcome.finished_at = sim_.now();
  outcome.batch_size = 0;
  if (sink_) {
    sink_->emit(obs::TraceEvent(sim_.now(), obs::ev::kServerAdmissionReject,
                                config_.name)
                    .with_id(outcome.request.request_id)
                    .with("client",
                          static_cast<double>(outcome.request.client_id)));
  }
  if (pending.on_complete) pending.on_complete(outcome);
}

}  // namespace ff::server
