#include "ff/server/edge_server.h"

#include <string>
#include <utility>

#include "ff/util/logging.h"

namespace ff::server {

EdgeServer::EdgeServer(sim::Simulator& sim, ServerConfig config)
    : sim_(sim), config_(std::move(config)) {}

EdgeServer::ModelQueue& EdgeServer::queue_for(models::ModelId model) {
  for (auto& q : queues_) {
    if (q.model == model) return q;
  }
  queues_.push_back(ModelQueue{
      model,
      {},
      models::GpuBatchLatencyModel(
          model,
          sim_.make_rng(config_.name + "/gpu/" +
                        std::string(models::model_name(model))),
          config_.gpu_jitter_sigma)});
  return queues_.back();
}

void EdgeServer::submit(InferenceRequest request, CompletionFn on_complete) {
  ++stats_.requests_received;
  request.arrived_at = sim_.now();
  ModelQueue& q = queue_for(request.model);
  if (q.pending.size() >= config_.queue_hard_limit) {
    reject(PendingRequest{std::move(request), std::move(on_complete)});
    return;
  }
  q.pending.push_back(PendingRequest{std::move(request), std::move(on_complete)});
  maybe_start_batch();
}

std::size_t EdgeServer::queue_depth() const {
  std::size_t n = 0;
  for (const auto& q : queues_) n += q.pending.size();
  return n;
}

std::size_t EdgeServer::queue_depth(models::ModelId model) const {
  for (const auto& q : queues_) {
    if (q.model == model) return q.pending.size();
  }
  return 0;
}

double EdgeServer::gpu_utilization() const {
  const SimTime elapsed = sim_.now();
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(stats_.gpu_busy_time) / static_cast<double>(elapsed);
}

void EdgeServer::maybe_start_batch() {
  if (gpu_busy_ || queues_.empty()) return;
  // Round-robin across model queues so one model cannot starve another.
  for (std::size_t i = 0; i < queues_.size(); ++i) {
    ModelQueue& q = queues_[(next_queue_rr_ + i) % queues_.size()];
    if (!q.pending.empty()) {
      next_queue_rr_ = (next_queue_rr_ + i + 1) % queues_.size();
      start_batch(q);
      return;
    }
  }
}

void EdgeServer::start_batch(ModelQueue& queue) {
  gpu_busy_ = true;

  // Adaptive batching: take everything that queued during the previous
  // batch, capped at the limit...
  std::vector<PendingRequest> batch;
  const auto limit = static_cast<std::size_t>(config_.batch_limit);
  while (!queue.pending.empty() && batch.size() < limit) {
    batch.push_back(std::move(queue.pending.front()));
    queue.pending.pop_front();
  }
  // ...and reject the remainder of the queue (paper §IV-A).
  if (config_.reject_overflow) {
    while (!queue.pending.empty()) {
      reject(std::move(queue.pending.front()));
      queue.pending.pop_front();
    }
  }

  const int batch_size = static_cast<int>(batch.size());
  stats_.batch_size.add(batch_size);
  ++stats_.batches_executed;

  const SimDuration exec = queue.latency.sample(batch_size);
  stats_.gpu_busy_time += exec;
  const SimTime started_at = sim_.now();
  FF_TRACE(config_.name) << "batch model=" << models::model_name(queue.model)
                         << " size=" << batch_size << " exec_us=" << exec;
  sim_.schedule_in(exec, [this, batch = std::move(batch), started_at]() mutable {
    finish_batch(std::move(batch), started_at);
  });
}

void EdgeServer::finish_batch(std::vector<PendingRequest> batch, SimTime) {
  const int batch_size = static_cast<int>(batch.size());
  for (auto& pending : batch) {
    ++stats_.requests_completed;
    RequestOutcome outcome;
    outcome.request = std::move(pending.request);
    outcome.status = RequestStatus::kCompleted;
    outcome.finished_at = sim_.now();
    outcome.batch_size = batch_size;
    stats_.service_latency_us.add(static_cast<double>(outcome.service_latency()));
    if (pending.on_complete) pending.on_complete(outcome);
  }
  gpu_busy_ = false;
  maybe_start_batch();
}

void EdgeServer::reject(PendingRequest&& pending) {
  ++stats_.requests_rejected;
  RequestOutcome outcome;
  outcome.request = std::move(pending.request);
  outcome.status = RequestStatus::kRejected;
  outcome.finished_at = sim_.now();
  outcome.batch_size = 0;
  if (pending.on_complete) pending.on_complete(outcome);
}

}  // namespace ff::server
