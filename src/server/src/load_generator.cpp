#include "ff/server/load_generator.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace ff::server {

LoadSchedule& LoadSchedule::add(SimTime start, Rate rate) {
  if (!phases_.empty() && start < phases_.back().start) {
    throw std::invalid_argument("LoadSchedule: phases out of order");
  }
  phases_.push_back(LoadPhase{start, rate});
  return *this;
}

Rate LoadSchedule::at(SimTime t) const {
  Rate rate{0.0};
  for (const auto& p : phases_) {
    if (p.start <= t) rate = p.rate;
  }
  return rate;
}

LoadSchedule LoadSchedule::paper_table_vi() {
  LoadSchedule s;
  s.add(0, Rate{0});
  s.add(10 * kSecond, Rate{90});
  s.add(20 * kSecond, Rate{120});
  s.add(35 * kSecond, Rate{135});
  s.add(50 * kSecond, Rate{150});
  s.add(60 * kSecond, Rate{130});
  s.add(75 * kSecond, Rate{120});
  s.add(90 * kSecond, Rate{90});
  s.add(100 * kSecond, Rate{0});
  return s;
}

LoadSchedule LoadSchedule::constant(Rate rate) {
  LoadSchedule s;
  s.add(0, rate);
  return s;
}

LoadGenerator::LoadGenerator(sim::Simulator& sim, EdgeServer& server,
                             LoadSchedule schedule, LoadGeneratorConfig config)
    : sim_(sim),
      server_(server),
      schedule_(std::move(schedule)),
      config_(std::move(config)),
      rng_(sim.make_rng("loadgen/" + config_.name)) {}

void LoadGenerator::start() {
  if (started_) return;
  started_ = true;
  arm_next();
}

void LoadGenerator::arm_next() {
  const Rate rate = schedule_.at(sim_.now());
  SimDuration gap;
  if (rate.per_second <= 0.0) {
    // Idle phase: poll for the next phase boundary rather than computing it
    // exactly; 100 ms granularity is far below any schedule step.
    gap = 100 * kMillisecond;
    sim_.schedule_in(gap, [this] { arm_next(); });
    return;
  }
  if (config_.poisson) {
    gap = std::max<SimDuration>(
        static_cast<SimDuration>(rng_.exponential(1.0 / rate.per_second) *
                                 static_cast<double>(kSecond)),
        1);
  } else {
    gap = rate.period();
  }
  sim_.schedule_in(gap, [this] { fire(); });
}

void LoadGenerator::fire() {
  InferenceRequest req;
  req.request_id = (config_.client_id << 32) | next_request_id_++;
  req.client_id = config_.client_id;
  req.model = config_.model;
  req.payload = config_.payload;
  ++sent_;
  server_.submit(std::move(req), [this](const RequestOutcome& outcome) {
    if (outcome.status == RequestStatus::kCompleted) {
      ++completed_;
    } else {
      ++rejected_;
    }
  });
  arm_next();
}

}  // namespace ff::server
