#include "ff/server/reservation.h"

#include <algorithm>
#include <vector>

namespace ff::server {

ReservationManager::ReservationManager(ReservationConfig config)
    : config_(config) {}

double ReservationManager::request(std::uint64_t client_id, double demand_fps) {
  demands_[client_id] = std::max(demand_fps, 0.0);
  recompute();
  return grants_[client_id];
}

void ReservationManager::release(std::uint64_t client_id) {
  demands_.erase(client_id);
  grants_.erase(client_id);
  recompute();
}

double ReservationManager::granted(std::uint64_t client_id) const {
  const auto it = grants_.find(client_id);
  return it == grants_.end() ? 0.0 : it->second;
}

double ReservationManager::total_granted() const {
  double sum = 0.0;
  for (const auto& [id, g] : grants_) sum += g;
  return sum;
}

void ReservationManager::recompute() {
  grants_.clear();
  if (demands_.empty()) return;

  double remaining = config_.capacity_fps * config_.safety_factor;

  // Water-filling: satisfy the smallest demands first; split what is left
  // equally among the still-unsatisfied.
  std::vector<std::pair<double, std::uint64_t>> by_demand;
  by_demand.reserve(demands_.size());
  for (const auto& [id, d] : demands_) by_demand.emplace_back(d, id);
  std::sort(by_demand.begin(), by_demand.end());

  std::size_t left = by_demand.size();
  for (const auto& [demand, id] : by_demand) {
    const double fair = remaining / static_cast<double>(left);
    const double grant = std::min(demand, fair);
    grants_[id] = grant;
    remaining -= grant;
    --left;
  }
}

}  // namespace ff::server
