#pragma once

// The simulator's pending-event set: a binary heap ordered by (time,
// sequence number) so same-timestamp events run in scheduling order, which
// keeps runs bit-for-bit reproducible.

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "ff/util/units.h"

namespace ff::sim {

/// Opaque handle for cancelling a scheduled event. Value 0 is "no event".
struct EventId {
  std::uint64_t value{0};

  friend constexpr bool operator==(EventId, EventId) = default;
};

/// An event ready for execution.
struct Event {
  SimTime time{0};
  std::uint64_t sequence{0};
  EventId id{};
  std::function<void()> action;
};

class EventQueue {
 public:
  /// Schedules `action` at absolute time `t`.
  EventId schedule(SimTime t, std::function<void()> action);

  /// Lazily cancels the event; it is skipped when its heap slot surfaces.
  /// Returns false if the id is unknown, already executed, or already
  /// cancelled.
  bool cancel(EventId id);

  /// True when no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const { return live_.empty(); }

  [[nodiscard]] std::size_t size() const { return live_.size(); }

  /// Time of the earliest live event; only valid when !empty().
  [[nodiscard]] SimTime next_time() const;

  /// Removes and returns the earliest live event; only valid when !empty().
  [[nodiscard]] Event pop();

  /// Drops everything.
  void clear();

 private:
  struct Entry {
    SimTime time;
    std::uint64_t sequence;
    EventId id;
    std::function<void()> action;
  };

  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };

  /// Pops dead (cancelled) entries off the heap front.
  void drop_dead_front();

  std::vector<Entry> heap_;
  std::unordered_set<std::uint64_t> live_;  // scheduled, not executed/cancelled
  std::uint64_t next_sequence_{0};
};

}  // namespace ff::sim
