#pragma once

// The simulator's pending-event set, built for zero steady-state
// allocations:
//
//  - the heap sifts 16-byte POD records {time, key}, in a 4-ary layout
//    (shallower than binary, and all four children of a node share one
//    cache line), while callables live out-of-band in a slab;
//  - `key` packs (sequence << kSlotBits) | (slot + 1): the sequence is
//    globally unique, so comparing (time, key) is exactly the
//    (time, sequence) determinism order, and the same key doubles as the
//    public EventId;
//  - the slab is chunked (512 slots per chunk), so tasks never relocate
//    when the pending set grows and each chunk stays below the allocator's
//    mmap threshold -- chunk memory is recycled from the arena instead of
//    being faulted in afresh for every simulator instance;
//  - slab slots are recycled through a free list and tagged with the
//    occupying event's sequence, so cancel/liveness checks are two loads
//    instead of a hash-table probe, and a stale EventId can never alias a
//    recycled slot (sequences are never reused);
//  - each slot tracks its entry's heap position, so cancellation removes
//    the record in place -- usually a leaf, so O(1) in practice -- and the
//    heap never carries tombstones: pop() and next_time() only ever see
//    live events, even under the transport's schedule/cancel RTO churn.
//
// Ordering is by (time, sequence number): same-timestamp events run in
// scheduling order, which keeps runs bit-for-bit reproducible -- the
// (time, sequence) order is a strict total order, so it is independent of
// heap arity and internal layout.
//
// The 40-bit sequence space is split into two bands. Internal events --
// everything scheduled through schedule() -- draw monotonically from
// [0, kExternalSequenceBase). Cross-partition deliveries injected by
// sim::PartitionedSimulator carry caller-assigned sequences in
// [kExternalSequenceBase, 2^40): at equal timestamps every internal event
// therefore sorts before every delivery, and the driver's global
// assignment order -- not thread scheduling -- decides delivery order.
//
// Hot-path members are defined inline here: the per-event cost is a few
// dozen nanoseconds, so a cross-TU call boundary per pop would be a
// measurable fraction of the budget.

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <new>
#include <vector>

#include "ff/sim/inline_task.h"
#include "ff/util/units.h"

namespace ff::sim {

/// Opaque handle for cancelling a scheduled event. Value 0 is "no event".
struct EventId {
  std::uint64_t value{0};

  friend constexpr bool operator==(EventId, EventId) = default;
};

/// An event ready for execution.
struct Event {
  SimTime time{0};
  std::uint64_t sequence{0};
  EventId id{};
  InlineTask action;
};

class EventQueue {
 public:
  EventQueue() = default;
  ~EventQueue();

  // The slab hands out interior pointers (heap positions, free-list links),
  // so the queue is pinned in place.
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `action` at absolute time `t`, constructing the callable
  /// directly in the slab (no intermediate task object).
  template <class F,
            class = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineTask> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventId schedule(SimTime t, F&& action) {
    const std::uint32_t slot = acquire_slot();
    slot_at(slot).task.emplace(std::forward<F>(action));
    return push_entry(t, slot);
  }

  /// Schedules an already-built task at absolute time `t`.
  EventId schedule(SimTime t, InlineTask action);

  /// First sequence of the external band (see the ordering note above).
  /// Internal sequences assert they stay below it; external ones assert
  /// they stay inside it.
  static constexpr std::uint64_t kExternalSequenceBase = std::uint64_t{1}
      << 39;

  /// Schedules `action` at `t` under a caller-assigned sequence from the
  /// external band. The caller owns uniqueness (the partitioned driver
  /// assigns from one global counter) and ordering: at equal `t`, events
  /// compare by sequence, so externals run after all internal events of
  /// that timestamp, in assignment order.
  EventId schedule_external(SimTime t, std::uint64_t sequence,
                            InlineTask action);

  /// Cancels the event, releasing its callable immediately. Returns false
  /// if the id is unknown, already executed, or already cancelled.
  bool cancel(EventId id) {
    if (!is_live(id.value)) return false;
    const auto slot = static_cast<std::uint32_t>((id.value & kSlotMask) - 1);
    const std::size_t pos = slot_at(slot).heap_pos;
    release_slot(slot);
    remove_at(pos);
    return true;
  }

  /// True when no live events remain.
  [[nodiscard]] bool empty() const { return heap_.empty(); }

  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Time of the earliest live event; only valid when !empty().
  [[nodiscard]] SimTime next_time() const {
    assert(!heap_.empty());
    return heap_.front().time;
  }

  /// Removes and returns the earliest live event; only valid when !empty().
  [[nodiscard]] Event pop() {
    assert(!heap_.empty());
    const HeapEntry e = heap_.front();
    const HeapEntry back = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0, back);
    const auto slot = static_cast<std::uint32_t>((e.key & kSlotMask) - 1);
    Slot& s = slot_at(slot);
    Event out;
    out.time = e.time;
    out.sequence = e.key >> kSlotBits;
    out.id = EventId{e.key};
    out.action = std::move(s.task);
    release_slot(slot);
    return out;
  }

  /// Pops the earliest event and calls `visit(time, sequence, task)` with
  /// the task still in its slab slot -- chunked slots never relocate, so
  /// the callable is executed with zero moves. The event's id is dead for
  /// the duration of the visit (self-cancel is a no-op, matching pop()),
  /// and the slot is recycled afterwards even if the visit unwinds. The
  /// visit may schedule and cancel freely; it must not re-enter pop() or
  /// visit_pop() on this queue.
  template <class Visit>
  void visit_pop(Visit&& visit) {
    assert(!heap_.empty());
    const HeapEntry e = heap_.front();
    const HeapEntry back = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0, back);
    const auto slot = static_cast<std::uint32_t>((e.key & kSlotMask) - 1);
    Slot& s = slot_at(slot);
    s.sequence = kFreeSequence;  // id is dead while the action runs
    const ReleaseGuard guard{this, &s, slot};
    visit(e.time, e.key >> kSlotBits, s.task);
  }

  /// Drops everything.
  void clear();

 private:
  // EventId / heap-key bit layout: low kSlotBits hold (slot index + 1) --
  // so a zero value stays "no event" -- and the high 40 bits hold the
  // event's sequence number. Sequences are monotone and never reused, so
  // a slot tagged with its occupant's sequence rejects every stale id.
  // 2^40 sequences is ~32 hours of simulated dispatch at 10M events/s;
  // push_entry() asserts on overflow.
  static constexpr std::uint64_t kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (std::uint64_t{1}
      << kSlotBits) - 1;
  static constexpr std::uint32_t kNoFreeSlot = 0xFFFFFFFF;
  static constexpr std::uint64_t kFreeSequence = ~std::uint64_t{0};
  static constexpr std::uint32_t kChunkShift = 9;  ///< 512 slots, ~48KB
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;

  struct HeapEntry {
    SimTime time;
    std::uint64_t key;  ///< packed (sequence << kSlotBits) | (slot + 1)
  };
  static_assert(sizeof(HeapEntry) == 16,
                "four children of a 4-ary node must share a cache line");

  struct Slot {
    InlineTask task;
    std::uint64_t sequence{kFreeSequence};  ///< occupant's sequence, or free
    std::uint32_t next_free{kNoFreeSlot};
    std::uint32_t heap_pos{0};  ///< index of this event's heap record
  };

  /// Returns a visited slot to the free list, releasing its captures --
  /// via RAII so an unwinding action cannot leak the slot.
  struct ReleaseGuard {
    EventQueue* queue;
    Slot* s;
    std::uint32_t slot;
    ~ReleaseGuard() {
      s->task.reset();
      s->next_free = queue->free_head_;
      queue->free_head_ = slot;
    }
  };

  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    // For equal times the unique sequence occupies the key's high bits, so
    // the key comparison IS the sequence tiebreak.
    if (a.time != b.time) return a.time < b.time;
    return a.key < b.key;
  }

  [[nodiscard]] Slot& slot_at(std::uint32_t i) {
    return chunks_[i >> kChunkShift][i & (kChunkSize - 1)];
  }
  [[nodiscard]] const Slot& slot_at(std::uint32_t i) const {
    return chunks_[i >> kChunkShift][i & (kChunkSize - 1)];
  }

  [[nodiscard]] bool is_live(std::uint64_t key) const {
    const std::uint64_t biased_slot = key & kSlotMask;
    return biased_slot != 0 && biased_slot <= slot_count_ &&
           slot_at(static_cast<std::uint32_t>(biased_slot - 1)).sequence ==
               (key >> kSlotBits);
  }

  std::uint32_t acquire_slot() {
    if (free_head_ != kNoFreeSlot) {
      const std::uint32_t slot = free_head_;
      free_head_ = slot_at(slot).next_free;
      return slot;
    }
    return grow_slab();
  }

  EventId push_entry(SimTime t, std::uint32_t slot) {
    const std::uint64_t seq = next_sequence_++;
    assert(seq < kExternalSequenceBase &&
           "internal event sequences must stay below the external band");
    return push_entry_with(t, slot, seq);
  }

  EventId push_entry_with(SimTime t, std::uint32_t slot, std::uint64_t seq) {
    assert(seq < (std::uint64_t{1} << (64 - kSlotBits)) &&
           "event sequence exceeds the EventId packing range");
    slot_at(slot).sequence = seq;
    const std::uint64_t key = (seq << kSlotBits) | (slot + 1);
    heap_.emplace_back();
    sift_up(heap_.size() - 1, HeapEntry{t, key});
    return EventId{key};
  }

  void release_slot(std::uint32_t slot) {
    Slot& s = slot_at(slot);
    s.task.reset();
    s.sequence = kFreeSequence;  // invalidates outstanding ids
    s.next_free = free_head_;
    free_head_ = slot;
  }

  /// Writes `e` at heap index `i` and records the position in its slot.
  void place(std::size_t i, const HeapEntry& e) {
    heap_[i] = e;
    slot_at(static_cast<std::uint32_t>((e.key & kSlotMask) - 1)).heap_pos =
        static_cast<std::uint32_t>(i);
  }

  /// Settles `e` upward from the hole at `i`.
  void sift_up(std::size_t i, const HeapEntry& e) {
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (!earlier(e, heap_[parent])) break;
      place(i, heap_[parent]);
      i = parent;
    }
    place(i, e);
  }

  /// Settles `e` downward from the hole at `i`.
  void sift_down(std::size_t i, const HeapEntry& e) {
    const std::size_t n = heap_.size();
    while (4 * i + 4 < n) {
      // Full child group: pairwise tournament for the minimum, so the two
      // halves compare independently instead of through one serial chain.
      const std::size_t first = 4 * i + 1;
      const std::size_t l = earlier(heap_[first + 1], heap_[first])
                                ? first + 1 : first;
      const std::size_t r = earlier(heap_[first + 3], heap_[first + 2])
                                ? first + 3 : first + 2;
      const std::size_t best = earlier(heap_[r], heap_[l]) ? r : l;
      // Pull the likely next child group toward the core before the
      // compare-vs-e branch resolves; sifted entries usually keep sinking.
      if (4 * best + 1 < n) __builtin_prefetch(&heap_[4 * best + 1]);
      if (!earlier(heap_[best], e)) break;
      place(i, heap_[best]);
      i = best;
    }
    if (const std::size_t first = 4 * i + 1; first < n) {
      // Partial group at the frontier (at most once per sift).
      std::size_t best = first;
      const std::size_t last = std::min(first + 4, n);
      for (std::size_t c = first + 1; c < last; ++c) {
        if (earlier(heap_[c], heap_[best])) best = c;
      }
      if (earlier(heap_[best], e)) {
        place(i, heap_[best]);
        i = best;
      }
    }
    place(i, e);
  }

  /// Deletes the heap record at `pos`, refilling the hole from the back.
  void remove_at(std::size_t pos) {
    const std::size_t last = heap_.size() - 1;
    const HeapEntry back = heap_.back();
    heap_.pop_back();
    if (pos == last) return;
    if (pos > 0 && earlier(back, heap_[(pos - 1) >> 2])) {
      sift_up(pos, back);
    } else {
      sift_down(pos, back);
    }
  }

  std::uint32_t grow_slab();

  std::vector<HeapEntry> heap_;
  // Raw chunk storage: slots are placement-constructed one at a time as the
  // pending set first grows, so a fresh queue never streams init writes
  // over cache lines it is not about to use. slot_count_ is the number of
  // constructed slots.
  std::vector<Slot*> chunks_;
  std::uint32_t slot_count_{0};
  std::uint32_t free_head_{kNoFreeSlot};
  std::uint64_t next_sequence_{0};
};

}  // namespace ff::sim
