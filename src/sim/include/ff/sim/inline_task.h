#pragma once

// InlineTask: the kernel's callable. A move-only void() wrapper with 64
// bytes of in-place storage, so scheduling an event never touches the heap
// for the capture sizes the simulator actually produces (a `this` pointer
// plus a handful of ids). Oversized or alignment-exotic captures fall back
// to a single heap allocation. Unlike std::function it accepts move-only
// callables (packaged_task, unique_ptr captures), which is what lets the
// thread pool drop its shared_ptr indirection.

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace ff::sim {

class InlineTask {
 public:
  /// Captures up to this many bytes live in the task itself.
  static constexpr std::size_t kInlineCapacity = 64;

  InlineTask() noexcept = default;

  template <class F, class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, InlineTask> &&
                                     std::is_invocable_r_v<void, D&>>>
  InlineTask(F&& f) {  // NOLINT(google-explicit-constructor): call sites
                       // pass lambdas where a task is expected
    construct<F>(std::forward<F>(f));
  }

  InlineTask(InlineTask&& other) noexcept
      : invoke_(other.invoke_), manage_(other.manage_) {
    if (manage_ != nullptr) manage_(Op::kRelocate, storage_, other.storage_);
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  InlineTask& operator=(InlineTask&& other) noexcept {
    if (this != &other) {
      reset();
      invoke_ = other.invoke_;
      manage_ = other.manage_;
      if (manage_ != nullptr) manage_(Op::kRelocate, storage_, other.storage_);
      other.invoke_ = nullptr;
      other.manage_ = nullptr;
    }
    return *this;
  }

  InlineTask(const InlineTask&) = delete;
  InlineTask& operator=(const InlineTask&) = delete;

  ~InlineTask() { reset(); }

  /// Destroys the held callable (releasing its captures); leaves the task
  /// empty.
  void reset() noexcept {
    if (manage_ != nullptr) {
      manage_(Op::kDestroy, storage_, nullptr);
      invoke_ = nullptr;
      manage_ = nullptr;
    }
  }

  /// Replaces the held callable, constructing the new one directly in the
  /// task's storage (no intermediate InlineTask materialization -- this is
  /// the scheduling hot path).
  template <class F, class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, InlineTask> &&
                                     std::is_invocable_r_v<void, D&>>>
  void emplace(F&& f) {
    reset();
    construct<F>(std::forward<F>(f));
  }

  /// Invokes the callable; undefined when empty.
  void operator()() { invoke_(storage_); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return invoke_ != nullptr;
  }

 private:
  enum class Op { kRelocate, kDestroy };

  // Non-noexcept-movable callables go to the heap too, so task moves (heap
  // sifts, slab compaction) stay unconditionally noexcept.
  template <class D>
  static constexpr bool fits_inline =
      sizeof(D) <= kInlineCapacity && alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  template <class F, class D = std::decay_t<F>>
  void construct(F&& f) {
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      invoke_ = &inline_invoke<D>;
      manage_ = &inline_manage<D>;
    } else {
      // ff-lint: allow(raw-allocation) documented oversized-capture fallback;
      // sim-produced captures fit inline (static_asserted at schedule sites)
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      invoke_ = &heap_invoke<D>;
      manage_ = &heap_manage<D>;
    }
  }

  template <class D>
  static D* inline_target(void* storage) noexcept {
    return std::launder(reinterpret_cast<D*>(storage));
  }

  template <class D>
  static void inline_invoke(void* storage) {
    (*inline_target<D>(storage))();
  }
  template <class D>
  static void inline_manage(Op op, void* storage, void* src) noexcept {
    if (op == Op::kRelocate) {
      D* from = inline_target<D>(src);
      ::new (storage) D(std::move(*from));
      from->~D();
    } else {
      inline_target<D>(storage)->~D();
    }
  }

  template <class D>
  static D* heap_target(void* storage) noexcept {
    return *std::launder(reinterpret_cast<D**>(storage));
  }

  template <class D>
  static void heap_invoke(void* storage) {
    (*heap_target<D>(storage))();
  }
  template <class D>
  static void heap_manage(Op op, void* storage, void* src) noexcept {
    if (op == Op::kRelocate) {
      ::new (storage) void*(*std::launder(reinterpret_cast<void**>(src)));
    } else {
      delete heap_target<D>(storage);
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineCapacity];
  void (*invoke_)(void* storage){nullptr};
  void (*manage_)(Op op, void* storage, void* src) noexcept {nullptr};
};

}  // namespace ff::sim
