#pragma once

// Conservative parallel partitioned DES driver (ROADMAP item 2).
//
// The entity graph is sharded into K partitions, each a full Simulator
// (own EventQueue, own clock, own label-forked RNG streams from the same
// root seed, so a component's stream depends only on its label, never on
// its partition). Partitions interact exclusively through directed
// BoundaryEdges whose `min_delay` is a hard lower bound on how far into
// the destination's future a message can land -- for network links, the
// minimum propagation delay. That bound is the classic conservative
// lookahead: each round the driver computes the global safe horizon
//
//     H = min_i(next_event_time_i) + min_edges(min_delay)
//
// runs every partition up to (but excluding) H in parallel -- no event
// executed inside the window can influence another partition before H --
// then drains the mailboxes at the barrier and opens the next window.
// This is the time-window variant of null-message synchronization: the
// horizon broadcast plays the role of null messages, amortized to one
// barrier per window instead of one message per edge.
//
// Determinism is the headline contract: results are bit-identical for any
// partition count and any worker-thread count. Three mechanisms carry it:
//
//  1. Mailboxes are SPSC by construction (one producing partition; the
//     driver consumes only at barriers), so no interleaving exists to
//     observe.
//  2. At each barrier the drained envelopes are ordered canonically --
//     stable-sorted by (deliver_at, post_time), with the stable sort
//     preserving (edge id, intra-edge FIFO) for full ties -- and assigned
//     sequences from one global counter in that order. Windows partition
//     virtual time identically for every K (the pending-event union, and
//     hence the horizon sequence, is K-independent), so equal post times
//     always share a drain and the assignment is reproducible.
//  3. Assigned sequences live in the EventQueue's external band: at equal
//     timestamps, every delivery executes after every internal event of
//     the destination partition, by explicit rule rather than by accident
//     of scheduling interleave.
//
// Why conservative rather than optimistic (Time Warp): the entities
// executed here (transports, batching servers, controllers) carry deep
// mutable state with callbacks into each other; checkpoint/rollback would
// have to snapshot all of it, and a misspeculated event could emit
// irreversible observer/trace side effects. With propagation delays of
// milliseconds against event spacings of microseconds, the lookahead is
// fat enough that conservative windows already batch hundreds of events,
// so rollback buys little and costs determinism.

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "ff/sim/event_queue.h"
#include "ff/sim/inline_task.h"
#include "ff/sim/simulator.h"
#include "ff/util/units.h"

namespace ff::sim {

/// One cross-partition message: an action to run in the destination
/// partition at `deliver_at`, posted by the source at `post_time`.
struct BoundaryEnvelope {
  SimTime deliver_at{0};
  SimTime post_time{0};
  InlineTask action;
};

/// Mailbox for one directed source-partition -> destination-partition
/// edge. Single producer (the source partition's worker, while a window
/// executes), single consumer (the driver, at the barrier between
/// windows) -- the two phases never overlap, so a plain vector suffices
/// and envelope order is exactly post order.
class BoundaryEdge {
 public:
  /// Posts an action for the destination partition. Must be called only
  /// from events executing in the source partition. `deliver_at` must
  /// honor the lookahead contract: deliver_at >= post_time + min_delay().
  void post(SimTime post_time, SimTime deliver_at, InlineTask action) {
    assert(deliver_at >= post_time + min_delay_ &&
           "boundary post violates the edge's lookahead contract");
    pending_.push_back(BoundaryEnvelope{deliver_at, post_time,
                                        std::move(action)});
  }

  /// Lookahead bound: no post may deliver sooner than this after its
  /// post time. Strictly positive (enforced at creation).
  [[nodiscard]] SimDuration min_delay() const { return min_delay_; }

  [[nodiscard]] std::size_t source() const { return source_; }
  [[nodiscard]] std::size_t destination() const { return destination_; }

  /// Creation index; ties between different edges at equal
  /// (deliver_at, post_time) drain in this order.
  [[nodiscard]] std::size_t id() const { return id_; }

 private:
  friend class PartitionedSimulator;

  BoundaryEdge(std::size_t id, std::size_t source, std::size_t destination,
               SimDuration min_delay)
      : id_(id),
        source_(source),
        destination_(destination),
        min_delay_(min_delay) {}

  std::size_t id_;
  std::size_t source_;
  std::size_t destination_;
  SimDuration min_delay_;
  std::vector<BoundaryEnvelope> pending_;
};

/// K Simulators advanced in lockstep time windows. See the file comment
/// for the synchronization and determinism model. Construction (partition
/// access, add_edge) is single-threaded; run_until may execute windows on
/// an internal worker gang, but all cross-partition exchange happens on
/// the calling thread at barriers.
class PartitionedSimulator {
 public:
  struct Options {
    /// Number of partitions; must be >= 1.
    std::size_t partitions{1};
    /// Worker threads for window execution: 0 = one per partition (capped
    /// at hardware concurrency), 1 = serial on the calling thread. Results
    /// are bit-identical across all values.
    unsigned threads{0};
  };

  /// Every partition's Simulator gets the same root `seed`: component RNG
  /// streams fork by label, so a component's randomness is independent of
  /// which partition it lives in.
  explicit PartitionedSimulator(std::uint64_t seed);
  PartitionedSimulator(std::uint64_t seed, Options options);
  ~PartitionedSimulator();

  PartitionedSimulator(const PartitionedSimulator&) = delete;
  PartitionedSimulator& operator=(const PartitionedSimulator&) = delete;

  [[nodiscard]] std::size_t partition_count() const {
    return partitions_.size();
  }

  [[nodiscard]] Simulator& partition(std::size_t i) {
    return *partitions_.at(i);
  }

  /// Registers a directed edge. `min_delay` must be strictly positive --
  /// a zero-delay edge has no lookahead and would force zero-width
  /// windows -- otherwise std::invalid_argument is thrown. Self-edges
  /// (source == destination) are allowed and still route through the
  /// mailbox, which keeps delivery ordering identical at every K.
  BoundaryEdge& add_edge(std::size_t source, std::size_t destination,
                         SimDuration min_delay);

  /// Runs all partitions to `t_end` (events exactly at `t_end` do not
  /// run, matching Simulator::run_until), exchanging boundary envelopes
  /// at safe-horizon barriers. Returns events executed by this call.
  std::uint64_t run_until(SimTime t_end);

  /// Global lookahead: the minimum min_delay over all edges (0 when no
  /// edges exist, in which case windows span straight to t_end).
  [[nodiscard]] SimDuration lookahead() const { return lookahead_; }

  /// Conservative global clock: the minimum of the partition clocks.
  [[nodiscard]] SimTime now() const;

  /// Total events executed across all partitions.
  [[nodiscard]] std::uint64_t events_executed() const;

  /// Safe horizon for one round, exposed for tests: the earliest pending
  /// event time across partitions plus the lookahead, capped at `t_end`;
  /// `t_end` directly when idle or edge-free.
  [[nodiscard]] SimTime safe_horizon(SimTime t_end) const;

 private:
  void drain_mailboxes();
  void execute_window(SimTime horizon);
  void start_workers();
  void stop_workers();
  void worker_loop(unsigned index);

  std::vector<std::unique_ptr<Simulator>> partitions_;
  std::vector<std::unique_ptr<BoundaryEdge>> edges_;
  SimDuration lookahead_{0};
  std::uint64_t next_external_seq_{EventQueue::kExternalSequenceBase};
  /// Drain scratch, reused across barriers: envelope plus its edge's
  /// destination partition, tagged at gather time.
  struct DrainEntry {
    BoundaryEnvelope* envelope;
    std::uint32_t destination;
  };
  std::vector<DrainEntry> batch_;

  // Worker gang (started lazily on the first parallel window). Round
  // protocol: the driver writes horizon_, bumps round_ (release); workers
  // acquire round_, run their owned partitions to horizon_, and drop
  // remaining_ (release) -- which the driver acquires, establishing the
  // happens-before edges both ways. No locks on the window path, so there
  // is no FF_CAPABILITY to guard by; the protocol IS the guard: horizon_
  // and the partition Simulators are published to workers by the round_
  // release store and handed back by the remaining_ release drop, and
  // TSan'd PartitionStress tests pin exactly those edges. Any new gang
  // state must be written only between a remaining_ acquire and the next
  // round_ bump (driver side) or read only after a round_ acquire
  // (worker side).
  unsigned requested_threads_{0};
  unsigned worker_count_{0};
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> round_{0};
  std::atomic<unsigned> remaining_{0};
  std::atomic<bool> stop_{false};
  SimTime horizon_{0};  ///< published by the round_ release store
};

}  // namespace ff::sim
