#pragma once

// Discrete-event simulation kernel.
//
// All FrameFeedback experiments execute on this kernel: devices, links and
// servers are plain objects that schedule callbacks. Determinism contract:
// given the same seed and the same construction order, two runs produce
// identical event sequences.

#include <cstdint>
#include <functional>
#include <string_view>

#include "ff/sim/event_queue.h"
#include "ff/util/rng.h"
#include "ff/util/units.h"

namespace ff::sim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `action` to run `delay` from now (clamped to >= 0).
  EventId schedule_in(SimDuration delay, std::function<void()> action);

  /// Schedules `action` at absolute time `t` (clamped to >= now).
  EventId schedule_at(SimTime t, std::function<void()> action);

  /// Cancels a pending event. Safe to call with stale/executed ids.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs until the queue drains or `t_end` is reached; events exactly at
  /// `t_end` do not run. Returns the number of events executed.
  std::uint64_t run_until(SimTime t_end);

  /// Runs until the queue drains. Returns the number of events executed.
  std::uint64_t run();

  /// Executes at most one event. Returns false when the queue is empty.
  bool step();

  /// True when no events are pending.
  [[nodiscard]] bool idle() const { return queue_.empty(); }

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

  /// Root seed of this run (for reporting).
  [[nodiscard]] std::uint64_t seed() const { return root_rng_.seed(); }

  /// Deterministic per-component RNG stream.
  [[nodiscard]] Rng make_rng(std::string_view label) const {
    return root_rng_.fork(label);
  }

  /// Total events executed so far.
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

 private:
  void execute(Event e);

  EventQueue queue_;
  SimTime now_{0};
  std::uint64_t executed_{0};
  Rng root_rng_;
};

}  // namespace ff::sim
