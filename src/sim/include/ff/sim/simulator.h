#pragma once

// Discrete-event simulation kernel.
//
// All FrameFeedback experiments execute on this kernel: devices, links and
// servers are plain objects that schedule callbacks. Determinism contract:
// given the same seed and the same construction order, two runs produce
// identical event sequences.

#include <algorithm>
#include <cstdint>
#include <string_view>
#include <utility>

#include "ff/sim/event_queue.h"
#include "ff/util/rng.h"
#include "ff/util/units.h"

namespace ff::sim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `action` to run `delay` from now (clamped to >= 0). The
  /// callable is forwarded straight into the event queue's slab, so small
  /// captures never materialize an intermediate task object.
  template <class F>
  EventId schedule_in(SimDuration delay, F&& action) {
    return queue_.schedule(
        now_ + std::max<SimDuration>(delay, 0), std::forward<F>(action));
  }

  /// Schedules `action` at absolute time `t` (clamped to >= now).
  template <class F>
  EventId schedule_at(SimTime t, F&& action) {
    return queue_.schedule(std::max(t, now_), std::forward<F>(action));
  }

  /// Schedules a cross-partition delivery at absolute time `t` (clamped to
  /// >= now) under a caller-assigned sequence from the external band (see
  /// EventQueue::kExternalSequenceBase). Used by sim::PartitionedSimulator
  /// when draining boundary mailboxes; not for ordinary scheduling.
  EventId schedule_external(SimTime t, std::uint64_t sequence,
                            InlineTask action) {
    return queue_.schedule_external(std::max(t, now_), sequence,
                                    std::move(action));
  }

  /// Cancels a pending event. Safe to call with stale/executed ids.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs until the queue drains or `t_end` is reached; events exactly at
  /// `t_end` do not run. Returns the number of events executed.
  std::uint64_t run_until(SimTime t_end);

  /// Runs until the queue drains. Returns the number of events executed.
  std::uint64_t run();

  /// Executes at most one event. Returns false when the queue is empty.
  bool step();

  /// True when no events are pending.
  [[nodiscard]] bool idle() const { return queue_.empty(); }

  /// Time of the earliest pending event; only valid when !idle(). The
  /// partitioned driver reads this to compute the global safe horizon.
  [[nodiscard]] SimTime next_event_time() const { return queue_.next_time(); }

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

  /// Root seed of this run (for reporting).
  [[nodiscard]] std::uint64_t seed() const { return root_rng_.seed(); }

  /// Deterministic per-component RNG stream.
  [[nodiscard]] Rng make_rng(std::string_view label) const {
    return root_rng_.fork(label);
  }

  /// Total events executed so far.
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Called just before each event's action runs, with the event's (time,
  /// sequence). A raw function pointer so the unset case is one predictable
  /// branch on the hot path. Used by determinism golden tests to fingerprint
  /// the executed event order; nullptr detaches.
  using EventObserver = void (*)(void* ctx, SimTime time,
                                 std::uint64_t sequence);
  void set_event_observer(EventObserver observer, void* ctx) {
    observer_ = observer;
    observer_ctx_ = ctx;
  }

 private:
  /// Pops and runs the earliest event, executing its task in place in the
  /// queue's slab (zero task moves per event).
  void execute_next() {
    queue_.visit_pop(
        [this](SimTime t, std::uint64_t sequence, InlineTask& task) {
          now_ = t;
          ++executed_;
          if (observer_ != nullptr) observer_(observer_ctx_, t, sequence);
          task();
        });
  }

  EventQueue queue_;
  SimTime now_{0};
  std::uint64_t executed_{0};
  EventObserver observer_{nullptr};
  void* observer_ctx_{nullptr};
  Rng root_rng_;
};

}  // namespace ff::sim
