#pragma once

// Periodic timer built on the kernel: drives controller measurement ticks,
// frame sources, heartbeats and schedule changes.

#include <functional>

#include "ff/sim/simulator.h"

namespace ff::sim {

/// Fires a callback every `period` until stopped. The callback receives the
/// tick index (0-based). Restart-safe; destruction stops the timer.
class PeriodicTimer {
 public:
  /// `sim` must outlive the timer.
  PeriodicTimer(Simulator& sim, std::function<void(std::uint64_t)> on_tick);
  ~PeriodicTimer();

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  /// Starts ticking with the first tick `initial_delay` from now and every
  /// `period` after. Restarting an active timer reschedules it.
  void start(SimDuration period, SimDuration initial_delay = 0);

  /// Stops future ticks; the tick counter is preserved.
  void stop();

  /// Changes the period; takes effect after the next tick (or immediately
  /// if stopped-then-started).
  void set_period(SimDuration period) { period_ = period; }

  [[nodiscard]] bool active() const { return active_; }
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }
  [[nodiscard]] SimDuration period() const { return period_; }

 private:
  void arm(SimDuration delay);
  void fire();

  Simulator& sim_;
  std::function<void(std::uint64_t)> on_tick_;
  SimDuration period_{0};
  EventId pending_{};
  bool active_{false};
  std::uint64_t ticks_{0};
};

/// One-shot timer with reschedule/cancel, e.g. retransmission timeouts.
/// The action is held in the timer and the scheduled event captures only
/// `this`, so arm/cancel churn stays allocation-free for inline-sized
/// actions.
class OneShotTimer {
 public:
  explicit OneShotTimer(Simulator& sim) : sim_(sim) {}
  ~OneShotTimer() { cancel(); }

  OneShotTimer(const OneShotTimer&) = delete;
  OneShotTimer& operator=(const OneShotTimer&) = delete;

  /// Schedules `action` after `delay`, cancelling any pending shot.
  void arm(SimDuration delay, InlineTask action);

  /// Cancels the pending shot, if any.
  void cancel();

  [[nodiscard]] bool armed() const { return armed_; }

 private:
  void fire();

  Simulator& sim_;
  InlineTask action_;
  EventId pending_{};
  bool armed_{false};
};

}  // namespace ff::sim
