#include "ff/sim/event_queue.h"

#include <algorithm>
#include <cassert>

namespace ff::sim {

EventId EventQueue::schedule(SimTime t, std::function<void()> action) {
  const std::uint64_t seq = next_sequence_++;
  const EventId id{seq + 1};  // ids start at 1 so {} means "no event"
  heap_.push_back(Entry{t, seq, id, std::move(action)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  live_.insert(id.value);
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (live_.erase(id.value) == 0) return false;
  drop_dead_front();
  return true;
}

void EventQueue::drop_dead_front() {
  while (!heap_.empty() && live_.find(heap_.front().id.value) == live_.end()) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

SimTime EventQueue::next_time() const {
  assert(!heap_.empty());
  return heap_.front().time;
}

Event EventQueue::pop() {
  assert(!live_.empty());
  drop_dead_front();
  assert(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  live_.erase(e.id.value);
  drop_dead_front();
  return Event{e.time, e.sequence, e.id, std::move(e.action)};
}

void EventQueue::clear() {
  heap_.clear();
  live_.clear();
}

}  // namespace ff::sim
