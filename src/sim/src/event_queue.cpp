#include "ff/sim/event_queue.h"

namespace ff::sim {

EventId EventQueue::schedule(SimTime t, InlineTask action) {
  const std::uint32_t slot = acquire_slot();
  slot_at(slot).task = std::move(action);
  return push_entry(t, slot);
}

EventId EventQueue::schedule_external(SimTime t, std::uint64_t sequence,
                                      InlineTask action) {
  assert(sequence >= kExternalSequenceBase &&
         "external sequences must come from the external band");
  const std::uint32_t slot = acquire_slot();
  slot_at(slot).task = std::move(action);
  return push_entry_with(t, slot, sequence);
}

EventQueue::~EventQueue() {
  for (std::uint32_t i = 0; i < slot_count_; ++i) slot_at(i).~Slot();
  for (Slot* chunk : chunks_) {
    ::operator delete(static_cast<void*>(chunk));
  }
}

std::uint32_t EventQueue::grow_slab() {
  assert(slot_count_ < kSlotMask && "pending-event cap exceeded");
  if (slot_count_ == chunks_.size() * kChunkSize) {
    constexpr std::size_t kChunkBytes = sizeof(Slot) * std::size_t{kChunkSize};
    // ff-lint: allow(raw-allocation) slab growth, amortized O(1/512) and
    // absent from steady state (allocation_test pins the hot path at zero)
    chunks_.push_back(static_cast<Slot*>(::operator new(kChunkBytes)));
  }
  const std::uint32_t slot = slot_count_++;
  ::new (static_cast<void*>(&chunks_.back()[slot & (kChunkSize - 1)])) Slot;
  return slot;
}

void EventQueue::clear() {
  heap_.clear();
  free_head_ = kNoFreeSlot;
  for (std::uint32_t i = slot_count_; i > 0; --i) {
    Slot& s = slot_at(i - 1);
    if (s.sequence != kFreeSequence) {
      s.task.reset();
      s.sequence = kFreeSequence;
    }
    s.next_free = free_head_;
    free_head_ = i - 1;
  }
}

}  // namespace ff::sim
