#include "ff/sim/partition.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

namespace ff::sim {
namespace {

constexpr SimTime kNoEvent = std::numeric_limits<SimTime>::max();

/// Bounded spin before yielding: windows are microseconds apart, so the
/// next round usually arrives before a context switch would finish.
class SpinWaiter {
 public:
  void wait() {
    if (++spins_ > kSpinLimit) std::this_thread::yield();
  }

 private:
  static constexpr unsigned kSpinLimit = 256;
  unsigned spins_{0};
};

}  // namespace

PartitionedSimulator::PartitionedSimulator(std::uint64_t seed)
    : PartitionedSimulator(seed, Options{}) {}

PartitionedSimulator::PartitionedSimulator(std::uint64_t seed,
                                           Options options)
    : requested_threads_(options.threads) {
  if (options.partitions == 0) {
    throw std::invalid_argument(
        "PartitionedSimulator: partition count must be >= 1");
  }
  partitions_.reserve(options.partitions);
  for (std::size_t i = 0; i < options.partitions; ++i) {
    partitions_.push_back(std::make_unique<Simulator>(seed));
  }
}

PartitionedSimulator::~PartitionedSimulator() { stop_workers(); }

BoundaryEdge& PartitionedSimulator::add_edge(std::size_t source,
                                             std::size_t destination,
                                             SimDuration min_delay) {
  if (source >= partitions_.size() || destination >= partitions_.size()) {
    throw std::invalid_argument(
        "PartitionedSimulator::add_edge: partition index out of range");
  }
  if (min_delay <= 0) {
    throw std::invalid_argument(
        "PartitionedSimulator::add_edge: zero or negative minimum delay on "
        "edge " +
        std::to_string(source) + "->" + std::to_string(destination) +
        "; conservative synchronization needs a strictly positive lookahead "
        "(the link's minimum propagation delay)");
  }
  edges_.push_back(std::unique_ptr<BoundaryEdge>(
      // ff-lint: allow(raw-allocation) topology setup, not the event path
      // (private ctor keeps make_unique out)
      new BoundaryEdge(edges_.size(), source, destination, min_delay)));
  lookahead_ = lookahead_ == 0 ? min_delay : std::min(lookahead_, min_delay);
  return *edges_.back();
}

SimTime PartitionedSimulator::now() const {
  SimTime t = kNoEvent;
  for (const auto& p : partitions_) t = std::min(t, p->now());
  return t;
}

std::uint64_t PartitionedSimulator::events_executed() const {
  std::uint64_t n = 0;
  for (const auto& p : partitions_) n += p->events_executed();
  return n;
}

SimTime PartitionedSimulator::safe_horizon(SimTime t_end) const {
  SimTime next = kNoEvent;
  for (const auto& p : partitions_) {
    if (!p->idle()) next = std::min(next, p->next_event_time());
  }
  if (next >= t_end || edges_.empty()) return t_end;
  return std::min(next + lookahead_, t_end);
}

std::uint64_t PartitionedSimulator::run_until(SimTime t_end) {
  const std::uint64_t before = events_executed();
  // Envelopes can be pending from a previous call's final window.
  drain_mailboxes();
  while (true) {
    SimTime next = kNoEvent;
    for (const auto& p : partitions_) {
      if (!p->idle()) next = std::min(next, p->next_event_time());
    }
    if (next >= t_end) break;
    const SimTime horizon =
        edges_.empty() ? t_end : std::min(next + lookahead_, t_end);
    execute_window(horizon);
    drain_mailboxes();
  }
  // Advance every clock to the horizon (no events remain before it).
  for (const auto& p : partitions_) p->run_until(t_end);
  return events_executed() - before;
}

void PartitionedSimulator::drain_mailboxes() {
  batch_.clear();
  // Gather in edge-creation order: for full (deliver_at, post_time) ties
  // the stable sort below preserves this order -- edge id first, then
  // intra-edge FIFO.
  for (const auto& edge : edges_) {
    for (BoundaryEnvelope& env : edge->pending_) {
      batch_.push_back(
          DrainEntry{&env, static_cast<std::uint32_t>(edge->destination_)});
    }
  }
  if (batch_.empty()) return;
  std::stable_sort(batch_.begin(), batch_.end(),
                   [](const DrainEntry& a, const DrainEntry& b) {
                     if (a.envelope->deliver_at != b.envelope->deliver_at) {
                       return a.envelope->deliver_at < b.envelope->deliver_at;
                     }
                     return a.envelope->post_time < b.envelope->post_time;
                   });
  for (const DrainEntry& entry : batch_) {
    (void)partitions_[entry.destination]->schedule_external(
        entry.envelope->deliver_at, next_external_seq_++,
        std::move(entry.envelope->action));
  }
  for (const auto& edge : edges_) edge->pending_.clear();
}

void PartitionedSimulator::execute_window(SimTime horizon) {
  unsigned want = requested_threads_ == 0
                      ? static_cast<unsigned>(std::min<std::size_t>(
                            partitions_.size(),
                            std::max(1u, std::thread::hardware_concurrency())))
                      : static_cast<unsigned>(std::min<std::size_t>(
                            partitions_.size(), requested_threads_));
  if (want <= 1) {
    for (const auto& p : partitions_) p->run_until(horizon);
    return;
  }
  if (workers_.empty()) {
    worker_count_ = want;
    start_workers();
  }
  horizon_ = horizon;
  remaining_.store(worker_count_, std::memory_order_relaxed);
  round_.fetch_add(1, std::memory_order_release);
  SpinWaiter waiter;
  while (remaining_.load(std::memory_order_acquire) != 0) waiter.wait();
}

void PartitionedSimulator::start_workers() {
  workers_.reserve(worker_count_);
  for (unsigned w = 0; w < worker_count_; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

void PartitionedSimulator::stop_workers() {
  if (workers_.empty()) return;
  stop_.store(true, std::memory_order_release);
  for (std::thread& t : workers_) t.join();
  workers_.clear();
}

void PartitionedSimulator::worker_loop(unsigned index) {
  std::uint64_t seen_round = 0;
  while (true) {
    std::uint64_t r = seen_round;
    SpinWaiter waiter;
    while ((r = round_.load(std::memory_order_acquire)) == seen_round) {
      if (stop_.load(std::memory_order_acquire)) return;
      waiter.wait();
    }
    seen_round = r;
    const SimTime horizon = horizon_;
    // Static partition ownership: worker w always advances partitions
    // w, w + W, w + 2W, ... so a partition's state is only ever touched
    // by one thread per run.
    for (std::size_t p = index; p < partitions_.size(); p += worker_count_) {
      partitions_[p]->run_until(horizon);
    }
    remaining_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

}  // namespace ff::sim
