#include "ff/sim/simulator.h"

#include <algorithm>
#include <utility>

namespace ff::sim {

Simulator::Simulator(std::uint64_t seed) : root_rng_(seed) {}

EventId Simulator::schedule_in(SimDuration delay, std::function<void()> action) {
  return schedule_at(now_ + std::max<SimDuration>(delay, 0), std::move(action));
}

EventId Simulator::schedule_at(SimTime t, std::function<void()> action) {
  return queue_.schedule(std::max(t, now_), std::move(action));
}

void Simulator::execute(Event e) {
  now_ = e.time;
  ++executed_;
  e.action();
}

std::uint64_t Simulator::run_until(SimTime t_end) {
  std::uint64_t n = 0;
  while (!queue_.empty() && queue_.next_time() < t_end) {
    execute(queue_.pop());
    ++n;
  }
  // Advance the clock to the horizon even if the queue drained early so
  // callers observing now() see a consistent end time.
  now_ = std::max(now_, t_end);
  return n;
}

std::uint64_t Simulator::run() {
  std::uint64_t n = 0;
  while (!queue_.empty()) {
    execute(queue_.pop());
    ++n;
  }
  return n;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  execute(queue_.pop());
  return true;
}

}  // namespace ff::sim
