#include "ff/sim/simulator.h"

namespace ff::sim {

Simulator::Simulator(std::uint64_t seed) : root_rng_(seed) {}

std::uint64_t Simulator::run_until(SimTime t_end) {
  std::uint64_t n = 0;
  while (!queue_.empty() && queue_.next_time() < t_end) {
    execute_next();
    ++n;
  }
  // Advance the clock to the horizon even if the queue drained early so
  // callers observing now() see a consistent end time.
  now_ = std::max(now_, t_end);
  return n;
}

std::uint64_t Simulator::run() {
  std::uint64_t n = 0;
  while (!queue_.empty()) {
    execute_next();
    ++n;
  }
  return n;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  execute_next();
  return true;
}

}  // namespace ff::sim
