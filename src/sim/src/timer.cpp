#include "ff/sim/timer.h"

#include <utility>

namespace ff::sim {

PeriodicTimer::PeriodicTimer(Simulator& sim,
                             std::function<void(std::uint64_t)> on_tick)
    : sim_(sim), on_tick_(std::move(on_tick)) {}

PeriodicTimer::~PeriodicTimer() { stop(); }

void PeriodicTimer::start(SimDuration period, SimDuration initial_delay) {
  stop();
  period_ = period;
  active_ = true;
  arm(initial_delay);
}

void PeriodicTimer::stop() {
  if (active_) {
    sim_.cancel(pending_);
    active_ = false;
    pending_ = {};
  }
}

void PeriodicTimer::arm(SimDuration delay) {
  pending_ = sim_.schedule_in(delay, [this] { fire(); });
}

void PeriodicTimer::fire() {
  if (!active_) return;
  const std::uint64_t tick = ticks_++;
  // Re-arm before the callback so a callback calling stop()/start() wins.
  arm(period_);
  on_tick_(tick);
}

void OneShotTimer::arm(SimDuration delay, InlineTask action) {
  cancel();
  armed_ = true;
  action_ = std::move(action);
  pending_ = sim_.schedule_in(delay, [this] { fire(); });
}

void OneShotTimer::fire() {
  armed_ = false;
  pending_ = {};
  // Move out first so the action may re-arm this timer.
  InlineTask action = std::move(action_);
  action();
}

void OneShotTimer::cancel() {
  if (armed_) {
    sim_.cancel(pending_);
    armed_ = false;
    pending_ = {};
    action_.reset();
  }
}

}  // namespace ff::sim
