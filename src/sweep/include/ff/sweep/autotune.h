#pragma once

// Automatic gain search. The paper tunes (Kp, Kd) by hand because
// Ziegler-Nichols does not apply to the piecewise PV (§III-B); here the
// manual procedure is mechanized: run the tuning scenario over a gain
// grid (a sweep with one controller variant per pair), score each
// response for rise time, overshoot, steady oscillation and
// post-disturbance behaviour, and return the best pair. Used by
// bench/autotune to check that an objective search lands near the
// paper's shipped (0.2, 0.26).

#include <vector>

#include "ff/control/tuner.h"
#include "ff/core/scenario.h"

namespace ff::sweep {

struct AutoTuneConfig {
  /// Scenario to evaluate on; must contain exactly one device. The
  /// default is the paper's Fig. 2 setup (loss injected at 27 s).
  core::Scenario scenario{core::Scenario::paper_tuning()};
  /// Moment the disturbance hits, splitting the scoring windows.
  SimTime disturbance_at{27 * kSecond};
  std::vector<double> kp_grid{0.05, 0.1, 0.2, 0.4, 0.8};
  std::vector<double> kd_grid{0.0, 0.13, 0.26, 0.52};
  /// Weight of the post-disturbance oscillation in the composite score.
  double disturbance_weight{2.0};
  /// Worker threads for the sweep (0 = shared pool, 1 = serial).
  std::size_t threads{0};
};

struct GainScore {
  double kp{0.0};
  double kd{0.0};
  control::ResponseMetrics clean{};      ///< before the disturbance
  control::ResponseMetrics disturbed{};  ///< after it
  double score{0.0};                     ///< lower is better
  double mean_throughput{0.0};
};

struct AutoTuneResult {
  GainScore best{};
  std::vector<GainScore> all;  ///< grid order (kp-major)
};

/// Runs the grid as a sweep (SeedMode::kScenario, so every pair sees the
/// scenario's own seed). Throws std::invalid_argument on an empty grid
/// or a scenario without exactly one device.
[[nodiscard]] AutoTuneResult auto_tune(const AutoTuneConfig& config);

}  // namespace ff::sweep
