#pragma once

// Declarative experiment sweep engine: every figure, table and ablation in
// the reproduction is a loop over experiments -- a cross product of
// scenario axes x controller variants x seed replicates. This library runs
// that cross product concurrently on rt::default_pool() (or a dedicated
// pool) with deterministic per-point seed derivation, so a parallel sweep
// is bit-identical to the same sweep run serially. It aggregates
// replicates into mean/stddev/CI summaries, streams progress and totals
// through ff_obs, and exports CSV and the BENCH_*.json shape from one
// writer instead of one hand-rolled loop per bench target.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "ff/core/experiment.h"
#include "ff/core/scenario.h"
#include "ff/obs/metrics.h"
#include "ff/obs/trace.h"
#include "ff/util/stats.h"

namespace ff::sweep {

/// One value of a scenario axis: a label (used in point names and CSV
/// cells) plus a mutation applied to a copy of the base scenario.
struct AxisValue {
  std::string label;
  std::function<void(core::Scenario&)> apply;
};

/// A named parameter axis; the sweep runs the cross product of all axes.
struct Axis {
  std::string name;
  std::vector<AxisValue> values;
};

/// Axis over Scenario::partitions ("K=<n>" labels; 0 = the legacy
/// single-simulator path). Partitioned points (K >= 1) produce identical
/// fingerprints for every K -- sweeping this axis is the determinism
/// matrix -- while K = 0 differs in event bookkeeping only.
[[nodiscard]] Axis partition_axis(std::vector<std::size_t> counts);

/// Axis over fleet size ("M=<n>" labels): replaces Scenario::fleet with a
/// uniform topology of `count` copies of the scenario's server profile,
/// each carrying a copy of the scenario's background load. M = 1 is the
/// degenerate topology, bit-identical to the legacy single-server wiring.
[[nodiscard]] Axis server_count_axis(std::vector<std::size_t> counts);

/// Axis over placement policies: each value installs a PlacementFactory
/// into Scenario::fleet.placement (labels name the policy; an empty
/// factory means the built-in round-robin default). Compose after
/// server_count_axis -- axes apply in declaration order.
[[nodiscard]] Axis placement_axis(
    std::vector<std::pair<std::string, core::PlacementFactory>> policies);

/// A controller under test. Factories are invoked concurrently from pool
/// workers and must be pure (capture configuration by value, allocate a
/// fresh controller per call).
struct ControllerVariant {
  std::string name;
  core::ControllerFactory factory;
};

/// Named scalar extracted from a finished run; one CSV column per probe.
struct MetricProbe {
  std::string name;
  std::function<double(const core::ExperimentResult&)> extract;
};

enum class SeedMode {
  /// Seed = splitmix64 of the base scenario seed x linear point index
  /// (see derive_point_seed): every point gets an independent stream and
  /// the derivation depends only on the index, never on thread count.
  kDerived,
  /// Keep the (possibly axis-mutated) scenario's own seed; replicate r
  /// runs with seed + r. Use for exact reproduction of the paper's
  /// single-seed figures (seed 42) and explicit seed ladders.
  kScenario,
};

/// Identity of one point in the cross product.
struct PointDesc {
  std::size_t index{0};  ///< linear index, axis-major then controller
                         ///< then replicate
  std::vector<std::size_t> axis_indices;
  std::vector<std::string> coordinates;  ///< axis value labels, in order
  std::size_t controller_index{0};
  std::string controller;
  std::size_t replicate{0};
  std::uint64_t seed{0};
  /// "axis=value,...,controller" plus "#replicate" when replicated.
  std::string label;
};

struct SweepConfig {
  std::string name{"sweep"};
  core::Scenario base{};
  std::vector<Axis> axes;
  std::vector<ControllerVariant> controllers;
  std::size_t replicates{1};
  SeedMode seed_mode{SeedMode::kDerived};
  /// 0 = shared rt::default_pool(); 1 = serial on the calling thread;
  /// N > 1 = dedicated pool of N workers. Results are bit-identical
  /// across all choices.
  std::size_t threads{0};
  std::vector<MetricProbe> probes;
  /// Optional per-sweep metrics, labelled {sweep=<name>}: points_total
  /// gauge, points_done / events_executed counters and one distribution
  /// per probe. Updated from the calling thread only; the registry is
  /// not otherwise synchronized.
  obs::MetricsRegistry* metrics{nullptr};
  /// Optional span sink: sweep.start / sweep.point / sweep.done emitted
  /// from the calling thread as points land. With trace_experiments the
  /// sink is also attached to every experiment, wrapped in an internal
  /// obs::SynchronizedTraceSink (event order across concurrently running
  /// points is then unspecified; per-point content is deterministic).
  obs::TraceSink* trace{nullptr};
  bool trace_experiments{false};
  /// Progress hook, called on the calling thread as each point lands (in
  /// linear index order).
  std::function<void(const PointDesc&, std::size_t done, std::size_t total)>
      on_point;
};

/// One finished experiment of the sweep.
struct SweepPoint {
  PointDesc desc;
  core::ExperimentResult result;
  std::vector<double> metrics;  ///< aligned with SweepConfig::probes
};

struct SweepResult {
  std::string name;
  std::vector<std::string> axis_names;
  std::vector<std::size_t> axis_sizes;
  std::size_t controller_count{0};
  std::size_t replicate_count{1};
  std::vector<std::string> metric_names;
  std::vector<SweepPoint> points;  ///< linear order (see PointDesc::index)

  /// Linear index of (axis value indices, controller, replicate).
  [[nodiscard]] std::size_t index_of(
      const std::vector<std::size_t>& axis_indices, std::size_t controller,
      std::size_t replicate) const;

  [[nodiscard]] const SweepPoint& at(
      const std::vector<std::size_t>& axis_indices, std::size_t controller,
      std::size_t replicate) const {
    return points.at(index_of(axis_indices, controller, replicate));
  }
};

/// Deterministic per-point seed (SeedMode::kDerived): one splitmix64 step
/// of base_seed perturbed by the linear point index. Depends only on
/// (base_seed, point_index), so serial and parallel sweeps agree.
[[nodiscard]] std::uint64_t derive_point_seed(std::uint64_t base_seed,
                                              std::uint64_t point_index);

/// Runs the full cross product. Throws std::invalid_argument on an empty
/// controller list, an axis without values, or zero replicates.
[[nodiscard]] SweepResult run(const SweepConfig& config);

/// Order-sensitive FNV-1a fingerprint over everything an ExperimentResult
/// carries: identity, totals, transport/server stats and the bit pattern
/// of every (time, value) series sample. Equal results hash equal; any
/// divergence (a reordered event, a perturbed double) changes the hash.
[[nodiscard]] std::uint64_t result_fingerprint(
    const core::ExperimentResult& result);

/// Replicate aggregate of one probe within one cell (axes x controller).
struct MetricSummary {
  std::string name;
  StreamingStats stats;  ///< over replicates
  MeanCi ci;             ///< 95% normal-approximation interval
};

/// All replicates of one (axes, controller) cell, aggregated.
struct CellSummary {
  PointDesc first;  ///< replicate-0 point of the cell
  std::vector<MetricSummary> metrics;
};

/// Aggregates every cell's replicates; cells appear in linear order.
[[nodiscard]] std::vector<CellSummary> aggregate(const SweepResult& result);

/// Per-point CSV: index, axes..., controller, replicate, seed,
/// fingerprint, then one column per probe.
void write_points_csv(const SweepResult& result, std::ostream& os);
void write_points_csv(const SweepResult& result, const std::string& path);

/// Per-cell CSV: axes..., controller, n, then mean/stddev/ci_half per
/// probe.
void write_summary_csv(const SweepResult& result,
                       const std::vector<CellSummary>& cells,
                       std::ostream& os);
void write_summary_csv(const SweepResult& result,
                       const std::vector<CellSummary>& cells,
                       const std::string& path);

/// One named series of one device from every point, long form with the
/// point label as the series name -- the shape util::write_bundle_csv
/// produces, so existing figure plotting keeps working.
void write_series_csv(const SweepResult& result, const std::string& series,
                      std::size_t device_index, std::ostream& os);
void write_series_csv(const SweepResult& result, const std::string& series,
                      std::size_t device_index, const std::string& path);

/// The BENCH_<suite>.json shape the micro-benches emit ({"suite": ...,
/// "benchmarks": [...]}), one entry per point with its seed, fingerprint
/// and probe values.
void write_bench_json(const SweepResult& result, std::ostream& os);
void write_bench_json(const SweepResult& result, const std::string& path);

}  // namespace ff::sweep
