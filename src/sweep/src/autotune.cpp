#include "ff/sweep/autotune.h"

#include <stdexcept>
#include <utility>

#include "ff/control/frame_feedback.h"
#include "ff/core/experiment.h"
#include "ff/sweep/sweep.h"
#include "ff/util/ascii_plot.h"

namespace ff::sweep {

AutoTuneResult auto_tune(const AutoTuneConfig& config) {
  if (config.kp_grid.empty() || config.kd_grid.empty()) {
    throw std::invalid_argument("auto_tune: empty gain grid");
  }
  if (config.scenario.devices.size() != 1) {
    throw std::invalid_argument("auto_tune: scenario must have one device");
  }

  const auto grid = control::gain_grid(config.kp_grid, config.kd_grid);
  const double fs = config.scenario.devices[0].source_fps;

  SweepConfig sweep;
  sweep.name = "autotune";
  sweep.base = config.scenario;
  sweep.seed_mode = SeedMode::kScenario;
  sweep.threads = config.threads;
  sweep.controllers.reserve(grid.size());
  for (const auto& [kp, kd] : grid) {
    control::FrameFeedbackConfig c;
    c.kp = kp;
    c.kd = kd;
    sweep.controllers.push_back(
        {"Kp=" + fmt(kp) + ",Kd=" + fmt(kd),
         core::make_controller_factory<control::FrameFeedbackController>(c)});
  }

  // Grid order == controller order == linear point order (no axes, one
  // replicate), so `all` keeps the kp-major layout callers rely on.
  const SweepResult result = run(sweep);

  AutoTuneResult out;
  out.all.reserve(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const core::ExperimentResult& r = result.points[i].result;
    const TimeSeries& po = *r.devices[0].series.find("Po_target");

    GainScore g;
    g.kp = grid[i].first;
    g.kd = grid[i].second;
    g.clean = control::analyze_response(po, 0, config.disturbance_at, fs);
    g.disturbed = control::analyze_response(po, config.disturbance_at,
                                            r.duration, fs);
    g.mean_throughput = r.devices[0].mean_throughput();
    g.score = control::tuning_score(g.clean) +
              config.disturbance_weight * g.disturbed.steady_oscillation;
    out.all.push_back(g);
  }

  out.best = out.all.front();
  for (const auto& g : out.all) {
    if (g.score < out.best.score) out.best = g;
  }
  return out;
}

}  // namespace ff::sweep
