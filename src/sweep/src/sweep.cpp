#include "ff/sweep/sweep.h"

#include <bit>
#include <fstream>
#include <future>
#include <optional>
#include <stdexcept>
#include <utility>

#include "ff/rt/thread_pool.h"
#include "ff/util/csv.h"
#include "ff/util/rng.h"

namespace ff::sweep {

namespace {

/// FNV-1a over 64-bit words, mixed byte-wise (the same construction the
/// golden determinism test uses for event streams).
struct Fnv64 {
  std::uint64_t hash{1469598103934665603ull};

  void mix(std::uint64_t v) {
    for (int shift = 0; shift < 64; shift += 8) {
      hash ^= (v >> shift) & 0xff;
      hash *= 1099511628211ull;
    }
  }
  void mix_double(double d) { mix(std::bit_cast<std::uint64_t>(d)); }
  void mix_str(const std::string& s) { mix(hash_label(s)); }
  void mix_stats(const StreamingStats& s) {
    mix(s.count());
    mix_double(s.mean());
    mix_double(s.min());
    mix_double(s.max());
  }
};

std::size_t checked_total(const SweepConfig& config) {
  if (config.controllers.empty()) {
    throw std::invalid_argument("sweep::run: no controller variants");
  }
  if (config.replicates == 0) {
    throw std::invalid_argument("sweep::run: zero replicates");
  }
  std::size_t total = config.controllers.size() * config.replicates;
  for (const Axis& axis : config.axes) {
    if (axis.values.empty()) {
      throw std::invalid_argument("sweep::run: axis '" + axis.name +
                                  "' has no values");
    }
    total *= axis.values.size();
  }
  return total;
}

/// Builds the identity of every point, in linear order: axes vary
/// slowest (first axis outermost), then controller, then replicate.
std::vector<PointDesc> enumerate_points(const SweepConfig& config,
                                        std::size_t total) {
  std::vector<PointDesc> descs;
  descs.reserve(total);
  std::vector<std::size_t> axis_indices(config.axes.size(), 0);

  for (std::size_t index = 0; index < total; ++index) {
    PointDesc d;
    d.index = index;
    // Decompose the linear index, replicate fastest.
    std::size_t rest = index;
    d.replicate = rest % config.replicates;
    rest /= config.replicates;
    d.controller_index = rest % config.controllers.size();
    rest /= config.controllers.size();
    for (std::size_t a = config.axes.size(); a-- > 0;) {
      axis_indices[a] = rest % config.axes[a].values.size();
      rest /= config.axes[a].values.size();
    }
    d.axis_indices = axis_indices;
    d.controller = config.controllers[d.controller_index].name;
    for (std::size_t a = 0; a < config.axes.size(); ++a) {
      d.coordinates.push_back(config.axes[a].values[axis_indices[a]].label);
      d.label += config.axes[a].name + "=" + d.coordinates.back() + ",";
    }
    d.label += d.controller;
    if (config.replicates > 1) {
      d.label += "#" + std::to_string(d.replicate);
    }
    descs.push_back(std::move(d));
  }
  return descs;
}

/// Applies the axis mutations and seed policy, runs the experiment and
/// extracts the probes. Called from pool workers; everything it touches
/// is either point-local or const shared config.
SweepPoint run_point(const SweepConfig& config, PointDesc desc,
                     obs::TraceSink* experiment_sink) {
  core::Scenario scenario = config.base;
  for (std::size_t a = 0; a < config.axes.size(); ++a) {
    const AxisValue& value = config.axes[a].values[desc.axis_indices[a]];
    if (value.apply) value.apply(scenario);
  }
  scenario.seed = desc.seed;

  core::Experiment experiment(
      scenario, config.controllers[desc.controller_index].factory);
  if (experiment_sink != nullptr) {
    experiment.set_trace_sink(experiment_sink);
  }

  SweepPoint point;
  point.desc = std::move(desc);
  point.result = experiment.run();
  point.metrics.reserve(config.probes.size());
  for (const MetricProbe& probe : config.probes) {
    point.metrics.push_back(probe.extract(point.result));
  }
  return point;
}

void cell_key_columns(CsvWriter& w, const PointDesc& desc) {
  for (const std::string& coordinate : desc.coordinates) {
    w.field(coordinate);
  }
  w.field(desc.controller);
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::uint64_t derive_point_seed(std::uint64_t base_seed,
                                std::uint64_t point_index) {
  // One splitmix64 step of the base seed perturbed by the index; the
  // golden-ratio multiplier keeps consecutive indices far apart in the
  // input domain before mixing.
  std::uint64_t state = base_seed ^ (0x9e3779b97f4a7c15ULL * (point_index + 1));
  return splitmix64(state);
}

std::size_t SweepResult::index_of(
    const std::vector<std::size_t>& axis_indices, std::size_t controller,
    std::size_t replicate) const {
  if (axis_indices.size() != axis_sizes.size()) {
    throw std::out_of_range("SweepResult::index_of: axis rank mismatch");
  }
  std::size_t index = 0;
  for (std::size_t a = 0; a < axis_sizes.size(); ++a) {
    if (axis_indices[a] >= axis_sizes[a]) {
      throw std::out_of_range("SweepResult::index_of: axis index");
    }
    index = index * axis_sizes[a] + axis_indices[a];
  }
  if (controller >= controller_count || replicate >= replicate_count) {
    throw std::out_of_range("SweepResult::index_of: controller/replicate");
  }
  return (index * controller_count + controller) * replicate_count + replicate;
}

SweepResult run(const SweepConfig& config) {
  const std::size_t total = checked_total(config);
  std::vector<PointDesc> descs = enumerate_points(config, total);

  // Seed policy. Both modes depend only on the point identity, never on
  // execution order, which is what makes parallel == serial.
  for (PointDesc& d : descs) {
    if (config.seed_mode == SeedMode::kDerived) {
      d.seed = derive_point_seed(config.base.seed, d.index);
    } else {
      core::Scenario probe = config.base;
      for (std::size_t a = 0; a < config.axes.size(); ++a) {
        const AxisValue& value = config.axes[a].values[d.axis_indices[a]];
        if (value.apply) value.apply(probe);
      }
      d.seed = probe.seed + d.replicate;
    }
  }

  // Observability plumbing. Sweep-level events and registry updates
  // happen on this thread only; experiment traces (opt-in) are emitted
  // from workers through one synchronized wrapper.
  std::optional<obs::SynchronizedTraceSink> synchronized;
  obs::TraceSink* sink = nullptr;
  if (config.trace != nullptr) {
    synchronized.emplace(*config.trace);
    sink = &*synchronized;
  }
  obs::TraceSink* experiment_sink = config.trace_experiments ? sink : nullptr;

  const obs::Labels labels{{"sweep", config.name}};
  obs::Counter* points_done = nullptr;
  obs::Counter* events_executed = nullptr;
  std::vector<obs::Distribution*> probe_dists;
  if (config.metrics != nullptr) {
    config.metrics->gauge("sweep.points_total", labels)
        .set(static_cast<double>(total));
    points_done = &config.metrics->counter("sweep.points_done", labels);
    events_executed = &config.metrics->counter("sweep.events_executed", labels);
    for (const MetricProbe& probe : config.probes) {
      obs::Labels probe_labels = labels;
      probe_labels.emplace_back("metric", probe.name);
      probe_dists.push_back(
          &config.metrics->distribution("sweep.metric", probe_labels));
    }
  }

  if (sink != nullptr) {
    sink->emit(obs::TraceEvent(0, obs::ev::kSweepStart, config.name)
                   .with("points", static_cast<double>(total))
                   .with("replicates",
                         static_cast<double>(config.replicates)));
  }

  SweepResult result;
  result.name = config.name;
  for (const Axis& axis : config.axes) {
    result.axis_names.push_back(axis.name);
    result.axis_sizes.push_back(axis.values.size());
  }
  result.controller_count = config.controllers.size();
  result.replicate_count = config.replicates;
  for (const MetricProbe& probe : config.probes) {
    result.metric_names.push_back(probe.name);
  }
  result.points.reserve(total);

  std::size_t done = 0;
  auto land = [&](SweepPoint point) {
    if (points_done != nullptr) points_done->add(1.0);
    if (events_executed != nullptr) {
      events_executed->add(static_cast<double>(point.result.events_executed));
    }
    for (std::size_t m = 0; m < probe_dists.size(); ++m) {
      probe_dists[m]->observe(point.metrics[m]);
    }
    if (sink != nullptr) {
      sink->emit(obs::TraceEvent(point.result.duration, obs::ev::kSweepPoint,
                                 config.name)
                     .with_id(point.desc.index)
                     .with_detail("point", point.desc.label)
                     .with("events",
                           static_cast<double>(point.result.events_executed))
                     .with("replicate",
                           static_cast<double>(point.desc.replicate)));
    }
    ++done;
    if (config.on_point) config.on_point(point.desc, done, total);
    result.points.push_back(std::move(point));
  };

  if (config.threads == 1) {
    // Literal serial mode: no pool involved at all. The reference
    // ordering every parallel run must reproduce.
    for (PointDesc& d : descs) {
      land(run_point(config, std::move(d), experiment_sink));
    }
  } else {
    std::optional<rt::ThreadPool> owned;
    if (config.threads > 1) owned.emplace(config.threads);
    rt::ThreadPool& pool = owned ? *owned : rt::default_pool();

    std::vector<std::future<SweepPoint>> futures;
    futures.reserve(total);
    for (PointDesc& d : descs) {
      futures.push_back(pool.submit(
          [&config, desc = std::move(d), experiment_sink]() mutable {
            return run_point(config, std::move(desc), experiment_sink);
          }));
    }
    // Collect in linear order: output order, metrics and progress are
    // then independent of completion order.
    for (auto& future : futures) {
      land(future.get());
    }
  }

  if (sink != nullptr) {
    sink->emit(obs::TraceEvent(0, obs::ev::kSweepDone, config.name)
                   .with("points", static_cast<double>(total)));
  }
  return result;
}

Axis partition_axis(std::vector<std::size_t> counts) {
  Axis axis;
  axis.name = "partitions";
  for (const std::size_t k : counts) {
    axis.values.push_back(AxisValue{
        "K=" + std::to_string(k),
        [k](core::Scenario& s) { s.partitions = k; }});
  }
  return axis;
}

Axis server_count_axis(std::vector<std::size_t> counts) {
  Axis axis;
  axis.name = "servers";
  for (const std::size_t m : counts) {
    axis.values.push_back(AxisValue{
        "M=" + std::to_string(m), [m](core::Scenario& s) {
          core::FleetTopology fleet =
              core::FleetTopology::uniform(s.server, std::max<std::size_t>(
                                                        m, 1));
          for (auto& spec : fleet.servers) {
            spec.background_load = s.background_load;
            spec.background = s.background;
          }
          // Preserve placement/tenancy settings composed by earlier axes.
          fleet.placement = std::move(s.fleet.placement);
          fleet.placement_hints = std::move(s.fleet.placement_hints);
          fleet.tenants = std::move(s.fleet.tenants);
          s.fleet = std::move(fleet);
        }});
  }
  return axis;
}

Axis placement_axis(
    std::vector<std::pair<std::string, core::PlacementFactory>> policies) {
  Axis axis;
  axis.name = "placement";
  for (auto& [label, factory] : policies) {
    axis.values.push_back(AxisValue{
        label, [factory](core::Scenario& s) { s.fleet.placement = factory; }});
  }
  return axis;
}

std::uint64_t result_fingerprint(const core::ExperimentResult& result) {
  Fnv64 f;
  f.mix_str(result.scenario);
  f.mix(result.seed);
  f.mix(static_cast<std::uint64_t>(result.duration));
  f.mix(result.events_executed);
  f.mix(result.devices.size());
  for (const core::DeviceResult& d : result.devices) {
    f.mix_str(d.name);
    f.mix_str(d.controller);
    f.mix(d.totals.frames_captured);
    f.mix(d.totals.local_completions);
    f.mix(d.totals.local_drops);
    f.mix(d.totals.offload_attempts);
    f.mix(d.totals.offload_successes);
    f.mix(d.totals.timeouts_network);
    f.mix(d.totals.timeouts_load);
    f.mix(d.totals.admission_rejections);
    f.mix(d.totals.in_flight_at_end);
    f.mix(d.initial_server);
    f.mix(d.final_server);
    f.mix(d.offload.attempts);
    f.mix(d.offload.successes);
    f.mix(d.offload.timeouts_network);
    f.mix(d.offload.timeouts_load);
    f.mix(d.offload.late_responses);
    f.mix(d.offload.probes_sent);
    f.mix(d.offload.probes_ok);
    f.mix(d.offload.probes_failed);
    f.mix_stats(d.offload.latency_us);
    f.mix(d.uplink.messages_sent);
    f.mix(d.uplink.sends_succeeded);
    f.mix(d.uplink.sends_failed);
    f.mix(d.uplink.sends_cancelled);
    f.mix(d.uplink.messages_delivered);
    f.mix(d.uplink.fragments_sent);
    f.mix(d.uplink.retransmissions);
    f.mix(d.uplink.acks_received);
    f.mix(d.uplink.duplicate_fragments);
    f.mix(d.uplink.partials_expired);
    f.mix_double(d.energy_joules);
    for (const std::string& name : d.series.names()) {
      const TimeSeries* series = d.series.find(name);
      f.mix_str(name);
      f.mix(series->size());
      for (const TimePoint& p : series->points()) {
        f.mix(static_cast<std::uint64_t>(p.time));
        f.mix_double(p.value);
      }
    }
  }
  f.mix(result.servers.size());
  for (const core::ServerResult& s : result.servers) {
    f.mix_str(s.name);
    f.mix(s.stats.requests_received);
    f.mix(s.stats.requests_completed);
    f.mix(s.stats.requests_rejected);
    f.mix(s.stats.requests_admission_rejected);
    f.mix(s.stats.batches_executed);
    f.mix_stats(s.stats.batch_size);
    f.mix_stats(s.stats.service_latency_us);
    f.mix(static_cast<std::uint64_t>(s.stats.gpu_busy_time));
    f.mix_double(s.gpu_utilization);
    f.mix(s.admission.admitted);
    f.mix(s.admission.rejected);
    f.mix(s.queue_depth_at_end);
    f.mix(s.in_flight_batch_at_end);
  }
  f.mix(result.tenants.size());
  for (const core::TenantResult& t : result.tenants) {
    f.mix_str(t.name);
    f.mix(t.totals.frames_captured);
    f.mix(t.totals.offload_successes);
    f.mix(t.totals.local_completions);
    f.mix_double(t.mean_throughput_fps);
    f.mix(t.slo_met() ? 1u : 0u);
  }
  return f.hash;
}

std::vector<CellSummary> aggregate(const SweepResult& result) {
  std::vector<CellSummary> cells;
  if (result.points.empty()) return cells;
  const std::size_t reps = result.replicate_count;
  cells.reserve(result.points.size() / reps);
  for (std::size_t base = 0; base < result.points.size(); base += reps) {
    CellSummary cell;
    cell.first = result.points[base].desc;
    for (std::size_t m = 0; m < result.metric_names.size(); ++m) {
      MetricSummary summary;
      summary.name = result.metric_names[m];
      std::vector<double> samples;
      samples.reserve(reps);
      for (std::size_t r = 0; r < reps; ++r) {
        const double v = result.points[base + r].metrics[m];
        summary.stats.add(v);
        samples.push_back(v);
      }
      summary.ci = mean_ci(samples);
      cell.metrics.push_back(std::move(summary));
    }
    cells.push_back(std::move(cell));
  }
  return cells;
}

void write_points_csv(const SweepResult& result, std::ostream& os) {
  CsvWriter w(os);
  std::vector<std::string> header{"index"};
  header.insert(header.end(), result.axis_names.begin(),
                result.axis_names.end());
  header.insert(header.end(), {"controller", "replicate", "seed",
                               "fingerprint"});
  header.insert(header.end(), result.metric_names.begin(),
                result.metric_names.end());
  w.header(header);
  for (const SweepPoint& point : result.points) {
    w.field(point.desc.index);
    cell_key_columns(w, point.desc);
    w.field(point.desc.replicate);
    w.field(static_cast<std::size_t>(point.desc.seed));
    w.field(static_cast<std::size_t>(result_fingerprint(point.result)));
    for (const double v : point.metrics) w.field(v);
    w.end_row();
  }
}

void write_summary_csv(const SweepResult& result,
                       const std::vector<CellSummary>& cells,
                       std::ostream& os) {
  CsvWriter w(os);
  std::vector<std::string> header = result.axis_names;
  header.insert(header.end(), {"controller", "n"});
  for (const std::string& metric : result.metric_names) {
    header.push_back(metric + "_mean");
    header.push_back(metric + "_stddev");
    header.push_back(metric + "_ci95");
  }
  w.header(header);
  for (const CellSummary& cell : cells) {
    cell_key_columns(w, cell.first);
    w.field(result.replicate_count);
    for (const MetricSummary& metric : cell.metrics) {
      w.field(metric.stats.mean());
      w.field(metric.stats.stddev());
      w.field(metric.ci.half_width);
    }
    w.end_row();
  }
}

void write_series_csv(const SweepResult& result, const std::string& series,
                      std::size_t device_index, std::ostream& os) {
  CsvWriter w(os);
  w.header({"time_s", "series", "value"});
  for (const SweepPoint& point : result.points) {
    const TimeSeries* s =
        point.result.device(device_index).series.find(series);
    if (s == nullptr) continue;
    for (const TimePoint& p : s->points()) {
      w.field(sim_to_seconds(p.time)).field(point.desc.label).field(p.value);
      w.end_row();
    }
  }
}

void write_bench_json(const SweepResult& result, std::ostream& os) {
  os << "{\n  \"suite\": \"" << json_escape(result.name)
     << "\",\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    const SweepPoint& point = result.points[i];
    os << "    {\"name\": \"" << json_escape(point.desc.label)
       << "\", \"seed\": " << point.desc.seed
       << ", \"fingerprint\": " << result_fingerprint(point.result)
       << ", \"events\": " << point.result.events_executed;
    for (std::size_t m = 0; m < result.metric_names.size(); ++m) {
      os << ", \"" << json_escape(result.metric_names[m])
         << "\": " << point.metrics[m];
    }
    os << "}" << (i + 1 < result.points.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

namespace {

template <class Fn>
void write_to_path(const std::string& path, Fn fn) {
  std::ofstream file(path);
  if (!file) {
    throw std::runtime_error("sweep: cannot open " + path);
  }
  fn(file);
}

}  // namespace

void write_points_csv(const SweepResult& result, const std::string& path) {
  write_to_path(path,
                [&](std::ostream& os) { write_points_csv(result, os); });
}

void write_summary_csv(const SweepResult& result,
                       const std::vector<CellSummary>& cells,
                       const std::string& path) {
  write_to_path(path, [&](std::ostream& os) {
    write_summary_csv(result, cells, os);
  });
}

void write_series_csv(const SweepResult& result, const std::string& series,
                      std::size_t device_index, const std::string& path) {
  write_to_path(path, [&](std::ostream& os) {
    write_series_csv(result, series, device_index, os);
  });
}

void write_bench_json(const SweepResult& result, const std::string& path) {
  write_to_path(path,
                [&](std::ostream& os) { write_bench_json(result, os); });
}

}  // namespace ff::sweep
