#pragma once

// Terminal rendering of time series so each bench binary can show the shape
// of the paper figure it reproduces without external tooling.

#include <string>
#include <vector>

#include "ff/util/time_series.h"

namespace ff {

struct PlotOptions {
  std::size_t width{100};   ///< columns of the plotting area
  std::size_t height{16};   ///< rows of the plotting area
  double y_min{0.0};
  double y_max{-1.0};       ///< < y_min means autoscale
  std::string title;
  std::string y_label;
  bool show_legend{true};
};

/// Renders one or more series on a shared axis; each series gets its own
/// glyph. Series are resampled onto the column grid by bucket-mean.
[[nodiscard]] std::string plot_series(
    const std::vector<const TimeSeries*>& series,
                                      const PlotOptions& options);

[[nodiscard]] std::string plot_series(const TimeSeries& series,
                                      const PlotOptions& options);

/// One-line sparkline of a series (8-level unicode blocks).
[[nodiscard]] std::string sparkline(const TimeSeries& series,
                                    std::size_t width = 80);

/// Fixed-width table printer used by the paper-table benches.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimals.
[[nodiscard]] std::string fmt(double v, int digits = 2);

}  // namespace ff
