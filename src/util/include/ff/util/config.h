#pragma once

// Tiny key=value configuration used by the examples to take scenario
// parameters from the command line ("key=value" arguments) or from a file.

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ff {

class Config {
 public:
  Config() = default;

  /// Parses argv-style "key=value" tokens; tokens without '=' are ignored
  /// and returned for the caller to handle.
  static Config from_args(int argc, const char* const* argv,
                          std::vector<std::string>* leftover = nullptr);

  /// Parses a file of "key = value" lines; '#' starts a comment.
  /// Throws std::runtime_error on I/O failure.
  static Config from_file(const std::string& path);

  void set(const std::string& key, std::string value);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;

  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  [[nodiscard]] const std::map<std::string, std::string>& entries() const {
    return values_;
  }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace ff
