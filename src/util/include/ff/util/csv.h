#pragma once

// CSV / JSONL writers so every bench can dump its raw series for external
// plotting alongside the ASCII rendering.

#include <fstream>
#include <initializer_list>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "ff/util/time_series.h"

namespace ff {

/// Streams rows of comma-separated values with minimal quoting.
class CsvWriter {
 public:
  /// Writes to an externally owned stream (e.g. std::cout).
  explicit CsvWriter(std::ostream& os);

  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void header(std::initializer_list<std::string_view> cols);
  void header(const std::vector<std::string>& cols);

  CsvWriter& field(std::string_view v);
  CsvWriter& field(double v);
  CsvWriter& field(std::int64_t v);
  CsvWriter& field(std::size_t v);
  void end_row();

  /// Convenience: one full numeric row.
  void row(std::initializer_list<double> values);

 private:
  void sep();
  static std::string escape(std::string_view v);

  std::ofstream file_;
  std::ostream* os_;
  bool row_started_{false};
};

/// Writes a bundle of time series as long-form CSV: time_s,series,value.
void write_bundle_csv(const SeriesBundle& bundle, const std::string& path);

/// Writes one series as wide CSV: time_s,value.
void write_series_csv(const TimeSeries& series, const std::string& path);

}  // namespace ff
