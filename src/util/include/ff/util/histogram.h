#pragma once

// Fixed-bin and logarithmic histograms for latency distributions.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ff {

/// Linear-bin histogram over [lo, hi); out-of-range samples land in
/// underflow/overflow counters.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void reset();

  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }

  /// Quantile from bin midpoints (approximate), q in [0, 1].
  [[nodiscard]] double quantile(double q) const;

  /// Multi-line ASCII rendering (one row per bin) for bench logs.
  [[nodiscard]] std::string render(std::size_t width = 50) const;

 private:
  double lo_, hi_, bin_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_{0}, overflow_{0}, total_{0};
};

/// Log2-bucketed histogram for values spanning orders of magnitude
/// (e.g. microsecond..second latencies).
class LogHistogram {
 public:
  /// Buckets cover [min_value * 2^i, min_value * 2^(i+1)).
  explicit LogHistogram(double min_value = 1.0, std::size_t buckets = 40);

  void add(double x);
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return counts_.at(i);
  }
  [[nodiscard]] double bucket_lo(std::size_t i) const;
  [[nodiscard]] double quantile(double q) const;

 private:
  double min_value_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_{0};
};

}  // namespace ff
