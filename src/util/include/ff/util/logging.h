#pragma once

// Minimal leveled logger. Components log through this so examples can turn
// on tracing without recompiling; benches keep it at kWarn to stay quiet.

#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace ff {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

  void write(LogLevel level, std::string_view component,
             std::string_view message);

 private:
  Logger() = default;
  LogLevel level_{LogLevel::kWarn};
  std::mutex mutex_;
};

namespace detail {

class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { Logger::instance().write(level_, component_, os_.str()); }

  template <class T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream os_;
};

}  // namespace detail

}  // namespace ff

#define FF_LOG(level, component)                         \
  if (!::ff::Logger::instance().enabled(level)) {        \
  } else                                                 \
    ::ff::detail::LogLine(level, component)

#define FF_TRACE(component) FF_LOG(::ff::LogLevel::kTrace, component)
#define FF_DEBUG(component) FF_LOG(::ff::LogLevel::kDebug, component)
#define FF_INFO(component) FF_LOG(::ff::LogLevel::kInfo, component)
#define FF_WARN(component) FF_LOG(::ff::LogLevel::kWarn, component)
#define FF_ERROR(component) FF_LOG(::ff::LogLevel::kError, component)
