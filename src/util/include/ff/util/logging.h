#pragma once

// Minimal leveled logger. Components log through this so examples can turn
// on tracing without recompiling; benches keep it at kWarn to stay quiet.
// The singleton is shared by every thread (pool workers log too): `level_`
// is an atomic so the hot enabled() check is a lock-free relaxed load, and
// `mutex_` serializes the actual stream writes so concurrent log lines
// cannot interleave mid-line.

#include <atomic>
#include <sstream>
#include <string>
#include <string_view>

#include "ff/util/sync.h"
#include "ff/util/thread_annotations.h"

namespace ff {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  [[nodiscard]] LogLevel level() const {
    return level_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled(LogLevel level) const {
    return level >= level_.load(std::memory_order_relaxed);
  }

  void write(LogLevel level, std::string_view component,
             std::string_view message) FF_EXCLUDES(mutex_);

 private:
  Logger() = default;
  std::atomic<LogLevel> level_{LogLevel::kWarn};
  Mutex mutex_;  ///< serializes stream output; level_ is read outside it
};

namespace detail {

class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { Logger::instance().write(level_, component_, os_.str()); }

  template <class T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream os_;
};

}  // namespace detail

}  // namespace ff

#define FF_LOG(level, component)                         \
  if (!::ff::Logger::instance().enabled(level)) {        \
  } else                                                 \
    ::ff::detail::LogLine(level, component)

#define FF_TRACE(component) FF_LOG(::ff::LogLevel::kTrace, component)
#define FF_DEBUG(component) FF_LOG(::ff::LogLevel::kDebug, component)
#define FF_INFO(component) FF_LOG(::ff::LogLevel::kInfo, component)
#define FF_WARN(component) FF_LOG(::ff::LogLevel::kWarn, component)
#define FF_ERROR(component) FF_LOG(::ff::LogLevel::kError, component)
