#pragma once

// Bounded blocking multi-producer/multi-consumer queue used by the
// real-time backend's server worker pool.

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace ff {

template <class T>
class MpmcQueue {
 public:
  explicit MpmcQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Blocks while full; returns false if the queue was closed.
  bool push(T value) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [&] { return closed_ || queue_.size() < capacity_; });
    if (closed_) return false;
    queue_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false when full or closed. Rvalue-reference
  /// parameter (not by-value) so a failed push does not consume the
  /// caller's object -- retry loops over move-only types depend on it.
  [[nodiscard]] bool try_push(T&& value) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || queue_.size() >= capacity_) return false;
    queue_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  /// Copying overload for lvalues of copyable T.
  [[nodiscard]] bool try_push(const T& value) { return try_push(T(value)); }

  /// Blocks while empty; empty optional means closed-and-drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return value;
  }

  [[nodiscard]] std::optional<T> try_pop() {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return value;
  }

  /// Wakes all waiters; subsequent pushes fail, pops drain then fail.
  void close() {
    const std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

 private:
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> queue_;
  bool closed_{false};
};

}  // namespace ff
