#pragma once

// Bounded blocking multi-producer/multi-consumer queue used by the
// real-time backend's server worker pool. Shared state is annotated with
// the ff/util/thread_annotations.h vocabulary and checked by both
// clang's -Wthread-safety and ff-lint's `concurrency` rules.

#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "ff/util/sync.h"
#include "ff/util/thread_annotations.h"

namespace ff {

template <class T>
class MpmcQueue {
 public:
  explicit MpmcQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Blocks while full; returns false if the queue was closed.
  bool push(T value) FF_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    while (!closed_ && queue_.size() >= capacity_) not_full_.wait(mutex_);
    if (closed_) return false;
    queue_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false when full or closed. Rvalue-reference
  /// parameter (not by-value) so a failed push does not consume the
  /// caller's object -- retry loops over move-only types depend on it.
  [[nodiscard]] bool try_push(T&& value) FF_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    if (closed_ || queue_.size() >= capacity_) return false;
    queue_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  /// Copying overload for lvalues of copyable T.
  [[nodiscard]] bool try_push(const T& value) { return try_push(T(value)); }

  /// Blocks while empty; empty optional means closed-and-drained.
  std::optional<T> pop() FF_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    while (!closed_ && queue_.empty()) not_empty_.wait(mutex_);
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return value;
  }

  [[nodiscard]] std::optional<T> try_pop() FF_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return value;
  }

  /// Wakes all waiters; subsequent pushes fail, pops drain then fail.
  void close() FF_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] std::size_t size() const FF_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    return queue_.size();
  }

 private:
  const std::size_t capacity_;
  mutable Mutex mutex_;
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<T> queue_ FF_GUARDED_BY(mutex_);
  bool closed_ FF_GUARDED_BY(mutex_) = false;
};

}  // namespace ff
