#pragma once

// Fixed-capacity ring buffer retaining the most recent N samples; used for
// derivative smoothing in controllers and for telemetry tails.

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace ff {

template <class T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : data_(capacity) {
    if (capacity == 0) throw std::invalid_argument("RingBuffer: capacity 0");
  }

  void push(T value) {
    data_[head_] = std::move(value);
    head_ = (head_ + 1) % data_.size();
    if (size_ < data_.size()) ++size_;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool full() const { return size_ == data_.size(); }

  /// Element `i` samples ago; 0 = newest. Throws std::out_of_range.
  [[nodiscard]] const T& recent(std::size_t i) const {
    if (i >= size_) throw std::out_of_range("RingBuffer::recent");
    const std::size_t idx = (head_ + data_.size() - 1 - i) % data_.size();
    return data_[idx];
  }

  /// Oldest retained element.
  [[nodiscard]] const T& oldest() const { return recent(size_ - 1); }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  std::vector<T> data_;
  std::size_t head_{0};
  std::size_t size_{0};
};

}  // namespace ff
