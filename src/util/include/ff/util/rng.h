#pragma once

// Deterministic random number generation.
//
// Every stochastic component in the simulator owns its own `Rng` stream,
// forked from a single experiment seed, so adding a component or reordering
// event execution never perturbs the random sequence seen by the others.
// The generator is xoshiro256** seeded through splitmix64 (the construction
// recommended by the xoshiro authors).

#include <array>
#include <cstdint>
#include <string_view>

namespace ff {

/// splitmix64 step; used for seeding and for cheap hash mixing.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// FNV-1a hash of a label, used to derive independent stream seeds.
[[nodiscard]] constexpr std::uint64_t hash_label(std::string_view label) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : label) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// xoshiro256** PRNG with distribution helpers.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x8e51'ecbe'0f63'ad91ULL);

  /// Derives an independent stream identified by `label`; deterministic in
  /// (parent seed, label).
  [[nodiscard]] Rng fork(std::string_view label) const;

  /// Derives an independent stream identified by an index.
  [[nodiscard]] Rng fork(std::uint64_t index) const;

  [[nodiscard]] std::uint64_t next_u64();

  /// UniformRandomBitGenerator interface.
  std::uint64_t operator()() { return next_u64(); }
  [[nodiscard]] static constexpr std::uint64_t min() { return 0; }
  [[nodiscard]] static constexpr std::uint64_t max() { return ~0ULL; }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform();

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive (hi >= lo).
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p (clamped to [0, 1]).
  [[nodiscard]] bool bernoulli(double p);

  /// Normal variate (Box-Muller with caching).
  [[nodiscard]] double normal(double mean, double stddev);

  /// Log-normal variate parameterized by the *resulting* median and the
  /// sigma of the underlying normal.
  [[nodiscard]] double lognormal(double median, double sigma);

  /// Exponential variate with the given mean (> 0).
  [[nodiscard]] double exponential(double mean);

  /// Seed this stream was constructed with (for reporting).
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  std::array<std::uint64_t, 4> state_{};
  std::uint64_t seed_{};
  double cached_normal_{0.0};
  bool has_cached_normal_{false};
};

}  // namespace ff
