#pragma once

// Time-based sliding windows: the controller's view of "T over the last few
// seconds" (paper §III-A) is computed with these.

#include <algorithm>
#include <deque>

#include "ff/util/units.h"

namespace ff {

/// Counts events inside a trailing time window.
class SlidingWindowCounter {
 public:
  explicit SlidingWindowCounter(SimDuration window) : window_(window) {}

  void add(SimTime t, double weight = 1.0) {
    evict(t);
    entries_.push_back({t, weight});
    sum_ += weight;
  }

  /// Total event weight in (now - window, now].
  [[nodiscard]] double count(SimTime now) {
    evict(now);
    return sum_;
  }

  /// Event weight per second over the window (i.e. a rate). During
  /// warm-up (now < window) the divisor is the elapsed time, not the full
  /// window: dividing by the window would systematically underestimate
  /// every rate (T, throughput, local/offload rates) for the first window
  /// of a run and bias the controller's earliest ticks.
  [[nodiscard]] double rate(SimTime now) {
    evict(now);
    if (now <= 0) return 0.0;
    const auto effective = static_cast<double>(std::min(now, window_));
    return sum_ / (effective / static_cast<double>(kSecond));
  }

  [[nodiscard]] SimDuration window() const { return window_; }
  void clear() { entries_.clear(); sum_ = 0.0; }

 private:
  struct Entry {
    SimTime time;
    double weight;
  };

  void evict(SimTime now) {
    while (!entries_.empty() && entries_.front().time <= now - window_) {
      sum_ -= entries_.front().weight;
      entries_.pop_front();
    }
    if (entries_.empty()) sum_ = 0.0;  // kill accumulated FP drift
  }

  SimDuration window_;
  std::deque<Entry> entries_;
  double sum_{0.0};
};

/// Mean of values recorded inside a trailing time window.
class SlidingWindowMean {
 public:
  explicit SlidingWindowMean(SimDuration window) : window_(window) {}

  void add(SimTime t, double value) {
    evict(t);
    entries_.push_back({t, value});
    sum_ += value;
  }

  [[nodiscard]] double mean(SimTime now) {
    evict(now);
    if (entries_.empty()) return 0.0;
    return sum_ / static_cast<double>(entries_.size());
  }

  [[nodiscard]] std::size_t size(SimTime now) {
    evict(now);
    return entries_.size();
  }

 private:
  struct Entry {
    SimTime time;
    double value;
  };

  void evict(SimTime now) {
    while (!entries_.empty() && entries_.front().time <= now - window_) {
      sum_ -= entries_.front().value;
      entries_.pop_front();
    }
    if (entries_.empty()) sum_ = 0.0;
  }

  SimDuration window_;
  std::deque<Entry> entries_;
  double sum_{0.0};
};

}  // namespace ff
