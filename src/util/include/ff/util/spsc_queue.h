#pragma once

// Bounded lock-free single-producer/single-consumer queue for the real-time
// backend's frame pipelines (camera thread -> dispatch thread).
//
// Ownership contract (there is no capability to annotate -- the queue is
// lock-free and its safety comes from role exclusivity, not a mutex):
//   - exactly ONE thread may call try_push (the producer); it alone
//     writes head_ and the slot at buffer_[head];
//   - exactly ONE thread may call try_pop (the consumer); it alone
//     writes tail_ and reads the slot at buffer_[tail];
//   - size_approx()/empty_approx() may be called from anywhere but are
//     only approximate while the queue is in motion.
// buffer_ and mask_ are written only during construction and are
// read-only afterwards, so they need no guard; the head_/tail_ atomics
// carry the inter-thread ordering (release stores paired with acquire
// loads). Violating the single-producer or single-consumer role is a
// data race that TSan's stress suite (tests/concurrency) would flag.

#include <atomic>
#include <cstddef>
#include <new>
#include <optional>
#include <vector>

namespace ff {

/// Destructive-interference distance. Fixed at 64 (true for every
/// mainstream x86/ARM core) rather than std::hardware_destructive_
/// interference_size, whose value is an ABI hazard GCC warns about.
inline constexpr std::size_t kCacheLine = 64;

template <class T>
class SpscQueue {
 public:
  /// Storage is rounded up to a power of two with one slot reserved to
  /// distinguish full from empty, so at least `capacity` slots are usable
  /// (possibly more after rounding).
  explicit SpscQueue(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity + 1) cap <<= 1;
    buffer_.resize(cap);
    mask_ = cap - 1;
  }

  /// Producer side. Returns false when full. Takes an rvalue reference
  /// rather than a by-value parameter so a *failed* push leaves the
  /// caller's object intact -- with by-value, retry loops like
  /// `while (!q.try_push(std::move(t)))` would silently consume `t` on the
  /// first full queue and then push a moved-from husk.
  [[nodiscard]] bool try_push(T&& value) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t next = (head + 1) & mask_;
    if (next == tail_.load(std::memory_order_acquire)) return false;
    buffer_[head] = std::move(value);
    head_.store(next, std::memory_order_release);
    return true;
  }

  /// Copying overload for lvalues of copyable T.
  [[nodiscard]] bool try_push(const T& value) { return try_push(T(value)); }

  /// Consumer side. Empty optional when the queue is empty.
  [[nodiscard]] std::optional<T> try_pop() {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) return std::nullopt;
    T value = std::move(buffer_[tail]);
    tail_.store((tail + 1) & mask_, std::memory_order_release);
    return value;
  }

  /// Approximate (racy) size; exact when the queue is quiescent. Reads
  /// tail before head: if head were read first and the consumer advanced
  /// tail past that snapshot before the second load, the masked
  /// subtraction would wrap and report a near-full queue that is actually
  /// near-empty. With this order concurrent progress can only overcount,
  /// never wrap negative.
  [[nodiscard]] std::size_t size_approx() const {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t head = head_.load(std::memory_order_acquire);
    return (head - tail) & mask_;
  }

  [[nodiscard]] bool empty_approx() const { return size_approx() == 0; }

 private:
  std::vector<T> buffer_;
  std::size_t mask_{0};
  alignas(kCacheLine) std::atomic<std::size_t> head_{0};
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};
};

}  // namespace ff
