#pragma once

// Streaming statistics used by telemetry and the benchmark harness.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace ff {

/// Numerically stable streaming mean/variance (Welford's algorithm) with
/// min/max tracking.
class StreamingStats {
 public:
  void add(double x);
  void merge(const StreamingStats& other);
  void reset();

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;        ///< population variance
  [[nodiscard]] double sample_variance() const; ///< unbiased (n-1) variance
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const {
    return mean_ * static_cast<double>(count_);
  }

 private:
  std::size_t count_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{std::numeric_limits<double>::infinity()};
  double max_{-std::numeric_limits<double>::infinity()};
};

/// P² (Jain & Chlamtac) single-quantile estimator: O(1) memory streaming
/// percentile, accurate to a fraction of a percent for the smooth latency
/// distributions this project produces.
class P2Quantile {
 public:
  /// `q` in (0, 1), e.g. 0.99 for p99.
  explicit P2Quantile(double q);

  void add(double x);
  [[nodiscard]] double value() const;
  [[nodiscard]] std::size_t count() const { return count_; }

 private:
  double q_;
  std::size_t count_{0};
  double heights_[5]{};
  double positions_[5]{};
  double desired_[5]{};
  double increments_[5]{};
};

/// Exact quantiles over a retained sample; used where the sample count is
/// bounded (per-second telemetry windows, bench summaries).
class SampleQuantiles {
 public:
  void add(double x) { values_.push_back(x); sorted_ = false; }
  void reserve(std::size_t n) { values_.reserve(n); }

  [[nodiscard]] std::size_t count() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }

  /// Linear-interpolated quantile, q in [0, 1].
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const { return quantile(0.0); }
  [[nodiscard]] double max() const { return quantile(1.0); }

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_{false};
};

/// Mean with a confidence half-width, for multi-seed experiment
/// summaries.
struct MeanCi {
  double mean{0.0};
  double half_width{0.0};  ///< critical value * s / sqrt(n)
  std::size_t n{0};

  [[nodiscard]] double lo() const { return mean - half_width; }
  [[nodiscard]] double hi() const { return mean + half_width; }
};

/// Two-sided 95% Student-t critical value (the 97.5% quantile) for `df`
/// degrees of freedom. Sweep replicate counts are typically 5-10, where
/// the normal z=1.96 understates the interval badly (t(4) = 2.776);
/// exact to the conventional 3-decimal tables for df <= 30, interpolated
/// in 1/df above that, converging to 1.96.
[[nodiscard]] double student_t_975(std::size_t df);

/// Computes mean +- t*s/sqrt(n) over the samples, with the Student-t
/// critical value for n-1 degrees of freedom (95% two-sided interval).
[[nodiscard]] MeanCi mean_ci(const std::vector<double>& samples);

/// Same, with an explicit critical value (e.g. a normal z, for callers
/// that want the large-sample approximation regardless of n).
[[nodiscard]] MeanCi mean_ci(const std::vector<double>& samples, double z);

/// Student-t interval from already-streamed statistics (no retained
/// samples).
[[nodiscard]] MeanCi mean_ci(const StreamingStats& stats);

/// Same interval with an explicit critical value.
[[nodiscard]] MeanCi mean_ci(const StreamingStats& stats, double z);

/// Exponentially weighted moving average.
class Ewma {
 public:
  /// `alpha` in (0, 1]: weight of the newest sample.
  explicit Ewma(double alpha) : alpha_(alpha) {}

  void add(double x) {
    value_ = initialized_ ? alpha_ * x + (1.0 - alpha_) * value_ : x;
    initialized_ = true;
  }
  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] bool initialized() const { return initialized_; }
  void reset() { initialized_ = false; value_ = 0.0; }

 private:
  double alpha_;
  double value_{0.0};
  bool initialized_{false};
};

}  // namespace ff
