#pragma once

// Annotated synchronization primitives: thin wrappers over the standard
// ones that carry the ff/util/thread_annotations.h capability attributes.
// libstdc++'s std::mutex and std::lock_guard have no thread-safety
// attributes, so clang's -Wthread-safety cannot check code that uses them
// directly; routing mutex-owning types through ff::Mutex / ff::MutexLock
// makes FF_GUARDED_BY declarations enforceable by the compiler (the CI
// `thread-safety` job) as well as by ff-lint's `concurrency` rules.
//
// CondVar pairs with Mutex via std::condition_variable_any (Mutex is a
// BasicLockable); wait() is annotated FF_REQUIRES(m), matching the
// standard condition-variable contract: the caller holds the mutex around
// the wait, and the temporary release inside is invisible to the analysis
// by design.

#include <condition_variable>
#include <mutex>

#include "ff/util/thread_annotations.h"

namespace ff {

/// Annotated mutual-exclusion capability wrapping std::mutex.
class FF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() FF_ACQUIRE() { m_.lock(); }
  void unlock() FF_RELEASE() { m_.unlock(); }

 private:
  std::mutex m_;
};

/// RAII guard: acquires on construction, releases on destruction (the
/// annotated analogue of std::lock_guard<std::mutex>).
class FF_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) FF_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() FF_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable usable with ff::Mutex. Callers hold the mutex (via
/// MutexLock) around wait() and re-check their predicate in a loop, the
/// standard pattern:
///
///   MutexLock lock(mutex_);
///   while (!ready_) cv_.wait(mutex_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mutex`, blocks until notified, and reacquires
  /// it before returning. Spurious wakeups are possible; loop on the
  /// predicate.
  void wait(Mutex& mutex) FF_REQUIRES(mutex) { cv_.wait(mutex); }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  /// _any: waits on the annotated Mutex directly (a BasicLockable)
  /// instead of requiring a std::unique_lock<std::mutex>, which the
  /// analysis cannot see through.
  std::condition_variable_any cv_;
};

}  // namespace ff
