#pragma once

// Thread-safety annotation vocabulary. The macros expand to clang's
// thread-safety-analysis attributes when that compiler is in use and to
// nothing everywhere else, so annotating a type costs nothing on gcc
// while clang's `-Wthread-safety` (the CI `thread-safety` job runs it
// with -Werror=thread-safety) and ff-lint's `concurrency` rule family
// both verify the same declarations. The vocabulary deliberately mirrors
// the names in the clang documentation (capability, guarded_by, acquire,
// release) rather than the older lockable/exclusive_lock spelling.
//
// ff-lint consumes these tokens directly:
//   - `unguarded-shared-state` requires every non-atomic, non-const data
//     member of a mutex-owning class to carry FF_GUARDED_BY /
//     FF_PT_GUARDED_BY (or an explicit `// ff-lint: allow(...)`).
//   - `lock-order` folds FF_ACQUIRED_BEFORE declarations into the global
//     lock-order DAG alongside lexically nested guard scopes.
//   - `annotation-parity` checks that FF_ACQUIRE and FF_RELEASE balance
//     across a capability's declared API.
//
// See ff/util/sync.h for the annotated Mutex / MutexLock / CondVar types
// that make the analysis effective on every standard library (libstdc++'s
// std::mutex carries no capability attributes).

#if defined(__clang__)
#define FF_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define FF_THREAD_ANNOTATION(x)
#endif

/// Marks a type as a capability (a lock). `x` is the capability kind
/// string, e.g. "mutex".
#define FF_CAPABILITY(x) FF_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases
/// a capability.
#define FF_SCOPED_CAPABILITY FF_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the capability.
#define FF_GUARDED_BY(x) FF_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by the capability (the
/// pointer itself may be freely readable, e.g. when const).
#define FF_PT_GUARDED_BY(x) FF_THREAD_ANNOTATION(pt_guarded_by(x))

/// Declared lock-order edge: this capability must be acquired before the
/// listed ones. Feeds ff-lint's lock-order DAG and clang's checker.
#define FF_ACQUIRED_BEFORE(...) \
  FF_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

/// Declared lock-order edge in the other direction.
#define FF_ACQUIRED_AFTER(...) \
  FF_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function requires the capability to be held on entry (and does not
/// release it).
#define FF_REQUIRES(...) \
  FF_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the capability and holds it past return.
#define FF_ACQUIRE(...) \
  FF_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases a held capability.
#define FF_RELEASE(...) \
  FF_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability only when returning `result`.
#define FF_TRY_ACQUIRE(result, ...) \
  FF_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

/// Function must NOT be called while holding the capability (it acquires
/// it internally; calling with it held would self-deadlock).
#define FF_EXCLUDES(...) FF_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define FF_RETURN_CAPABILITY(x) FF_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Use only with a
/// comment explaining why the invariant holds anyway.
#define FF_NO_THREAD_SAFETY_ANALYSIS \
  FF_THREAD_ANNOTATION(no_thread_safety_analysis)
