#pragma once

// Timestamped value series: the primary artifact every experiment produces.
// Figures 2-4 of the paper are rendered from these.

#include <cstddef>
#include <string>
#include <vector>

#include "ff/util/stats.h"
#include "ff/util/units.h"

namespace ff {

/// A single (time, value) observation.
struct TimePoint {
  SimTime time{0};
  double value{0.0};
};

/// Append-only series of observations ordered by insertion time.
class TimeSeries {
 public:
  TimeSeries() = default;
  explicit TimeSeries(std::string name) : name_(std::move(name)) {}

  void record(SimTime t, double value) { points_.push_back({t, value}); }
  void reserve(std::size_t n) { points_.reserve(n); }
  void clear() { points_.clear(); }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] bool empty() const { return points_.empty(); }
  [[nodiscard]] const TimePoint& at(std::size_t i) const {
    return points_.at(i);
  }
  [[nodiscard]] const std::vector<TimePoint>& points() const { return points_; }
  [[nodiscard]] auto begin() const { return points_.begin(); }
  [[nodiscard]] auto end() const { return points_.end(); }

  /// Statistics over the values whose timestamp lies in [from, to).
  [[nodiscard]] StreamingStats stats_between(SimTime from, SimTime to) const;

  /// Statistics over the whole series.
  [[nodiscard]] StreamingStats stats() const;

  /// Mean value in [from, to); 0 when the window is empty.
  [[nodiscard]] double mean_between(SimTime from, SimTime to) const;

  /// Resamples into fixed buckets of `bucket` duration starting at t=0;
  /// each output point is the mean of the inputs that fall in the bucket
  /// (empty buckets repeat the previous value, starting from 0).
  [[nodiscard]] TimeSeries resample(SimDuration bucket) const;

  /// Largest |x[i+1] - x[i]| over the series; a cheap oscillation measure
  /// used by the tuning benches.
  [[nodiscard]] double max_step() const;

  /// Sum of |x[i+1] - x[i]| (total variation); the tuning benches use it to
  /// rank controller stability.
  [[nodiscard]] double total_variation() const;

 private:
  std::string name_;
  std::vector<TimePoint> points_;
};

/// A labeled bundle of series sharing one time axis (one experiment run).
class SeriesBundle {
 public:
  /// Returns the series with `name`, creating it on first use.
  TimeSeries& series(const std::string& name);

  [[nodiscard]] const TimeSeries* find(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  std::vector<TimeSeries> entries_;
};

}  // namespace ff
