#pragma once

// Strong unit helpers shared across the FrameFeedback libraries.
//
// Simulated time is an integer count of microseconds (`SimTime`); rates are
// plain doubles in domain-meaningful wrappers.  The wrappers are deliberately
// thin -- implicit arithmetic stays cheap -- but constructors are explicit so
// a bandwidth can never silently stand in for a frame rate.

#include <chrono>
#include <cstdint>
#include <compare>

namespace ff {

/// Simulated time since experiment start, in microseconds.
using SimTime = std::int64_t;

/// A span of simulated time, in microseconds.
using SimDuration = std::int64_t;

inline constexpr SimDuration kMicrosecond = 1;
inline constexpr SimDuration kMillisecond = 1000;
inline constexpr SimDuration kSecond = 1'000'000;

/// Converts a chrono duration to simulated microseconds.
template <class Rep, class Period>
[[nodiscard]] constexpr SimDuration to_sim(std::chrono::duration<Rep,
                                           Period> d) {
  return std::chrono::duration_cast<std::chrono::microseconds>(d).count();
}

/// Converts fractional seconds to simulated microseconds (rounded).
[[nodiscard]] constexpr SimDuration seconds_to_sim(double s) {
  return static_cast<SimDuration>(s * static_cast<double>(kSecond) + 0.5);
}

/// Converts simulated time to fractional seconds.
[[nodiscard]] constexpr double sim_to_seconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

/// Frames (or requests) per second.
struct Rate {
  double per_second{0.0};

  constexpr Rate() = default;
  explicit constexpr Rate(double v) : per_second(v) {}

  /// Mean gap between events at this rate; kSecond*1e9 (effectively never)
  /// when the rate is zero.
  [[nodiscard]] constexpr SimDuration period() const {
    if (per_second <= 0.0) return kSecond * 1'000'000'000;
    return static_cast<SimDuration>(
        static_cast<double>(kSecond) / per_second + 0.5);
  }

  friend constexpr auto operator<=>(const Rate&, const Rate&) = default;
};

/// Payload size in bytes.
struct Bytes {
  std::int64_t count{0};

  constexpr Bytes() = default;
  explicit constexpr Bytes(std::int64_t v) : count(v) {}

  friend constexpr auto operator<=>(const Bytes&, const Bytes&) = default;
  friend constexpr Bytes operator+(Bytes a, Bytes b) {
    return Bytes{a.count + b.count};
  }
};

/// Link capacity in bits per second.
struct Bandwidth {
  double bits_per_second{0.0};

  constexpr Bandwidth() = default;
  explicit constexpr Bandwidth(double bps) : bits_per_second(bps) {}

  [[nodiscard]] static constexpr Bandwidth kbps(double v) {
    return Bandwidth{v * 1e3};
  }
  [[nodiscard]] static constexpr Bandwidth mbps(double v) {
    return Bandwidth{v * 1e6};
  }

  /// Time to serialize `b` bytes onto a link of this capacity.
  [[nodiscard]] constexpr SimDuration serialization_time(Bytes b) const {
    if (bits_per_second <= 0.0) return kSecond * 1'000'000'000;
    const double seconds = static_cast<double>(b.count) * 8.0 / bits_per_second;
    return seconds_to_sim(seconds);
  }

  friend constexpr auto operator<=>(const Bandwidth&,
                                    const Bandwidth&) = default;
};

}  // namespace ff
