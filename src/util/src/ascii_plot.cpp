#include "ff/util/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace ff {
namespace {

constexpr char kGlyphs[] = {'*', '+', 'o', 'x', '@', '#', '%', '&'};

struct Scaled {
  std::vector<double> columns;  // NaN = no data in that column
};

Scaled scale_to_columns(const TimeSeries& s, SimTime t_end, std::size_t width) {
  Scaled out;
  out.columns.assign(width, std::nan(""));
  if (s.empty() || t_end <= 0) return out;
  std::vector<double> sums(width, 0.0);
  std::vector<std::size_t> counts(width, 0);
  for (const auto& p : s.points()) {
    auto col = static_cast<std::size_t>(
        static_cast<double>(p.time) / static_cast<double>(t_end) *
        static_cast<double>(width));
    col = std::min(col, width - 1);
    sums[col] += p.value;
    ++counts[col];
  }
  for (std::size_t c = 0; c < width; ++c) {
    if (counts[c]) out.columns[c] = sums[c] / static_cast<double>(counts[c]);
  }
  return out;
}

}  // namespace

std::string plot_series(const std::vector<const TimeSeries*>& series,
                        const PlotOptions& options) {
  std::ostringstream os;
  if (series.empty()) return "";

  SimTime t_end = 0;
  double y_min = options.y_min;
  double y_max = options.y_max;
  const bool autoscale = y_max < y_min;
  if (autoscale) {
    y_min = 1e300;
    y_max = -1e300;
  }
  for (const auto* s : series) {
    if (!s->empty()) t_end = std::max(t_end, s->points().back().time);
    if (autoscale) {
      const auto st = s->stats();
      if (!st.empty()) {
        y_min = std::min(y_min, st.min());
        y_max = std::max(y_max, st.max());
      }
    }
  }
  if (autoscale && y_min > y_max) {
    y_min = 0;
    y_max = 1;
  }
  if (y_max <= y_min) y_max = y_min + 1.0;

  std::vector<Scaled> scaled;
  scaled.reserve(series.size());
  for (const auto* s : series) {
    scaled.push_back(scale_to_columns(*s, t_end, options.width));
  }

  if (!options.title.empty()) os << options.title << "\n";

  std::vector<std::string> grid(options.height, std::string(options.width,
                                                            ' '));
  for (std::size_t si = 0; si < scaled.size(); ++si) {
    const char glyph = kGlyphs[si % sizeof(kGlyphs)];
    for (std::size_t c = 0; c < options.width; ++c) {
      const double v = scaled[si].columns[c];
      if (std::isnan(v)) continue;
      double frac = (v - y_min) / (y_max - y_min);
      frac = std::clamp(frac, 0.0, 1.0);
      const auto row = static_cast<std::size_t>(
          std::round(frac * static_cast<double>(options.height - 1)));
      grid[options.height - 1 - row][c] = glyph;
    }
  }

  std::ostringstream top, bottom;
  top << std::setprecision(4) << y_max;
  bottom << std::setprecision(4) << y_min;
  const std::size_t label_w =
      std::max(top.str().size(), bottom.str().size()) + 1;

  for (std::size_t r = 0; r < options.height; ++r) {
    std::string label(label_w, ' ');
    if (r == 0) label = top.str() + std::string(label_w - top.str().size(),
                                                ' ');
    if (r == options.height - 1) {
      label = bottom.str() + std::string(label_w - bottom.str().size(), ' ');
    }
    os << label << "|" << grid[r] << "\n";
  }
  os << std::string(label_w, ' ') << "+" << std::string(options.width, '-')
      << "\n";
  os << std::string(label_w, ' ') << "0s" << std::string(options.width > 12
      ? options.width - 10 : 0, ' ')
     << std::fixed << std::setprecision(0) << sim_to_seconds(t_end) << "s\n";

  if (options.show_legend) {
    os << "  legend:";
    for (std::size_t si = 0; si < series.size(); ++si) {
      os << "  " << kGlyphs[si % sizeof(kGlyphs)] << "=" << series[si]->name();
    }
    os << "\n";
  }
  return os.str();
}

std::string plot_series(const TimeSeries& series, const PlotOptions& options) {
  return plot_series(std::vector<const TimeSeries*>{&series}, options);
}

std::string sparkline(const TimeSeries& series, std::size_t width) {
  static const char* kBlocks[] = {"▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
  if (series.empty()) return "";
  const SimTime t_end = series.points().back().time;
  const Scaled sc = scale_to_columns(series, std::max<SimTime>(t_end, 1),
                                     width);
  const auto st = series.stats();
  const double lo = st.min();
  const double span = std::max(st.max() - lo, 1e-12);
  std::string out;
  double last = lo;
  for (const double v : sc.columns) {
    const double x = std::isnan(v) ? last : v;
    last = x;
    auto idx = static_cast<std::size_t>((x - lo) / span * 7.999);
    idx = std::min<std::size_t>(idx, 7);
    out += kBlocks[idx];
  }
  return out;
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : headers_[0];
      os << " " << v << std::string(widths[c] - v.size(), ' ') << " |";
    }
    os << "\n";
  };
  emit_row(headers_);
  os << "|";
  for (const std::size_t w : widths) os << std::string(w + 2, '-') << "|";
  os << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string fmt(double v, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << v;
  return os.str();
}

}  // namespace ff
