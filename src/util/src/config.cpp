#include "ff/util/config.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <stdexcept>

namespace ff {
namespace {

[[nodiscard]] std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

}  // namespace

Config Config::from_args(int argc, const char* const* argv,
                         std::vector<std::string>* leftover) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (eq == std::string::npos || eq == 0) {
      if (leftover) leftover->push_back(arg);
      continue;
    }
    // GNU-style `--key=value` and plain `key=value` are equivalent.
    std::string key = arg.substr(0, eq);
    const auto first = key.find_first_not_of('-');
    if (first == std::string::npos) {
      if (leftover) leftover->push_back(arg);
      continue;
    }
    key.erase(0, first);
    cfg.set(key, arg.substr(eq + 1));
  }
  return cfg;
}

Config Config::from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("Config: cannot open " + path);
  Config cfg;
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    cfg.set(trim(line.substr(0, eq)), trim(line.substr(eq + 1)));
  }
  return cfg;
}

void Config::set(const std::string& key, std::string value) {
  values_[key] = std::move(value);
}

bool Config::has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::optional<std::string> Config::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(const std::string& key,
                               const std::string& fallback) const {
  return get(key).value_or(fallback);
}

double Config::get_double(const std::string& key, double fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  try {
    return std::stod(*v);
  } catch (const std::exception&) {
    return fallback;
  }
}

std::int64_t Config::get_int(const std::string& key,
                             std::int64_t fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  try {
    return std::stoll(*v);
  } catch (const std::exception&) {
    return fallback;
  }
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  std::string s = *v;
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) {
                   return static_cast<char>(std::tolower(c));
                 });
  if (s == "1" || s == "true" || s == "yes" || s == "on") return true;
  if (s == "0" || s == "false" || s == "no" || s == "off") return false;
  return fallback;
}

}  // namespace ff
