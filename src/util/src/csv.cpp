#include "ff/util/csv.h"

#include <stdexcept>

namespace ff {

CsvWriter::CsvWriter(std::ostream& os) : os_(&os) {}

CsvWriter::CsvWriter(const std::string& path) : file_(path), os_(&file_) {
  if (!file_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

void CsvWriter::header(std::initializer_list<std::string_view> cols) {
  for (const auto c : cols) field(c);
  end_row();
}

void CsvWriter::header(const std::vector<std::string>& cols) {
  for (const auto& c : cols) field(c);
  end_row();
}

void CsvWriter::sep() {
  if (row_started_) *os_ << ',';
  row_started_ = true;
}

std::string CsvWriter::escape(std::string_view v) {
  if (v.find_first_of(",\"\n") == std::string_view::npos) return std::string(v);
  std::string out = "\"";
  for (const char c : v) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter& CsvWriter::field(std::string_view v) {
  sep();
  *os_ << escape(v);
  return *this;
}

CsvWriter& CsvWriter::field(double v) {
  sep();
  *os_ << v;
  return *this;
}

CsvWriter& CsvWriter::field(std::int64_t v) {
  sep();
  *os_ << v;
  return *this;
}

CsvWriter& CsvWriter::field(std::size_t v) {
  sep();
  *os_ << v;
  return *this;
}

void CsvWriter::end_row() {
  *os_ << '\n';
  row_started_ = false;
}

void CsvWriter::row(std::initializer_list<double> values) {
  for (const double v : values) field(v);
  end_row();
}

void write_bundle_csv(const SeriesBundle& bundle, const std::string& path) {
  CsvWriter w(path);
  w.header({"time_s", "series", "value"});
  for (const auto& name : bundle.names()) {
    const TimeSeries* s = bundle.find(name);
    for (const auto& p : s->points()) {
      w.field(sim_to_seconds(p.time)).field(name).field(p.value);
      w.end_row();
    }
  }
}

void write_series_csv(const TimeSeries& series, const std::string& path) {
  CsvWriter w(path);
  w.header({"time_s", "value"});
  for (const auto& p : series.points()) {
    w.field(sim_to_seconds(p.time)).field(p.value);
    w.end_row();
  }
}

}  // namespace ff
