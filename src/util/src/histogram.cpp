#include "ff/util/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace ff {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (bins == 0 || !(hi > lo)) {
    throw std::invalid_argument("Histogram: need hi > lo and bins > 0");
  }
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto i = static_cast<std::size_t>((x - lo_) / bin_width_);
    i = std::min(i, counts_.size() - 1);
    ++counts_[i];
  }
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  underflow_ = overflow_ = total_ = 0;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + bin_width_ * static_cast<double>(i);
}
double Histogram::bin_hi(std::size_t i) const { return bin_lo(i) + bin_width_; }

double Histogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target =
      static_cast<std::uint64_t>(q * static_cast<double>(total_));
  std::uint64_t cum = underflow_;
  if (cum > target) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (cum > target) return bin_lo(i) + bin_width_ * 0.5;
  }
  return hi_;
}

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (const auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    os << "[" << bin_lo(i) << ", " << bin_hi(i) << ") "
       << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  if (underflow_) os << "underflow " << underflow_ << "\n";
  if (overflow_) os << "overflow " << overflow_ << "\n";
  return os.str();
}

LogHistogram::LogHistogram(double min_value, std::size_t buckets)
    : min_value_(min_value), counts_(buckets, 0) {
  if (buckets == 0 || min_value <= 0.0) {
    throw std::invalid_argument(
        "LogHistogram: need min_value > 0, buckets > 0");
  }
}

void LogHistogram::add(double x) {
  ++total_;
  std::size_t i = 0;
  if (x > min_value_) {
    i = static_cast<std::size_t>(std::log2(x / min_value_)) + 1;
    i = std::min(i, counts_.size() - 1);
  }
  ++counts_[i];
}

double LogHistogram::bucket_lo(std::size_t i) const {
  return i == 0 ? 0.0 : min_value_ * std::exp2(static_cast<double>(i - 1));
}

double LogHistogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target =
      static_cast<std::uint64_t>(q * static_cast<double>(total_));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (cum > target) {
      const double lo = bucket_lo(i);
      const double hi = min_value_ * std::exp2(static_cast<double>(i));
      return (lo + hi) * 0.5;
    }
  }
  return min_value_ * std::exp2(static_cast<double>(counts_.size()));
}

}  // namespace ff
