#include "ff/util/logging.h"

#include <iostream>

namespace ff {
namespace {

[[nodiscard]] const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, std::string_view component,
                   std::string_view message) {
  if (!enabled(level)) return;
  const MutexLock lock(mutex_);
  std::cerr << "[" << level_name(level) << "] " << component << ": " << message
            << "\n";
}

}  // namespace ff
