#include "ff/util/rng.h"

#include <cmath>
#include <numbers>

namespace ff {
namespace {

[[nodiscard]] constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
  // xoshiro must not start from the all-zero state.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

Rng Rng::fork(std::string_view label) const {
  std::uint64_t mix = seed_ ^ hash_label(label);
  return Rng{splitmix64(mix)};
}

Rng Rng::fork(std::uint64_t index) const {
  std::uint64_t mix = seed_ ^ (0xd1b54a32d192ed03ULL * (index + 1));
  return Rng{splitmix64(mix)};
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (hi <= lo) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // Lemire-style rejection-free-enough bound; bias is negligible for the
  // spans used in this project but we reject to be exact.
  const std::uint64_t limit = ~0ULL - (~0ULL % span);
  std::uint64_t v = next_u64();
  while (v > limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % span);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::lognormal(double median, double sigma) {
  const double mu = std::log(median);
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double mean) {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -mean * std::log(u);
}

}  // namespace ff
