#include "ff/util/stats.h"

#include <algorithm>
#include <cmath>

namespace ff {

void StreamingStats::add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void StreamingStats::merge(const StreamingStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void StreamingStats::reset() { *this = StreamingStats{}; }

double StreamingStats::variance() const {
  return count_ ? m2_ / static_cast<double>(count_) : 0.0;
}

double StreamingStats::sample_variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

P2Quantile::P2Quantile(double q) : q_(q) {
  desired_[0] = 1;
  desired_[1] = 1 + 2 * q;
  desired_[2] = 1 + 4 * q;
  desired_[3] = 3 + 2 * q;
  desired_[4] = 5;
  increments_[0] = 0;
  increments_[1] = q / 2;
  increments_[2] = q;
  increments_[3] = (1 + q) / 2;
  increments_[4] = 1;
  for (int i = 0; i < 5; ++i) positions_[i] = i + 1;
}

void P2Quantile::add(double x) {
  if (count_ < 5) {
    heights_[count_++] = x;
    if (count_ == 5) std::sort(heights_, heights_ + 5);
    return;
  }
  ++count_;

  int k = 0;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }

  for (int i = k + 1; i < 5; ++i) positions_[i] += 1;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];

  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double below = positions_[i] - positions_[i - 1];
    const double above = positions_[i + 1] - positions_[i];
    if ((d >= 1.0 && above > 1.0) || (d <= -1.0 && below > 1.0)) {
      const double sign = d >= 0 ? 1.0 : -1.0;
      // Parabolic (P²) interpolation, falling back to linear when it would
      // reorder the markers.
      const double qp =
          heights_[i] +
          sign / (positions_[i + 1] - positions_[i - 1]) *
              ((below + sign) * (heights_[i + 1] - heights_[i]) / above +
               (above - sign) * (heights_[i] - heights_[i - 1]) / below);
      if (heights_[i - 1] < qp && qp < heights_[i + 1]) {
        heights_[i] = qp;
      } else {
        const int j = i + static_cast<int>(sign);
        heights_[i] += sign * (heights_[j] - heights_[i]) /
                       (positions_[j] - positions_[i]);
      }
      positions_[i] += sign;
    }
  }
}

double P2Quantile::value() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Not enough samples for the marker invariant; fall back to an exact
    // small-sample quantile.
    double tmp[5];
    std::copy(heights_, heights_ + count_, tmp);
    std::sort(tmp, tmp + count_);
    const double idx = q_ * static_cast<double>(count_ - 1);
    const auto lo = static_cast<std::size_t>(idx);
    const std::size_t hi = std::min(lo + 1, count_ - 1);
    const double frac = idx - static_cast<double>(lo);
    return tmp[lo] * (1.0 - frac) + tmp[hi] * frac;
  }
  return heights_[2];
}

double SampleQuantiles::quantile(double q) const {
  if (values_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double idx = q * static_cast<double>(values_.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, values_.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

double student_t_975(std::size_t df) {
  // Conventional two-sided 95% table, exact for df <= 30.
  static constexpr double kTable[31] = {
      0.0,    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365,
      2.306,  2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131,
      2.120,  2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069,
      2.064,  2.060,  2.056, 2.052, 2.048, 2.045, 2.042};
  constexpr double kZ = 1.960;
  if (df == 0) return 0.0;
  if (df <= 30) return kTable[df];
  // Above the table, t(df) ~ z + c/df with c chosen to hit t(30) exactly;
  // the residual versus the true quantile is < 1e-3 everywhere.
  constexpr double kC = (2.042 - kZ) * 30.0;
  return kZ + kC / static_cast<double>(df);
}

MeanCi mean_ci(const std::vector<double>& samples) {
  StreamingStats s;
  for (const double v : samples) s.add(v);
  return mean_ci(s);
}

MeanCi mean_ci(const std::vector<double>& samples, double z) {
  StreamingStats s;
  for (const double v : samples) s.add(v);
  return mean_ci(s, z);
}

MeanCi mean_ci(const StreamingStats& stats) {
  // Replicate counts are small (5-10); the normal approximation's 1.96
  // was systematically narrow. Use Student-t with n-1 degrees of freedom.
  return mean_ci(stats, stats.count() > 1 ? student_t_975(stats.count() - 1)
                                          : 0.0);
}

MeanCi mean_ci(const StreamingStats& stats, double z) {
  MeanCi out;
  out.n = stats.count();
  if (stats.empty()) return out;
  out.mean = stats.mean();
  if (stats.count() > 1) {
    out.half_width = z * std::sqrt(stats.sample_variance() /
                                   static_cast<double>(stats.count()));
  }
  return out;
}

double SampleQuantiles::mean() const {
  if (values_.empty()) return 0.0;
  double s = 0.0;
  for (const double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

}  // namespace ff
