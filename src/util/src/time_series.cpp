#include "ff/util/time_series.h"

#include <algorithm>
#include <cmath>

namespace ff {

StreamingStats TimeSeries::stats_between(SimTime from, SimTime to) const {
  StreamingStats s;
  for (const auto& p : points_) {
    if (p.time >= from && p.time < to) s.add(p.value);
  }
  return s;
}

StreamingStats TimeSeries::stats() const {
  StreamingStats s;
  for (const auto& p : points_) s.add(p.value);
  return s;
}

double TimeSeries::mean_between(SimTime from, SimTime to) const {
  return stats_between(from, to).mean();
}

TimeSeries TimeSeries::resample(SimDuration bucket) const {
  TimeSeries out(name_);
  if (points_.empty() || bucket <= 0) return out;
  const SimTime end = points_.back().time;
  std::size_t i = 0;
  double last = 0.0;
  for (SimTime t = 0; t <= end; t += bucket) {
    StreamingStats s;
    while (i < points_.size() && points_[i].time < t + bucket) {
      s.add(points_[i].value);
      ++i;
    }
    if (!s.empty()) last = s.mean();
    out.record(t, last);
  }
  return out;
}

double TimeSeries::max_step() const {
  double m = 0.0;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    m = std::max(m, std::abs(points_[i].value - points_[i - 1].value));
  }
  return m;
}

double TimeSeries::total_variation() const {
  double tv = 0.0;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    tv += std::abs(points_[i].value - points_[i - 1].value);
  }
  return tv;
}

TimeSeries& SeriesBundle::series(const std::string& name) {
  for (auto& s : entries_) {
    if (s.name() == name) return s;
  }
  entries_.emplace_back(name);
  return entries_.back();
}

const TimeSeries* SeriesBundle::find(const std::string& name) const {
  for (const auto& s : entries_) {
    if (s.name() == name) return &s;
  }
  return nullptr;
}

std::vector<std::string> SeriesBundle::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& s : entries_) out.push_back(s.name());
  return out;
}

}  // namespace ff
