// Concurrency stress suite. These tests exist to give ThreadSanitizer
// something to chew on: they hammer the queues and the thread pool from many
// threads at once, with enough iterations that a missing memory order or a
// torn non-atomic access shows up as a TSan report (and, without TSan, as a
// wrong checksum). They run in every build type; the dedicated CI job builds
// them with -DFF_SANITIZE=thread.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "ff/core/framefeedback.h"
#include "ff/obs/trace.h"
#include "ff/rt/thread_pool.h"
#include "ff/sim/inline_task.h"
#include "ff/sweep/sweep.h"
#include "ff/util/mpmc_queue.h"
#include "ff/util/sliding_window.h"
#include "ff/util/spsc_queue.h"

namespace {

// ---------------------------------------------------------------------------
// MpmcQueue

TEST(MpmcStress, ManyProducersManyConsumersConserveSum) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr std::uint64_t kPerProducer = 20000;

  ff::MpmcQueue<std::uint64_t> queue(256);
  std::atomic<std::uint64_t> consumed_sum{0};
  std::atomic<std::uint64_t> consumed_count{0};

  std::vector<std::thread> consumers;
  consumers.reserve(kConsumers);
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto v = queue.pop()) {
        consumed_sum.fetch_add(*v, std::memory_order_relaxed);
        consumed_count.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.push(std::uint64_t{static_cast<unsigned>(p)} + i));
      }
    });
  }

  for (auto& t : producers) t.join();
  queue.close();  // consumers drain what is left, then exit
  for (auto& t : consumers) t.join();

  std::uint64_t expected = 0;
  for (int p = 0; p < kProducers; ++p) {
    for (std::uint64_t i = 0; i < kPerProducer; ++i) {
      expected += std::uint64_t{static_cast<unsigned>(p)} + i;
    }
  }
  EXPECT_EQ(consumed_count.load(), kProducers * kPerProducer);
  EXPECT_EQ(consumed_sum.load(), expected);
}

TEST(MpmcStress, TryPushTryPopUnderContention) {
  ff::MpmcQueue<int> queue(64);
  std::atomic<int> pushed{0};
  std::atomic<int> popped{0};
  constexpr int kTarget = 50000;

  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      while (pushed.load(std::memory_order_relaxed) < kTarget) {
        if (queue.try_push(1)) {
          pushed.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
    });
    threads.emplace_back([&] {
      while (popped.load(std::memory_order_relaxed) < kTarget) {
        if (queue.try_pop()) {
          popped.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  // Over-shoot is possible (several threads observe count < target and all
  // succeed), so drain and check conservation rather than equality with
  // kTarget.
  int drained = 0;
  while (queue.try_pop()) ++drained;
  EXPECT_EQ(pushed.load(), popped.load() + drained);
}

TEST(MpmcStress, CloseRacingWithBlockedProducersAndConsumers) {
  for (int round = 0; round < 50; ++round) {
    ff::MpmcQueue<int> queue(2);
    std::vector<std::thread> threads;
    std::atomic<int> rejected_pushes{0};
    // Producers: the queue fills instantly, so most block in push() and must
    // be released by close() with a false return.
    for (int p = 0; p < 4; ++p) {
      threads.emplace_back([&] {
        for (int i = 0; i < 100; ++i) {
          if (!queue.push(i)) {
            rejected_pushes.fetch_add(1, std::memory_order_relaxed);
            return;
          }
        }
      });
    }
    // Consumers: pop until closed-and-drained.
    for (int c = 0; c < 2; ++c) {
      threads.emplace_back([&] {
        while (queue.pop()) {
        }
      });
    }
    queue.close();
    for (auto& t : threads) t.join();
    // After close, pushes must fail and pops must drain to empty.
    EXPECT_FALSE(queue.push(99));
    EXPECT_EQ(queue.pop(), std::nullopt);
  }
}

// ---------------------------------------------------------------------------
// SpscQueue

TEST(SpscStress, ProducerConsumerFifoAndConservation) {
  constexpr std::uint64_t kCount = 200000;
  ff::SpscQueue<std::uint64_t> queue(1024);

  std::thread consumer([&] {
    std::uint64_t expected_next = 0;
    std::uint64_t sum = 0;
    while (expected_next < kCount) {
      if (auto v = queue.try_pop()) {
        // SPSC guarantees FIFO: values arrive in push order.
        ASSERT_EQ(*v, expected_next);
        sum += *v;
        ++expected_next;
      } else {
        std::this_thread::yield();  // single-core hosts need the handoff
      }
    }
    EXPECT_EQ(sum, kCount * (kCount - 1) / 2);
  });

  for (std::uint64_t i = 0; i < kCount;) {
    if (queue.try_push(i)) {
      ++i;
    } else {
      std::this_thread::yield();
    }
  }
  consumer.join();
}

TEST(SpscStress, SizeApproxFromObserverThreadNeverWrapsNegative) {
  // Regression for the size_approx() load order: reading head before tail
  // let a concurrent pop wrap the masked subtraction, reporting ~mask_ for
  // a near-empty queue. A capacity-64 queue rounds up to 128 slots
  // (127 usable), and the producer keeps occupancy at <= 8, so any report
  // above 64 means the subtraction wrapped. Also serves as a TSan exercise
  // for a third thread touching both indices.
  constexpr std::uint64_t kCount = 30000;
  ff::SpscQueue<std::uint64_t> queue(64);
  std::atomic<bool> done{false};

  std::thread observer([&] {
    while (!done.load(std::memory_order_acquire)) {
      EXPECT_LE(queue.size_approx(), 64u);
      std::this_thread::yield();
    }
  });
  std::thread consumer([&] {
    std::uint64_t seen = 0;
    while (seen < kCount) {
      if (queue.try_pop()) {
        ++seen;
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (std::uint64_t i = 0; i < kCount;) {
    // Cap in-flight items at 8 so the observer's bound is meaningful.
    if (queue.size_approx() < 8 && queue.try_push(i)) {
      ++i;
    } else {
      std::this_thread::yield();
    }
  }
  consumer.join();
  done.store(true, std::memory_order_release);
  observer.join();
  EXPECT_EQ(queue.size_approx(), 0u);  // quiescent: exact
}

// ---------------------------------------------------------------------------
// ThreadPool

TEST(ThreadPoolStress, SubmitStormFromManyThreads) {
  ff::rt::ThreadPool pool(4);
  constexpr int kSubmitters = 6;
  constexpr int kPerSubmitter = 2000;
  std::atomic<std::uint64_t> executed{0};

  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &executed] {
      std::vector<std::future<std::uint64_t>> futures;
      futures.reserve(kPerSubmitter);
      for (int i = 0; i < kPerSubmitter; ++i) {
        futures.push_back(pool.submit([&executed, i] {
          executed.fetch_add(1, std::memory_order_relaxed);
          return std::uint64_t{static_cast<unsigned>(i)};
        }));
      }
      std::uint64_t sum = 0;
      for (auto& f : futures) sum += f.get();
      EXPECT_EQ(sum,
                std::uint64_t{kPerSubmitter} * (kPerSubmitter - 1) / 2);
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_EQ(executed.load(), kSubmitters * kPerSubmitter);
}

TEST(ThreadPoolStress, ParallelMapConcurrentCallersShareDefaultPool) {
  // Several threads fanning out through the shared default_pool() at once:
  // exercises first-use construction racing with submission from siblings.
  constexpr int kCallers = 4;
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([c] {
      auto out = ff::rt::parallel_map(
          200, [c](std::size_t i) { return i * 2 + static_cast<unsigned>(c); });
      ASSERT_EQ(out.size(), 200u);
      for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(out[i], i * 2 + static_cast<unsigned>(c));
      }
    });
  }
  for (auto& t : callers) t.join();
}

TEST(ThreadPoolStress, DestructorDrainsInFlightTasksBeforeJoin) {
  // Shutdown ordering: tasks already queued when ~ThreadPool runs must
  // either run or be dropped without racing the worker joins. Futures for
  // executed tasks must be resolved; the counter must be stable after join.
  std::atomic<int> ran{0};
  {
    ff::rt::ThreadPool pool(2);
    for (int i = 0; i < 1000; ++i) {
      // Submit-and-drop: the future is discarded, the pool must still not
      // leak or race the task destruction at close().
      auto f = pool.submit([&ran] { ran.fetch_add(1); });
      (void)f;
    }
  }  // ~ThreadPool: close() + join all workers
  const int after_join = ran.load();
  EXPECT_GE(after_join, 0);
  EXPECT_LE(after_join, 1000);
  // No more increments are possible now -- the workers are joined.
  EXPECT_EQ(after_join, ran.load());
}

// ---------------------------------------------------------------------------
// InlineTask heap fallback (oversized captures) across threads

TEST(InlineTaskStress, OversizedCaptureConstructInvokeDestroyAcrossThreads) {
  // Capture bigger than kInlineCapacity forces the heap-fallback path:
  // thread A constructs, thread B moves + invokes, thread C destroys.
  struct Big {
    std::uint64_t payload[16];  // 128 bytes > 64-byte inline capacity
  };
  static_assert(sizeof(Big) > ff::sim::InlineTask::kInlineCapacity);

  constexpr int kRounds = 2000;
  ff::SpscQueue<ff::sim::InlineTask> to_invoke(64);
  ff::SpscQueue<ff::sim::InlineTask> to_destroy(64);
  std::atomic<std::uint64_t> checksum{0};

  std::thread invoker([&] {
    int invoked = 0;
    while (invoked < kRounds) {
      if (auto task = to_invoke.try_pop()) {
        (*task)();  // runs on a different thread than construction
        ++invoked;
        while (!to_destroy.try_push(std::move(*task))) {
          std::this_thread::yield();
        }
      } else {
        std::this_thread::yield();
      }
    }
  });
  std::thread destroyer([&] {
    int destroyed = 0;
    while (destroyed < kRounds) {
      if (auto task = to_destroy.try_pop()) {
        task->reset();  // destroys the heap-allocated capture on thread C
        ++destroyed;
      } else {
        std::this_thread::yield();
      }
    }
  });

  std::uint64_t expected = 0;
  for (int r = 0; r < kRounds; ++r) {
    Big big{};
    for (int i = 0; i < 16; ++i) {
      big.payload[i] = static_cast<std::uint64_t>(r) * 16 + i;
    }
    for (int i = 0; i < 16; ++i) expected += big.payload[i];
    ff::sim::InlineTask task([big, &checksum] {
      std::uint64_t sum = 0;
      for (std::uint64_t v : big.payload) sum += v;
      checksum.fetch_add(sum, std::memory_order_relaxed);
    });
    while (!to_invoke.try_push(std::move(task))) {
      std::this_thread::yield();
    }
  }
  invoker.join();
  destroyer.join();
  EXPECT_EQ(checksum.load(), expected);
}

TEST(InlineTaskStress, InlineCaptureHandoffThroughPoolQueue) {
  // Inline-capacity tasks moved through the MPMC queue the pool uses:
  // construct on main, invoke on workers, sum must be conserved.
  constexpr int kTasks = 20000;
  ff::MpmcQueue<ff::sim::InlineTask> queue(128);
  std::atomic<std::uint64_t> sum{0};

  std::vector<std::thread> workers;
  workers.reserve(3);
  for (int w = 0; w < 3; ++w) {
    workers.emplace_back([&queue] {
      while (auto task = queue.pop()) (*task)();
    });
  }
  for (int i = 0; i < kTasks; ++i) {
    ASSERT_TRUE(queue.push(ff::sim::InlineTask(
        [i, &sum] { sum.fetch_add(static_cast<unsigned>(i)); })));
  }
  queue.close();
  for (auto& t : workers) t.join();
  EXPECT_EQ(sum.load(), std::uint64_t{kTasks} * (kTasks - 1) / 2);
}

// ---------------------------------------------------------------------------
// obs::TraceSink under cross-thread use (the sweep engine's
// trace_experiments path: many experiments on pool workers sharing one
// sink through obs::SynchronizedTraceSink).

TEST(TraceSinkStress, SynchronizedSinkSerializesConcurrentEmitters) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;

  ff::obs::CollectingTraceSink collector;
  ff::obs::SynchronizedTraceSink sink(collector);

  std::vector<std::thread> emitters;
  emitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    emitters.emplace_back([&sink, t] {
      for (int i = 0; i < kPerThread; ++i) {
        sink.emit(ff::obs::TraceEvent(i, ff::obs::ev::kControlTick, "stress")
                      .with_id(static_cast<std::uint64_t>(t))
                      .with("i", i));
      }
    });
  }
  for (auto& t : emitters) t.join();

  // Nothing lost, nothing torn: per-thread event counts come out exact.
  const auto& events = collector.events();
  ASSERT_EQ(events.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  std::vector<int> per_thread(kThreads, 0);
  for (const auto& e : events) ++per_thread[e.id];
  for (const int count : per_thread) EXPECT_EQ(count, kPerThread);
}

TEST(TraceSinkStress, SynchronizedJsonlSinkWritesIntactLines) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;

  std::ostringstream os;
  {
    ff::obs::JsonlTraceSink jsonl(os);
    ff::obs::SynchronizedTraceSink sink(jsonl);
    std::vector<std::thread> emitters;
    for (int t = 0; t < kThreads; ++t) {
      emitters.emplace_back([&sink] {
        for (int i = 0; i < kPerThread; ++i) {
          sink.emit(
              ff::obs::TraceEvent(i, ff::obs::ev::kFrameCaptured, "stress"));
        }
      });
    }
    for (auto& t : emitters) t.join();
  }
  // Interleaving at line granularity only: every line parses back as one
  // complete event record.
  std::istringstream is(os.str());
  std::size_t lines = 0;
  for (std::string line; std::getline(is, line); ++lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("frame.captured"), std::string::npos);
  }
  EXPECT_EQ(lines, static_cast<std::size_t>(kThreads) * kPerThread);
}

// ---------------------------------------------------------------------------
// util::SlidingWindowCounter across threads. The class is intentionally
// not synchronized; concurrent sweeps rely on every experiment owning its
// own counters. This pins down that independent instances really share no
// hidden state (statics, allocator races TSan would flag).

TEST(SlidingWindowStress, IndependentInstancesAcrossThreads) {
  constexpr int kThreads = 4;
  constexpr int kEvents = 50000;

  std::vector<double> results(kThreads, 0.0);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&results, t] {
      ff::SlidingWindowCounter counter(ff::kSecond);
      ff::SlidingWindowMean mean(ff::kSecond);
      for (int i = 0; i < kEvents; ++i) {
        const ff::SimTime now = static_cast<ff::SimTime>(i) * 100;
        counter.add(now, 1.0);
        mean.add(now, static_cast<double>(t + 1));
      }
      const ff::SimTime end = static_cast<ff::SimTime>(kEvents - 1) * 100;
      results[t] = counter.rate(end) + mean.mean(end);
    });
  }
  for (auto& t : workers) t.join();

  // Every thread saw a full 1 s window at 10 kHz: rate 10000/s, plus its
  // own mean (t + 1). Any cross-instance interference breaks this.
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_DOUBLE_EQ(results[t], 10000.0 + static_cast<double>(t + 1)) << t;
  }
}

// ---------------------------------------------------------------------------
// The sweep engine end-to-end under TSan: concurrent experiments sharing
// the default pool, a traced sink, and the coordinator's bookkeeping.

TEST(SweepStress, ConcurrentSweepWithTracedExperimentsIsRaceFree) {
  namespace sweep = ff::sweep;
  namespace core = ff::core;

  sweep::SweepConfig cfg;
  cfg.name = "stress";
  cfg.base = core::Scenario::ideal(2 * ff::kSecond);
  cfg.base.seed = 3;
  cfg.replicates = 3;
  cfg.threads = 4;
  cfg.controllers = {
      {"ff", core::make_controller_factory<
                 ff::control::FrameFeedbackController>()},
      {"local",
       core::make_controller_factory<ff::control::LocalOnlyController>()},
  };
  ff::obs::CollectingTraceSink sink;
  cfg.trace = &sink;
  cfg.trace_experiments = true;

  const sweep::SweepResult result = sweep::run(cfg);
  EXPECT_EQ(result.points.size(), 6u);
  EXPECT_EQ(sink.count(ff::obs::ev::kSweepPoint), 6u);
  EXPECT_GT(sink.count(ff::obs::ev::kFrameCaptured), 0u);

  cfg.threads = 0;  // shared default pool, then tear it down
  const sweep::SweepResult shared = sweep::run(cfg);
  ff::rt::shutdown_default_pool();
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    EXPECT_EQ(sweep::result_fingerprint(result.points[i].result),
              sweep::result_fingerprint(shared.points[i].result));
  }
}

// ---------------------------------------------------------------------------
// Partitioned kernel: the worker gang's round/remaining protocol plus the
// side-split entity state (links, channels, shared media) under real
// cross-partition traffic. TSan verifies the happens-before edges; the
// fingerprint comparison verifies the scheduling interleave left no trace.

TEST(PartitionStress, ConcurrentWindowsMatchSerialFingerprint) {
  namespace core = ff::core;
  namespace sweep = ff::sweep;

  const auto run_at = [](unsigned threads) {
    core::Scenario s = core::Scenario::ideal(6 * ff::kSecond);
    s.name = "partition-stress";
    s.seed = 11;
    const ff::device::DeviceConfig proto = s.devices.at(0);
    s.devices.clear();
    for (int i = 0; i < 8; ++i) {
      ff::device::DeviceConfig d = proto;
      d.name = "dev-" + std::to_string(i);
      s.add_device(std::move(d));
    }
    s.shared_uplink_medium = true;
    s.uplink_medium_groups = 4;
    s.network = ff::net::NetemSchedule::loss_injection(
        2 * ff::kSecond, 0.05, ff::Bandwidth::mbps(10.0));
    s.partitions = 4;
    s.partition_threads = threads;
    const core::ExperimentResult r = core::run_experiment(
        s, core::make_controller_factory<
               ff::control::FrameFeedbackController>());
    return sweep::result_fingerprint(r);
  };

  const std::uint64_t serial = run_at(1);
  EXPECT_EQ(serial, run_at(4));
  EXPECT_EQ(serial, run_at(2));
}

TEST(PartitionStress, TracedPartitionedRunEmitsIntactEvents) {
  namespace core = ff::core;

  core::Scenario s = core::Scenario::ideal(4 * ff::kSecond);
  s.seed = 5;
  const ff::device::DeviceConfig proto = s.devices.at(0);
  s.devices.clear();
  for (int i = 0; i < 4; ++i) {
    ff::device::DeviceConfig d = proto;
    d.name = "dev-" + std::to_string(i);
    s.add_device(std::move(d));
  }
  s.partitions = 4;
  s.partition_threads = 4;

  ff::obs::CollectingTraceSink sink;
  core::Experiment experiment(
      s, core::make_controller_factory<
             ff::control::FrameFeedbackController>());
  experiment.set_trace_sink(&sink);
  const core::ExperimentResult r = experiment.run();
  EXPECT_GT(r.events_executed, 1000u);
  // Concurrent emitters went through the synchronized wrapper: every
  // event arrived intact (CollectingTraceSink would tear otherwise).
  EXPECT_GT(sink.count(ff::obs::ev::kFrameCaptured), 0u);
}

}  // namespace
