#include "ff/control/aimd.h"

#include <gtest/gtest.h>

namespace ff::control {
namespace {

ControllerInput input(double po, double t) {
  ControllerInput in;
  in.source_fps = 30.0;
  in.offload_rate = po;
  in.timeout_rate = t;
  return in;
}

TEST(Aimd, AdditiveIncreaseWhenClean) {
  AimdController ctl;
  const double po1 = ctl.update(input(0, 0));
  const double po2 = ctl.update(input(po1, 0));
  EXPECT_NEAR(po2 - po1, 0.05 * 30.0, 1e-9);
}

TEST(Aimd, MultiplicativeDecreaseOnTimeouts) {
  AimdController ctl;
  double po = 0;
  for (int i = 0; i < 100; ++i) po = ctl.update(input(po, 0));
  ASSERT_NEAR(po, 30.0, 0.1);
  const double after = ctl.update(input(po, 10.0));
  EXPECT_NEAR(after, po * 0.5, 1e-9);
}

TEST(Aimd, ToleratesSmallTimeoutRates) {
  AimdController ctl;
  double po = 15.0;
  // T below 5% of Fs (1.5/s) counts as clean.
  AimdConfig c;
  AimdController ctl2(c);
  for (int i = 0; i < 3; ++i) po = ctl2.update(input(po, 1.0));
  EXPECT_GT(po, 0.1 * 30.0);
}

TEST(Aimd, FloorKeepsProbing) {
  AimdController ctl;
  double po = 30.0;
  for (int i = 0; i < 50; ++i) po = ctl.update(input(po, 30.0));
  EXPECT_NEAR(po, 0.03 * 30.0, 1e-9);
  EXPECT_GT(po, 0.0);
}

TEST(Aimd, NeverExceedsFs) {
  AimdController ctl;
  double po = 0;
  for (int i = 0; i < 200; ++i) {
    po = ctl.update(input(po, 0));
    EXPECT_LE(po, 30.0);
  }
  EXPECT_DOUBLE_EQ(po, 30.0);
}

TEST(Aimd, ResetReturnsToZeroState) {
  AimdController ctl;
  (void)ctl.update(input(0, 0));
  (void)ctl.update(input(1.5, 0));
  ctl.reset();
  const double po = ctl.update(input(0, 0));
  EXPECT_NEAR(po, 1.5, 1e-9);  // first additive step again
}

TEST(Aimd, SawtoothUnderPeriodicLoss) {
  // Classic AIMD sawtooth: rises linearly, halves on congestion.
  AimdController ctl;
  double po = 15.0;
  double max_seen = 0, min_after_crash = 1e9;
  for (int i = 0; i < 100; ++i) {
    const bool congested = (i % 10 == 9);
    po = ctl.update(input(po, congested ? 10.0 : 0.0));
    max_seen = std::max(max_seen, po);
    if (congested) min_after_crash = std::min(min_after_crash, po);
  }
  EXPECT_GT(max_seen, min_after_crash * 1.5);
}

TEST(Aimd, NameAndPeriod) {
  AimdController ctl;
  EXPECT_EQ(ctl.name(), "aimd");
  EXPECT_EQ(ctl.measure_period(), kSecond);
  EXPECT_FALSE(ctl.wants_probe());
}

}  // namespace
}  // namespace ff::control
