#include "ff/control/baselines.h"

#include <gtest/gtest.h>

namespace ff::control {
namespace {

ControllerInput input(double po, double t, std::optional<bool> probe = {}) {
  ControllerInput in;
  in.source_fps = 30.0;
  in.offload_rate = po;
  in.timeout_rate = t;
  in.probe_success = probe;
  return in;
}

TEST(LocalOnly, AlwaysZero) {
  LocalOnlyController ctl;
  EXPECT_EQ(ctl.name(), "local-only");
  EXPECT_FALSE(ctl.wants_probe());
  EXPECT_DOUBLE_EQ(ctl.update(input(0, 0)), 0.0);
  EXPECT_DOUBLE_EQ(ctl.update(input(30, 30)), 0.0);
}

TEST(AlwaysOffload, AlwaysFs) {
  AlwaysOffloadController ctl;
  EXPECT_EQ(ctl.name(), "always-offload");
  EXPECT_DOUBLE_EQ(ctl.update(input(0, 0)), 30.0);
  // Ignores feedback entirely, even catastrophic timeouts.
  EXPECT_DOUBLE_EQ(ctl.update(input(30, 30)), 30.0);
}

TEST(AlwaysOffload, TracksSourceFps) {
  AlwaysOffloadController ctl;
  ControllerInput in = input(0, 0);
  in.source_fps = 24.0;
  EXPECT_DOUBLE_EQ(ctl.update(in), 24.0);
}

TEST(IntervalOffload, WantsProbe) {
  IntervalOffloadController ctl;
  EXPECT_TRUE(ctl.wants_probe());
  EXPECT_EQ(ctl.name(), "all-or-nothing");
}

TEST(IntervalOffload, NoProbeYetStaysLocal) {
  IntervalOffloadController ctl;
  EXPECT_DOUBLE_EQ(ctl.update(input(0, 0, std::nullopt)), 0.0);
}

TEST(IntervalOffload, SuccessfulProbeOffloadsEverything) {
  IntervalOffloadController ctl;
  EXPECT_DOUBLE_EQ(ctl.update(input(0, 0, true)), 30.0);
}

TEST(IntervalOffload, FailedProbeGoesLocal) {
  IntervalOffloadController ctl;
  EXPECT_DOUBLE_EQ(ctl.update(input(30, 10, false)), 0.0);
}

TEST(IntervalOffload, AllOrNothingNeverPartial) {
  IntervalOffloadController ctl;
  for (const auto probe : {std::optional<bool>{}, std::optional<bool>{true},
                           std::optional<bool>{false}}) {
    const double po = ctl.update(input(15, 2, probe));
    EXPECT_TRUE(po == 0.0 || po == 30.0) << "got partial rate " << po;
  }
}

TEST(IntervalOffload, CustomMeasurePeriod) {
  IntervalOffloadController ctl(5 * kSecond);
  EXPECT_EQ(ctl.measure_period(), 5 * kSecond);
}

TEST(FixedRate, ClampsToFs) {
  FixedRateController ctl(45.0);
  EXPECT_DOUBLE_EQ(ctl.update(input(0, 0)), 30.0);
  FixedRateController low(12.5);
  EXPECT_DOUBLE_EQ(low.update(input(0, 0)), 12.5);
}

}  // namespace
}  // namespace ff::control
