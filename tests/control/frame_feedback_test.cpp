#include "ff/control/frame_feedback.h"

#include <gtest/gtest.h>

namespace ff::control {
namespace {

ControllerInput input(double po, double t, double fs = 30.0) {
  ControllerInput in;
  in.source_fps = fs;
  in.offload_rate = po;
  in.timeout_rate = t;
  return in;
}

TEST(FrameFeedback, DefaultsMatchPaperTableIV) {
  const FrameFeedbackController ctl;
  EXPECT_DOUBLE_EQ(ctl.config().kp, 0.2);
  EXPECT_DOUBLE_EQ(ctl.config().kd, 0.26);
  EXPECT_DOUBLE_EQ(ctl.config().ki, 0.0);
  EXPECT_DOUBLE_EQ(ctl.config().update_min_fraction, -0.5);
  EXPECT_DOUBLE_EQ(ctl.config().update_max_fraction, 0.1);
  EXPECT_EQ(ctl.measure_period(), kSecond);
  EXPECT_EQ(ctl.name(), "frame-feedback");
  EXPECT_FALSE(FrameFeedbackController().wants_probe());
}

TEST(FrameFeedback, ErrorFollowsEquation5NoTimeouts) {
  // T == 0: e = Fs - Po.
  FrameFeedbackConfig c;
  c.initial_offload_rate = 12.0;
  FrameFeedbackController ctl(c);
  (void)ctl.update(input(12.0, 0.0));
  EXPECT_DOUBLE_EQ(ctl.last_error(), 30.0 - 12.0);
}

TEST(FrameFeedback, ErrorFollowsEquation5WithTimeouts) {
  // T > 0: e = 0.1*Fs - T.
  FrameFeedbackConfig c;
  c.initial_offload_rate = 20.0;
  FrameFeedbackController ctl(c);
  (void)ctl.update(input(20.0, 7.0));
  EXPECT_DOUBLE_EQ(ctl.last_error(), 3.0 - 7.0);
}

TEST(FrameFeedback, RampsTowardFsUnderCleanConditions) {
  FrameFeedbackController ctl;
  double po = 0.0;
  for (int i = 0; i < 40; ++i) po = ctl.update(input(po, 0.0));
  EXPECT_NEAR(po, 30.0, 0.5);
}

TEST(FrameFeedback, UpwardUpdatesCappedAtTenthOfFs) {
  FrameFeedbackController ctl;
  double po = 0.0;
  double prev = 0.0;
  for (int i = 0; i < 20; ++i) {
    po = ctl.update(input(po, 0.0));
    EXPECT_LE(po - prev, 3.0 + 1e-9) << "tick " << i;
    prev = po;
  }
}

TEST(FrameFeedback, TimeoutBurstCausesLargeDrop) {
  FrameFeedbackController ctl;
  double po = 0.0;
  for (int i = 0; i < 40; ++i) po = ctl.update(input(po, 0.0));
  ASSERT_NEAR(po, 30.0, 0.5);
  // Catastrophic timeout burst: T = 30/s. With the paper's gains,
  // u = 0.2*(-27) + 0.26*(-27 - e_prev) ~= -12.4: a drop 4x larger than
  // any climb step, though not at the clamp.
  const double after = ctl.update(input(po, 30.0));
  EXPECT_GT(po - after, 10.0);
  EXPECT_GE(ctl.last_update(), -15.0);  // never beyond the clamp
}

TEST(FrameFeedback, DownwardClampEngagesWithHotGains) {
  FrameFeedbackConfig c;
  c.kp = 1.0;  // e = -27 -> raw u = -34, clamped to -0.5*Fs
  c.initial_offload_rate = 30.0;
  FrameFeedbackController ctl(c);
  const double after = ctl.update(input(30.0, 30.0));
  EXPECT_DOUBLE_EQ(ctl.last_update(), -15.0);
  EXPECT_DOUBLE_EQ(after, 15.0);
}

TEST(FrameFeedback, ReactionToTimeoutsStrongerThanRecovery) {
  // The paper's asymmetric clamp: crashes are 5x faster than climbs.
  const FrameFeedbackConfig c;
  EXPECT_DOUBLE_EQ(-c.update_min_fraction / c.update_max_fraction, 5.0);
}

TEST(FrameFeedback, EquilibriumUnderTotalFailureIsTenthOfFs) {
  // Paper: "Po will stabilize to 0.1*Fs when offloading always fails."
  FrameFeedbackController ctl;
  double po = 30.0;
  // Offloading always fails: T equals whatever we offload.
  for (int i = 0; i < 100; ++i) po = ctl.update(input(po, po));
  EXPECT_NEAR(po, 3.0, 0.8);
}

TEST(FrameFeedback, EquilibriumKeepsProbing) {
  // Even at total failure, Po never drops to zero -- it keeps measuring
  // offload availability.
  FrameFeedbackController ctl;
  double po = 30.0;
  for (int i = 0; i < 200; ++i) po = ctl.update(input(po, po));
  EXPECT_GT(po, 1.0);
}

TEST(FrameFeedback, RecoversImmediatelyWhenConditionsReturn) {
  FrameFeedbackController ctl;
  double po = 30.0;
  for (int i = 0; i < 50; ++i) po = ctl.update(input(po, po));
  const double failed_po = po;
  // Conditions recover: T = 0 from now on.
  for (int i = 0; i < 3; ++i) po = ctl.update(input(po, 0.0));
  EXPECT_GT(po, failed_po + 4.0);  // climbing again within 3 ticks
}

TEST(FrameFeedback, OutputAlwaysInZeroFsRange) {
  FrameFeedbackController ctl;
  double po = 0.0;
  // Adversarial alternating feedback.
  for (int i = 0; i < 200; ++i) {
    po = ctl.update(input(po, (i % 3 == 0) ? 25.0 : 0.0));
    EXPECT_GE(po, 0.0);
    EXPECT_LE(po, 30.0);
  }
}

TEST(FrameFeedback, TimeoutsBelowKneeStillAllowGrowth) {
  // T in (0, 0.1*Fs): e > 0, Po keeps growing (gently).
  FrameFeedbackConfig c;
  c.initial_offload_rate = 10.0;
  FrameFeedbackController ctl(c);
  const double po = ctl.update(input(10.0, 1.0));  // e = 3 - 1 = 2
  EXPECT_GT(po, 10.0);
}

TEST(FrameFeedback, TimeoutsAtKneeHoldSteadyProportionally) {
  FrameFeedbackConfig c;
  c.kd = 0.0;  // isolate the proportional term
  c.initial_offload_rate = 15.0;
  FrameFeedbackController ctl(c);
  const double po = ctl.update(input(15.0, 3.0));  // e = 0 exactly
  EXPECT_DOUBLE_EQ(po, 15.0);
}

TEST(FrameFeedback, UnclampedConfigSkipsLimits) {
  FrameFeedbackConfig c;
  c.clamp_updates = false;
  c.kp = 1.0;
  c.kd = 0.0;
  FrameFeedbackController ctl(c);
  // e = 30, u = 30: full swing in one tick without clamping.
  const double po = ctl.update(input(0.0, 0.0));
  EXPECT_DOUBLE_EQ(po, 30.0);
}

TEST(FrameFeedback, ResetRestoresInitialRate) {
  FrameFeedbackConfig c;
  c.initial_offload_rate = 5.0;
  FrameFeedbackController ctl(c);
  double po = 5.0;
  for (int i = 0; i < 10; ++i) po = ctl.update(input(po, 0.0));
  EXPECT_GT(po, 5.0);
  ctl.reset();
  EXPECT_DOUBLE_EQ(ctl.last_error(), 0.0);
  // First post-reset tick behaves like the first tick ever.
  const double po2 = ctl.update(input(5.0, 0.0));
  EXPECT_NEAR(po2, 5.0 + 3.0, 1e-9);  // clamped +0.1*Fs
}

TEST(FrameFeedback, ScalesWithSourceFps) {
  FrameFeedbackController ctl;
  double po = 0.0;
  for (int i = 0; i < 100; ++i) po = ctl.update(input(po, 0.0, 60.0));
  EXPECT_NEAR(po, 60.0, 1.0);
}

TEST(FrameFeedback, TimeoutEpsilonTreatsTinyTAsZero) {
  FrameFeedbackConfig c;
  c.initial_offload_rate = 10.0;
  FrameFeedbackController ctl(c);
  (void)ctl.update(input(10.0, 1e-12));
  EXPECT_DOUBLE_EQ(ctl.last_error(), 20.0);  // took the T==0 branch
}

// Parameterized stability sweep: for every gain pair the output must stay
// bounded and the update clamped, regardless of feedback pattern.
class GainSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(GainSweep, BoundedUnderAdversarialFeedback) {
  FrameFeedbackConfig c;
  c.kp = std::get<0>(GetParam());
  c.kd = std::get<1>(GetParam());
  FrameFeedbackController ctl(c);
  double po = 0.0;
  for (int i = 0; i < 500; ++i) {
    const double t = (i % 7 < 2) ? po : 0.0;  // bursty failures
    po = ctl.update(input(po, t));
    ASSERT_GE(po, 0.0);
    ASSERT_LE(po, 30.0);
    ASSERT_GE(ctl.last_update(), -15.0 - 1e-9);
    ASSERT_LE(ctl.last_update(), 3.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Gains, GainSweep,
    ::testing::Combine(::testing::Values(0.05, 0.2, 0.5, 1.0, 2.0),
                       ::testing::Values(0.0, 0.26, 0.5, 1.0)));

}  // namespace
}  // namespace ff::control
