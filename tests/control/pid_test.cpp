#include "ff/control/pid.h"

#include <gtest/gtest.h>

namespace ff::control {
namespace {

TEST(Pid, PureProportional) {
  PidConfig c;
  c.kp = 2.0;
  c.ki = 0.0;
  c.kd = 0.0;
  PidController pid(c);
  EXPECT_DOUBLE_EQ(pid.step(3.0), 6.0);
  EXPECT_DOUBLE_EQ(pid.step(-1.0), -2.0);
}

TEST(Pid, DerivativeOnFirstStepIsZero) {
  PidConfig c;
  c.kp = 0.0;
  c.kd = 1.0;
  PidController pid(c);
  EXPECT_DOUBLE_EQ(pid.step(5.0), 0.0);  // no previous error yet
  EXPECT_DOUBLE_EQ(pid.step(8.0), 3.0);  // de = 3
  EXPECT_DOUBLE_EQ(pid.step(8.0), 0.0);  // de = 0
}

TEST(Pid, DerivativeScalesWithDt) {
  PidConfig c;
  c.kp = 0.0;
  c.kd = 1.0;
  PidController pid(c);
  (void)pid.step(0.0, 1.0);
  EXPECT_DOUBLE_EQ(pid.step(4.0, 2.0), 2.0);  // de/dt = 4/2
}

TEST(Pid, IntegralAccumulates) {
  PidConfig c;
  c.kp = 0.0;
  c.ki = 1.0;
  c.kd = 0.0;
  PidController pid(c);
  EXPECT_DOUBLE_EQ(pid.step(1.0), 1.0);
  EXPECT_DOUBLE_EQ(pid.step(1.0), 2.0);
  EXPECT_DOUBLE_EQ(pid.step(-2.0), 0.0);
}

TEST(Pid, IntegralScalesWithDt) {
  PidConfig c;
  c.ki = 1.0;
  c.kp = 0.0;
  c.kd = 0.0;
  PidController pid(c);
  EXPECT_DOUBLE_EQ(pid.step(1.0, 0.5), 0.5);
}

TEST(Pid, AntiWindupClampsIntegral) {
  PidConfig c;
  c.kp = 0.0;
  c.ki = 1.0;
  c.kd = 0.0;
  c.integral_min = -2.0;
  c.integral_max = 2.0;
  PidController pid(c);
  for (int i = 0; i < 100; ++i) (void)pid.step(10.0);
  EXPECT_DOUBLE_EQ(pid.integral(), 2.0);
  // Recovery is immediate, not delayed by wound-up state.
  (void)pid.step(-4.0);
  EXPECT_DOUBLE_EQ(pid.integral(), -2.0);
}

TEST(Pid, OutputClamped) {
  PidConfig c;
  c.kp = 1.0;
  c.output_min = -1.0;
  c.output_max = 1.0;
  PidController pid(c);
  EXPECT_DOUBLE_EQ(pid.step(100.0), 1.0);
  EXPECT_DOUBLE_EQ(pid.step(-100.0), -1.0);
}

TEST(Pid, InvalidClampsThrow) {
  PidConfig c;
  c.output_min = 1.0;
  c.output_max = -1.0;
  EXPECT_THROW(PidController{c}, std::invalid_argument);
  PidConfig c2;
  c2.integral_min = 5.0;
  c2.integral_max = -5.0;
  EXPECT_THROW(PidController{c2}, std::invalid_argument);
}

TEST(Pid, DerivativeFilterSmoothsSpikes) {
  PidConfig raw_cfg;
  raw_cfg.kp = 0.0;
  raw_cfg.kd = 1.0;
  raw_cfg.derivative_filter_alpha = 1.0;
  PidConfig filt_cfg = raw_cfg;
  filt_cfg.derivative_filter_alpha = 0.2;

  PidController raw(raw_cfg), filt(filt_cfg);
  (void)raw.step(0.0);
  (void)filt.step(0.0);
  const double raw_spike = raw.step(10.0);
  const double filt_spike = filt.step(10.0);
  EXPECT_DOUBLE_EQ(raw_spike, 10.0);
  EXPECT_DOUBLE_EQ(filt_spike, 2.0);
}

TEST(Pid, ResetClearsState) {
  PidConfig c;
  c.kp = 1.0;
  c.ki = 1.0;
  c.kd = 1.0;
  PidController pid(c);
  (void)pid.step(5.0);
  (void)pid.step(7.0);
  pid.reset();
  EXPECT_DOUBLE_EQ(pid.integral(), 0.0);
  // First step after reset has zero derivative again.
  EXPECT_DOUBLE_EQ(pid.step(3.0), 3.0 + 3.0);  // kp*e + ki*int(=3) + kd*0
}

TEST(Pid, NonPositiveDtTreatedAsUnit) {
  PidConfig c;
  c.kp = 1.0;
  PidController pid(c);
  EXPECT_DOUBLE_EQ(pid.step(2.0, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(pid.step(2.0, -5.0), 2.0);
}

TEST(Pid, PdConvergesOnFirstOrderPlant) {
  // Classic sanity: PD controller drives a leaky integrator plant to the
  // setpoint without oscillating out of control.
  PidConfig c;
  c.kp = 0.5;
  c.kd = 0.2;
  PidController pid(c);
  double pv = 0.0;
  const double sp = 10.0;
  for (int i = 0; i < 200; ++i) {
    const double u = pid.step(sp - pv);
    pv += u;  // plant: pure accumulator
  }
  EXPECT_NEAR(pv, sp, 0.1);
}

}  // namespace
}  // namespace ff::control
