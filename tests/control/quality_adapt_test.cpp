#include "ff/control/quality_adapt.h"

#include <gtest/gtest.h>

namespace ff::control {
namespace {

ControllerInput input(double po, double tn, double tl = 0.0) {
  ControllerInput in;
  in.source_fps = 30.0;
  in.offload_rate = po;
  in.network_timeout_rate = tn;
  in.load_timeout_rate = tl;
  in.timeout_rate = tn + tl;
  return in;
}

TEST(QualityAdapt, StartsAtTopOfLadder) {
  QualityAdaptController ctl;
  ASSERT_TRUE(ctl.frame_quality().has_value());
  EXPECT_EQ(*ctl.frame_quality(), 85);
  EXPECT_EQ(ctl.ladder_index(), 0u);
}

TEST(QualityAdapt, EmptyLadderThrows) {
  QualityAdaptConfig c;
  c.quality_ladder.clear();
  EXPECT_THROW(QualityAdaptController{c}, std::invalid_argument);
}

TEST(QualityAdapt, NetworkPressureStepsQualityDown) {
  QualityAdaptController ctl;
  (void)ctl.update(input(20.0, 10.0));  // Tn >> 0.1*Fs
  EXPECT_EQ(*ctl.frame_quality(), 70);
}

TEST(QualityAdapt, LoadTimeoutsDoNotTouchQuality) {
  // Smaller frames cannot help a saturated GPU.
  QualityAdaptController ctl;
  for (int i = 0; i < 10; ++i) {
    (void)ctl.update(input(20.0, 0.0, 15.0));
  }
  EXPECT_EQ(*ctl.frame_quality(), 85);
}

TEST(QualityAdapt, CooldownSpacesDowngrades) {
  QualityAdaptConfig c;
  c.cooldown_periods = 3;
  QualityAdaptController ctl(c);
  (void)ctl.update(input(20.0, 10.0));  // -> 70, cooldown 3
  (void)ctl.update(input(20.0, 10.0));  // cooldown
  (void)ctl.update(input(20.0, 10.0));  // cooldown
  EXPECT_EQ(*ctl.frame_quality(), 70);
  (void)ctl.update(input(20.0, 10.0));  // cooldown elapsed -> 55
  EXPECT_EQ(*ctl.frame_quality(), 55);
}

TEST(QualityAdapt, BottomOfLadderHolds) {
  QualityAdaptController ctl;
  for (int i = 0; i < 50; ++i) (void)ctl.update(input(20.0, 10.0));
  EXPECT_EQ(*ctl.frame_quality(), 40);  // last rung, never below
}

TEST(QualityAdapt, RecoversQualityAfterCleanStreakAtHighPo) {
  QualityAdaptConfig c;
  c.upgrade_after_clean_periods = 3;
  c.cooldown_periods = 0;
  QualityAdaptController ctl(c);
  (void)ctl.update(input(30.0, 10.0));  // -> 70
  ASSERT_EQ(*ctl.frame_quality(), 70);
  // Clean and pinned at Fs for the required streak.
  (void)ctl.update(input(30.0, 0.0));
  (void)ctl.update(input(30.0, 0.0));
  (void)ctl.update(input(30.0, 0.0));
  EXPECT_EQ(*ctl.frame_quality(), 85);
}

TEST(QualityAdapt, NoUpgradeWhileRateIsLow) {
  QualityAdaptConfig c;
  c.upgrade_after_clean_periods = 2;
  c.cooldown_periods = 0;
  QualityAdaptController ctl(c);
  (void)ctl.update(input(30.0, 10.0));  // -> 70
  // Clean but Po well below Fs: conditions not yet proven.
  for (int i = 0; i < 10; ++i) (void)ctl.update(input(10.0, 0.0));
  EXPECT_EQ(*ctl.frame_quality(), 70);
}

TEST(QualityAdapt, RateLoopStillRuns) {
  QualityAdaptController ctl;
  double po = 0.0;
  for (int i = 0; i < 40; ++i) {
    ControllerInput in = input(po, 0.0);
    po = ctl.update(in);
  }
  EXPECT_NEAR(po, 30.0, 1.0);  // the inner PD ramp
}

TEST(QualityAdapt, ResetRestoresTopQuality) {
  QualityAdaptController ctl;
  (void)ctl.update(input(20.0, 10.0));
  ASSERT_EQ(*ctl.frame_quality(), 70);
  ctl.reset();
  EXPECT_EQ(*ctl.frame_quality(), 85);
  EXPECT_EQ(ctl.ladder_index(), 0u);
}

TEST(QualityAdapt, NameAndPeriod) {
  QualityAdaptController ctl;
  EXPECT_EQ(ctl.name(), "quality-adapt");
  EXPECT_EQ(ctl.measure_period(), kSecond);
  EXPECT_FALSE(ctl.wants_probe());
}

TEST(QualityAdapt, BaseControllersReportNoQuality) {
  FrameFeedbackController ff;
  EXPECT_FALSE(ff.frame_quality().has_value());
}

}  // namespace
}  // namespace ff::control
