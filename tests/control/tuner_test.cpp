#include "ff/control/tuner.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ff::control {
namespace {

TimeSeries make_rise(SimTime step, double target, double rate_per_step,
                     int steps) {
  TimeSeries s("po");
  double v = 0;
  for (int i = 0; i < steps; ++i) {
    s.record(i * step, v);
    v = std::min(v + rate_per_step, target);
  }
  return s;
}

TEST(Tuner, RiseTimeDetected) {
  // Climb 3/s toward 30: reaches 27 (90%) at t=9s.
  const TimeSeries s = make_rise(kSecond, 30.0, 3.0, 60);
  const ResponseMetrics m = analyze_response(s, 0, 60 * kSecond, 30.0);
  EXPECT_NEAR(m.rise_time_s, 9.0, 0.5);
  EXPECT_DOUBLE_EQ(m.overshoot, 0.0);
  EXPECT_NEAR(m.steady_mean, 30.0, 1.0);
}

TEST(Tuner, NeverRisingReportsNegative) {
  TimeSeries s("po");
  for (int i = 0; i < 20; ++i) s.record(i * kSecond, 5.0);
  const ResponseMetrics m = analyze_response(s, 0, 20 * kSecond, 30.0);
  EXPECT_LT(m.rise_time_s, 0.0);
  EXPECT_NEAR(m.steady_mean, 5.0, 1e-9);
}

TEST(Tuner, OvershootMeasured) {
  TimeSeries s("po");
  for (int i = 0; i < 30; ++i) {
    const double v = (i == 10) ? 35.0 : std::min(3.0 * i, 30.0);
    s.record(i * kSecond, v);
  }
  const ResponseMetrics m = analyze_response(s, 0, 30 * kSecond, 30.0);
  EXPECT_DOUBLE_EQ(m.overshoot, 5.0);
}

TEST(Tuner, OscillationMeasuredAfterRise) {
  TimeSeries smooth("a"), wobble("b");
  for (int i = 0; i < 40; ++i) {
    smooth.record(i * kSecond, 30.0);
    wobble.record(i * kSecond, 30.0 + ((i % 2) ? 3.0 : -3.0));
  }
  const auto ms = analyze_response(smooth, 0, 40 * kSecond, 30.0);
  const auto mw = analyze_response(wobble, 0, 40 * kSecond, 30.0);
  EXPECT_NEAR(ms.steady_oscillation, 0.0, 1e-9);
  EXPECT_NEAR(mw.steady_oscillation, 6.0, 0.1);
}

TEST(Tuner, WindowBoundsRespected) {
  TimeSeries s("po");
  s.record(0, 0.0);
  s.record(10 * kSecond, 30.0);
  s.record(20 * kSecond, 0.0);  // outside window
  const ResponseMetrics m = analyze_response(s, 0, 15 * kSecond, 30.0);
  EXPECT_GE(m.rise_time_s, 0.0);
  EXPECT_NEAR(m.steady_mean, 30.0, 1e-9);
}

TEST(Tuner, ScorePenalizesNonSettling) {
  ResponseMetrics settles;
  settles.rise_time_s = 9.0;
  ResponseMetrics never;
  never.rise_time_s = -1.0;
  EXPECT_GT(tuning_score(never), tuning_score(settles) * 10);
}

TEST(Tuner, ScoreOrdersByOscillation) {
  ResponseMetrics calm;
  calm.rise_time_s = 9.0;
  calm.steady_oscillation = 0.1;
  ResponseMetrics wobbly = calm;
  wobbly.steady_oscillation = 3.0;
  EXPECT_LT(tuning_score(calm), tuning_score(wobbly));
}

TEST(Tuner, GainGridIsCrossProduct) {
  const auto grid = gain_grid({0.1, 0.2}, {0.0, 0.26, 0.5});
  ASSERT_EQ(grid.size(), 6u);
  EXPECT_EQ(grid[0], std::make_pair(0.1, 0.0));
  EXPECT_EQ(grid[5], std::make_pair(0.2, 0.5));
}

TEST(Tuner, EmptyGridDimensions) {
  EXPECT_TRUE(gain_grid({}, {0.1}).empty());
  EXPECT_TRUE(gain_grid({0.1}, {}).empty());
}

}  // namespace
}  // namespace ff::control
