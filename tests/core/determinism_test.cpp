// Golden determinism test: the Fig. 3 scenario run twice with the same
// seed must execute a bit-identical (time, sequence) event stream and land
// on identical telemetry. This is the contract that lets kernel refactors
// (slab EventQueue, heap arity changes, ...) be validated mechanically: the
// (time, sequence) order is a strict total order, so any silent reordering
// shows up here.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "ff/control/frame_feedback.h"
#include "ff/core/experiment.h"
#include "ff/core/scenario.h"

namespace ff::core {
namespace {

struct EventFingerprint {
  std::uint64_t hash{1469598103934665603ull};  // FNV-1a offset basis
  std::uint64_t events{0};

  void mix(std::uint64_t v) {
    for (int shift = 0; shift < 64; shift += 8) {
      hash ^= (v >> shift) & 0xff;
      hash *= 1099511628211ull;  // FNV-1a prime
    }
  }

  friend bool operator==(const EventFingerprint&,
                         const EventFingerprint&) = default;
};

struct RunRecord {
  EventFingerprint fingerprint;
  std::uint64_t events_executed{0};
  std::vector<device::TelemetryTotals> totals;
};

RunRecord run_fig3_once() {
  Scenario scenario = Scenario::paper_network();
  scenario.seed = 42;
  // Enough of the Table V walk to cross network-phase transitions while
  // keeping the test quick.
  scenario.duration = 45 * kSecond;

  Experiment exp(scenario,
                 make_controller_factory<control::FrameFeedbackController>());

  RunRecord record;
  exp.simulator().set_event_observer(
      [](void* ctx, SimTime time, std::uint64_t sequence) {
        auto* fp = static_cast<EventFingerprint*>(ctx);
        fp->mix(static_cast<std::uint64_t>(time));
        fp->mix(sequence);
        ++fp->events;
      },
      &record.fingerprint);

  const ExperimentResult result = exp.run();
  record.events_executed = result.events_executed;
  for (const auto& device : result.devices) {
    record.totals.push_back(device.totals);
  }
  return record;
}

void expect_totals_equal(const device::TelemetryTotals& a,
                         const device::TelemetryTotals& b) {
  EXPECT_EQ(a.frames_captured, b.frames_captured);
  EXPECT_EQ(a.local_completions, b.local_completions);
  EXPECT_EQ(a.local_drops, b.local_drops);
  EXPECT_EQ(a.offload_attempts, b.offload_attempts);
  EXPECT_EQ(a.offload_successes, b.offload_successes);
  EXPECT_EQ(a.timeouts_network, b.timeouts_network);
  EXPECT_EQ(a.timeouts_load, b.timeouts_load);
}

TEST(Determinism, Fig3ScenarioReplaysBitIdentically) {
  const RunRecord first = run_fig3_once();
  const RunRecord second = run_fig3_once();

  ASSERT_GT(first.events_executed, 0u);
  EXPECT_EQ(first.fingerprint.events, first.events_executed);
  EXPECT_EQ(first.events_executed, second.events_executed);
  EXPECT_EQ(first.fingerprint, second.fingerprint);

  ASSERT_EQ(first.totals.size(), second.totals.size());
  ASSERT_EQ(first.totals.size(), 3u);  // the paper's device trio
  for (std::size_t i = 0; i < first.totals.size(); ++i) {
    expect_totals_equal(first.totals[i], second.totals[i]);
  }
  // The scenario must actually exercise the system, or the fingerprint
  // proves nothing.
  EXPECT_GT(first.totals[0].frames_captured, 0u);
  EXPECT_GT(first.totals[0].offload_attempts, 0u);
}

}  // namespace
}  // namespace ff::core
