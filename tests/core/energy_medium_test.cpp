// End-to-end tests of the energy accounting and the shared-medium
// topology.

#include <gtest/gtest.h>

#include "ff/core/framefeedback.h"

namespace ff::core {
namespace {

TEST(Energy, SeriesAndTotalsRecorded) {
  Scenario s = Scenario::ideal(20 * kSecond);
  s.seed = 6;
  const auto r = run_experiment(
      s, make_controller_factory<control::LocalOnlyController>());
  const TimeSeries* p = r.devices[0].series.find("power_w");
  ASSERT_NE(p, nullptr);
  // 20 s at 1 Hz with the first sample at 1.5 s: 1.5, 2.5, ..., 19.5 s.
  EXPECT_EQ(p->size(), 19u);
  EXPECT_GT(r.devices[0].energy_joules, 0.0);
  // Sanity: a Pi over 20 s draws tens of joules, not thousands.
  EXPECT_LT(r.devices[0].energy_joules, 300.0);
  EXPECT_GT(r.devices[0].joules_per_inference(), 0.0);
}

TEST(Energy, OffloadingCheaperPerInference) {
  // The paper's §II-A energy claim, end to end.
  Scenario s = Scenario::ideal(40 * kSecond);
  s.seed = 6;
  const auto local = run_experiment(
      s, make_controller_factory<control::LocalOnlyController>());
  const auto offload = run_experiment(
      s, make_controller_factory<control::AlwaysOffloadController>());
  EXPECT_LT(offload.devices[0].joules_per_inference(),
            local.devices[0].joules_per_inference());
}

TEST(Energy, IdleDeviceDrawsLessThanBusy) {
  Scenario s = Scenario::ideal(20 * kSecond);
  s.seed = 6;
  const auto local = run_experiment(
      s, make_controller_factory<control::LocalOnlyController>());
  // Local inference pins the CPU; mean draw must exceed the idle floor of
  // the profile by a solid margin.
  const double mean_w = local.devices[0].series.find("power_w")->stats().mean();
  const auto profile =
      models::default_power_profile(s.devices[0].profile);
  EXPECT_GT(mean_w, profile.idle_w + 1.0);
}

TEST(SharedMediumTopology, ContendedDevicesSettleBelowFullRate) {
  Scenario s = Scenario::paper_network();
  s.seed = 15;
  s.duration = 60 * kSecond;
  const net::LinkConditions clean{Bandwidth::mbps(10.0), 0.0, 2 * kMillisecond};
  s.network = net::NetemSchedule::constant(clean);
  s.uplink_template.initial = clean;
  s.downlink_template.initial = clean;
  for (auto& d : s.devices) d.frame_limit = 0;
  s.shared_uplink_medium = true;

  const auto r = run_experiment(
      s, make_controller_factory<control::FrameFeedbackController>());
  // Three devices on one 10 Mbps channel cannot all offload 30 fps of
  // ~29 KB frames (21 Mbps demand): the aggregate successful offload rate
  // must sit well below 90 and near what the channel carries.
  double aggregate = 0.0;
  for (const auto& d : r.devices) {
    aggregate += d.series.find("Po_success")->mean_between(20 * kSecond,
                                                           r.duration);
  }
  EXPECT_LT(aggregate, 60.0);
  EXPECT_GT(aggregate, 15.0);
  // And every device keeps P at or above its local rate.
  for (const auto& d : r.devices) {
    EXPECT_GT(d.series.find("P")->mean_between(20 * kSecond, r.duration), 4.5)
        << d.name;
  }
}

TEST(SharedMediumTopology, IndependentLinksUnaffectedByFlag) {
  Scenario a = Scenario::ideal(20 * kSecond);
  a.seed = 16;
  Scenario b = a;
  b.shared_uplink_medium = true;  // single device: no contention anyway
  const auto ra = run_experiment(
      a, make_controller_factory<control::FrameFeedbackController>());
  const auto rb = run_experiment(
      b, make_controller_factory<control::FrameFeedbackController>());
  EXPECT_NEAR(ra.devices[0].mean_throughput(), rb.devices[0].mean_throughput(),
              0.5);
}

TEST(ReservationIntegration, TiesFrameFeedbackWhenWorldMatchesModel) {
  // No background load, clean network: the reservation grant is Fs and
  // both approaches saturate.
  Scenario s = Scenario::ideal(30 * kSecond);
  s.seed = 17;
  server::ReservationManager mgr({162.0, 0.9});
  const auto res = run_experiment(s, [&mgr](std::size_t i) {
    return std::make_unique<control::ReservationController>(mgr, i + 1);
  });
  EXPECT_GT(res.devices[0].series.find("P")->mean_between(10 * kSecond,
                                                          30 * kSecond),
            28.0);
}

TEST(ReservationIntegration, BlindToNetworkDegradation) {
  Scenario s = Scenario::ideal(40 * kSecond);
  s.seed = 18;
  const net::LinkConditions dead{Bandwidth::mbps(0.5), 0.0, 2 * kMillisecond};
  s.network = net::NetemSchedule::constant(dead);
  s.uplink_template.initial = dead;
  s.downlink_template.initial = dead;
  server::ReservationManager mgr({162.0, 0.9});
  const auto res = run_experiment(s, [&mgr](std::size_t i) {
    return std::make_unique<control::ReservationController>(mgr, i + 1);
  });
  const auto ff = run_experiment(
      s, make_controller_factory<control::FrameFeedbackController>());
  // The reservation keeps offloading into the dead link; FrameFeedback
  // falls back to local processing.
  EXPECT_LT(res.devices[0].series.find("P")->mean_between(15 * kSecond,
                                                          40 * kSecond),
            8.0);
  EXPECT_GT(ff.devices[0].series.find("P")->mean_between(15 * kSecond,
                                                         40 * kSecond),
            12.0);
}

}  // namespace
}  // namespace ff::core
