#include "ff/core/experiment.h"

#include <gtest/gtest.h>

#include "ff/control/baselines.h"
#include "ff/control/frame_feedback.h"

namespace ff::core {
namespace {

Scenario small_scenario(SimDuration duration = 15 * kSecond) {
  Scenario s = Scenario::ideal(duration);
  s.seed = 7;
  return s;
}

TEST(Experiment, ThrowsWithoutDevices) {
  Scenario s = small_scenario();
  s.devices.clear();
  EXPECT_THROW(
      Experiment(s, make_controller_factory<control::LocalOnlyController>()),
      std::invalid_argument);
}

TEST(Experiment, ThrowsOnNullControllerFactory) {
  EXPECT_THROW(Experiment(small_scenario(),
                          [](std::size_t) { return nullptr; }),
               std::invalid_argument);
}

TEST(Experiment, RunTwiceThrows) {
  Experiment e(small_scenario(),
               make_controller_factory<control::LocalOnlyController>());
  (void)e.run();
  EXPECT_THROW((void)e.run(), std::logic_error);
}

TEST(Experiment, ResultCarriesScenarioMetadata) {
  const auto r = run_experiment(
      small_scenario(),
      make_controller_factory<control::LocalOnlyController>());
  EXPECT_EQ(r.scenario, "ideal");
  EXPECT_EQ(r.seed, 7u);
  EXPECT_EQ(r.duration, 15 * kSecond);
  EXPECT_GT(r.events_executed, 100u);
  ASSERT_EQ(r.devices.size(), 1u);
  EXPECT_EQ(r.devices[0].controller, "local-only");
}

TEST(Experiment, SeriesAreRecordedEverySamplePeriod) {
  const auto r = run_experiment(
      small_scenario(),
      make_controller_factory<control::FrameFeedbackController>());
  const auto& series = r.devices[0].series;
  for (const char* name :
       {"P", "Pl", "Po_target", "Po_achieved", "Po_success", "T", "Tn", "Tl",
        "cpu"}) {
    const TimeSeries* s = series.find(name);
    ASSERT_NE(s, nullptr) << name;
    // 15 s at 1 Hz, first sample 0.5 s after the first control tick at
    // t = 1 s -> samples at 1.5, 2.5, ..., 14.5 s.
    EXPECT_EQ(s->size(), 14u) << name;
  }
}

TEST(Experiment, FirstSampleFollowsFirstControlTick) {
  // Regression: sampling used to start at sample_period/2, before the
  // first control tick at measure_period, so every series began with a
  // pre-control transient (Po_target stuck at its initial value).
  const auto r = run_experiment(
      small_scenario(),
      make_controller_factory<control::FrameFeedbackController>());
  const control::FrameFeedbackConfig defaults;
  const SimTime first_control = defaults.measure_period;
  for (const char* name : {"P", "Po_target", "T"}) {
    const TimeSeries* s = r.devices[0].series.find(name);
    ASSERT_NE(s, nullptr) << name;
    ASSERT_FALSE(s->empty()) << name;
    EXPECT_GT(s->points().front().time, first_control) << name;
  }
  // And the offset keeps the intended mid-period phase: half a sample
  // period past the control tick.
  const TimeSeries* p = r.devices[0].series.find("P");
  EXPECT_EQ(p->points().front().time,
            first_control + small_scenario().sample_period / 2);
}

TEST(Experiment, LocalOnlyNeverOffloads) {
  const auto r = run_experiment(
      small_scenario(),
      make_controller_factory<control::LocalOnlyController>());
  EXPECT_EQ(r.devices[0].totals.offload_attempts, 0u);
  EXPECT_EQ(r.server.requests_received, 0u);
  EXPECT_NEAR(r.devices[0].mean_throughput(), 13.0, 1.0);
}

TEST(Experiment, FrameFeedbackReachesSourceRateOnCleanNetwork) {
  const auto r = run_experiment(
      small_scenario(40 * kSecond),
      make_controller_factory<control::FrameFeedbackController>());
  const TimeSeries* po = r.devices[0].series.find("Po_target");
  // Second half of the run: Po pinned at Fs.
  EXPECT_NEAR(po->mean_between(20 * kSecond, 40 * kSecond), 30.0, 1.0);
  EXPECT_NEAR(r.devices[0].series.find("P")->mean_between(20 * kSecond,
                                                          40 * kSecond),
              30.0, 1.5);
}

TEST(Experiment, DeterministicAcrossRuns) {
  const auto a = run_experiment(
      small_scenario(),
      make_controller_factory<control::FrameFeedbackController>());
  const auto b = run_experiment(
      small_scenario(),
      make_controller_factory<control::FrameFeedbackController>());
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.devices[0].totals.offload_attempts,
            b.devices[0].totals.offload_attempts);
  EXPECT_EQ(a.devices[0].totals.timeouts(), b.devices[0].totals.timeouts());
  const auto& pa = a.devices[0].series.find("P")->points();
  const auto& pb = b.devices[0].series.find("P")->points();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_DOUBLE_EQ(pa[i].value, pb[i].value) << i;
  }
}

TEST(Experiment, SeedChangesOutcomeDetails) {
  // Under loss the per-packet coin flips depend on the seed, so timeout
  // totals must differ between seeds.
  auto lossy = [](std::uint64_t seed) {
    Scenario s = small_scenario(30 * kSecond);
    s.seed = seed;
    s.network = net::NetemSchedule::constant(
        {Bandwidth::mbps(10.0), 0.07, 2 * kMillisecond});
    s.uplink_template.initial = s.network.at(0);
    s.downlink_template.initial = s.network.at(0);
    return s;
  };
  const auto a = run_experiment(
      lossy(7), make_controller_factory<control::AlwaysOffloadController>());
  const auto b = run_experiment(
      lossy(8), make_controller_factory<control::AlwaysOffloadController>());
  EXPECT_NE(a.events_executed, b.events_executed);
  EXPECT_GT(a.devices[0].uplink.retransmissions, 0u);
}

TEST(Experiment, PerDeviceControllerInstances) {
  Scenario s = small_scenario();
  device::DeviceConfig d2 = s.devices[0];
  d2.name = "second";
  s.add_device(d2);
  int created = 0;
  Experiment e(s, [&](std::size_t) {
    ++created;
    return std::make_unique<control::FrameFeedbackController>();
  });
  EXPECT_EQ(created, 2);
  EXPECT_EQ(e.device_count(), 2u);
  const auto r = e.run();
  EXPECT_EQ(r.devices.size(), 2u);
  EXPECT_EQ(r.devices[1].name, "second");
}

TEST(Experiment, FactoryReceivesDeviceIndex) {
  Scenario s = small_scenario();
  s.add_device(s.devices[0]);
  std::vector<std::size_t> indices;
  (void)Experiment(s, [&](std::size_t i) {
    indices.push_back(i);
    return std::make_unique<control::LocalOnlyController>();
  });
  EXPECT_EQ(indices, (std::vector<std::size_t>{0, 1}));
}

TEST(Experiment, FrameConservationHoldsExactlyAtTheHorizon) {
  // A slow path guarantees the horizon cuts frames off mid-pipeline:
  // 60 ms of propagation each way means every frame captured in the last
  // ~120 ms is still awaiting its response when run_until stops. Without
  // terminal in-flight accounting those frames simply vanish from the
  // totals and the conservation identity fails.
  Scenario s = small_scenario(10 * kSecond);
  net::LinkConditions slow{Bandwidth::mbps(10.0), 0.0, 60 * kMillisecond};
  s.network = net::NetemSchedule::constant(slow);
  s.uplink_template.initial = slow;
  s.downlink_template.initial = slow;
  const auto r = run_experiment(
      s, make_controller_factory<control::AlwaysOffloadController>());
  const auto& t = r.devices[0].totals;
  EXPECT_GT(t.in_flight_at_end, 0u);  // the fix is actually exercised
  EXPECT_EQ(t.frames_captured, t.local_completions + t.local_drops +
                                   t.offload_successes + t.timeouts_network +
                                   t.timeouts_load + t.in_flight_at_end);
  EXPECT_TRUE(t.conserved());
}

TEST(Experiment, GoodputFractionConsistentWithTotals) {
  const auto r = run_experiment(
      small_scenario(),
      make_controller_factory<control::AlwaysOffloadController>());
  const auto& d = r.devices[0];
  EXPECT_NEAR(d.goodput_fraction(),
              static_cast<double>(d.totals.successes()) /
                  static_cast<double>(d.totals.frames_captured),
              1e-12);
  EXPECT_GT(d.goodput_fraction(), 0.9);  // clean network
}

TEST(Experiment, ServerStatsPopulated) {
  const auto r = run_experiment(
      small_scenario(),
      make_controller_factory<control::AlwaysOffloadController>());
  EXPECT_GT(r.server.requests_received, 300u);
  EXPECT_GT(r.server.batches_executed, 0u);
  EXPECT_GT(r.server_gpu_utilization, 0.0);
  EXPECT_LE(r.server_gpu_utilization, 1.0);
}

TEST(Experiment, TotalMeanThroughputSumsDevices) {
  Scenario s = small_scenario();
  s.add_device(s.devices[0]);
  s.devices[1].name = "b";
  const auto r = run_experiment(
      s, make_controller_factory<control::LocalOnlyController>());
  EXPECT_NEAR(r.total_mean_throughput(),
              r.devices[0].mean_throughput() + r.devices[1].mean_throughput(),
              1e-9);
}

}  // namespace
}  // namespace ff::core
