// Randomized-scenario sweeps: generate chaotic network/load schedules from
// a seed and assert the system-wide invariants hold through all of them --
// the closest thing a deterministic DES has to fuzzing.

#include <gtest/gtest.h>

#include "ff/core/framefeedback.h"

namespace ff::core {
namespace {

net::NetemSchedule random_network(Rng& rng, SimDuration duration) {
  net::NetemSchedule s;
  SimTime t = 0;
  while (t < duration) {
    net::LinkConditions c;
    c.bandwidth = Bandwidth::mbps(rng.uniform(0.3, 20.0));
    c.loss_probability = rng.bernoulli(0.4) ? rng.uniform(0.0, 0.2) : 0.0;
    c.propagation_delay =
        static_cast<SimDuration>(rng.uniform(0, 20)) * kMillisecond;
    s.add(t, c);
    t += static_cast<SimDuration>(rng.uniform(2.0, 12.0) * kSecond);
  }
  return s;
}

server::LoadSchedule random_load(Rng& rng, SimDuration duration) {
  server::LoadSchedule s;
  SimTime t = 0;
  while (t < duration) {
    s.add(t, Rate{rng.bernoulli(0.3) ? 0.0 : rng.uniform(0.0, 250.0)});
    t += static_cast<SimDuration>(rng.uniform(3.0, 15.0) * kSecond);
  }
  return s;
}

class FuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSweep, InvariantsSurviveChaos) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 7919 + 13);
  const SimDuration duration = 45 * kSecond;

  Scenario s = Scenario::ideal(duration);
  s.seed = seed;
  s.network = random_network(rng, duration);
  s.uplink_template.initial = s.network.at(0);
  s.downlink_template.initial = s.network.at(0);
  s.background_load = random_load(rng, duration);
  s.background.payload = models::frame_bytes({});
  if (rng.bernoulli(0.5)) {
    // Sometimes multi-device, sometimes with a shared medium.
    device::DeviceConfig d2 = s.devices[0];
    d2.name = "second";
    d2.profile = models::DeviceId::kPi3B;
    s.add_device(d2);
    s.shared_uplink_medium = rng.bernoulli(0.5);
  }

  // Alternate controller families across seeds.
  ControllerFactory factory;
  switch (seed % 4) {
    case 0:
      factory = make_controller_factory<control::FrameFeedbackController>();
      break;
    case 1:
      factory = make_controller_factory<control::AlwaysOffloadController>();
      break;
    case 2:
      factory = make_controller_factory<control::IntervalOffloadController>();
      break;
    default:
      factory = make_controller_factory<control::QualityAdaptController>();
      break;
  }

  const auto r = run_experiment(s, factory);

  EXPECT_EQ(r.duration, duration);
  EXPECT_GT(r.events_executed, 1000u);

  for (const auto& d : r.devices) {
    const auto& t = d.totals;
    // Resolution conservation.
    const std::uint64_t resolved = t.offload_successes + t.timeouts();
    EXPECT_LE(resolved, t.offload_attempts) << d.name;
    EXPECT_LE(t.offload_attempts - resolved, 32u) << d.name;
    EXPECT_LE(t.local_completions + t.local_drops + t.offload_attempts,
              t.frames_captured + 2)
        << d.name;
    // Client/telemetry agreement.
    EXPECT_EQ(d.offload.attempts, t.offload_attempts) << d.name;
    EXPECT_EQ(d.offload.successes, t.offload_successes) << d.name;
    // Series sanity.
    for (const char* name : {"P", "Po_target", "T", "cpu", "power_w"}) {
      const TimeSeries* series = d.series.find(name);
      ASSERT_NE(series, nullptr) << name;
      for (const auto& point : series->points()) {
        EXPECT_GE(point.value, 0.0) << d.name << "/" << name;
        EXPECT_LT(point.value, 1000.0) << d.name << "/" << name;
      }
    }
    // Po within [0, Fs].
    EXPECT_LE(d.series.find("Po_target")->stats().max(), 30.0 + 1e-9) << d.name;
    // Latency of successes never exceeded the deadline.
    if (!d.offload.latency_us.empty()) {
      EXPECT_LE(d.offload.latency_us.max(),
                static_cast<double>(250 * kMillisecond)) << d.name;
    }
  }

  // Server conservation.
  EXPECT_LE(r.server.requests_completed + r.server.requests_rejected,
            r.server.requests_received);
  EXPECT_LE(r.server.batch_size.max(), 15.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace ff::core
