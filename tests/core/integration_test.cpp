// End-to-end behaviour checks: the paper's qualitative claims, asserted on
// full device->network->server->controller stacks.

#include <gtest/gtest.h>

#include "ff/core/framefeedback.h"

namespace ff::core {
namespace {

Scenario one_device(SimDuration duration, net::NetemSchedule network) {
  Scenario s = Scenario::ideal(duration);
  s.seed = 21;
  s.network = std::move(network);
  s.uplink_template.initial = s.network.at(0);
  s.downlink_template.initial = s.network.at(0);
  return s;
}

net::LinkConditions clean(double mbps = 10.0) {
  return {Bandwidth::mbps(mbps), 0.0, 2 * kMillisecond};
}

TEST(Integration, CleanNetworkFrameFeedbackBeatsLocalOnly) {
  const Scenario s =
      one_device(40 * kSecond, net::NetemSchedule::constant(clean()));
  const auto ff = run_experiment(
      s, make_controller_factory<control::FrameFeedbackController>());
  const auto local = run_experiment(
      s, make_controller_factory<control::LocalOnlyController>());
  EXPECT_GT(ff.devices[0].mean_throughput(),
            2.0 * local.devices[0].mean_throughput());
}

TEST(Integration, StarvedNetworkFrameFeedbackNeverBelowLocalRate) {
  // Paper §II-A.5: "the controller should always strive to keep P >= Pl."
  const Scenario s = one_device(
      60 * kSecond, net::NetemSchedule::constant(
                        {Bandwidth::mbps(1.0), 0.0, 2 * kMillisecond}));
  const auto ff = run_experiment(
      s, make_controller_factory<control::FrameFeedbackController>());
  // Steady state (after the first exploration crash).
  const double steady =
      ff.devices[0].series.find("P")->mean_between(20 * kSecond, 60 * kSecond);
  EXPECT_GT(steady, 12.0);  // Pl = 13 for the pi4b_r12
}

TEST(Integration, AlwaysOffloadCollapsesWhenStarved) {
  const Scenario s = one_device(
      40 * kSecond, net::NetemSchedule::constant(
                        {Bandwidth::mbps(1.0), 0.0, 2 * kMillisecond}));
  const auto always = run_experiment(
      s, make_controller_factory<control::AlwaysOffloadController>());
  // 1 Mbps carries ~4 fps of frames; offloading everything wrecks P while
  // local stays idle.
  EXPECT_LT(always.devices[0].series.find("P")->mean_between(10 * kSecond,
                                                             40 * kSecond),
            8.0);
}

TEST(Integration, RecoveryAfterOutage) {
  // Bandwidth collapses, then recovers; FrameFeedback must re-attain ~Fs.
  net::NetemSchedule sched;
  sched.add(0, clean());
  sched.add(20 * kSecond, {Bandwidth::mbps(0.5), 0.0, 2 * kMillisecond});
  sched.add(40 * kSecond, clean());
  const Scenario s = one_device(80 * kSecond, sched);
  const auto ff = run_experiment(
      s, make_controller_factory<control::FrameFeedbackController>());
  const TimeSeries* p = ff.devices[0].series.find("P");
  EXPECT_NEAR(p->mean_between(10 * kSecond, 20 * kSecond), 30.0, 2.0);
  EXPECT_LT(p->mean_between(25 * kSecond, 40 * kSecond), 20.0);
  EXPECT_NEAR(p->mean_between(60 * kSecond, 80 * kSecond), 30.0, 2.0);
}

TEST(Integration, TimeoutsDuringOutageAreNetworkAttributed) {
  const Scenario s = one_device(
      30 * kSecond, net::NetemSchedule::constant(
                        {Bandwidth::mbps(0.5), 0.0, 2 * kMillisecond}));
  const auto always = run_experiment(
      s, make_controller_factory<control::AlwaysOffloadController>());
  const auto& t = always.devices[0].totals;
  EXPECT_GT(t.timeouts_network, 100u);
  EXPECT_EQ(t.timeouts_load, 0u);
}

TEST(Integration, ServerOverloadProducesLoadTimeouts) {
  Scenario s = one_device(30 * kSecond,
                          net::NetemSchedule::constant(clean(50.0)));
  s.background_load = server::LoadSchedule::constant(Rate{250.0});
  s.background.payload = models::frame_bytes({});
  const auto always = run_experiment(
      s, make_controller_factory<control::AlwaysOffloadController>());
  const auto& t = always.devices[0].totals;
  EXPECT_GT(t.timeouts_load, 20u);  // rejections at batch formation
  EXPECT_GT(always.server.requests_rejected, 500u);
}

TEST(Integration, FrameFeedbackBacksOffUnderServerLoad) {
  Scenario s = one_device(60 * kSecond,
                          net::NetemSchedule::constant(clean(50.0)));
  s.background_load = server::LoadSchedule::constant(Rate{250.0});
  const auto ff = run_experiment(
      s, make_controller_factory<control::FrameFeedbackController>());
  // It cannot sustain full offload; it must keep P near/above Pl by
  // processing locally.
  const double steady_po = ff.devices[0]
                               .series.find("Po_target")
                               ->mean_between(20 * kSecond, 60 * kSecond);
  EXPECT_LT(steady_po, 25.0);
  const double steady_p =
      ff.devices[0].series.find("P")->mean_between(20 * kSecond, 60 * kSecond);
  EXPECT_GT(steady_p, 12.0);
}

TEST(Integration, LossInjectionCausesControllerDip) {
  // The Fig. 2 scenario end-to-end: 7% loss at t=27s on a tight-deadline
  // multi-fragment path must produce timeouts and a visible Po reaction.
  Scenario s = Scenario::paper_tuning();
  s.seed = 4;
  const auto ff = run_experiment(
      s, make_controller_factory<control::FrameFeedbackController>());
  const TimeSeries* po = ff.devices[0].series.find("Po_target");
  const double before = po->mean_between(15 * kSecond, 27 * kSecond);
  EXPECT_NEAR(before, 30.0, 2.0);
  const auto& t = ff.devices[0].totals;
  EXPECT_GT(t.timeouts_network, 0u);
  // After injection the trace is no longer pinned at Fs the whole time.
  const auto post = po->stats_between(28 * kSecond, 60 * kSecond);
  EXPECT_LT(post.min(), 29.0);
}

TEST(Integration, MultiTenantDevicesShareServer) {
  Scenario s = Scenario::paper_server_load();
  s.seed = 11;
  s.duration = 30 * kSecond;
  s.background_load = server::LoadSchedule{};  // isolate: devices only
  const auto r = run_experiment(
      s, make_controller_factory<control::AlwaysOffloadController>());
  ASSERT_EQ(r.devices.size(), 3u);
  // All three fully offload through the same server.
  EXPECT_GT(r.server.requests_received, 2500u);
  for (const auto& d : r.devices) {
    EXPECT_GT(d.totals.offload_successes, 800u) << d.name;
  }
  // Batching kicked in: mean batch above 1.
  EXPECT_GT(r.server.mean_batch_size(), 1.5);
}

TEST(Integration, HeartbeatProbesAreIssuedByIntervalController) {
  const Scenario s =
      one_device(20 * kSecond, net::NetemSchedule::constant(clean()));
  ExperimentResult r = run_experiment(
      s, make_controller_factory<control::IntervalOffloadController>());
  EXPECT_GT(r.devices[0].offload.probes_sent, 15u);
  EXPECT_GT(r.devices[0].offload.probes_ok, 10u);
}

TEST(Integration, IntervalControllerFlapsUnderMarginalBandwidth) {
  // At 4 Mbps (~16 fps capacity) all-or-nothing alternates between
  // offloading everything (fails) and going local: its Po_target series
  // must contain both 0 and 30.
  const Scenario s = one_device(
      60 * kSecond, net::NetemSchedule::constant(
                        {Bandwidth::mbps(4.0), 0.0, 2 * kMillisecond}));
  const auto aon = run_experiment(
      s, make_controller_factory<control::IntervalOffloadController>());
  const auto stats = aon.devices[0].series.find("Po_target")->stats();
  EXPECT_DOUBLE_EQ(stats.min(), 0.0);
  EXPECT_DOUBLE_EQ(stats.max(), 30.0);
}

TEST(Integration, FrameFeedbackBeatsIntervalUnderMarginalBandwidth) {
  // The paper's headline: 50% to 3x better under intermediate conditions.
  const Scenario s = one_device(
      90 * kSecond, net::NetemSchedule::constant(
                        {Bandwidth::mbps(4.0), 0.0, 2 * kMillisecond}));
  const auto ff = run_experiment(
      s, make_controller_factory<control::FrameFeedbackController>());
  const auto aon = run_experiment(
      s, make_controller_factory<control::IntervalOffloadController>());
  const double ratio = throughput_ratio(ff.devices[0], aon.devices[0],
                                        10 * kSecond, 90 * kSecond);
  EXPECT_GT(ratio, 1.5);
}

TEST(Integration, CpuUtilizationDropsWhenOffloading) {
  // Paper §II-A: 50.2% -> 22.3% local to offload.
  const Scenario s =
      one_device(30 * kSecond, net::NetemSchedule::constant(clean()));
  const auto local = run_experiment(
      s, make_controller_factory<control::LocalOnlyController>());
  const auto offload = run_experiment(
      s, make_controller_factory<control::AlwaysOffloadController>());
  const double u_local =
      local.devices[0].series.find("cpu")->mean_between(10 * kSecond,
                                                        30 * kSecond);
  const double u_off =
      offload.devices[0].series.find("cpu")->mean_between(10 * kSecond,
                                                          30 * kSecond);
  EXPECT_NEAR(u_local, 0.502, 0.05);
  EXPECT_NEAR(u_off, 0.223, 0.05);
}

}  // namespace
}  // namespace ff::core
