#include "ff/core/metrics.h"

#include <gtest/gtest.h>

namespace ff::core {
namespace {

TimeSeries step_series() {
  // 10 for t in [0,10s), 20 for [10s,20s).
  TimeSeries s("P");
  for (int i = 0; i < 20; ++i) {
    s.record(i * kSecond, i < 10 ? 10.0 : 20.0);
  }
  return s;
}

TEST(Metrics, PhaseMeansAlignWithNetworkSchedule) {
  net::NetemSchedule sched;
  sched.add(0, {}, "phase-a");
  sched.add(10 * kSecond, {}, "phase-b");
  const auto phases = phase_means(step_series(), sched, 20 * kSecond, 0);
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].label, "phase-a");
  EXPECT_DOUBLE_EQ(phases[0].mean, 10.0);
  EXPECT_EQ(phases[1].label, "phase-b");
  EXPECT_DOUBLE_EQ(phases[1].mean, 20.0);
  EXPECT_EQ(phases[1].from, 10 * kSecond);
  EXPECT_EQ(phases[1].to, 20 * kSecond);
}

TEST(Metrics, SettleTrimsPhaseStart) {
  net::NetemSchedule sched;
  sched.add(0, {}, "a");
  sched.add(10 * kSecond, {}, "b");
  // With a 5s settle, phase b's mean skips t=10..14 (but the series is
  // constant there so verify via phase a containing a transient).
  TimeSeries s("P");
  for (int i = 0; i < 20; ++i) {
    s.record(i * kSecond, (i < 3) ? 0.0 : 10.0);  // 3s transient
  }
  const auto no_settle = phase_means(s, sched, 20 * kSecond, 0);
  const auto with_settle = phase_means(s, sched, 20 * kSecond, 3 * kSecond);
  EXPECT_LT(no_settle[0].mean, with_settle[0].mean);
  EXPECT_DOUBLE_EQ(with_settle[0].mean, 10.0);
}

TEST(Metrics, PhaseMeansForLoadSchedule) {
  server::LoadSchedule sched;
  sched.add(0, Rate{0});
  sched.add(10 * kSecond, Rate{90});
  const auto phases = phase_means(step_series(), sched, 20 * kSecond, 0);
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].label, "0 req/s");
  EXPECT_EQ(phases[1].label, "90 req/s");
  EXPECT_DOUBLE_EQ(phases[1].mean, 20.0);
}

TEST(Metrics, PhaseStddevComputed) {
  net::NetemSchedule sched;
  sched.add(0, {}, "a");
  TimeSeries s("P");
  s.record(0, 0.0);
  s.record(kSecond, 10.0);
  const auto phases = phase_means(s, sched, 2 * kSecond, 0);
  EXPECT_DOUBLE_EQ(phases[0].stddev, 5.0);
}

DeviceResult make_device_result() {
  DeviceResult d;
  d.name = "dev";
  d.controller = "x";
  d.totals.frames_captured = 100;
  d.totals.local_completions = 40;
  d.totals.offload_successes = 30;
  d.totals.offload_attempts = 50;
  d.totals.timeouts_network = 15;
  d.totals.timeouts_load = 5;
  for (int i = 0; i < 10; ++i) {
    d.series.series("P").record(i * kSecond, 20.0);
    d.series.series("cpu").record(i * kSecond, 0.4);
  }
  return d;
}

TEST(Metrics, SummarizeRollsUpQoS) {
  const QosSummary q = summarize(make_device_result());
  EXPECT_DOUBLE_EQ(q.mean_throughput, 20.0);
  EXPECT_DOUBLE_EQ(q.goodput_fraction, 0.7);
  EXPECT_DOUBLE_EQ(q.timeout_fraction, 20.0 / 50.0);
  EXPECT_DOUBLE_EQ(q.mean_cpu_utilization, 0.4);
}

TEST(Metrics, SummarizeHandlesNoOffloads) {
  DeviceResult d;
  d.totals.frames_captured = 10;
  const QosSummary q = summarize(d);
  EXPECT_DOUBLE_EQ(q.timeout_fraction, 0.0);
  EXPECT_DOUBLE_EQ(q.mean_throughput, 0.0);
}

TEST(Metrics, ThroughputRatio) {
  DeviceResult a = make_device_result();  // P = 20
  DeviceResult b;
  for (int i = 0; i < 10; ++i) b.series.series("P").record(i * kSecond, 10.0);
  EXPECT_DOUBLE_EQ(throughput_ratio(a, b, 0, 10 * kSecond), 2.0);
}

TEST(Metrics, ThroughputRatioZeroDenominator) {
  DeviceResult a = make_device_result();
  DeviceResult b;
  for (int i = 0; i < 10; ++i) b.series.series("P").record(i * kSecond, 0.0);
  EXPECT_DOUBLE_EQ(throughput_ratio(a, b, 0, 10 * kSecond), 0.0);
}

TEST(Metrics, ThroughputRatioMissingSeries) {
  DeviceResult a = make_device_result();
  DeviceResult empty;
  EXPECT_DOUBLE_EQ(throughput_ratio(a, empty, 0, kSecond), 0.0);
}

}  // namespace
}  // namespace ff::core
