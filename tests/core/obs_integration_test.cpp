// End-to-end observability: a scenario run with a trace sink attached must
// produce events that reconcile exactly with the run's telemetry counters,
// and the JSONL export of the same run must be line-parseable.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "ff/control/frame_feedback.h"
#include "ff/core/experiment.h"
#include "ff/core/obs_export.h"
#include "ff/obs/metrics.h"
#include "ff/obs/trace.h"

namespace ff::core {
namespace {

ControllerFactory frame_feedback_factory() {
  return make_controller_factory<control::FrameFeedbackController>();
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::stringstream ss(text);
  std::string line;
  while (std::getline(ss, line)) out.push_back(line);
  return out;
}

std::size_t count_type(const std::vector<std::string>& lines,
                       std::string_view type) {
  const std::string needle = "\"type\":\"" + std::string(type) + "\"";
  std::size_t n = 0;
  for (const auto& line : lines) {
    if (line.find(needle) != std::string::npos) ++n;
  }
  return n;
}

TEST(ObsIntegration, TraceEventsReconcileWithTelemetry) {
  Experiment experiment(Scenario::ideal(10 * kSecond),
                        frame_feedback_factory());
  obs::CollectingTraceSink collected;
  std::ostringstream jsonl_out;
  obs::JsonlTraceSink jsonl(jsonl_out);
  obs::FanoutTraceSink fanout;
  fanout.add(&collected);
  fanout.add(&jsonl);
  experiment.set_trace_sink(&fanout);

  const ExperimentResult result = experiment.run();
  const auto& totals = result.devices[0].totals;
  ASSERT_GT(totals.frames_captured, 0u);

  // Every telemetry counter has a one-to-one span event.
  EXPECT_EQ(collected.count(obs::ev::kFrameCaptured), totals.frames_captured);
  EXPECT_EQ(collected.count(obs::ev::kFrameLocalCompleted),
            totals.local_completions);
  EXPECT_EQ(collected.count(obs::ev::kFrameLocalDropped), totals.local_drops);
  EXPECT_EQ(collected.count(obs::ev::kFrameOffloadSent),
            totals.offload_attempts);
  EXPECT_EQ(collected.count(obs::ev::kFrameOffloadSuccess),
            totals.offload_successes);
  EXPECT_EQ(collected.count(obs::ev::kFrameTimeoutNetwork),
            totals.timeouts_network);
  EXPECT_EQ(collected.count(obs::ev::kFrameTimeoutLoad), totals.timeouts_load);

  // Server-side completions pair with device-side offload accounting.
  EXPECT_EQ(collected.count(obs::ev::kServerComplete),
            result.server.requests_completed);
  EXPECT_EQ(collected.count(obs::ev::kServerBatchStart),
            result.server.batches_executed);
  // The horizon can cut one batch mid-execution: started but never done.
  const std::size_t batch_dones = collected.count(obs::ev::kServerBatchDone);
  EXPECT_LE(batch_dones, result.server.batches_executed);
  EXPECT_GE(batch_dones + 1, result.server.batches_executed);

  // One controller tick per elapsed measurement period.
  EXPECT_GT(collected.count(obs::ev::kControlTick), 0u);

  // The JSONL mirror saw the identical stream, one object per line.
  EXPECT_EQ(jsonl.events_written(), collected.events().size());
  const auto lines = lines_of(jsonl_out.str());
  ASSERT_EQ(lines.size(), collected.events().size());
  for (const auto& line : lines) {
    ASSERT_GE(line.size(), 2u);
    EXPECT_EQ(line.rfind("{\"t\":", 0), 0u) << line;
    EXPECT_EQ(line.back(), '}') << line;
  }
  EXPECT_EQ(count_type(lines, obs::ev::kFrameCaptured),
            totals.frames_captured);
  EXPECT_EQ(count_type(lines, obs::ev::kControlTick),
            collected.count(obs::ev::kControlTick));
}

TEST(ObsIntegration, ExportedMetricsMatchRunTotals) {
  Experiment experiment(Scenario::ideal(5 * kSecond),
                        frame_feedback_factory());
  const ExperimentResult result = experiment.run();

  obs::MetricsRegistry registry;
  export_metrics(result, registry);
  const obs::Labels labels{
      {"device", result.devices[0].name},
      {"controller", result.devices[0].controller}};
  EXPECT_DOUBLE_EQ(
      registry.counter("device.frames_captured", labels).value(),
      static_cast<double>(result.devices[0].totals.frames_captured));
  EXPECT_DOUBLE_EQ(
      registry.counter("server.requests_completed",
                       {{"scenario", result.scenario}})
          .value(),
      static_cast<double>(result.server.requests_completed));

  std::ostringstream os;
  write_metrics_json(result, os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"metrics\":["), std::string::npos);
  EXPECT_NE(json.find("\"device.frames_captured\""), std::string::npos);
}

// Paper §III: under total offload failure the controller settles at the
// standing probe Po = 0.1*Fs -- and the very first tick already lands there,
// because from Po = 0 the error e = Fs saturates the +0.1*Fs update clamp.
// The sliding-window warm-up fix matters here: rates observed during the
// first window are no longer halved, so tick-1 telemetry is unbiased.
TEST(ObsIntegration, FirstTickReachesFailureEquilibriumUnderTotalLoss) {
  Scenario scenario = Scenario::ideal(5 * kSecond);
  const net::LinkConditions dead{Bandwidth::mbps(50.0), 1.0, kMillisecond};
  scenario.network = net::NetemSchedule::constant(dead);
  scenario.uplink_template.initial = dead;
  scenario.downlink_template.initial = dead;

  Experiment experiment(std::move(scenario), frame_feedback_factory());
  obs::CollectingTraceSink collected;
  experiment.set_trace_sink(&collected);
  (void)experiment.run();

  const double fs = 30.0;
  std::vector<const obs::CollectingTraceSink::Stored*> ticks;
  for (const auto& e : collected.events()) {
    if (e.type == obs::ev::kControlTick) ticks.push_back(&e);
  }
  ASSERT_GE(ticks.size(), 2u);

  auto field = [](const obs::CollectingTraceSink::Stored& e,
                  std::string_view key) {
    for (const auto& [k, v] : e.fields) {
      if (k == key) return v;
    }
    ADD_FAILURE() << "missing field " << key;
    return 0.0;
  };

  // Tick 1: T == 0 (nothing offloaded yet), so e = Fs - Po = Fs and the
  // update clamps to +0.1*Fs, putting Po exactly at the failure equilibrium.
  EXPECT_DOUBLE_EQ(field(*ticks[0], "e"), fs);
  EXPECT_DOUBLE_EQ(field(*ticks[0], "u"), 0.1 * fs);
  EXPECT_DOUBLE_EQ(field(*ticks[0], "po"), 0.1 * fs);
}

}  // namespace
}  // namespace ff::core
