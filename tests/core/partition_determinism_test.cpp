#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "ff/control/frame_feedback.h"
#include "ff/core/experiment.h"
#include "ff/sweep/sweep.h"

namespace ff::core {
namespace {

/// A small but genuinely multi-device scenario: four devices in two
/// shared-medium groups, a loss burst mid-run, background server load --
/// enough cross-partition traffic to catch any ordering leak.
Scenario partition_scenario(std::uint64_t seed) {
  Scenario s = Scenario::ideal(20 * kSecond);
  s.name = "partition-determinism";
  s.seed = seed;
  const device::DeviceConfig proto = s.devices.at(0);
  s.devices.clear();
  for (int i = 0; i < 4; ++i) {
    device::DeviceConfig d = proto;
    d.name = "pi-" + std::to_string(i);
    s.add_device(std::move(d));
  }
  s.shared_uplink_medium = true;
  s.uplink_medium_groups = 2;
  s.network = net::NetemSchedule::loss_injection(8 * kSecond, 0.05,
                                                 Bandwidth::mbps(10.0));
  s.background_load = server::LoadSchedule::constant(Rate{40.0});
  return s;
}

std::uint64_t fingerprint_at(std::uint64_t seed, std::size_t partitions,
                             unsigned threads) {
  Scenario s = partition_scenario(seed);
  s.partitions = partitions;
  s.partition_threads = threads;
  ExperimentResult r = run_experiment(
      s, make_controller_factory<control::FrameFeedbackController>());
  return sweep::result_fingerprint(r);
}

/// The tentpole acceptance criterion: bit-identical result fingerprints
/// for every partition count, over several seeds.
TEST(PartitionDeterminism, FingerprintMatrixAcrossPartitionCounts) {
  for (const std::uint64_t seed : {42ull, 7ull, 1234ull}) {
    const std::uint64_t reference = fingerprint_at(seed, 1, 1);
    for (const std::size_t k : {std::size_t{2}, std::size_t{4},
                                std::size_t{8}}) {
      EXPECT_EQ(reference, fingerprint_at(seed, k, 1))
          << "seed " << seed << " K=" << k << " (serial)";
    }
  }
}

/// Thread count must not leak into results: the worker gang at K=4 with
/// 4 threads reproduces the serial fingerprint exactly.
TEST(PartitionDeterminism, ThreadCountDoesNotChangeResults) {
  const std::uint64_t serial = fingerprint_at(42, 4, 1);
  EXPECT_EQ(serial, fingerprint_at(42, 4, 4));
  EXPECT_EQ(serial, fingerprint_at(42, 4, 2));
  EXPECT_EQ(serial, fingerprint_at(42, 4, 0));  // one thread per partition
}

/// The partitioned runs actually do something: results carry frames and
/// the run completes the full horizon.
TEST(PartitionDeterminism, PartitionedRunProducesWork) {
  Scenario s = partition_scenario(42);
  s.partitions = 4;
  s.partition_threads = 1;
  ExperimentResult r = run_experiment(
      s, make_controller_factory<control::FrameFeedbackController>());
  EXPECT_EQ(r.duration, 20 * kSecond);
  EXPECT_GT(r.events_executed, 1000u);
  ASSERT_EQ(r.devices.size(), 4u);
  for (const DeviceResult& d : r.devices) {
    EXPECT_GT(d.totals.frames_captured, 0u) << d.name;
    EXPECT_GT(d.uplink.messages_delivered, 0u) << d.name;
  }
}

/// A zero propagation delay has no lookahead; the builder must refuse it
/// up front rather than deadlock or serialize.
TEST(PartitionDeterminism, ZeroDelayScenarioRejected) {
  Scenario s = partition_scenario(42);
  s.partitions = 2;
  net::LinkConditions zero;
  zero.propagation_delay = 0;
  s.network = net::NetemSchedule::constant(zero);
  s.uplink_template.initial.propagation_delay = 0;
  s.downlink_template.initial.propagation_delay = 0;
  EXPECT_THROW(
      (void)run_experiment(
          s, make_controller_factory<control::FrameFeedbackController>()),
      std::invalid_argument);
}

/// The sweep axis helper labels and applies partition counts.
TEST(PartitionDeterminism, PartitionAxisAppliesCounts) {
  sweep::Axis axis = sweep::partition_axis({0, 1, 4});
  ASSERT_EQ(axis.values.size(), 3u);
  EXPECT_EQ(axis.values[0].label, "K=0");
  EXPECT_EQ(axis.values[2].label, "K=4");
  Scenario s = Scenario::ideal();
  axis.values[2].apply(s);
  EXPECT_EQ(s.partitions, 4u);
}

}  // namespace
}  // namespace ff::core
