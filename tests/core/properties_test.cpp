// Property-based sweeps: invariants that must hold for every seed,
// controller and network condition.

#include <gtest/gtest.h>

#include "ff/core/framefeedback.h"

namespace ff::core {
namespace {

enum class ControllerKind { kFrameFeedback, kLocalOnly, kAlwaysOffload,
                           kInterval, kAimd };

ControllerFactory factory_for(ControllerKind kind) {
  switch (kind) {
    case ControllerKind::kFrameFeedback:
      return make_controller_factory<control::FrameFeedbackController>();
    case ControllerKind::kLocalOnly:
      return make_controller_factory<control::LocalOnlyController>();
    case ControllerKind::kAlwaysOffload:
      return make_controller_factory<control::AlwaysOffloadController>();
    case ControllerKind::kInterval:
      return make_controller_factory<control::IntervalOffloadController>();
    case ControllerKind::kAimd:
      return make_controller_factory<control::AimdController>();
  }
  return {};
}

const char* name_of(ControllerKind kind) {
  switch (kind) {
    case ControllerKind::kFrameFeedback: return "frame-feedback";
    case ControllerKind::kLocalOnly: return "local-only";
    case ControllerKind::kAlwaysOffload: return "always-offload";
    case ControllerKind::kInterval: return "all-or-nothing";
    case ControllerKind::kAimd: return "aimd";
  }
  return "?";
}

struct PropertyCase {
  ControllerKind controller;
  double bandwidth_mbps;
  double loss;
  std::uint64_t seed;
};

void PrintTo(const PropertyCase& c, std::ostream* os) {
  *os << name_of(c.controller) << "/bw" << c.bandwidth_mbps << "/loss"
      << c.loss << "/seed" << c.seed;
}

class ConservationSweep : public ::testing::TestWithParam<PropertyCase> {};

// The accounting invariant: every offload attempt resolves at most once,
// and resolutions never exceed attempts. Every captured frame is routed
// somewhere.
TEST_P(ConservationSweep, EventAccountingHolds) {
  const PropertyCase& pc = GetParam();
  Scenario s = Scenario::ideal(25 * kSecond);
  s.seed = pc.seed;
  s.network = net::NetemSchedule::constant(
      {Bandwidth::mbps(pc.bandwidth_mbps), pc.loss, 2 * kMillisecond});
  s.uplink_template.initial = s.network.at(0);
  s.downlink_template.initial = s.network.at(0);

  const auto r = run_experiment(s, factory_for(pc.controller));
  const auto& t = r.devices[0].totals;
  const auto& o = r.devices[0].offload;

  // Resolutions (success + timeout) never exceed attempts; the difference
  // is frames still in flight at the horizon.
  const std::uint64_t resolved = t.offload_successes + t.timeouts();
  EXPECT_LE(resolved, t.offload_attempts);
  EXPECT_LE(t.offload_attempts - resolved, 16u);  // bounded in-flight tail

  // Client-side stats agree with telemetry.
  EXPECT_EQ(o.attempts, t.offload_attempts);
  EXPECT_EQ(o.successes, t.offload_successes);
  EXPECT_EQ(o.timeouts_network, t.timeouts_network);
  EXPECT_EQ(o.timeouts_load, t.timeouts_load);

  // Frame routing: local completions + local drops + local queue tail +
  // offload attempts (+ frames mid-encode) account for all captures.
  EXPECT_LE(t.local_completions + t.local_drops + t.offload_attempts,
            t.frames_captured + 1);

  // P never exceeds capture rate on average.
  EXPECT_LE(r.devices[0].mean_throughput(), 31.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllControllersAllConditions, ConservationSweep,
    ::testing::Values(
        PropertyCase{ControllerKind::kFrameFeedback, 10.0, 0.0, 1},
        PropertyCase{ControllerKind::kFrameFeedback, 4.0, 0.0, 2},
        PropertyCase{ControllerKind::kFrameFeedback, 1.0, 0.07, 3},
        PropertyCase{ControllerKind::kLocalOnly, 10.0, 0.0, 4},
        PropertyCase{ControllerKind::kAlwaysOffload, 10.0, 0.0, 5},
        PropertyCase{ControllerKind::kAlwaysOffload, 1.0, 0.1, 6},
        PropertyCase{ControllerKind::kInterval, 4.0, 0.03, 7},
        PropertyCase{ControllerKind::kAimd, 4.0, 0.05, 8},
        PropertyCase{ControllerKind::kFrameFeedback, 10.0, 0.15, 9},
        PropertyCase{ControllerKind::kInterval, 1.0, 0.0, 10}));

class PoRangeSweep : public ::testing::TestWithParam<std::uint64_t> {};

// Po_target stays in [0, Fs] at every sample, under chaotic conditions.
TEST_P(PoRangeSweep, PoAlwaysWithinRange) {
  Scenario s = Scenario::ideal(30 * kSecond);
  s.seed = GetParam();
  net::NetemSchedule sched;
  sched.add(0, {Bandwidth::mbps(10), 0.0, kMillisecond});
  sched.add(8 * kSecond, {Bandwidth::mbps(0.5), 0.2, kMillisecond});
  sched.add(16 * kSecond, {Bandwidth::mbps(10), 0.0, kMillisecond});
  sched.add(24 * kSecond, {Bandwidth::mbps(2), 0.07, kMillisecond});
  s.network = sched;
  s.uplink_template.initial = sched.at(0);
  s.downlink_template.initial = sched.at(0);

  const auto r = run_experiment(
      s, make_controller_factory<control::FrameFeedbackController>());
  for (const auto& p : r.devices[0].series.find("Po_target")->points()) {
    EXPECT_GE(p.value, 0.0);
    EXPECT_LE(p.value, 30.0);
  }
  // Achieved offload rate is bounded by target + dispatch rounding.
  for (const auto& p : r.devices[0].series.find("Po_achieved")->points()) {
    EXPECT_LE(p.value, 31.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PoRangeSweep,
                         ::testing::Range<std::uint64_t>(1, 8));

class ServerInvariantSweep : public ::testing::TestWithParam<double> {};

// Server-side invariants under any offered load: batches never exceed the
// limit, every request resolves exactly once.
TEST_P(ServerInvariantSweep, BatchAndConservation) {
  Scenario s = Scenario::ideal(20 * kSecond);
  s.seed = 31;
  s.background_load = server::LoadSchedule::constant(Rate{GetParam()});
  const auto r = run_experiment(
      s, make_controller_factory<control::AlwaysOffloadController>());
  EXPECT_LE(r.server.batch_size.max(), 15.0);
  EXPECT_LE(r.server.requests_completed + r.server.requests_rejected,
            r.server.requests_received);
  // In-progress tail bounded by one batch + queue.
  EXPECT_LE(r.server.requests_received -
                (r.server.requests_completed + r.server.requests_rejected),
            40u);
}

INSTANTIATE_TEST_SUITE_P(OfferedLoads, ServerInvariantSweep,
                         ::testing::Values(0.0, 50.0, 150.0, 300.0));

// Monotonicity: more bandwidth never hurts FrameFeedback's throughput
// (within noise).
TEST(Property, ThroughputMonotoneInBandwidth) {
  double last = 0.0;
  for (const double mbps : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    Scenario s = Scenario::ideal(40 * kSecond);
    s.seed = 17;
    s.network = net::NetemSchedule::constant(
        {Bandwidth::mbps(mbps), 0.0, 2 * kMillisecond});
    s.uplink_template.initial = s.network.at(0);
    s.downlink_template.initial = s.network.at(0);
    const auto r = run_experiment(
        s, make_controller_factory<control::FrameFeedbackController>());
    const double p =
        r.devices[0].series.find("P")->mean_between(15 * kSecond, 40 * kSecond);
    EXPECT_GE(p, last - 2.0) << "bandwidth " << mbps;
    last = std::max(last, p);
  }
}

// Monotonicity: more packet loss never helps.
TEST(Property, ThroughputNonIncreasingInLoss) {
  double first = 0.0;
  bool first_set = false;
  for (const double loss : {0.0, 0.1, 0.3}) {
    Scenario s = Scenario::ideal(40 * kSecond);
    s.seed = 18;
    s.network = net::NetemSchedule::constant(
        {Bandwidth::mbps(10.0), loss, 2 * kMillisecond});
    s.uplink_template.initial = s.network.at(0);
    s.downlink_template.initial = s.network.at(0);
    const auto r = run_experiment(
        s, make_controller_factory<control::AlwaysOffloadController>());
    const double p =
        r.devices[0].series.find("P")->mean_between(15 * kSecond, 40 * kSecond);
    if (!first_set) {
      first = p;
      first_set = true;
    }
    EXPECT_LE(p, first + 2.0) << "loss " << loss;
  }
}

// FrameFeedback dominance: across a spread of stable conditions its
// steady-state throughput is never materially below the best baseline
// (the paper's core claim restated as a property).
class DominanceSweep : public ::testing::TestWithParam<double> {};

TEST_P(DominanceSweep, FrameFeedbackNearBestBaseline) {
  const double mbps = GetParam();
  Scenario s = Scenario::ideal(60 * kSecond);
  s.seed = 23;
  s.network = net::NetemSchedule::constant(
      {Bandwidth::mbps(mbps), 0.0, 2 * kMillisecond});
  s.uplink_template.initial = s.network.at(0);
  s.downlink_template.initial = s.network.at(0);

  auto steady = [](const ExperimentResult& r) {
    return r.devices[0].series.find("P")->mean_between(25 * kSecond,
                                                       60 * kSecond);
  };
  const double ff = steady(run_experiment(
      s, make_controller_factory<control::FrameFeedbackController>()));
  const double local = steady(run_experiment(
      s, make_controller_factory<control::LocalOnlyController>()));
  const double always = steady(run_experiment(
      s, make_controller_factory<control::AlwaysOffloadController>()));
  const double best_baseline = std::max(local, always);
  EXPECT_GT(ff, 0.75 * best_baseline) << "bandwidth " << mbps;
}

INSTANTIATE_TEST_SUITE_P(Bandwidths, DominanceSweep,
                         ::testing::Values(1.0, 4.0, 10.0));

}  // namespace
}  // namespace ff::core
