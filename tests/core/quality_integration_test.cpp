// End-to-end tests of the quality-adaptation extension and the combined /
// mixed-model scenarios.

#include <gtest/gtest.h>

#include "ff/core/framefeedback.h"

namespace ff::core {
namespace {

TEST(QualityIntegration, QualitySeriesRecorded) {
  Scenario s = Scenario::ideal(10 * kSecond);
  s.seed = 3;
  const auto r = run_experiment(
      s, make_controller_factory<control::QualityAdaptController>());
  const TimeSeries* q = r.devices[0].series.find("quality");
  const TimeSeries* acc = r.devices[0].series.find("accuracy");
  ASSERT_NE(q, nullptr);
  ASSERT_NE(acc, nullptr);
  // 10 s at 1 Hz with the first sample at 1.5 s: 1.5, 2.5, ..., 9.5 s.
  EXPECT_EQ(q->size(), 9u);
  // Clean network: quality stays at the top rung.
  EXPECT_DOUBLE_EQ(q->stats().min(), 85.0);
}

TEST(QualityIntegration, QualityDropsWhenBandwidthStarves) {
  Scenario s = Scenario::ideal(60 * kSecond);
  s.seed = 3;
  const net::LinkConditions tight{Bandwidth::mbps(2.0), 0.0, 2 * kMillisecond};
  s.network = net::NetemSchedule::constant(tight);
  s.uplink_template.initial = tight;
  s.downlink_template.initial = tight;
  const auto r = run_experiment(
      s, make_controller_factory<control::QualityAdaptController>());
  const TimeSeries* q = r.devices[0].series.find("quality");
  // Network timeouts must have pushed quality below the top rung at some
  // point.
  EXPECT_LT(q->stats().min(), 85.0);
  // And accuracy tracks quality downward.
  EXPECT_LT(r.devices[0].series.find("accuracy")->stats().min(),
            models::get_model(s.devices[0].model).top1_accuracy + 1e-9);
}

TEST(QualityIntegration, AdaptiveQualityBeatsFixedUnderTightBandwidth) {
  Scenario s = Scenario::ideal(90 * kSecond);
  s.seed = 5;
  const net::LinkConditions tight{Bandwidth::mbps(3.0), 0.0, 2 * kMillisecond};
  s.network = net::NetemSchedule::constant(tight);
  s.uplink_template.initial = tight;
  s.downlink_template.initial = tight;

  const auto adaptive = run_experiment(
      s, make_controller_factory<control::QualityAdaptController>());
  const auto fixed = run_experiment(
      s, make_controller_factory<control::FrameFeedbackController>());
  // 3 Mbps carries ~12.5 fps at q85 but ~25 fps at q55: the adaptive
  // controller must find materially more throughput.
  const double p_adaptive = adaptive.devices[0].series.find("P")->mean_between(
      30 * kSecond, adaptive.duration);
  const double p_fixed = fixed.devices[0].series.find("P")->mean_between(
      30 * kSecond, fixed.duration);
  EXPECT_GT(p_adaptive, p_fixed + 3.0);
}

TEST(QualityIntegration, DeviceQualityChangeShrinksPayload) {
  sim::Simulator sim(1);
  server::EdgeServer server(sim, {});
  NetworkedTransportConfig tc;
  NetworkedOffloadTransport transport(sim, server, tc);
  device::DeviceConfig dc;
  device::EdgeDevice dev(sim, transport, dc);
  const Bytes before = dev.frame_payload();
  dev.set_frame_quality(40);
  EXPECT_LT(dev.frame_payload().count, before.count);
  EXPECT_EQ(dev.frame_spec().jpeg_quality, 40);
  dev.set_frame_quality(500);  // clamped
  EXPECT_EQ(dev.frame_spec().jpeg_quality, 100);
}

TEST(CombinedScenario, HasBothSchedules) {
  const Scenario s = Scenario::paper_combined();
  EXPECT_EQ(s.network.phases().size(), 6u);
  EXPECT_EQ(s.background_load.phases().size(), 9u);
  EXPECT_EQ(s.name, "paper-combined");
}

TEST(CombinedScenario, ProducesBothTimeoutKinds) {
  Scenario s = Scenario::paper_combined();
  s.seed = 9;
  s.duration = 60 * kSecond;  // covers the 1-unit net phase + 150 req/s load
  const auto r = run_experiment(
      s, make_controller_factory<control::AlwaysOffloadController>());
  std::uint64_t tn = 0, tl = 0;
  for (const auto& d : r.devices) {
    tn += d.totals.timeouts_network;
    tl += d.totals.timeouts_load;
  }
  EXPECT_GT(tn, 0u);
  EXPECT_GT(tl, 0u);
}

TEST(MixedModels, DevicesRunDistinctModels) {
  const Scenario s = Scenario::mixed_models();
  ASSERT_EQ(s.devices.size(), 3u);
  EXPECT_NE(s.devices[0].model, s.devices[1].model);
  EXPECT_NE(s.devices[1].model, s.devices[2].model);
}

TEST(MixedModels, ServerBatchesPerModelWithoutStarvation) {
  Scenario s = Scenario::mixed_models(30 * kSecond);
  s.seed = 13;
  const auto r = run_experiment(
      s, make_controller_factory<control::AlwaysOffloadController>());
  // Every device's model got served.
  for (const auto& d : r.devices) {
    EXPECT_GT(d.totals.offload_successes, 100u) << d.name;
  }
}

}  // namespace
}  // namespace ff::core
