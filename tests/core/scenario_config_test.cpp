#include "ff/core/scenario_config.h"

#include <gtest/gtest.h>

#include "ff/core/framefeedback.h"

namespace ff::core {
namespace {

Config make_config(std::initializer_list<std::pair<const char*,
                   const char*>> kvs) {
  Config c;
  for (const auto& [k, v] : kvs) c.set(k, v);
  return c;
}

TEST(ScenarioConfig, DefaultsToIdeal) {
  const Scenario s = scenario_from_config(Config{});
  EXPECT_EQ(s.name, "ideal");
  EXPECT_EQ(s.devices.size(), 1u);
}

TEST(ScenarioConfig, SelectsPaperScenarios) {
  EXPECT_EQ(scenario_from_config(make_config({{"scenario",
                                               "paper_network"}})).name,
            "paper-network");
  EXPECT_EQ(scenario_from_config(make_config({{"scenario",
                                               "paper_server_load"}})).name,
            "paper-server-load");
  EXPECT_EQ(scenario_from_config(make_config({{"scenario",
                                               "paper_combined"}})).name,
            "paper-combined");
  EXPECT_EQ(scenario_from_config(make_config({{"scenario",
                                               "mixed_models"}})).name,
            "mixed-models");
}

TEST(ScenarioConfig, UnknownScenarioThrows) {
  EXPECT_THROW(scenario_from_config(make_config({{"scenario", "nope"}})),
               std::invalid_argument);
}

TEST(ScenarioConfig, SeedAndDuration) {
  const Scenario s = scenario_from_config(
      make_config({{"seed", "99"}, {"duration_s", "12.5"}}));
  EXPECT_EQ(s.seed, 99u);
  EXPECT_EQ(s.duration, seconds_to_sim(12.5));
}

TEST(ScenarioConfig, DeviceReplication) {
  const Scenario s = scenario_from_config(
      make_config({{"devices", "5"}, {"device.fps", "24"}}));
  ASSERT_EQ(s.devices.size(), 5u);
  for (const auto& d : s.devices) {
    EXPECT_DOUBLE_EQ(d.source_fps, 24.0);
  }
  EXPECT_NE(s.devices[0].name, s.devices[1].name);
}

TEST(ScenarioConfig, DeviceOverrides) {
  const Scenario s = scenario_from_config(make_config(
      {{"device.profile", "pi3b"},
       {"device.model", "efficientnet_b0"},
       {"device.deadline_ms", "100"},
       {"device.quality", "60"}}));
  EXPECT_EQ(s.devices[0].profile, models::DeviceId::kPi3B);
  EXPECT_EQ(s.devices[0].model, models::ModelId::kEfficientNetB0);
  EXPECT_EQ(s.devices[0].deadline, 100 * kMillisecond);
  EXPECT_EQ(s.devices[0].frame.jpeg_quality, 60);
}

TEST(ScenarioConfig, InvalidDeviceNamesThrow) {
  EXPECT_THROW(
      scenario_from_config(make_config({{"device.profile", "jetson"}})),
      std::invalid_argument);
  EXPECT_THROW(scenario_from_config(make_config({{"device.model", "vgg"}})),
               std::invalid_argument);
}

TEST(ScenarioConfig, ConstantNetworkOverride) {
  const Scenario s = scenario_from_config(make_config(
      {{"net.bandwidth_mbps", "4"}, {"net.loss", "0.07"}, {"net.delay_ms",
                                                           "5"}}));
  const auto c = s.network.at(0);
  EXPECT_DOUBLE_EQ(c.bandwidth.bits_per_second, 4e6);
  EXPECT_DOUBLE_EQ(c.loss_probability, 0.07);
  EXPECT_EQ(c.propagation_delay, 5 * kMillisecond);
  EXPECT_DOUBLE_EQ(s.uplink_template.initial.loss_probability, 0.07);
}

TEST(ScenarioConfig, BackgroundLoadOverride) {
  const Scenario s =
      scenario_from_config(make_config({{"load.rate", "120"}}));
  EXPECT_DOUBLE_EQ(s.background_load.at(0).per_second, 120.0);
}

TEST(ScenarioConfig, SharedMediumFlag) {
  EXPECT_TRUE(scenario_from_config(make_config({{"shared_medium", "true"}}))
                  .shared_uplink_medium);
}

TEST(ControllerConfig, BuildsEveryKnownController) {
  for (const char* name :
       {"frame-feedback", "local-only", "always-offload", "all-or-nothing",
        "aimd", "quality-adapt", "fixed", "reservation"}) {
    const auto factory =
        controller_factory_from_config(make_config({{"controller", name}}));
    const auto ctl = factory(0);
    ASSERT_NE(ctl, nullptr) << name;
  }
}

TEST(ControllerConfig, UnknownControllerThrows) {
  EXPECT_THROW(
      controller_factory_from_config(make_config({{"controller", "magic"}})),
      std::invalid_argument);
}

TEST(ControllerConfig, GainOverridesApply) {
  const auto factory = controller_factory_from_config(make_config(
      {{"controller", "frame-feedback"}, {"controller.kp", "0.7"},
       {"controller.kd", "0.1"}}));
  auto ctl = factory(0);
  const auto* ff = dynamic_cast<control::FrameFeedbackController*>(ctl.get());
  ASSERT_NE(ff, nullptr);
  EXPECT_DOUBLE_EQ(ff->config().kp, 0.7);
  EXPECT_DOUBLE_EQ(ff->config().kd, 0.1);
}

TEST(ControllerConfig, FixedRate) {
  const auto factory = controller_factory_from_config(
      make_config({{"controller", "fixed"}, {"controller.rate", "11"}}));
  auto ctl = factory(0);
  control::ControllerInput in;
  in.source_fps = 30.0;
  EXPECT_DOUBLE_EQ(ctl->update(in), 11.0);
}

TEST(ControllerConfig, ReservationControllersShareOneManager) {
  const auto factory = controller_factory_from_config(make_config(
      {{"controller", "reservation"}, {"controller.capacity_fps", "45"}}));
  auto a = factory(0);
  auto b = factory(1);
  control::ControllerInput in;
  in.source_fps = 30.0;
  (void)a->update(in);
  (void)b->update(in);
  // Shared 45*0.9 = 40.5 capacity split two ways.
  EXPECT_DOUBLE_EQ(a->update(in), 20.25);
}

TEST(ScenarioConfig, EndToEndRunFromConfig) {
  Config c = make_config({{"scenario", "ideal"},
                          {"duration_s", "10"},
                          {"seed", "4"},
                          {"controller", "frame-feedback"}});
  const auto r = run_experiment(scenario_from_config(c),
                                controller_factory_from_config(c));
  EXPECT_EQ(r.duration, 10 * kSecond);
  EXPECT_GT(r.devices[0].mean_throughput(), 10.0);
}

}  // namespace
}  // namespace ff::core
