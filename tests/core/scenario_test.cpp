#include "ff/core/scenario.h"

#include <gtest/gtest.h>

namespace ff::core {
namespace {

TEST(Scenario, PaperNetworkMatchesPaperSetup) {
  const Scenario s = Scenario::paper_network();
  // Three concurrent Pis (paper §IV-A), 4000 frames at 30 fps.
  ASSERT_EQ(s.devices.size(), 3u);
  for (const auto& d : s.devices) {
    EXPECT_DOUBLE_EQ(d.source_fps, 30.0);
    EXPECT_EQ(d.frame_limit, 4000u);
    EXPECT_EQ(d.model, models::ModelId::kMobileNetV3Small);
    EXPECT_EQ(d.deadline, 250 * kMillisecond);
  }
  EXPECT_EQ(s.network.phases().size(), 6u);  // Table V
  EXPECT_TRUE(s.background_load.empty());
  // Long enough for 4000 frames (133.3 s).
  EXPECT_GE(s.duration, 134 * kSecond);
}

TEST(Scenario, PaperDeviceTrioCoversTableII) {
  const auto trio = paper_device_trio();
  ASSERT_EQ(trio.size(), 3u);
  bool pi3 = false, pi4a = false, pi4b = false;
  for (const auto& d : trio) {
    pi3 |= d.profile == models::DeviceId::kPi3B;
    pi4a |= d.profile == models::DeviceId::kPi4BR12;
    pi4b |= d.profile == models::DeviceId::kPi4BR14;
  }
  EXPECT_TRUE(pi3 && pi4a && pi4b);
}

TEST(Scenario, PaperServerLoadHasTableVISchedule) {
  const Scenario s = Scenario::paper_server_load();
  EXPECT_EQ(s.background_load.phases().size(), 9u);
  EXPECT_DOUBLE_EQ(s.background_load.at(55 * kSecond).per_second, 150.0);
  // Clean network: load is the only stressor.
  EXPECT_DOUBLE_EQ(s.network.at(0).loss_probability, 0.0);
}

TEST(Scenario, PaperTuningInjectsLossAt27s) {
  const Scenario s = Scenario::paper_tuning();
  ASSERT_EQ(s.devices.size(), 1u);
  EXPECT_DOUBLE_EQ(s.network.at(26 * kSecond).loss_probability, 0.0);
  EXPECT_DOUBLE_EQ(s.network.at(28 * kSecond).loss_probability, 0.07);
  EXPECT_EQ(s.devices[0].frame_limit, 0u);  // streams the whole window
}

TEST(Scenario, IdealIsSingleCleanDevice) {
  const Scenario s = Scenario::ideal(10 * kSecond);
  ASSERT_EQ(s.devices.size(), 1u);
  EXPECT_EQ(s.duration, 10 * kSecond);
  EXPECT_DOUBLE_EQ(s.network.at(0).loss_probability, 0.0);
}

TEST(Scenario, AddDeviceAppends) {
  Scenario s = Scenario::ideal();
  device::DeviceConfig d;
  d.name = "extra";
  const std::size_t idx = s.add_device(d);
  EXPECT_EQ(idx, 1u);
  EXPECT_EQ(s.devices[1].name, "extra");
}

TEST(Scenario, SetFrameSpecAppliesToAll) {
  Scenario s = Scenario::paper_network();
  const models::FrameSpec spec{320, 320, 60};
  s.set_frame_spec(spec);
  for (const auto& d : s.devices) EXPECT_EQ(d.frame, spec);
}

TEST(Scenario, LinkTemplatesTrackInitialConditions) {
  const Scenario s = Scenario::paper_network(Bandwidth::mbps(2.0));
  EXPECT_DOUBLE_EQ(s.uplink_template.initial.bandwidth.bits_per_second, 20e6);
  EXPECT_DOUBLE_EQ(s.downlink_template.initial.bandwidth.bits_per_second, 20e6);
}

}  // namespace
}  // namespace ff::core
