// Unit tests for NetworkedOffloadTransport (the device<->server glue) and
// the report printers.

#include <gtest/gtest.h>

#include <sstream>

#include "ff/core/framefeedback.h"

namespace ff::core {
namespace {

struct Rig {
  sim::Simulator sim{5};
  server::EdgeServer server{sim, {}};
  NetworkedOffloadTransport transport;
  std::vector<std::pair<std::uint64_t, device::OffloadReply>> responses;
  std::vector<std::uint64_t> failures;

  explicit Rig(NetworkedTransportConfig tc = {})
      : transport(sim, server, std::move(tc)) {
    transport.set_on_response(
        [this](std::uint64_t id, device::OffloadReply reply) {
          responses.emplace_back(id, reply);
        });
    transport.set_on_failure(
        [this](std::uint64_t id) { failures.push_back(id); });
  }
};

TEST(NetworkedTransport, RoundTripDeliversResponse) {
  Rig rig;
  rig.transport.offload(7, Bytes{20000});
  rig.sim.run_until(5 * kSecond);
  ASSERT_EQ(rig.responses.size(), 1u);
  EXPECT_EQ(rig.responses[0].first, 7u);
  EXPECT_EQ(rig.responses[0].second, device::OffloadReply::kCompleted);
  EXPECT_EQ(rig.server.stats().requests_completed, 1u);
}

TEST(NetworkedTransport, ManyFramesAllResolve) {
  Rig rig;
  for (std::uint64_t i = 0; i < 100; ++i) {
    rig.transport.offload(i, Bytes{20000});
  }
  rig.sim.run_until(30 * kSecond);
  EXPECT_EQ(rig.responses.size(), 100u);
  EXPECT_TRUE(rig.failures.empty());
}

TEST(NetworkedTransport, RejectionFlagTravelsBack) {
  NetworkedTransportConfig tc;
  Rig rig(std::move(tc));
  // Saturate the server with a hard queue limit so rejection happens.
  server::ServerConfig sc;
  sc.batch_limit = 1;
  server::EdgeServer tiny(rig.sim, sc);
  NetworkedOffloadTransport transport(rig.sim, tiny, {});
  std::vector<device::OffloadReply> replies;
  transport.set_on_response([&](std::uint64_t, device::OffloadReply reply) {
    replies.push_back(reply);
  });
  for (std::uint64_t i = 0; i < 10; ++i) {
    transport.offload(i, Bytes{20000});
  }
  rig.sim.run_until(30 * kSecond);
  int rejections = 0;
  for (const device::OffloadReply r : replies) {
    rejections += device::is_rejection(r) ? 1 : 0;
  }
  EXPECT_GT(rejections, 0);
  EXPECT_EQ(replies.size(), 10u);
}

TEST(NetworkedTransport, DeadLinkReportsFailure) {
  NetworkedTransportConfig tc;
  tc.uplink.initial.loss_probability = 1.0;
  tc.transport.max_retries = 2;
  Rig rig(std::move(tc));
  rig.transport.offload(3, Bytes{5000});
  rig.sim.run_until(30 * kSecond);
  ASSERT_EQ(rig.failures.size(), 1u);
  EXPECT_EQ(rig.failures[0], 3u);
  EXPECT_TRUE(rig.responses.empty());
}

TEST(NetworkedTransport, CancelSilencesFrame) {
  NetworkedTransportConfig tc;
  tc.uplink.initial.bandwidth = Bandwidth::mbps(0.5);  // slow: in flight long
  Rig rig(std::move(tc));
  rig.transport.offload(9, Bytes{30000});
  (void)rig.sim.schedule_in(50 * kMillisecond,
                            [&] { rig.transport.cancel(9); });
  rig.sim.run_until(10 * kSecond);
  EXPECT_TRUE(rig.failures.empty());
}

TEST(NetworkedTransport, UplinkStatsExposed) {
  Rig rig;
  rig.transport.offload(1, Bytes{20000});
  rig.sim.run_until(5 * kSecond);
  EXPECT_EQ(rig.transport.uplink_stats().messages_sent, 1u);
  EXPECT_EQ(rig.transport.uplink_stats().sends_succeeded, 1u);
}

TEST(Report, SummaryContainsDevicesAndServer) {
  Scenario s = Scenario::ideal(10 * kSecond);
  s.seed = 2;
  const auto r = run_experiment(
      s, make_controller_factory<control::FrameFeedbackController>());
  std::ostringstream os;
  print_summary(os, r);
  const std::string out = os.str();
  EXPECT_NE(out.find("scenario: ideal"), std::string::npos);
  EXPECT_NE(out.find("frame-feedback"), std::string::npos);
  EXPECT_NE(out.find("server:"), std::string::npos);
  EXPECT_NE(out.find("gpu-util"), std::string::npos);
}

TEST(Report, PhaseComparisonAlignsColumns) {
  std::vector<std::vector<PhaseStat>> stats(2);
  for (int run = 0; run < 2; ++run) {
    auto& dest = stats[static_cast<std::size_t>(run)];
    dest.push_back({"phase-x", 0, 10 * kSecond, 11.0 + run, 0.0});
    dest.push_back({"phase-y", 10 * kSecond, 20 * kSecond, 21.0 + run, 0.0});
  }
  std::ostringstream os;
  print_phase_comparison(os, {"a", "b"}, stats);
  const std::string out = os.str();
  EXPECT_NE(out.find("phase-x"), std::string::npos);
  EXPECT_NE(out.find("11.00"), std::string::npos);
  EXPECT_NE(out.find("22.00"), std::string::npos);
  EXPECT_NE(out.find("0-10"), std::string::npos);
}

TEST(Report, PlotRunsRendersLegendFromControllerNames) {
  Scenario s = Scenario::ideal(5 * kSecond);
  s.seed = 2;
  const auto a = run_experiment(
      s, make_controller_factory<control::LocalOnlyController>());
  const auto b = run_experiment(
      s, make_controller_factory<control::AlwaysOffloadController>());
  std::ostringstream os;
  plot_runs(os, "title", {&a, &b}, "P");
  const std::string out = os.str();
  EXPECT_NE(out.find("title"), std::string::npos);
  EXPECT_NE(out.find("local-only"), std::string::npos);
  EXPECT_NE(out.find("always-offload"), std::string::npos);
}

TEST(Report, PlotRunsToleratesMissingSeries) {
  Scenario s = Scenario::ideal(5 * kSecond);
  const auto a = run_experiment(
      s, make_controller_factory<control::LocalOnlyController>());
  std::ostringstream os;
  EXPECT_NO_THROW(plot_runs(os, "t", {&a}, "no-such-series"));
}

TEST(Stats, MeanCiBasics) {
  EXPECT_EQ(mean_ci(std::vector<double>{}).n, 0u);
  const MeanCi single = mean_ci({5.0});
  EXPECT_DOUBLE_EQ(single.mean, 5.0);
  EXPECT_DOUBLE_EQ(single.half_width, 0.0);
  const MeanCi ci = mean_ci({10.0, 12.0, 14.0});
  EXPECT_DOUBLE_EQ(ci.mean, 12.0);
  EXPECT_GT(ci.half_width, 0.0);
  EXPECT_DOUBLE_EQ(ci.lo() + ci.hi(), 24.0);
}

}  // namespace
}  // namespace ff::core
