#include "ff/device/dispatcher.h"

#include <gtest/gtest.h>

namespace ff::device {
namespace {

int count_offloads(Dispatcher& d, int frames) {
  int n = 0;
  for (int i = 0; i < frames; ++i) {
    if (d.route_next() == Route::kOffload) ++n;
  }
  return n;
}

TEST(Dispatcher, ZeroRateNeverOffloads) {
  Dispatcher d(30.0, 0.0);
  EXPECT_EQ(count_offloads(d, 300), 0);
}

TEST(Dispatcher, FullRateAlwaysOffloads) {
  Dispatcher d(30.0, 30.0);
  EXPECT_EQ(count_offloads(d, 300), 300);
}

TEST(Dispatcher, HalfRateAlternates) {
  Dispatcher d(30.0, 15.0);
  std::vector<Route> routes;
  for (int i = 0; i < 6; ++i) routes.push_back(d.route_next());
  // Error diffusion: every second frame offloads.
  int offloads = 0;
  for (std::size_t i = 0; i < routes.size(); i += 2) {
    EXPECT_NE(routes[i], routes[i + 1]);
    offloads += (routes[i] == Route::kOffload) + (routes[i + 1]
        == Route::kOffload);
  }
  EXPECT_EQ(offloads, 3);
}

TEST(Dispatcher, ThirdRateEveryThird) {
  Dispatcher d(30.0, 10.0);
  EXPECT_EQ(count_offloads(d, 30), 10);
  EXPECT_EQ(count_offloads(d, 300), 100);
}

TEST(Dispatcher, FractionalRateConvergesLongRun) {
  Dispatcher d(30.0, 7.7);
  const int frames = 3000;  // 100 seconds
  const int offloads = count_offloads(d, frames);
  EXPECT_NEAR(static_cast<double>(offloads) / 100.0, 7.7, 0.05);
}

TEST(Dispatcher, ErrorDiffusionHasLowVariance) {
  // Over any window of 30 frames the offload count may deviate from the
  // target by at most 1 (Bresenham property).
  Dispatcher d(30.0, 12.0);
  for (int window = 0; window < 50; ++window) {
    const int n = count_offloads(d, 30);
    EXPECT_GE(n, 11);
    EXPECT_LE(n, 13);
  }
}

TEST(Dispatcher, RateClampedToSourceFps) {
  Dispatcher d(30.0, 100.0);
  EXPECT_DOUBLE_EQ(d.offload_rate(), 30.0);
  d.set_offload_rate(-5.0);
  EXPECT_DOUBLE_EQ(d.offload_rate(), 0.0);
}

TEST(Dispatcher, RateChangeTakesEffect) {
  Dispatcher d(30.0, 0.0);
  EXPECT_EQ(count_offloads(d, 30), 0);
  d.set_offload_rate(30.0);
  EXPECT_EQ(count_offloads(d, 30), 30);
}

TEST(Dispatcher, ZeroFpsAlwaysLocal) {
  Dispatcher d(0.0, 0.0);
  EXPECT_EQ(d.route_next(), Route::kLocal);
}

TEST(Dispatcher, ResetClearsAccumulator) {
  Dispatcher d(30.0, 15.0);
  (void)d.route_next();  // accumulator at 0.5... after one frame
  d.reset();
  Dispatcher fresh(30.0, 15.0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(d.route_next(), fresh.route_next());
  }
}

// Parameterized: achieved fraction equals Po/Fs across the whole range.
class DispatcherFractionSweep : public ::testing::TestWithParam<double> {};

TEST_P(DispatcherFractionSweep, AchievedMatchesTarget) {
  const double po = GetParam();
  Dispatcher d(30.0, po);
  const int frames = 30000;
  const int offloads = count_offloads(d, frames);
  EXPECT_NEAR(static_cast<double>(offloads) / frames, po / 30.0, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Fractions, DispatcherFractionSweep,
                         ::testing::Values(0.0, 1.0, 3.0, 7.5, 10.0, 15.0,
                                           22.5, 29.0, 30.0));

}  // namespace
}  // namespace ff::device
