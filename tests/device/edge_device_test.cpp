#include "ff/device/edge_device.h"

#include <gtest/gtest.h>

namespace ff::device {
namespace {

/// Transport that answers every offload successfully after a fixed delay.
class EchoTransport final : public OffloadTransport {
 public:
  EchoTransport(sim::Simulator& sim, SimDuration delay)
      : sim_(sim), delay_(delay) {}

  void offload(std::uint64_t id, Bytes) override {
    ++offloads_;
    (void)sim_.schedule_in(delay_, [this, id] {
      if (on_response_) on_response_(id, OffloadReply::kCompleted);
    });
  }
  void cancel(std::uint64_t) override {}
  void set_on_response(ResponseFn fn) override { on_response_ = std::move(fn); }
  void set_on_failure(FailureFn fn) override { on_failure_ = std::move(fn); }

  int offloads_{0};

 private:
  sim::Simulator& sim_;
  SimDuration delay_;
  ResponseFn on_response_;
  FailureFn on_failure_;
};

DeviceConfig test_config() {
  DeviceConfig c;
  c.name = "test-device";
  c.profile = models::DeviceId::kPi4BR12;
  c.model = models::ModelId::kMobileNetV3Small;
  c.source_fps = 30.0;
  return c;
}

TEST(EdgeDevice, LocalOnlyProcessesAtPl) {
  sim::Simulator sim(1);
  EchoTransport transport(sim, 50 * kMillisecond);
  EdgeDevice dev(sim, transport, test_config());
  dev.set_offload_rate(0.0);
  dev.start();
  sim.run_until(30 * kSecond);
  const auto& totals = dev.telemetry().totals();
  EXPECT_NEAR(static_cast<double>(totals.local_completions) / 30.0, 13.0, 0.7);
  EXPECT_EQ(totals.offload_attempts, 0u);
  EXPECT_GT(totals.local_drops, 0u);  // Pl < Fs
}

TEST(EdgeDevice, FullOffloadSendsEveryFrame) {
  sim::Simulator sim(2);
  EchoTransport transport(sim, 50 * kMillisecond);
  EdgeDevice dev(sim, transport, test_config());
  dev.set_offload_rate(30.0);
  dev.start();
  sim.run_until(10 * kSecond);
  const auto& totals = dev.telemetry().totals();
  EXPECT_NEAR(static_cast<double>(totals.offload_attempts), 300.0, 3.0);
  EXPECT_EQ(totals.local_completions, 0u);
  EXPECT_NEAR(static_cast<double>(totals.offload_successes), 297.0, 5.0);
}

TEST(EdgeDevice, SplitRateCombinesLocalAndOffload) {
  sim::Simulator sim(3);
  EchoTransport transport(sim, 50 * kMillisecond);
  EdgeDevice dev(sim, transport, test_config());
  dev.set_offload_rate(20.0);
  dev.start();
  sim.run_until(30 * kSecond);
  const SimTime now = sim.now();
  auto& t = dev.telemetry();
  EXPECT_NEAR(t.offload_success_rate(now), 20.0, 1.5);
  EXPECT_NEAR(t.local_rate(now), 10.0,
              1.5);  // 10 routed locally, Pl=13 suffices
  EXPECT_NEAR(t.throughput(now), 30.0, 2.0);
}

TEST(EdgeDevice, FrameLimitStopsCapture) {
  sim::Simulator sim(4);
  EchoTransport transport(sim, 10 * kMillisecond);
  DeviceConfig c = test_config();
  c.frame_limit = 60;
  EdgeDevice dev(sim, transport, c);
  dev.start();
  sim.run_until(60 * kSecond);
  EXPECT_EQ(dev.frames_captured(), 60u);
  EXPECT_TRUE(dev.finished());
}

TEST(EdgeDevice, ControllerInputReflectsTelemetry) {
  sim::Simulator sim(5);
  EchoTransport transport(sim, 50 * kMillisecond);
  EdgeDevice dev(sim, transport, test_config());
  dev.set_offload_rate(15.0);
  dev.start();
  sim.run_until(10 * kSecond);
  const control::ControllerInput in = dev.controller_input();
  EXPECT_DOUBLE_EQ(in.source_fps, 30.0);
  EXPECT_DOUBLE_EQ(in.offload_rate, 15.0);
  EXPECT_NEAR(in.offload_success_rate, 15.0, 1.5);
  EXPECT_NEAR(in.local_rate, 13.0, 1.0);
  EXPECT_DOUBLE_EQ(in.timeout_rate, 0.0);
  EXPECT_FALSE(in.probe_success.has_value());
}

TEST(EdgeDevice, SlowTransportProducesTimeouts) {
  sim::Simulator sim(6);
  EchoTransport transport(sim, 400 * kMillisecond);  // beyond 250 ms deadline
  EdgeDevice dev(sim, transport, test_config());
  dev.set_offload_rate(30.0);
  dev.start();
  sim.run_until(10 * kSecond);
  const control::ControllerInput in = dev.controller_input();
  EXPECT_NEAR(in.timeout_rate, 30.0, 2.0);
  EXPECT_NEAR(in.offload_success_rate, 0.0, 0.1);
}

TEST(EdgeDevice, ProbeResultConsumedOnce) {
  sim::Simulator sim(7);
  EchoTransport transport(sim, 50 * kMillisecond);
  EdgeDevice dev(sim, transport, test_config());
  dev.start();
  dev.send_probe();
  sim.run_until(kSecond);
  const auto r1 = dev.take_probe_result();
  ASSERT_TRUE(r1.has_value());
  EXPECT_TRUE(*r1);
  EXPECT_FALSE(dev.take_probe_result().has_value());
}

TEST(EdgeDevice, CpuUtilizationHigherWhenLocal) {
  sim::Simulator sim(8);
  EchoTransport t1(sim, 50 * kMillisecond);
  EdgeDevice local_dev(sim, t1, test_config());
  local_dev.set_offload_rate(0.0);
  local_dev.start();

  EchoTransport t2(sim, 50 * kMillisecond);
  DeviceConfig c2 = test_config();
  c2.name = "offload-device";
  EdgeDevice offload_dev(sim, t2, c2);
  offload_dev.set_offload_rate(30.0);
  offload_dev.start();

  sim.run_until(20 * kSecond);
  const double u_local = local_dev.cpu_utilization();
  const double u_offload = offload_dev.cpu_utilization();
  // Paper §II-A: ~50% local vs ~22% offloaded.
  EXPECT_NEAR(u_local, 0.502, 0.05);
  EXPECT_NEAR(u_offload, 0.223, 0.05);
}

TEST(EdgeDevice, FramePayloadMatchesFrameSpec) {
  sim::Simulator sim(9);
  EchoTransport transport(sim, 0);
  DeviceConfig c = test_config();
  c.frame = {224, 224, 75};
  EdgeDevice dev(sim, transport, c);
  EXPECT_EQ(dev.frame_payload().count,
            models::frame_bytes({224, 224, 75}).count);
}

TEST(EdgeDevice, StopHaltsCapture) {
  sim::Simulator sim(10);
  EchoTransport transport(sim, 0);
  EdgeDevice dev(sim, transport, test_config());
  dev.start();
  (void)sim.schedule_at(kSecond, [&] { dev.stop(); });
  sim.run_until(10 * kSecond);
  EXPECT_NEAR(static_cast<double>(dev.frames_captured()), 30.0, 1.0);
}

}  // namespace
}  // namespace ff::device
