#include "ff/device/frame_source.h"

#include <gtest/gtest.h>

#include <vector>

namespace ff::device {
namespace {

TEST(FrameSource, EmitsAtConfiguredRate) {
  sim::Simulator sim;
  int frames = 0;
  FrameSource src(sim, {Rate{30.0}, 0, 0.0},
                  [&](std::uint64_t, SimTime) { ++frames; },
                  sim.make_rng("cam"));
  src.start();
  sim.run_until(10 * kSecond);
  EXPECT_NEAR(frames, 300, 1);
}

TEST(FrameSource, FrameIndicesAreSequential) {
  sim::Simulator sim;
  std::vector<std::uint64_t> indices;
  FrameSource src(sim, {Rate{30.0}, 0, 0.0},
                  [&](std::uint64_t i, SimTime) { indices.push_back(i); },
                  sim.make_rng("cam"));
  src.start();
  sim.run_until(kSecond);
  ASSERT_GE(indices.size(), 29u);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    EXPECT_EQ(indices[i], i);
  }
}

TEST(FrameSource, FrameLimitStops) {
  sim::Simulator sim;
  int frames = 0;
  FrameSource src(sim, {Rate{30.0}, 100, 0.0},
                  [&](std::uint64_t, SimTime) { ++frames; },
                  sim.make_rng("cam"));
  src.start();
  sim.run_until(60 * kSecond);
  EXPECT_EQ(frames, 100);
  EXPECT_FALSE(src.running());
  EXPECT_EQ(src.frames_emitted(), 100u);
}

TEST(FrameSource, StopHaltsEmission) {
  sim::Simulator sim;
  int frames = 0;
  FrameSource src(sim, {Rate{30.0}, 0, 0.0},
                  [&](std::uint64_t, SimTime) { ++frames; },
                  sim.make_rng("cam"));
  src.start();
  (void)sim.schedule_at(kSecond, [&] { src.stop(); });
  sim.run_until(10 * kSecond);
  EXPECT_NEAR(frames, 30, 1);
}

TEST(FrameSource, StartIsIdempotent) {
  sim::Simulator sim;
  int frames = 0;
  FrameSource src(sim, {Rate{10.0}, 0, 0.0},
                  [&](std::uint64_t, SimTime) { ++frames; },
                  sim.make_rng("cam"));
  src.start();
  src.start();
  sim.run_until(kSecond + 1);
  EXPECT_EQ(frames, 10);
}

TEST(FrameSource, JitterPreservesMeanRate) {
  sim::Simulator sim(5);
  int frames = 0;
  FrameSource src(sim, {Rate{30.0}, 0, 0.3},
                  [&](std::uint64_t, SimTime) { ++frames; },
                  sim.make_rng("cam"));
  src.start();
  sim.run_until(60 * kSecond);
  EXPECT_NEAR(frames, 1800, 40);
}

TEST(FrameSource, JitterVariesGaps) {
  sim::Simulator sim(6);
  std::vector<SimTime> times;
  FrameSource src(sim, {Rate{30.0}, 0, 0.3},
                  [&](std::uint64_t, SimTime t) { times.push_back(t); },
                  sim.make_rng("cam"));
  src.start();
  sim.run_until(5 * kSecond);
  ASSERT_GT(times.size(), 10u);
  bool varies = false;
  const SimTime first_gap = times[1] - times[0];
  for (std::size_t i = 2; i < times.size(); ++i) {
    if (times[i] - times[i - 1] != first_gap) varies = true;
  }
  EXPECT_TRUE(varies);
}

TEST(FrameSource, RestartAfterStopContinuesIndices) {
  sim::Simulator sim;
  std::vector<std::uint64_t> indices;
  FrameSource src(sim, {Rate{10.0}, 0, 0.0},
                  [&](std::uint64_t i, SimTime) { indices.push_back(i); },
                  sim.make_rng("cam"));
  src.start();
  (void)sim.schedule_at(kSecond, [&] { src.stop(); });
  (void)sim.schedule_at(2 * kSecond, [&] { src.start(); });
  sim.run_until(3 * kSecond);
  ASSERT_GT(indices.size(), 12u);
  // Strictly increasing, no resets.
  for (std::size_t i = 1; i < indices.size(); ++i) {
    EXPECT_EQ(indices[i], indices[i - 1] + 1);
  }
}

}  // namespace
}  // namespace ff::device
