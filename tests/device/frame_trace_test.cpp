#include "ff/device/frame_trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "ff/device/edge_device.h"
#include "ff/server/edge_server.h"

namespace ff::device {
namespace {

TEST(FrameTracer, RecordsInOrder) {
  FrameTracer t;
  t.record(0, 1, FrameEvent::kCaptured);
  t.record(1, 1, FrameEvent::kRoutedOffload);
  t.record(2, 1, FrameEvent::kOffloadSuccess);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.total_recorded(), 3u);
  const auto life = t.lifecycle(1);
  ASSERT_EQ(life.size(), 3u);
  EXPECT_EQ(life[0].event, FrameEvent::kCaptured);
  EXPECT_EQ(life[2].event, FrameEvent::kOffloadSuccess);
}

TEST(FrameTracer, RingEvictsOldest) {
  FrameTracer t(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    t.record(static_cast<SimTime>(i), i, FrameEvent::kCaptured);
  }
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.total_recorded(), 10u);
  EXPECT_EQ(t.records().front().frame_id, 6u);
}

TEST(FrameTracer, CountByEvent) {
  FrameTracer t;
  t.record(0, 1, FrameEvent::kCaptured);
  t.record(0, 2, FrameEvent::kCaptured);
  t.record(0, 1, FrameEvent::kLocalDropped);
  EXPECT_EQ(t.count(FrameEvent::kCaptured), 2u);
  EXPECT_EQ(t.count(FrameEvent::kLocalDropped), 1u);
  EXPECT_EQ(t.count(FrameEvent::kTimeoutLoad), 0u);
}

TEST(FrameTracer, ClearResets) {
  FrameTracer t;
  t.record(0, 1, FrameEvent::kCaptured);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.total_recorded(), 0u);
}

TEST(FrameTracer, EventNamesDistinct) {
  EXPECT_EQ(frame_event_name(FrameEvent::kCaptured), "captured");
  EXPECT_EQ(frame_event_name(FrameEvent::kTimeoutNetwork), "timeout_network");
  EXPECT_NE(frame_event_name(FrameEvent::kRoutedLocal),
            frame_event_name(FrameEvent::kRoutedOffload));
}

TEST(FrameTracer, CsvExport) {
  FrameTracer t;
  t.record(kSecond, 7, FrameEvent::kRoutedLocal);
  const std::string path = ::testing::TempDir() + "/trace.csv";
  t.write_csv(path);
  std::ifstream in(path);
  std::string header, row;
  std::getline(in, header);
  std::getline(in, row);
  EXPECT_EQ(header, "time_s,frame,event");
  EXPECT_EQ(row, "1,7,routed_local");
  std::remove(path.c_str());
}

/// Device-level integration: the tracer sees the full lifecycle.
class EchoTransport final : public OffloadTransport {
 public:
  EchoTransport(sim::Simulator& sim, SimDuration delay)
      : sim_(sim), delay_(delay) {}
  void offload(std::uint64_t id, Bytes) override {
    (void)sim_.schedule_in(delay_, [this, id] {
      if (on_response_) on_response_(id, OffloadReply::kCompleted);
    });
  }
  void cancel(std::uint64_t) override {}
  void set_on_response(ResponseFn fn) override { on_response_ = std::move(fn); }
  void set_on_failure(FailureFn fn) override {}

 private:
  sim::Simulator& sim_;
  SimDuration delay_;
  ResponseFn on_response_;
};

TEST(FrameTracer, DeviceLifecycleEndToEnd) {
  sim::Simulator sim(3);
  EchoTransport transport(sim, 50 * kMillisecond);
  DeviceConfig dc;
  dc.source_fps = 30.0;
  EdgeDevice dev(sim, transport, dc);
  FrameTracer tracer;
  dev.attach_tracer(&tracer);
  dev.set_offload_rate(15.0);
  dev.start();
  sim.run_until(5 * kSecond);

  EXPECT_NEAR(static_cast<double>(tracer.count(FrameEvent::kCaptured)), 150, 2);
  EXPECT_NEAR(static_cast<double>(tracer.count(FrameEvent::kRoutedOffload)),
              75, 2);
  EXPECT_NEAR(static_cast<double>(tracer.count(FrameEvent::kRoutedLocal)), 75,
              2);
  EXPECT_GT(tracer.count(FrameEvent::kOffloadSuccess), 70u);
  EXPECT_GT(tracer.count(FrameEvent::kLocalCompleted), 50u);

  // A specific offloaded frame's lifecycle is ordered and complete.
  std::uint64_t offloaded_frame = 0;
  for (const auto& r : tracer.records()) {
    if (r.event == FrameEvent::kOffloadSuccess) {
      offloaded_frame = r.frame_id;
      break;
    }
  }
  const auto life = tracer.lifecycle(offloaded_frame);
  ASSERT_GE(life.size(), 4u);
  EXPECT_EQ(life[0].event, FrameEvent::kCaptured);
  EXPECT_EQ(life[1].event, FrameEvent::kRoutedOffload);
  EXPECT_EQ(life[2].event, FrameEvent::kOffloadSent);
  EXPECT_EQ(life[3].event, FrameEvent::kOffloadSuccess);
  for (std::size_t i = 1; i < life.size(); ++i) {
    EXPECT_GE(life[i].time, life[i - 1].time);
  }
}

TEST(FrameTracer, DetachStopsRecording) {
  sim::Simulator sim(4);
  EchoTransport transport(sim, kMillisecond);
  DeviceConfig dc;
  EdgeDevice dev(sim, transport, dc);
  FrameTracer tracer;
  dev.attach_tracer(&tracer);
  dev.start();
  sim.run_until(kSecond);
  const auto before = tracer.total_recorded();
  EXPECT_GT(before, 0u);
  dev.attach_tracer(nullptr);
  sim.run_until(2 * kSecond);
  EXPECT_EQ(tracer.total_recorded(), before);
}

}  // namespace
}  // namespace ff::device
