#include "ff/device/local_engine.h"

#include <gtest/gtest.h>

#include <vector>

#include "ff/sim/timer.h"

namespace ff::device {
namespace {

models::LocalLatencyModel pi4_model(double jitter = 0.0) {
  return models::LocalLatencyModel(
      models::get_device(models::DeviceId::kPi4BR12),
      models::ModelId::kMobileNetV3Small, Rng(1), jitter);
}

TEST(LocalEngine, CompletesSubmittedFrame) {
  sim::Simulator sim;
  std::vector<std::uint64_t> done;
  LocalEngine eng(sim, pi4_model(), {2},
                  [&](std::uint64_t id, SimTime) { done.push_back(id); });
  EXPECT_TRUE(eng.submit(7, 0));
  sim.run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], 7u);
  EXPECT_EQ(eng.completed(), 1u);
}

TEST(LocalEngine, ServiceTimeMatchesTableIIRate) {
  sim::Simulator sim;
  SimTime finished = 0;
  LocalEngine eng(sim, pi4_model(), {2},
                  [&](std::uint64_t, SimTime) { finished = sim.now(); });
  (void)eng.submit(1, 0);
  sim.run();
  // Pl = 13 fps -> ~76.9 ms per frame.
  EXPECT_NEAR(static_cast<double>(finished), 1e6 / 13.0, 10.0);
}

TEST(LocalEngine, QueueCapacityRejectsOverflow) {
  sim::Simulator sim;
  int done = 0;
  LocalEngine eng(sim, pi4_model(), {2},
                  [&](std::uint64_t, SimTime) { ++done; });
  EXPECT_TRUE(eng.submit(1, 0));   // executing
  EXPECT_TRUE(eng.submit(2, 0));   // queued
  EXPECT_FALSE(eng.submit(3, 0));  // rejected
  EXPECT_EQ(eng.rejected(), 1u);
  sim.run();
  EXPECT_EQ(done, 2);
}

TEST(LocalEngine, SustainedRateEqualsPl) {
  sim::Simulator sim(2);
  int done = 0;
  LocalEngine eng(sim, pi4_model(0.08), {2},
                  [&](std::uint64_t, SimTime) { ++done; });
  // Offer 30 fps; engine can only do 13.
  std::uint64_t id = 0;
  sim::PeriodicTimer source(
      sim, [&](std::uint64_t) { (void)eng.submit(id++, sim.now()); });
  source.start(kSecond / 30);
  sim.run_until(30 * kSecond);
  EXPECT_NEAR(done / 30.0, 13.0, 0.7);
  EXPECT_GT(eng.rejected(), 0u);
}

TEST(LocalEngine, FifoCompletionOrder) {
  sim::Simulator sim;
  std::vector<std::uint64_t> done;
  LocalEngine eng(sim, pi4_model(), {3},
                  [&](std::uint64_t id, SimTime) { done.push_back(id); });
  (void)eng.submit(1, 0);
  (void)eng.submit(2, 0);
  (void)eng.submit(3, 0);
  sim.run();
  EXPECT_EQ(done, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(LocalEngine, BusyFractionApproachesOneUnderSaturation) {
  sim::Simulator sim(3);
  LocalEngine eng(sim, pi4_model(0.05), {2}, [](std::uint64_t, SimTime) {});
  std::uint64_t id = 0;
  sim::PeriodicTimer source(
      sim, [&](std::uint64_t) { (void)eng.submit(id++, sim.now()); });
  source.start(kSecond / 30);
  sim.run_until(20 * kSecond);
  EXPECT_GT(eng.busy_fraction(), 0.9);
}

TEST(LocalEngine, BusyFractionLowUnderLightLoad) {
  sim::Simulator sim(4);
  LocalEngine eng(sim, pi4_model(0.05), {2}, [](std::uint64_t, SimTime) {});
  std::uint64_t id = 0;
  sim::PeriodicTimer source(
      sim, [&](std::uint64_t) { (void)eng.submit(id++, sim.now()); });
  source.start(kSecond);  // 1 fps into a 13 fps engine
  sim.run_until(20 * kSecond);
  EXPECT_LT(eng.busy_fraction(), 0.15);
}

TEST(LocalEngine, QueueDepthIncludesExecuting) {
  sim::Simulator sim;
  LocalEngine eng(sim, pi4_model(), {3}, [](std::uint64_t, SimTime) {});
  EXPECT_EQ(eng.queue_depth(), 0u);
  (void)eng.submit(1, 0);
  EXPECT_EQ(eng.queue_depth(), 1u);
  EXPECT_TRUE(eng.busy());
  (void)eng.submit(2, 0);
  EXPECT_EQ(eng.queue_depth(), 2u);
}

TEST(LocalEngine, ServiceRateReportsModelRate) {
  sim::Simulator sim;
  LocalEngine eng(sim, pi4_model(), {2}, [](std::uint64_t, SimTime) {});
  EXPECT_NEAR(eng.service_rate(), 13.0, 0.01);
}

}  // namespace
}  // namespace ff::device
