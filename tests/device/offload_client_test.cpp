#include "ff/device/offload_client.h"

#include <gtest/gtest.h>

#include <map>
#include <optional>

namespace ff::device {
namespace {

/// Scriptable transport: respond(id) after a delay, reject, fail, or stay
/// silent. Records cancels.
class FakeTransport final : public OffloadTransport {
 public:
  explicit FakeTransport(sim::Simulator& sim) : sim_(sim) {}

  void offload(std::uint64_t id, Bytes) override {
    ++offloads_;
    const auto it = scripts_.find(id);
    if (it == scripts_.end()) return;  // silent
    const Script s = it->second;
    if (s.fail) {
      (void)sim_.schedule_in(s.delay, [this, id] { on_failure_(id); });
    } else {
      (void)sim_.schedule_in(s.delay,
                             [this, id, reply = s.reply] {
                               on_response_(id, reply);
                             });
    }
  }

  void cancel(std::uint64_t id) override { cancels_.push_back(id); }
  void set_on_response(ResponseFn fn) override { on_response_ = std::move(fn); }
  void set_on_failure(FailureFn fn) override { on_failure_ = std::move(fn); }

  struct Script {
    SimDuration delay{0};
    OffloadReply reply{OffloadReply::kCompleted};
    bool fail{false};
  };

  void script(std::uint64_t id, Script s) { scripts_[id] = s; }

  std::map<std::uint64_t, Script> scripts_;
  std::vector<std::uint64_t> cancels_;
  int offloads_{0};

 private:
  sim::Simulator& sim_;
  ResponseFn on_response_;
  FailureFn on_failure_;
};

struct Rig {
  sim::Simulator sim;
  FakeTransport transport{sim};
  Telemetry telemetry{2 * kSecond};
  OffloadClient client{sim, transport, telemetry,
                       OffloadClientConfig{250 * kMillisecond}};
};

TEST(OffloadClient, ResponseWithinDeadlineIsSuccess) {
  Rig rig;
  rig.transport.script(
      1, {100 * kMillisecond, OffloadReply::kCompleted, false});
  rig.client.offload_frame(1, 0, Bytes{1000});
  rig.sim.run();
  EXPECT_EQ(rig.client.stats().successes, 1u);
  EXPECT_EQ(rig.telemetry.totals().offload_successes, 1u);
  EXPECT_EQ(rig.telemetry.totals().timeouts(), 0u);
  EXPECT_EQ(rig.client.in_flight(), 0u);
}

TEST(OffloadClient, LatencyMeasuredFromCapture) {
  Rig rig;
  rig.transport.script(
      1, {100 * kMillisecond, OffloadReply::kCompleted, false});
  // Frame captured at t=0 but offloaded at t=100ms (encode etc.).
  (void)rig.sim.schedule_at(100 * kMillisecond, [&] {
    rig.client.offload_frame(1, 0, Bytes{1000});
  });
  rig.sim.run();
  EXPECT_EQ(rig.client.stats().successes, 1u);
  EXPECT_DOUBLE_EQ(rig.telemetry.mean_offload_latency_us(rig.sim.now()),
                   200.0 * kMillisecond);
}

TEST(OffloadClient, NoResponseTimesOutAtDeadline) {
  Rig rig;
  rig.client.offload_frame(1, 0, Bytes{1000});  // silent transport
  rig.sim.run();
  EXPECT_EQ(rig.sim.now(), 250 * kMillisecond);
  EXPECT_EQ(rig.client.stats().timeouts_network, 1u);
  EXPECT_EQ(rig.telemetry.totals().timeouts_network, 1u);
  // Deadline expiry cancels the transport work.
  ASSERT_EQ(rig.transport.cancels_.size(), 1u);
  EXPECT_EQ(rig.transport.cancels_[0], 1u);
}

TEST(OffloadClient, LateResponseCountsOnceAsTimeout) {
  Rig rig;
  rig.transport.script(
      1, {400 * kMillisecond, OffloadReply::kCompleted, false});
  rig.client.offload_frame(1, 0, Bytes{1000});
  rig.sim.run();
  EXPECT_EQ(rig.client.stats().timeouts_network, 1u);
  EXPECT_EQ(rig.client.stats().successes, 0u);
  EXPECT_EQ(rig.client.stats().late_responses, 1u);
  EXPECT_EQ(rig.telemetry.totals().timeouts(), 1u);
}

TEST(OffloadClient, RejectionIsLoadTimeout) {
  Rig rig;
  rig.transport.script(
      1, {50 * kMillisecond, OffloadReply::kRejectedLoad, false});
  rig.client.offload_frame(1, 0, Bytes{1000});
  rig.sim.run();
  EXPECT_EQ(rig.client.stats().timeouts_load, 1u);
  EXPECT_EQ(rig.client.stats().timeouts_network, 0u);
  EXPECT_EQ(rig.telemetry.totals().timeouts_load, 1u);
}

TEST(OffloadClient, TransportFailureIsNetworkTimeout) {
  Rig rig;
  rig.transport.script(1, {50 * kMillisecond, OffloadReply::kCompleted, true});
  rig.client.offload_frame(1, 0, Bytes{1000});
  rig.sim.run();
  EXPECT_EQ(rig.client.stats().timeouts_network, 1u);
  // Resolved before deadline; no double counting at deadline.
  EXPECT_EQ(rig.telemetry.totals().timeouts(), 1u);
}

TEST(OffloadClient, PipelinedFramesTrackedIndependently) {
  Rig rig;
  rig.transport.script(
      1, {100 * kMillisecond, OffloadReply::kCompleted, false});
  rig.transport.script(2, {0, OffloadReply::kCompleted, true});
  // 3 stays silent -> deadline timeout.
  rig.client.offload_frame(1, 0, Bytes{1000});
  rig.client.offload_frame(2, 0, Bytes{1000});
  rig.client.offload_frame(3, 0, Bytes{1000});
  EXPECT_EQ(rig.client.in_flight(), 3u);
  rig.sim.run();
  EXPECT_EQ(rig.client.stats().successes, 1u);
  EXPECT_EQ(rig.client.stats().timeouts_network, 2u);
}

TEST(OffloadClient, ProbeSuccessCallback) {
  Rig rig;
  rig.transport.script(
      100, {50 * kMillisecond, OffloadReply::kCompleted, false});
  std::optional<bool> result;
  rig.client.send_probe(100, Bytes{1000}, [&](bool ok) { result = ok; });
  rig.sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(*result);
  EXPECT_EQ(rig.client.stats().probes_ok, 1u);
  // Probes never touch throughput/timeout telemetry.
  EXPECT_EQ(rig.telemetry.totals().offload_successes, 0u);
  EXPECT_EQ(rig.telemetry.totals().timeouts(), 0u);
}

TEST(OffloadClient, ProbeTimeoutReportsFalse) {
  Rig rig;
  std::optional<bool> result;
  rig.client.send_probe(100, Bytes{1000}, [&](bool ok) { result = ok; });
  rig.sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(*result);
  EXPECT_EQ(rig.client.stats().probes_failed, 1u);
  EXPECT_EQ(rig.telemetry.totals().timeouts(), 0u);
}

TEST(OffloadClient, ProbeRejectionReportsFalse) {
  Rig rig;
  rig.transport.script(
      100, {10 * kMillisecond, OffloadReply::kRejectedLoad, false});
  std::optional<bool> result;
  rig.client.send_probe(100, Bytes{1000}, [&](bool ok) { result = ok; });
  rig.sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(*result);
}

TEST(OffloadClient, ProbeTransportFailureReportsFalse) {
  Rig rig;
  rig.transport.script(
      100, {10 * kMillisecond, OffloadReply::kCompleted, true});
  std::optional<bool> result;
  rig.client.send_probe(100, Bytes{1000}, [&](bool ok) { result = ok; });
  rig.sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(*result);
}

TEST(OffloadClient, UnknownResponseIgnored) {
  Rig rig;
  rig.transport.script(
      999, {10 * kMillisecond, OffloadReply::kCompleted, false});
  rig.client.offload_frame(1, 0, Bytes{1000});
  // A response for a frame we never sent must not crash or count.
  rig.transport.offload(999, Bytes{0});
  rig.sim.run();
  EXPECT_EQ(rig.client.stats().successes, 0u);
  EXPECT_GE(rig.client.stats().late_responses, 1u);
}

TEST(OffloadClient, ExactDeadlineTieIsViolation) {
  Rig rig;
  // Response scheduled at exactly the deadline instant: the deadline event
  // was scheduled first, so it wins the tie -- "before its deadline" is
  // strict.
  rig.transport.script(
      1, {250 * kMillisecond, OffloadReply::kCompleted, false});
  rig.client.offload_frame(1, 0, Bytes{1000});
  rig.sim.run();
  EXPECT_EQ(rig.client.stats().timeouts_network, 1u);
  EXPECT_EQ(rig.client.stats().successes, 0u);
}

}  // namespace
}  // namespace ff::device
