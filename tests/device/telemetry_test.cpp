#include "ff/device/telemetry.h"

#include <gtest/gtest.h>

namespace ff::device {
namespace {

TEST(Telemetry, RatesOverWindow) {
  Telemetry t(2 * kSecond);
  // Steady state: 10 completions inside (2s, 4s], queried past warm-up.
  for (int i = 1; i <= 10; ++i) {
    t.record_local_completion(2 * kSecond + i * kSecond / 5);
  }
  EXPECT_DOUBLE_EQ(t.local_rate(4 * kSecond), 5.0);
}

// During warm-up (now < window) rates divide by the elapsed time, not the
// full window: 10 completions in the first second is 10/s, not 5/s.
TEST(Telemetry, WarmupRatesUseElapsedTime) {
  Telemetry t(2 * kSecond);
  for (int i = 0; i < 10; ++i) {
    t.record_local_completion(i * kSecond / 10);
  }
  EXPECT_DOUBLE_EQ(t.local_rate(kSecond), 10.0);
}

TEST(Telemetry, ThroughputIsLocalPlusOffload) {
  Telemetry t(kSecond);
  t.record_local_completion(kSecond);
  t.record_local_completion(kSecond);
  t.record_offload_success(kSecond, 100 * kMillisecond);
  EXPECT_DOUBLE_EQ(t.throughput(kSecond), 3.0);
}

TEST(Telemetry, TimeoutRateSplitsNetworkAndLoad) {
  Telemetry t(kSecond);
  t.record_timeout_network(kSecond);
  t.record_timeout_network(kSecond);
  t.record_timeout_load(kSecond);
  EXPECT_DOUBLE_EQ(t.network_timeout_rate(kSecond), 2.0);
  EXPECT_DOUBLE_EQ(t.load_timeout_rate(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(t.timeout_rate(kSecond), 3.0);
}

TEST(Telemetry, OldEventsLeaveWindow) {
  Telemetry t(2 * kSecond);
  t.record_timeout_network(0);
  // Warm-up: one event in the first elapsed second is 1/s.
  EXPECT_DOUBLE_EQ(t.timeout_rate(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(t.timeout_rate(3 * kSecond), 0.0);
}

TEST(Telemetry, TotalsAreCumulative) {
  Telemetry t(kSecond);
  t.record_frame_captured(0);
  t.record_frame_captured(10 * kSecond);
  t.record_local_completion(20 * kSecond);
  t.record_offload_attempt(30 * kSecond);
  t.record_offload_success(30 * kSecond, kMillisecond);
  t.record_timeout_network(40 * kSecond);
  t.record_timeout_load(50 * kSecond);
  t.record_local_drop(60 * kSecond);

  const TelemetryTotals& totals = t.totals();
  EXPECT_EQ(totals.frames_captured, 2u);
  EXPECT_EQ(totals.local_completions, 1u);
  EXPECT_EQ(totals.offload_attempts, 1u);
  EXPECT_EQ(totals.offload_successes, 1u);
  EXPECT_EQ(totals.timeouts_network, 1u);
  EXPECT_EQ(totals.timeouts_load, 1u);
  EXPECT_EQ(totals.local_drops, 1u);
  EXPECT_EQ(totals.timeouts(), 2u);
  EXPECT_EQ(totals.successes(), 2u);
}

TEST(Telemetry, MeanOffloadLatency) {
  Telemetry t(kSecond);
  t.record_offload_success(0, 100 * kMillisecond);
  t.record_offload_success(0, 200 * kMillisecond);
  EXPECT_DOUBLE_EQ(t.mean_offload_latency_us(0), 150.0 * kMillisecond);
}

TEST(Telemetry, CaptureRateTracksFs) {
  Telemetry t(2 * kSecond);
  for (int i = 0; i < 60; ++i) t.record_frame_captured(i * kSecond / 30);
  EXPECT_NEAR(t.capture_rate(2 * kSecond - 1), 30.0, 0.6);
}

TEST(Telemetry, AttemptRateSeparateFromSuccessRate) {
  Telemetry t(kSecond);
  t.record_offload_attempt(kSecond);
  t.record_offload_attempt(kSecond);
  t.record_offload_success(kSecond, kMillisecond);
  EXPECT_DOUBLE_EQ(t.offload_attempt_rate(kSecond), 2.0);
  EXPECT_DOUBLE_EQ(t.offload_success_rate(kSecond), 1.0);
}

}  // namespace
}  // namespace ff::device
