#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "ff/control/baselines.h"
#include "ff/control/frame_feedback.h"
#include "ff/core/experiment.h"
#include "ff/fleet/placement.h"
#include "ff/sweep/sweep.h"

namespace ff::fleet {
namespace {

using core::ExperimentResult;
using core::FleetTopology;
using core::Scenario;
using core::run_experiment;

/// Multi-device base with cross-partition traffic: four devices in two
/// shared-medium groups, background load, a mid-run loss burst.
Scenario fleet_scenario(std::uint64_t seed, std::size_t servers) {
  Scenario s = Scenario::ideal(15 * kSecond);
  s.name = "fleet-test";
  s.seed = seed;
  const device::DeviceConfig proto = s.devices.at(0);
  s.devices.clear();
  for (int i = 0; i < 4; ++i) {
    device::DeviceConfig d = proto;
    d.name = "pi-" + std::to_string(i);
    s.add_device(std::move(d));
  }
  s.shared_uplink_medium = true;
  s.uplink_medium_groups = 2;
  s.network = net::NetemSchedule::loss_injection(6 * kSecond, 0.05,
                                                 Bandwidth::mbps(10.0));
  s.background_load = server::LoadSchedule::constant(Rate{30.0});
  if (servers > 0) {
    s.fleet = FleetTopology::uniform(s.server, servers);
    server::AdmissionConfig admission;
    admission.policy = server::AdmissionPolicy::kTokenBucket;
    admission.rate_fps = 90.0;
    admission.burst = 20.0;
    for (auto& spec : s.fleet.servers) {
      spec.config.admission = admission;
      spec.background_load = s.background_load;
      spec.background = s.background;
    }
    s.fleet.placement = least_loaded_placement();
  }
  return s;
}

std::uint64_t fingerprint(Scenario s, std::size_t partitions,
                          unsigned threads) {
  s.partitions = partitions;
  s.partition_threads = threads;
  const ExperimentResult r = run_experiment(
      s, core::make_controller_factory<control::FrameFeedbackController>());
  return sweep::result_fingerprint(r);
}

/// Acceptance criterion: the M = 1 fleet topology is the degenerate case
/// and reproduces the legacy single-server wiring bit for bit -- on the
/// single simulator and on the partitioned kernel.
TEST(Fleet, SingleServerFleetMatchesLegacyFingerprint) {
  for (const std::size_t k : {std::size_t{0}, std::size_t{4}}) {
    Scenario legacy = fleet_scenario(42, 0);
    Scenario m1 = fleet_scenario(42, 0);
    m1.fleet = FleetTopology::uniform(m1.server, 1);
    m1.fleet.servers[0].background_load = m1.background_load;
    m1.fleet.servers[0].background = m1.background;
    EXPECT_EQ(fingerprint(std::move(legacy), k, 1),
              fingerprint(std::move(m1), k, 1))
        << "K=" << k;
  }
}

/// Determinism matrix: for each fleet size, every partition count and
/// thread count produces one bit-identical fingerprint.
TEST(Fleet, DeterminismMatrixAcrossServersPartitionsThreads) {
  for (const std::size_t m : {std::size_t{1}, std::size_t{2},
                              std::size_t{4}}) {
    const std::uint64_t reference = fingerprint(fleet_scenario(42, m), 1, 1);
    for (const std::size_t k : {std::size_t{1}, std::size_t{4}}) {
      for (const unsigned threads : {1u, 2u}) {
        EXPECT_EQ(reference, fingerprint(fleet_scenario(42, m), k, threads))
            << "M=" << m << " K=" << k << " threads=" << threads;
      }
    }
  }
}

/// A fleet run actually spreads work: every server of an M = 4 fleet
/// receives requests, and the server-side conservation identity holds.
TEST(Fleet, WorkSpreadsAcrossServersAndConserves) {
  Scenario s = fleet_scenario(42, 4);
  const ExperimentResult r = run_experiment(
      s, core::make_controller_factory<control::FrameFeedbackController>());
  ASSERT_EQ(r.servers.size(), 4u);
  for (const core::ServerResult& sr : r.servers) {
    EXPECT_GT(sr.stats.requests_received, 0u) << sr.name;
    EXPECT_TRUE(sr.conserved()) << sr.name;
  }
  // Legacy mirror fields expose servers[0].
  EXPECT_EQ(r.server.requests_received,
            r.servers[0].stats.requests_received);
}

/// Admission rejections surface as typed responses and trigger
/// re-placement: a device hinted onto a starved server fails over to the
/// open one and stays there.
TEST(Fleet, RejectionTriggersReplacement) {
  Scenario s = Scenario::ideal(10 * kSecond);
  s.name = "fleet-rehome";
  s.seed = 7;
  s.fleet = FleetTopology::uniform(s.server, 2);
  // Server 0 admits essentially nothing; server 1 is wide open.
  s.fleet.servers[0].config.admission.policy =
      server::AdmissionPolicy::kTokenBucket;
  s.fleet.servers[0].config.admission.rate_fps = 0.1;
  s.fleet.servers[0].config.admission.burst = 1.0;
  s.fleet.placement_hints = {0};
  s.fleet.placement = least_loaded_placement();

  const ExperimentResult r = run_experiment(
      s, core::make_controller_factory<control::AlwaysOffloadController>());
  ASSERT_EQ(r.devices.size(), 1u);
  const core::DeviceResult& d = r.devices[0];
  EXPECT_EQ(d.initial_server, 0u);
  EXPECT_EQ(d.final_server, 1u);
  EXPECT_GT(d.totals.admission_rejections, 0u);
  // Admission rejections are a subset of load timeouts: device-side frame
  // conservation is unchanged.
  EXPECT_GE(d.totals.timeouts_load, d.totals.admission_rejections);
  EXPECT_TRUE(d.totals.conserved());
  EXPECT_GT(r.servers[0].admission.rejected, 0u);
  EXPECT_GT(r.servers[1].stats.requests_completed, 0u);
}

/// Per-tenant SLO accounting: member totals roll up exactly and the SLO
/// verdict follows the configured bounds.
TEST(Fleet, TenantTotalsRollUp) {
  Scenario s = fleet_scenario(42, 2);
  core::TenantSloSpec gold;
  gold.name = "gold";
  gold.devices = {0, 2};
  gold.min_goodput = 0.0;
  core::TenantSloSpec strict;
  strict.name = "strict";
  strict.devices = {1, 3};
  strict.min_goodput = 1.1;  // unsatisfiable on purpose
  s.fleet.tenants = {gold, strict};

  const ExperimentResult r = run_experiment(
      s, core::make_controller_factory<control::FrameFeedbackController>());
  ASSERT_EQ(r.tenants.size(), 2u);
  EXPECT_EQ(r.tenants[0].totals.frames_captured,
            r.devices[0].totals.frames_captured +
                r.devices[2].totals.frames_captured);
  EXPECT_TRUE(r.tenants[0].slo_met());
  EXPECT_FALSE(r.tenants[1].slo_met());
}

/// The sweep axes label and apply fleet sizes and placement policies.
TEST(Fleet, SweepAxesApply) {
  sweep::Axis servers = sweep::server_count_axis({1, 4});
  ASSERT_EQ(servers.values.size(), 2u);
  EXPECT_EQ(servers.values[1].label, "M=4");
  Scenario s = Scenario::ideal();
  servers.values[1].apply(s);
  EXPECT_EQ(s.fleet.server_count(), 4u);

  sweep::Axis placement = sweep::placement_axis(
      {{"least-loaded", least_loaded_placement()},
       {"static", static_placement()}});
  ASSERT_EQ(placement.values.size(), 2u);
  placement.values[0].apply(s);
  ASSERT_TRUE(static_cast<bool>(s.fleet.placement));
  EXPECT_EQ(s.fleet.placement()->name(), "least-loaded");
}

/// Placement policy unit behavior: least-loaded fills the emptiest
/// server, static honors its map, reservation fails over around the ring.
TEST(Fleet, PlacementPolicies) {
  const device::DeviceConfig dev;
  std::vector<std::size_t> counts{2, 0, 1};
  core::PlacementView view;
  view.server_count = 3;
  view.assigned_counts = &counts;

  LeastLoadedPlacement least;
  EXPECT_EQ(least.place(0, dev, view), 1u);
  EXPECT_EQ(least.on_rejection(0, 2, 3, 1), 0u);
  EXPECT_EQ(least.on_rejection(0, 0, 1, 1), 0u);  // nowhere else to go

  StaticPlacement fixed({2, 1});
  EXPECT_EQ(fixed.place(0, dev, view), 2u);
  EXPECT_EQ(fixed.place(1, dev, view), 1u);
  EXPECT_EQ(fixed.place(5, dev, view), 2u);  // past the map: round-robin
  EXPECT_EQ(fixed.on_rejection(0, 2, 3, 1), 2u);  // static never re-homes

  ReservationPlacement reservation;
  EXPECT_EQ(reservation.place(0, dev, view), 0u);
  // Device 0's reservation makes server 0 the fullest; the next device
  // lands elsewhere.
  EXPECT_NE(reservation.place(1, dev, view), 0u);
  EXPECT_EQ(reservation.on_rejection(0, 1, 3, 1), 2u);
}

}  // namespace
}  // namespace ff::fleet
