#include "ff/invariants/capture.h"

#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "ff/invariants/harness.h"

namespace ff::invariants {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

TEST(Capture, RoundTripsThroughTheKeyValueFile) {
  Capture c;
  c.scenario = "loss_burst";
  c.controller = "frame-feedback";
  c.seed = 1234;
  c.fingerprint = 0xfeedface12345678u;
  c.events_executed = 99999;
  c.frames_captured = 2700;
  c.failed = "t_convergence,po_flapping";
  c.trace_path = "loss_burst.trace.jsonl";

  const std::string path = temp_path("roundtrip.capture");
  write_capture(c, path);
  const Capture back = load_capture(path);
  EXPECT_EQ(back.scenario, c.scenario);
  EXPECT_EQ(back.controller, c.controller);
  EXPECT_EQ(back.seed, c.seed);
  EXPECT_EQ(back.fingerprint, c.fingerprint);
  EXPECT_EQ(back.events_executed, c.events_executed);
  EXPECT_EQ(back.frames_captured, c.frames_captured);
  EXPECT_EQ(back.failed, c.failed);
  EXPECT_EQ(back.trace_path, c.trace_path);
}

TEST(Capture, LoadThrowsOnMissingFileAndMissingKeys) {
  EXPECT_THROW((void)load_capture(temp_path("nope.capture")),
               std::runtime_error);
  const std::string path = temp_path("partial.capture");
  std::ofstream(path) << "scenario = loss_burst\n";
  EXPECT_THROW((void)load_capture(path), std::invalid_argument);
}

TEST(Capture, ReplayThrowsOnUnknownScenario) {
  Capture c;
  c.scenario = "no_such_scenario";
  c.controller = "frame-feedback";
  c.seed = 1;
  c.fingerprint = 1;
  const std::string path = temp_path("unknown.capture");
  write_capture(c, path);
  EXPECT_THROW((void)replay_capture(path), std::invalid_argument);
}

// The flight-recorder contract end to end: a harness capture replays to
// the exact fingerprint of the run it recorded, and a tampered
// fingerprint is detected as a mismatch.
TEST(Capture, HarnessCaptureReplaysBitIdentically) {
  HarnessOptions options;
  options.capture_dir = testing::TempDir() + "invariants-captures";
  options.capture_all = true;  // capture even though the run passes
  const ScenarioReport report =
      run_scenario(find_scenario("server_stall"), options);
  ASSERT_FALSE(report.capture_path.empty());
  EXPECT_TRUE(report.replay_verified);

  const ReplayResult replay = replay_capture(report.capture_path);
  EXPECT_TRUE(replay.match());
  EXPECT_EQ(replay.replayed_fingerprint, report.fingerprint);
  EXPECT_EQ(replay.replayed_events, report.events_executed);

  // Tamper with the recorded fingerprint: replay must notice.
  Capture tampered = load_capture(report.capture_path);
  tampered.fingerprint ^= 1;
  const std::string bad = temp_path("tampered.capture");
  write_capture(tampered, bad);
  EXPECT_FALSE(replay_capture(bad).match());
}

}  // namespace
}  // namespace ff::invariants
