#include "ff/invariants/harness.h"

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "ff/control/frame_feedback.h"
#include "ff/invariants/invariants.h"
#include "ff/invariants/scenario_suite.h"

namespace ff::invariants {
namespace {

TEST(Suite, HasAtLeastFiveDistinctScenarios) {
  const auto suite = default_suite();
  EXPECT_GE(suite.size(), 5u);
  std::set<std::string> names;
  for (const auto& d : suite) {
    EXPECT_FALSE(d.name.empty());
    EXPECT_FALSE(d.description.empty());
    EXPECT_GT(d.scenario.duration, 0);
    EXPECT_GE(d.disturbance_end, d.disturbance_start);
    names.insert(d.name);
  }
  EXPECT_EQ(names.size(), suite.size());
}

TEST(Suite, FindScenarioRoundTripsAndThrowsOnUnknown) {
  const auto d = find_scenario("loss_burst");
  EXPECT_EQ(d.name, "loss_burst");
  EXPECT_THROW((void)find_scenario("no_such_scenario"),
               std::invalid_argument);
}

TEST(Suite, ScenariosAreSeededForReproducibility) {
  for (const auto& d : default_suite()) {
    EXPECT_EQ(d.scenario.seed, 42u) << d.name;
  }
}

// One full harness pass over a real disturbance. This is the in-tree
// version of the physics-CI gate: if a bugfix regresses conservation or
// convergence, this fails before the bench ever runs.
TEST(Harness, LossBurstHoldsAllInvariants) {
  const ScenarioReport report = run_scenario(find_scenario("loss_burst"));
  EXPECT_TRUE(report.passed()) << [&] {
    std::string s;
    for (const auto& c : report.checks) {
      if (!c.passed) s += c.name + ": " + c.detail + "\n";
    }
    return s;
  }();
  EXPECT_GT(report.fingerprint, 0u);
  EXPECT_GT(report.events_executed, 1000u);
  // No captures requested, none written.
  EXPECT_TRUE(report.capture_path.empty());
}

TEST(Invariants, ConservationCheckFailsWhenTotalsAreTampered) {
  const auto scenario = find_scenario("loss_burst");
  core::ExperimentResult result = core::run_experiment(
      scenario.scenario, core::make_controller_factory<
                             control::FrameFeedbackController>());
  InvariantThresholds th;
  auto checks = evaluate_invariants(scenario, result, th);
  const auto find = [](const std::vector<InvariantCheck>& cs,
                       const std::string& name) -> const InvariantCheck& {
    for (const auto& c : cs) {
      if (c.name == name) return c;
    }
    throw std::logic_error("missing check " + name);
  };
  EXPECT_TRUE(find(checks, "frame_conservation").passed);

  // The exact failure mode the in-flight bugfix closed: frames that
  // vanish from the accounting. Reverting the fix reproduces this.
  result.devices[0].totals.in_flight_at_end = 0;
  result.devices[0].totals.frames_captured += 3;
  checks = evaluate_invariants(scenario, result, th);
  const auto& conservation = find(checks, "frame_conservation");
  EXPECT_FALSE(conservation.passed);
  EXPECT_GE(conservation.observed, 3.0);
  EXPECT_EQ(conservation.bound, 0.0);
}

TEST(Invariants, PoFlappingCountsReversalsAboveTheDeadband) {
  DisturbanceScenario d = find_scenario("loss_burst");
  core::ExperimentResult result;
  result.duration = 60 * kSecond;  // one minute: reversals == per-minute rate
  core::DeviceResult dev;
  dev.name = "synthetic";
  TimeSeries& po = dev.series.series("Po_target");
  // 10, 20, 10, 20, ... : every move is a full reversal.
  for (int i = 0; i < 12; ++i) {
    po.record(i * kSecond, i % 2 == 0 ? 10.0 : 20.0);
  }
  result.devices.push_back(std::move(dev));

  InvariantThresholds th;
  th.po_flaps_per_minute = 5.0;
  auto checks = evaluate_invariants(d, result, th);
  for (const auto& c : checks) {
    if (c.name != "po_flapping") continue;
    EXPECT_FALSE(c.passed);
    EXPECT_DOUBLE_EQ(c.observed, 10.0);  // 11 moves, 10 reversals
  }

  // Same shape inside the deadband: not flapping, just dither.
  TimeSeries& po2 = result.devices[0].series.series("Po_target");
  po2.clear();
  for (int i = 0; i < 12; ++i) {
    po2.record(i * kSecond, i % 2 == 0 ? 10.0 : 10.4);
  }
  checks = evaluate_invariants(d, result, th);
  for (const auto& c : checks) {
    if (c.name != "po_flapping") continue;
    EXPECT_TRUE(c.passed);
    EXPECT_DOUBLE_EQ(c.observed, 0.0);
  }
}

TEST(Invariants, ConvergenceCheckFailsWhenTimeoutsPersist) {
  DisturbanceScenario d = find_scenario("loss_burst");
  d.disturbance_start = 30 * kSecond;
  d.disturbance_end = 55 * kSecond;
  core::ExperimentResult result;
  result.duration = 90 * kSecond;
  core::DeviceResult dev;
  dev.name = "synthetic";
  TimeSeries& t = dev.series.series("T");
  // Timeouts spike during the disturbance and never recover.
  for (int i = 1; i < 90; ++i) {
    t.record(i * kSecond, i < 30 ? 0.0 : 8.0);
  }
  result.devices.push_back(std::move(dev));

  const auto checks = evaluate_invariants(d, result, InvariantThresholds{});
  bool found = false;
  for (const auto& c : checks) {
    if (c.name != "t_convergence") continue;
    found = true;
    EXPECT_FALSE(c.passed);
    EXPECT_NEAR(c.observed, 8.0, 1e-9);
  }
  EXPECT_TRUE(found);
}

// The partitioned-kernel determinism gate: the scenario runs on K=1 and
// re-runs on K=4; the harness must report bit-identical fingerprints.
TEST(Harness, PartitionDeterminismScenarioFingerprintsMatch) {
  const auto scenario = find_scenario("partition_determinism");
  EXPECT_EQ(scenario.scenario.partitions, 1u);
  EXPECT_EQ(scenario.compare_partitions, 4u);
  const ScenarioReport report = run_scenario(scenario);
  bool found = false;
  for (const auto& c : report.checks) {
    if (c.name == "partition_fingerprint_equality") {
      found = true;
      EXPECT_TRUE(c.passed) << c.detail;
    }
  }
  EXPECT_TRUE(found) << "comparison check missing from the report";
  EXPECT_TRUE(report.passed()) << [&] {
    std::string s;
    for (const auto& c : report.checks) {
      if (!c.passed) s += c.name + ": " + c.detail + "\n";
    }
    return s;
  }();
}

TEST(Invariants, JsonSummaryIsWellFormedEnoughToGrep) {
  ScenarioReport r;
  r.scenario = "loss_burst";
  r.controller = "frame-feedback";
  r.seed = 42;
  r.fingerprint = 0xdeadbeefu;
  r.checks.push_back({"frame_conservation", true, 0.0, 0.0, "ok"});
  r.checks.push_back({"t_convergence", false, 8.0, 1.0, "stuck \"high\""});
  std::ostringstream os;
  write_invariants_json({r}, os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"suite\": \"invariants\""), std::string::npos);
  EXPECT_NE(json.find("\"passed\": false"), std::string::npos);
  EXPECT_NE(json.find("0x00000000deadbeef"), std::string::npos);
  EXPECT_NE(json.find("stuck \\\"high\\\""), std::string::npos);
}

}  // namespace
}  // namespace ff::invariants
