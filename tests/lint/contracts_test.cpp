// Repo-contract rule tests: fingerprint-completeness and
// nodiscard-contract in memory, plus non-vacuity checks against the
// real tree -- stripping one fingerprint mix line or one [[nodiscard]]
// from production sources must produce exactly one finding.

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "ff/lint/contracts.h"
#include "ff/lint/driver.h"

namespace ff::lint {
namespace {

using FileRule = std::pair<std::string, std::string>;

std::set<FileRule> rules_of(const LintResult& r) {
  std::set<FileRule> out;
  for (const Finding& f : r.findings) out.insert({f.file, f.rule});
  return out;
}

LintResult lint_one(const std::string& rel, const std::string& content) {
  return lint_files({{rel, content}});
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ---------------------------------------------------------------------
// fingerprint-completeness, in memory.

const char kFingerprintGap[] =
    "#include <cstdint>\n"
    "struct TelemetryTotals {\n"
    "  uint64_t frames_offered = 0;\n"
    "  uint64_t frames_completed = 0;\n"
    "  double mean_latency_ms = 0.0;\n"
    "};\n"
    "uint64_t result_fingerprint(const TelemetryTotals& t) {\n"
    "  uint64_t h = 0;\n"
    "  h ^= t.frames_offered;\n"
    "  h ^= t.frames_completed;\n"
    "  return h;\n"
    "}\n";

TEST(Fingerprint, UnmixedNumericFieldFires) {
  const auto r = lint_one("src/sweep/src/x.cpp", kFingerprintGap);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "fingerprint-completeness");
  EXPECT_NE(r.findings[0].message.find("mean_latency_ms"),
            std::string::npos);
  EXPECT_NE(r.findings[0].message.find("TelemetryTotals"),
            std::string::npos);
}

TEST(Fingerprint, ConservationIdentityCountsAsAccounted) {
  EXPECT_TRUE(lint_one("src/sweep/src/x.cpp",
                       "#include <cstdint>\n"
                       "struct TelemetryTotals {\n"
                       "  uint64_t frames_offered = 0;\n"
                       "  uint64_t frames_dropped = 0;\n"
                       "  uint64_t accounted() const {\n"
                       "    return frames_dropped;\n"
                       "  }\n"
                       "};\n"
                       "uint64_t result_fingerprint(\n"
                       "    const TelemetryTotals& t) {\n"
                       "  return t.frames_offered;\n"
                       "}\n")
                  .findings.empty());
}

TEST(Fingerprint, ExemptionRequiresRationale) {
  // Bare directive: still a finding, asking for the rationale.
  const std::string bare =
      "#include <cstdint>\n"
      "struct TelemetryTotals {\n"
      "  uint64_t frames_offered = 0;\n"
      "  // ff-lint: allow(fingerprint-exempt)\n"
      "  double slo_threshold = 0.0;\n"
      "};\n"
      "uint64_t result_fingerprint(const TelemetryTotals& t) {\n"
      "  return t.frames_offered;\n"
      "}\n";
  const auto r = lint_one("src/sweep/src/x.cpp", bare);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "fingerprint-completeness");
  EXPECT_NE(r.findings[0].message.find("rationale"), std::string::npos);
  // With a rationale the field is exempt (and the directive is
  // load-bearing, so stale-allow stays quiet).
  const std::string justified =
      "#include <cstdint>\n"
      "struct TelemetryTotals {\n"
      "  uint64_t frames_offered = 0;\n"
      "  // ff-lint: allow(fingerprint-exempt) config echo, not output.\n"
      "  double slo_threshold = 0.0;\n"
      "};\n"
      "uint64_t result_fingerprint(const TelemetryTotals& t) {\n"
      "  return t.frames_offered;\n"
      "}\n";
  EXPECT_TRUE(lint_one("src/sweep/src/x.cpp", justified).findings.empty());
}

TEST(Fingerprint, InertWithoutFingerprintDefinition) {
  // No result_fingerprint in the tree: the rule stays quiet so fixture
  // trees for other rules do not need fingerprint plumbing.
  EXPECT_TRUE(lint_one("src/sweep/src/x.cpp",
                       "#include <cstdint>\n"
                       "struct TelemetryTotals {\n"
                       "  uint64_t frames_offered = 0;\n"
                       "  double mean_latency_ms = 0.0;\n"
                       "};\n")
                  .findings.empty());
}

TEST(Fingerprint, NonCuratedStructIsIgnored) {
  EXPECT_TRUE(lint_one("src/sweep/src/x.cpp",
                       "#include <cstdint>\n"
                       "struct ScratchPad {\n"
                       "  double unmixed = 0.0;\n"
                       "};\n"
                       "struct TelemetryTotals {\n"
                       "  uint64_t frames_offered = 0;\n"
                       "};\n"
                       "uint64_t result_fingerprint(\n"
                       "    const TelemetryTotals& t) {\n"
                       "  return t.frames_offered;\n"
                       "}\n")
                  .findings.empty());
}

// ---------------------------------------------------------------------
// nodiscard-contract, in memory.

TEST(Nodiscard, CuratedApiNames) {
  EXPECT_TRUE(nodiscard_api_name("try_push"));
  EXPECT_TRUE(nodiscard_api_name("try_reserve_batch"));
  EXPECT_TRUE(nodiscard_api_name("submit"));
  EXPECT_TRUE(nodiscard_api_name("place"));
  EXPECT_TRUE(nodiscard_api_name("admit"));
  EXPECT_TRUE(nodiscard_api_name("evaluate_invariants"));
  EXPECT_FALSE(nodiscard_api_name("push"));
  EXPECT_FALSE(nodiscard_api_name("trying"));
  EXPECT_FALSE(nodiscard_api_name("submission"));
}

TEST(Nodiscard, StatusDeclarationMustBeNodiscard) {
  const auto r = lint_one("src/net/src/x.cpp",
                          "class SlotTable {\n"
                          " public:\n"
                          "  bool try_claim(int id);\n"
                          "};\n");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "nodiscard-contract");
  EXPECT_NE(r.findings[0].message.find("try_claim"), std::string::npos);
  // Annotated: clean. Void-returning curated names are out of scope.
  EXPECT_TRUE(lint_one("src/net/src/x.cpp",
                       "class SlotTable {\n"
                       " public:\n"
                       "  [[nodiscard]] bool try_claim(int id);\n"
                       "  void submit(int id);\n"
                       "};\n")
                  .findings.empty());
}

TEST(Nodiscard, DiscardedCallFires) {
  const auto r = lint_one("src/net/src/x.cpp",
                          "struct Q {\n"
                          "  [[nodiscard]] bool try_push(int v);\n"
                          "};\n"
                          "void f(Q& q) {\n"
                          "  q.try_push(1);\n"
                          "}\n");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "nodiscard-contract");
  EXPECT_NE(r.findings[0].message.find("discard"), std::string::npos);
}

TEST(Nodiscard, ConsumedAndVoidCastAreClean) {
  EXPECT_TRUE(lint_one("src/net/src/x.cpp",
                       "struct Q {\n"
                       "  [[nodiscard]] bool try_push(int v);\n"
                       "};\n"
                       "bool f(Q& q) {\n"
                       "  if (q.try_push(1)) return true;\n"
                       "  (void)q.try_push(2);\n"
                       "  return q.try_push(3);\n"
                       "}\n")
                  .findings.empty());
}

TEST(Nodiscard, VoidOverloadSilencesDiscardedCall) {
  // EventQueue::place / EdgeServer::submit pattern: a void-returning
  // overload of a curated name makes expression-statement calls fine.
  const std::vector<std::pair<std::string, std::string>> files = {
      {"src/sim/include/ff/sim/sink.h",
       "#pragma once\n"
       "struct Sink {\n"
       "  void submit(int v);\n"
       "};\n"},
      {"src/sim/src/sink.cpp",
       "#include \"ff/sim/sink.h\"\n"
       "void drive(Sink& s) {\n"
       "  s.submit(1);\n"
       "}\n"},
  };
  EXPECT_TRUE(lint_files(files).findings.empty());
}

TEST(Nodiscard, OutsideScopedDirsIsIgnored) {
  EXPECT_TRUE(lint_one("bench/x.cpp",
                       "struct Q { bool try_push(int v); };\n"
                       "void f(Q& q) { q.try_push(1); }\n")
                  .findings.empty());
}

// ---------------------------------------------------------------------
// Non-vacuity against the real tree: the production sources are clean,
// and removing a single accounted-for line brings exactly one finding.

TEST(RealTree, FingerprintMixIsLoadBearing) {
  const std::string root(FF_LINT_REPO_ROOT);
  const std::string stats_rel =
      "src/device/include/ff/device/offload_client.h";
  const std::string sweep_rel = "src/sweep/src/sweep.cpp";
  const std::string stats = slurp(root + "/" + stats_rel);
  std::string sweep = slurp(root + "/" + sweep_rel);

  EXPECT_TRUE(
      lint_files({{stats_rel, stats}, {sweep_rel, sweep}}).findings.empty());

  const std::string mix = "    f.mix(d.offload.probes_ok);\n";
  const std::size_t pos = sweep.find(mix);
  ASSERT_NE(pos, std::string::npos) << "mix line gone from " << sweep_rel;
  sweep.erase(pos, mix.size());
  const LintResult r =
      lint_files({{stats_rel, stats}, {sweep_rel, sweep}});
  ASSERT_EQ(r.findings.size(), 1u) << r.findings[0].message;
  EXPECT_EQ(r.findings[0].rule, "fingerprint-completeness");
  EXPECT_NE(r.findings[0].message.find("probes_ok"), std::string::npos);
}

TEST(RealTree, NodiscardAnnotationIsLoadBearing) {
  const std::string rel = "src/util/include/ff/util/mpmc_queue.h";
  std::string content = slurp(std::string(FF_LINT_REPO_ROOT) + "/" + rel);

  EXPECT_TRUE(lint_files({{rel, content}}).findings.empty());

  const std::string attr = "[[nodiscard]] ";
  const std::size_t pos = content.find(attr + "bool try_push");
  ASSERT_NE(pos, std::string::npos) << "annotation gone from " << rel;
  content.erase(pos, attr.size());
  const LintResult r = lint_files({{rel, content}});
  ASSERT_EQ(r.findings.size(), 1u) << r.findings[0].message;
  EXPECT_EQ(r.findings[0].rule, "nodiscard-contract");
  EXPECT_NE(r.findings[0].message.find("try_push"), std::string::npos);
}

}  // namespace
}  // namespace ff::lint
