// container-invalidation dataflow tests: reference/pointer/iterator
// bindings into growable containers, mutation taint, the exemptions
// (reserve-preceded growth, deque push stability, rebinding), and the
// scope limits that keep the rule quiet outside src/ and tools/lint/.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "ff/lint/driver.h"

namespace ff::lint {
namespace {

using FileRule = std::pair<std::string, std::string>;

std::set<FileRule> rules_of(const LintResult& r) {
  std::set<FileRule> out;
  for (const Finding& f : r.findings) out.insert({f.file, f.rule});
  return out;
}

LintResult lint_one(const std::string& rel, const std::string& content) {
  return lint_files({{rel, content}});
}

TEST(Dataflow, ReferenceUsedAfterPushBack) {
  const auto r = lint_one("src/core/src/x.cpp",
                          "#include <vector>\n"
                          "int f() {\n"
                          "  std::vector<int> v;\n"
                          "  v.push_back(1);\n"
                          "  const int& tail = v.back();\n"
                          "  v.push_back(2);\n"
                          "  return tail;\n"
                          "}\n");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "container-invalidation");
  EXPECT_NE(r.findings[0].message.find("tail"), std::string::npos);
  EXPECT_NE(r.findings[0].message.find("push_back"), std::string::npos);
}

TEST(Dataflow, PointerAndIteratorBindingsAreTracked) {
  EXPECT_EQ(rules_of(lint_one("src/core/src/x.cpp",
                              "#include <vector>\n"
                              "int f() {\n"
                              "  std::vector<int> v;\n"
                              "  const int* p = v.data();\n"
                              "  v.resize(32);\n"
                              "  return *p;\n"
                              "}\n")),
            (std::set<FileRule>{
                {"src/core/src/x.cpp", "container-invalidation"}}));
  EXPECT_EQ(rules_of(lint_one("src/core/src/y.cpp",
                              "#include <vector>\n"
                              "int g() {\n"
                              "  std::vector<int> v;\n"
                              "  auto it = v.begin();\n"
                              "  v.push_back(1);\n"
                              "  return *it;\n"
                              "}\n")),
            (std::set<FileRule>{
                {"src/core/src/y.cpp", "container-invalidation"}}));
}

TEST(Dataflow, ReserveBeforeBindingExemptsPushGrowth) {
  EXPECT_TRUE(lint_one("src/core/src/x.cpp",
                       "#include <vector>\n"
                       "int f() {\n"
                       "  std::vector<int> v;\n"
                       "  v.reserve(8);\n"
                       "  const int& first = v.front();\n"
                       "  v.push_back(1);\n"
                       "  return first;\n"
                       "}\n")
                  .findings.empty());
  // reserve() after the binding is itself a reallocation hazard.
  EXPECT_FALSE(lint_one("src/core/src/y.cpp",
                        "#include <vector>\n"
                        "int g() {\n"
                        "  std::vector<int> v;\n"
                        "  const int& first = v.front();\n"
                        "  v.reserve(64);\n"
                        "  return first;\n"
                        "}\n")
                   .findings.empty());
}

TEST(Dataflow, DequePushKeepsReferencesButNotIterators) {
  EXPECT_TRUE(lint_one("src/core/src/x.cpp",
                       "#include <deque>\n"
                       "int f() {\n"
                       "  std::deque<int> d;\n"
                       "  d.push_back(1);\n"
                       "  const int& head = d.front();\n"
                       "  d.push_back(2);\n"
                       "  return head;\n"
                       "}\n")
                  .findings.empty());
  EXPECT_FALSE(lint_one("src/core/src/y.cpp",
                        "#include <deque>\n"
                        "int g() {\n"
                        "  std::deque<int> d;\n"
                        "  d.push_back(1);\n"
                        "  auto it = d.begin();\n"
                        "  d.push_back(2);\n"
                        "  return *it;\n"
                        "}\n")
                   .findings.empty());
}

TEST(Dataflow, RetakenBindingAfterMutationIsClean) {
  // Rebinding through assignment clears the taint: this is the repair
  // the finding message recommends.
  EXPECT_TRUE(lint_one("src/core/src/x.cpp",
                       "#include <vector>\n"
                       "int f() {\n"
                       "  std::vector<int> v;\n"
                       "  v.push_back(1);\n"
                       "  const int* p = v.data();\n"
                       "  v.push_back(2);\n"
                       "  p = v.data();\n"
                       "  return *p;\n"
                       "}\n")
                  .findings.empty());
  EXPECT_TRUE(lint_one("src/core/src/y.cpp",
                       "#include <vector>\n"
                       "int g() {\n"
                       "  std::vector<int> v;\n"
                       "  auto it = v.begin();\n"
                       "  v.push_back(1);\n"
                       "  it = v.begin();\n"
                       "  return *it;\n"
                       "}\n")
                  .findings.empty());
}

TEST(Dataflow, LoopThatMutatesThenReindexesIsClean) {
  // Each iteration re-takes the reference after the mutation; no
  // binding is live across a push.
  EXPECT_TRUE(lint_one("src/core/src/x.cpp",
                       "#include <vector>\n"
                       "int f() {\n"
                       "  std::vector<int> v;\n"
                       "  int sum = 0;\n"
                       "  for (int i = 0; i < 4; ++i) {\n"
                       "    v.push_back(i);\n"
                       "    const int& cur = v.back();\n"
                       "    sum += cur;\n"
                       "  }\n"
                       "  return sum + v[0];\n"
                       "}\n")
                  .findings.empty());
}

TEST(Dataflow, MemberContainerMutatedThroughThis) {
  const auto r = lint_one("src/core/src/x.cpp",
                          "#include <vector>\n"
                          "struct Buf {\n"
                          "  int grow();\n"
                          "  std::vector<int> data_;\n"
                          "};\n"
                          "int Buf::grow() {\n"
                          "  data_.push_back(1);\n"
                          "  const int& head = data_.front();\n"
                          "  this->data_.push_back(2);\n"
                          "  return head;\n"
                          "}\n");
  EXPECT_EQ(rules_of(r), (std::set<FileRule>{
                             {"src/core/src/x.cpp",
                              "container-invalidation"}}));
}

TEST(Dataflow, MemberContainerDeclaredInHeader) {
  // The member is declared in the class body in a header; the method in
  // the .cpp sees it through the tree's cross-file declaration index.
  const std::vector<std::pair<std::string, std::string>> files = {
      {"src/core/include/ff/core/buf.h",
       "#pragma once\n#include <vector>\n"
       "struct Buf {\n"
       "  int grow();\n"
       "  std::vector<int> data_;\n"
       "};\n"},
      {"src/core/src/buf.cpp",
       "#include \"ff/core/buf.h\"\n"
       "int Buf::grow() {\n"
       "  const int& head = data_.front();\n"
       "  data_.push_back(2);\n"
       "  return head;\n"
       "}\n"},
  };
  EXPECT_EQ(rules_of(lint_files(files)),
            (std::set<FileRule>{
                {"src/core/src/buf.cpp", "container-invalidation"}}));
}

TEST(Dataflow, LambdaRefCaptureUsedAfterMutation) {
  const auto r = lint_one("src/core/src/x.cpp",
                          "#include <vector>\n"
                          "int f() {\n"
                          "  std::vector<int> v;\n"
                          "  v.push_back(1);\n"
                          "  const int& r = v.front();\n"
                          "  v.push_back(2);\n"
                          "  auto read = [&] { return r; };\n"
                          "  return read();\n"
                          "}\n");
  EXPECT_EQ(rules_of(r), (std::set<FileRule>{
                             {"src/core/src/x.cpp",
                              "container-invalidation"}}));
}

TEST(Dataflow, StringPointerInvalidatedByAppend) {
  EXPECT_EQ(rules_of(lint_one("src/net/src/x.cpp",
                              "#include <string>\n"
                              "char head(std::string s) {\n"
                              "  std::string buf;\n"
                              "  const char* p = buf.c_str();\n"
                              "  buf.append(s);\n"
                              "  return *p;\n"
                              "}\n")),
            (std::set<FileRule>{
                {"src/net/src/x.cpp", "container-invalidation"}}));
}

TEST(Dataflow, AllowDirectiveSuppressesAndStaysLoadBearing) {
  // The directive suppresses the finding -- and because it suppresses
  // something, stale-allow stays quiet too.
  EXPECT_TRUE(lint_one("src/core/src/x.cpp",
                       "#include <vector>\n"
                       "int f() {\n"
                       "  std::vector<int> v;\n"
                       "  v.push_back(1);\n"
                       "  const int& tail = v.back();\n"
                       "  v.push_back(2);\n"
                       "  // ff-lint: allow(container-invalidation)"
                       " capacity pinned by caller\n"
                       "  return tail;\n"
                       "}\n")
                  .findings.empty());
}

TEST(Dataflow, OutsideScopedDirsIsIgnored) {
  EXPECT_TRUE(lint_one("bench/x.cpp",
                       "#include <vector>\n"
                       "int f() {\n"
                       "  std::vector<int> v;\n"
                       "  v.push_back(1);\n"
                       "  const int& tail = v.back();\n"
                       "  v.push_back(2);\n"
                       "  return tail;\n"
                       "}\n")
                  .findings.empty());
}

}  // namespace
}  // namespace ff::lint
