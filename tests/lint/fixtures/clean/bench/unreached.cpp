// Reachability negative: a wall-clock helper that only main() calls.
// main is not a dispatch root, so determinism-reachability stays quiet.
#include <chrono>

double wall_probe() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

int main() { return wall_probe() > 0.0 ? 0 : 1; }
