// Clean container patterns: reserve-preceded growth, deque push
// stability, and references re-taken after the mutation.
#include <deque>
#include <vector>

int stable_sum() {
  std::vector<int> v;
  v.reserve(4);
  v.push_back(1);
  const int& first = v.front();
  v.push_back(2);
  std::deque<int> d;
  d.push_back(3);
  const int& head = d.front();
  d.push_back(4);
  const int& fresh = v.back();
  return first + head + fresh;
}
