// A comment naming std::chrono::steady_clock must not trip the lint,
// and neither may rand() or malloc() mentioned in prose.
#include <new>
#include <unordered_map>
const char* kDoc = "std::rand(), time(NULL) and new Event are banned";
const char* kRaw = R"trap(
  std::chrono::high_resolution_clock::now();
  srand(42); malloc(16);
  for (auto& kv : table_) use(kv);
)trap";
struct Stamp {
  double time;
  explicit Stamp(double t) : time(t) {}
};
std::unordered_map<int, int> table_;
int lookup(int k) { return table_.at(k); }
void* emplace(void* slot) { return ::new (slot) Stamp(0.0); }
