#pragma once
#include <unordered_map>
struct Cache {
  int hit(int key) const;
  std::unordered_map<int, int> entries_;
};
