#include "ff/device/cache.h"
int Cache::hit(int key) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? 0 : it->second;
}
