// Clean nodiscard patterns: annotated declarations, consumed results,
// an explicit (void) discard, and a void-returning overload of a
// curated name.
struct RetryQueue {
  [[nodiscard]] bool try_take(int* out);
};

struct Log {
  void submit(int entry);
};

void pump(RetryQueue& q, Log& log) {
  int v = 0;
  if (q.try_take(&v)) log.submit(v);
  (void)q.try_take(&v);
  log.submit(0);
}
