// Concurrency negatives: a fully annotated mutex-owning class, and the
// same pair of locks always taken in one consistent order.
#include "ff/util/sync.h"
#include "ff/util/thread_annotations.h"

class Tally {
 public:
  void add(int n) {
    ff::MutexLock lock(mutex_);
    total_ += n;
  }

 private:
  ff::Mutex mutex_;
  int total_ FF_GUARDED_BY(mutex_) = 0;
};

namespace {
ff::Mutex g_front;
ff::Mutex g_back;
}  // namespace

void drain() {
  ff::MutexLock a(g_front);
  ff::MutexLock b(g_back);
}

void refill() {
  ff::MutexLock a(g_front);
  ff::MutexLock b(g_back);
}
