#include <chrono>
double pace() {
  // ff-lint: allow(wall-clock) pacing a real-time replay must read the
  // machine clock; simulation results never depend on it.
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
