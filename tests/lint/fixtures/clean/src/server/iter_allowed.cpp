#include <unordered_map>
std::unordered_map<int, int> depths_;
int drain() {
  int total = 0;
  // ff-lint: allow(unordered-iteration) order-insensitive sum; result
  // never feeds the event queue.
  for (const auto& kv : depths_) total += kv.second;
  return total;
}
