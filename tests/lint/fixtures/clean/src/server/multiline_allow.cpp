// Regression for statement-scoped allow(): the suppression comment sits
// mid-statement, below the line the finding would land on.
#include <unordered_map>

struct Flow;

std::unordered_map<
    Flow*,
    // ff-lint: allow(unordered-pointer-key) diagnostics-only index,
    // never iterated.
    int>
    by_ptr_;
