char* grow_chunk() {
  // ff-lint: allow(raw-allocation) slab growth, amortized O(1/512) out
  // of the event hot path.
  return new char[4096];
}
