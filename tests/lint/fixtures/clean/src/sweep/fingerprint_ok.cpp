// Clean fingerprint accounting: every numeric field is either mixed in
// or carries an exemption with a rationale.
#include <cstdint>

struct TelemetryTotals {
  uint64_t frames_offered = 0;
  uint64_t frames_completed = 0;
  // ff-lint: allow(fingerprint-exempt) config echo, not a measurement.
  double slo_threshold = 0.0;
};

uint64_t result_fingerprint(const TelemetryTotals& t) {
  uint64_t h = 0xcbf29ce484222325ull;
  h ^= t.frames_offered;
  h ^= t.frames_completed;
  return h;
}
