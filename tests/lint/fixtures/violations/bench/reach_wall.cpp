// Seeds determinism-reachability: the wall clock hides behind
// FF_FIXTURE_NOW inside a helper that a scheduled lambda calls. bench/
// is outside the determinism directories, so only the call-graph rule
// can reach this.
#include "ff/util/clock_macro.h"

double sample_ms() { return FF_FIXTURE_NOW() / 1e6; }

template <class Sim>
void install_sampler(Sim& sim) {
  sim.schedule_in(500, [&] { sim.record(sample_ms()); });
}
