#pragma once
#include "ff/util/sync.h"
#include "ff/util/thread_annotations.h"

// Seeds annotation-parity: lock() claims FF_ACQUIRE but no method in
// the class ever declares the matching FF_RELEASE.
class Parity {
 public:
  void lock() FF_ACQUIRE(mutex_);

 private:
  ff::Mutex mutex_;
};
