// stale-allow: the directive names a rule that produces no finding on
// this statement, so it suppresses nothing.
int doubled(int x) {
  // ff-lint: allow(wall-clock) measured pacing (long since removed).
  return x * 2;
}
