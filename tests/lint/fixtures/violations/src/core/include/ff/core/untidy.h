#include "../experiment_impl.h"
struct Untidy {};
