// container-invalidation: the reference is bound before the growing
// push_back and used after it, with no reserve() in sight.
#include <vector>

int last_after_grow() {
  std::vector<int> samples;
  samples.push_back(1);
  const int& tail = samples.back();
  samples.push_back(2);
  return tail;
}
