#pragma once
#include <unordered_map>
struct PeerTable {
  double sum() const;
  std::unordered_map<int, double> peers_;
};
