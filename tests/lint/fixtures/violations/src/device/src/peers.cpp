#include "ff/device/peers.h"
double PeerTable::sum() const {
  double total = 0.0;
  for (const auto& kv : peers_) total += kv.second;
  return total;
}
