#include <cstdlib>
#include <random>
int jitter() { return std::rand(); }
unsigned seed() {
  std::random_device rd;
  return rd();
}
