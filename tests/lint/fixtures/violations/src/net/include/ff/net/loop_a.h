#pragma once
#include "ff/net/loop_b.h"
struct LoopA {};
