#pragma once
#include "ff/net/loop_a.h"
struct LoopB {};
