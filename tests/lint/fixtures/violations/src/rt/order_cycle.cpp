// Seeds lock-order: the two paths take the same pair of locks in
// opposite orders (AB here, BA in order_cycle_peer below).
#include "ff/util/sync.h"

namespace {
ff::Mutex g_ingress;
ff::Mutex g_egress;
int g_inflight = 0;
}  // namespace

void admit() {
  ff::MutexLock a(g_ingress);
  ff::MutexLock b(g_egress);
  ++g_inflight;
}

void evict() {
  ff::MutexLock a(g_egress);
  ff::MutexLock b(g_ingress);
  --g_inflight;
}
