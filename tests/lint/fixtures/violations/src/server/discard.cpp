// nodiscard-contract: the try_enqueue result is dropped on the floor in
// expression-statement position.
struct WorkQueue {
  [[nodiscard]] bool try_enqueue(int job);
};

void feed(WorkQueue& q) {
  q.try_enqueue(7);
}
