#include <unordered_map>
struct Flow;
std::unordered_map<
    Flow*,
    int>
    by_flow_;
