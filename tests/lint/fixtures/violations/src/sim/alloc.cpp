struct Event {
  int id;
};
Event* dispatch() { return new Event{7}; }
