#include "ff/util/now_macro.h"
long stamp() { return FF_EPOCH_SECONDS(); }
