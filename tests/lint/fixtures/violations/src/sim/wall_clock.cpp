#include <chrono>
double wall_now() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}
