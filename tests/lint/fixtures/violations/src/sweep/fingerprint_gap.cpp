// fingerprint-completeness: mean_latency_ms is a numeric result field
// but never reaches result_fingerprint (and has no exemption).
#include <cstdint>

struct TelemetryTotals {
  uint64_t frames_offered = 0;
  uint64_t frames_completed = 0;
  double mean_latency_ms = 0.0;
};

uint64_t result_fingerprint(const TelemetryTotals& t) {
  uint64_t h = 0xcbf29ce484222325ull;
  h ^= t.frames_offered;
  h ^= t.frames_completed;
  return h;
}
