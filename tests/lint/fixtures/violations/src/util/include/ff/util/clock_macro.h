#pragma once
#include <chrono>

// Hazardous macro defined in an unlinted module; clean here, but any
// expansion reachable from simulator dispatch must be flagged.
#define FF_FIXTURE_NOW() \
  std::chrono::steady_clock::now().time_since_epoch().count()
