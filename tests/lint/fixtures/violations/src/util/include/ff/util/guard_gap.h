#pragma once
#include <atomic>

#include "ff/util/sync.h"
#include "ff/util/thread_annotations.h"

// Seeds unguarded-shared-state: pending_ sits next to a mutex with no
// FF_GUARDED_BY, while the annotated / atomic / const members are fine.
class GuardGap {
 public:
  void submit(int job);

 private:
  ff::Mutex mutex_;
  int pending_ = 0;
  int done_ FF_GUARDED_BY(mutex_) = 0;
  std::atomic<bool> stopped_{false};
  const int limit_ = 128;
};
