#pragma once
#include <ctime>
#define FF_EPOCH_SECONDS() static_cast<long>(time(nullptr))
