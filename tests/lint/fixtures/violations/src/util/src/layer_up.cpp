#include "ff/sim/simulator.h"
int tick() { return 1; }
