#include "ff/lint/lexer.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace ff::lint {
namespace {

std::vector<std::string> idents(const LexedFile& lf) {
  std::vector<std::string> out;
  for (const Token& t : lf.tokens) {
    if (t.kind == TokKind::kIdentifier) out.push_back(t.text);
  }
  return out;
}

TEST(Lexer, CommentsAreInvisible) {
  const LexedFile lf = lex(
      "// steady_clock here\n"
      "/* and rand() in a block\n"
      "   spanning lines */\n"
      "int x;\n");
  EXPECT_EQ(idents(lf), (std::vector<std::string>{"int", "x"}));
}

TEST(Lexer, StringAndCharLiteralsCollapse) {
  const LexedFile lf = lex(
      "const char* s = \"std::rand() \\\" escaped\";\n"
      "char c = 'r';\n"
      "const wchar_t* w = L\"time(NULL)\";\n");
  for (const Token& t : lf.tokens) {
    EXPECT_NE(t.text, "rand");
    EXPECT_NE(t.text, "time");
  }
}

TEST(Lexer, RawStringsSpanLinesWithoutLeaking) {
  const LexedFile lf = lex(
      "const char* r = R\"doc(\n"
      "  std::chrono::steady_clock::now();\n"
      "  \"inner quote\" and )mismatched(\n"
      ")doc\";\n"
      "int after;\n");
  EXPECT_EQ(idents(lf),
            (std::vector<std::string>{"const", "char", "r", "int", "after"}));
  // The token after the literal carries the physical line it sits on.
  EXPECT_EQ(lf.tokens.back().line, 5);
}

TEST(Lexer, LineSplicesFoldButKeepLineNumbers) {
  const LexedFile lf = lex("int a\\\n  b;\nint c;\n");
  ASSERT_GE(lf.tokens.size(), 4u);
  EXPECT_EQ(lf.tokens[1].text, "a");
  EXPECT_EQ(lf.tokens[2].text, "b");
  EXPECT_EQ(lf.tokens[2].line, 2);
}

TEST(Lexer, IncludeDirectives) {
  const LexedFile lf = lex(
      "#include <chrono>\n"
      "#include \"ff/sim/simulator.h\"\n"
      "// #include \"ff/not/this.h\"\n");
  ASSERT_EQ(lf.includes.size(), 2u);
  EXPECT_TRUE(lf.includes[0].angled);
  EXPECT_EQ(lf.includes[0].path, "chrono");
  EXPECT_FALSE(lf.includes[1].angled);
  EXPECT_EQ(lf.includes[1].path, "ff/sim/simulator.h");
  EXPECT_EQ(lf.includes[1].line, 2);
}

TEST(Lexer, PragmaOnce) {
  EXPECT_TRUE(lex("#pragma once\nint x;\n").pragma_once);
  EXPECT_FALSE(lex("#pragma pack(1)\nint x;\n").pragma_once);
}

TEST(Lexer, ObjectAndFunctionLikeMacros) {
  const LexedFile lf = lex(
      "#define KILO 1000\n"
      "#define SQUARE(x) ((x) * (x))\n"
      "#define NOW() \\\n"
      "  std::chrono::steady_clock::now()\n");
  ASSERT_EQ(lf.macros.size(), 3u);
  EXPECT_EQ(lf.macros[0].name, "KILO");
  EXPECT_FALSE(lf.macros[0].function_like);
  ASSERT_EQ(lf.macros[0].body.size(), 1u);
  EXPECT_EQ(lf.macros[0].body[0].kind, TokKind::kNumber);
  EXPECT_TRUE(lf.macros[1].function_like);
  // Spliced body is lexed: the banned identifier is visible as a token.
  bool found = false;
  for (const Token& t : lf.macros[2].body) found |= t.text == "steady_clock";
  EXPECT_TRUE(found);
  // Directive tokens never leak into the code stream.
  EXPECT_TRUE(lf.tokens.empty());
}

TEST(Lexer, NumbersWithSeparatorsAndExponents) {
  const LexedFile lf = lex("double d = 1'000'000.5e-3 + 0x1Fp+2;\n");
  std::vector<std::string> nums;
  for (const Token& t : lf.tokens) {
    if (t.kind == TokKind::kNumber) nums.push_back(t.text);
  }
  EXPECT_EQ(nums, (std::vector<std::string>{"1000000.5e-3", "0x1Fp+2"}));
}

TEST(Lexer, PunctuationUnits) {
  const LexedFile lf = lex("a->b; std::x; c >> d;\n");
  std::vector<std::string> puncts;
  for (const Token& t : lf.tokens) {
    if (t.kind == TokKind::kPunct) puncts.push_back(t.text);
  }
  // "->" and "::" fuse; ">>" stays two tokens for bracket balancing.
  EXPECT_EQ(puncts, (std::vector<std::string>{"->", ";", "::", ";", ">",
                                              ">", ";"}));
}

}  // namespace
}  // namespace ff::lint
