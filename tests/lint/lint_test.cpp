// ff-lint rule engine tests: in-memory single-rule checks, the on-disk
// fixture corpus under tests/lint/fixtures (driven both through the
// library and by invoking the real CLI binary), and the embedded
// self-test corpus.

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "ff/lint/driver.h"
#include "ff/lint/graph.h"

namespace ff::lint {
namespace {

using FileRule = std::pair<std::string, std::string>;

std::set<FileRule> rules_of(const LintResult& r) {
  std::set<FileRule> out;
  for (const Finding& f : r.findings) out.insert({f.file, f.rule});
  return out;
}

LintResult lint_one(const std::string& rel, const std::string& content) {
  return lint_files({{rel, content}});
}

// ---------------------------------------------------------------------
// Determinism rules, in memory.

TEST(Rules, WallClockInDeterministicDirs) {
  const auto r = lint_one("src/control/src/x.cpp",
                          "auto t = std::chrono::steady_clock::now();\n");
  EXPECT_EQ(rules_of(r),
            (std::set<FileRule>{{"src/control/src/x.cpp", "wall-clock"}}));
  // Same content outside the deterministic directories: clean.
  EXPECT_TRUE(lint_one("src/util/src/x.cpp",
                       "auto t = std::chrono::steady_clock::now();\n")
                  .findings.empty());
}

TEST(Rules, AmbientEntropyMemberCallsExcluded) {
  // rng.rand() is a member call on the seeded generator, not ::rand.
  EXPECT_TRUE(
      lint_one("src/core/src/x.cpp", "int a = rng.rand();\n")
          .findings.empty());
  EXPECT_TRUE(
      lint_one("src/core/src/x.cpp", "int a = my::ns::rand();\n")
          .findings.empty());
  EXPECT_FALSE(
      lint_one("src/core/src/x.cpp", "int a = std::rand();\n")
          .findings.empty());
  EXPECT_FALSE(
      lint_one("src/core/src/x.cpp", "long t = time(nullptr);\n")
          .findings.empty());
  // A member named time is fine.
  EXPECT_TRUE(
      lint_one("src/core/src/x.cpp",
               "struct S { double time; S(double t) : time(t) {} };\n")
          .findings.empty());
}

TEST(Rules, PointerKeyAcrossLinesAndNestedTemplates) {
  const auto r = lint_one("src/net/src/x.cpp",
                          "#include <unordered_map>\n"
                          "std::unordered_map<\n"
                          "    const Flow*,\n"
                          "    std::vector<int>>\n"
                          "    m_;\n");
  EXPECT_EQ(rules_of(r), (std::set<FileRule>{
                             {"src/net/src/x.cpp", "unordered-pointer-key"}}));
  // Pointer in the mapped type (not the key) is fine.
  EXPECT_TRUE(lint_one("src/net/src/x.cpp",
                       "std::unordered_map<int, Flow*> m_;\n")
                  .findings.empty());
}

TEST(Rules, UnorderedIterationSameFileAndAllow) {
  const std::string decl = "std::unordered_map<int, int> q_;\n";
  EXPECT_FALSE(lint_one("src/server/src/x.cpp",
                        decl + "int f() { int s = 0;\n"
                               "for (auto& kv : q_) s += kv.second;\n"
                               "return s; }\n")
                   .findings.empty());
  EXPECT_TRUE(lint_one("src/server/src/x.cpp",
                       decl + "int f() { int s = 0;\n"
                              "// ff-lint: allow(unordered-iteration) sum\n"
                              "for (auto& kv : q_) s += kv.second;\n"
                              "return s; }\n")
                  .findings.empty());
  // Outside the scheduling directories the rule does not apply.
  EXPECT_TRUE(lint_one("src/net/src/x.cpp",
                       decl + "int f() { int s = 0;\n"
                              "for (auto& kv : q_) s += kv.second;\n"
                              "return s; }\n")
                  .findings.empty());
}

TEST(Rules, CrossFileUnorderedIteration) {
  const std::vector<std::pair<std::string, std::string>> files = {
      {"src/device/include/ff/device/t.h",
       "#pragma once\n#include <unordered_map>\n"
       "struct T { int f() const; std::unordered_map<int, int> m_; };\n"},
      {"src/device/src/t.cpp",
       "#include \"ff/device/t.h\"\n"
       "int T::f() const { int s = 0;\n"
       "for (auto& kv : m_) s += kv.second;\n"
       "return s; }\n"},
  };
  EXPECT_EQ(rules_of(lint_files(files)),
            (std::set<FileRule>{
                {"src/device/src/t.cpp", "unordered-iteration"}}));
}

TEST(Rules, MacroExpansionCarriesHazard) {
  const std::vector<std::pair<std::string, std::string>> files = {
      {"src/util/include/ff/util/m.h",
       "#pragma once\n#include <chrono>\n"
       "#define FF_NOW_NS() "
       "std::chrono::steady_clock::now().time_since_epoch().count()\n"},
      {"src/sim/src/u.cpp",
       "#include \"ff/util/m.h\"\nlong f() { return FF_NOW_NS(); }\n"},
  };
  EXPECT_EQ(rules_of(lint_files(files)),
            (std::set<FileRule>{{"src/sim/src/u.cpp", "wall-clock"}}));
}

TEST(Rules, HazardousMacroBodyFlaggedAtDefinition) {
  const auto r = lint_one(
      "src/sim/src/m.cpp",
      "#include <cstdlib>\n#define JITTER() (rand() % 7)\nint x;\n");
  EXPECT_EQ(rules_of(r),
            (std::set<FileRule>{{"src/sim/src/m.cpp", "ambient-entropy"}}));
}

TEST(Rules, RawAllocationOnlyInDispatchDirs) {
  EXPECT_FALSE(
      lint_one("src/sim/src/x.cpp", "int* p = new int[4];\n")
          .findings.empty());
  EXPECT_TRUE(
      lint_one("src/server/src/x.cpp", "int* p = new int[4];\n")
          .findings.empty());
  // Placement new is not an allocation.
  EXPECT_TRUE(
      lint_one("src/sim/src/x.cpp",
               "void* f(void* s) { return ::new (s) int(0); }\n")
          .findings.empty());
}

TEST(Rules, FalsePositiveTraps) {
  // Comments, strings and raw strings full of banned constructs.
  const auto r = lint_one(
      "src/sim/src/x.cpp",
      "// std::chrono::system_clock::now() in prose\n"
      "const char* a = \"rand() time(NULL) malloc(4) new Event\";\n"
      "const char* b = R\"x(\nsteady_clock rand( new Q{}\n)x\";\n");
  EXPECT_TRUE(r.findings.empty()) << r.findings.front().message;
}

TEST(Rules, MultiLineStatementAllowSuppresses) {
  // The allow() sits two lines below the line the finding lands on, but
  // inside the same statement; statement-extent suppression covers it.
  const std::string body =
      "#include <unordered_map>\n"
      "struct Flow;\n"
      "std::unordered_map<\n"
      "    Flow*,\n"
      "    // ff-lint: allow(unordered-pointer-key) diagnostics index\n"
      "    int>\n"
      "    by_ptr_;\n";
  EXPECT_TRUE(lint_one("src/server/src/x.cpp", body).findings.empty());
  // Without the allow, the same statement fires.
  const std::string stripped =
      "#include <unordered_map>\n"
      "struct Flow;\n"
      "std::unordered_map<\n"
      "    Flow*,\n"
      "    int>\n"
      "    by_ptr_;\n";
  EXPECT_EQ(rules_of(lint_one("src/server/src/x.cpp", stripped)),
            (std::set<FileRule>{
                {"src/server/src/x.cpp", "unordered-pointer-key"}}));
}

// ---------------------------------------------------------------------
// Concurrency rules, in memory.

TEST(Concurrency, UnguardedSharedState) {
  const auto r = lint_one("src/util/src/c.cpp",
                          "class Cache {\n"
                          " private:\n"
                          "  ff::Mutex mutex_;\n"
                          "  int hits_;\n"
                          "};\n");
  EXPECT_EQ(rules_of(r), (std::set<FileRule>{
                             {"src/util/src/c.cpp",
                              "unguarded-shared-state"}}));
  // Annotated, atomic, const and allow()ed members are all fine.
  EXPECT_TRUE(
      lint_one("src/util/src/c.cpp",
               "class Cache {\n"
               "  ff::Mutex mutex_;\n"
               "  int hits_ FF_GUARDED_BY(mutex_) = 0;\n"
               "  std::atomic<int> misses_{0};\n"
               "  const int capacity_ = 8;\n"
               "  // ff-lint: allow(unguarded-shared-state) set before\n"
               "  // worker threads start.\n"
               "  int config_;\n"
               "};\n")
          .findings.empty());
  // A class without a mutex member is out of scope entirely.
  EXPECT_TRUE(lint_one("src/util/src/c.cpp",
                       "class Plain { int hits_; };\n")
                  .findings.empty());
}

TEST(Concurrency, LockOrderCycleAcrossFunctions) {
  const auto r = lint_one("src/rt/src/x.cpp",
                          "ff::Mutex g_a;\n"
                          "ff::Mutex g_b;\n"
                          "void f() {\n"
                          "  ff::MutexLock l1(g_a);\n"
                          "  ff::MutexLock l2(g_b);\n"
                          "}\n"
                          "void g() {\n"
                          "  ff::MutexLock l1(g_b);\n"
                          "  ff::MutexLock l2(g_a);\n"
                          "}\n");
  EXPECT_EQ(rules_of(r),
            (std::set<FileRule>{{"src/rt/src/x.cpp", "lock-order"}}));
  // Consistent order: clean.
  EXPECT_TRUE(lint_one("src/rt/src/x.cpp",
                       "ff::Mutex g_a;\n"
                       "ff::Mutex g_b;\n"
                       "void f() {\n"
                       "  ff::MutexLock l1(g_a);\n"
                       "  ff::MutexLock l2(g_b);\n"
                       "}\n"
                       "void g() {\n"
                       "  ff::MutexLock l1(g_a);\n"
                       "  ff::MutexLock l2(g_b);\n"
                       "}\n")
                  .findings.empty());
}

TEST(Concurrency, DeclaredOrderContradictionAndParity) {
  // FF_ACQUIRED_BEFORE edges that contradict each other form a cycle.
  const auto r = lint_one(
      "src/net/src/x.cpp",
      "class Channel {\n"
      "  ff::Mutex send_ FF_ACQUIRED_BEFORE(recv_);\n"
      "  ff::Mutex recv_ FF_ACQUIRED_BEFORE(send_);\n"
      "};\n");
  EXPECT_EQ(rules_of(r),
            (std::set<FileRule>{{"src/net/src/x.cpp", "lock-order"}}));
  // FF_ACQUIRE without FF_RELEASE anywhere in the class.
  const auto p = lint_one("src/net/src/y.cpp",
                          "class Gate {\n"
                          " public:\n"
                          "  void enter() FF_ACQUIRE(mutex_);\n"
                          " private:\n"
                          "  ff::Mutex mutex_;\n"
                          "};\n");
  EXPECT_EQ(rules_of(p),
            (std::set<FileRule>{{"src/net/src/y.cpp",
                                 "annotation-parity"}}));
  // Balanced pair: clean.
  EXPECT_TRUE(lint_one("src/net/src/y.cpp",
                       "class Gate {\n"
                       " public:\n"
                       "  void enter() FF_ACQUIRE(mutex_);\n"
                       "  void leave() FF_RELEASE(mutex_);\n"
                       " private:\n"
                       "  ff::Mutex mutex_;\n"
                       "};\n")
                  .findings.empty());
}

// ---------------------------------------------------------------------
// Call-graph determinism reachability, in memory.

TEST(Reachability, ScheduledLambdaReachesWallClockHelper) {
  // bench/ is outside the determinism dirs; only the call-graph rule
  // connects the scheduled lambda to the wall-clock helper it calls.
  const std::string body =
      "#include <chrono>\n"
      "double now_ms() {\n"
      "  return std::chrono::steady_clock::now()\n"
      "      .time_since_epoch().count() / 1e6;\n"
      "}\n"
      "template <class Sim>\n"
      "void install(Sim& sim) {\n"
      "  sim.schedule_in(1000, [&] { sim.record(now_ms()); });\n"
      "}\n";
  const auto r = lint_one("bench/probe.cpp", body);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "determinism-reachability");
  EXPECT_NE(r.findings[0].message.find("now_ms"), std::string::npos);
  // The same helper called only from main(): not a dispatch root.
  EXPECT_TRUE(lint_one("bench/probe.cpp",
                       "#include <chrono>\n"
                       "double now_ms() {\n"
                       "  return std::chrono::steady_clock::now()\n"
                       "      .time_since_epoch().count() / 1e6;\n"
                       "}\n"
                       "int main() { return now_ms() > 0 ? 0 : 1; }\n")
                  .findings.empty());
}

// ---------------------------------------------------------------------
// Architecture rules, in memory.

TEST(Architecture, LayeringMatrixIsAcyclicAndComplete) {
  const auto& layers = layering();
  for (const auto& [mod, deps] : layers) {
    for (const std::string& dep : deps) {
      ASSERT_TRUE(layers.count(dep) > 0) << mod << " -> " << dep;
      // DAG: a dependency may never (transitively, via the closure
      // property of the matrix) include its dependent.
      EXPECT_EQ(layers.at(dep).count(mod), 0u) << mod << " <-> " << dep;
    }
  }
}

TEST(Architecture, LayeringViolationAndAllow) {
  EXPECT_EQ(
      rules_of(lint_one("src/sim/src/x.cpp",
                        "#include \"ff/core/experiment.h\"\n")),
      (std::set<FileRule>{{"src/sim/src/x.cpp", "layering"}}));
  EXPECT_TRUE(
      lint_one("src/sim/src/x.cpp",
               "// ff-lint: allow(layering) documented bootstrap shim\n"
               "#include \"ff/core/experiment.h\"\n")
          .findings.empty());
}

TEST(Architecture, UnknownModuleIsReported) {
  const auto r = lint_one("src/newmod/src/x.cpp",
                          "#include \"ff/util/rng.h\"\n");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "layering");
}

TEST(Architecture, HeaderHygiene) {
  EXPECT_EQ(rules_of(lint_one("src/net/include/ff/net/h.h",
                              "#pragma once\n#include \"link_impl.h\"\n")),
            (std::set<FileRule>{
                {"src/net/include/ff/net/h.h", "header-hygiene"}}));
  EXPECT_EQ(rules_of(lint_one("src/net/include/ff/net/h.h",
                              "#include <vector>\nstruct H {};\n")),
            (std::set<FileRule>{
                {"src/net/include/ff/net/h.h", "header-hygiene"}}));
  EXPECT_TRUE(lint_one("src/net/include/ff/net/h.h",
                       "#pragma once\n#include <vector>\n"
                       "#include \"ff/util/rng.h\"\nstruct H {};\n")
                  .findings.empty());
}

TEST(Architecture, ThreeHeaderCycleReportedOnce) {
  const std::vector<std::pair<std::string, std::string>> files = {
      {"src/net/include/ff/net/a.h",
       "#pragma once\n#include \"ff/net/b.h\"\n"},
      {"src/net/include/ff/net/b.h",
       "#pragma once\n#include \"ff/net/c.h\"\n"},
      {"src/net/include/ff/net/c.h",
       "#pragma once\n#include \"ff/net/a.h\"\n"},
  };
  const LintResult r = lint_files(files);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "include-cycle");
  EXPECT_NE(r.findings[0].message.find("ff/net/a.h -> ff/net/b.h -> "
                                       "ff/net/c.h -> ff/net/a.h"),
            std::string::npos);
}

// ---------------------------------------------------------------------
// Fixture corpus on disk + the embedded self-test corpus.

TEST(Fixtures, ViolationTreeFindsExactlyTheSeededRules) {
  const LintResult r = lint_tree(std::string(FF_LINT_FIXTURES) +
                                 "/violations");
  const std::set<FileRule> expected = {
      {"bench/reach_wall.cpp", "determinism-reachability"},
      {"src/control/include/ff/control/parity.h", "annotation-parity"},
      {"src/control/stale.cpp", "stale-allow"},
      {"src/core/include/ff/core/untidy.h", "header-hygiene"},
      {"src/core/invalidate.cpp", "container-invalidation"},
      {"src/device/src/peers.cpp", "unordered-iteration"},
      {"src/net/entropy.cpp", "ambient-entropy"},
      {"src/net/include/ff/net/loop_b.h", "include-cycle"},
      {"src/rt/order_cycle.cpp", "lock-order"},
      {"src/server/discard.cpp", "nodiscard-contract"},
      {"src/server/ptr_key.cpp", "unordered-pointer-key"},
      {"src/sim/alloc.cpp", "raw-allocation"},
      {"src/sim/macro_wall.cpp", "ambient-entropy"},
      {"src/sim/wall_clock.cpp", "wall-clock"},
      {"src/sweep/fingerprint_gap.cpp", "fingerprint-completeness"},
      {"src/util/include/ff/util/guard_gap.h", "unguarded-shared-state"},
      {"src/util/src/layer_up.cpp", "layering"},
  };
  EXPECT_EQ(rules_of(r), expected);
}

TEST(Fixtures, CleanTreeIsClean) {
  const LintResult r = lint_tree(std::string(FF_LINT_FIXTURES) + "/clean");
  EXPECT_TRUE(r.findings.empty())
      << r.findings.front().file << ": " << r.findings.front().message;
  EXPECT_EQ(r.files_scanned, 12u);
}

// The annotated production tree is lint-clean, and not vacuously so:
// stripping a single FF_GUARDED_BY from a real header must produce
// exactly one unguarded-shared-state finding.
TEST(Fixtures, RealAnnotationsAreLoadBearing) {
  const std::string path = std::string(FF_LINT_REPO_ROOT) +
                           "/src/util/include/ff/util/mpmc_queue.h";
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string content = ss.str();

  const std::string rel = "src/util/include/ff/util/mpmc_queue.h";
  EXPECT_TRUE(lint_files({{rel, content}}).findings.empty());

  const std::string annotation = " FF_GUARDED_BY(mutex_)";
  const std::size_t pos = content.find(annotation);
  ASSERT_NE(pos, std::string::npos) << "annotation gone from " << path;
  content.erase(pos, annotation.size());
  const LintResult r = lint_files({{rel, content}});
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "unguarded-shared-state");
}

TEST(SelfTest, EmbeddedCorpusPasses) {
  testing::internal::CaptureStdout();
  const int rc = self_test(std::cout);
  const std::string out = testing::internal::GetCapturedStdout();
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("self-test: OK"), std::string::npos);
}

// ---------------------------------------------------------------------
// The CLI binary itself, end to end.

int run_cli(const std::string& args) {
  const std::string cmd =
      std::string(FF_LINT_BIN) + " " + args + " > /dev/null 2>&1";
  const int status = std::system(cmd.c_str());  // NOLINT
  return status < 0 ? status : WEXITSTATUS(status);
}

TEST(Cli, SelfTestExitsZero) { EXPECT_EQ(run_cli("--self-test"), 0); }

TEST(Cli, ViolationFixtureExitsOne) {
  EXPECT_EQ(run_cli("--root " + std::string(FF_LINT_FIXTURES) +
                    "/violations"),
            1);
}

TEST(Cli, CleanFixtureExitsZero) {
  EXPECT_EQ(run_cli("--root " + std::string(FF_LINT_FIXTURES) + "/clean"),
            0);
}

TEST(Cli, MissingTreeExitsTwo) {
  EXPECT_EQ(run_cli("--root /nonexistent-ff-lint-root"), 2);
}

TEST(Cli, JsonOutputListsFindings) {
  const std::string path = testing::TempDir() + "ff_lint_findings.json";
  EXPECT_EQ(run_cli("--root " + std::string(FF_LINT_FIXTURES) +
                    "/violations --json=" + path),
            1);
  std::ifstream in(path);
  ASSERT_TRUE(in) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  EXPECT_NE(json.find("\"findings\":["), std::string::npos);
  EXPECT_NE(json.find("\"rule\":\"lock-order\""), std::string::npos);
  EXPECT_NE(json.find("\"rule\":\"determinism-reachability\""),
            std::string::npos);
  EXPECT_NE(json.find("\"files_scanned\":"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, JsonOutputOnCleanTreeIsEmpty) {
  const std::string path = testing::TempDir() + "ff_lint_clean.json";
  EXPECT_EQ(run_cli("--root " + std::string(FF_LINT_FIXTURES) +
                    "/clean --json=" + path),
            0);
  std::ifstream in(path);
  ASSERT_TRUE(in) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("\"findings\":[]"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, SarifOutputListsRulesAndResults) {
  const std::string path = testing::TempDir() + "ff_lint_findings.sarif";
  EXPECT_EQ(run_cli("--root " + std::string(FF_LINT_FIXTURES) +
                    "/violations --sarif=" + path),
            1);
  std::ifstream in(path);
  ASSERT_TRUE(in) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string sarif = ss.str();
  EXPECT_NE(sarif.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\":\"ff-lint\""), std::string::npos);
  // Rule metadata covers the whole registry, not just fired rules.
  for (const std::string& rule : rule_registry()) {
    EXPECT_NE(sarif.find("{\"id\":\"" + rule + "\"}"), std::string::npos)
        << rule;
  }
  EXPECT_NE(sarif.find("\"ruleId\":\"lock-order\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\":\"container-invalidation\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\"uri\":\"src/core/invalidate.cpp\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\":"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, SarifOutputOnCleanTreeHasNoResults) {
  const std::string path = testing::TempDir() + "ff_lint_clean.sarif";
  EXPECT_EQ(run_cli("--root " + std::string(FF_LINT_FIXTURES) +
                    "/clean --sarif=" + path),
            0);
  std::ifstream in(path);
  ASSERT_TRUE(in) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("\"results\":[]"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, UnknownFlagExitsTwo) { EXPECT_EQ(run_cli("--bogus"), 2); }

}  // namespace
}  // namespace ff::lint
