#include "ff/models/device_profile.h"

#include <gtest/gtest.h>

namespace ff::models {
namespace {

TEST(DeviceProfile, TableIILocalRates) {
  // Paper Table II, verbatim.
  EXPECT_DOUBLE_EQ(
      get_device(DeviceId::kPi3B).local_rate(ModelId::kMobileNetV3Small),
      5.5);
  EXPECT_DOUBLE_EQ(
      get_device(DeviceId::kPi4BR12).local_rate(ModelId::kMobileNetV3Small),
      13.0);
  EXPECT_DOUBLE_EQ(
      get_device(DeviceId::kPi4BR14).local_rate(ModelId::kMobileNetV3Small),
      13.4);
  EXPECT_DOUBLE_EQ(
      get_device(DeviceId::kPi3B).local_rate(ModelId::kEfficientNetB0),
      1.8);
  EXPECT_DOUBLE_EQ(
      get_device(DeviceId::kPi4BR12).local_rate(ModelId::kEfficientNetB0),
      2.5);
  EXPECT_DOUBLE_EQ(
      get_device(DeviceId::kPi4BR14).local_rate(ModelId::kEfficientNetB0),
      4.2);
}

TEST(DeviceProfile, TableIIHardware) {
  const DeviceProfile& pi3 = get_device(DeviceId::kPi3B);
  EXPECT_EQ(pi3.cpus, 4);
  EXPECT_EQ(pi3.clock_mhz, 1200);
  EXPECT_EQ(get_device(DeviceId::kPi4BR12).clock_mhz, 1500);
  EXPECT_EQ(get_device(DeviceId::kPi4BR14).clock_mhz, 1800);
}

TEST(DeviceProfile, AllDevicesBelowSourceFrameRate) {
  // The paper's core assumption: Pl < Fs for every device/model pair.
  for (const auto& d : all_devices()) {
    for (const auto& m : all_models()) {
      EXPECT_LT(d.local_rate(m.id), 30.0)
          << d.name << " / " << m.name;
    }
  }
}

TEST(DeviceProfile, DerivedModelsScaleByRelativeCost) {
  const DeviceProfile& d = get_device(DeviceId::kPi4BR12);
  // MobileNetV3Large derived from Small via relative cost.
  const double large = d.local_rate(ModelId::kMobileNetV3Large);
  EXPECT_LT(large, d.local_rate(ModelId::kMobileNetV3Small));
  EXPECT_GT(large, 0.0);
  // EfficientNetB4 far slower than B0.
  EXPECT_LT(d.local_rate(ModelId::kEfficientNetB4),
            d.local_rate(ModelId::kEfficientNetB0));
}

TEST(DeviceProfile, LatencyIsInverseRate) {
  const DeviceProfile& d = get_device(DeviceId::kPi3B);
  EXPECT_NEAR(d.local_latency_s(ModelId::kMobileNetV3Small), 1.0 / 5.5, 1e-12);
}

TEST(DeviceProfile, ParseRoundTrip) {
  for (const auto& d : all_devices()) {
    EXPECT_EQ(parse_device(d.name), d.id);
  }
  EXPECT_THROW((void)parse_device("jetson"), std::invalid_argument);
}

TEST(DeviceProfile, FasterPiIsFaster) {
  EXPECT_GT(
      get_device(DeviceId::kPi4BR14).local_rate(ModelId::kMobileNetV3Small),
      get_device(DeviceId::kPi3B).local_rate(ModelId::kMobileNetV3Small));
}

TEST(CpuUtilization, PaperEndpoints) {
  // §II-A: 50.2% fully local, 22.3% fully offloading.
  EXPECT_NEAR(device_cpu_utilization(1.0, 0.0), 0.502, 1e-9);
  EXPECT_NEAR(device_cpu_utilization(0.0, 1.0), 0.223, 1e-9);
}

TEST(CpuUtilization, IdleFloor) {
  const double idle = device_cpu_utilization(0.0, 0.0);
  EXPECT_GT(idle, 0.0);
  EXPECT_LT(idle, 0.15);
}

TEST(CpuUtilization, MonotoneInBothInputs) {
  EXPECT_LT(device_cpu_utilization(0.2, 0.0), device_cpu_utilization(0.8, 0.0));
  EXPECT_LT(device_cpu_utilization(0.0, 0.2), device_cpu_utilization(0.0, 0.8));
}

TEST(CpuUtilization, ClampsInputs) {
  EXPECT_DOUBLE_EQ(device_cpu_utilization(5.0, 0.0),
                   device_cpu_utilization(1.0, 0.0));
  EXPECT_DOUBLE_EQ(device_cpu_utilization(-1.0, -1.0),
                   device_cpu_utilization(0.0, 0.0));
}

TEST(CpuUtilization, OffloadingCheaperThanLocal) {
  // The reason offloading helps battery: full offload < full local.
  EXPECT_LT(device_cpu_utilization(0.0, 1.0), device_cpu_utilization(1.0, 0.0));
}

}  // namespace
}  // namespace ff::models
