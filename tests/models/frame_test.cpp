#include "ff/models/frame.h"

#include <gtest/gtest.h>

namespace ff::models {
namespace {

TEST(Frame, BytesGrowWithResolution) {
  FrameSpec small{224, 224, 75};
  FrameSpec big{448, 448, 75};
  EXPECT_GT(frame_bytes(big).count, 3 * frame_bytes(small).count);
}

TEST(Frame, BytesGrowWithQuality) {
  FrameSpec lo{224, 224, 30};
  FrameSpec hi{224, 224, 95};
  EXPECT_GT(frame_bytes(hi).count, frame_bytes(lo).count);
}

TEST(Frame, DefaultSpecMatchesDesignCalibration) {
  // DESIGN.md: default frame ~29 KB so Table V's 4 Mbps phase supports
  // roughly half the 30 fps stream.
  const Bytes b = frame_bytes(FrameSpec{});
  EXPECT_GT(b.count, 24000);
  EXPECT_LT(b.count, 34000);
}

TEST(Frame, Q75At224IsRealisticJpegSize) {
  const Bytes b = frame_bytes(FrameSpec{224, 224, 75});
  // libjpeg-ish: 10-25 KB for photographic 224x224 at q75.
  EXPECT_GT(b.count, 10000);
  EXPECT_LT(b.count, 25000);
}

TEST(Frame, MinimumFrameSizeFloor) {
  EXPECT_GE(frame_bytes(FrameSpec{1, 1, 1}).count, 64);
}

TEST(Frame, BytesPerPixelMonotoneInQuality) {
  double prev = 0.0;
  for (int q = 1; q <= 100; q += 9) {
    const double bpp = jpeg_bytes_per_pixel(q);
    EXPECT_GT(bpp, prev);
    prev = bpp;
  }
}

TEST(Frame, QualityClamped) {
  EXPECT_DOUBLE_EQ(jpeg_bytes_per_pixel(-5), jpeg_bytes_per_pixel(1));
  EXPECT_DOUBLE_EQ(jpeg_bytes_per_pixel(500), jpeg_bytes_per_pixel(100));
}

TEST(Accuracy, NativeResolutionFullQualityIsBase) {
  const ModelSpec& m = get_model(ModelId::kMobileNetV3Small);
  EXPECT_NEAR(effective_accuracy(m, {224, 224, 90}), m.top1_accuracy, 1e-9);
}

TEST(Accuracy, LowResolutionHurts) {
  const ModelSpec& m = get_model(ModelId::kEfficientNetB0);
  EXPECT_LT(effective_accuracy(m, {112, 112, 90}),
            effective_accuracy(m, {224, 224, 90}));
  EXPECT_LT(effective_accuracy(m, {56, 56, 90}),
            effective_accuracy(m, {112, 112, 90}));
}

TEST(Accuracy, HigherThanNativeHelpsSlightly) {
  // §II-D: capturing above native resolution can improve accuracy a bit.
  const ModelSpec& m = get_model(ModelId::kEfficientNetB4);
  const double native = effective_accuracy(m, {380, 380, 90});
  const double above = effective_accuracy(m, {760, 760, 90});
  EXPECT_GT(above, native);
  EXPECT_LT(above, native * 1.05);  // "slightly"
}

TEST(Accuracy, HeavyCompressionHurts) {
  const ModelSpec& m = get_model(ModelId::kMobileNetV3Large);
  EXPECT_LT(effective_accuracy(m, {224, 224, 15}),
            effective_accuracy(m, {224, 224, 80}));
}

TEST(Accuracy, MildCompressionIsFree) {
  const ModelSpec& m = get_model(ModelId::kMobileNetV3Large);
  EXPECT_NEAR(effective_accuracy(m, {224, 224, 70}),
              effective_accuracy(m, {224, 224, 95}), 1e-9);
}

TEST(Accuracy, AlwaysInUnitInterval) {
  for (const auto& m : all_models()) {
    for (int side : {16, 112, 224, 380, 1024}) {
      for (int q : {1, 40, 75, 100}) {
        const double a = effective_accuracy(m, {side, side, q});
        EXPECT_GE(a, 0.0);
        EXPECT_LE(a, 1.0);
      }
    }
  }
}

TEST(EncodeTime, ScalesWithPixels) {
  const SimDuration t224 = encode_time({224, 224, 75});
  const SimDuration t448 = encode_time({448, 448, 75});
  EXPECT_NEAR(static_cast<double>(t448), 4.0 * static_cast<double>(t224),
              static_cast<double>(t224) * 0.01);
  // ~3 ms at 224.
  EXPECT_NEAR(static_cast<double>(t224), 3000.0, 10.0);
}

TEST(ResultPayload, IsSmall) {
  // Results must be far smaller than frames: the asymmetry that makes
  // offloading viable on asymmetric links.
  EXPECT_LT(kResultBytes, frame_bytes(FrameSpec{}).count / 10);
}

}  // namespace
}  // namespace ff::models
