#include "ff/models/latency_model.h"

#include <gtest/gtest.h>

namespace ff::models {
namespace {

TEST(LocalLatencyModel, MeanMatchesTableII) {
  const DeviceProfile& d = get_device(DeviceId::kPi4BR12);
  LocalLatencyModel m(d, ModelId::kMobileNetV3Small, Rng(1));
  // Pl = 13 fps -> ~76923 us per frame.
  EXPECT_NEAR(static_cast<double>(m.mean()), 1e6 / 13.0, 1.0);
  EXPECT_NEAR(m.rate(), 13.0, 0.01);
}

TEST(LocalLatencyModel, SampleMeanConvergesToConfiguredMean) {
  const DeviceProfile& d = get_device(DeviceId::kPi3B);
  LocalLatencyModel m(d, ModelId::kMobileNetV3Small, Rng(2), 0.1);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(m.sample());
  EXPECT_NEAR(sum / n, static_cast<double>(m.mean()),
              0.01 * static_cast<double>(m.mean()));
}

TEST(LocalLatencyModel, ZeroJitterIsDeterministic) {
  const DeviceProfile& d = get_device(DeviceId::kPi4BR14);
  LocalLatencyModel m(d, ModelId::kEfficientNetB0, Rng(3), 0.0);
  const SimDuration first = m.sample();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(m.sample(), first);
  EXPECT_EQ(first, m.mean());
}

TEST(LocalLatencyModel, SamplesArePositive) {
  const DeviceProfile& d = get_device(DeviceId::kPi3B);
  LocalLatencyModel m(d, ModelId::kEfficientNetB4, Rng(4), 0.3);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(m.sample(), 0);
}

TEST(GpuBatchLatencyModel, MeanIsAffineInBatch) {
  GpuBatchLatencyModel m(ModelId::kMobileNetV3Small, Rng(5));
  const auto& spec = m.spec();
  EXPECT_EQ(m.mean(0), seconds_to_sim(spec.batch_base_ms / 1000.0));
  const SimDuration d1 = m.mean(1);
  const SimDuration d2 = m.mean(2);
  const SimDuration d15 = m.mean(15);
  EXPECT_NEAR(static_cast<double>(d2 - d1),
              spec.batch_per_frame_ms * 1000.0, 2.0);
  EXPECT_GT(d15, d2);
}

TEST(GpuBatchLatencyModel, ThroughputImprovesWithBatching) {
  GpuBatchLatencyModel m(ModelId::kEfficientNetB0, Rng(6));
  EXPECT_GT(m.throughput(15), m.throughput(1));
  EXPECT_DOUBLE_EQ(m.throughput(0), 0.0);
}

TEST(GpuBatchLatencyModel, SampleJitterAveragesOut) {
  GpuBatchLatencyModel m(ModelId::kMobileNetV3Small, Rng(7), 0.05);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(m.sample(10));
  EXPECT_NEAR(sum / n, static_cast<double>(m.mean(10)),
              0.01 * static_cast<double>(m.mean(10)));
}

TEST(GpuBatchLatencyModel, GpuFasterThanPiPerFrame) {
  // A full GPU batch must process frames far faster than a Pi: that is why
  // offloading exists.
  GpuBatchLatencyModel gpu(ModelId::kMobileNetV3Small, Rng(8));
  const DeviceProfile& pi = get_device(DeviceId::kPi4BR14);
  EXPECT_GT(gpu.throughput(15),
            pi.local_rate(ModelId::kMobileNetV3Small) * 5);
}

}  // namespace
}  // namespace ff::models
