#include "ff/models/model_spec.h"

#include <gtest/gtest.h>

namespace ff::models {
namespace {

TEST(ModelSpec, TableIIIAccuracies) {
  // Paper Table III, verbatim.
  EXPECT_DOUBLE_EQ(get_model(ModelId::kEfficientNetB0).top1_accuracy, 0.771);
  EXPECT_DOUBLE_EQ(get_model(ModelId::kEfficientNetB4).top1_accuracy, 0.829);
  EXPECT_DOUBLE_EQ(get_model(ModelId::kMobileNetV3Small).top1_accuracy, 0.674);
  EXPECT_DOUBLE_EQ(get_model(ModelId::kMobileNetV3Large).top1_accuracy, 0.752);
}

TEST(ModelSpec, NativeResolutions) {
  // §II-D: all 224 except EfficientNetB4 at 380.
  EXPECT_EQ(get_model(ModelId::kEfficientNetB4).native_resolution, 380);
  EXPECT_EQ(get_model(ModelId::kEfficientNetB0).native_resolution, 224);
  EXPECT_EQ(get_model(ModelId::kMobileNetV3Small).native_resolution, 224);
  EXPECT_EQ(get_model(ModelId::kMobileNetV3Large).native_resolution, 224);
}

TEST(ModelSpec, AllModelsListsFour) {
  EXPECT_EQ(all_models().size(), 4u);
}

TEST(ModelSpec, ParseRoundTrip) {
  for (const auto& m : all_models()) {
    EXPECT_EQ(parse_model(m.name), m.id);
    EXPECT_EQ(model_name(m.id), m.name);
  }
}

TEST(ModelSpec, ParseUnknownThrows) {
  EXPECT_THROW((void)parse_model("resnet50"), std::invalid_argument);
  EXPECT_THROW((void)parse_model(""), std::invalid_argument);
}

TEST(ModelSpec, GpuThroughputGrowsWithBatch) {
  const ModelSpec& m = get_model(ModelId::kMobileNetV3Small);
  const double t1 = gpu_throughput(m, 1);
  const double t8 = gpu_throughput(m, 8);
  const double t15 = gpu_throughput(m, 15);
  EXPECT_GT(t8, t1);
  EXPECT_GT(t15, t8);  // batching amortizes the base cost
}

TEST(ModelSpec, GpuThroughputZeroBatchIsZero) {
  EXPECT_DOUBLE_EQ(gpu_throughput(get_model(ModelId::kEfficientNetB0), 0), 0.0);
}

TEST(ModelSpec, HeavierModelsSlowerOnGpu) {
  // EfficientNetB4 must be slower than B0, which is slower than MNv3-Small.
  const int b = 15;
  EXPECT_LT(gpu_throughput(get_model(ModelId::kEfficientNetB4), b),
            gpu_throughput(get_model(ModelId::kEfficientNetB0), b));
  EXPECT_LT(gpu_throughput(get_model(ModelId::kEfficientNetB0), b),
            gpu_throughput(get_model(ModelId::kMobileNetV3Small), b));
}

TEST(ModelSpec, ServerSaturatesNearPaperTableVI) {
  // DESIGN.md calibration: full-batch MobileNetV3Small throughput must sit
  // in the 140-200 fps band so Table VI's 150 req/s peak saturates the
  // server as in the paper.
  const double cap = gpu_throughput(get_model(ModelId::kMobileNetV3Small), 15);
  EXPECT_GT(cap, 140.0);
  EXPECT_LT(cap, 200.0);
}

}  // namespace
}  // namespace ff::models
