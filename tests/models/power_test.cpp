#include "ff/models/power.h"

#include <gtest/gtest.h>

namespace ff::models {
namespace {

TEST(Power, IdleDrawIsFloor) {
  const PowerProfile p = default_power_profile(DeviceId::kPi4BR12);
  EXPECT_DOUBLE_EQ(power_draw_w(p, 0.0, 0.0, 0.0), p.idle_w);
}

TEST(Power, FullLoadAddsAllComponents) {
  const PowerProfile p = default_power_profile(DeviceId::kPi4BR12);
  EXPECT_DOUBLE_EQ(power_draw_w(p, 1.0, 1.0, 1.0),
                   p.idle_w + p.cpu_full_w + p.radio_tx_w + p.radio_rx_w);
}

TEST(Power, MonotoneInUtilization) {
  const PowerProfile p = default_power_profile(DeviceId::kPi3B);
  EXPECT_LT(power_draw_w(p, 0.2, 0.0, 0.0), power_draw_w(p, 0.8, 0.0, 0.0));
  EXPECT_LT(power_draw_w(p, 0.5, 0.1, 0.0), power_draw_w(p, 0.5, 0.6, 0.0));
}

TEST(Power, InputsClamped) {
  const PowerProfile p = default_power_profile(DeviceId::kPi3B);
  EXPECT_DOUBLE_EQ(power_draw_w(p, 2.0, -1.0, 0.0),
                   power_draw_w(p, 1.0, 0.0, 0.0));
}

TEST(Power, ProfilesDifferByBoard) {
  EXPECT_LT(default_power_profile(DeviceId::kPi3B).idle_w,
            default_power_profile(DeviceId::kPi4BR14).idle_w);
}

TEST(Power, PiClassDrawsAreRealistic) {
  for (const auto id :
       {DeviceId::kPi3B, DeviceId::kPi4BR12, DeviceId::kPi4BR14}) {
    const PowerProfile p = default_power_profile(id);
    const double peak = power_draw_w(p, 1.0, 1.0, 1.0);
    EXPECT_GT(peak, 3.0);
    EXPECT_LT(peak, 10.0);  // a Pi never draws 10 W
  }
}

TEST(EnergyMeter, IntegratesPowerOverTime) {
  EnergyMeter m;
  m.accumulate(2.0, 3 * kSecond);  // 6 J
  m.accumulate(4.0, kSecond);      // 4 J
  EXPECT_DOUBLE_EQ(m.joules(), 10.0);
  EXPECT_EQ(m.measured_time(), 4 * kSecond);
  EXPECT_DOUBLE_EQ(m.mean_power_w(), 2.5);
}

TEST(EnergyMeter, IgnoresNonPositiveDurations) {
  EnergyMeter m;
  m.accumulate(5.0, 0);
  m.accumulate(5.0, -kSecond);
  EXPECT_DOUBLE_EQ(m.joules(), 0.0);
  EXPECT_DOUBLE_EQ(m.mean_power_w(), 0.0);
}

TEST(EnergyMeter, JoulesPerWorkItem) {
  EnergyMeter m;
  m.accumulate(3.0, 10 * kSecond);  // 30 J
  EXPECT_DOUBLE_EQ(m.joules_per(300), 0.1);
  EXPECT_DOUBLE_EQ(m.joules_per(0), 0.0);
}

TEST(EnergyMeter, ResetClears) {
  EnergyMeter m;
  m.accumulate(1.0, kSecond);
  m.reset();
  EXPECT_DOUBLE_EQ(m.joules(), 0.0);
  EXPECT_EQ(m.measured_time(), 0);
}

}  // namespace
}  // namespace ff::models
