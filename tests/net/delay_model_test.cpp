#include "ff/net/delay_model.h"

#include <gtest/gtest.h>

namespace ff::net {
namespace {

TEST(ConstantDelay, AlwaysSameValue) {
  ff::Rng rng(1);
  ConstantDelay d(5 * kMillisecond);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(d.sample(rng), 5 * kMillisecond);
  }
  EXPECT_EQ(d.mean(), 5 * kMillisecond);
}

TEST(ConstantDelay, NegativeClampsToZero) {
  ff::Rng rng(2);
  ConstantDelay d(-100);
  EXPECT_EQ(d.sample(rng), 0);
}

TEST(NormalDelay, MeanMatches) {
  ff::Rng rng(3);
  NormalDelay d(10 * kMillisecond, 2 * kMillisecond);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(d.sample(rng));
  EXPECT_NEAR(sum / n, 10 * kMillisecond, 100.0 /*us*/);
}

TEST(NormalDelay, NeverNegative) {
  ff::Rng rng(4);
  NormalDelay d(1 * kMillisecond, 10 * kMillisecond);  // heavy truncation
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(d.sample(rng), 0);
  }
}

TEST(LogNormalDelay, MedianRoughlyMatches) {
  ff::Rng rng(5);
  LogNormalDelay d(20 * kMillisecond, 0.5);
  int above = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (d.sample(rng) > 20 * kMillisecond) ++above;
  }
  EXPECT_NEAR(static_cast<double>(above) / n, 0.5, 0.02);
}

TEST(LogNormalDelay, MeanAboveMedian) {
  LogNormalDelay d(20 * kMillisecond, 0.7);
  EXPECT_GT(d.mean(), 20 * kMillisecond);
}

TEST(LogNormalDelay, HasHeavyTail) {
  ff::Rng rng(6);
  LogNormalDelay d(10 * kMillisecond, 1.0);
  SimDuration max_seen = 0;
  for (int i = 0; i < 50000; ++i) max_seen = std::max(max_seen, d.sample(rng));
  EXPECT_GT(max_seen, 100 * kMillisecond);  // 10x the median
}

TEST(Factories, ProduceWorkingModels) {
  ff::Rng rng(7);
  EXPECT_EQ(make_constant_delay(42)->sample(rng), 42);
  EXPECT_GE(make_normal_delay(1000, 100)->sample(rng), 0);
  EXPECT_GT(make_lognormal_delay(1000, 0.5)->sample(rng), 0);
}

}  // namespace
}  // namespace ff::net
