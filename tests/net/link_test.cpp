#include "ff/net/link.h"

#include <gtest/gtest.h>

#include <vector>

namespace ff::net {
namespace {

Packet data_packet(std::uint64_t msg, std::uint32_t frag = 0,
                   std::int64_t bytes = 1000, std::uint64_t flow = 0) {
  Packet p;
  p.flow_id = flow;
  p.message_id = msg;
  p.fragment_index = frag;
  p.size = Bytes{bytes};
  return p;
}

LinkConfig fast_link() {
  LinkConfig c;
  c.initial.bandwidth = Bandwidth::mbps(8.0);  // 1 B/us
  c.initial.loss_probability = 0.0;
  c.initial.propagation_delay = kMillisecond;
  return c;
}

TEST(Link, DeliversPacketAfterSerializationAndPropagation) {
  sim::Simulator sim;
  Link link(sim, fast_link());
  std::vector<SimTime> deliveries;
  link.set_receiver([&](const Packet&) { deliveries.push_back(sim.now()); });
  EXPECT_TRUE(link.send(data_packet(1, 0, 1000)));
  sim.run();
  ASSERT_EQ(deliveries.size(), 1u);
  // 1000 B at 1 B/us = 1000 us serialization + 1000 us propagation.
  EXPECT_EQ(deliveries[0], 2000);
}

TEST(Link, SerializesFifoBackToBack) {
  sim::Simulator sim;
  Link link(sim, fast_link());
  std::vector<std::uint64_t> order;
  std::vector<SimTime> times;
  link.set_receiver([&](const Packet& p) {
    order.push_back(p.message_id);
    times.push_back(sim.now());
  });
  (void)link.send(data_packet(1, 0, 1000));
  (void)link.send(data_packet(2, 0, 1000));
  sim.run();
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 2}));
  // Second packet finishes serializing 1000us after the first.
  EXPECT_EQ(times[1] - times[0], 1000);
}

TEST(Link, QueueLimitTailDrops) {
  sim::Simulator sim;
  LinkConfig c = fast_link();
  c.queue_limit = 2;
  Link link(sim, c);
  int delivered = 0;
  link.set_receiver([&](const Packet&) { ++delivered; });
  // First goes into service; next two queue; the rest drop.
  int accepted = 0;
  for (int i = 0; i < 6; ++i) accepted += link.send(data_packet(i)) ? 1 : 0;
  EXPECT_EQ(accepted, 3);
  EXPECT_EQ(link.stats().packets_dropped_queue, 3u);
  sim.run();
  EXPECT_EQ(delivered, 3);
}

TEST(Link, FullLossDeliversNothing) {
  sim::Simulator sim;
  LinkConfig c = fast_link();
  c.initial.loss_probability = 1.0;
  Link link(sim, c);
  int delivered = 0;
  link.set_receiver([&](const Packet&) { ++delivered; });
  for (int i = 0; i < 10; ++i) (void)link.send(data_packet(i));
  sim.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(link.stats().packets_lost, 10u);
}

TEST(Link, LossRateApproximatesConfig) {
  sim::Simulator sim;
  LinkConfig c = fast_link();
  c.initial.loss_probability = 0.07;
  c.queue_limit = 100000;
  Link link(sim, c);
  int delivered = 0;
  link.set_receiver([&](const Packet&) { ++delivered; });
  const int n = 20000;
  for (int i = 0; i < n; ++i) (void)link.send(data_packet(i, 0, 10));
  sim.run();
  EXPECT_NEAR(1.0 - static_cast<double>(delivered) / n, 0.07, 0.01);
}

TEST(Link, BandwidthChangeAffectsSubsequentPackets) {
  sim::Simulator sim;
  Link link(sim, fast_link());
  std::vector<SimTime> times;
  link.set_receiver([&](const Packet&) { times.push_back(sim.now()); });
  (void)link.send(data_packet(1, 0, 1000));
  (void)sim.schedule_at(1500, [&] {
    LinkConditions slow = link.conditions();
    slow.bandwidth = Bandwidth::mbps(0.8);  // 10x slower
    link.set_conditions(slow);
  });
  (void)sim.schedule_at(2000, [&] { (void)link.send(data_packet(2, 0,
                                                                1000)); });
  sim.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], 2000);           // 1000 ser + 1000 prop
  EXPECT_EQ(times[1], 2000 + 10000 + 1000);  // 10000 ser + 1000 prop
}

TEST(Link, ZeroBandwidthStallsUntilRestored) {
  sim::Simulator sim;
  LinkConfig c = fast_link();
  Link link(sim, c);
  int delivered = 0;
  link.set_receiver([&](const Packet&) { ++delivered; });
  LinkConditions stalled = c.initial;
  stalled.bandwidth = Bandwidth{0.0};
  link.set_conditions(stalled);
  (void)link.send(data_packet(1));
  sim.run_until(10 * kSecond);
  EXPECT_EQ(delivered, 0);
}

TEST(Link, PurgeRemovesQueuedMessageFragments) {
  sim::Simulator sim;
  Link link(sim, fast_link());
  int delivered = 0;
  link.set_receiver([&](const Packet&) { ++delivered; });
  (void)link.send(data_packet(1, 0));  // in service
  (void)link.send(data_packet(2, 0));
  (void)link.send(data_packet(2, 1));
  (void)link.send(data_packet(3, 0));
  EXPECT_EQ(link.purge(0, 2), 2u);
  EXPECT_EQ(link.stats().packets_purged, 2u);
  sim.run();
  EXPECT_EQ(delivered, 2);  // messages 1 and 3
}

TEST(Link, PurgeDoesNotTouchInServicePacket) {
  sim::Simulator sim;
  Link link(sim, fast_link());
  int delivered = 0;
  link.set_receiver([&](const Packet&) { ++delivered; });
  (void)link.send(data_packet(7, 0));
  EXPECT_EQ(link.purge(0, 7), 0u);
  sim.run();
  EXPECT_EQ(delivered, 1);
}

TEST(Link, PurgeMatchesFlowAndMessage) {
  sim::Simulator sim;
  Link link(sim, fast_link());
  (void)link.send(data_packet(0, 0));          // in service
  (void)link.send(data_packet(5, 0, 100, 1));  // flow 1
  (void)link.send(data_packet(5, 0, 100, 2));  // flow 2
  EXPECT_EQ(link.purge(1, 5), 1u);
  EXPECT_EQ(link.queue_depth(), 1u);
}

TEST(Link, PurgeUnknownMessageIsCheap) {
  sim::Simulator sim;
  Link link(sim, fast_link());
  (void)link.send(data_packet(1, 0));  // in service
  for (std::uint32_t f = 0; f < 8; ++f) (void)link.send(data_packet(2, f));
  // Neither never-sent nor already-dequeued messages hit the queue scan.
  EXPECT_EQ(link.purge(0, 99), 0u);
  EXPECT_EQ(link.purge(0, 1), 0u);
  EXPECT_EQ(link.queue_depth(), 8u);
  EXPECT_EQ(link.stats().packets_purged, 0u);
}

TEST(Link, PurgeInterleavedMessagesKeepsOthersInOrder) {
  // The Fig. 3 recovery pattern: many messages queued, several purged in
  // deadline order. The purge index must remove exactly the right packets
  // and preserve FIFO order of the survivors.
  sim::Simulator sim;
  Link link(sim, fast_link());
  std::vector<std::uint64_t> delivered;
  link.set_receiver(
      [&](const Packet& p) { delivered.push_back(p.message_id); });
  (void)link.send(data_packet(0, 0));  // in service
  for (std::uint32_t f = 0; f < 3; ++f) {
    (void)link.send(data_packet(10, f));
    (void)link.send(data_packet(11, f));
    (void)link.send(data_packet(12, f));
  }
  EXPECT_EQ(link.purge(0, 11), 3u);
  EXPECT_EQ(link.purge(0, 11), 0u);  // idempotent: index entry is gone
  EXPECT_EQ(link.purge(0, 10), 3u);
  EXPECT_EQ(link.queue_depth(), 3u);
  EXPECT_EQ(link.stats().packets_purged, 6u);
  sim.run();
  EXPECT_EQ(delivered,
            (std::vector<std::uint64_t>{0, 12, 12, 12}));
}

TEST(Link, PurgeThenResendSameMessageWorks) {
  sim::Simulator sim;
  Link link(sim, fast_link());
  std::uint64_t delivered = 0;
  link.set_receiver([&](const Packet&) { ++delivered; });
  (void)link.send(data_packet(1, 0));  // in service
  (void)link.send(data_packet(7, 0));
  EXPECT_EQ(link.purge(0, 7), 1u);
  (void)link.send(data_packet(7, 0));  // retransmission after purge
  EXPECT_EQ(link.purge(0, 7), 1u);
  sim.run();
  EXPECT_EQ(delivered, 1u);  // only the in-service packet survives
}

TEST(Link, StatsTrackDeliveredBytes) {
  sim::Simulator sim;
  Link link(sim, fast_link());
  link.set_receiver([](const Packet&) {});
  (void)link.send(data_packet(1, 0, 500));
  (void)link.send(data_packet(2, 0, 300));
  sim.run();
  EXPECT_EQ(link.stats().packets_delivered, 2u);
  EXPECT_EQ(link.stats().bytes_delivered, 800);
  EXPECT_EQ(link.stats().packets_offered, 2u);
}

TEST(Link, GilbertElliottModelCanBeInstalled) {
  sim::Simulator sim;
  Link link(sim, fast_link());
  link.set_loss_model(make_gilbert_elliott_loss(0.1, 0.1, 1.0, 1.0));
  int delivered = 0;
  link.set_receiver([&](const Packet&) { ++delivered; });
  for (int i = 0; i < 10; ++i) (void)link.send(data_packet(i));
  sim.run();
  EXPECT_EQ(delivered, 0);
}

}  // namespace
}  // namespace ff::net
