#include "ff/net/loss_model.h"

#include <gtest/gtest.h>

namespace ff::net {
namespace {

TEST(BernoulliLoss, ZeroNeverDrops) {
  ff::Rng rng(1);
  BernoulliLoss loss(0.0);
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(loss.drop(rng));
}

TEST(BernoulliLoss, OneAlwaysDrops) {
  ff::Rng rng(2);
  BernoulliLoss loss(1.0);
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(loss.drop(rng));
}

TEST(BernoulliLoss, FrequencyMatchesProbability) {
  ff::Rng rng(3);
  BernoulliLoss loss(0.07);
  int drops = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) drops += loss.drop(rng) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(drops) / n, 0.07, 0.004);
  EXPECT_DOUBLE_EQ(loss.expected_loss(), 0.07);
}

TEST(BernoulliLoss, ClampsOutOfRange) {
  BernoulliLoss hi(1.7), lo(-0.5);
  EXPECT_DOUBLE_EQ(hi.expected_loss(), 1.0);
  EXPECT_DOUBLE_EQ(lo.expected_loss(), 0.0);
}

TEST(BernoulliLoss, SetProbabilityTakesEffect) {
  ff::Rng rng(4);
  BernoulliLoss loss(0.0);
  loss.set_probability(1.0);
  EXPECT_TRUE(loss.drop(rng));
}

TEST(GilbertElliottLoss, ExpectedLossFromStationaryDistribution) {
  // 10% of time in the bad state (p_gb=0.01, p_bg=0.09).
  GilbertElliottLoss loss(0.01, 0.09, 0.0, 0.5);
  EXPECT_NEAR(loss.expected_loss(), 0.05, 1e-12);
}

TEST(GilbertElliottLoss, LongRunFrequencyMatches) {
  ff::Rng rng(5);
  GilbertElliottLoss loss(0.02, 0.1, 0.01, 0.4);
  int drops = 0;
  const int n = 500000;
  for (int i = 0; i < n; ++i) drops += loss.drop(rng) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(drops) / n, loss.expected_loss(), 0.01);
}

TEST(GilbertElliottLoss, ProducesBursts) {
  ff::Rng rng(6);
  // Sticky bad state with certain loss -> long drop runs.
  GilbertElliottLoss loss(0.05, 0.05, 0.0, 1.0);
  int max_run = 0, run = 0;
  for (int i = 0; i < 100000; ++i) {
    if (loss.drop(rng)) {
      ++run;
      max_run = std::max(max_run, run);
    } else {
      run = 0;
    }
  }
  // Mean bad-state dwell is 20 packets; far beyond any Bernoulli(0.5) run.
  EXPECT_GT(max_run, 30);
}

TEST(GilbertElliottLoss, DegenerateNoTransitions) {
  GilbertElliottLoss loss(0.0, 0.0, 0.02, 0.9);
  // Stays in the good state forever.
  EXPECT_DOUBLE_EQ(loss.expected_loss(), 0.02);
  EXPECT_FALSE(loss.in_bad_state());
}

TEST(Factories, ProduceWorkingModels) {
  ff::Rng rng(7);
  auto b = make_bernoulli_loss(1.0);
  EXPECT_TRUE(b->drop(rng));
  auto g = make_gilbert_elliott_loss(0.1, 0.1, 0.0, 1.0);
  EXPECT_NEAR(g->expected_loss(), 0.5, 1e-12);
}

}  // namespace
}  // namespace ff::net
