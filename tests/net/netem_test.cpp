#include "ff/net/netem.h"

#include <gtest/gtest.h>

namespace ff::net {
namespace {

TEST(NetemSchedule, AtReturnsPhaseInForce) {
  NetemSchedule s;
  s.add(0, {Bandwidth::mbps(10), 0.0, 0});
  s.add(30 * kSecond, {Bandwidth::mbps(4), 0.0, 0});
  EXPECT_DOUBLE_EQ(s.at(0).bandwidth.bits_per_second, 10e6);
  EXPECT_DOUBLE_EQ(s.at(29 * kSecond).bandwidth.bits_per_second, 10e6);
  EXPECT_DOUBLE_EQ(s.at(30 * kSecond).bandwidth.bits_per_second, 4e6);
  EXPECT_DOUBLE_EQ(s.at(1000 * kSecond).bandwidth.bits_per_second, 4e6);
}

TEST(NetemSchedule, EmptyReturnsDefaults) {
  const NetemSchedule s;
  EXPECT_DOUBLE_EQ(s.at(0).loss_probability, 0.0);
}

TEST(NetemSchedule, OutOfOrderThrows) {
  NetemSchedule s;
  s.add(10 * kSecond, {});
  EXPECT_THROW(s.add(5 * kSecond, {}), std::invalid_argument);
}

TEST(NetemSchedule, PhaseIndexAt) {
  NetemSchedule s;
  s.add(0, {});
  s.add(10 * kSecond, {});
  s.add(20 * kSecond, {});
  EXPECT_EQ(s.phase_index_at(5 * kSecond), 0u);
  EXPECT_EQ(s.phase_index_at(15 * kSecond), 1u);
  EXPECT_EQ(s.phase_index_at(25 * kSecond), 2u);
}

TEST(NetemSchedule, PaperTableVMatchesPaper) {
  const NetemSchedule s = NetemSchedule::paper_table_v(Bandwidth::mbps(1.0));
  ASSERT_EQ(s.phases().size(), 6u);
  // Table V rows: 0-30:10/0%, 30-45:4/0%, 45-60:1/0%, 60-90:10/0%,
  // 90-105:10/7%, 105+:4/7%.
  EXPECT_DOUBLE_EQ(s.at(10 * kSecond).bandwidth.bits_per_second, 10e6);
  EXPECT_DOUBLE_EQ(s.at(35 * kSecond).bandwidth.bits_per_second, 4e6);
  EXPECT_DOUBLE_EQ(s.at(50 * kSecond).bandwidth.bits_per_second, 1e6);
  EXPECT_DOUBLE_EQ(s.at(70 * kSecond).bandwidth.bits_per_second, 10e6);
  EXPECT_DOUBLE_EQ(s.at(95 * kSecond).loss_probability, 0.07);
  EXPECT_DOUBLE_EQ(s.at(95 * kSecond).bandwidth.bits_per_second, 10e6);
  EXPECT_DOUBLE_EQ(s.at(120 * kSecond).bandwidth.bits_per_second, 4e6);
  EXPECT_DOUBLE_EQ(s.at(120 * kSecond).loss_probability, 0.07);
  EXPECT_DOUBLE_EQ(s.at(20 * kSecond).loss_probability, 0.0);
}

TEST(NetemSchedule, PaperTableVScalesWithUnit) {
  const NetemSchedule s = NetemSchedule::paper_table_v(Bandwidth::kbps(1.0));
  EXPECT_DOUBLE_EQ(s.at(0).bandwidth.bits_per_second, 10e3);
}

TEST(NetemSchedule, LossInjection) {
  const NetemSchedule s =
      NetemSchedule::loss_injection(27 * kSecond, 0.07, Bandwidth::mbps(10));
  EXPECT_DOUBLE_EQ(s.at(26 * kSecond).loss_probability, 0.0);
  EXPECT_DOUBLE_EQ(s.at(27 * kSecond).loss_probability, 0.07);
}

TEST(NetemSchedule, ApplyChangesLinkAtPhaseStart) {
  sim::Simulator sim;
  LinkConfig c;
  c.initial = {Bandwidth::mbps(10), 0.0, 0};
  Link link(sim, c);

  NetemSchedule s;
  s.add(0, {Bandwidth::mbps(10), 0.0, 0});
  s.add(5 * kSecond, {Bandwidth::mbps(1), 0.25, 0});
  s.apply(sim, {&link});

  sim.run_until(4 * kSecond);
  EXPECT_DOUBLE_EQ(link.conditions().loss_probability, 0.0);
  sim.run_until(6 * kSecond);
  EXPECT_DOUBLE_EQ(link.conditions().loss_probability, 0.25);
  EXPECT_DOUBLE_EQ(link.conditions().bandwidth.bits_per_second, 1e6);
}

TEST(NetemSchedule, ApplyReachesAllLinks) {
  sim::Simulator sim;
  LinkConfig c;
  Link a(sim, c), b(sim, c);
  NetemSchedule s;
  s.add(kSecond, {Bandwidth::mbps(2), 0.1, 0});
  s.apply(sim, {&a, &b});
  sim.run_until(2 * kSecond);
  EXPECT_DOUBLE_EQ(a.conditions().loss_probability, 0.1);
  EXPECT_DOUBLE_EQ(b.conditions().loss_probability, 0.1);
}

TEST(NetemSchedule, ConstantSingsPhase) {
  const NetemSchedule s =
      NetemSchedule::constant({Bandwidth::mbps(3), 0.01, kMillisecond});
  ASSERT_EQ(s.phases().size(), 1u);
  EXPECT_DOUBLE_EQ(s.at(99 * kSecond).bandwidth.bits_per_second, 3e6);
}

}  // namespace
}  // namespace ff::net
