#include "ff/net/shared_medium.h"

#include <gtest/gtest.h>

#include "ff/net/link.h"

namespace ff::net {
namespace {

LinkConfig link_1mbps(const std::string& name) {
  LinkConfig c;
  c.name = name;
  c.initial.bandwidth = Bandwidth::mbps(8.0);  // 1 B/us
  c.initial.propagation_delay = 0;
  return c;
}

Packet packet(std::uint64_t msg, std::int64_t bytes = 1000) {
  Packet p;
  p.message_id = msg;
  p.size = Bytes{bytes};
  return p;
}

TEST(SharedMedium, SingleLinkBehavesAsBefore) {
  sim::Simulator sim;
  SharedMedium medium;
  Link link(sim, link_1mbps("a"));
  link.attach_medium(&medium);
  std::vector<SimTime> times;
  link.set_receiver([&](const Packet&) { times.push_back(sim.now()); });
  (void)link.send(packet(1));
  (void)link.send(packet(2));
  sim.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], 1000);
  EXPECT_EQ(times[1], 2000);
  EXPECT_FALSE(medium.busy());
}

TEST(SharedMedium, TwoLinksSerializeAlternately) {
  sim::Simulator sim;
  SharedMedium medium;
  Link a(sim, link_1mbps("a")), b(sim, link_1mbps("b"));
  a.attach_medium(&medium);
  b.attach_medium(&medium);
  std::vector<std::pair<char, SimTime>> deliveries;
  a.set_receiver([&](const Packet&) { deliveries.emplace_back('a',
                                                              sim.now()); });
  b.set_receiver([&](const Packet&) { deliveries.emplace_back('b',
                                                              sim.now()); });
  // Both links loaded with two packets each.
  (void)a.send(packet(1));
  (void)a.send(packet(2));
  (void)b.send(packet(3));
  (void)b.send(packet(4));
  sim.run();
  ASSERT_EQ(deliveries.size(), 4u);
  // Airtime shared: total completion takes 4 x 1000us (vs 2000 if
  // independent), alternating a, b, a, b.
  EXPECT_EQ(deliveries[0].first, 'a');
  EXPECT_EQ(deliveries[1].first, 'b');
  EXPECT_EQ(deliveries[2].first, 'a');
  EXPECT_EQ(deliveries[3].first, 'b');
  EXPECT_EQ(deliveries[3].second, 4000);
}

TEST(SharedMedium, AggregateThroughputIsOneLinkWorth) {
  sim::Simulator sim;
  SharedMedium medium;
  LinkConfig cfg = link_1mbps("x");
  cfg.queue_limit = 10000;  // hold the whole burst; we measure service rate
  Link a(sim, cfg), b(sim, cfg), c(sim, cfg);
  for (Link* l : {&a, &b, &c}) l->attach_medium(&medium);
  int delivered = 0;
  for (Link* l : {&a, &b, &c}) {
    l->set_receiver([&](const Packet&) { ++delivered; });
  }
  // Saturate all three for 1 simulated second.
  for (int i = 0; i < 2000; ++i) {
    (void)a.send(packet(i, 500));
    (void)b.send(packet(i, 500));
    (void)c.send(packet(i, 500));
  }
  sim.run_until(kSecond);
  // One 1 B/us channel serves 2000 x 500 B per second total.
  EXPECT_NEAR(delivered, 2000, 10);
}

TEST(SharedMedium, IdleMediumGrantsImmediately) {
  sim::Simulator sim;
  SharedMedium medium;
  Link a(sim, link_1mbps("a"));
  a.attach_medium(&medium);
  SimTime delivered_at = -1;
  a.set_receiver([&](const Packet&) { delivered_at = sim.now(); });
  (void)a.send(packet(1));
  EXPECT_TRUE(medium.busy());
  sim.run();
  EXPECT_EQ(delivered_at, 1000);  // no contention overhead
}

TEST(SharedMedium, PurgeWhileWaitingReleasesGrant) {
  sim::Simulator sim;
  SharedMedium medium;
  Link a(sim, link_1mbps("a")), b(sim, link_1mbps("b"));
  a.attach_medium(&medium);
  b.attach_medium(&medium);
  int b_delivered = 0;
  a.set_receiver([](const Packet&) {});
  b.set_receiver([&](const Packet&) { ++b_delivered; });
  (void)a.send(packet(1));  // takes the medium
  Packet bp = packet(7);
  bp.flow_id = 0;
  (void)b.send(bp);  // b waits
  // Purge b's packet before its grant arrives.
  EXPECT_EQ(b.purge(0, 7), 1u);
  sim.run();
  EXPECT_EQ(b_delivered, 0);
  EXPECT_FALSE(medium.busy());  // grant chain did not wedge the medium
}

TEST(SharedMedium, GrantsAreCounted) {
  sim::Simulator sim;
  SharedMedium medium;
  Link a(sim, link_1mbps("a"));
  a.attach_medium(&medium);
  a.set_receiver([](const Packet&) {});
  (void)a.send(packet(1));
  (void)a.send(packet(2));
  sim.run();
  EXPECT_EQ(medium.grants(), 2u);
}

TEST(SharedMedium, LinksWithDifferentRatesShareAirtimeNotBytes) {
  sim::Simulator sim;
  SharedMedium medium;
  LinkConfig fast = link_1mbps("fast");
  LinkConfig slow = link_1mbps("slow");
  slow.initial.bandwidth = Bandwidth::mbps(0.8);  // 10x slower PHY
  Link a(sim, fast), b(sim, slow);
  a.attach_medium(&medium);
  b.attach_medium(&medium);
  std::vector<std::pair<char, SimTime>> deliveries;
  a.set_receiver([&](const Packet&) { deliveries.emplace_back('a',
                                                              sim.now()); });
  b.set_receiver([&](const Packet&) { deliveries.emplace_back('b',
                                                              sim.now()); });
  (void)a.send(packet(1));  // 1000 us on air
  (void)b.send(packet(2));  // 10000 us on air
  (void)a.send(packet(3));  // must wait for b's long transmission
  sim.run();
  ASSERT_EQ(deliveries.size(), 3u);
  EXPECT_EQ(deliveries[2].second, 12000);  // 1000 + 10000 + 1000
}

}  // namespace
}  // namespace ff::net
