#include "ff/net/transport.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace ff::net {
namespace {

LinkConfig clean_link(double mbps = 8.0) {
  LinkConfig c;
  c.initial.bandwidth = Bandwidth::mbps(mbps);
  c.initial.loss_probability = 0.0;
  c.initial.propagation_delay = kMillisecond;
  return c;
}

struct Rig {
  sim::Simulator sim{7};
  DuplexPath path;
  std::vector<std::pair<std::uint64_t, Bytes>> delivered;
  std::map<std::uint64_t, bool> send_results;

  explicit Rig(LinkConfig fwd = clean_link(), LinkConfig rev = clean_link(),
               TransportConfig t = {})
      : path(sim, fwd, rev, t) {
    path.uplink().set_on_message([this](std::uint64_t id, Bytes b) {
      delivered.emplace_back(id, b);
    });
    path.uplink().set_on_send_result([this](std::uint64_t id, bool ok) {
      send_results[id] = ok;
    });
  }
};

TEST(ReliableChannel, SingleFragmentDelivery) {
  Rig rig;
  rig.path.uplink().send(1, Bytes{500});
  rig.sim.run_until(kSecond);
  ASSERT_EQ(rig.delivered.size(), 1u);
  EXPECT_EQ(rig.delivered[0].first, 1u);
  EXPECT_EQ(rig.delivered[0].second.count, 500);
  EXPECT_TRUE(rig.send_results.at(1));
  EXPECT_EQ(rig.path.uplink().stats().sends_succeeded, 1u);
}

TEST(ReliableChannel, MultiFragmentReassembly) {
  Rig rig;
  rig.path.uplink().send(2, Bytes{10000});  // 8 fragments at 1400 MTU
  rig.sim.run_until(kSecond);
  ASSERT_EQ(rig.delivered.size(), 1u);
  EXPECT_EQ(rig.delivered[0].second.count, 10000);
  EXPECT_GE(rig.path.uplink().stats().fragments_sent, 8u);
}

TEST(ReliableChannel, PayloadSmallerThanMtuIsOneFragment) {
  TransportConfig t;
  Rig rig(clean_link(), clean_link(), t);
  rig.path.uplink().send(3, Bytes{1});
  rig.sim.run_until(kSecond);
  EXPECT_EQ(rig.path.uplink().stats().fragments_sent, 1u);
}

TEST(ReliableChannel, RetransmitsThroughLoss) {
  LinkConfig lossy = clean_link();
  lossy.initial.loss_probability = 0.3;
  Rig rig(lossy, lossy);
  for (std::uint64_t i = 0; i < 20; ++i) {
    rig.path.uplink().send(i, Bytes{5000});
  }
  rig.sim.run_until(30 * kSecond);
  EXPECT_EQ(rig.delivered.size(), 20u);
  EXPECT_GT(rig.path.uplink().stats().retransmissions, 0u);
  for (std::uint64_t i = 0; i < 20; ++i) EXPECT_TRUE(rig.send_results.at(i));
}

TEST(ReliableChannel, TotalLossExhaustsRetriesAndFails) {
  LinkConfig dead = clean_link();
  dead.initial.loss_probability = 1.0;
  TransportConfig t;
  t.max_retries = 3;
  Rig rig(dead, dead, t);
  rig.path.uplink().send(9, Bytes{100});
  rig.sim.run_until(60 * kSecond);
  EXPECT_TRUE(rig.delivered.empty());
  ASSERT_TRUE(rig.send_results.count(9));
  EXPECT_FALSE(rig.send_results.at(9));
  EXPECT_EQ(rig.path.uplink().stats().sends_failed, 1u);
  EXPECT_FALSE(rig.path.uplink().in_flight(9));
}

TEST(ReliableChannel, CancelStopsRetransmission) {
  LinkConfig dead = clean_link();
  dead.initial.loss_probability = 1.0;
  Rig rig(dead, dead);
  rig.path.uplink().send(4, Bytes{100});
  EXPECT_TRUE(rig.path.uplink().in_flight(4));
  rig.path.uplink().cancel(4);
  EXPECT_FALSE(rig.path.uplink().in_flight(4));
  rig.sim.run_until(10 * kSecond);
  // Neither success nor failure is reported after cancel.
  EXPECT_EQ(rig.send_results.count(4), 0u);
  EXPECT_EQ(rig.path.uplink().stats().sends_cancelled, 1u);
}

TEST(ReliableChannel, ExponentialBackoffSpacesRetries) {
  LinkConfig dead = clean_link();
  dead.initial.loss_probability = 1.0;
  TransportConfig t;
  t.rto = 10 * kMillisecond;
  t.max_retries = 3;
  Rig rig(dead, dead, t);
  rig.path.uplink().send(5, Bytes{100});
  // Attempts at ~0, 10, 30, 70 ms; message fails at ~150 ms
  // (10+20+40+80 RTO chain). It must still be alive at 50 ms:
  rig.sim.run_until(50 * kMillisecond);
  EXPECT_TRUE(rig.path.uplink().in_flight(5));
  rig.sim.run_until(kSecond);
  EXPECT_FALSE(rig.path.uplink().in_flight(5));
  EXPECT_EQ(rig.path.uplink().stats().fragments_sent, 4u);  // 1 + 3 retries
}

TEST(ReliableChannel, DuplicateFragmentsAreCountedNotRedelivered) {
  // Lossy ack path: data arrives, acks die, sender retransmits, receiver
  // must not deliver twice.
  LinkConfig fwd = clean_link();
  LinkConfig rev = clean_link();
  rev.initial.loss_probability = 1.0;
  TransportConfig t;
  t.max_retries = 2;
  Rig rig(fwd, rev, t);
  rig.path.uplink().send(6, Bytes{100});
  rig.sim.run_until(10 * kSecond);
  EXPECT_EQ(rig.delivered.size(), 1u);
  EXPECT_GT(rig.path.uplink().stats().duplicate_fragments, 0u);
  // Sender never saw an ack -> reported failed even though delivered.
  EXPECT_FALSE(rig.send_results.at(6));
}

TEST(ReliableChannel, ManyConcurrentMessagesAllArrive) {
  Rig rig;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    rig.path.uplink().send(static_cast<std::uint64_t>(i), Bytes{3000});
  }
  rig.sim.run_until(60 * kSecond);
  EXPECT_EQ(rig.delivered.size(), static_cast<std::size_t>(n));
}

TEST(DuplexPath, DownlinkIsIndependent) {
  Rig rig;
  std::vector<std::uint64_t> down;
  rig.path.downlink().set_on_message(
      [&](std::uint64_t id, Bytes) { down.push_back(id); });
  rig.path.uplink().send(1, Bytes{1000});
  rig.path.downlink().send(1, Bytes{300});  // same id, different channel
  rig.sim.run_until(kSecond);
  EXPECT_EQ(rig.delivered.size(), 1u);
  EXPECT_EQ(down.size(), 1u);
}

TEST(DuplexPath, SetConditionsHitsBothDirections) {
  Rig rig;
  rig.path.set_conditions({Bandwidth::mbps(1), 0.2, 5 * kMillisecond});
  EXPECT_DOUBLE_EQ(rig.path.forward_link().conditions().loss_probability, 0.2);
  EXPECT_DOUBLE_EQ(rig.path.reverse_link().conditions().loss_probability, 0.2);
}

TEST(DuplexPath, LinksAccessorReturnsBoth) {
  Rig rig;
  EXPECT_EQ(rig.path.links().size(), 2u);
}

TEST(ReliableChannel, BandwidthBoundsThroughput) {
  // 0.8 Mbps = 100 B/us... actually 0.1 B/us: 30 KB message takes ~300 ms
  // of pure serialization, so at most ~3 msgs/s fit.
  Rig rig(clean_link(0.8), clean_link(0.8));
  for (std::uint64_t i = 0; i < 10; ++i) {
    rig.path.uplink().send(i, Bytes{30000});
  }
  rig.sim.run_until(2 * kSecond);
  // ~2s * 0.8 Mbps / (30 KB + overhead) ~= 6 messages, certainly < 10.
  EXPECT_LT(rig.delivered.size(), 9u);
  EXPECT_GE(rig.delivered.size(), 4u);
}

TEST(ReliableChannel, PartialsExpireAfterReassemblyTimeout) {
  // Forward link drops 60%: fragments trickle in; with max_retries=0 many
  // messages stay partial at the receiver and must be expired.
  LinkConfig fwd = clean_link();
  fwd.initial.loss_probability = 0.6;
  TransportConfig t;
  t.max_retries = 0;
  t.reassembly_timeout = kSecond;
  Rig rig(fwd, clean_link(), t);
  for (std::uint64_t i = 0; i < 50; ++i) {
    rig.path.uplink().send(i, Bytes{10000});
  }
  rig.sim.run_until(30 * kSecond);
  // Keep feeding new messages so gc runs.
  for (std::uint64_t i = 50; i < 60; ++i) {
    rig.path.uplink().send(i, Bytes{10000});
  }
  rig.sim.run_until(60 * kSecond);
  EXPECT_GT(rig.path.uplink().stats().partials_expired, 0u);
}

}  // namespace
}  // namespace ff::net
