#include "ff/obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace ff::obs {
namespace {

TEST(MetricsRegistry, CounterAccumulates) {
  MetricsRegistry reg;
  Counter& c = reg.counter("frames");
  c.add();
  c.add(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
  // Same key resolves to the same metric.
  EXPECT_DOUBLE_EQ(reg.counter("frames").value(), 3.5);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistry, LabelsDistinguishMetrics) {
  MetricsRegistry reg;
  reg.counter("frames", {{"device", "pi-1"}}).add(1.0);
  reg.counter("frames", {{"device", "pi-2"}}).add(2.0);
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_DOUBLE_EQ(reg.counter("frames", {{"device", "pi-1"}}).value(), 1.0);
  EXPECT_DOUBLE_EQ(reg.counter("frames", {{"device", "pi-2"}}).value(), 2.0);
}

TEST(MetricsRegistry, ReferencesSurviveGrowth) {
  MetricsRegistry reg;
  Counter& first = reg.counter("first");
  // Force enough growth to reallocate any contiguous storage.
  for (int i = 0; i < 200; ++i) {
    reg.counter("c" + std::to_string(i)).add(1.0);
  }
  first.add(7.0);
  EXPECT_DOUBLE_EQ(reg.counter("first").value(), 7.0);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  MetricsRegistry reg;
  (void)reg.counter("x");
  EXPECT_THROW((void)reg.gauge("x"), std::invalid_argument);
  EXPECT_THROW((void)reg.distribution("x"), std::invalid_argument);
}

TEST(MetricsRegistry, GaugeKeepsLastValue) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("po");
  g.set(3.0);
  g.set(12.5);
  EXPECT_DOUBLE_EQ(g.value(), 12.5);
}

TEST(MetricsRegistry, DistributionSummarizes) {
  MetricsRegistry reg;
  Distribution& d = reg.distribution("latency_us");
  for (int i = 1; i <= 100; ++i) d.observe(static_cast<double>(i));
  EXPECT_EQ(d.count(), 100u);
  EXPECT_DOUBLE_EQ(d.mean(), 50.5);
  EXPECT_DOUBLE_EQ(d.min(), 1.0);
  EXPECT_DOUBLE_EQ(d.max(), 100.0);
  EXPECT_NEAR(d.p50(), 50.0, 5.0);
  EXPECT_NEAR(d.p95(), 95.0, 5.0);
}

TEST(MetricsRegistry, SnapshotPreservesRegistrationOrder) {
  MetricsRegistry reg;
  reg.counter("a").add(1.0);
  reg.gauge("b").set(2.0);
  reg.distribution("c").observe(3.0);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "a");
  EXPECT_EQ(snap[0].kind, MetricKind::kCounter);
  EXPECT_DOUBLE_EQ(snap[0].value, 1.0);
  EXPECT_EQ(snap[1].name, "b");
  EXPECT_EQ(snap[1].kind, MetricKind::kGauge);
  EXPECT_DOUBLE_EQ(snap[1].value, 2.0);
  EXPECT_EQ(snap[2].name, "c");
  EXPECT_EQ(snap[2].kind, MetricKind::kDistribution);
  EXPECT_EQ(snap[2].count, 1u);
}

TEST(MetricsRegistry, WriteJsonEmitsOneDocument) {
  MetricsRegistry reg;
  reg.counter("frames", {{"device", "pi-1"}}).add(42.0);
  reg.gauge("po").set(3.0);
  std::ostringstream os;
  reg.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"metrics\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"frames\""), std::string::npos);
  EXPECT_NE(json.find("\"device\":\"pi-1\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":42"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"gauge\""), std::string::npos);
  // Balanced braces/brackets -- cheap well-formedness check.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(MetricsRegistry, EscapesLabelStrings) {
  MetricsRegistry reg;
  reg.counter("weird", {{"path", "a\"b\\c"}}).add(1.0);
  std::ostringstream os;
  reg.write_json(os);
  EXPECT_NE(os.str().find("a\\\"b\\\\c"), std::string::npos);
}

}  // namespace
}  // namespace ff::obs
