#include "ff/obs/trace.h"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <string>
#include <vector>

namespace ff::obs {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::stringstream ss(text);
  std::string line;
  while (std::getline(ss, line)) out.push_back(line);
  return out;
}

TEST(TraceEvent, BuilderFillsFields) {
  TraceEvent e(kSecond, ev::kFrameCaptured, "pi-1");
  e.with_id(42).with("frag", 3.0).with_detail("model", "mobilenet_v3_small");
  EXPECT_EQ(e.time, kSecond);
  EXPECT_EQ(e.type, ev::kFrameCaptured);
  EXPECT_TRUE(e.has_id);
  EXPECT_EQ(e.id, 42u);
  EXPECT_DOUBLE_EQ(e.field("frag"), 3.0);
  EXPECT_DOUBLE_EQ(e.field("missing", -1.0), -1.0);
  EXPECT_EQ(e.detail_value, "mobilenet_v3_small");
}

TEST(TraceEvent, FieldCapacityIsBounded) {
  TraceEvent e(0, ev::kControlTick, "x");
  for (int i = 0; i < 20; ++i) e.with("k", i);
  EXPECT_EQ(e.field_count, TraceEvent::kMaxFields);
}

TEST(JsonlTraceSink, WritesOneJsonObjectPerEvent) {
  std::ostringstream os;
  JsonlTraceSink sink(os);
  sink.emit(TraceEvent(kSecond / 2, ev::kFrameCaptured, "pi-1").with_id(7));
  sink.emit(TraceEvent(kSecond, ev::kControlTick, "pi-1")
                .with("po", 3.0)
                .with("e", 27.5));
  EXPECT_EQ(sink.events_written(), 2u);

  const auto lines = lines_of(os.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0],
            "{\"t\":0.500000,\"type\":\"frame.captured\",\"src\":\"pi-1\","
            "\"id\":7}");
  EXPECT_EQ(lines[1],
            "{\"t\":1.000000,\"type\":\"ctl.tick\",\"src\":\"pi-1\","
            "\"po\":3,\"e\":27.5}");
}

TEST(JsonlTraceSink, DetailAndNonFiniteValues) {
  std::ostringstream os;
  JsonlTraceSink sink(os);
  sink.emit(TraceEvent(0, ev::kServerBatchStart, "server")
                .with_detail("model", "a\"b")
                .with("bad", std::numeric_limits<double>::infinity()));
  const std::string line = os.str();
  EXPECT_NE(line.find("\"model\":\"a\\\"b\""), std::string::npos);
  EXPECT_NE(line.find("\"bad\":null"), std::string::npos);
}

TEST(FanoutTraceSink, BroadcastsToAllSinks) {
  CollectingTraceSink a, b;
  FanoutTraceSink fan;
  EXPECT_TRUE(fan.empty());
  fan.add(&a);
  fan.add(&b);
  fan.add(nullptr);  // ignored
  EXPECT_FALSE(fan.empty());
  fan.emit(TraceEvent(0, ev::kNetLoss, "link"));
  EXPECT_EQ(a.count(ev::kNetLoss), 1u);
  EXPECT_EQ(b.count(ev::kNetLoss), 1u);
}

TEST(CollectingTraceSink, RetainsAndCounts) {
  CollectingTraceSink sink;
  sink.emit(TraceEvent(1, ev::kFrameCaptured, "d").with_id(1));
  sink.emit(TraceEvent(2, ev::kFrameCaptured, "d").with_id(2));
  sink.emit(TraceEvent(3, ev::kFrameRoutedLocal, "d").with_id(2));
  EXPECT_EQ(sink.events().size(), 3u);
  EXPECT_EQ(sink.count(ev::kFrameCaptured), 2u);
  EXPECT_EQ(sink.count(ev::kServerReject), 0u);
  sink.clear();
  EXPECT_TRUE(sink.events().empty());
}

TEST(NullTraceSink, CountsOnly) {
  NullTraceSink sink;
  sink.emit(TraceEvent(0, ev::kFrameCaptured, "d"));
  EXPECT_EQ(sink.events_seen(), 1u);
}

}  // namespace
}  // namespace ff::obs
