#include "ff/rt/realtime.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "ff/sim/timer.h"

namespace ff::rt {
namespace {

TEST(Realtime, ExecutesAllEventsWithinHorizon) {
  sim::Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    (void)sim.schedule_at(i * kMillisecond, [&] { ++count; });
  }
  RealtimeOptions opt;
  opt.time_scale = 100.0;  // fast
  opt.horizon = kSecond;
  const auto executed = run_realtime(sim, opt);
  EXPECT_EQ(executed, 10u);
  EXPECT_EQ(count, 10);
}

TEST(Realtime, PacesAgainstWallClock) {
  sim::Simulator sim;
  for (int i = 1; i <= 5; ++i) {
    (void)sim.schedule_at(i * 20 * kMillisecond, [] {});
  }
  RealtimeOptions opt;
  opt.time_scale = 1.0;
  opt.horizon = kSecond;
  const auto start = std::chrono::steady_clock::now();
  (void)run_realtime(sim, opt);
  const auto wall =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start).count();
  // 100 ms of sim at 1x must take at least ~80 ms of wall time.
  EXPECT_GE(wall, 80);
}

TEST(Realtime, TimeScaleSpeedsReplay) {
  sim::Simulator sim;
  for (int i = 1; i <= 5; ++i) {
    (void)sim.schedule_at(i * 40 * kMillisecond, [] {});
  }
  RealtimeOptions opt;
  opt.time_scale = 20.0;
  opt.horizon = kSecond;
  const auto start = std::chrono::steady_clock::now();
  (void)run_realtime(sim, opt);
  const auto wall =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start).count();
  // 200 ms sim at 20x ~= 10 ms wall; allow generous slack.
  EXPECT_LT(wall, 150);
}

TEST(Realtime, HorizonStopsExecution) {
  sim::Simulator sim;
  int count = 0;
  sim::PeriodicTimer timer(sim, [&](std::uint64_t) { ++count; });
  timer.start(10 * kMillisecond, 10 * kMillisecond);
  RealtimeOptions opt;
  opt.time_scale = 1000.0;
  opt.horizon = 100 * kMillisecond;
  (void)run_realtime(sim, opt);
  EXPECT_LE(count, 11);
  EXPECT_GE(count, 9);
}

TEST(Realtime, StopFlagAborts) {
  sim::Simulator sim;
  sim::PeriodicTimer timer(sim, [](std::uint64_t) {});
  timer.start(kMillisecond, kMillisecond);
  std::atomic<bool> stop{false};
  std::thread stopper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    stop = true;
  });
  RealtimeOptions opt;
  opt.time_scale = 0.1;  // slow: would run for many wall seconds
  opt.horizon = 10 * kSecond;
  (void)run_realtime(sim, opt, &stop);
  stopper.join();
  EXPECT_LT(sim.now(), 10 * kSecond);
}

TEST(Realtime, ProgressCallbackFires) {
  sim::Simulator sim;
  sim::PeriodicTimer timer(sim, [](std::uint64_t) {});
  timer.start(10 * kMillisecond, 10 * kMillisecond);
  std::vector<SimTime> progress;
  RealtimeOptions opt;
  opt.time_scale = 1000.0;
  opt.horizon = 500 * kMillisecond;
  opt.progress_period = 100 * kMillisecond;
  opt.on_progress = [&](SimTime t) { progress.push_back(t); };
  (void)run_realtime(sim, opt);
  EXPECT_GE(progress.size(), 3u);
  for (std::size_t i = 1; i < progress.size(); ++i) {
    EXPECT_GT(progress[i], progress[i - 1]);
  }
}

TEST(Realtime, EmptyQueueReturnsImmediately) {
  sim::Simulator sim;
  RealtimeOptions opt;
  opt.horizon = 10 * kSecond;
  EXPECT_EQ(run_realtime(sim, opt), 0u);
}

}  // namespace
}  // namespace ff::rt
