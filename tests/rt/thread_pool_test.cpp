#include "ff/rt/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>

namespace ff::rt {
namespace {

TEST(ThreadPool, ExecutesSubmittedTask) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 42; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, RunsManyTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 1000; ++i) {
    futures.push_back(pool.submit([&] { ++count; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, TasksRunConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(pool.submit([&] {
      const int now = ++running;
      int expected = peak.load();
      while (now > expected && !peak.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      --running;
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_GE(peak.load(), 2);
}

TEST(ThreadPool, ExceptionsPropagateThroughFuture) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      (void)pool.submit([&] { ++count; });
    }
  }
  // close() lets queued tasks drain before join.
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, SubmitAcceptsMoveOnlyCallable) {
  // InlineTask tasks carry move-only callables; std::function could not.
  ThreadPool pool(1);
  auto value = std::make_unique<int>(99);
  auto f = pool.submit([v = std::move(value)] { return *v; });
  EXPECT_EQ(f.get(), 99);
}

TEST(DefaultPool, IsProcessWideSingleton) {
  ThreadPool& a = default_pool();
  ThreadPool& b = default_pool();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.thread_count(), 1u);
}

TEST(DefaultPool, RunsSubmittedWork) {
  auto f = default_pool().submit([] { return 3 + 4; });
  EXPECT_EQ(f.get(), 7);
}

TEST(DefaultPool, ShutdownJoinsAndRecreatesOnNextUse) {
  ThreadPool& before = default_pool();
  auto warm = before.submit([] { return 1; });
  EXPECT_EQ(warm.get(), 1);

  shutdown_default_pool();

  // The pool comes back lazily and still runs work.
  auto f = default_pool().submit([] { return 5 * 5; });
  EXPECT_EQ(f.get(), 25);
  shutdown_default_pool();
}

TEST(DefaultPool, ShutdownWithoutPriorUseIsANoop) {
  shutdown_default_pool();
  shutdown_default_pool();  // idempotent
  auto f = default_pool().submit([] { return 7; });
  EXPECT_EQ(f.get(), 7);
  shutdown_default_pool();
}

TEST(DefaultPool, ShutdownDrainsQueuedTasks) {
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(default_pool().submit([&] { ++count; }));
  }
  shutdown_default_pool();  // close() lets queued tasks drain before join
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 200);
}

TEST(ParallelMap, ResultsInOrder) {
  const auto results = parallel_map(20, [](std::size_t i) { return i * i; }, 4);
  ASSERT_EQ(results.size(), 20u);
  for (std::size_t i = 0; i < 20; ++i) EXPECT_EQ(results[i], i * i);
}

TEST(ParallelMap, EmptyInput) {
  const auto results = parallel_map(0, [](std::size_t i) { return i; }, 2);
  EXPECT_TRUE(results.empty());
}

TEST(ParallelMap, WorksWithComplexResults) {
  const auto results = parallel_map(
      5, [](std::size_t i) { return std::string(i + 1, 'x'); }, 2);
  EXPECT_EQ(results[4], "xxxxx");
}

TEST(ParallelMap, ZeroThreadsUsesDefaultPool) {
  const auto results = parallel_map(10, [](std::size_t i) { return i + 1; });
  ASSERT_EQ(results.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(results[i], i + 1);
}

TEST(ParallelMap, ReusesExistingPoolAcrossCalls) {
  // The bench-loop pattern: many sweeps on one pool, no per-call thread
  // spawn.
  ThreadPool pool(2);
  for (int sweep = 0; sweep < 5; ++sweep) {
    const auto results =
        parallel_map(pool, 8, [&](std::size_t i) { return i * (sweep + 1); });
    ASSERT_EQ(results.size(), 8u);
    for (std::size_t i = 0; i < 8; ++i) {
      EXPECT_EQ(results[i], i * static_cast<std::size_t>(sweep + 1));
    }
  }
  EXPECT_EQ(pool.thread_count(), 2u);
}

}  // namespace
}  // namespace ff::rt
