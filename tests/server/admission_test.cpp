#include <gtest/gtest.h>

#include "ff/server/admission.h"

namespace ff::server {
namespace {

AdmissionConfig token_bucket(double rate_fps, double burst) {
  AdmissionConfig c;
  c.policy = AdmissionPolicy::kTokenBucket;
  c.rate_fps = rate_fps;
  c.burst = burst;
  return c;
}

TEST(Admission, NonePolicyAdmitsEverything) {
  AdmissionController a(AdmissionConfig{});
  EXPECT_FALSE(a.enabled());
  EXPECT_TRUE(a.admit(0, 0));
  EXPECT_TRUE(a.admit(0, 1'000'000));
  EXPECT_EQ(a.stats().admitted, 2u);
  EXPECT_EQ(a.stats().rejected, 0u);
}

TEST(Admission, BucketStartsFullAndDrainsOneTokenPerRequest) {
  AdmissionController a(token_bucket(10.0, 3.0));
  EXPECT_TRUE(a.enabled());
  EXPECT_DOUBLE_EQ(a.tokens_at(0), 3.0);
  EXPECT_TRUE(a.admit(0, 0));
  EXPECT_TRUE(a.admit(0, 0));
  EXPECT_TRUE(a.admit(0, 0));
  // Bucket empty: the fourth request at the same instant is turned away.
  EXPECT_FALSE(a.admit(0, 0));
  EXPECT_EQ(a.stats().admitted, 3u);
  EXPECT_EQ(a.stats().rejected, 1u);
}

TEST(Admission, LazyRefillAccruesFractionalTokens) {
  AdmissionController a(token_bucket(10.0, 2.0));
  EXPECT_TRUE(a.admit(0, 0));
  EXPECT_TRUE(a.admit(0, 0));
  // 10 tokens/s: after 50 ms only half a token has accrued.
  EXPECT_DOUBLE_EQ(a.tokens_at(kSecond / 20), 0.5);
  EXPECT_FALSE(a.admit(kSecond / 20, 0));
  // The failed admit still refilled to 0.5; 50 ms later the balance
  // crosses 1.0 and the next request goes through.
  EXPECT_DOUBLE_EQ(a.tokens_at(kSecond / 10), 1.0);
  EXPECT_TRUE(a.admit(kSecond / 10, 0));
}

TEST(Admission, RefillSaturatesAtBurst) {
  AdmissionController a(token_bucket(100.0, 5.0));
  EXPECT_TRUE(a.admit(0, 0));
  // An hour of idle refills to the cap, not beyond it.
  EXPECT_DOUBLE_EQ(a.tokens_at(3600 * kSecond), 5.0);
}

TEST(Admission, RefillIsMonotonicInTime) {
  AdmissionController a(token_bucket(10.0, 2.0));
  EXPECT_TRUE(a.admit(kSecond, 0));
  // Queries earlier than the last refill never un-spend tokens.
  EXPECT_DOUBLE_EQ(a.tokens_at(0), a.tokens_at(kSecond));
}

TEST(Admission, SustainedRateIsBoundedByRefillRate) {
  // Offered 100 req/s against a 20/s bucket for 2 s: everything beyond
  // burst + rate * time must be rejected.
  AdmissionController a(token_bucket(20.0, 10.0));
  std::uint64_t admitted = 0;
  for (int i = 0; i < 200; ++i) {
    if (a.admit(i * (kSecond / 100), 0)) ++admitted;
  }
  EXPECT_LE(admitted, 10u + 40u + 1u);
  EXPECT_GE(admitted, 40u);
  EXPECT_EQ(admitted + a.stats().rejected, 200u);
}

TEST(Admission, QueueDepthGateRejectsWhileBacklogged) {
  AdmissionConfig c;
  c.policy = AdmissionPolicy::kQueueDepth;
  c.max_queue_depth = 4;
  AdmissionController a(c);
  EXPECT_TRUE(a.admit(0, 0));
  EXPECT_TRUE(a.admit(0, 3));
  EXPECT_FALSE(a.admit(0, 4));
  EXPECT_FALSE(a.admit(0, 100));
  // The gate is memoryless: a drained queue admits again immediately.
  EXPECT_TRUE(a.admit(kSecond, 1));
  EXPECT_EQ(a.stats().admitted, 3u);
  EXPECT_EQ(a.stats().rejected, 2u);
}

}  // namespace
}  // namespace ff::server
