#include "ff/server/edge_server.h"

#include <gtest/gtest.h>

#include <vector>

#include "ff/sim/timer.h"

namespace ff::server {
namespace {

InferenceRequest req(
    std::uint64_t id,
    models::ModelId model = models::ModelId::kMobileNetV3Small) {
  InferenceRequest r;
  r.request_id = id;
  r.client_id = 1;
  r.model = model;
  r.payload = Bytes{20000};
  return r;
}

struct Collector {
  std::vector<RequestOutcome> outcomes;

  CompletionFn fn() {
    return [this](const RequestOutcome& o) { outcomes.push_back(o); };
  }

  [[nodiscard]] int completed() const {
    int n = 0;
    for (const auto& o : outcomes) {
      if (o.status == RequestStatus::kCompleted) ++n;
    }
    return n;
  }
  [[nodiscard]] int rejected() const {
    return static_cast<int>(outcomes.size()) - completed();
  }
};

TEST(EdgeServer, SingleRequestCompletes) {
  sim::Simulator sim;
  EdgeServer server(sim, {});
  Collector c;
  server.submit(req(1), c.fn());
  sim.run();
  ASSERT_EQ(c.outcomes.size(), 1u);
  EXPECT_EQ(c.outcomes[0].status, RequestStatus::kCompleted);
  EXPECT_EQ(c.outcomes[0].batch_size, 1);
  EXPECT_GT(c.outcomes[0].finished_at, 0);
}

TEST(EdgeServer, CompletionFiresExactlyOncePerRequest) {
  sim::Simulator sim;
  EdgeServer server(sim, {});
  Collector c;
  for (int i = 0; i < 50; ++i) server.submit(req(i), c.fn());
  sim.run();
  EXPECT_EQ(c.outcomes.size(), 50u);
}

TEST(EdgeServer, ArrivalsDuringBatchFormNextBatch) {
  sim::Simulator sim;
  EdgeServer server(sim, {});
  Collector c;
  server.submit(req(0), c.fn());  // batch 1, size 1
  // These arrive while batch 1 executes.
  (void)sim.schedule_in(kMillisecond, [&] {
    for (int i = 1; i <= 5; ++i) server.submit(req(i), c.fn());
  });
  sim.run();
  ASSERT_EQ(c.outcomes.size(), 6u);
  EXPECT_EQ(c.outcomes[0].batch_size, 1);
  for (int i = 1; i <= 5; ++i) EXPECT_EQ(c.outcomes[i].batch_size, 5);
  EXPECT_EQ(server.stats().batches_executed, 2u);
}

TEST(EdgeServer, BatchLimitCapsBatchAndRejectsRemainder) {
  sim::Simulator sim;
  ServerConfig cfg;
  cfg.batch_limit = 15;
  EdgeServer server(sim, cfg);
  Collector c;
  server.submit(req(0), c.fn());  // occupies the GPU
  (void)sim.schedule_in(kMillisecond, [&] {
    for (int i = 1; i <= 20; ++i) server.submit(req(i), c.fn());
  });
  sim.run();
  // 1 (first batch) + 15 (second batch) complete; 5 rejected.
  EXPECT_EQ(c.completed(), 16);
  EXPECT_EQ(c.rejected(), 5);
  EXPECT_EQ(server.stats().requests_rejected, 5u);
}

TEST(EdgeServer, RejectionDisabledKeepsQueue) {
  sim::Simulator sim;
  ServerConfig cfg;
  cfg.batch_limit = 15;
  cfg.reject_overflow = false;
  EdgeServer server(sim, cfg);
  Collector c;
  server.submit(req(0), c.fn());
  (void)sim.schedule_in(kMillisecond, [&] {
    for (int i = 1; i <= 20; ++i) server.submit(req(i), c.fn());
  });
  sim.run();
  EXPECT_EQ(c.completed(), 21);
  EXPECT_EQ(c.rejected(), 0);
  EXPECT_EQ(server.stats().batches_executed, 3u);  // 1 + 15 + 5
}

TEST(EdgeServer, RejectedOutcomeHasZeroBatch) {
  sim::Simulator sim;
  ServerConfig cfg;
  cfg.batch_limit = 1;
  EdgeServer server(sim, cfg);
  Collector c;
  server.submit(req(0), c.fn());
  (void)sim.schedule_in(kMillisecond, [&] {
    server.submit(req(1), c.fn());
    server.submit(req(2), c.fn());
  });
  sim.run();
  bool saw_rejection = false;
  for (const auto& o : c.outcomes) {
    if (o.status == RequestStatus::kRejected) {
      saw_rejection = true;
      EXPECT_EQ(o.batch_size, 0);
    }
  }
  EXPECT_TRUE(saw_rejection);
}

TEST(EdgeServer, HardQueueLimitRejectsOnArrival) {
  sim::Simulator sim;
  ServerConfig cfg;
  cfg.queue_hard_limit = 3;
  cfg.reject_overflow = false;
  EdgeServer server(sim, cfg);
  Collector c;
  server.submit(req(0), c.fn());  // in service
  for (int i = 1; i <= 5; ++i) server.submit(req(i), c.fn());
  // 3 queued, 2 rejected immediately.
  EXPECT_EQ(c.rejected(), 2);
  sim.run();
  EXPECT_EQ(c.completed(), 4);
}

TEST(EdgeServer, MultiModelRoundRobinAvoidsStarvation) {
  sim::Simulator sim;
  EdgeServer server(sim, {});
  Collector small, b0;
  // Saturate with MobileNet, then slip one EfficientNet in.
  server.submit(req(0, models::ModelId::kMobileNetV3Small), small.fn());
  (void)sim.schedule_in(kMillisecond, [&] {
    for (int i = 1; i <= 10; ++i) {
      server.submit(req(i, models::ModelId::kMobileNetV3Small), small.fn());
    }
    server.submit(req(100, models::ModelId::kEfficientNetB0), b0.fn());
  });
  sim.run();
  EXPECT_EQ(b0.completed(), 1);
  EXPECT_EQ(small.completed(), 11);
  // Batches never mix models.
  EXPECT_EQ(server.stats().batches_executed, 3u);
}

TEST(EdgeServer, ServiceLatencyIncludesQueueing) {
  sim::Simulator sim;
  EdgeServer server(sim, {});
  Collector c;
  server.submit(req(0), c.fn());
  (void)sim.schedule_in(kMillisecond, [&] { server.submit(req(1), c.fn()); });
  sim.run();
  ASSERT_EQ(c.outcomes.size(), 2u);
  // Request 1 waited for batch 0 to finish.
  EXPECT_GT(c.outcomes[1].service_latency(),
            c.outcomes[0].service_latency() / 2);
}

// Regression: queue_for hands out a reference into the queue container, and
// start_batch keeps using it across rejection callbacks. A rejected client
// may react by submitting the first-ever request for a *different* model,
// growing the container mid-loop; when the container was a vector that
// reallocation left start_batch iterating a dangling reference (caught by
// ASan). The container is now a deque, whose references survive growth.
TEST(EdgeServer, RejectionCallbackMayRegisterNewModelMidBatch) {
  sim::Simulator sim;
  ServerConfig cfg;
  cfg.batch_limit = 1;
  EdgeServer server(sim, cfg);
  Collector small, b0;
  server.submit(req(0), small.fn());  // occupies the GPU
  (void)sim.schedule_in(kMillisecond, [&] {
    server.submit(req(1), small.fn());
    // Rejected when the next batch starts; retries on another model whose
    // queue does not exist yet.
    server.submit(req(2), [&](const RequestOutcome& o) {
      if (o.status == RequestStatus::kRejected) {
        server.submit(req(100, models::ModelId::kEfficientNetB0), b0.fn());
      }
    });
    // Still pending behind req 2, so the rejection loop keeps touching the
    // queue after the callback grew the container.
    server.submit(req(3), small.fn());
  });
  sim.run();
  EXPECT_EQ(small.completed(), 2);  // 0 and 1
  EXPECT_EQ(b0.completed(), 1);
  EXPECT_EQ(server.stats().requests_rejected, 2u);  // 2 and 3
  EXPECT_EQ(server.stats().requests_completed, 3u);
}

// Regression: gpu_utilization used to credit a batch's whole execution time
// the moment the batch started, so queries landing mid-batch over-reported
// -- above 1.0 when most of the elapsed run was one in-flight batch.
TEST(EdgeServer, GpuUtilizationProratesInFlightBatch) {
  sim::Simulator sim;
  EdgeServer server(sim, {});
  Collector c;
  server.submit(req(0), c.fn());  // batch starts at t=0, exec ~ several ms
  sim.run_until(kMillisecond);
  ASSERT_TRUE(server.gpu_busy());
  // Mid-batch the GPU has been busy for exactly the elapsed time.
  EXPECT_DOUBLE_EQ(server.gpu_utilization(), 1.0);
}

TEST(EdgeServer, GpuUtilizationFallsWhileIdle) {
  sim::Simulator sim;
  EdgeServer server(sim, {});
  Collector c;
  server.submit(req(0), c.fn());
  sim.run();                       // batch done, GPU idle
  const SimTime done = sim.now();
  sim.run_until(done * 2);         // idle as long as it was busy
  EXPECT_FALSE(server.gpu_busy());
  EXPECT_NEAR(server.gpu_utilization(), 0.5, 0.02);
}

TEST(EdgeServer, GpuUtilizationBetweenZeroAndOne) {
  sim::Simulator sim;
  EdgeServer server(sim, {});
  Collector c;
  for (int i = 0; i < 10; ++i) server.submit(req(i), c.fn());
  sim.run_until(10 * kSecond);
  const double u = server.gpu_utilization();
  EXPECT_GT(u, 0.0);
  EXPECT_LE(u, 1.0);
}

TEST(EdgeServer, QueueDepthPerModel) {
  sim::Simulator sim;
  EdgeServer server(sim, {});
  Collector c;
  server.submit(req(0, models::ModelId::kMobileNetV3Small), c.fn());
  server.submit(req(1, models::ModelId::kMobileNetV3Small), c.fn());
  server.submit(req(2, models::ModelId::kEfficientNetB0), c.fn());
  EXPECT_EQ(server.queue_depth(models::ModelId::kMobileNetV3Small), 1u);
  EXPECT_EQ(server.queue_depth(models::ModelId::kEfficientNetB0), 1u);
  EXPECT_EQ(server.queue_depth(), 2u);
  EXPECT_TRUE(server.gpu_busy());
}

// Parameterized: the adaptive batcher must keep served throughput near the
// offered rate whenever the offered rate is below the full-batch capacity.
class BatcherThroughputSweep : public ::testing::TestWithParam<double> {};

TEST_P(BatcherThroughputSweep, ServesOfferedLoadBelowCapacity) {
  const double rate = GetParam();
  sim::Simulator sim(11);
  EdgeServer server(sim, {});
  Collector c;
  std::uint64_t id = 0;
  sim::PeriodicTimer source(sim, [&](std::uint64_t) {
    server.submit(req(id++), c.fn());
  });
  source.start(static_cast<SimDuration>(kSecond / rate));
  sim.run_until(20 * kSecond);
  const double served =
      static_cast<double>(server.stats().requests_completed) / 20.0;
  EXPECT_NEAR(served, rate, rate * 0.1) << "offered " << rate << "/s";
  EXPECT_EQ(server.stats().requests_rejected, 0u);
}

INSTANTIATE_TEST_SUITE_P(OfferedRates, BatcherThroughputSweep,
                         ::testing::Values(10.0, 40.0, 90.0, 140.0));

TEST(EdgeServer, OverloadRejectsRatherThanQueuesForever) {
  sim::Simulator sim(12);
  EdgeServer server(sim, {});
  Collector c;
  std::uint64_t id = 0;
  sim::PeriodicTimer source(sim, [&](std::uint64_t) {
    server.submit(req(id++), c.fn());
  });
  source.start(kSecond / 300);  // 300/s >> ~162/s capacity
  sim.run_until(20 * kSecond);
  EXPECT_GT(server.stats().requests_rejected, 1000u);
  // Mean batch size pushed to the limit under overload.
  EXPECT_GT(server.stats().mean_batch_size(), 10.0);
  // Completed requests still flowed at roughly capacity.
  const double served =
      static_cast<double>(server.stats().requests_completed) / 20.0;
  EXPECT_GT(served, 120.0);
  EXPECT_LT(served, 200.0);
}

}  // namespace
}  // namespace ff::server
