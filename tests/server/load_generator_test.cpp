#include "ff/server/load_generator.h"

#include <gtest/gtest.h>

namespace ff::server {
namespace {

TEST(LoadSchedule, AtReturnsPhaseRate) {
  LoadSchedule s;
  s.add(0, Rate{0});
  s.add(10 * kSecond, Rate{90});
  s.add(20 * kSecond, Rate{120});
  EXPECT_DOUBLE_EQ(s.at(5 * kSecond).per_second, 0.0);
  EXPECT_DOUBLE_EQ(s.at(10 * kSecond).per_second, 90.0);
  EXPECT_DOUBLE_EQ(s.at(15 * kSecond).per_second, 90.0);
  EXPECT_DOUBLE_EQ(s.at(300 * kSecond).per_second, 120.0);
}

TEST(LoadSchedule, BeforeFirstPhaseIsZero) {
  LoadSchedule s;
  s.add(10 * kSecond, Rate{50});
  EXPECT_DOUBLE_EQ(s.at(0).per_second, 0.0);
}

TEST(LoadSchedule, OutOfOrderThrows) {
  LoadSchedule s;
  s.add(10 * kSecond, Rate{1});
  EXPECT_THROW(s.add(5 * kSecond, Rate{2}), std::invalid_argument);
}

TEST(LoadSchedule, PaperTableVIMatchesPaper) {
  const LoadSchedule s = LoadSchedule::paper_table_vi();
  ASSERT_EQ(s.phases().size(), 9u);
  // Table VI rows.
  EXPECT_DOUBLE_EQ(s.at(5 * kSecond).per_second, 0.0);
  EXPECT_DOUBLE_EQ(s.at(15 * kSecond).per_second, 90.0);
  EXPECT_DOUBLE_EQ(s.at(25 * kSecond).per_second, 120.0);
  EXPECT_DOUBLE_EQ(s.at(40 * kSecond).per_second, 135.0);
  EXPECT_DOUBLE_EQ(s.at(55 * kSecond).per_second, 150.0);
  EXPECT_DOUBLE_EQ(s.at(65 * kSecond).per_second, 130.0);
  EXPECT_DOUBLE_EQ(s.at(80 * kSecond).per_second, 120.0);
  EXPECT_DOUBLE_EQ(s.at(95 * kSecond).per_second, 90.0);
  EXPECT_DOUBLE_EQ(s.at(110 * kSecond).per_second, 0.0);
}

TEST(LoadGenerator, GeneratesAtScheduledRate) {
  sim::Simulator sim(3);
  EdgeServer server(sim, {});
  LoadGenerator gen(sim, server, LoadSchedule::constant(Rate{100}), {});
  gen.start();
  sim.run_until(20 * kSecond);
  // Poisson with mean 2000 arrivals; 3 sigma ~ 134.
  EXPECT_NEAR(static_cast<double>(gen.requests_sent()), 2000.0, 150.0);
}

TEST(LoadGenerator, DeterministicModeExactRate) {
  sim::Simulator sim(4);
  EdgeServer server(sim, {});
  LoadGeneratorConfig cfg;
  cfg.poisson = false;
  LoadGenerator gen(sim, server, LoadSchedule::constant(Rate{50}), cfg);
  gen.start();
  sim.run_until(10 * kSecond);
  EXPECT_NEAR(static_cast<double>(gen.requests_sent()), 500.0, 2.0);
}

TEST(LoadGenerator, ZeroPhaseGeneratesNothing) {
  sim::Simulator sim(5);
  EdgeServer server(sim, {});
  LoadSchedule s;
  s.add(0, Rate{0});
  s.add(5 * kSecond, Rate{100});
  LoadGenerator gen(sim, server, s, {});
  gen.start();
  sim.run_until(5 * kSecond);
  EXPECT_EQ(gen.requests_sent(), 0u);
  sim.run_until(10 * kSecond);
  EXPECT_GT(gen.requests_sent(), 300u);
}

TEST(LoadGenerator, RampDownStopsGenerating) {
  sim::Simulator sim(6);
  EdgeServer server(sim, {});
  LoadSchedule s;
  s.add(0, Rate{100});
  s.add(5 * kSecond, Rate{0});
  LoadGenerator gen(sim, server, s, {});
  gen.start();
  sim.run_until(5 * kSecond);
  const std::uint64_t at_ramp = gen.requests_sent();
  sim.run_until(20 * kSecond);
  // At most one in-flight arrival slips past the boundary.
  EXPECT_LE(gen.requests_sent(), at_ramp + 1);
}

TEST(LoadGenerator, TracksCompletionsAndRejections) {
  sim::Simulator sim(7);
  EdgeServer server(sim, {});
  LoadSchedule schedule;
  schedule.add(0, Rate{300});
  schedule.add(10 * kSecond, Rate{0});  // stop so the sim can drain
  LoadGenerator gen(sim, server, schedule, {});
  gen.start();
  sim.run_until(15 * kSecond);
  EXPECT_GT(gen.requests_completed(), 0u);
  EXPECT_GT(gen.requests_rejected(), 0u);  // 300/s over capacity
  EXPECT_EQ(gen.requests_completed() + gen.requests_rejected(),
            gen.requests_sent());
}

TEST(LoadGenerator, StartIsIdempotent) {
  sim::Simulator sim(8);
  EdgeServer server(sim, {});
  LoadGeneratorConfig cfg;
  cfg.poisson = false;
  LoadGenerator gen(sim, server, LoadSchedule::constant(Rate{10}), cfg);
  gen.start();
  gen.start();
  gen.start();
  sim.run_until(10 * kSecond);
  EXPECT_NEAR(static_cast<double>(gen.requests_sent()), 100.0, 2.0);
}

TEST(LoadGenerator, CurrentRateFollowsSchedule) {
  sim::Simulator sim(9);
  EdgeServer server(sim, {});
  LoadSchedule s;
  s.add(0, Rate{10});
  s.add(5 * kSecond, Rate{70});
  LoadGenerator gen(sim, server, s, {});
  EXPECT_DOUBLE_EQ(gen.current_rate().per_second, 10.0);
  sim.run_until(6 * kSecond);
  EXPECT_DOUBLE_EQ(gen.current_rate().per_second, 70.0);
}

}  // namespace
}  // namespace ff::server
