#include "ff/server/reservation.h"

#include <gtest/gtest.h>

#include "ff/control/reservation_controller.h"

namespace ff::server {
namespace {

TEST(Reservation, SingleClientGetsDemandUpToCapacity) {
  ReservationManager mgr({100.0, 1.0});
  EXPECT_DOUBLE_EQ(mgr.request(1, 30.0), 30.0);
  EXPECT_DOUBLE_EQ(mgr.request(1, 300.0), 100.0);
}

TEST(Reservation, SafetyFactorReducesGrantable) {
  ReservationManager mgr({100.0, 0.9});
  EXPECT_DOUBLE_EQ(mgr.request(1, 300.0), 90.0);
}

TEST(Reservation, EqualSplitWhenOversubscribed) {
  ReservationManager mgr({90.0, 1.0});
  (void)mgr.request(1, 100.0);
  (void)mgr.request(2, 100.0);
  (void)mgr.request(3, 100.0);
  EXPECT_DOUBLE_EQ(mgr.granted(1), 30.0);
  EXPECT_DOUBLE_EQ(mgr.granted(2), 30.0);
  EXPECT_DOUBLE_EQ(mgr.granted(3), 30.0);
  EXPECT_DOUBLE_EQ(mgr.total_granted(), 90.0);
}

TEST(Reservation, WaterFillingFavorsSmallDemands) {
  ReservationManager mgr({90.0, 1.0});
  (void)mgr.request(1, 10.0);   // small demand fully satisfied
  (void)mgr.request(2, 100.0);  // big demands split the rest
  (void)mgr.request(3, 100.0);
  EXPECT_DOUBLE_EQ(mgr.granted(1), 10.0);
  EXPECT_DOUBLE_EQ(mgr.granted(2), 40.0);
  EXPECT_DOUBLE_EQ(mgr.granted(3), 40.0);
}

TEST(Reservation, ReleaseRedistributes) {
  ReservationManager mgr({90.0, 1.0});
  (void)mgr.request(1, 100.0);
  (void)mgr.request(2, 100.0);
  EXPECT_DOUBLE_EQ(mgr.granted(1), 45.0);
  mgr.release(2);
  // Client 1's grant is recomputed on the next interaction.
  EXPECT_DOUBLE_EQ(mgr.request(1, 100.0), 90.0);
  EXPECT_EQ(mgr.client_count(), 1u);
}

TEST(Reservation, UnknownClientHasZeroGrant) {
  ReservationManager mgr({100.0, 1.0});
  EXPECT_DOUBLE_EQ(mgr.granted(42), 0.0);
}

TEST(Reservation, NegativeDemandClampedToZero) {
  ReservationManager mgr({100.0, 1.0});
  EXPECT_DOUBLE_EQ(mgr.request(1, -5.0), 0.0);
}

TEST(Reservation, TotalNeverExceedsCapacity) {
  ReservationManager mgr({100.0, 0.9});
  for (std::uint64_t i = 0; i < 20; ++i) {
    (void)mgr.request(i, 30.0);
  }
  EXPECT_LE(mgr.total_granted(), 90.0 + 1e-9);
}

TEST(ReservationController, GrantsBecomeOffloadRate) {
  ReservationManager mgr({45.0, 1.0});
  control::ReservationController a(mgr, 1);
  control::ReservationController b(mgr, 2);
  control::ControllerInput in;
  in.source_fps = 30.0;
  EXPECT_DOUBLE_EQ(a.update(in), 30.0);  // alone: full demand
  // Second client joins: both re-request and split 45.
  (void)b.update(in);
  EXPECT_DOUBLE_EQ(a.update(in), 22.5);
  EXPECT_DOUBLE_EQ(b.update(in), 22.5);
}

TEST(ReservationController, IgnoresTimeouts) {
  ReservationManager mgr({200.0, 1.0});
  control::ReservationController ctl(mgr, 1);
  control::ControllerInput in;
  in.source_fps = 30.0;
  in.timeout_rate = 30.0;  // catastrophic -- and ignored by design
  EXPECT_DOUBLE_EQ(ctl.update(in), 30.0);
}

TEST(ReservationController, DestructionReleasesShare) {
  ReservationManager mgr({60.0, 1.0});
  control::ControllerInput in;
  in.source_fps = 30.0;
  control::ReservationController a(mgr, 1);
  {
    control::ReservationController b(mgr, 2);
    (void)a.update(in);
    (void)b.update(in);
    EXPECT_DOUBLE_EQ(mgr.granted(1), 30.0);
  }
  EXPECT_EQ(mgr.client_count(), 1u);
  EXPECT_DOUBLE_EQ(a.update(in), 30.0);
}

TEST(ReservationController, Name) {
  ReservationManager mgr({100.0, 1.0});
  control::ReservationController ctl(mgr, 1);
  EXPECT_EQ(ctl.name(), "reservation");
  EXPECT_FALSE(ctl.wants_probe());
}

}  // namespace
}  // namespace ff::server
