// Pins the kernel's zero-allocation contract: after warm-up (heap vector
// and slab grown to working size), a steady-state schedule/execute/cancel
// loop must not touch the global heap. Counts via replaced global operator
// new/delete, gated by a flag so the rest of this binary is unaffected.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "ff/sim/simulator.h"
#include "ff/sim/timer.h"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
std::atomic<bool> g_tracking{false};

void* counted_alloc(std::size_t size) {
  if (g_tracking.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size > 0 ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  if (g_tracking.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = nullptr;
  if (posix_memalign(&p, align, size > 0 ? size : align) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace ff::sim {
namespace {

class TrackingScope {
 public:
  TrackingScope() {
    g_allocations.store(0);
    g_tracking.store(true);
  }
  ~TrackingScope() { g_tracking.store(false); }

  [[nodiscard]] static std::uint64_t count() { return g_allocations.load(); }
};

TEST(Allocation, SteadyStateScheduleExecuteCancelIsAllocationFree) {
  constexpr int kBatch = 512;
  Simulator sim;
  std::uint64_t executed = 0;
  std::vector<EventId> ids;
  ids.reserve(kBatch);

  const auto churn = [&] {
    // The transport RTO pattern: schedule a wave, cancel half, run the rest.
    ids.clear();
    for (int i = 0; i < kBatch; ++i) {
      ids.push_back(sim.schedule_in(10 + i, [&executed] { ++executed; }));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) {
      (void)sim.cancel(ids[i]);
    }
    (void)sim.run();
  };

  churn();  // warm-up: grows the heap vector, the slab and the free list

  {
    TrackingScope tracking;
    for (int round = 0; round < 8; ++round) churn();
    EXPECT_EQ(TrackingScope::count(), 0u);
  }
  EXPECT_EQ(executed, 9u * kBatch / 2);
}

TEST(Allocation, SelfReschedulingEventChainIsAllocationFree) {
  Simulator sim;
  std::uint64_t count = 0;
  // Non-capturing struct instead of std::function: re-scheduling copies it
  // into a fresh InlineTask each event.
  struct Chain {
    Simulator* sim;
    std::uint64_t* count;
    std::uint64_t limit;
    void operator()() const {
      if (++*count < limit) (void)sim->schedule_in(10, *this);
    }
  };
  (void)sim.schedule_in(10, Chain{&sim, &count, 100});
  (void)sim.run();  // warm-up

  count = 0;
  {
    TrackingScope tracking;
    (void)sim.schedule_in(10, Chain{&sim, &count, 10'000});
    (void)sim.run();
    EXPECT_EQ(TrackingScope::count(), 0u);
  }
  EXPECT_EQ(count, 10'000u);
}

TEST(Allocation, TimerRearmChurnIsAllocationFree) {
  Simulator sim;
  OneShotTimer rto(sim);
  std::uint64_t fired = 0;

  const auto churn = [&] {
    for (int i = 0; i < 256; ++i) {
      rto.arm(100, [&fired] { ++fired; });
      if (i % 2 == 0) rto.cancel();
      (void)sim.run();
    }
  };

  churn();  // warm-up
  {
    TrackingScope tracking;
    churn();
    EXPECT_EQ(TrackingScope::count(), 0u);
  }
  EXPECT_EQ(fired, 2u * 128);
}

}  // namespace
}  // namespace ff::sim
