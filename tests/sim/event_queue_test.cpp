#include "ff/sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

#include "ff/util/rng.h"

namespace ff::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  (void)q.schedule(30, [&] { order.push_back(3); });
  (void)q.schedule(10, [&] { order.push_back(1); });
  (void)q.schedule(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    (void)q.schedule(100, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().action();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, NextTimeReportsEarliest) {
  EventQueue q;
  (void)q.schedule(50, [] {});
  (void)q.schedule(20, [] {});
  EXPECT_EQ(q.next_time(), 20);
}

TEST(EventQueue, CancelRemovesEvent) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.schedule(10, [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const EventId id = q.schedule(10, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelExecutedEventFails) {
  EventQueue q;
  const EventId id = q.schedule(10, [] {});
  (void)q.pop();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelUnknownIdFails) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(EventId{}));
  EXPECT_FALSE(q.cancel(EventId{9999}));
}

TEST(EventQueue, CancelMiddleKeepsOthers) {
  EventQueue q;
  std::vector<int> order;
  (void)q.schedule(10, [&] { order.push_back(1); });
  const EventId id = q.schedule(20, [&] { order.push_back(2); });
  (void)q.schedule(30, [&] { order.push_back(3); });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, CancelFrontUpdatesNextTime) {
  EventQueue q;
  const EventId front = q.schedule(10, [] {});
  (void)q.schedule(20, [] {});
  EXPECT_TRUE(q.cancel(front));
  EXPECT_EQ(q.next_time(), 20);
}

TEST(EventQueue, StaleIdAfterSlotReuseDoesNotCancelNewEvent) {
  EventQueue q;
  const EventId a = q.schedule(10, [] {});
  (void)q.pop();  // a's slab slot is recycled for the next event
  bool ran = false;
  const EventId b = q.schedule(20, [&] { ran = true; });
  EXPECT_NE(a, b);  // sequence tag differs even though the slot repeats
  EXPECT_FALSE(q.cancel(a));
  EXPECT_EQ(q.size(), 1u);
  q.pop().action();
  EXPECT_TRUE(ran);
}

TEST(EventQueue, ClearInvalidatesOutstandingIds) {
  EventQueue q;
  const EventId id = q.schedule(10, [] {});
  q.clear();
  EXPECT_FALSE(q.cancel(id));
  bool ran = false;
  (void)q.schedule(5, [&] { ran = true; });
  EXPECT_EQ(q.size(), 1u);
  q.pop().action();
  EXPECT_TRUE(ran);
}

TEST(EventQueue, ClearDropsAll) {
  EventQueue q;
  (void)q.schedule(1, [] {});
  (void)q.schedule(2, [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, StressRandomScheduleAndCancel) {
  ff::Rng rng(77);
  EventQueue q;
  std::vector<EventId> ids;
  int executed = 0;
  for (int i = 0; i < 5000; ++i) {
    ids.push_back(q.schedule(rng.uniform_int(0, 1000), [&] { ++executed; }));
  }
  int cancelled = 0;
  for (std::size_t i = 0; i < ids.size(); i += 3) {
    if (q.cancel(ids[i])) ++cancelled;
  }
  SimTime last = -1;
  while (!q.empty()) {
    Event e = q.pop();
    EXPECT_GE(e.time, last);
    last = e.time;
    e.action();
  }
  EXPECT_EQ(executed + cancelled, 5000);
}

}  // namespace
}  // namespace ff::sim
