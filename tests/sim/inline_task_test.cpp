#include "ff/sim/inline_task.h"

#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <memory>
#include <utility>

namespace ff::sim {
namespace {

TEST(InlineTask, DefaultConstructedIsEmpty) {
  InlineTask t;
  EXPECT_FALSE(static_cast<bool>(t));
}

TEST(InlineTask, InvokesSmallLambda) {
  int calls = 0;
  InlineTask t([&] { ++calls; });
  ASSERT_TRUE(static_cast<bool>(t));
  t();
  t();
  EXPECT_EQ(calls, 2);
}

TEST(InlineTask, AcceptsMoveOnlyCallable) {
  auto value = std::make_unique<int>(7);
  int seen = 0;
  InlineTask t([v = std::move(value), &seen] { seen = *v; });
  t();
  EXPECT_EQ(seen, 7);
}

TEST(InlineTask, MoveTransfersCallableAndEmptiesSource) {
  int calls = 0;
  InlineTask a([&] { ++calls; });
  InlineTask b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(calls, 1);
}

TEST(InlineTask, MoveAssignmentDestroysPreviousCallable) {
  auto tracker = std::make_shared<int>(0);
  InlineTask a([tracker] { (void)tracker; });
  EXPECT_EQ(tracker.use_count(), 2);
  a = InlineTask([] {});
  EXPECT_EQ(tracker.use_count(), 1);  // old capture released
}

TEST(InlineTask, ResetReleasesCaptures) {
  auto tracker = std::make_shared<int>(0);
  InlineTask t([tracker] { (void)tracker; });
  EXPECT_EQ(tracker.use_count(), 2);
  t.reset();
  EXPECT_FALSE(static_cast<bool>(t));
  EXPECT_EQ(tracker.use_count(), 1);
}

TEST(InlineTask, DestructorReleasesCaptures) {
  auto tracker = std::make_shared<int>(0);
  {
    InlineTask t([tracker] { (void)tracker; });
    EXPECT_EQ(tracker.use_count(), 2);
  }
  EXPECT_EQ(tracker.use_count(), 1);
}

TEST(InlineTask, OversizedCaptureFallsBackToHeapAndWorks) {
  std::array<std::uint64_t, 32> big{};  // 256 bytes, > kInlineCapacity
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = i;
  std::uint64_t sum = 0;
  InlineTask t([big, &sum] {
    for (const auto v : big) sum += v;
  });
  InlineTask moved(std::move(t));
  moved();
  EXPECT_EQ(sum, 31u * 32u / 2u);
}

TEST(InlineTask, OversizedCaptureReleasedOnDestruction) {
  auto tracker = std::make_shared<int>(0);
  {
    std::array<std::uint64_t, 32> big{};
    InlineTask t([tracker, big] { (void)big; });
    EXPECT_EQ(tracker.use_count(), 2);
    InlineTask moved(std::move(t));
    EXPECT_EQ(tracker.use_count(), 2);
  }
  EXPECT_EQ(tracker.use_count(), 1);
}

TEST(InlineTask, SelfMoveAssignmentIsSafe) {
  int calls = 0;
  InlineTask t([&] { ++calls; });
  InlineTask& alias = t;
  t = std::move(alias);
  ASSERT_TRUE(static_cast<bool>(t));
  t();
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace ff::sim
