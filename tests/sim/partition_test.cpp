#include "ff/sim/partition.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace ff::sim {
namespace {

using EventTrace = std::vector<std::pair<SimTime, std::uint64_t>>;

void record_event(void* ctx, SimTime t, std::uint64_t seq) {
  static_cast<EventTrace*>(ctx)->emplace_back(t, seq);
}

/// Serial driver options: deterministic logs may be appended from event
/// actions without any cross-thread coordination.
PartitionedSimulator::Options serial(std::size_t partitions) {
  PartitionedSimulator::Options o;
  o.partitions = partitions;
  o.threads = 1;
  return o;
}

TEST(PartitionedSimulator, RejectsZeroPartitions) {
  EXPECT_THROW(PartitionedSimulator(1, serial(0)), std::invalid_argument);
}

TEST(PartitionedSimulator, RejectsZeroDelayEdge) {
  PartitionedSimulator ps(1, serial(2));
  try {
    ps.add_edge(0, 1, 0);
    FAIL() << "zero-delay edge must be rejected";
  } catch (const std::invalid_argument& e) {
    // The message must tell the user what the lookahead contract needs.
    EXPECT_NE(std::string(e.what()).find("lookahead"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(ps.add_edge(0, 1, -5), std::invalid_argument);
}

TEST(PartitionedSimulator, RejectsOutOfRangeEdge) {
  PartitionedSimulator ps(1, serial(2));
  EXPECT_THROW(ps.add_edge(0, 2, kMillisecond), std::invalid_argument);
  EXPECT_THROW(ps.add_edge(5, 0, kMillisecond), std::invalid_argument);
}

TEST(PartitionedSimulator, LookaheadIsMinimumEdgeDelay) {
  PartitionedSimulator ps(1, serial(3));
  EXPECT_EQ(ps.lookahead(), 0);
  ps.add_edge(0, 1, 5 * kMillisecond);
  ps.add_edge(1, 2, 2 * kMillisecond);
  ps.add_edge(2, 0, 9 * kMillisecond);
  EXPECT_EQ(ps.lookahead(), 2 * kMillisecond);
}

/// A single partition with no edges must behave exactly like a plain
/// Simulator: same clock, same event count, same (time, sequence) trace,
/// same RNG streams (the root seed is shared).
TEST(PartitionedSimulator, SinglePartitionDegeneratesToPlainSimulator) {
  const std::uint64_t kSeed = 99;

  Simulator plain(kSeed);
  std::vector<double> plain_draws;
  EventTrace plain_trace;
  plain.set_event_observer(&record_event, &plain_trace);
  // Keep the workload RNG alive for the whole run.
  Rng plain_rng = plain.make_rng("workload");
  for (int i = 0; i < 50; ++i) {
    plain.schedule_at(i * 10, [&plain, &plain_draws, &plain_rng] {
      plain_draws.push_back(plain_rng.uniform());
      plain.schedule_in(3, [] {});
    });
  }
  const std::uint64_t plain_events = plain.run_until(1000);

  PartitionedSimulator ps(kSeed, serial(1));
  Simulator& p0 = ps.partition(0);
  std::vector<double> part_draws;
  EventTrace part_trace;
  p0.set_event_observer(&record_event, &part_trace);
  Rng part_rng = p0.make_rng("workload");
  for (int i = 0; i < 50; ++i) {
    p0.schedule_at(i * 10, [&p0, &part_draws, &part_rng] {
      part_draws.push_back(part_rng.uniform());
      p0.schedule_in(3, [] {});
    });
  }
  const std::uint64_t part_events = ps.run_until(1000);

  EXPECT_EQ(plain_events, part_events);
  EXPECT_EQ(plain.now(), ps.now());
  EXPECT_EQ(plain_trace, part_trace);
  EXPECT_EQ(plain_draws, part_draws);
}

TEST(PartitionedSimulator, SafeHorizonIsEarliestEventPlusLookahead) {
  PartitionedSimulator ps(1, serial(2));
  ps.add_edge(0, 1, 5);
  ps.partition(0).schedule_at(10, [] {});
  ps.partition(1).schedule_at(20, [] {});
  EXPECT_EQ(ps.safe_horizon(1000), 15);  // min(10, 20) + 5
  EXPECT_EQ(ps.safe_horizon(12), 12);    // capped at t_end
}

TEST(PartitionedSimulator, SafeHorizonIsHorizonWhenIdleOrEdgeFree) {
  PartitionedSimulator no_edges(1, serial(2));
  no_edges.partition(0).schedule_at(10, [] {});
  EXPECT_EQ(no_edges.safe_horizon(1000), 1000);

  PartitionedSimulator idle(1, serial(2));
  idle.add_edge(0, 1, 5);
  EXPECT_EQ(idle.safe_horizon(1000), 1000);
}

/// Adversarial mailbox ordering: deliveries with equal timestamps, posted
/// through different edges at different post times, must execute in
/// (deliver_at, post_time, edge id, FIFO) order -- and always after the
/// destination's internal events at the same timestamp, even ones
/// scheduled after the deliveries were drained.
TEST(PartitionedSimulator, CanonicalDrainOrderUnderAdversarialTimestamps) {
  PartitionedSimulator ps(1, serial(2));
  BoundaryEdge& e0 = ps.add_edge(0, 1, 10);
  BoundaryEdge& e1 = ps.add_edge(0, 1, 10);

  std::vector<std::string> log;
  const auto mark = [&log](const char* label) {
    return [&log, label] { log.emplace_back(label); };
  };

  Simulator& p0 = ps.partition(0);
  Simulator& p1 = ps.partition(1);

  // Window 1 (events at t=0 and t=5; horizon 0+10): four posts, three
  // sharing deliver_at=20 with equal post times (A, C on e0; B on e1)
  // plus D posted later at t=5. E delivers at 25.
  p0.schedule_at(0, [&] {
    e0.post(0, 20, InlineTask(mark("A")));
    e1.post(0, 20, InlineTask(mark("B")));
    e0.post(0, 20, InlineTask(mark("C")));
    e0.post(0, 25, InlineTask(mark("E")));
  });
  p0.schedule_at(5, [&] { e1.post(5, 20, InlineTask(mark("D"))); });

  // Window 2: F also delivers at 25 but is posted at t=12, after E's
  // barrier -- its later external sequence must still order it after E.
  p0.schedule_at(12, [&] { e0.post(12, 25, InlineTask(mark("F"))); });

  // Internal events in the destination at the delivery timestamps. "I20"
  // is scheduled at t=15 -- after the t=20 deliveries were already
  // drained into p1's queue -- and must still run before all of them:
  // internal sequences sort below the external band.
  p1.schedule_at(15, [&] {
    p1.schedule_at(20, mark("I20"));
  });
  p1.schedule_at(25, mark("I25"));

  ps.run_until(100);

  const std::vector<std::string> expected = {
      "I20", "A", "C", "B", "D", "I25", "E", "F"};
  EXPECT_EQ(log, expected);
}

/// Envelopes still pending when run_until returns (posted in the final
/// window) are delivered by the next call.
TEST(PartitionedSimulator, PendingEnvelopesSurviveAcrossRunCalls) {
  PartitionedSimulator ps(1, serial(2));
  BoundaryEdge& edge = ps.add_edge(0, 1, 10);

  bool delivered = false;
  ps.partition(0).schedule_at(0, [&] {
    edge.post(0, 30, InlineTask([&delivered] { delivered = true; }));
  });

  ps.run_until(5);  // one window; the post happened but nothing delivered
  EXPECT_FALSE(delivered);
  ps.run_until(100);
  EXPECT_TRUE(delivered);
}

/// The same workload must produce the same trace with the worker gang as
/// serially -- here each partition records into its own slot, so threaded
/// execution is race-free by the static-ownership rule.
TEST(PartitionedSimulator, ThreadedWindowsMatchSerial) {
  const auto run = [](unsigned threads) {
    PartitionedSimulator::Options o;
    o.partitions = 4;
    o.threads = threads;
    PartitionedSimulator ps(7, o);
    std::vector<BoundaryEdge*> to_next;
    for (std::size_t p = 0; p < 4; ++p) {
      to_next.push_back(&ps.add_edge(p, (p + 1) % 4, 3));
    }
    std::vector<EventTrace> traces(4);
    std::vector<std::uint64_t> hops(4, 0);
    for (std::size_t p = 0; p < 4; ++p) {
      ps.partition(p).set_event_observer(&record_event, &traces[p]);
      // A kickoff event per partition; workers only ever touch their own
      // partition's slot of `hops`/`traces`, so threading is race-free.
      ps.partition(p).schedule_at(static_cast<SimTime>(p),
                                  [&hops, p] { ++hops[p]; });
    }
    // A token relayed around the ring: partition p at time t posts to
    // p+1 at t+5, 40 hops total.
    struct Chain {
      std::vector<BoundaryEdge*>* edges;
      std::vector<std::uint64_t>* hops;
      std::size_t p;
      int remaining;
      SimTime at;
      void fire() {
        ++(*hops)[p];
        if (remaining == 0) return;
        Chain next{edges, hops, (p + 1) % 4, remaining - 1, at + 5};
        (*edges)[p]->post(at, at + 5, InlineTask([next]() mutable {
          next.fire();
        }));
      }
    };
    Chain seed{&to_next, &hops, 0, 40, 0};
    ps.partition(0).schedule_at(0, [seed]() mutable { seed.fire(); });
    ps.run_until(10000);
    return std::make_pair(traces, hops);
  };

  const auto serial_result = run(1);
  const auto threaded_result = run(4);
  EXPECT_EQ(serial_result.first, threaded_result.first);
  EXPECT_EQ(serial_result.second, threaded_result.second);
  // The token made it around: 41 fires plus the 4 kickoff events.
  std::uint64_t total = 0;
  for (const auto h : serial_result.second) total += h;
  EXPECT_EQ(total, 45u);
}

}  // namespace
}  // namespace ff::sim
