#include "ff/sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace ff::sim {
namespace {

TEST(Simulator, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, ScheduleInAdvancesClock) {
  Simulator sim;
  SimTime seen = -1;
  (void)sim.schedule_in(100, [&] { seen = sim.now(); });
  sim.run_until(kSecond);
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(sim.now(), kSecond);  // clock advances to horizon
}

TEST(Simulator, RunUntilExcludesHorizonEvents) {
  Simulator sim;
  bool before = false, at = false;
  (void)sim.schedule_at(99, [&] { before = true; });
  (void)sim.schedule_at(100, [&] { at = true; });
  sim.run_until(100);
  EXPECT_TRUE(before);
  EXPECT_FALSE(at);
  // Continuing past the horizon runs it.
  sim.run_until(101);
  EXPECT_TRUE(at);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator sim;
  (void)sim.schedule_in(50, [&] {
    SimTime ran_at = -1;
    (void)sim.schedule_in(-100, [&, t = &ran_at] { *t = sim.now(); });
    (void)sim.schedule_in(0, [&] {});
  });
  EXPECT_NO_THROW(sim.run());
}

TEST(Simulator, ScheduleAtPastClampsToNow) {
  Simulator sim;
  std::vector<SimTime> times;
  (void)sim.schedule_at(100, [&] {
    (void)sim.schedule_at(10, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_EQ(times[0], 100);
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 10) (void)sim.schedule_in(10, chain);
  };
  (void)sim.schedule_in(10, chain);
  sim.run();
  EXPECT_EQ(count, 10);
  EXPECT_EQ(sim.now(), 100);
}

TEST(Simulator, RunReturnsEventCount) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) (void)sim.schedule_in(i, [] {});
  EXPECT_EQ(sim.run(), 5u);
  EXPECT_EQ(sim.events_executed(), 5u);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule_in(10, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, StepExecutesOne) {
  Simulator sim;
  int count = 0;
  (void)sim.schedule_in(1, [&] { ++count; });
  (void)sim.schedule_in(2, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(count, 2);
}

TEST(Simulator, MakeRngDeterministic) {
  Simulator a(5), b(5);
  ff::Rng ra = a.make_rng("x");
  ff::Rng rb = b.make_rng("x");
  EXPECT_EQ(ra.next_u64(), rb.next_u64());
  ff::Rng rc = a.make_rng("y");
  EXPECT_NE(a.make_rng("x").next_u64(), rc.next_u64());
}

TEST(Simulator, DeterministicEventOrderAcrossRuns) {
  auto record_run = [](std::uint64_t seed) {
    Simulator sim(seed);
    ff::Rng rng = sim.make_rng("gen");
    std::vector<SimTime> times;
    for (int i = 0; i < 100; ++i) {
      (void)sim.schedule_in(rng.uniform_int(0, 10000),
                            [&times, &sim] { times.push_back(sim.now()); });
    }
    sim.run();
    return times;
  };
  EXPECT_EQ(record_run(9), record_run(9));
  EXPECT_NE(record_run(9), record_run(10));
}

TEST(Simulator, RunUntilIdempotentWhenDrained) {
  Simulator sim;
  (void)sim.schedule_in(10, [] {});
  sim.run_until(kSecond);
  EXPECT_EQ(sim.run_until(2 * kSecond), 0u);
  EXPECT_EQ(sim.now(), 2 * kSecond);
}

}  // namespace
}  // namespace ff::sim
