#include "ff/sim/timer.h"

#include <gtest/gtest.h>

#include <vector>

namespace ff::sim {
namespace {

TEST(PeriodicTimer, FiresAtPeriod) {
  Simulator sim;
  std::vector<SimTime> fire_times;
  PeriodicTimer t(sim, [&](std::uint64_t) { fire_times.push_back(sim.now()); });
  t.start(kSecond);
  sim.run_until(3 * kSecond + kSecond / 2);
  ASSERT_EQ(fire_times.size(), 4u);  // t=0 (initial_delay 0), 1, 2, 3
  EXPECT_EQ(fire_times[0], 0);
  EXPECT_EQ(fire_times[1], kSecond);
  EXPECT_EQ(fire_times[3], 3 * kSecond);
}

TEST(PeriodicTimer, InitialDelayDelaysFirstTick) {
  Simulator sim;
  std::vector<SimTime> fire_times;
  PeriodicTimer t(sim, [&](std::uint64_t) { fire_times.push_back(sim.now()); });
  t.start(kSecond, kSecond);
  sim.run_until(2 * kSecond + 1);
  ASSERT_EQ(fire_times.size(), 2u);
  EXPECT_EQ(fire_times[0], kSecond);
  EXPECT_EQ(fire_times[1], 2 * kSecond);
}

TEST(PeriodicTimer, TickIndexIncrements) {
  Simulator sim;
  std::vector<std::uint64_t> ticks;
  PeriodicTimer t(sim, [&](std::uint64_t i) { ticks.push_back(i); });
  t.start(kSecond, kSecond);
  sim.run_until(3 * kSecond + 1);
  EXPECT_EQ(ticks, (std::vector<std::uint64_t>{0, 1, 2}));
}

TEST(PeriodicTimer, StopHaltsTicks) {
  Simulator sim;
  int count = 0;
  PeriodicTimer t(sim, [&](std::uint64_t) { ++count; });
  t.start(kSecond, kSecond);
  (void)sim.schedule_at(2 * kSecond + 1, [&] { t.stop(); });
  sim.run_until(10 * kSecond);
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(t.active());
}

TEST(PeriodicTimer, StopFromCallbackWorks) {
  Simulator sim;
  int count = 0;
  PeriodicTimer t(sim, [&](std::uint64_t) {
    if (++count == 3) t.stop();
  });
  t.start(kSecond, kSecond);
  sim.run_until(10 * kSecond);
  EXPECT_EQ(count, 3);
}

TEST(PeriodicTimer, RestartReschedules) {
  Simulator sim;
  std::vector<SimTime> fire_times;
  PeriodicTimer t(sim, [&](std::uint64_t) { fire_times.push_back(sim.now()); });
  t.start(kSecond, kSecond);
  (void)sim.schedule_at(kSecond + 1, [&] { t.start(2 * kSecond,
                                                   2 * kSecond); });
  sim.run_until(6 * kSecond);
  // Fired at 1s (old), then restarted: 3s+1us, 5s+1us.
  ASSERT_EQ(fire_times.size(), 3u);
  EXPECT_EQ(fire_times[0], kSecond);
  EXPECT_EQ(fire_times[1], 3 * kSecond + 1);
  EXPECT_EQ(fire_times[2], 5 * kSecond + 1);
}

TEST(PeriodicTimer, DestructionCancelsPending) {
  Simulator sim;
  int count = 0;
  {
    PeriodicTimer t(sim, [&](std::uint64_t) { ++count; });
    t.start(kSecond, kSecond);
  }
  sim.run_until(10 * kSecond);
  EXPECT_EQ(count, 0);
}

TEST(OneShotTimer, FiresOnce) {
  Simulator sim;
  int count = 0;
  OneShotTimer t(sim);
  t.arm(kSecond, [&] { ++count; });
  EXPECT_TRUE(t.armed());
  sim.run_until(10 * kSecond);
  EXPECT_EQ(count, 1);
  EXPECT_FALSE(t.armed());
}

TEST(OneShotTimer, RearmCancelsPrevious) {
  Simulator sim;
  std::vector<int> fired;
  OneShotTimer t(sim);
  t.arm(kSecond, [&] { fired.push_back(1); });
  t.arm(2 * kSecond, [&] { fired.push_back(2); });
  sim.run_until(10 * kSecond);
  EXPECT_EQ(fired, (std::vector<int>{2}));
}

TEST(OneShotTimer, CancelPrevents) {
  Simulator sim;
  int count = 0;
  OneShotTimer t(sim);
  t.arm(kSecond, [&] { ++count; });
  t.cancel();
  EXPECT_FALSE(t.armed());
  sim.run_until(10 * kSecond);
  EXPECT_EQ(count, 0);
}

TEST(OneShotTimer, DestructionCancels) {
  Simulator sim;
  int count = 0;
  {
    OneShotTimer t(sim);
    t.arm(kSecond, [&] { ++count; });
  }
  sim.run_until(10 * kSecond);
  EXPECT_EQ(count, 0);
}

}  // namespace
}  // namespace ff::sim
