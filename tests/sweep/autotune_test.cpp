#include "ff/sweep/autotune.h"

#include <gtest/gtest.h>

#include "ff/core/framefeedback.h"

namespace ff::sweep {
namespace {

AutoTuneConfig small_config() {
  AutoTuneConfig c;
  c.scenario = core::Scenario::paper_tuning();
  c.scenario.seed = 42;
  c.scenario.duration = 45 * kSecond;  // enough for ramp + disturbance
  c.kp_grid = {0.05, 0.2, 0.8};
  c.kd_grid = {0.0, 0.26};
  c.threads = 4;
  return c;
}

TEST(AutoTune, EvaluatesFullGrid) {
  const auto result = auto_tune(small_config());
  EXPECT_EQ(result.all.size(), 6u);
  // Grid order is kp-major.
  EXPECT_DOUBLE_EQ(result.all[0].kp, 0.05);
  EXPECT_DOUBLE_EQ(result.all[0].kd, 0.0);
  EXPECT_DOUBLE_EQ(result.all[5].kp, 0.8);
  EXPECT_DOUBLE_EQ(result.all[5].kd, 0.26);
}

TEST(AutoTune, BestHasMinimalScore) {
  const auto result = auto_tune(small_config());
  for (const auto& g : result.all) {
    EXPECT_LE(result.best.score, g.score);
  }
}

TEST(AutoTune, RejectsSluggishGains) {
  // Kp = 0.05 cannot reach 90% of Fs before the disturbance; the search
  // must not pick it.
  const auto result = auto_tune(small_config());
  EXPECT_GT(result.best.kp, 0.05);
}

TEST(AutoTune, WinnerReachesSetpointAndBeatsSluggishByFar) {
  AutoTuneConfig c = small_config();
  c.kp_grid = {0.05, 0.2, 2.0};
  c.kd_grid = {0.0, 0.26};
  const auto result = auto_tune(c);
  // The winner reaches the setpoint (rise detected)...
  EXPECT_GE(result.best.clean.rise_time_s, 0.0);
  // ...and decisively beats the never-rising sluggish cell, whose score
  // carries the non-settling penalty.
  double sluggish_score = 0.0;
  for (const auto& g : result.all) {
    if (g.kp == 0.05 && g.kd == 0.0) sluggish_score = g.score;
  }
  EXPECT_LT(result.best.score * 10, sluggish_score);
}

TEST(AutoTune, EmptyGridThrows) {
  AutoTuneConfig c = small_config();
  c.kp_grid.clear();
  EXPECT_THROW((void)auto_tune(c), std::invalid_argument);
}

TEST(AutoTune, MultiDeviceScenarioThrows) {
  AutoTuneConfig c = small_config();
  c.scenario.add_device(c.scenario.devices[0]);
  EXPECT_THROW((void)auto_tune(c), std::invalid_argument);
}

TEST(AutoTune, DeterministicAcrossCalls) {
  const auto a = auto_tune(small_config());
  const auto b = auto_tune(small_config());
  EXPECT_DOUBLE_EQ(a.best.kp, b.best.kp);
  EXPECT_DOUBLE_EQ(a.best.kd, b.best.kd);
  EXPECT_DOUBLE_EQ(a.best.score, b.best.score);
}

}  // namespace
}  // namespace ff::sweep
