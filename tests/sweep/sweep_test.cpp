#include "ff/sweep/sweep.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "ff/core/framefeedback.h"
#include "ff/obs/metrics.h"
#include "ff/obs/trace.h"
#include "ff/rt/thread_pool.h"

namespace ff::sweep {
namespace {

SweepConfig small_config() {
  SweepConfig cfg;
  cfg.name = "test_sweep";
  cfg.base = core::Scenario::ideal(5 * kSecond);
  cfg.base.seed = 11;
  cfg.replicates = 2;
  cfg.controllers = {
      {"frame-feedback",
       core::make_controller_factory<control::FrameFeedbackController>()},
      {"local-only",
       core::make_controller_factory<control::LocalOnlyController>()},
  };
  Axis fps;
  fps.name = "fps";
  fps.values = {
      {"15", [](core::Scenario& s) { s.devices[0].source_fps = 15.0; }},
      {"30", [](core::Scenario& s) { s.devices[0].source_fps = 30.0; }},
  };
  cfg.axes.push_back(std::move(fps));
  cfg.probes = {
      {"mean_P",
       [](const core::ExperimentResult& r) {
         return r.devices[0].mean_throughput();
       }},
  };
  return cfg;
}

TEST(SweepSeed, DerivationIsPureInSeedAndIndex) {
  const std::uint64_t a = derive_point_seed(42, 0);
  EXPECT_EQ(a, derive_point_seed(42, 0));
  EXPECT_NE(a, derive_point_seed(42, 1));
  EXPECT_NE(a, derive_point_seed(43, 0));
}

TEST(SweepSeed, DerivedSeedsAreDistinctAcrossAWideGrid) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    seen.insert(derive_point_seed(42, i));
  }
  EXPECT_EQ(seen.size(), 10'000u);
}

TEST(SweepRun, EnumeratesAxisMajorThenControllerThenReplicate) {
  SweepConfig cfg = small_config();
  cfg.threads = 1;
  const SweepResult result = run(cfg);
  ASSERT_EQ(result.points.size(), 8u);  // 2 fps x 2 controllers x 2 reps

  // Replicate varies fastest, then controller, then the axis.
  EXPECT_EQ(result.points[0].desc.label, "fps=15,frame-feedback#0");
  EXPECT_EQ(result.points[1].desc.label, "fps=15,frame-feedback#1");
  EXPECT_EQ(result.points[2].desc.label, "fps=15,local-only#0");
  EXPECT_EQ(result.points[4].desc.label, "fps=30,frame-feedback#0");
  EXPECT_EQ(result.points[7].desc.label, "fps=30,local-only#1");

  for (std::size_t i = 0; i < result.points.size(); ++i) {
    const PointDesc& d = result.points[i].desc;
    EXPECT_EQ(d.index, i);
    EXPECT_EQ(result.index_of(d.axis_indices, d.controller_index,
                              d.replicate),
              i);
    EXPECT_EQ(&result.at(d.axis_indices, d.controller_index, d.replicate),
              &result.points[i]);
  }
}

TEST(SweepRun, DerivedModeSeedsMatchDerivationAndAreUnique) {
  SweepConfig cfg = small_config();
  cfg.threads = 1;
  const SweepResult result = run(cfg);
  std::set<std::uint64_t> seeds;
  for (const SweepPoint& p : result.points) {
    EXPECT_EQ(p.desc.seed, derive_point_seed(cfg.base.seed, p.desc.index));
    EXPECT_EQ(p.result.seed, p.desc.seed);
    seeds.insert(p.desc.seed);
  }
  EXPECT_EQ(seeds.size(), result.points.size());
}

TEST(SweepRun, ScenarioModeKeepsSeedPlusReplicate) {
  SweepConfig cfg = small_config();
  cfg.threads = 1;
  cfg.seed_mode = SeedMode::kScenario;
  const SweepResult result = run(cfg);
  for (const SweepPoint& p : result.points) {
    EXPECT_EQ(p.desc.seed, cfg.base.seed + p.desc.replicate);
  }
}

// The tentpole guarantee: a parallel sweep is bit-identical to the same
// sweep run serially -- same per-point result fingerprints and the same
// bytes out of every writer.
TEST(SweepDeterminism, ParallelMatchesSerialBitForBit) {
  SweepConfig cfg = small_config();

  cfg.threads = 1;
  const SweepResult serial = run(cfg);
  cfg.threads = 4;
  const SweepResult dedicated = run(cfg);
  cfg.threads = 0;  // shared default pool
  const SweepResult shared = run(cfg);
  rt::shutdown_default_pool();

  ASSERT_EQ(serial.points.size(), dedicated.points.size());
  ASSERT_EQ(serial.points.size(), shared.points.size());
  for (std::size_t i = 0; i < serial.points.size(); ++i) {
    const std::uint64_t want = result_fingerprint(serial.points[i].result);
    EXPECT_EQ(want, result_fingerprint(dedicated.points[i].result)) << i;
    EXPECT_EQ(want, result_fingerprint(shared.points[i].result)) << i;
  }

  const auto csv_bytes = [](const SweepResult& r) {
    std::ostringstream points, summary, series, json;
    write_points_csv(r, points);
    write_summary_csv(r, aggregate(r), summary);
    write_series_csv(r, "P", 0, series);
    write_bench_json(r, json);
    return points.str() + summary.str() + series.str() + json.str();
  };
  const std::string want = csv_bytes(serial);
  EXPECT_EQ(want, csv_bytes(dedicated));
  EXPECT_EQ(want, csv_bytes(shared));
}

TEST(SweepDeterminism, FingerprintSeparatesDifferentRuns) {
  SweepConfig cfg = small_config();
  cfg.threads = 1;
  const SweepResult result = run(cfg);
  // Different seeds / controllers / fps cells must not collide.
  std::set<std::uint64_t> prints;
  for (const SweepPoint& p : result.points) {
    prints.insert(result_fingerprint(p.result));
  }
  EXPECT_EQ(prints.size(), result.points.size());
}

TEST(SweepAggregate, SummarizesReplicatesPerCell) {
  SweepConfig cfg = small_config();
  cfg.threads = 1;
  const SweepResult result = run(cfg);
  const auto cells = aggregate(result);
  ASSERT_EQ(cells.size(), 4u);  // 2 fps x 2 controllers
  for (const CellSummary& cell : cells) {
    EXPECT_EQ(cell.first.replicate, 0u);
    ASSERT_EQ(cell.metrics.size(), 1u);
    const MetricSummary& m = cell.metrics[0];
    EXPECT_EQ(m.name, "mean_P");
    EXPECT_EQ(m.stats.count(), 2u);
    EXPECT_EQ(m.ci.n, 2u);
    // Replicate mean matches the two underlying points.
    const std::size_t base = cell.first.index;
    const double expect_mean = (result.points[base].metrics[0] +
                                result.points[base + 1].metrics[0]) /
                               2.0;
    EXPECT_DOUBLE_EQ(m.stats.mean(), expect_mean);
    EXPECT_DOUBLE_EQ(m.ci.mean, expect_mean);
    // n = 2 replicates: the 95% interval uses the Student-t critical
    // value for 1 degree of freedom (12.706), not the normal 1.96 --
    // the normal interval was systematically narrow at bench replicate
    // counts.
    const double sd = std::sqrt(m.stats.sample_variance());
    EXPECT_DOUBLE_EQ(m.ci.half_width,
                     student_t_975(1) * sd / std::sqrt(2.0));
  }
}

TEST(SweepObs, MetricsAndProgressArriveInOrder) {
  SweepConfig cfg = small_config();
  cfg.threads = 2;
  obs::MetricsRegistry metrics;
  cfg.metrics = &metrics;
  std::vector<std::size_t> seen;
  cfg.on_point = [&](const PointDesc& desc, std::size_t done,
                     std::size_t total) {
    EXPECT_EQ(total, 8u);
    EXPECT_EQ(done, desc.index + 1);  // landed in linear order
    seen.push_back(desc.index);
  };
  const SweepResult result = run(cfg);
  ASSERT_EQ(seen.size(), 8u);
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i);

  const obs::Labels labels{{"sweep", cfg.name}};
  EXPECT_DOUBLE_EQ(metrics.gauge("sweep.points_total", labels).value(), 8.0);
  EXPECT_DOUBLE_EQ(metrics.counter("sweep.points_done", labels).value(), 8.0);
  EXPECT_GT(metrics.counter("sweep.events_executed", labels).value(), 0.0);
  obs::Labels probe_labels = labels;
  probe_labels.emplace_back("metric", "mean_P");
  EXPECT_EQ(metrics.distribution("sweep.metric", probe_labels).count(), 8u);
  (void)result;
}

TEST(SweepObs, TraceSinkSeesLifecycleAndOptionallyExperiments) {
  SweepConfig cfg = small_config();
  cfg.threads = 2;
  obs::CollectingTraceSink sink;
  cfg.trace = &sink;
  (void)run(cfg);
  EXPECT_EQ(sink.count(obs::ev::kSweepStart), 1u);
  EXPECT_EQ(sink.count(obs::ev::kSweepPoint), 8u);
  EXPECT_EQ(sink.count(obs::ev::kSweepDone), 1u);
  EXPECT_EQ(sink.count(obs::ev::kFrameCaptured), 0u);

  sink.clear();
  cfg.trace_experiments = true;
  (void)run(cfg);
  EXPECT_GT(sink.count(obs::ev::kFrameCaptured), 0u);
}

TEST(SweepRun, NoAxesMeansControllersTimesReplicates) {
  SweepConfig cfg = small_config();
  cfg.threads = 1;
  cfg.axes.clear();
  cfg.replicates = 1;
  const SweepResult result = run(cfg);
  ASSERT_EQ(result.points.size(), 2u);
  // Without axes or replication the label is just the controller.
  EXPECT_EQ(result.points[0].desc.label, "frame-feedback");
  EXPECT_EQ(result.points[1].desc.label, "local-only");
}

TEST(SweepRun, InvalidConfigsThrow) {
  SweepConfig no_controllers = small_config();
  no_controllers.controllers.clear();
  EXPECT_THROW((void)run(no_controllers), std::invalid_argument);

  SweepConfig empty_axis = small_config();
  empty_axis.axes[0].values.clear();
  EXPECT_THROW((void)run(empty_axis), std::invalid_argument);

  SweepConfig no_replicates = small_config();
  no_replicates.replicates = 0;
  EXPECT_THROW((void)run(no_replicates), std::invalid_argument);
}

TEST(SweepResultApi, IndexOfRejectsOutOfRange) {
  SweepConfig cfg = small_config();
  cfg.threads = 1;
  const SweepResult result = run(cfg);
  EXPECT_THROW((void)result.index_of({0}, 2, 0), std::out_of_range);
  EXPECT_THROW((void)result.index_of({2}, 0, 0), std::out_of_range);
  EXPECT_THROW((void)result.index_of({0}, 0, 2), std::out_of_range);
  EXPECT_THROW((void)result.index_of({0, 0}, 0, 0), std::out_of_range);
}

TEST(SweepWriters, PointsCsvShape) {
  SweepConfig cfg = small_config();
  cfg.threads = 1;
  const SweepResult result = run(cfg);
  std::ostringstream os;
  write_points_csv(result, os);
  std::istringstream is(os.str());
  std::string header;
  std::getline(is, header);
  EXPECT_EQ(header,
            "index,fps,controller,replicate,seed,fingerprint,mean_P");
  std::size_t rows = 0;
  for (std::string line; std::getline(is, line);) ++rows;
  EXPECT_EQ(rows, 8u);
}

TEST(SweepWriters, SeriesCsvMatchesBundleShape) {
  SweepConfig cfg = small_config();
  cfg.threads = 1;
  const SweepResult result = run(cfg);
  std::ostringstream os;
  write_series_csv(result, "P", 0, os);
  std::istringstream is(os.str());
  std::string header;
  std::getline(is, header);
  EXPECT_EQ(header, "time_s,series,value");  // write_bundle_csv shape
  std::string first;
  std::getline(is, first);
  EXPECT_NE(first.find("fps=15,frame-feedback#0"), std::string::npos);
}

TEST(SweepWriters, BenchJsonHasSuiteAndBenchmarks) {
  SweepConfig cfg = small_config();
  cfg.threads = 1;
  cfg.replicates = 1;
  const SweepResult result = run(cfg);
  std::ostringstream os;
  write_bench_json(result, os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"suite\": \"test_sweep\""), std::string::npos);
  EXPECT_NE(json.find("\"benchmarks\": ["), std::string::npos);
  EXPECT_NE(json.find("\"mean_P\": "), std::string::npos);
  EXPECT_NE(json.find("\"fingerprint\": "), std::string::npos);
}

}  // namespace
}  // namespace ff::sweep
