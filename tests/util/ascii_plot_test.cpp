#include "ff/util/ascii_plot.h"

#include <gtest/gtest.h>

namespace ff {
namespace {

TimeSeries ramp(int n) {
  TimeSeries s("ramp");
  for (int i = 0; i < n; ++i) s.record(i * kSecond, i);
  return s;
}

TEST(AsciiPlot, PlotContainsAxisAndLegend) {
  const TimeSeries s = ramp(20);
  PlotOptions opts;
  opts.width = 40;
  opts.height = 8;
  opts.title = "test-title";
  const std::string out = plot_series(s, opts);
  EXPECT_NE(out.find("test-title"), std::string::npos);
  EXPECT_NE(out.find("legend:"), std::string::npos);
  EXPECT_NE(out.find("ramp"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('+' + std::string(40, '-')), std::string::npos);
}

TEST(AsciiPlot, MultipleSeriesUseDistinctGlyphs) {
  const TimeSeries a = ramp(10);
  TimeSeries b("flat");
  for (int i = 0; i < 10; ++i) b.record(i * kSecond, 5.0);
  PlotOptions opts;
  opts.width = 30;
  opts.height = 6;
  const std::string out = plot_series({&a, &b}, opts);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('+'), std::string::npos);
}

TEST(AsciiPlot, EmptySeriesListYieldsEmptyString) {
  EXPECT_EQ(plot_series(std::vector<const TimeSeries*>{}, {}), "");
}

TEST(AsciiPlot, FixedScaleClampsOutliers) {
  TimeSeries s("spiky");
  s.record(0, 0.0);
  s.record(kSecond, 1000.0);
  PlotOptions opts;
  opts.width = 10;
  opts.height = 4;
  opts.y_min = 0.0;
  opts.y_max = 10.0;
  // Must not crash; the 1000 lands on the top row.
  const std::string out = plot_series(s, opts);
  EXPECT_FALSE(out.empty());
}

TEST(Sparkline, WidthMatchesRequest) {
  const TimeSeries s = ramp(100);
  const std::string sl = sparkline(s, 20);
  // Each block is a 3-byte UTF-8 char.
  EXPECT_EQ(sl.size(), 20u * 3u);
}

TEST(Sparkline, EmptySeriesYieldsEmpty) {
  TimeSeries s;
  EXPECT_EQ(sparkline(s), "");
}

TEST(Sparkline, MonotoneRampStartsLowEndsHigh) {
  const TimeSeries s = ramp(100);
  const std::string sl = sparkline(s, 10);
  EXPECT_EQ(sl.substr(0, 3), "▁");
  EXPECT_EQ(sl.substr(sl.size() - 3), "█");
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "2.5"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name "), std::string::npos);
  EXPECT_NE(out.find("| longer-name |"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(TextTable, ShortRowsPad) {
  TextTable t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NO_THROW(t.render());
}

TEST(Fmt, FormatsWithDigits) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(fmt(-1.5, 1), "-1.5");
}

}  // namespace
}  // namespace ff
