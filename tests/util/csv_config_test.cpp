#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "ff/util/config.h"
#include "ff/util/csv.h"

namespace ff {
namespace {

TEST(CsvWriter, WritesHeaderAndRows) {
  std::ostringstream os;
  CsvWriter w(os);
  w.header({"a", "b"});
  w.field(1.5).field(std::int64_t{2});
  w.end_row();
  EXPECT_EQ(os.str(), "a,b\n1.5,2\n");
}

TEST(CsvWriter, EscapesSpecialCharacters) {
  std::ostringstream os;
  CsvWriter w(os);
  w.field("plain").field("has,comma").field("has\"quote");
  w.end_row();
  EXPECT_EQ(os.str(), "plain,\"has,comma\",\"has\"\"quote\"\n");
}

TEST(CsvWriter, NumericRowHelper) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row({1.0, 2.0, 3.0});
  EXPECT_EQ(os.str(), "1,2,3\n");
}

TEST(CsvWriter, ThrowsOnUnopenablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv"), std::runtime_error);
}

TEST(CsvWriter, WriteSeriesRoundTrip) {
  TimeSeries s("P");
  s.record(0, 1.0);
  s.record(kSecond, 2.5);
  const std::string path = ::testing::TempDir() + "/series.csv";
  write_series_csv(s, path);

  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "time_s,value");
  std::getline(in, line);
  EXPECT_EQ(line, "0,1");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2.5");
  std::remove(path.c_str());
}

TEST(CsvWriter, WriteBundleLongForm) {
  SeriesBundle b;
  b.series("P").record(0, 1.0);
  b.series("T").record(0, 2.0);
  const std::string path = ::testing::TempDir() + "/bundle.csv";
  write_bundle_csv(b, path);

  std::ifstream in(path);
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("0,P,1"), std::string::npos);
  EXPECT_NE(all.find("0,T,2"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Config, ParsesKeyValueArgs) {
  const char* argv[] = {"prog", "fps=30", "name=test", "flag"};
  std::vector<std::string> leftover;
  const Config c = Config::from_args(4, argv, &leftover);
  EXPECT_EQ(c.get_double("fps", 0), 30.0);
  EXPECT_EQ(c.get_string("name", ""), "test");
  ASSERT_EQ(leftover.size(), 1u);
  EXPECT_EQ(leftover[0], "flag");
}

TEST(Config, FallbacksWhenMissingOrInvalid) {
  const char* argv[] = {"prog", "x=notanumber"};
  const Config c = Config::from_args(2, argv);
  EXPECT_EQ(c.get_double("x", 7.0), 7.0);
  EXPECT_EQ(c.get_int("missing", 3), 3);
  EXPECT_EQ(c.get_string("missing", "d"), "d");
}

TEST(Config, BoolParsing) {
  const char* argv[] = {"prog", "a=true", "b=0", "c=YES", "d=off", "e=maybe"};
  const Config c = Config::from_args(6, argv);
  EXPECT_TRUE(c.get_bool("a", false));
  EXPECT_FALSE(c.get_bool("b", true));
  EXPECT_TRUE(c.get_bool("c", false));
  EXPECT_FALSE(c.get_bool("d", true));
  EXPECT_TRUE(c.get_bool("e", true));  // unparseable -> fallback
}

TEST(Config, FromFileWithCommentsAndWhitespace) {
  const std::string path = ::testing::TempDir() + "/cfg.txt";
  {
    std::ofstream out(path);
    out << "# a comment\n"
        << "  fps = 25  \n"
        << "name=edge # trailing comment\n"
        << "\n"
        << "no_equals_line\n";
  }
  const Config c = Config::from_file(path);
  EXPECT_EQ(c.get_double("fps", 0), 25.0);
  EXPECT_EQ(c.get_string("name", ""), "edge");
  EXPECT_FALSE(c.has("no_equals_line"));
  std::remove(path.c_str());
}

TEST(Config, FromFileMissingThrows) {
  EXPECT_THROW(Config::from_file("/no/such/file.cfg"), std::runtime_error);
}

}  // namespace
}  // namespace ff
