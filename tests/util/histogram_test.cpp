#include "ff/util/histogram.h"

#include <gtest/gtest.h>

#include "ff/util/rng.h"

namespace ff {
namespace {

TEST(Histogram, BinsCoverRange) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_EQ(h.bin_count(), 10u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(9), 10.0);
}

TEST(Histogram, CountsLandInCorrectBins) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(5.5);
  h.add(5.6);
  h.add(9.99);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(5), 2u);
  EXPECT_EQ(h.bin(9), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderflowAndOverflow) {
  Histogram h(0.0, 1.0, 4);
  h.add(-0.1);
  h.add(1.0);  // hi is exclusive
  h.add(5.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BoundaryValuesGoToLowerEdgeBin) {
  Histogram h(0.0, 10.0, 10);
  h.add(3.0);
  EXPECT_EQ(h.bin(3), 1u);
}

TEST(Histogram, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(0.0, 10.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(10.0, 0.0, 5), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 5), std::invalid_argument);
}

TEST(Histogram, QuantileApproximatesUniform) {
  Rng rng(1);
  Histogram h(0.0, 1.0, 100);
  for (int i = 0; i < 100000; ++i) h.add(rng.uniform());
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
}

TEST(Histogram, ResetClearsEverything) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.5);
  h.add(2.0);
  h.reset();
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
  EXPECT_EQ(h.bin(2), 0u);
}

TEST(Histogram, RenderContainsBars) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  const std::string r = h.render(10);
  EXPECT_NE(r.find('#'), std::string::npos);
  EXPECT_NE(r.find("[0, 1)"), std::string::npos);
}

TEST(LogHistogram, BucketBoundariesDouble) {
  LogHistogram h(1.0, 10);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 1.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(2), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(3), 4.0);
}

TEST(LogHistogram, ValuesSpanOrdersOfMagnitude) {
  LogHistogram h(1.0, 40);
  h.add(0.5);     // bucket 0
  h.add(1.5);     // [1,2)
  h.add(1000.0);  // [512, 1024) -> bucket 10+1
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(10), 1u);
}

TEST(LogHistogram, OverflowClampsToLastBucket) {
  LogHistogram h(1.0, 4);
  h.add(1e12);
  EXPECT_EQ(h.bucket(3), 1u);
}

TEST(LogHistogram, QuantileRoughlyRight) {
  Rng rng(2);
  LogHistogram h(1.0, 40);
  for (int i = 0; i < 100000; ++i) h.add(rng.uniform(0.0, 1000.0));
  // Median ~500; log buckets are coarse, so allow one bucket of slack.
  const double m = h.quantile(0.5);
  EXPECT_GE(m, 250.0);
  EXPECT_LE(m, 1024.0);
}

TEST(LogHistogram, InvalidConstructionThrows) {
  EXPECT_THROW(LogHistogram(0.0, 4), std::invalid_argument);
  EXPECT_THROW(LogHistogram(1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace ff
