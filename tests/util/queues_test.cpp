#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "ff/util/mpmc_queue.h"
#include "ff/util/spsc_queue.h"

namespace ff {
namespace {

TEST(SpscQueue, PushPopSingleThread) {
  SpscQueue<int> q(8);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_EQ(q.try_pop(), 1);
  EXPECT_EQ(q.try_pop(), 2);
  EXPECT_EQ(q.try_pop(), std::nullopt);
}

TEST(SpscQueue, FillsToCapacity) {
  SpscQueue<int> q(4);
  int pushed = 0;
  while (q.try_push(pushed)) ++pushed;
  EXPECT_GE(pushed, 4);
  EXPECT_EQ(q.size_approx(), static_cast<std::size_t>(pushed));
}

TEST(SpscQueue, FifoOrderAcrossWrap) {
  SpscQueue<int> q(4);
  for (int round = 0; round < 10; ++round) {
    EXPECT_TRUE(q.try_push(round * 2));
    EXPECT_TRUE(q.try_push(round * 2 + 1));
    EXPECT_EQ(q.try_pop(), round * 2);
    EXPECT_EQ(q.try_pop(), round * 2 + 1);
  }
}

TEST(SpscQueue, ConcurrentProducerConsumerDeliversAll) {
  SpscQueue<int> q(64);
  constexpr int kCount = 100000;
  std::atomic<long long> sum{0};

  std::thread consumer([&] {
    int received = 0;
    while (received < kCount) {
      if (auto v = q.try_pop()) {
        sum += *v;
        ++received;
      }
    }
  });
  for (int i = 1; i <= kCount; ++i) {
    while (!q.try_push(i)) std::this_thread::yield();
  }
  consumer.join();
  EXPECT_EQ(sum.load(), static_cast<long long>(kCount) * (kCount + 1) / 2);
}

TEST(MpmcQueue, BlockingPopReceivesPush) {
  MpmcQueue<int> q(4);
  std::thread t([&] { EXPECT_TRUE(q.push(42)); });
  EXPECT_EQ(q.pop(), 42);
  t.join();
}

TEST(MpmcQueue, TryPushFailsWhenFull) {
  MpmcQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
}

TEST(MpmcQueue, CloseDrainsThenReturnsEmpty) {
  MpmcQueue<int> q(4);
  EXPECT_TRUE(q.try_push(7));
  q.close();
  EXPECT_FALSE(q.push(8));
  EXPECT_EQ(q.pop(), 7);
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(MpmcQueue, ManyProducersManyConsumers) {
  MpmcQueue<int> q(32);
  constexpr int kPerProducer = 20000;
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  std::atomic<long long> sum{0};
  std::atomic<int> received{0};

  std::vector<std::thread> threads;
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.pop()) {
        sum += *v;
        ++received;
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 1; i <= kPerProducer; ++i) q.push(i);
    });
  }
  for (auto& t : producers) t.join();
  while (received.load() < kProducers * kPerProducer) std::this_thread::yield();
  q.close();
  for (auto& t : threads) t.join();

  const long long expected =
      static_cast<long long>(kProducers) * kPerProducer * (kPerProducer + 1) / 2;
  EXPECT_EQ(sum.load(), expected);
}

}  // namespace
}  // namespace ff
