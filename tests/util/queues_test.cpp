#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "ff/util/mpmc_queue.h"
#include "ff/util/spsc_queue.h"

namespace ff {
namespace {

TEST(SpscQueue, PushPopSingleThread) {
  SpscQueue<int> q(8);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_EQ(q.try_pop(), 1);
  EXPECT_EQ(q.try_pop(), 2);
  EXPECT_EQ(q.try_pop(), std::nullopt);
}

TEST(SpscQueue, FillsToCapacity) {
  SpscQueue<int> q(4);
  int pushed = 0;
  while (q.try_push(pushed)) ++pushed;
  EXPECT_GE(pushed, 4);
  EXPECT_EQ(q.size_approx(), static_cast<std::size_t>(pushed));
}

TEST(SpscQueue, FifoOrderAcrossWrap) {
  SpscQueue<int> q(4);
  for (int round = 0; round < 10; ++round) {
    EXPECT_TRUE(q.try_push(round * 2));
    EXPECT_TRUE(q.try_push(round * 2 + 1));
    EXPECT_EQ(q.try_pop(), round * 2);
    EXPECT_EQ(q.try_pop(), round * 2 + 1);
  }
}

TEST(SpscQueue, ConcurrentProducerConsumerDeliversAll) {
  SpscQueue<int> q(64);
  constexpr int kCount = 100000;
  std::atomic<long long> sum{0};

  std::thread consumer([&] {
    int received = 0;
    while (received < kCount) {
      if (auto v = q.try_pop()) {
        sum += *v;
        ++received;
      }
    }
  });
  for (int i = 1; i <= kCount; ++i) {
    while (!q.try_push(i)) std::this_thread::yield();
  }
  consumer.join();
  EXPECT_EQ(sum.load(), static_cast<long long>(kCount) * (kCount + 1) / 2);
}

// Regression: try_push used to take its argument by value, so a push that
// FAILED (queue full) still moved-from the caller's object; retry loops
// over move-only types then enqueued an empty husk (a null InlineTask ->
// crash on invoke). A failed try_push must leave the value untouched.
TEST(SpscQueue, FailedTryPushDoesNotConsumeMoveOnlyValue) {
  SpscQueue<std::unique_ptr<int>> q(2);
  auto cap = q.size_approx();  // fill to the real (rounded) capacity
  while (q.try_push(std::make_unique<int>(0))) cap = q.size_approx();

  auto value = std::make_unique<int>(42);
  EXPECT_FALSE(q.try_push(std::move(value)));
  ASSERT_NE(value, nullptr) << "failed try_push consumed the value";
  EXPECT_EQ(*value, 42);

  (void)q.try_pop();  // free one slot; the preserved value goes through
  EXPECT_TRUE(q.try_push(std::move(value)));
  EXPECT_EQ(q.size_approx(), cap);
}

TEST(MpmcQueue, FailedTryPushDoesNotConsumeMoveOnlyValue) {
  MpmcQueue<std::unique_ptr<int>> q(1);
  EXPECT_TRUE(q.try_push(std::make_unique<int>(1)));

  auto value = std::make_unique<int>(42);
  EXPECT_FALSE(q.try_push(std::move(value)));  // full
  ASSERT_NE(value, nullptr) << "failed try_push consumed the value";

  q.close();
  EXPECT_FALSE(q.try_push(std::move(value)));  // closed
  ASSERT_NE(value, nullptr) << "closed try_push consumed the value";
  EXPECT_EQ(*value, 42);
}

// Regression: size_approx() read head_ before tail_, so a pop landing
// between the two loads wrapped the masked subtraction and reported a
// near-full queue for a near-empty one. Quiescent exactness pins the fix.
TEST(SpscQueue, SizeApproxExactWhenQuiescent) {
  SpscQueue<int> q(8);
  EXPECT_EQ(q.size_approx(), 0u);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.try_push(i));
  EXPECT_EQ(q.size_approx(), 5u);
  (void)q.try_pop();
  (void)q.try_pop();
  EXPECT_EQ(q.size_approx(), 3u);
  EXPECT_FALSE(q.empty_approx());
}

TEST(MpmcQueue, BlockingPopReceivesPush) {
  MpmcQueue<int> q(4);
  std::thread t([&] { EXPECT_TRUE(q.push(42)); });
  EXPECT_EQ(q.pop(), 42);
  t.join();
}

TEST(MpmcQueue, TryPushFailsWhenFull) {
  MpmcQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
}

TEST(MpmcQueue, CloseDrainsThenReturnsEmpty) {
  MpmcQueue<int> q(4);
  EXPECT_TRUE(q.try_push(7));
  q.close();
  EXPECT_FALSE(q.push(8));
  EXPECT_EQ(q.pop(), 7);
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(MpmcQueue, ManyProducersManyConsumers) {
  MpmcQueue<int> q(32);
  constexpr int kPerProducer = 20000;
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  std::atomic<long long> sum{0};
  std::atomic<int> received{0};

  std::vector<std::thread> threads;
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.pop()) {
        sum += *v;
        ++received;
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 1; i <= kPerProducer; ++i) q.push(i);
    });
  }
  for (auto& t : producers) t.join();
  while (received.load() < kProducers * kPerProducer) std::this_thread::yield();
  q.close();
  for (auto& t : threads) t.join();

  const long long expected = static_cast<long long>(kProducers) *
                             kPerProducer * (kPerProducer + 1) / 2;
  EXPECT_EQ(sum.load(), expected);
}

}  // namespace
}  // namespace ff
