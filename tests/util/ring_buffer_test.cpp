#include "ff/util/ring_buffer.h"

#include <gtest/gtest.h>

#include <string>

namespace ff {
namespace {

TEST(RingBuffer, StartsEmpty) {
  RingBuffer<int> r(4);
  EXPECT_TRUE(r.empty());
  EXPECT_FALSE(r.full());
  EXPECT_EQ(r.size(), 0u);
  EXPECT_EQ(r.capacity(), 4u);
}

TEST(RingBuffer, ZeroCapacityThrows) {
  EXPECT_THROW(RingBuffer<int>(0), std::invalid_argument);
}

TEST(RingBuffer, RecentOrder) {
  RingBuffer<int> r(3);
  r.push(1);
  r.push(2);
  r.push(3);
  EXPECT_EQ(r.recent(0), 3);
  EXPECT_EQ(r.recent(1), 2);
  EXPECT_EQ(r.recent(2), 1);
  EXPECT_EQ(r.oldest(), 1);
}

TEST(RingBuffer, OverwritesOldestWhenFull) {
  RingBuffer<int> r(3);
  for (int i = 1; i <= 5; ++i) r.push(i);
  EXPECT_TRUE(r.full());
  EXPECT_EQ(r.recent(0), 5);
  EXPECT_EQ(r.oldest(), 3);
}

TEST(RingBuffer, RecentOutOfRangeThrows) {
  RingBuffer<int> r(3);
  r.push(1);
  EXPECT_THROW((void)r.recent(1), std::out_of_range);
}

TEST(RingBuffer, ClearResets) {
  RingBuffer<int> r(3);
  r.push(1);
  r.clear();
  EXPECT_TRUE(r.empty());
  r.push(9);
  EXPECT_EQ(r.recent(0), 9);
}

TEST(RingBuffer, WorksWithMoveOnlyFriendlyTypes) {
  RingBuffer<std::string> r(2);
  r.push("hello");
  r.push("world");
  r.push("again");
  EXPECT_EQ(r.recent(0), "again");
  EXPECT_EQ(r.oldest(), "world");
}

}  // namespace
}  // namespace ff
